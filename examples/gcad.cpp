// gcad — the always-on connected-components daemon.
//
// Reads line-delimited JSON requests on stdin, writes one JSON reply per
// line on stdout (protocol: src/gcad/protocol.hpp).  SIGTERM triggers a
// graceful drain: intake stops, queued work finishes within the drain
// budget, and anything left is checkpointed in the queue journal for the
// next incarnation.  A `kill -9` loses nothing either — accepted queries
// are journaled before they are acknowledged.
//
//   $ ./gcad --threads 4 --journal /tmp/gcad.gcqj &
//   $ echo '{"id":1,"op":"solve","n":4,"edges":[[0,1],[2,3]]}' > /proc/$!/fd/0
//
// Exit status: 0 clean drain, 1 drain timeout left journaled work behind,
// 2 usage error.
#include <csignal>
#include <cstdio>
#include <iostream>
#include <string>

#include "common/cli.hpp"
#include "gca/execution.hpp"
#include "gca/metrics.hpp"
#include "gcad/server.hpp"

namespace {

gcalib::gcad::Server* g_server = nullptr;

extern "C" void on_sigterm(int) {
  if (g_server != nullptr) g_server->request_stop();
}

}  // namespace

int main(int argc, char** argv) {
  using namespace gcalib;
  const CliArgs args = CliArgs::parse_or_exit(
      argc, argv,
      cli::with_runner_flags({{"queue-cap", true},
                              {"max-batch", true},
                              {"journal", true},
                              {"fault-rate", true},
                              {"fault-seed", true},
                              {"drain-timeout-ms", true},
                              {"quiet", false}}));

  const auto require = [](bool ok, const char* what) {
    if (!ok) {
      std::fprintf(stderr, "error: %s\n", what);
      std::exit(2);
    }
  };
  cli::RunnerFlags flags;
  try {
    flags = cli::runner_flags(args);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 2;
  }
  // One shared validation surface with the other tools: an inconsistent
  // engine combination (--substrate marble, --threads 0, ...) exits 2 with
  // the same diagnosis everywhere.
  const gca::EngineOptions engine = gca::options_from_flags_or_exit(flags.engine);

  gcad::ServerOptions options;
  options.threads = engine.threads;
  options.policy = engine.policy;
  options.sweep = engine.sweep;
  options.substrate = engine.substrate;
  // The daemon's default stays one retry (resilience posture), but an
  // explicit --retries on the command line wins.
  options.retries =
      args.has("retries") ? flags.engine.retries : 1u;
  options.retry_backoff_ms = flags.retry_backoff_ms;
  if (flags.engine.deadline_ms != 0) {
    std::fprintf(stderr,
                 "warning: --deadline-ms is ignored by gcad; deadlines are "
                 "per request (\"deadline_ms\" in the solve op)\n");
  }
  // Two durability layers compose: the queue journal (--journal) replays
  // accepted-but-unfinished *queries*, and --checkpoint-dir resumes each
  // replayed query's *solve* mid-lattice from its per-query GCKP/GSKP
  // artifact (DESIGN.md §15).
  options.checkpoint_dir = flags.engine.checkpoint_dir;
  if (flags.engine.record_access || flags.engine.wants_metrics()) {
    std::fprintf(stderr,
                 "warning: --record-access/--trace-out/--metrics-out are "
                 "ignored by gcad (service counters go to stderr)\n");
  }
  require(args.get_int("queue-cap", 256) >= 1, "--queue-cap must be >= 1");
  options.admission.queue_capacity =
      static_cast<std::size_t>(args.get_int("queue-cap", 256));
  require(args.get_int("max-batch", 16) >= 1, "--max-batch must be >= 1");
  options.max_batch = static_cast<std::size_t>(args.get_int("max-batch", 16));
  options.journal_path = args.get_string("journal", "");
  const double fault_rate = args.get_double("fault-rate", 0.0);
  require(fault_rate >= 0.0 && fault_rate <= 1.0,
          "--fault-rate must be in [0, 1]");
  options.fault_rate = fault_rate;
  options.fault_seed = static_cast<std::uint64_t>(args.get_int("fault-seed", 1));
  require(args.get_int("drain-timeout-ms", 30'000) >= 0,
          "--drain-timeout-ms must be >= 0");
  options.drain_timeout_ms = args.get_int("drain-timeout-ms", 30'000);

  gcad::Server server(std::move(options));
  g_server = &server;

  // No SA_RESTART: a SIGTERM mid-read makes the blocking stdin read return
  // with EINTR, so the serve loop notices the stop request at once instead
  // of waiting for the next complete line.
  struct sigaction action = {};
  action.sa_handler = on_sigterm;
  sigemptyset(&action.sa_mask);
  action.sa_flags = 0;
  sigaction(SIGTERM, &action, nullptr);
  sigaction(SIGINT, &action, nullptr);

  const int rc = server.serve(std::cin, std::cout);
  g_server = nullptr;

  if (!args.has("quiet")) {
    std::fputs(gca::format_service_counters(server.counters().snapshot()).c_str(),
               stderr);
  }
  return rc;
}
