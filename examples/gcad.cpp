// gcad — the always-on connected-components daemon.
//
// Reads line-delimited JSON requests on stdin, writes one JSON reply per
// line on stdout (protocol: src/gcad/protocol.hpp).  SIGTERM triggers a
// graceful drain: intake stops, queued work finishes within the drain
// budget, and anything left is checkpointed in the queue journal for the
// next incarnation.  A `kill -9` loses nothing either — accepted queries
// are journaled before they are acknowledged.
//
//   $ ./gcad --threads 4 --journal /tmp/gcad.gcqj &
//   $ echo '{"id":1,"op":"solve","n":4,"edges":[[0,1],[2,3]]}' > /proc/$!/fd/0
//
// Exit status: 0 clean drain, 1 drain timeout left journaled work behind,
// 2 usage error.
#include <csignal>
#include <cstdio>
#include <iostream>
#include <string>

#include "common/cli.hpp"
#include "gca/execution.hpp"
#include "gca/metrics.hpp"
#include "gcad/server.hpp"

namespace {

gcalib::gcad::Server* g_server = nullptr;

extern "C" void on_sigterm(int) {
  if (g_server != nullptr) g_server->request_stop();
}

}  // namespace

int main(int argc, char** argv) {
  using namespace gcalib;
  const CliArgs args = CliArgs::parse_or_exit(
      argc, argv,
      {{"threads", true},
       {"policy", true},
       {"sweep", true},
       {"queue-cap", true},
       {"max-batch", true},
       {"retries", true},
       {"retry-backoff-ms", true},
       {"journal", true},
       {"fault-rate", true},
       {"fault-seed", true},
       {"drain-timeout-ms", true},
       {"quiet", false}});

  const auto require = [](bool ok, const char* what) {
    if (!ok) {
      std::fprintf(stderr, "error: %s\n", what);
      std::exit(2);
    }
  };
  gcad::ServerOptions options;
  require(args.get_int("threads", 1) >= 1, "--threads must be >= 1");
  options.threads = static_cast<unsigned>(args.get_int("threads", 1));
  require(args.get_int("queue-cap", 256) >= 1, "--queue-cap must be >= 1");
  options.admission.queue_capacity =
      static_cast<std::size_t>(args.get_int("queue-cap", 256));
  require(args.get_int("max-batch", 16) >= 1, "--max-batch must be >= 1");
  options.max_batch = static_cast<std::size_t>(args.get_int("max-batch", 16));
  require(args.get_int("retries", 1) >= 0, "--retries must be >= 0");
  options.retries = static_cast<unsigned>(args.get_int("retries", 1));
  require(args.get_int("retry-backoff-ms", 0) >= 0,
          "--retry-backoff-ms must be >= 0");
  options.retry_backoff_ms = args.get_int("retry-backoff-ms", 0);
  options.journal_path = args.get_string("journal", "");
  const double fault_rate = args.get_double("fault-rate", 0.0);
  require(fault_rate >= 0.0 && fault_rate <= 1.0,
          "--fault-rate must be in [0, 1]");
  options.fault_rate = fault_rate;
  options.fault_seed = static_cast<std::uint64_t>(args.get_int("fault-seed", 1));
  require(args.get_int("drain-timeout-ms", 30'000) >= 0,
          "--drain-timeout-ms must be >= 0");
  options.drain_timeout_ms = args.get_int("drain-timeout-ms", 30'000);
  try {
    options.policy =
        gca::parse_execution_policy(args.get_string("policy", "pool"));
    options.sweep = gca::parse_sweep_mode(args.get_string("sweep", "sparse"));
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 2;
  }

  gcad::Server server(std::move(options));
  g_server = &server;

  // No SA_RESTART: a SIGTERM mid-read makes the blocking stdin read return
  // with EINTR, so the serve loop notices the stop request at once instead
  // of waiting for the next complete line.
  struct sigaction action = {};
  action.sa_handler = on_sigterm;
  sigemptyset(&action.sa_mask);
  action.sa_flags = 0;
  sigaction(SIGTERM, &action, nullptr);
  sigaction(SIGINT, &action, nullptr);

  const int rc = server.serve(std::cin, std::cout);
  g_server = nullptr;

  if (!args.has("quiet")) {
    std::fputs(gca::format_service_counters(server.counters().snapshot()).c_str(),
               stderr);
  }
  return rc;
}
