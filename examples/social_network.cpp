// Community reachability in a synthetic social network: find the friend
// circles (connected components) of a planted-community graph, compare the
// GCA machine's cost metrics against the sequential baseline, and report
// per-circle statistics.
//
//   $ ./social_network [--people 96 --circles 6 --p 0.25 --seed 11]
#include <algorithm>
#include <cstdio>
#include <vector>

#include "common/cli.hpp"
#include "common/format.hpp"
#include "common/table.hpp"
#include "core/hirschberg_gca.hpp"
#include "core/schedule.hpp"
#include "graph/generators.hpp"
#include "graph/labeling.hpp"
#include "graph/union_find.hpp"
#include "pram/hirschberg.hpp"

int main(int argc, char** argv) {
  using namespace gcalib;
  const CliArgs args = CliArgs::parse_or_exit(
      argc, argv, {{"people", true}, {"circles", true}, {"p", true}, {"seed", true}});
  const auto people = static_cast<graph::NodeId>(args.get_int("people", 96));
  const auto circles = static_cast<graph::NodeId>(args.get_int("circles", 6));
  const double p = args.get_double("p", 0.25);
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 11));

  const graph::Graph g = graph::planted_components(people, circles, p, seed);
  std::printf("social network: %u people, %zu friendships, %u planted circles\n\n",
              people, g.edge_count(), circles);

  // --- run all three parallel algorithms ------------------------------
  core::HirschbergGca machine(g);
  const core::RunResult gca = machine.run();
  const pram::HirschbergPramResult pram_run = pram::run_hirschberg_pram(g);
  const std::vector<graph::NodeId> oracle = graph::union_find_components(g);

  if (gca.labels != oracle || pram_run.labels != oracle) {
    std::fprintf(stderr, "implementations disagree — bug!\n");
    return 1;
  }

  std::printf("found %zu circles (all implementations agree)\n\n",
              graph::component_count(gca.labels));

  TextTable circles_table({"circle rep", "members", "share"});
  for (const auto& [rep, size] : graph::component_sizes(gca.labels)) {
    circles_table.add_row(
        {std::to_string(rep), std::to_string(size),
         fixed(100.0 * size / static_cast<double>(people), 1) + "%"});
  }
  std::fputs(circles_table.render().c_str(), stdout);

  // --- cost comparison --------------------------------------------------
  std::size_t gca_reads = 0, gca_worst_congestion = 0;
  for (const core::StepRecord& r : gca.records) {
    gca_reads += r.stats.total_reads;
    gca_worst_congestion = std::max(gca_worst_congestion, r.stats.max_congestion);
  }

  std::printf("\ncost accounting:\n");
  TextTable costs({"metric", "GCA machine", "PRAM machine"});
  costs.set_align(0, Align::kLeft);
  costs.add_row({"synchronous steps", std::to_string(gca.generations),
                 std::to_string(pram_run.stats.steps)});
  costs.add_row({"outer iterations", std::to_string(gca.iterations),
                 std::to_string(pram_run.iterations)});
  costs.add_row({"global reads", with_commas(gca_reads),
                 with_commas(pram_run.stats.reads)});
  costs.add_row({"max read congestion", std::to_string(gca_worst_congestion),
                 std::to_string(pram_run.stats.max_read_congestion)});
  costs.add_row({"processing elements",
                 with_commas(std::size_t{people} * (people + 1)),
                 with_commas(std::size_t{people} * people)});
  std::fputs(costs.render().c_str(), stdout);
  std::printf(
      "\n(the GCA pays n(n+1) cells but each is as cheap as a few memory\n"
      "words — the paper's section-3 optimality argument)\n");
  return 0;
}
