// The GCA engine is a general model, not just a carrier for Hirschberg's
// algorithm: a classical CA is the degenerate case whose pointers never
// move.  This example runs Conway's Game of Life on the same Engine used by
// the paper's machine (with hands = 8 — one read per local neighbour),
// demonstrating the CA-subsumes relationship claimed in the paper's
// introduction.
//
//   $ ./gca_life [--width 32 --height 16 --steps 24 --seed 5] [--quiet]
#include <cstdio>
#include <vector>

#include "common/cli.hpp"
#include "common/rng.hpp"
#include "gca/engine.hpp"
#include "gca/field.hpp"

int main(int argc, char** argv) {
  using namespace gcalib;
  const CliArgs args = CliArgs::parse_or_exit(argc, argv,
                                      {{"width", true},
                                       {"height", true},
                                       {"steps", true},
                                       {"seed", true},
                                       {"quiet", false}});
  const auto width = static_cast<std::size_t>(args.get_int("width", 32));
  const auto height = static_cast<std::size_t>(args.get_int("height", 16));
  const auto steps = static_cast<std::size_t>(args.get_int("steps", 24));
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 5));
  const bool quiet = args.has("quiet");

  const gca::FieldGeometry geo(height, width);
  std::vector<std::uint8_t> initial(geo.size());
  Xoshiro256 rng(seed);
  for (auto& cell : initial) cell = rng.bernoulli(0.35) ? 1 : 0;

  // A CA on the GCA: fixed local neighbours, 8 reads per generation.
  gca::Engine<std::uint8_t> engine(
      initial,
      gca::EngineOptions{}.with_hands(8).with_instrumentation(false));

  const auto render = [&](const char* title) {
    std::printf("%s\n", title);
    for (std::size_t r = 0; r < geo.rows(); ++r) {
      for (std::size_t c = 0; c < geo.cols(); ++c) {
        std::putchar(engine.state(geo.index_of(r, c)) ? 'O' : '.');
      }
      std::putchar('\n');
    }
    std::putchar('\n');
  };

  if (!quiet) render("initial state:");

  for (std::size_t s = 0; s < steps; ++s) {
    engine.step([&geo, &engine](std::size_t index,
                                auto& read) -> std::optional<std::uint8_t> {
      const std::size_t r = geo.row(index);
      const std::size_t c = geo.col(index);
      unsigned alive = 0;
      for (int dr = -1; dr <= 1; ++dr) {
        for (int dc = -1; dc <= 1; ++dc) {
          if (dr == 0 && dc == 0) continue;
          const std::size_t nr =
              (r + geo.rows() + static_cast<std::size_t>(dr)) % geo.rows();
          const std::size_t nc =
              (c + geo.cols() + static_cast<std::size_t>(dc)) % geo.cols();
          alive += read(geo.index_of(nr, nc));
        }
      }
      const bool self = engine.state(index) != 0;
      const bool next = self ? (alive == 2 || alive == 3) : (alive == 3);
      return static_cast<std::uint8_t>(next ? 1 : 0);
    });
  }

  std::size_t population = 0;
  for (std::size_t i = 0; i < geo.size(); ++i) population += engine.state(i);
  if (!quiet) {
    render(("after " + std::to_string(steps) + " generations:").c_str());
  }
  std::printf("population after %zu generations: %zu of %zu cells\n", steps,
              population, geo.size());
  std::printf("(classical CA = GCA with static pointers; same engine, same\n"
              " synchronous semantics as the Hirschberg machine)\n");
  return 0;
}
