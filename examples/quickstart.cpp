// Quickstart: build a graph, run Hirschberg's algorithm on the GCA, and
// inspect what the machine did.
//
//   $ ./quickstart
//
// Walks through the three levels of the public API:
//   1. one-call labeling (core::gca_components),
//   2. a full run with statistics (core::HirschbergGca::run),
//   3. manual generation stepping with field snapshots.
#include <cstdio>

#include "core/hirschberg_gca.hpp"
#include "core/schedule.hpp"
#include "core/state_graph.hpp"
#include "gca/trace.hpp"
#include "graph/generators.hpp"
#include "graph/labeling.hpp"

int main() {
  using namespace gcalib;

  // A small graph: two squares and an isolated pair.
  //   0-1-2-3-0   4-5-6-7-4   8-9
  graph::Graph g(10);
  for (graph::NodeId i = 0; i < 4; ++i) g.add_edge(i, (i + 1) % 4);
  for (graph::NodeId i = 0; i < 4; ++i) g.add_edge(4 + i, 4 + (i + 1) % 4);
  g.add_edge(8, 9);

  // ---- level 1: one call --------------------------------------------
  const std::vector<graph::NodeId> labels = core::gca_components(g);
  std::printf("components (min-id labels): ");
  for (graph::NodeId l : labels) std::printf("%u ", l);
  std::printf("\n%zu components found\n\n", graph::component_count(labels));

  // ---- level 2: a run with statistics --------------------------------
  core::HirschbergGca machine(g);
  const core::RunResult result = machine.run();
  std::printf("n = %u -> %u outer iterations, %zu generations (formula: %zu)\n",
              machine.n(), result.iterations, result.generations,
              core::total_generations(machine.n()));

  std::size_t worst_congestion = 0;
  for (const core::StepRecord& record : result.records) {
    worst_congestion = std::max(worst_congestion, record.stats.max_congestion);
  }
  std::printf("worst read congestion over the whole run: %zu\n\n",
              worst_congestion);

  // ---- level 3: manual stepping ---------------------------------------
  std::printf("stepping generations 0..2 by hand (D field after each):\n\n");
  core::HirschbergGca manual(g);
  manual.initialize();
  for (core::Generation gen :
       {core::Generation::kCopyCToRows, core::Generation::kMaskNeighbors}) {
    manual.step_generation(gen);
    std::printf("%s:\n%s\n", core::generation_label(gen, 0).c_str(),
                gca::render_numeric_field(manual.geometry(), manual.d_snapshot(),
                                          core::kInfData)
                    .c_str());
  }
  std::printf("(rows of the square now hold the masked C candidates whose\n"
              " row-minimum becomes T in the next generation)\n");
  return 0;
}
