// Resilient connected components on the sparse CSR substrate: runs the
// hooking/pointer-jumping engine with the DESIGN.md §15 resilience surface
// engaged — a seeded sparse fault storm, per-round lattice monitors, the
// rollback/restart recovery ladder, an end-of-run spanning-forest
// certificate, and (optionally) durable GSKP checkpoints that survive a
// SIGKILL mid-solve.  The dense-field counterpart is gca_resilient_cc.
//
// Usage:
//   sparse_resilient_cc [--n 20000] [--sparse-mode sync|async|auto]
//                       [--threads 1]
//                       [--policy pool] [--seed 7] [--rate 0.05]
//                       [--checkpoint-dir DIR] [--round-delay-us N]
//
//   --n               ring size (the graph is a single n-cycle: one
//                     component, Theta(log n) rounds to converge — a wide,
//                     predictable kill window for crash drills)
//   --rate            expected faults per round (Poisson); 0 = none
//   --checkpoint-dir  durable GSKP checkpoints: a relaunch after a crash
//                     (even SIGKILL) resumes mid-solve from the directory
//   --round-delay-us  artificial per-round stall (crash-recovery smoke
//                     tests use it to widen the kill window)
//
// Exit codes: 0 ok, 1 wrong labels, 2 usage.
#include <chrono>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "common/assert.hpp"
#include "common/cli.hpp"
#include "core/cc_solver.hpp"
#include "core/hirschberg_gca.hpp"
#include "fault/sparse_fault.hpp"
#include "gca/cancel.hpp"
#include "gca/execution.hpp"
#include "graph/csr_graph.hpp"
#include "graph/union_find.hpp"

namespace {

using gcalib::fault::SparseFaultPlan;
using gcalib::fault::SparseFaultSite;
using gcalib::graph::NodeId;

std::size_t count_site(const SparseFaultPlan& plan, SparseFaultSite site) {
  std::size_t count = 0;
  for (const gcalib::fault::SparseFaultEvent& event : plan.events()) {
    if (event.site == site) ++count;
  }
  return count;
}

}  // namespace

int main(int argc, char** argv) {
  const gcalib::CliArgs args = gcalib::CliArgs::parse_or_exit(
      argc, argv,
      gcalib::cli::with_engine_flags(
          {{"n", true}, {"seed", true}, {"rate", true},
           {"round-delay-us", true}}));
  const auto n = static_cast<NodeId>(args.get_int("n", 20000));
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 7));
  const double rate = args.get_double("rate", 0.05);
  const std::int64_t round_delay_us = args.get_int("round-delay-us", 0);
  gcalib::cli::EngineFlags exec;
  try {
    exec = gcalib::cli::engine_flags(args);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 2;
  }
  const gcalib::gca::EngineOptions engine =
      gcalib::gca::options_from_flags_or_exit(exec);
  if (n < 3) {
    std::fprintf(stderr, "error: --n must be >= 3\n");
    return 2;
  }
  if (rate < 0.0 || round_delay_us < 0) {
    std::fprintf(stderr,
                 "error: --rate and --round-delay-us must be >= 0\n");
    return 2;
  }

  // One n-cycle: a single component whose min-id labeling takes Theta(log n)
  // hook/jump rounds — every round matters, so a kill at any point lands
  // mid-lattice and the GSKP resume is observable.
  std::vector<gcalib::graph::Edge> edges;
  edges.reserve(n);
  for (NodeId v = 0; v < n; ++v) {
    edges.push_back({v, static_cast<NodeId>((v + 1) % n)});
  }
  const gcalib::graph::CsrGraph csr =
      gcalib::graph::CsrGraph::from_edges(n, edges);

  gcalib::graph::UnionFind oracle(n);
  for (NodeId v = 0; v < n; ++v) {
    oracle.unite(v, static_cast<NodeId>((v + 1) % n));
  }
  const std::vector<NodeId> expected = oracle.min_labels();

  const SparseFaultPlan plan = SparseFaultPlan::poisson(n, rate, seed);
  std::printf("graph: %u-cycle, %zu edges\n", n, csr.edge_count());
  std::printf("fault storm: %zu events (rate %.3g, seed %llu)\n", plan.size(),
              rate, static_cast<unsigned long long>(seed));
  std::printf("  label flips: %zu, stuck vertices: %zu, lost updates: %zu, "
              "stale frontiers: %zu\n\n",
              count_site(plan, SparseFaultSite::kLabelBitFlip),
              count_site(plan, SparseFaultSite::kStuckVertex),
              count_site(plan, SparseFaultSite::kLostUpdate),
              count_site(plan, SparseFaultSite::kStaleFrontier));

  gcalib::fault::SparseInjector injector(plan);
  gcalib::core::RunOptions options;
  options.instrument = false;
  options.threads = engine.threads;
  options.policy = engine.policy;
  options.sparse_mode = engine.sparse_mode;
  options.certify = true;
  options.recovery.checkpoint_interval = 1;  // anchor + GSKP every round
  options.recovery.max_rollbacks = 4;
  options.recovery.max_restarts = 2;
  options.checkpoint_dir = exec.checkpoint_dir;
  options.deadline_ms = exec.deadline_ms;
  if (round_delay_us > 0) {
    options.sparse_before_round =
        [round_delay_us](const gcalib::core::SparseRoundContext&) {
          std::this_thread::sleep_for(
              std::chrono::microseconds(round_delay_us));
        };
  }
  injector.install(options);  // chains after the delay hook; forces monitors

  try {
    const gcalib::core::QueryResult result =
        gcalib::core::sparse_cc_solver().solve(
            gcalib::core::SolverInput(csr), options);

    if (result.resumed) {
      std::printf("resumed from durable sparse checkpoint at round %u (%s)\n",
                  result.resume_round, exec.checkpoint_dir.c_str());
    } else if (!exec.checkpoint_dir.empty()) {
      std::printf("durable checkpoints: %s (no resumable state found)\n",
                  exec.checkpoint_dir.c_str());
    }
    std::printf("faults delivered: %zu\n", injector.faults_fired());
    std::printf("recovery: %u rollbacks, %u restarts, %zu diagnoses\n",
                result.rollbacks, result.restarts, result.diagnoses.size());
    for (std::size_t d = 0; d < result.diagnoses.size() && d < 5; ++d) {
      std::printf("  %s\n", result.diagnoses[d].c_str());
    }
    if (result.diagnoses.size() > 5) {
      std::printf("  ... and %zu more\n", result.diagnoses.size() - 5);
    }
    std::printf("certificate: %s\n",
                result.certified ? "built and verified" : "not requested");
    std::printf("components: %zu, generations: %zu\n", result.components,
                result.generations);

    const bool correct = result.labels == expected;
    std::printf("labels vs union-find baseline: %s\n",
                correct ? "MATCH" : "MISMATCH");
    if (!correct) return 1;
  } catch (const gcalib::gca::DeadlineExceeded& expired) {
    std::printf("deadline exceeded: %s\n", expired.what());
    if (!exec.checkpoint_dir.empty()) {
      std::printf("(relaunch with the same --checkpoint-dir to resume)\n");
    }
    return 3;
  } catch (const gcalib::ContractViolation& failure) {
    std::printf("run failed after exhausting recovery: %s\n", failure.what());
    return 1;
  }
  return 0;
}
