// gcad_soak — fault-injected soak driver and zero-loss auditor for gcad.
//
// Forks the daemon with pipes on stdin/stdout, pushes a saturating stream
// of solve requests (mixed sizes, priorities, deadlines and client names),
// optionally SIGKILLs it mid-load and restarts it on the same journal, then
// closes stdin (EOF -> graceful drain) and audits the reply stream:
//
//   1. zero loss — every query acknowledged as accepted has at least one
//      terminal reply (done or shed), across the kill if one was injected;
//   2. correctness — every OK labeling is bit-identical to an offline
//      union-find solve of the same graph (at-least-once delivery may
//      duplicate a terminal reply after a crash; duplicates must agree);
//   3. liveness — both daemon incarnations exit on their own after EOF.
//
//   $ ./gcad_soak --gcad ./gcad --queries 200 --kill --fault-rate 0.5
//   $ ./gcad_soak --gcad ./gcad --queries 200 --kill --fault-rate 0.5
//       [--substrate sparse_csr --checkpoint-dir /tmp/soak_ckpt]  # sparse leg
//
// Exit status: 0 all audits pass, 1 an audit failed, 64 usage error.
#include <fcntl.h>
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <cstring>
#include <map>
#include <mutex>
#include <optional>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "common/cli.hpp"
#include "gcad/protocol.hpp"
#include "graph/generators.hpp"
#include "graph/union_find.hpp"

namespace {

using namespace gcalib;

struct Child {
  pid_t pid = -1;
  int stdin_fd = -1;   ///< write requests here
  int stdout_fd = -1;  ///< read replies here
};

/// fork/exec the daemon with pipes on both ends; stderr passes through.
Child spawn_gcad(const std::string& binary,
                 const std::vector<std::string>& extra_args) {
  int to_child[2];
  int from_child[2];
  if (pipe(to_child) != 0 || pipe(from_child) != 0) {
    std::perror("pipe");
    std::exit(1);
  }
  const pid_t pid = fork();
  if (pid < 0) {
    std::perror("fork");
    std::exit(1);
  }
  if (pid == 0) {
    dup2(to_child[0], STDIN_FILENO);
    dup2(from_child[1], STDOUT_FILENO);
    close(to_child[0]);
    close(to_child[1]);
    close(from_child[0]);
    close(from_child[1]);
    std::vector<char*> argv;
    argv.push_back(const_cast<char*>(binary.c_str()));
    for (const std::string& arg : extra_args) {
      argv.push_back(const_cast<char*>(arg.c_str()));
    }
    argv.push_back(nullptr);
    execv(binary.c_str(), argv.data());
    std::perror("execv");
    _exit(127);
  }
  close(to_child[0]);
  close(from_child[1]);
  Child child;
  child.pid = pid;
  child.stdin_fd = to_child[1];
  child.stdout_fd = from_child[0];
  return child;
}

/// Reads the child's stdout until EOF, appending whole lines to `lines`
/// (under `mutex` — the main thread polls the count to time the SIGKILL).
void read_replies(int fd, std::mutex& mutex, std::vector<std::string>& lines) {
  std::string pending;
  char buffer[1 << 16];
  for (;;) {
    const ssize_t got = read(fd, buffer, sizeof buffer);
    if (got <= 0) break;
    pending.append(buffer, static_cast<std::size_t>(got));
    std::size_t start = 0;
    std::lock_guard<std::mutex> lock(mutex);
    for (std::size_t i = pending.find('\n'); i != std::string::npos;
         i = pending.find('\n', start)) {
      lines.push_back(pending.substr(start, i - start));
      start = i + 1;
    }
    pending.erase(0, start);
  }
  if (!pending.empty()) {
    std::lock_guard<std::mutex> lock(mutex);
    lines.push_back(pending);
  }
}

bool write_all(int fd, const std::string& line) {
  std::size_t done = 0;
  while (done < line.size()) {
    const ssize_t put = write(fd, line.data() + done, line.size() - done);
    if (put < 0) {
      if (errno == EINTR) continue;
      return false;  // daemon died (EPIPE under the kill scenario)
    }
    done += static_cast<std::size_t>(put);
  }
  return true;
}

std::string encode_solve(std::uint64_t id, const graph::Graph& g,
                         std::int64_t deadline_ms, int priority,
                         const std::string& client) {
  std::string line = "{\"id\":" + std::to_string(id) +
                     ",\"op\":\"solve\",\"n\":" +
                     std::to_string(g.node_count()) + ",\"edges\":[";
  bool first = true;
  for (const graph::Edge& edge : g.edges()) {
    if (!first) line += ',';
    first = false;
    line += '[' + std::to_string(edge.u) + ',' + std::to_string(edge.v) + ']';
  }
  line += "]";
  if (deadline_ms > 0) line += ",\"deadline_ms\":" + std::to_string(deadline_ms);
  line += ",\"priority\":" + std::to_string(priority);
  line += ",\"client\":\"" + client + "\"}";
  return line;
}

struct Audit {
  std::set<std::uint64_t> accepted;
  std::map<std::uint64_t, std::vector<std::int64_t>> ok_labels;
  std::set<std::uint64_t> terminal;
  std::size_t parse_failures = 0;
  std::size_t done_ok = 0;
  std::size_t done_error = 0;
  std::size_t rejected = 0;
};

void absorb_replies(const std::vector<std::string>& lines, Audit& audit) {
  for (const std::string& line : lines) {
    if (line.empty()) continue;
    gcad::Json doc;
    if (!gcad::parse_json(line, doc).ok() ||
        doc.type != gcad::Json::Type::kObject) {
      ++audit.parse_failures;
      continue;
    }
    const gcad::Json* event = doc.find("event");
    const gcad::Json* id_field = doc.find("id");
    if (event == nullptr || event->type != gcad::Json::Type::kString) continue;
    const std::optional<std::uint64_t> id =
        (id_field != nullptr && id_field->is_integer && id_field->integer >= 0)
            ? std::optional<std::uint64_t>(
                  static_cast<std::uint64_t>(id_field->integer))
            : std::nullopt;
    if (event->string == "accepted" && id) {
      audit.accepted.insert(*id);
    } else if (event->string == "rejected" && id) {
      ++audit.rejected;
      audit.terminal.insert(*id);
    } else if (event->string == "shed" && id) {
      audit.terminal.insert(*id);
    } else if (event->string == "done" && id) {
      audit.terminal.insert(*id);
      const gcad::Json* status = doc.find("status");
      if (status != nullptr && status->string == "OK") {
        ++audit.done_ok;
        std::vector<std::int64_t> labels;
        const gcad::Json* label_field = doc.find("labels");
        if (label_field != nullptr &&
            label_field->type == gcad::Json::Type::kArray) {
          for (const gcad::Json& item : label_field->array) {
            labels.push_back(item.integer);
          }
        }
        auto [it, inserted] = audit.ok_labels.emplace(*id, labels);
        if (!inserted && it->second != labels) {
          // Duplicate terminal replies must agree bit-for-bit.
          std::fprintf(stderr,
                       "AUDIT: duplicate OK replies for id %llu disagree\n",
                       static_cast<unsigned long long>(*id));
          it->second.clear();  // force the label comparison to fail below
        }
      } else {
        ++audit.done_error;
      }
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  // A write racing the SIGKILL must come back as EPIPE, not kill the auditor.
  signal(SIGPIPE, SIG_IGN);
  const CliArgs args = CliArgs::parse_or_exit(
      argc, argv,
      {{"gcad", true},
       {"queries", true},
       {"threads", true},
       {"queue-cap", true},
       {"seed", true},
       {"fault-rate", true},
       {"journal", true},
       {"substrate", true},
       {"checkpoint-dir", true},
       {"kill", false},
       {"verbose", false}});

  const std::string binary = args.get_string("gcad", "./gcad");
  const auto queries = static_cast<std::size_t>(args.get_int("queries", 200));
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 42));
  const double fault_rate = args.get_double("fault-rate", 0.0);
  const bool inject_kill = args.has("kill");
  const std::string journal = args.get_string(
      "journal", "gcad_soak_" + std::to_string(getpid()) + ".gcqj");

  std::vector<std::string> daemon_args = {
      "--threads", args.get_string("threads", "2"),
      "--queue-cap", args.get_string("queue-cap", "512"),
      "--journal", journal,
      "--retries", "2",
      "--quiet"};
  if (fault_rate > 0.0) {
    daemon_args.push_back("--fault-rate");
    daemon_args.push_back(args.get_string("fault-rate", "0"));
  }
  // --substrate sparse_csr runs the whole soak on the CSR engine (the
  // sparse leg of the resilience matrix); --checkpoint-dir adds durable
  // per-query GCKP/GSKP artifacts, so the SIGKILL scenario also exercises
  // mid-solve resume, not just journal replay.
  if (args.has("substrate")) {
    daemon_args.push_back("--substrate");
    daemon_args.push_back(args.get_string("substrate", "auto"));
  }
  if (args.has("checkpoint-dir")) {
    daemon_args.push_back("--checkpoint-dir");
    daemon_args.push_back(args.get_string("checkpoint-dir", ""));
  }

  // Offline ground truth: the workload and its expected labelings.
  std::vector<graph::Graph> workload;
  std::vector<std::vector<graph::NodeId>> expected;
  workload.reserve(queries);
  for (std::size_t i = 0; i < queries; ++i) {
    const auto n = static_cast<graph::NodeId>(8 + (seed + i * 13) % 56);
    graph::Graph g = (i % 3 == 0)
                         ? graph::random_gnp(n, 0.08, seed + i)
                         : graph::random_gnm(n, n / 2, seed * 31 + i);
    expected.push_back(graph::union_find_components(g));
    workload.push_back(std::move(g));
  }

  Audit audit;
  std::mutex lines_mutex;
  std::vector<std::string> lines;
  Child child = spawn_gcad(binary, daemon_args);
  std::thread reader(
      [&] { read_replies(child.stdout_fd, lines_mutex, lines); });

  const std::size_t kill_at = inject_kill ? queries / 2 : queries + 1;
  bool killed = false;
  for (std::size_t i = 0; i < queries; ++i) {
    if (i == kill_at) {
      // Make the kill land on a daemon that has genuinely accepted work:
      // wait (bounded) until some acks came back, so the journal is
      // non-trivial and the restart actually replays queries.
      const auto give_up =
          std::chrono::steady_clock::now() + std::chrono::seconds(10);
      for (;;) {
        {
          std::lock_guard<std::mutex> lock(lines_mutex);
          if (lines.size() >= kill_at / 4) break;
        }
        if (std::chrono::steady_clock::now() >= give_up) break;
        std::this_thread::sleep_for(std::chrono::milliseconds(2));
      }
      // SIGKILL mid-load: no drain, no cleanup — the journal is all that
      // survives.  Restart on the same journal and keep loading.
      kill(child.pid, SIGKILL);
      int status = 0;
      waitpid(child.pid, &status, 0);
      close(child.stdin_fd);
      reader.join();
      close(child.stdout_fd);
      absorb_replies(lines, audit);
      lines.clear();
      killed = true;
      child = spawn_gcad(binary, daemon_args);
      reader = std::thread(
          [&] { read_replies(child.stdout_fd, lines_mutex, lines); });
    }
    // Mixed traffic: four clients, all priority bands, a few tight
    // deadlines that will legitimately expire under saturation.
    const int priority = static_cast<int>(i % 4);
    const std::string client = "client" + std::to_string(i % 4);
    const std::int64_t deadline_ms = (i % 11 == 0) ? 40 : 0;
    const std::string line =
        encode_solve(i + 1, workload[i], deadline_ms, priority, client) + "\n";
    if (!write_all(child.stdin_fd, line)) {
      if (!inject_kill) {
        std::fprintf(stderr, "AUDIT: daemon pipe closed unexpectedly\n");
        return 1;
      }
    }
  }

  close(child.stdin_fd);  // EOF -> graceful drain
  reader.join();
  close(child.stdout_fd);
  int status = 0;
  waitpid(child.pid, &status, 0);
  absorb_replies(lines, audit);
  std::remove(journal.c_str());
  std::remove((journal + ".tmp").c_str());

  if (!WIFEXITED(status)) {
    std::fprintf(stderr, "AUDIT: daemon did not exit cleanly after drain\n");
    return 1;
  }

  // Audit 1: zero loss — accepted implies terminal.
  std::size_t lost = 0;
  for (const std::uint64_t id : audit.accepted) {
    if (audit.terminal.count(id) == 0) {
      std::fprintf(stderr, "AUDIT: accepted id %llu has no terminal reply\n",
                   static_cast<unsigned long long>(id));
      ++lost;
    }
  }

  // Audit 2: every OK labeling matches the offline union-find solve.
  std::size_t wrong = 0;
  for (const auto& [id, labels] : audit.ok_labels) {
    const std::vector<graph::NodeId>& want = expected[id - 1];
    bool match = labels.size() == want.size();
    for (std::size_t v = 0; match && v < want.size(); ++v) {
      match = labels[v] == static_cast<std::int64_t>(want[v]);
    }
    if (!match) {
      std::fprintf(stderr, "AUDIT: wrong labeling for id %llu\n",
                   static_cast<unsigned long long>(id));
      ++wrong;
    }
  }

  std::printf(
      "gcad_soak: %zu queries (%s%s), %zu accepted, %zu done OK, "
      "%zu done error, %zu rejected, %zu parse failures\n",
      queries, killed ? "SIGKILL injected" : "no kill",
      fault_rate > 0 ? ", faults injected" : "", audit.accepted.size(),
      audit.done_ok, audit.done_error, audit.rejected, audit.parse_failures);

  if (lost > 0 || wrong > 0 || audit.parse_failures > 0) {
    std::fprintf(stderr, "gcad_soak: FAILED (%zu lost, %zu wrong, %zu unparseable)\n",
                 lost, wrong, audit.parse_failures);
    return 1;
  }
  std::puts("gcad_soak: PASS (zero accepted-query loss, all labelings exact)");
  return 0;
}
