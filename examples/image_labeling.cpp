// Connected-component labeling of a binary image — the classic application
// of CC algorithms (and of cellular processing: the pixel grid maps onto
// the cell field naturally).
//
//   $ ./image_labeling [--width 16 --height 10 --density 0.45 --seed 7]
//
// Foreground pixels become graph nodes; 4-adjacent foreground pixels are
// connected.  The GCA labels the blobs; the output shows the image and the
// blob ids.
#include <cstdio>
#include <map>
#include <vector>

#include "common/cli.hpp"
#include "common/rng.hpp"
#include "core/hirschberg_gca.hpp"
#include "graph/graph.hpp"
#include "graph/labeling.hpp"
#include "graph/union_find.hpp"

namespace {

struct Image {
  std::size_t width = 0;
  std::size_t height = 0;
  std::vector<std::uint8_t> pixels;  // 1 = foreground

  [[nodiscard]] bool at(std::size_t x, std::size_t y) const {
    return pixels[y * width + x] != 0;
  }
};

Image random_blobs(std::size_t width, std::size_t height, double density,
                   std::uint64_t seed) {
  Image image{width, height, std::vector<std::uint8_t>(width * height, 0)};
  gcalib::Xoshiro256 rng(seed);
  for (auto& p : image.pixels) p = rng.bernoulli(density) ? 1 : 0;
  return image;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace gcalib;
  const CliArgs args = CliArgs::parse_or_exit(argc, argv,
                                      {{"width", true},
                                       {"height", true},
                                       {"density", true},
                                       {"seed", true}});
  const auto width = static_cast<std::size_t>(args.get_int("width", 16));
  const auto height = static_cast<std::size_t>(args.get_int("height", 10));
  const double density = args.get_double("density", 0.45);
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 7));

  const Image image = random_blobs(width, height, density, seed);

  // Build the pixel-adjacency graph over foreground pixels only.
  std::vector<graph::NodeId> node_of(width * height, 0);
  graph::NodeId nodes = 0;
  for (std::size_t i = 0; i < image.pixels.size(); ++i) {
    if (image.pixels[i]) node_of[i] = nodes++;
  }
  graph::Graph g(nodes);
  for (std::size_t y = 0; y < height; ++y) {
    for (std::size_t x = 0; x < width; ++x) {
      if (!image.at(x, y)) continue;
      if (x + 1 < width && image.at(x + 1, y)) {
        g.add_edge(node_of[y * width + x], node_of[y * width + x + 1]);
      }
      if (y + 1 < height && image.at(x, y + 1)) {
        g.add_edge(node_of[y * width + x], node_of[(y + 1) * width + x]);
      }
    }
  }

  // Label on the GCA and sanity-check against union-find.
  const std::vector<graph::NodeId> labels = core::gca_components(g);
  if (labels != graph::union_find_components(g)) {
    std::fprintf(stderr, "GCA and union-find disagree — bug!\n");
    return 1;
  }

  // Compact blob ids for display (min-id labels -> 0,1,2,... a..z).
  std::map<graph::NodeId, char> glyph;
  for (graph::NodeId l : labels) {
    if (glyph.count(l) == 0) {
      const std::size_t k = glyph.size();
      glyph[l] = k < 10 ? static_cast<char>('0' + k)
                        : static_cast<char>('a' + (k - 10) % 26);
    }
  }

  std::printf("binary image (%zux%zu, density %.2f):\n", width, height, density);
  for (std::size_t y = 0; y < height; ++y) {
    for (std::size_t x = 0; x < width; ++x) {
      std::putchar(image.at(x, y) ? '#' : '.');
    }
    std::putchar('\n');
  }

  std::printf("\nGCA blob labels (%zu blobs):\n",
              graph::component_count(labels));
  for (std::size_t y = 0; y < height; ++y) {
    for (std::size_t x = 0; x < width; ++x) {
      std::putchar(image.at(x, y) ? glyph[labels[node_of[y * width + x]]] : '.');
    }
    std::putchar('\n');
  }

  std::printf("\nblob sizes: ");
  for (const auto& [rep, size] : graph::component_sizes(labels)) {
    std::printf("%u:%u ", rep, size);
  }
  std::printf("\n");
  return 0;
}
