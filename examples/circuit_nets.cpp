// Net extraction on a circuit board: pads connected by traces form
// electrical nets = connected components.  A natural engineering workload
// for CC, and a nod to the paper's FPGA context.  This example also emits
// the reconstructed Verilog for a small cell field and prints the hardware
// cost model's estimate for the chosen size.
//
//   $ ./circuit_nets [--pads 40 --traces 48 --seed 3] [--emit-verilog]
#include <cstdio>
#include <fstream>
#include <map>
#include <vector>

#include "common/cli.hpp"
#include "common/format.hpp"
#include "common/table.hpp"
#include "core/hirschberg_gca.hpp"
#include "core/schedule.hpp"
#include "graph/generators.hpp"
#include "graph/labeling.hpp"
#include "graph/union_find.hpp"
#include "hw/cost_model.hpp"
#include "hw/verilog_gen.hpp"

int main(int argc, char** argv) {
  using namespace gcalib;
  const CliArgs args = CliArgs::parse_or_exit(
      argc, argv,
      {{"pads", true}, {"traces", true}, {"seed", true}, {"emit-verilog", false}});
  const auto pads = static_cast<graph::NodeId>(args.get_int("pads", 40));
  const auto traces = static_cast<std::size_t>(args.get_int("traces", 48));
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 3));

  // Pads are nodes, traces are edges; random_gnm gives exactly `traces`
  // distinct traces.
  const graph::Graph board = graph::random_gnm(pads, traces, seed);
  std::printf("circuit board: %u pads, %zu traces\n\n", pads,
              board.edge_count());

  const std::vector<graph::NodeId> nets = core::gca_components(board);
  if (nets != graph::union_find_components(board)) {
    std::fprintf(stderr, "GCA and union-find disagree — bug!\n");
    return 1;
  }

  const auto sizes = graph::component_sizes(nets);
  std::size_t singletons = 0;
  for (const auto& [rep, size] : sizes) {
    if (size == 1) ++singletons;
  }
  std::printf("extracted %zu nets (%zu unconnected pads)\n\n", sizes.size(),
              singletons);

  TextTable table({"net", "pads", "example pads"});
  table.set_align(2, Align::kLeft);
  for (const auto& [rep, size] : sizes) {
    if (size == 1) continue;  // skip unconnected pads in the listing
    std::string members;
    int shown = 0;
    for (graph::NodeId v = 0; v < pads && shown < 6; ++v) {
      if (nets[v] == rep) {
        members += 'P';
        members += std::to_string(v);
        members += ' ';
        ++shown;
      }
    }
    if (size > 6) members += "...";
    std::string net_name = "N";
    net_name += std::to_string(rep);
    table.add_row({net_name, std::to_string(size), members});
  }
  std::fputs(table.render().c_str(), stdout);

  // --- hardware sizing for an on-FPGA net extractor ---------------------
  const hw::SynthesisEstimate est = hw::estimate_for(pads);
  std::printf("\ncost model: a fully parallel GCA net extractor for %u pads\n",
              pads);
  std::printf("would need %s cells, ~%s logic elements, ~%s register bits,\n",
              with_commas(est.cells).c_str(),
              with_commas(est.logic_elements).c_str(),
              with_commas(est.register_bits).c_str());
  std::printf("at an estimated %.1f MHz -> ~%.1f us per extraction.\n",
              est.fmax_mhz,
              static_cast<double>(core::total_generations(pads)) /
                  est.fmax_mhz);

  if (args.has("emit-verilog")) {
    hw::VerilogOptions options;
    options.module_name = "net_extractor";
    options.include_testbench = true;
    std::ofstream out("net_extractor.v");
    out << hw::generate_verilog(pads, options);
    std::printf("\nwrote net_extractor.v (%u-pad cell field)\n", pads);
  }
  return 0;
}
