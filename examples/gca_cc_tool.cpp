// gca_cc_tool — command-line connected-components utility.
//
// Reads a graph (edge-list or DIMACS, file or stdin), labels its connected
// components with a selectable implementation, and prints the labeling,
// component summary and machine statistics.  This is the "downstream user"
// entry point of the library.
//
//   $ ./gca_cc_tool --format edges graph.txt
//   $ ./gca_cc_tool --algorithm pram --format dimacs graph.col
//   $ echo "4 2\n0 1\n2 3" | ./gca_cc_tool
//   $ ./gca_cc_tool --generate complete --n 16 --algorithm tree --stats
//   $ ./gca_cc_tool --generate gnp:0.5 --n 128 --threads 4 --policy pool
//
// Algorithms: gca (default) | tree | ncells | pram | sv | unionfind | bfs
// Engine flags (--threads, --policy, --sweep, --substrate,
// --no-instrumentation, --record-access, --trace-out, --metrics-out) steer
// the solver backend and its observability; invalid combinations (e.g.
// --record-access with --threads 2) are rejected before the run with exit
// status 2.  --substrate picks the gca algorithm's engine: dense is the
// paper-faithful cell field, sparse_csr the O(m)-work CSR label-propagation
// engine, auto (default) routes by size and density — labelings are
// bit-identical either way (DESIGN.md §12).
// --sweep sparse (default) sweeps only each generation's active region;
// --sweep dense sweeps the whole field every step (verification mode) —
// both produce bit-identical labels and logical statistics.
// Resilience flags (gca algorithm only): --deadline-ms bounds the run's
// wall clock (expiry exits with status 3), --checkpoint-dir enables durable
// checkpoints (a relaunch resumes mid-algorithm), --retries N re-attempts
// a run that failed with detected corruption.
#include <cstdio>
#include <fstream>
#include <iostream>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/assert.hpp"
#include "common/cli.hpp"
#include "common/format.hpp"
#include "common/table.hpp"
#include "core/hirschberg_gca.hpp"
#include "core/hirschberg_ncells.hpp"
#include "core/hirschberg_tree.hpp"
#include "core/runner.hpp"
#include "gca/execution.hpp"
#include "gca/metrics.hpp"
#include "graph/cc_baselines.hpp"
#include "graph/generators.hpp"
#include "graph/io.hpp"
#include "graph/labeling.hpp"
#include "graph/union_find.hpp"
#include "pram/hirschberg.hpp"
#include "pram/shiloach_vishkin.hpp"

namespace {

using namespace gcalib;

graph::Graph load_graph(const CliArgs& args) {
  if (args.has("generate")) {
    const auto n = static_cast<graph::NodeId>(args.get_int("n", 16));
    const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 1));
    return graph::make_named(args.get_string("generate", "gnp:0.1"), n, seed);
  }
  const std::string format = args.get_string("format", "edges");
  std::istream* in = &std::cin;
  std::ifstream file;
  if (!args.positional().empty()) {
    file.open(args.positional().front());
    if (!file) {
      throw std::runtime_error("cannot open " + args.positional().front());
    }
    in = &file;
  }
  if (format == "edges") return graph::read_edge_list(*in);
  if (format == "dimacs") return graph::read_dimacs(*in);
  if (format == "matrix") {
    std::stringstream buffer;
    buffer << in->rdbuf();
    return graph::parse_matrix(buffer.str());
  }
  throw std::runtime_error("unknown format: " + format);
}

struct LabelingOutcome {
  std::vector<graph::NodeId> labels;
  std::size_t steps = 0;       ///< generations / PRAM steps (0 = n/a)
  std::size_t congestion = 0;  ///< max read congestion (0 = n/a)
};

/// The engine-backed "gca" algorithm, routed by substrate: dense keeps the
/// full resilience feature set (durable checkpoints, access recording);
/// sparse_csr runs the CSR engine through the Runner for the same retry /
/// deadline / recovered-note semantics.
LabelingOutcome run_gca_sparse(const graph::Graph& g,
                               const cli::EngineFlags& exec,
                               const gca::EngineOptions& engine,
                               gca::Trace* trace) {
  if (exec.record_access) {
    std::fprintf(stderr,
                 "warning: --record-access covers the dense field only; "
                 "ignored on the sparse_csr substrate\n");
  }
  core::RunnerOptions options;
  options.threads = engine.threads;
  options.policy = engine.policy;
  options.sweep = engine.sweep;
  options.substrate = gca::SubstrateMode::kSparseCsr;
  options.kernels = engine.kernels;
  options.sparse_mode = engine.sparse_mode;
  options.instrument = engine.instrumentation;
  options.sink = trace;
  options.deadline_ms = exec.deadline_ms;
  options.retries = exec.retries;
  // Durable GSKP checkpoints (DESIGN.md §15): the sparse engine honours
  // --checkpoint-dir with the same resume/cleanup semantics as the field.
  options.checkpoint_dir = exec.checkpoint_dir;
  const core::Runner runner(options);
  const core::QueryOutcome outcome = runner.try_solve(g);
  if (!outcome.ok()) {
    if (outcome.status.code == StatusCode::kDeadlineExceeded) {
      throw gca::DeadlineExceeded(outcome.status.message);
    }
    throw std::runtime_error(outcome.status.message);
  }
  if (outcome.recovered()) {
    std::fprintf(stderr, "note: recovered on attempt %u\n", outcome.attempts);
  }
  if (outcome.result.resumed) {
    std::fprintf(stderr,
                 "note: resumed from durable sparse checkpoint at round %u\n",
                 outcome.result.resume_round);
  }
  LabelingOutcome out;
  out.labels = outcome.result.labels;
  out.steps = outcome.result.generations;
  for (const gca::GenerationStats& stats : outcome.result.sweeps) {
    out.congestion = std::max(out.congestion, stats.max_congestion);
  }
  return out;
}

LabelingOutcome run_algorithm(const std::string& name, const graph::Graph& g,
                              const cli::EngineFlags& exec,
                              const gca::EngineOptions& engine,
                              gca::Trace* trace) {
  LabelingOutcome out;
  if (name == "gca") {
    // Auto-routing respects dense-only features: a query that wants access
    // recording stays on the dense machine (the same rule core::Runner
    // applies via requires_dense_machine).  Durable checkpoints no longer
    // pin — both substrates write them (GCKP / GSKP, DESIGN.md §15).
    gca::SubstrateMode requested = engine.substrate;
    if (requested == gca::SubstrateMode::kAuto && exec.record_access) {
      requested = gca::SubstrateMode::kDense;
    }
    const gca::SubstrateMode resolved = core::resolve_substrate(
        requested, g.node_count(), g.edge_count());
    if (resolved == gca::SubstrateMode::kSparseCsr) {
      return run_gca_sparse(g, exec, engine, trace);
    }
    core::RunOptions options;
    options.instrument = exec.instrumentation;
    options.threads = exec.threads;
    options.policy = gca::parse_execution_policy(exec.policy);
    options.sweep = gca::parse_sweep_mode(exec.sweep);
    options.kernels = gca::parse_kernel_variant(exec.kernels);
    options.record_access = exec.record_access;
    options.sink = trace;
    options.deadline_ms = exec.deadline_ms;
    options.checkpoint_dir = exec.checkpoint_dir;
    // Bounded retry on detected corruption (DESIGN.md §10): a fresh machine
    // re-derives everything from the input graph, so a transient upset need
    // not kill the invocation.  Deadline expiry is final — no retry.
    core::RunResult r;
    for (unsigned attempt = 0;; ++attempt) {
      try {
        core::HirschbergGca machine(g);
        r = machine.run(options);
        if (attempt > 0) {
          std::fprintf(stderr, "note: recovered on attempt %u\n", attempt + 1);
        }
        break;
      } catch (const ContractViolation& failure) {
        if (attempt >= exec.retries) throw;
        std::fprintf(stderr, "attempt %u failed (%s); retrying\n", attempt + 1,
                     failure.what());
      }
    }
    out.labels = r.labels;
    out.steps = r.generations;
    if (r.resumed) {
      std::fprintf(stderr, "note: resumed from durable checkpoint at iteration %u\n",
                   r.resume_iteration);
    }
    for (const core::StepRecord& record : r.records) {
      out.congestion = std::max(out.congestion, record.stats.max_congestion);
    }
  } else if (name == "tree") {
    core::HirschbergGcaTree machine(g);
    const core::TreeRunResult r = machine.run(exec.instrumentation);
    out.labels = r.labels;
    out.steps = r.generations;
    out.congestion =
        std::max(r.static_max_congestion, r.dynamic_max_congestion);
  } else if (name == "ncells") {
    const core::NCellRunResult r = core::hirschberg_ncells(g);
    out.labels = r.labels;
    out.steps = r.generations;
    out.congestion = r.max_congestion;
  } else if (name == "pram") {
    const pram::HirschbergPramResult r = pram::run_hirschberg_pram(g);
    out.labels = r.labels;
    out.steps = r.stats.steps;
    out.congestion = r.stats.max_read_congestion;
  } else if (name == "sv") {
    const pram::ShiloachVishkinPramResult r = pram::run_shiloach_vishkin_pram(g);
    out.labels = r.labels;
    out.steps = r.stats.steps;
    out.congestion = r.stats.max_read_congestion;
  } else if (name == "unionfind") {
    out.labels = graph::union_find_components(g);
  } else if (name == "bfs") {
    out.labels = graph::bfs_components(g);
  } else {
    throw std::runtime_error("unknown algorithm: " + name);
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const CliArgs args = CliArgs::parse_or_exit(
        argc, argv,
        cli::with_engine_flags({{"format", true},
                                   {"algorithm", true},
                                   {"generate", true},
                                   {"n", true},
                                   {"seed", true},
                                   {"stats", false},
                                   {"quiet", false},
                                   {"verify", false}}));
    const graph::Graph g = load_graph(args);
    const std::string algorithm = args.get_string("algorithm", "gca");
    const cli::EngineFlags exec = cli::engine_flags(args);
    // Reject bad combos before the run — the shared exit-2 surface.
    const gca::EngineOptions engine = gca::options_from_flags_or_exit(exec);
    gca::Trace trace;
    const LabelingOutcome outcome =
        run_algorithm(algorithm, g, exec, engine,
                      exec.wants_metrics() ? &trace : nullptr);

    if (args.has("verify")) {
      if (outcome.labels != graph::union_find_components(g)) {
        std::fprintf(stderr, "VERIFICATION FAILED: %s disagrees with union-find\n",
                     algorithm.c_str());
        return 2;
      }
      std::printf("verified against union-find: ok\n");
    }

    if (!args.has("quiet")) {
      std::printf("node label\n");
      for (graph::NodeId v = 0; v < g.node_count(); ++v) {
        std::printf("%u %u\n", v, outcome.labels[v]);
      }
    }

    std::printf("# graph: n=%u m=%zu density=%s\n", g.node_count(),
                g.edge_count(), fixed(g.density(), 4).c_str());
    std::printf("# algorithm: %s\n", algorithm.c_str());
    std::printf("# components: %zu\n", graph::component_count(outcome.labels));
    if (args.has("stats") && outcome.steps > 0) {
      std::printf("# synchronous steps: %zu\n", outcome.steps);
      std::printf("# max read congestion: %zu\n", outcome.congestion);
    }
    if (exec.wants_metrics()) {
      if (!exec.trace_out.empty()) gca::write_trace_file(trace, exec.trace_out);
      if (!exec.metrics_out.empty()) {
        gca::write_metrics_file(trace, exec.metrics_out);
      }
      // Only the engine-backed algorithm ("gca") feeds the sink; the files
      // are still written (empty but valid) for the others.
      const std::string summary = gca::format_summary(trace.summary());
      std::size_t pos = 0;
      while (pos < summary.size()) {
        std::size_t end = summary.find('\n', pos);
        if (end == std::string::npos) end = summary.size();
        std::printf("# %.*s\n", static_cast<int>(end - pos),
                    summary.c_str() + pos);
        pos = end + 1;
      }
    }
    return 0;
  } catch (const gca::DeadlineExceeded& e) {
    std::fprintf(stderr, "deadline exceeded: %s\n", e.what());
    return 3;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
