// Route planner: all-pairs travel times over a synthetic road network,
// computed by min-plus matrix powering on the GCA (core/apsp.hpp), checked
// against Floyd–Warshall, with a CSV export for downstream tooling.
//
//   $ ./route_planner [--towns 24 --extra-roads 12 --seed 4] [--csv out.csv]
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "common/cli.hpp"
#include "common/csv.hpp"
#include "common/format.hpp"
#include "common/rng.hpp"
#include "common/table.hpp"
#include "core/apsp.hpp"
#include "graph/generators.hpp"

int main(int argc, char** argv) {
  using namespace gcalib;
  const CliArgs args = CliArgs::parse_or_exit(argc, argv,
                                      {{"towns", true},
                                       {"extra-roads", true},
                                       {"seed", true},
                                       {"csv", true}});
  const auto towns = static_cast<graph::NodeId>(args.get_int("towns", 24));
  const auto extra = static_cast<std::size_t>(args.get_int("extra-roads", 12));
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 4));

  // Road network: a random spanning tree (every town reachable) plus some
  // extra shortcut roads; travel times 5..60 minutes.
  graph::Graph roads = graph::random_tree(towns, seed);
  Xoshiro256 rng(seed * 31 + 7);
  std::size_t added = 0;
  while (added < extra) {
    const auto u = static_cast<graph::NodeId>(rng.below(towns));
    const auto v = static_cast<graph::NodeId>(rng.below(towns));
    if (u != v && roads.add_edge(u, v)) ++added;
  }
  core::DistMatrix times(towns);
  for (const graph::Edge& e : roads.edges()) {
    const auto minutes = static_cast<core::Dist>(5 + rng.below(56));
    times.set(e.u, e.v, minutes);
    times.set(e.v, e.u, minutes);
  }

  std::printf("road network: %u towns, %zu roads\n", towns, roads.edge_count());

  const core::ApspRunResult result = core::apsp_gca(times);
  if (result.distances != core::apsp_floyd_warshall(times)) {
    std::fprintf(stderr, "GCA and Floyd-Warshall disagree — bug!\n");
    return 1;
  }
  std::printf("all-pairs travel times computed in %zu GCA generations "
              "(max congestion %zu)\n\n",
              result.generations, result.max_congestion);

  // Report: the most remote town pairs and each town's eccentricity.
  core::Dist worst = 0;
  std::size_t worst_u = 0, worst_v = 0;
  std::vector<core::Dist> eccentricity(towns, 0);
  for (graph::NodeId u = 0; u < towns; ++u) {
    for (graph::NodeId v = 0; v < towns; ++v) {
      const core::Dist d = result.distances.at(u, v);
      eccentricity[u] = std::max(eccentricity[u], d);
      if (d > worst && d < core::kUnreachable) {
        worst = d;
        worst_u = u;
        worst_v = v;
      }
    }
  }
  std::printf("network diameter: %lld minutes (town %zu -> town %zu)\n",
              static_cast<long long>(worst), worst_u, worst_v);

  TextTable table({"town", "eccentricity [min]"});
  for (graph::NodeId u = 0; u < std::min<graph::NodeId>(towns, 8); ++u) {
    std::string town_name = "T";
    town_name += std::to_string(u);
    table.add_row({town_name,
                   std::to_string(static_cast<long long>(eccentricity[u]))});
  }
  std::fputs(table.render().c_str(), stdout);
  if (towns > 8) std::printf("(first 8 towns shown)\n");

  if (args.has("csv")) {
    CsvWriter csv({"from", "to", "minutes"});
    for (graph::NodeId u = 0; u < towns; ++u) {
      for (graph::NodeId v = 0; v < towns; ++v) {
        if (u == v) continue;
        csv.add_row({std::to_string(u), std::to_string(v),
                     std::to_string(static_cast<long long>(
                         result.distances.at(u, v)))});
      }
    }
    const std::string path = args.get_string("csv", "routes.csv");
    std::ofstream out(path);
    out << csv.render();
    std::printf("\nwrote %zu rows to %s\n", csv.rows(), path.c_str());
  }
  return 0;
}
