// gcal_run — execute a gcal rule-description file on a graph.
//
//   $ ./gcal_run program.gcal --generate gnp:0.2 --n 16
//   $ ./gcal_run --builtin hirschberg --generate complete --n 8 --verify
//   $ ./gcal_run --builtin hirschberg --n 64 --threads 4 --policy pool
//   $ ./gcal_run --builtin hirschberg --n 64 --trace-out run.trace.json
//   $ ./gcal_run --builtin hirschberg --n 256 --deadline-ms 500
//   $ ./gcal_run --show-builtin          # print the embedded program
//
// --deadline-ms bounds the run's wall clock (expiry exits with status 3);
// --checkpoint-dir is accepted for flag uniformity but ignored here.
//
// gcal is the paper's Figure-2 state graph as a language; see
// src/gcal/interpreter.hpp for the reference.
#include <cstdio>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string>

#include "common/assert.hpp"
#include "common/cli.hpp"
#include "gca/cancel.hpp"
#include "gca/execution.hpp"
#include "gca/metrics.hpp"
#include "gcal/interpreter.hpp"
#include "gcal/parser.hpp"
#include "graph/generators.hpp"
#include "graph/labeling.hpp"
#include "graph/union_find.hpp"

int main(int argc, char** argv) {
  using namespace gcalib;
  try {
    const CliArgs args = CliArgs::parse_or_exit(
        argc, argv,
        cli::with_engine_flags({{"generate", true},
                                   {"n", true},
                                   {"seed", true},
                                   {"builtin", true},
                                   {"show-builtin", false},
                                   {"verify", false},
                                   {"trace", false}}));
    if (args.has("show-builtin")) {
      std::fputs(gcal::hirschberg_gcal_source().c_str(), stdout);
      return 0;
    }

    std::string source;
    if (args.has("builtin")) {
      const std::string name = args.get_string("builtin", "hirschberg");
      if (name != "hirschberg") {
        throw std::runtime_error("unknown builtin program: " + name);
      }
      source = gcal::hirschberg_gcal_source();
    } else {
      if (args.positional().empty()) {
        throw std::runtime_error(
            "usage: gcal_run <file.gcal> [--generate FAMILY --n N] | "
            "--builtin hirschberg | --show-builtin");
      }
      std::ifstream file(args.positional().front());
      if (!file) {
        throw std::runtime_error("cannot open " + args.positional().front());
      }
      std::stringstream buffer;
      buffer << file.rdbuf();
      source = buffer.str();
    }

    const auto n = static_cast<graph::NodeId>(args.get_int("n", 8));
    const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 1));
    const graph::Graph g =
        graph::make_named(args.get_string("generate", "gnp:0.25"), n, seed);

    const gcal::Program program = gcal::parse(source);
    std::printf("program '%s': %zu prologue + %zu loop generations\n",
                program.name.c_str(), program.prologue.size(),
                program.loop.size());

    gcal::Interpreter interpreter(program);
    gcal::Interpreter::GenerationHook hook;
    if (args.has("trace")) {
      hook = [](const std::string& label, const std::vector<std::uint64_t>&) {
        std::printf("  executed %s\n", label.c_str());
      };
    }
    const cli::EngineFlags flags = cli::engine_flags(args);
    const gca::EngineOptions exec = gca::options_from_flags_or_exit(flags);
    if (exec.substrate == gca::SubstrateMode::kSparseCsr) {
      std::fprintf(stderr,
                   "warning: --substrate sparse_csr is ignored by gcal_run "
                   "(the GCAL interpreter executes on the dense cell "
                   "field)\n");
    }
    if (!flags.checkpoint_dir.empty()) {
      std::fprintf(stderr,
                   "warning: --checkpoint-dir is ignored by gcal_run "
                   "(durable checkpoints cover the native Hirschberg "
                   "machine only)\n");
    }
    gca::Trace trace;
    const gcal::GcalRunResult result =
        interpreter.run(g, hook, exec, flags.wants_metrics() ? &trace : nullptr,
                        flags.deadline_ms);

    std::printf("graph: n=%u m=%zu\n", g.node_count(), g.edge_count());
    std::printf("generations executed: %zu (iterations: %u)\n",
                result.generations, result.iterations);
    std::printf("max read congestion: %zu\n", result.max_congestion);
    std::printf("labels:");
    for (graph::NodeId label : result.labels) std::printf(" %u", label);
    std::printf("\ncomponents: %zu\n", graph::component_count(result.labels));

    if (flags.wants_metrics()) {
      if (!flags.trace_out.empty()) {
        gca::write_trace_file(trace, flags.trace_out);
      }
      if (!flags.metrics_out.empty()) {
        gca::write_metrics_file(trace, flags.metrics_out);
      }
      std::fputs(gca::format_summary(trace.summary()).c_str(), stdout);
    }

    if (args.has("verify")) {
      if (result.labels != graph::union_find_components(g)) {
        std::fprintf(stderr, "VERIFICATION FAILED\n");
        return 2;
      }
      std::printf("verified against union-find: ok\n");
    }
    return 0;
  } catch (const gca::DeadlineExceeded& e) {
    std::fprintf(stderr, "deadline exceeded: %s\n", e.what());
    return 3;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
