// Resilient connected components on the GCA: runs Hirschberg's algorithm
// while a seeded Poisson fault storm strikes the cell field, and shows the
// detection/rollback machinery carrying the run to a correct labeling.
//
// Usage:
//   gca_resilient_cc [--family gnp:0.1] [--n 24] [--seed 7] [--rate 0.01]
//                    [--threads 1] [--policy pool] [--no-instrumentation]
//                    [--replicas 3] [--trace-out FILE] [--metrics-out FILE]
//                    [--checkpoint-dir DIR] [--deadline-ms N] [--step-delay-us N]
//
//   --rate           expected faults per engine step (Poisson); 0 = none
//                    (the run is then fully deterministic)
//   --replicas       NMR pricing block (masking alternative; cost model only)
//   --checkpoint-dir durable checkpoints: a relaunch after a crash (even
//                    SIGKILL) resumes mid-algorithm from the directory
//   --deadline-ms    wall-clock budget; expiry exits with code 3
//   --step-delay-us  artificial per-step stall (crash-recovery smoke tests
//                    use it to widen the kill window)
// The shared execution flags steer the GCA engine backend of the resilient
// run (the recovery re-executions reuse the same worker pool).
//
// Exit codes: 0 ok, 1 wrong labels, 2 usage, 3 deadline exceeded.
#include <chrono>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "common/assert.hpp"
#include "common/cli.hpp"
#include "common/format.hpp"
#include "core/schedule.hpp"
#include "fault/fault_plan.hpp"
#include "fault/monitors.hpp"
#include "fault/recovery.hpp"
#include "gca/execution.hpp"
#include "gca/metrics.hpp"
#include "graph/cc_baselines.hpp"
#include "graph/generators.hpp"

namespace {

using gcalib::fault::FaultKind;
using gcalib::fault::FaultPlan;

std::size_t count_kind(const FaultPlan& plan, FaultKind kind) {
  std::size_t count = 0;
  for (const gcalib::fault::FaultEvent& event : plan.events()) {
    if (event.kind == kind) ++count;
  }
  return count;
}

}  // namespace

int main(int argc, char** argv) {
  const gcalib::CliArgs args = gcalib::CliArgs::parse_or_exit(
      argc, argv,
      gcalib::cli::with_engine_flags({{"family", true},
                                         {"n", true},
                                         {"seed", true},
                                         {"rate", true},
                                         {"replicas", true},
                                         {"step-delay-us", true}}));
  const auto n = static_cast<gcalib::graph::NodeId>(args.get_int("n", 24));
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 7));
  const double rate = args.get_double("rate", 0.01);
  const std::string family = args.get_string("family", "gnp:0.1");
  gcalib::cli::EngineFlags exec;
  gcalib::gca::ExecutionPolicy policy = gcalib::gca::ExecutionPolicy::kPool;
  try {
    exec = gcalib::cli::engine_flags(args);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 2;
  }
  const gcalib::gca::EngineOptions engine =
      gcalib::gca::options_from_flags_or_exit(exec);
  policy = engine.policy;
  if (engine.substrate == gcalib::gca::SubstrateMode::kSparseCsr) {
    std::fprintf(stderr,
                 "warning: --substrate sparse_csr is ignored by "
                 "gca_resilient_cc (fault injection instruments the dense "
                 "cell field)\n");
  }
  if (n < 1) {
    std::fprintf(stderr, "error: --n must be >= 1\n");
    return 2;
  }
  if (rate < 0.0) {
    std::fprintf(stderr, "error: --rate must be >= 0\n");
    return 2;
  }
  const std::int64_t step_delay_us = args.get_int("step-delay-us", 0);
  if (step_delay_us < 0) {
    std::fprintf(stderr, "error: --step-delay-us must be >= 0\n");
    return 2;
  }

  gcalib::graph::Graph g;
  try {
    g = gcalib::graph::make_named(family, n, seed);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 2;
  }
  const std::vector<gcalib::graph::NodeId> expected =
      gcalib::graph::bfs_components(g);

  const FaultPlan plan = FaultPlan::poisson(n, rate, seed);
  std::printf("graph: %s, n = %u, %zu edges\n", family.c_str(), n,
              g.edge_count());
  std::printf(
      "fault storm: %zu events over %zu engine steps "
      "(rate %.3g, seed %llu)\n",
      plan.size(), gcalib::core::total_generations(n), rate,
      static_cast<unsigned long long>(seed));
  std::printf("  bit flips: %zu, stuck cells: %zu, dropped reads: %zu, "
              "wrong pointers: %zu\n\n",
              count_kind(plan, FaultKind::kBitFlip),
              count_kind(plan, FaultKind::kStuckCell),
              count_kind(plan, FaultKind::kDroppedRead),
              count_kind(plan, FaultKind::kWrongPointer));

  gcalib::core::HirschbergGca machine(g);
  gcalib::gca::Trace trace;
  gcalib::fault::ResilientOptions options;
  options.base.instrument = exec.instrumentation;
  options.base.threads = exec.threads;
  options.base.policy = policy;
  options.base.sweep = gcalib::gca::parse_sweep_mode(exec.sweep);
  options.base.kernels = engine.kernels;
  options.base.record_access = exec.record_access;
  if (exec.wants_metrics()) options.base.sink = &trace;
  options.max_rollbacks = 4;
  options.max_restarts = 2;
  options.checkpoint_dir = exec.checkpoint_dir;
  options.deadline_ms = exec.deadline_ms;
  if (step_delay_us > 0) {
    options.base.before_step = [step_delay_us](gcalib::core::HirschbergGca&,
                                               const gcalib::core::StepId&) {
      std::this_thread::sleep_for(std::chrono::microseconds(step_delay_us));
    };
  }

  try {
    const gcalib::fault::ResilientReport report =
        run_resilient(machine, g, plan, options);

    if (report.run.resumed) {
      std::printf("resumed from durable checkpoint at iteration %u (%s)\n",
                  report.run.resume_iteration, exec.checkpoint_dir.c_str());
    } else if (!exec.checkpoint_dir.empty()) {
      std::printf("durable checkpoints: %s (no resumable state found)\n",
                  exec.checkpoint_dir.c_str());
    }
    std::printf("faults delivered: %zu\n", report.faults_fired);
    std::printf("monitor violations: %zu\n", report.violations.size());
    for (std::size_t v = 0; v < report.violations.size() && v < 5; ++v) {
      const gcalib::fault::Violation& violation = report.violations[v];
      std::printf("  [gen %llu] %s: %s\n",
                  static_cast<unsigned long long>(violation.generation),
                  violation.monitor.c_str(), violation.message.c_str());
    }
    if (report.violations.size() > 5) {
      std::printf("  ... and %zu more\n", report.violations.size() - 5);
    }
    std::printf("recovery: %u rollbacks, %u restarts, %zu diagnoses\n",
                report.run.rollbacks, report.run.restarts,
                report.run.diagnoses.size());
    std::printf("generations executed: %zu (clean run: %zu)\n",
                report.run.generations,
                gcalib::core::total_generations(n));

    const bool correct = report.run.labels == expected;
    std::printf("labels vs sequential BFS baseline: %s\n",
                correct ? "MATCH" : "MISMATCH");
    if (!correct) return 1;
  } catch (const gcalib::gca::DeadlineExceeded& expired) {
    std::printf("deadline exceeded: %s\n", expired.what());
    if (!exec.checkpoint_dir.empty()) {
      std::printf("(relaunch with the same --checkpoint-dir to resume)\n");
    }
    return 3;
  } catch (const gcalib::ContractViolation& failure) {
    std::printf("run failed after exhausting recovery: %s\n", failure.what());
    std::printf("(a strike during generation 0 — before the restart anchor "
                "exists — is unrecoverable by design)\n");
  }

  if (exec.wants_metrics()) {
    // The trace also covers rolled-back re-executions — the timeline shows
    // what the recovery actually cost.
    if (!exec.trace_out.empty()) {
      gcalib::gca::write_trace_file(trace, exec.trace_out);
    }
    if (!exec.metrics_out.empty()) {
      gcalib::gca::write_metrics_file(trace, exec.metrics_out);
    }
    std::fputs(gcalib::gca::format_summary(trace.summary()).c_str(), stdout);
  }

  // Masking alternative: what N-modular redundancy would cost in hardware.
  const auto replicas =
      static_cast<unsigned>(args.get_int("replicas", 3));
  const gcalib::fault::NmrCost cost = gcalib::fault::nmr_cost(n, replicas);
  std::printf("\n%u-modular redundancy at n = %u (cost model):\n", replicas, n);
  std::printf("  %s LEs per field, %s LE voter, %s LEs total (%sx)\n",
              gcalib::with_commas(cost.logic_elements_single).c_str(),
              gcalib::with_commas(cost.voter_logic_elements).c_str(),
              gcalib::with_commas(cost.logic_elements_total).c_str(),
              gcalib::fixed(cost.overhead_factor, 2).c_str());
  return 0;
}
