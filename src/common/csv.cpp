#include "common/csv.hpp"

#include "common/assert.hpp"
#include "common/format.hpp"

namespace gcalib {

CsvWriter::CsvWriter(std::vector<std::string> headers)
    : headers_(std::move(headers)) {
  GCALIB_EXPECTS(!headers_.empty());
}

void CsvWriter::add_row(std::vector<std::string> cells) {
  GCALIB_EXPECTS(cells.size() == headers_.size());
  rows_.push_back(std::move(cells));
}

void CsvWriter::add_numeric_row(const std::vector<double>& values, int digits) {
  std::vector<std::string> cells;
  cells.reserve(values.size());
  for (double v : values) cells.push_back(fixed(v, digits));
  add_row(std::move(cells));
}

std::string CsvWriter::escape(const std::string& field) {
  const bool needs_quoting =
      field.find_first_of(",\"\n\r") != std::string::npos;
  if (!needs_quoting) return field;
  std::string out = "\"";
  for (char c : field) {
    if (c == '"') out += "\"\"";
    else out.push_back(c);
  }
  out += "\"";
  return out;
}

std::string CsvWriter::render() const {
  const auto render_row = [](const std::vector<std::string>& cells) {
    std::string line;
    for (std::size_t i = 0; i < cells.size(); ++i) {
      if (i != 0) line.push_back(',');
      line += escape(cells[i]);
    }
    return line + "\n";
  };
  std::string out = render_row(headers_);
  for (const auto& row : rows_) out += render_row(row);
  return out;
}

}  // namespace gcalib
