#include "common/format.hpp"

#include <cmath>
#include <cstdio>
#include <limits>

namespace gcalib {

std::string with_commas(std::uint64_t value) {
  std::string digits = std::to_string(value);
  std::string out;
  out.reserve(digits.size() + digits.size() / 3);
  std::size_t lead = digits.size() % 3;
  if (lead == 0) lead = 3;
  for (std::size_t i = 0; i < digits.size(); ++i) {
    if (i != 0 && (i - lead) % 3 == 0 && i >= lead) out.push_back(',');
    out.push_back(digits[i]);
  }
  return out;
}

std::string fixed(double value, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", digits, value);
  return buf;
}

std::string pad_left(const std::string& s, std::size_t w) {
  if (s.size() >= w) return s;
  return std::string(w - s.size(), ' ') + s;
}

std::string pad_right(const std::string& s, std::size_t w) {
  if (s.size() >= w) return s;
  return s + std::string(w - s.size(), ' ');
}

std::string join(const std::vector<std::string>& parts, const std::string& sep) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i != 0) out += sep;
    out += parts[i];
  }
  return out;
}

std::string ratio(double num, double denom, int digits) {
  if (denom == 0.0) return "inf";
  return fixed(num / denom, digits) + "x";
}

}  // namespace gcalib
