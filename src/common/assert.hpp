// Lightweight always-on assertion support for gcalib.
//
// Simulator correctness depends on invariants (field geometry, access-mode
// discipline) that must hold in release builds too, so these checks are not
// compiled out.  Violations throw `gcalib::ContractViolation` instead of
// aborting, which lets tests assert on them.
#pragma once

#include <stdexcept>
#include <string>

namespace gcalib {

/// Thrown when a precondition, postcondition or internal invariant fails.
class ContractViolation : public std::logic_error {
 public:
  explicit ContractViolation(const std::string& what) : std::logic_error(what) {}
};

namespace detail {
[[noreturn]] inline void contract_fail(const char* kind, const char* expr,
                                       const char* file, int line,
                                       const std::string& msg) {
  std::string out = std::string(kind) + " failed: " + expr + " at " + file +
                    ":" + std::to_string(line);
  if (!msg.empty()) out += " — " + msg;
  throw ContractViolation(out);
}
}  // namespace detail

}  // namespace gcalib

#define GCALIB_CHECK_IMPL(kind, expr, msg)                                 \
  do {                                                                     \
    if (!(expr)) {                                                         \
      ::gcalib::detail::contract_fail(kind, #expr, __FILE__, __LINE__,     \
                                      (msg));                              \
    }                                                                      \
  } while (false)

/// Precondition on public API arguments.
#define GCALIB_EXPECTS(expr) GCALIB_CHECK_IMPL("precondition", expr, "")
#define GCALIB_EXPECTS_MSG(expr, msg) GCALIB_CHECK_IMPL("precondition", expr, msg)

/// Internal invariant; a failure is a library bug.
#define GCALIB_ASSERT(expr) GCALIB_CHECK_IMPL("invariant", expr, "")
#define GCALIB_ASSERT_MSG(expr, msg) GCALIB_CHECK_IMPL("invariant", expr, msg)

/// Postcondition on results handed back to callers.
#define GCALIB_ENSURES(expr) GCALIB_CHECK_IMPL("postcondition", expr, "")
