// Minimal command-line option parser for examples and bench binaries.
//
// Supports `--name value` and `--name=value` forms plus boolean flags.
// Unknown options raise errors so typos in experiment sweeps fail loudly.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace gcalib {

/// Parsed command line: option map plus positional arguments.
class CliArgs {
 public:
  /// Parses argv; options must be declared via `spec` (name -> takes_value).
  /// Throws std::runtime_error on unknown options or missing values.
  static CliArgs parse(int argc, const char* const* argv,
                       const std::map<std::string, bool>& spec);

  /// Like `parse`, but prints the error and the accepted options to stderr
  /// and exits with status 64 (EX_USAGE) instead of throwing.  "--help" is
  /// answered with the option list on stdout and exit 0.  Intended for the
  /// example/bench binaries' main().
  static CliArgs parse_or_exit(int argc, const char* const* argv,
                               const std::map<std::string, bool>& spec);

  [[nodiscard]] bool has(const std::string& name) const;
  [[nodiscard]] std::string get_string(const std::string& name,
                                       const std::string& fallback) const;
  [[nodiscard]] std::int64_t get_int(const std::string& name,
                                     std::int64_t fallback) const;
  [[nodiscard]] double get_double(const std::string& name, double fallback) const;
  [[nodiscard]] const std::vector<std::string>& positional() const {
    return positional_;
  }

 private:
  std::map<std::string, std::string> values_;
  std::vector<std::string> positional_;
};

namespace cli {

/// The engine flags every tool accepts, so the engine backend and its
/// observability are selectable uniformly across examples and benches:
///   --threads N            sweep width (default 1)
///   --policy NAME          sequential | spawn | pool (default "pool")
///   --sweep MODE           dense | sparse (default "sparse"): whether the
///                          engine honours per-generation active regions
///   --substrate NAME       dense | sparse_csr | auto (default "auto"):
///                          which solver substrate a query runs on — the
///                          paper's cell field or the CSR label-propagation
///                          engine (DESIGN.md §12)
///   --sparse-mode NAME     sync | async | auto (default "auto"): the CSR
///                          substrate's generation loop — double-buffered
///                          synchronous sweeps (the golden reference) or
///                          concurrent CAS-min label propagation with
///                          frontier worklists; auto picks async whenever
///                          the sweep is parallel (DESIGN.md §14)
///   --no-instrumentation   disable per-step congestion statistics
///   --record-access        record individual (reader, target) access edges
///                          (requires an effectively sequential sweep)
///   --trace-out FILE       write a Chrome trace_event JSON of the run
///   --metrics-out FILE     write per-step metrics (.json = JSON, else CSV)
///   --kernels NAME         bulk-kernel variant: scalar | avx2 | neon | auto
///   --deadline-ms N        wall-clock budget per run/query (0 = unlimited)
///   --checkpoint-dir DIR   durable checkpoints: resume from an intact
///                          checkpoint found in DIR and keep it current
///   --retries N            re-attempts after a detected-corruption failure
/// The policy, sweep mode, substrate, sparse mode and kernel variant are
/// carried as their spelled names; convert with
/// gca::parse_execution_policy / gca::parse_sweep_mode /
/// gca::parse_substrate_mode / gca::parse_sparse_mode /
/// gca::parse_kernel_variant (or build validated engine options with
/// gca::options_from_flags) at the point of use — common/ stays below gca/
/// in the layering.
struct EngineFlags {
  unsigned threads = 1;
  std::string policy = "pool";
  std::string sweep = "sparse";
  std::string substrate = "auto";
  std::string sparse_mode = "auto";
  std::string kernels = "auto";
  bool instrumentation = true;
  bool record_access = false;
  std::string trace_out;    ///< empty = tracing disabled
  std::string metrics_out;  ///< empty = metrics export disabled
  std::int64_t deadline_ms = 0;  ///< 0 = unlimited
  std::string checkpoint_dir;    ///< empty = no durable checkpoints
  unsigned retries = 0;          ///< 0 = fail on first detected corruption

  /// True when the tool should attach a metrics sink to the run.
  [[nodiscard]] bool wants_metrics() const {
    return !trace_out.empty() || !metrics_out.empty();
  }
};

/// Pre-rename spelling of `EngineFlags` (kept for out-of-tree callers; the
/// in-repo tools all migrated with the `--substrate` redesign).
using ExecutionFlags = EngineFlags;

/// Adds the shared engine options to a tool's option spec.
[[nodiscard]] std::map<std::string, bool> with_engine_flags(
    std::map<std::string, bool> spec);

/// Extracts the shared engine flags; throws std::runtime_error on invalid
/// values (e.g. --threads 0).
[[nodiscard]] EngineFlags engine_flags(const CliArgs& args);

/// Pre-rename spellings (see `ExecutionFlags`).
[[nodiscard]] std::map<std::string, bool> with_execution_flags(
    std::map<std::string, bool> spec);
[[nodiscard]] ExecutionFlags execution_flags(const CliArgs& args);

/// The service/batch flags of tools that drive a `core::Runner` (today:
/// gcad) on top of the engine flags:
///   --retry-backoff-ms N   base backoff between retry attempts, doubled
///                          per retry and clamped to the deadline budget
struct RunnerFlags {
  EngineFlags engine;
  std::int64_t retry_backoff_ms = 0;
};

/// Adds the shared runner options (a superset of the engine options) to a
/// tool's option spec.
[[nodiscard]] std::map<std::string, bool> with_runner_flags(
    std::map<std::string, bool> spec);

/// Extracts the shared runner flags; throws std::runtime_error on invalid
/// values.
[[nodiscard]] RunnerFlags runner_flags(const CliArgs& args);

}  // namespace cli

}  // namespace gcalib
