// Minimal CSV writer for machine-readable bench output (plotting sweeps).
//
// RFC-4180-ish: fields containing commas, quotes or newlines are quoted
// with doubled inner quotes; rows are '\n'-terminated.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace gcalib {

/// Accumulates rows and renders CSV text.
class CsvWriter {
 public:
  /// Creates a writer with the given column headers.
  explicit CsvWriter(std::vector<std::string> headers);

  /// Appends a data row; must match the header arity.
  void add_row(std::vector<std::string> cells);

  /// Convenience for numeric rows.
  void add_numeric_row(const std::vector<double>& values, int digits = 6);

  [[nodiscard]] std::size_t rows() const { return rows_.size(); }
  [[nodiscard]] std::size_t columns() const { return headers_.size(); }

  /// Renders header + rows.
  [[nodiscard]] std::string render() const;

  /// Escapes one field per RFC 4180.
  [[nodiscard]] static std::string escape(const std::string& field);

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace gcalib
