#include "common/cli.hpp"

#include <cstdio>
#include <cstdlib>
#include <stdexcept>

namespace gcalib {

namespace {

void print_options(std::FILE* out, const std::map<std::string, bool>& spec) {
  std::fprintf(out, "options:\n");
  for (const auto& [name, takes_value] : spec) {
    std::fprintf(out, "  --%s%s\n", name.c_str(),
                 takes_value ? " <value>" : "");
  }
}

}  // namespace

CliArgs CliArgs::parse(int argc, const char* const* argv,
                       const std::map<std::string, bool>& spec) {
  CliArgs out;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      out.positional_.push_back(std::move(arg));
      continue;
    }
    std::string name = arg.substr(2);
    std::optional<std::string> inline_value;
    if (const auto eq = name.find('='); eq != std::string::npos) {
      inline_value = name.substr(eq + 1);
      name = name.substr(0, eq);
    }
    const auto it = spec.find(name);
    if (it == spec.end()) {
      throw std::runtime_error("unknown option --" + name);
    }
    const bool takes_value = it->second;
    if (!takes_value) {
      if (inline_value) {
        throw std::runtime_error("option --" + name + " does not take a value");
      }
      out.values_[name] = "true";
      continue;
    }
    if (inline_value) {
      out.values_[name] = *inline_value;
    } else {
      if (i + 1 >= argc) {
        throw std::runtime_error("option --" + name + " requires a value");
      }
      out.values_[name] = argv[++i];
    }
  }
  return out;
}

CliArgs CliArgs::parse_or_exit(int argc, const char* const* argv,
                               const std::map<std::string, bool>& spec) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      print_options(stdout, spec);
      std::exit(0);
    }
  }
  try {
    return parse(argc, argv, spec);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    print_options(stderr, spec);
    std::exit(64);
  }
}

bool CliArgs::has(const std::string& name) const {
  return values_.count(name) != 0;
}

std::string CliArgs::get_string(const std::string& name,
                                const std::string& fallback) const {
  const auto it = values_.find(name);
  return it == values_.end() ? fallback : it->second;
}

std::int64_t CliArgs::get_int(const std::string& name, std::int64_t fallback) const {
  const auto it = values_.find(name);
  return it == values_.end() ? fallback : std::stoll(it->second);
}

double CliArgs::get_double(const std::string& name, double fallback) const {
  const auto it = values_.find(name);
  return it == values_.end() ? fallback : std::stod(it->second);
}

namespace cli {

std::map<std::string, bool> with_engine_flags(
    std::map<std::string, bool> spec) {
  spec.emplace("threads", true);
  spec.emplace("policy", true);
  spec.emplace("sweep", true);
  spec.emplace("substrate", true);
  spec.emplace("sparse-mode", true);
  spec.emplace("kernels", true);
  spec.emplace("no-instrumentation", false);
  spec.emplace("record-access", false);
  spec.emplace("trace-out", true);
  spec.emplace("metrics-out", true);
  spec.emplace("deadline-ms", true);
  spec.emplace("checkpoint-dir", true);
  spec.emplace("retries", true);
  return spec;
}

EngineFlags engine_flags(const CliArgs& args) {
  EngineFlags flags;
  const std::int64_t threads = args.get_int("threads", 1);
  if (threads < 1) {
    throw std::runtime_error("--threads must be >= 1");
  }
  flags.threads = static_cast<unsigned>(threads);
  flags.policy = args.get_string("policy", flags.policy);
  flags.sweep = args.get_string("sweep", flags.sweep);
  flags.substrate = args.get_string("substrate", flags.substrate);
  flags.sparse_mode = args.get_string("sparse-mode", flags.sparse_mode);
  flags.kernels = args.get_string("kernels", flags.kernels);
  flags.instrumentation = !args.has("no-instrumentation");
  flags.record_access = args.has("record-access");
  flags.trace_out = args.get_string("trace-out", "");
  flags.metrics_out = args.get_string("metrics-out", "");
  const std::int64_t deadline = args.get_int("deadline-ms", 0);
  if (deadline < 0) {
    throw std::runtime_error("--deadline-ms must be >= 0 (0 = unlimited)");
  }
  flags.deadline_ms = deadline;
  flags.checkpoint_dir = args.get_string("checkpoint-dir", "");
  const std::int64_t retries = args.get_int("retries", 0);
  if (retries < 0 || retries > 1000) {
    throw std::runtime_error("--retries must be in [0, 1000]");
  }
  flags.retries = static_cast<unsigned>(retries);
  return flags;
}

std::map<std::string, bool> with_execution_flags(
    std::map<std::string, bool> spec) {
  return with_engine_flags(std::move(spec));
}

ExecutionFlags execution_flags(const CliArgs& args) {
  return engine_flags(args);
}

std::map<std::string, bool> with_runner_flags(
    std::map<std::string, bool> spec) {
  spec = with_engine_flags(std::move(spec));
  spec.emplace("retry-backoff-ms", true);
  return spec;
}

RunnerFlags runner_flags(const CliArgs& args) {
  RunnerFlags flags;
  flags.engine = engine_flags(args);
  const std::int64_t backoff = args.get_int("retry-backoff-ms", 0);
  if (backoff < 0) {
    throw std::runtime_error("--retry-backoff-ms must be >= 0");
  }
  flags.retry_backoff_ms = backoff;
  return flags;
}

}  // namespace cli

}  // namespace gcalib
