// CRC-32 (IEEE 802.3, polynomial 0xEDB88320) for artifact integrity.
//
// Used by the durable checkpoint format (core/checkpoint.hpp) to detect
// torn writes and bit rot on load.  The table is built at compile time;
// the streaming form lets callers checksum a header and payload without
// concatenating them first.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>

namespace gcalib {

namespace detail {

consteval std::array<std::uint32_t, 256> make_crc32_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int bit = 0; bit < 8; ++bit) {
      c = (c & 1u) ? (0xEDB88320u ^ (c >> 1)) : (c >> 1);
    }
    table[i] = c;
  }
  return table;
}

inline constexpr std::array<std::uint32_t, 256> kCrc32Table =
    make_crc32_table();

}  // namespace detail

/// Streaming update: feeds `size` bytes into a running CRC state.  Start
/// from `crc32_init()` and finish with `crc32_final(state)`.
[[nodiscard]] constexpr std::uint32_t crc32_init() { return 0xFFFFFFFFu; }

[[nodiscard]] inline std::uint32_t crc32_update(std::uint32_t state,
                                                const void* data,
                                                std::size_t size) {
  const auto* bytes = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < size; ++i) {
    state = detail::kCrc32Table[(state ^ bytes[i]) & 0xFFu] ^ (state >> 8);
  }
  return state;
}

[[nodiscard]] constexpr std::uint32_t crc32_final(std::uint32_t state) {
  return state ^ 0xFFFFFFFFu;
}

/// One-shot convenience: CRC-32 of a buffer.
[[nodiscard]] inline std::uint32_t crc32(const void* data, std::size_t size) {
  return crc32_final(crc32_update(crc32_init(), data, size));
}

}  // namespace gcalib
