#include "common/table.hpp"

#include <algorithm>

#include "common/assert.hpp"
#include "common/format.hpp"

namespace gcalib {

TextTable::TextTable(std::vector<std::string> headers)
    : headers_(std::move(headers)), aligns_(headers_.size(), Align::kRight) {
  GCALIB_EXPECTS(!headers_.empty());
}

void TextTable::set_align(std::size_t column, Align align) {
  GCALIB_EXPECTS(column < aligns_.size());
  aligns_[column] = align;
}

void TextTable::add_row(std::vector<std::string> cells) {
  GCALIB_EXPECTS(cells.size() == headers_.size());
  rows_.push_back(Row{false, std::move(cells)});
}

void TextTable::add_rule() { rows_.push_back(Row{true, {}}); }

std::string TextTable::render() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const Row& row : rows_) {
    if (row.is_rule) continue;
    for (std::size_t c = 0; c < row.cells.size(); ++c) {
      widths[c] = std::max(widths[c], row.cells[c].size());
    }
  }

  const auto render_cells = [&](const std::vector<std::string>& cells) {
    std::string line;
    for (std::size_t c = 0; c < cells.size(); ++c) {
      if (c != 0) line += "  ";
      line += aligns_[c] == Align::kLeft ? pad_right(cells[c], widths[c])
                                         : pad_left(cells[c], widths[c]);
    }
    // Trim trailing spaces from left-aligned final columns.
    while (!line.empty() && line.back() == ' ') line.pop_back();
    return line + "\n";
  };

  std::size_t total = 0;
  for (std::size_t w : widths) total += w;
  total += 2 * (widths.size() - 1);
  const std::string rule(total, '-');

  std::string out = render_cells(headers_);
  out += rule + "\n";
  for (const Row& row : rows_) {
    out += row.is_rule ? rule + "\n" : render_cells(row.cells);
  }
  return out;
}

}  // namespace gcalib
