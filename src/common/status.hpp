// Status — the error taxonomy of the service-facing layers.
//
// The library's internal contracts throw `ContractViolation` (assert.hpp):
// a throw means a bug or corrupted state and unwinds the whole operation.
// The *service* layers (core::Runner batches, durable checkpoint IO,
// deadline enforcement) need the opposite posture: a failed query, a torn
// checkpoint file or an expired deadline is an expected outcome that must
// be reported per operation without aborting its siblings.  `Status` is
// that report — a small value type carrying a coarse machine-readable code
// plus a human-readable diagnosis, modelled on the widely used RPC
// canonical codes so the mapping to any transport is obvious.
#pragma once

#include <string>
#include <string_view>
#include <utility>

namespace gcalib {

/// Canonical outcome codes (subset of the RPC canonical space that the
/// library actually produces).
enum class StatusCode {
  kOk = 0,
  kCancelled,           ///< caller requested cooperative cancellation
  kDeadlineExceeded,    ///< per-operation wall-clock budget expired
  kInvalidArgument,     ///< malformed input (bad options, size mismatch)
  kNotFound,            ///< referenced artifact does not exist
  kDataLoss,            ///< artifact exists but is torn/corrupt (CRC, header)
  kFailedPrecondition,  ///< detected state corruption / contract trap
  kInternal,            ///< unexpected failure (foreign exception, IO error)
  kResourceExhausted,   ///< admission shed: queue full / no capacity in time
  kUnavailable,         ///< service is draining or shut down; retry elsewhere
};

/// Every code in declaration order, for exhaustive tests and tables.
inline constexpr StatusCode kAllStatusCodes[] = {
    StatusCode::kOk,           StatusCode::kCancelled,
    StatusCode::kDeadlineExceeded, StatusCode::kInvalidArgument,
    StatusCode::kNotFound,     StatusCode::kDataLoss,
    StatusCode::kFailedPrecondition, StatusCode::kInternal,
    StatusCode::kResourceExhausted, StatusCode::kUnavailable,
};

[[nodiscard]] constexpr const char* to_string(StatusCode code) {
  switch (code) {
    case StatusCode::kOk: return "OK";
    case StatusCode::kCancelled: return "CANCELLED";
    case StatusCode::kDeadlineExceeded: return "DEADLINE_EXCEEDED";
    case StatusCode::kInvalidArgument: return "INVALID_ARGUMENT";
    case StatusCode::kNotFound: return "NOT_FOUND";
    case StatusCode::kDataLoss: return "DATA_LOSS";
    case StatusCode::kFailedPrecondition: return "FAILED_PRECONDITION";
    case StatusCode::kInternal: return "INTERNAL";
    case StatusCode::kResourceExhausted: return "RESOURCE_EXHAUSTED";
    case StatusCode::kUnavailable: return "UNAVAILABLE";
  }
  return "UNKNOWN";
}

/// Inverse of `to_string`: the wire-format decoder of the gcad protocol.
/// Returns false (and leaves `out` untouched) for an unknown spelling, so
/// hostile input cannot smuggle in a fabricated code.
[[nodiscard]] constexpr bool status_code_from_string(std::string_view name,
                                                     StatusCode& out) {
  for (StatusCode code : kAllStatusCodes) {
    if (name == to_string(code)) {
      out = code;
      return true;
    }
  }
  return false;
}

/// Outcome of one fallible operation: a code plus a diagnosis message
/// (empty for kOk).  Default-constructed Status is OK.
struct Status {
  StatusCode code = StatusCode::kOk;
  std::string message;

  [[nodiscard]] bool ok() const { return code == StatusCode::kOk; }

  [[nodiscard]] static Status error(StatusCode code, std::string message) {
    return Status{code, std::move(message)};
  }

  /// "OK" or "CODE: message" for logs and CLI output.
  [[nodiscard]] std::string to_string() const {
    if (ok()) return "OK";
    std::string out = gcalib::to_string(code);
    if (!message.empty()) {
      out += ": ";
      out += message;
    }
    return out;
  }

  friend bool operator==(const Status&, const Status&) = default;
};

}  // namespace gcalib
