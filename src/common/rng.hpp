// Deterministic pseudo-random number generation for workload generators.
//
// We avoid std::mt19937 so that generated workloads are bit-reproducible
// across standard-library implementations; xoshiro256** seeded via
// SplitMix64 is the de-facto standard for that purpose.
#pragma once

#include <array>
#include <cstdint>

#include "common/assert.hpp"

namespace gcalib {

/// SplitMix64: used to expand a single 64-bit seed into generator state.
class SplitMix64 {
 public:
  explicit constexpr SplitMix64(std::uint64_t seed) noexcept : state_(seed) {}

  constexpr std::uint64_t next() noexcept {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// xoshiro256**: fast, high-quality, reproducible 64-bit generator.
class Xoshiro256 {
 public:
  using result_type = std::uint64_t;

  explicit constexpr Xoshiro256(std::uint64_t seed) noexcept {
    SplitMix64 sm(seed);
    for (auto& s : state_) s = sm.next();
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept { return ~std::uint64_t{0}; }

  constexpr result_type operator()() noexcept {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound); requires bound >= 1.
  /// Classic unbiased rejection sampling (no 128-bit arithmetic so the
  /// header stays strictly ISO C++).
  constexpr std::uint64_t below(std::uint64_t bound) {
    GCALIB_EXPECTS(bound >= 1);
    const std::uint64_t limit = max() - max() % bound;
    while (true) {
      const std::uint64_t x = (*this)();
      if (x < limit) return x % bound;
    }
  }

  /// Uniform double in [0, 1).
  constexpr double uniform01() noexcept {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Bernoulli trial with probability p (clamped to [0,1]).
  constexpr bool bernoulli(double p) noexcept { return uniform01() < p; }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::array<std::uint64_t, 4> state_{};
};

}  // namespace gcalib
