// Bit-manipulation helpers used throughout the GCA / PRAM simulators.
//
// The paper's schedule arithmetic (generations per step, sub-generation
// counts for the tree-reduction minimum) is defined in terms of log2 of the
// node count, so these helpers are the canonical place those quantities are
// computed.
#pragma once

#include <bit>
#include <cstdint>

#include "common/assert.hpp"

namespace gcalib {

/// True iff `x` is a power of two (0 is not).
[[nodiscard]] constexpr bool is_pow2(std::uint64_t x) noexcept {
  return x != 0 && (x & (x - 1)) == 0;
}

/// floor(log2(x)); requires x >= 1.
[[nodiscard]] constexpr unsigned log2_floor(std::uint64_t x) {
  GCALIB_EXPECTS(x >= 1);
  return 63u - static_cast<unsigned>(std::countl_zero(x));
}

/// ceil(log2(x)); requires x >= 1.  log2_ceil(1) == 0.
[[nodiscard]] constexpr unsigned log2_ceil(std::uint64_t x) {
  GCALIB_EXPECTS(x >= 1);
  return is_pow2(x) ? log2_floor(x) : log2_floor(x) + 1;
}

/// Smallest power of two >= x; requires x >= 1.
[[nodiscard]] constexpr std::uint64_t next_pow2(std::uint64_t x) {
  GCALIB_EXPECTS(x >= 1);
  return std::uint64_t{1} << log2_ceil(x);
}

/// Number of bits needed to represent values in [0, n-1]; requires n >= 1.
/// bit_width_for(1) == 1 by convention (a register still exists).
[[nodiscard]] constexpr unsigned bit_width_for(std::uint64_t n) {
  GCALIB_EXPECTS(n >= 1);
  return n == 1 ? 1u : log2_ceil(n);
}

}  // namespace gcalib
