// ASCII table builder used by the benchmark harnesses to print rows in the
// same shape as the paper's tables.
#pragma once

#include <initializer_list>
#include <string>
#include <vector>

namespace gcalib {

/// Column alignment within a TextTable.
enum class Align { kLeft, kRight };

/// Accumulates rows of strings and renders them as an aligned ASCII table
/// with a header rule.  Intended for human-readable bench output, mirroring
/// the layout of the paper's Table 1 / Table 2.
class TextTable {
 public:
  /// Creates a table with the given column headers (all right-aligned by
  /// default; call `set_align` to change individual columns).
  explicit TextTable(std::vector<std::string> headers);

  void set_align(std::size_t column, Align align);

  /// Appends a data row; must have exactly as many cells as headers.
  void add_row(std::vector<std::string> cells);

  /// Appends a horizontal rule between row groups.
  void add_rule();

  /// Renders the table, each line terminated by '\n'.
  [[nodiscard]] std::string render() const;

  [[nodiscard]] std::size_t columns() const { return headers_.size(); }
  [[nodiscard]] std::size_t rows() const { return rows_.size(); }

 private:
  struct Row {
    bool is_rule = false;
    std::vector<std::string> cells;
  };

  std::vector<std::string> headers_;
  std::vector<Align> aligns_;
  std::vector<Row> rows_;
};

}  // namespace gcalib
