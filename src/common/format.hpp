// Small string-formatting helpers shared by benches and trace renderers.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace gcalib {

/// Formats `value` with thousands separators: 23051 -> "23,051".
[[nodiscard]] std::string with_commas(std::uint64_t value);

/// Fixed-point decimal with `digits` fractional digits ("12.34").
[[nodiscard]] std::string fixed(double value, int digits);

/// Left/right pads `s` with spaces to width `w` (no-op if already wider).
[[nodiscard]] std::string pad_left(const std::string& s, std::size_t w);
[[nodiscard]] std::string pad_right(const std::string& s, std::size_t w);

/// Joins `parts` with `sep`.
[[nodiscard]] std::string join(const std::vector<std::string>& parts,
                               const std::string& sep);

/// "1.23x" style ratio formatting; returns "inf" when denom == 0.
[[nodiscard]] std::string ratio(double num, double denom, int digits = 2);

}  // namespace gcalib
