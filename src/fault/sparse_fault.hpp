// Deterministic fault injection for the sparse CSR substrate.
//
// The dense injector (fault/fault_plan.hpp) perturbs the (a, d, p) cell
// registers of the field; the CSR engine has no field — its whole mutable
// state is the label plane.  The sparse fault taxonomy therefore targets
// the label lattice and the async engine's frontier machinery:
//
//   * label bit flip — XOR a mask into one vertex's label (an SEU in the
//     label store).  A raised bit trips the per-round lattice monitors; a
//     *lowered* label silently merges two components and only the
//     spanning-forest certificate can convict it.
//   * stuck vertex — pin a vertex's label to a (lattice-legal) value for a
//     bounded number of rounds, re-applied after every sweep.  Monitors
//     cannot see a frozen label; the end-of-run certificate's edge-closure
//     check can.
//   * lost update — revert a vertex's label to its round-start value after
//     the round: the CAS that lowered it never landed.  Self-heals (the
//     next sweep re-lowers it); the run just converges later.
//   * stale frontier — discard the async round's changed bitset, so the
//     next worklist forgets every vertex that moved.  Can force premature
//     convergence; the certificate catches the un-propagated labels.
//     No-op in sync mode (there is no frontier to poison).
//
// Transient semantics, exactly as in the dense plan: every event fires at
// most once per arm cycle, so a recovery rollback re-executes the window
// fault-free — the property that makes the detect -> rollback ladder heal.
#pragma once

#include <cstdint>
#include <vector>

#include "core/hirschberg_gca.hpp"
#include "graph/csr_graph.hpp"

namespace gcalib::fault {

/// The sparse fault taxonomy (DESIGN.md §15).
enum class SparseFaultSite : std::uint8_t {
  kLabelBitFlip,   ///< XOR a mask into one vertex's label
  kStuckVertex,    ///< pin a vertex's label for some rounds
  kLostUpdate,     ///< the round's update to a vertex never lands
  kStaleFrontier,  ///< the round's changed bitset is discarded (async)
};

[[nodiscard]] const char* to_string(SparseFaultSite site);

/// One injectable sparse fault.
struct SparseFaultEvent {
  SparseFaultSite site = SparseFaultSite::kLabelBitFlip;
  unsigned round = 0;          ///< hook/shortcut round it strikes at
  graph::NodeId vertex = 0;    ///< victim vertex (ignored by kStaleFrontier)
  std::uint32_t mask = 1;      ///< bits XORed by a label flip
  graph::NodeId stuck_value = 0;  ///< value a stuck vertex is pinned to
  unsigned stuck_rounds = 2;   ///< rounds the pin lasts (>= 1)
};

/// A reproducible collection of sparse fault events.
class SparseFaultPlan {
 public:
  SparseFaultPlan() = default;

  SparseFaultPlan& add(SparseFaultEvent event);

  [[nodiscard]] bool empty() const { return events_.empty(); }
  [[nodiscard]] std::size_t size() const { return events_.size(); }
  [[nodiscard]] const std::vector<SparseFaultEvent>& events() const {
    return events_;
  }

  /// Random plan over the round schedule of a size-n run: every round in
  /// the O(log n) convergence window draws k ~ Poisson(rate) faults with
  /// site, victim and perturbation chosen uniformly (seeded,
  /// bit-reproducible).  Stuck values are drawn lattice-legal
  /// (stuck_value <= vertex) so the pin itself is monitor-silent — the
  /// certificate is what convicts it.
  [[nodiscard]] static SparseFaultPlan poisson(graph::NodeId n, double rate,
                                               std::uint64_t seed);

 private:
  std::vector<SparseFaultEvent> events_;
};

/// Replays a SparseFaultPlan against a live solve via the sparse round
/// hooks.  `install` also forces `sparse_monitors` on: an injected label
/// can leave [0, n) and the monitors are the guard that keeps the round
/// bodies from indexing with it.  The injector must outlive every solve
/// whose options it was installed on (the hooks capture `this`).
class SparseInjector {
 public:
  explicit SparseInjector(SparseFaultPlan plan);

  /// Installs the injector's round hooks on `options`, chaining any hooks
  /// already present (existing hooks run first), and turns the per-round
  /// monitors on.
  void install(core::RunOptions& options);

  /// Events fired so far (each event fires at most once per arm cycle).
  [[nodiscard]] std::size_t faults_fired() const { return fired_; }

  /// Re-arms every event for a fresh solve.
  void reset();

 private:
  void before_round(const core::SparseRoundContext& ctx);
  void after_round(const core::SparseRoundContext& ctx);

  struct Armed {
    SparseFaultEvent event;
    bool fired = false;
  };
  struct Pin {
    graph::NodeId vertex = 0;
    graph::NodeId value = 0;
    unsigned remaining = 0;
  };
  struct Revert {
    graph::NodeId vertex = 0;
    graph::NodeId value = 0;
  };

  std::vector<Armed> events_;
  std::vector<Pin> pins_;
  std::vector<Revert> reverts_;
  bool drop_pending_ = false;
  std::size_t fired_ = 0;
};

}  // namespace gcalib::fault
