#include "fault/sparse_fault.hpp"

#include <cmath>
#include <utility>

#include "common/rng.hpp"

namespace gcalib::fault {

using graph::NodeId;

const char* to_string(SparseFaultSite site) {
  switch (site) {
    case SparseFaultSite::kLabelBitFlip: return "label-bit-flip";
    case SparseFaultSite::kStuckVertex: return "stuck-vertex";
    case SparseFaultSite::kLostUpdate: return "lost-update";
    case SparseFaultSite::kStaleFrontier: return "stale-frontier";
  }
  return "?";
}

SparseFaultPlan& SparseFaultPlan::add(SparseFaultEvent event) {
  GCALIB_EXPECTS(event.site != SparseFaultSite::kStuckVertex ||
                 event.stuck_rounds >= 1);
  events_.push_back(event);
  return *this;
}

namespace {

/// Knuth's Poisson sampler (fine for the small rates fault runs use).
std::size_t draw_poisson(Xoshiro256& rng, double rate) {
  const double limit = std::exp(-rate);
  std::size_t k = 0;
  double p = 1.0;
  do {
    p *= rng.uniform01();
    ++k;
  } while (p > limit);
  return k - 1;
}

}  // namespace

SparseFaultPlan SparseFaultPlan::poisson(NodeId n, double rate,
                                         std::uint64_t seed) {
  GCALIB_EXPECTS(n >= 1 && rate >= 0.0);
  SparseFaultPlan plan;
  Xoshiro256 rng(seed);
  // The convergence window of the hook/jump round loops: O(log n) rounds
  // (mirrors the solver's round guard).  Unlike the dense schedule, the
  // *actual* round count is input-dependent and usually far below the
  // guard, so strike rounds are drawn with a quadratic bias toward round 0
  // (round = floor(window * u^2)) — half the storm lands in the first
  // quarter of the window, where a real run still is.  Events landing past
  // the actual convergence round simply never fire — not an error.
  unsigned log2n = 0;
  while ((std::uint64_t{1} << (log2n + 1)) <= n && log2n < 31) ++log2n;
  const unsigned window = 2 * (log2n + 2) + 4;
  for (unsigned slot = 0; slot < window; ++slot) {
    const std::size_t count = draw_poisson(rng, rate);
    for (std::size_t f = 0; f < count; ++f) {
      const double u = rng.uniform01();
      SparseFaultEvent event;
      event.round = static_cast<unsigned>(window * u * u);
      event.vertex = static_cast<NodeId>(rng.below(n));
      switch (rng.below(4)) {
        case 0:
          event.site = SparseFaultSite::kLabelBitFlip;
          event.mask = std::uint32_t{1} << rng.below(32);
          break;
        case 1:
          event.site = SparseFaultSite::kStuckVertex;
          // Lattice-legal pin (stuck_value <= vertex): the monitors stay
          // silent and conviction falls to the certificate.
          event.stuck_value =
              static_cast<NodeId>(rng.below(std::uint64_t{event.vertex} + 1));
          event.stuck_rounds = 1 + static_cast<unsigned>(rng.below(3));
          break;
        case 2:
          event.site = SparseFaultSite::kLostUpdate;
          break;
        default:
          event.site = SparseFaultSite::kStaleFrontier;
          break;
      }
      plan.add(event);
    }
  }
  return plan;
}

// --- SparseInjector ----------------------------------------------------

SparseInjector::SparseInjector(SparseFaultPlan plan) {
  events_.reserve(plan.size());
  for (const SparseFaultEvent& event : plan.events()) {
    events_.push_back(Armed{event, false});
  }
}

void SparseInjector::install(core::RunOptions& options) {
  auto previous_before = std::move(options.sparse_before_round);
  options.sparse_before_round =
      [this, previous_before = std::move(previous_before)](
          const core::SparseRoundContext& ctx) {
        if (previous_before) previous_before(ctx);
        before_round(ctx);
      };
  auto previous_after = std::move(options.sparse_after_round);
  options.sparse_after_round =
      [this, previous_after = std::move(previous_after)](
          const core::SparseRoundContext& ctx) {
        after_round(ctx);
        if (previous_after) previous_after(ctx);
      };
  // An injected flip can push a label outside [0, n); the per-round
  // monitors are what keeps the sweep from indexing with it.  Injection
  // without monitors is not a supported configuration.
  options.sparse_monitors = true;
}

void SparseInjector::before_round(const core::SparseRoundContext& ctx) {
  for (Armed& armed : events_) {
    if (armed.fired || armed.event.round != ctx.round) continue;
    armed.fired = true;
    ++fired_;
    const SparseFaultEvent& event = armed.event;
    GCALIB_EXPECTS_MSG(event.site == SparseFaultSite::kStaleFrontier ||
                           event.vertex < ctx.n,
                       "sparse fault event addresses a vertex outside the graph");
    switch (event.site) {
      case SparseFaultSite::kLabelBitFlip:
        ctx.set(event.vertex, ctx.get(event.vertex) ^ event.mask);
        break;
      case SparseFaultSite::kStuckVertex:
        ctx.set(event.vertex, event.stuck_value);
        pins_.push_back(Pin{event.vertex, event.stuck_value,
                            event.stuck_rounds});
        break;
      case SparseFaultSite::kLostUpdate:
        // Record the round-start value; the after-round hook reverts to it,
        // as if the round's CAS on this vertex never landed.
        reverts_.push_back(Revert{event.vertex, ctx.get(event.vertex)});
        break;
      case SparseFaultSite::kStaleFrontier:
        drop_pending_ = true;
        break;
    }
  }
}

void SparseInjector::after_round(const core::SparseRoundContext& ctx) {
  for (const Revert& revert : reverts_) {
    ctx.set(revert.vertex, revert.value);
  }
  reverts_.clear();
  if (drop_pending_) {
    // Sync mode has no frontier; the drop degenerates to a no-op there.
    if (ctx.drop_frontier) ctx.drop_frontier();
    drop_pending_ = false;
  }
  // Stuck vertices overwrite whatever the round just computed.
  std::erase_if(pins_, [&ctx](Pin& pin) {
    ctx.set(pin.vertex, pin.value);
    return --pin.remaining == 0;
  });
}

void SparseInjector::reset() {
  for (Armed& armed : events_) armed.fired = false;
  pins_.clear();
  reverts_.clear();
  drop_pending_ = false;
  fired_ = 0;
}

}  // namespace gcalib::fault
