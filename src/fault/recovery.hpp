// Recovery orchestration: resilient runs (inject + detect + checkpoint/
// rollback) and N-modular-redundancy voting.
//
// `run_resilient` composes the three layers of the fault subsystem onto one
// machine: the Injector replays a FaultPlan through the step hooks, the
// MonitorSet and Oracle feed the run loop's detector, and the engine
// snapshots every outer iteration give the loop its rollback targets.  The
// escalation ladder (rollback -> full restart -> fail with diagnosis) lives
// in HirschbergGca::run; this module only wires it up and reports.
//
// `run_nmr` is the masking alternative the paper's FPGA target would use
// when stopping the clock for a rollback is not an option: N independent
// replicas of the cell field run the same input and a majority voter picks
// each node's label.  Its hardware price — N cell fields plus the voter —
// is modelled with the calibrated FPGA cost model (hw/cost_model), the same
// machinery that prices the congestion-reduction replication of section 4.
#pragma once

#include <cstdint>
#include <vector>

#include "core/hirschberg_gca.hpp"
#include "fault/fault_plan.hpp"
#include "fault/monitors.hpp"
#include "graph/graph.hpp"

namespace gcalib::fault {

/// Knobs of a resilient run.  Validated by `run_resilient`:
/// `checkpoint_interval` must be >= 1 (a resilient run without rollback
/// targets is a contradiction — use HirschbergGca::run directly for that)
/// and at least one escalation rung (`max_rollbacks` / `max_restarts`)
/// must be reachable.  Violations throw ContractViolation up front instead
/// of failing obscurely after the first detection.
struct ResilientOptions {
  core::RunOptions base;     ///< threads / instrumentation / on_step
  MonitorConfig monitors;    ///< which invariant monitors run
  unsigned checkpoint_interval = 1;  ///< outer iterations between snapshots
  unsigned max_rollbacks = 3;
  unsigned max_restarts = 1;
  /// Durable-checkpoint mode (DESIGN.md §10): when non-empty, checkpoints
  /// are also persisted here and a fresh machine resumes from an intact
  /// file found in the directory (forwarded to RunOptions::checkpoint_dir).
  std::string checkpoint_dir;
  /// Wall-clock budget in milliseconds (0 = unlimited); forwarded to
  /// RunOptions::deadline_ms.  An expiry throws gca::DeadlineExceeded —
  /// deliberately outside the rollback ladder.
  std::int64_t deadline_ms = 0;
};

/// Outcome of a resilient run.
struct ResilientReport {
  core::RunResult run;       ///< labels, generations (incl. re-execution),
                             ///< rollbacks, restarts, diagnoses
  std::size_t faults_fired = 0;          ///< events the injector delivered
  std::vector<Violation> violations;     ///< full monitor detection log
  /// True iff corruption was detected and the final labeling nevertheless
  /// passed the oracle — the run survived its faults.
  bool recovered = false;
};

/// Runs the whole algorithm on `machine` while injecting `plan`, with
/// monitors, the end-of-run oracle against `pristine`, and checkpoint
/// recovery enabled.  Throws ContractViolation when the escalation budget
/// is exhausted without a clean labeling.
[[nodiscard]] ResilientReport run_resilient(core::HirschbergGca& machine,
                                            const graph::Graph& pristine,
                                            const FaultPlan& plan,
                                            const ResilientOptions& options = {});

/// Hardware price of N-modular redundancy at problem size n, derived from
/// the calibrated FPGA cost model.
struct NmrCost {
  std::size_t n = 0;
  unsigned replicas = 0;
  std::size_t logic_elements_single = 0;  ///< one cell field
  std::size_t voter_logic_elements = 0;   ///< per-bit majority + mismatch
  std::size_t logic_elements_total = 0;
  std::size_t register_bits_total = 0;
  double overhead_factor = 0.0;  ///< total / single
};

[[nodiscard]] NmrCost nmr_cost(std::size_t n, unsigned replicas);

/// Outcome of an N-modular-redundancy run.
struct NmrReport {
  std::vector<graph::NodeId> labels;  ///< majority-voted labeling
  std::size_t disagreeing_nodes = 0;  ///< nodes where some replica dissented
  std::size_t unresolved_nodes = 0;   ///< nodes without an absolute majority
  NmrCost cost;
};

/// Runs `replicas` independent machines over `g` (replica r injecting
/// `replica_plans[r]` when present) and majority-votes the labelings.
/// No monitors or rollback: NMR masks faults instead of detecting them.
[[nodiscard]] NmrReport run_nmr(const graph::Graph& g,
                                const std::vector<FaultPlan>& replica_plans,
                                unsigned replicas = 3,
                                const core::RunOptions& base = {});

}  // namespace gcalib::fault
