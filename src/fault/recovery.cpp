#include "fault/recovery.hpp"

#include <algorithm>
#include <cmath>
#include <map>

#include "common/bits.hpp"
#include "hw/cost_model.hpp"

namespace gcalib::fault {

using graph::NodeId;

ResilientReport run_resilient(core::HirschbergGca& machine,
                              const graph::Graph& pristine,
                              const FaultPlan& plan,
                              const ResilientOptions& options) {
  // Reject unusable configurations before any state is touched: a zero
  // interval would silently disable the checkpointing the caller asked this
  // wrapper for, and an empty escalation ladder could never recover.
  GCALIB_EXPECTS_MSG(options.checkpoint_interval >= 1,
                     "run_resilient: checkpoint_interval must be >= 1 "
                     "(0 would disable the rollback targets this wrapper "
                     "exists to provide)");
  GCALIB_EXPECTS_MSG(options.max_rollbacks > 0 || options.max_restarts > 0,
                     "run_resilient: escalation ladder is empty "
                     "(max_rollbacks == 0 and max_restarts == 0 leaves no "
                     "recovery action; the first detection would fail "
                     "immediately)");
  GCALIB_EXPECTS_MSG(options.deadline_ms >= 0,
                     "run_resilient: deadline_ms must be >= 0 "
                     "(0 = unlimited)");

  ResilientReport report;

  Injector injector(plan);
  MonitorSet monitors(machine, options.monitors);
  const Oracle oracle(pristine);

  core::RunOptions run_options = options.base;
  injector.install(run_options);
  monitors.install(run_options);
  oracle.install(run_options);
  run_options.recovery.checkpoint_interval = options.checkpoint_interval;
  run_options.recovery.max_rollbacks = options.max_rollbacks;
  run_options.recovery.max_restarts = options.max_restarts;
  run_options.checkpoint_dir = options.checkpoint_dir;
  if (options.deadline_ms > 0) run_options.deadline_ms = options.deadline_ms;

  try {
    report.run = machine.run(run_options);
  } catch (...) {
    machine.engine().set_read_override({});
    throw;
  }
  machine.engine().set_read_override({});

  report.faults_fired = injector.faults_fired();
  report.violations = monitors.violations();
  report.recovered = !report.run.diagnoses.empty();
  return report;
}

NmrCost nmr_cost(std::size_t n, unsigned replicas) {
  GCALIB_EXPECTS(n >= 1 && replicas >= 2);
  NmrCost cost;
  cost.n = n;
  cost.replicas = replicas;

  const hw::SynthesisEstimate single = hw::estimate_for(n);
  cost.logic_elements_single = single.logic_elements;

  // Voter: per node and label bit, an R-input majority plus a mismatch
  // flag.  Modelled with the calibrated comparator coefficient — each
  // replica beyond the first contributes one compare-and-count term per
  // bit, like the min-comparators of the cell datapath.
  const hw::CostParameters params = hw::CostParameters::cyclone2_calibrated();
  const unsigned label_bits = bit_width_for(n);
  const double voter = static_cast<double>(n) * label_bits *
                       static_cast<double>(replicas - 1) *
                       params.le_per_compare_bit * params.technology_factor;
  cost.voter_logic_elements = static_cast<std::size_t>(std::llround(voter));

  cost.logic_elements_total =
      replicas * cost.logic_elements_single + cost.voter_logic_elements;
  cost.register_bits_total = replicas * single.register_bits;
  cost.overhead_factor =
      static_cast<double>(cost.logic_elements_total) /
      static_cast<double>(std::max<std::size_t>(cost.logic_elements_single, 1));
  return cost;
}

NmrReport run_nmr(const graph::Graph& g,
                  const std::vector<FaultPlan>& replica_plans,
                  unsigned replicas, const core::RunOptions& base) {
  GCALIB_EXPECTS(replicas >= 2);
  NmrReport report;
  report.cost = nmr_cost(std::max<std::size_t>(g.node_count(), 1), replicas);

  std::vector<std::vector<NodeId>> labelings;
  labelings.reserve(replicas);
  for (unsigned r = 0; r < replicas; ++r) {
    core::HirschbergGca machine(g);
    core::RunOptions run_options = base;
    Injector injector(r < replica_plans.size() ? replica_plans[r]
                                               : FaultPlan{});
    injector.install(run_options);
    labelings.push_back(machine.run(run_options).labels);
    machine.engine().set_read_override({});
  }

  const NodeId n = g.node_count();
  report.labels.assign(n, 0);
  for (NodeId j = 0; j < n; ++j) {
    std::map<NodeId, unsigned> votes;
    for (const std::vector<NodeId>& labels : labelings) ++votes[labels[j]];
    NodeId winner = labelings.front()[j];
    unsigned best = 0;
    for (const auto& [label, count] : votes) {
      if (count > best) {
        best = count;
        winner = label;
      }
    }
    report.labels[j] = winner;
    if (votes.size() > 1) ++report.disagreeing_nodes;
    if (best * 2 <= replicas) ++report.unresolved_nodes;
  }
  return report;
}

}  // namespace gcalib::fault
