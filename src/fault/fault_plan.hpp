// Deterministic fault injection for Hirschberg runs.
//
// The paper targets an FPGA realisation (section 4) where transient faults
// — SEU bit flips in the (a, d, p) cell registers, stuck-at cells and
// misrouted or dropped global reads — are the dominant failure mode.  A
// `FaultPlan` is a seeded, reproducible description of such faults: each
// event names the engine step (iteration, generation, sub-generation) it
// strikes at, the victim cell, and the perturbation.  The `Injector`
// replays a plan against a live run through the RunOptions hooks.
//
// Transient semantics: every event fires at most once per run, so a
// rollback re-executes the afflicted window fault-free — exactly the
// property that makes checkpoint/rollback recovery effective against
// transient upsets.  Stuck-at faults persist for a bounded number of steps
// (their `stuck_steps` window) and are released on rollback.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "core/generation.hpp"
#include "core/hirschberg_gca.hpp"

namespace gcalib::fault {

/// The fault taxonomy (DESIGN.md, "Fault model and recovery").
enum class FaultKind : std::uint8_t {
  kBitFlip,       ///< XOR a mask into one register of one cell
  kStuckCell,     ///< pin a cell's d register to a value for some steps
  kDroppedRead,   ///< a cell's global read fails; it observes bus garbage
  kWrongPointer,  ///< a cell's global read is misrouted to another cell
};

[[nodiscard]] const char* to_string(FaultKind kind);

/// Which cell register a bit flip strikes.
enum class CellRegister : std::uint8_t { kA, kD, kP };

[[nodiscard]] const char* to_string(CellRegister reg);

/// What a failed read returns instead of the addressed neighbour's state.
enum class DroppedReadMode : std::uint8_t {
  kZeroed,   ///< bus reads back all zero
  kAllOnes,  ///< floating bus pulled high: d = kInfData
  kStale,    ///< the input latch keeps its content: reader observes itself
};

/// One injectable fault.
struct FaultEvent {
  FaultKind kind = FaultKind::kBitFlip;
  core::StepId at;              ///< step immediately before which it strikes
  std::size_t cell = 0;         ///< victim cell (the reader, for read faults)
  CellRegister reg = CellRegister::kD;  ///< bit-flip target register
  std::uint32_t mask = 1;       ///< bits XORed by a bit flip
  std::uint32_t stuck_value = 0;        ///< value a stuck cell's d is pinned to
  unsigned stuck_steps = 3;     ///< engine steps the pin lasts (>= 1)
  DroppedReadMode mode = DroppedReadMode::kZeroed;
  std::size_t redirect_to = 0;  ///< wrong-pointer substitute target
};

/// All engine steps of a size-n run, in execution order (generation 0
/// first, then iterations of generations 1..11 with sub-generations).
[[nodiscard]] std::vector<core::StepId> enumerate_steps(std::size_t n);

/// Position of `id` in `enumerate_steps(n)` order — i.e. the engine's
/// generation counter value when the step executes (fault-free).  Used to
/// measure detection latency in generations.
[[nodiscard]] std::size_t step_index(const core::StepId& id, std::size_t n);

/// A reproducible collection of fault events.
class FaultPlan {
 public:
  FaultPlan() = default;

  FaultPlan& add(FaultEvent event);

  [[nodiscard]] bool empty() const { return events_.empty(); }
  [[nodiscard]] std::size_t size() const { return events_.size(); }
  [[nodiscard]] const std::vector<FaultEvent>& events() const {
    return events_;
  }

  /// Random plan over the full schedule of a size-n run: every engine step
  /// draws k ~ Poisson(rate) faults with kind, victim cell, register and
  /// bit chosen uniformly (seeded, bit-reproducible).
  [[nodiscard]] static FaultPlan poisson(std::size_t n, double rate,
                                         std::uint64_t seed);

 private:
  std::vector<FaultEvent> events_;
};

/// Replays a FaultPlan against a live run via the RunOptions step hooks.
class Injector {
 public:
  explicit Injector(FaultPlan plan);

  /// Installs the injector's before/after-step hooks on `options`, chaining
  /// any hooks already present (existing hooks run first).
  void install(core::RunOptions& options);

  /// Events fired so far (each event fires at most once per arm cycle).
  [[nodiscard]] std::size_t faults_fired() const { return fired_; }

  /// Releases stuck-at pins and pending read faults after a rollback or
  /// restart restored the field (wired into RunOptions::on_restore).
  void on_restore(core::HirschbergGca& machine);

  /// Re-arms every event for a fresh run on the same or another machine.
  void reset();

 private:
  void before_step(core::HirschbergGca& machine, const core::StepId& id);
  void after_step(core::HirschbergGca& machine, const core::StepId& id);
  void sync_read_override(core::HirschbergGca& machine);

  struct Armed {
    FaultEvent event;
    bool fired = false;
  };
  struct Pin {
    std::size_t cell = 0;
    std::uint32_t value = 0;
    unsigned remaining = 0;
  };
  struct ReadFault {
    FaultKind kind = FaultKind::kDroppedRead;
    DroppedReadMode mode = DroppedReadMode::kZeroed;
    std::size_t redirect_to = 0;
  };

  std::vector<Armed> events_;
  std::vector<Pin> pins_;
  std::unordered_map<std::size_t, ReadFault> active_reads_;
  bool override_installed_ = false;
  core::Cell zeroed_{};
  core::Cell all_ones_{};
  std::size_t fired_ = 0;
};

}  // namespace gcalib::fault
