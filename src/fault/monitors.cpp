#include "fault/monitors.hpp"

#include <string>

#include "graph/cc_baselines.hpp"

namespace gcalib::fault {

using core::Cell;
using core::Generation;
using gca::Engine;
using graph::NodeId;

namespace {

/// Recovers the generation number from an engine step label
/// ("gen9:adopt" -> 9); -1 when the label is not in that format.
int generation_of(const std::string& label) {
  if (label.rfind("gen", 0) != 0) return -1;
  int value = 0;
  std::size_t i = 3;
  if (i >= label.size() || label[i] < '0' || label[i] > '9') return -1;
  for (; i < label.size() && label[i] >= '0' && label[i] <= '9'; ++i) {
    value = value * 10 + (label[i] - '0');
  }
  return value;
}

/// SplitMix64 finaliser, used to salt the D_N checksum with the cell index
/// so swapped values do not cancel out the way a plain XOR would.
std::uint64_t mix(std::uint64_t x) {
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

}  // namespace

MonitorSet::MonitorSet(core::HirschbergGca& machine, MonitorConfig config)
    : machine_(machine), config_(config) {
  observer_id_ = machine_.engine().add_observer(
      [this](const Engine<Cell>& engine, const gca::GenerationStats& stats) {
        observe(engine, stats);
      });
}

MonitorSet::~MonitorSet() { machine_.engine().remove_observer(observer_id_); }

void MonitorSet::record(std::uint64_t generation, const char* monitor,
                        std::string message) {
  if (log_.size() >= config_.max_violations) return;
  log_.push_back(Violation{generation, monitor, std::move(message)});
}

std::string MonitorSet::drain() {
  std::string diagnosis;
  for (; drained_ < log_.size(); ++drained_) {
    if (!diagnosis.empty()) diagnosis += "; ";
    diagnosis += log_[drained_].monitor + " @gen" +
                 std::to_string(log_[drained_].generation) + ": " +
                 log_[drained_].message;
  }
  return diagnosis;
}

void MonitorSet::resync() {
  // Pending violations describe the timeline the rollback just discarded
  // (e.g. recorded after a contract trap cut the iteration short); they
  // already triggered this recovery and must not trigger the next one.
  drained_ = log_.size();
  const Engine<Cell>& engine = machine_.engine();
  dn_checksum_ = dn_checksum(engine);
  have_dn_checksum_ = true;
  previous_labels_ = machine_.current_labels();
  have_labels_ = true;
}

void MonitorSet::install(core::RunOptions& options) {
  auto previous_detect = std::move(options.detect);
  options.detect = [this, previous_detect = std::move(previous_detect)](
                       const core::HirschbergGca& machine) -> std::string {
    std::string diagnosis =
        previous_detect ? previous_detect(machine) : std::string{};
    const std::string mine = drain();
    if (!mine.empty()) {
      if (!diagnosis.empty()) diagnosis += "; ";
      diagnosis += mine;
    }
    return diagnosis;
  };
  auto previous_restore = std::move(options.on_restore);
  options.on_restore = [this, previous_restore = std::move(previous_restore)](
                           core::HirschbergGca& machine) {
    if (previous_restore) previous_restore(machine);
    resync();
  };
}

std::uint64_t MonitorSet::dn_checksum(const Engine<Cell>& engine) const {
  const gca::FieldGeometry& geometry = machine_.geometry();
  const std::size_t n = geometry.cols();
  const std::size_t base = n * n;
  std::uint64_t checksum = 0;
  for (std::size_t i = 0; i < n; ++i) {
    checksum ^= mix((std::uint64_t{i} << 32) | engine.state(base + i).d);
  }
  return checksum;
}

void MonitorSet::observe(const Engine<Cell>& engine,
                         const gca::GenerationStats& stats) {
  const int generation = generation_of(stats.label);
  if (generation < 0) return;  // not a Hirschberg-machine step

  if (config_.register_sanity) check_registers(engine, stats.generation);

  if (config_.replication_consistency &&
      (generation == 1 || generation == 5 || generation == 9)) {
    check_replication(engine, stats.generation,
                      static_cast<Generation>(generation));
  }

  if (config_.dn_checksum) {
    // Only generations 0, 1 and 9 ever write the bottom row; any other
    // change to D_N is corruption.
    const bool writes_dn =
        generation == 0 || generation == 1 || generation == 9;
    if (!writes_dn && have_dn_checksum_) {
      const std::uint64_t checksum = dn_checksum(engine);
      if (checksum != dn_checksum_) {
        record(stats.generation, "dn-checksum",
               "D_N changed during " + stats.label +
                   ", which never writes the bottom row");
      }
      dn_checksum_ = checksum;  // re-baseline: report each corruption once
    } else {
      dn_checksum_ = dn_checksum(engine);
      have_dn_checksum_ = true;
    }
  }

  if (config_.iteration_invariants && generation == 11) {
    check_iteration(engine, stats.generation);
  }
}

void MonitorSet::check_registers(const Engine<Cell>& engine,
                                 std::uint64_t generation) {
  const gca::FieldGeometry& geometry = machine_.geometry();
  const std::size_t size = geometry.size();
  const auto n = static_cast<std::uint32_t>(geometry.cols());
  for (std::size_t i = 0; i < size; ++i) {
    const Cell& cell = engine.state(i);
    // d is a node id, the row sentinel written by generation 0 (<= n), or
    // infinity; anything else is a corrupted register.
    if (cell.d > n && cell.d != core::kInfData) {
      record(generation, "register-sanity",
             "cell " + std::to_string(i) + " holds d = " +
                 std::to_string(cell.d) + " (not a node id or infinity)");
      return;
    }
    if (cell.a > 1) {
      record(generation, "register-sanity",
             "cell " + std::to_string(i) + " holds non-binary adjacency bit " +
                 std::to_string(cell.a));
      return;
    }
    if (cell.p >= size) {
      record(generation, "register-sanity",
             "cell " + std::to_string(i) + " holds pointer " +
                 std::to_string(cell.p) + " outside the field");
      return;
    }
  }
}

void MonitorSet::check_replication(const Engine<Cell>& engine,
                                   std::uint64_t generation, Generation g) {
  const gca::FieldGeometry& geometry = machine_.geometry();
  const std::size_t n = geometry.cols();
  const std::size_t base = n * n;

  const auto mismatch = [&](std::size_t row, std::size_t col,
                            std::uint32_t got, std::uint32_t want,
                            const char* relation) {
    record(generation, "replication",
           "cell (" + std::to_string(row) + "," + std::to_string(col) +
               ") holds d = " + std::to_string(got) + " but " + relation +
               " holds " + std::to_string(want));
  };

  switch (g) {
    case Generation::kCopyCToRows:
      // Every square row and D_N are copies of the same C vector.
      for (std::size_t j = 0; j < n; ++j) {
        for (std::size_t i = 0; i < n; ++i) {
          const std::uint32_t got = engine.state(j * n + i).d;
          const std::uint32_t want = engine.state(base + i).d;
          if (got != want) {
            mismatch(j, i, got, want, "its D_N replica");
            return;
          }
        }
      }
      break;
    case Generation::kCopyTToRows:
      // Every square row is a copy of row 0 (all hold the T vector).
      for (std::size_t j = 1; j < n; ++j) {
        for (std::size_t i = 0; i < n; ++i) {
          const std::uint32_t got = engine.state(j * n + i).d;
          const std::uint32_t want = engine.state(i).d;
          if (got != want) {
            mismatch(j, i, got, want, "its row-0 replica");
            return;
          }
        }
      }
      break;
    case Generation::kAdopt:
      // Row j is constant (T(j) broadcast) and D_N mirrors column 0.
      for (std::size_t j = 0; j < n; ++j) {
        const std::uint32_t want = engine.state(j * n).d;
        for (std::size_t i = 1; i < n; ++i) {
          const std::uint32_t got = engine.state(j * n + i).d;
          if (got != want) {
            mismatch(j, i, got, want, "its column-0 replica");
            return;
          }
        }
      }
      for (std::size_t i = 0; i < n; ++i) {
        const std::uint32_t got = engine.state(base + i).d;
        const std::uint32_t want = engine.state(i * n).d;
        if (got != want) {
          mismatch(n, i, got, want, "the transposed column-0 replica");
          return;
        }
      }
      break;
    default:
      break;
  }
}

void MonitorSet::check_iteration(const Engine<Cell>& engine,
                                 std::uint64_t generation) {
  (void)engine;
  const std::vector<NodeId> labels = machine_.current_labels();
  const auto n = static_cast<NodeId>(labels.size());
  for (NodeId j = 0; j < n; ++j) {
    if (labels[j] >= n) {
      record(generation, "iteration-labels",
             "node " + std::to_string(j) + " labelled " +
                 std::to_string(labels[j]) + ", which is not a node id");
      return;
    }
  }
  if (have_labels_) {
    for (NodeId j = 0; j < n; ++j) {
      if (labels[j] > previous_labels_[j]) {
        record(generation, "iteration-monotone",
               "node " + std::to_string(j) + " label rose from " +
                   std::to_string(previous_labels_[j]) + " to " +
                   std::to_string(labels[j]));
        return;
      }
    }
  }
  previous_labels_ = labels;
  have_labels_ = true;
}

// --- Oracle -------------------------------------------------------------

Oracle::Oracle(const graph::Graph& pristine)
    : expected_(graph::bfs_components(pristine)) {}

std::string Oracle::check(const std::vector<NodeId>& labels) const {
  if (labels.size() != expected_.size()) {
    return "labeling has " + std::to_string(labels.size()) + " entries, " +
           std::to_string(expected_.size()) + " expected";
  }
  for (std::size_t j = 0; j < labels.size(); ++j) {
    if (labels[j] != expected_[j]) {
      return "node " + std::to_string(j) + " labelled " +
             std::to_string(labels[j]) + ", sequential baseline says " +
             std::to_string(expected_[j]);
    }
  }
  return {};
}

void Oracle::install(core::RunOptions& options) const {
  auto previous = std::move(options.final_check);
  options.final_check =
      [this, previous = std::move(previous)](
          const core::HirschbergGca& machine,
          const std::vector<NodeId>& labels) -> std::string {
    std::string diagnosis =
        previous ? previous(machine, labels) : std::string{};
    if (!diagnosis.empty()) return diagnosis;
    return check(labels);
  };
}

}  // namespace gcalib::fault
