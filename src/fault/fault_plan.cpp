#include "fault/fault_plan.hpp"

#include <cmath>

#include "common/rng.hpp"
#include "core/schedule.hpp"

namespace gcalib::fault {

using core::Generation;
using core::StepId;

const char* to_string(FaultKind kind) {
  switch (kind) {
    case FaultKind::kBitFlip: return "bit-flip";
    case FaultKind::kStuckCell: return "stuck-cell";
    case FaultKind::kDroppedRead: return "dropped-read";
    case FaultKind::kWrongPointer: return "wrong-pointer";
  }
  return "?";
}

const char* to_string(CellRegister reg) {
  switch (reg) {
    case CellRegister::kA: return "a";
    case CellRegister::kD: return "d";
    case CellRegister::kP: return "p";
  }
  return "?";
}

std::vector<StepId> enumerate_steps(std::size_t n) {
  // Mirrors HirschbergGca::run exactly: generation 0 once, then
  // generations 1..11 (enum order) per outer iteration, tree-reduction and
  // pointer-jump generations repeated for every sub-generation.
  std::vector<StepId> steps;
  steps.push_back(StepId{0, Generation::kInit, 0});
  const unsigned iterations = core::outer_iterations(n);
  const unsigned subs = core::subgeneration_count(n);
  for (unsigned iter = 0; iter < iterations; ++iter) {
    for (std::uint8_t g = 1; g < core::kGenerationCount; ++g) {
      const auto generation = static_cast<Generation>(g);
      const unsigned repeats = has_subgenerations(generation) ? subs : 1;
      for (unsigned s = 0; s < repeats; ++s) {
        steps.push_back(StepId{iter, generation, s});
      }
    }
  }
  return steps;
}

std::size_t step_index(const StepId& id, std::size_t n) {
  const std::vector<StepId> steps = enumerate_steps(n);
  for (std::size_t i = 0; i < steps.size(); ++i) {
    if (steps[i] == id) return i;
  }
  GCALIB_EXPECTS_MSG(false, "step id is not part of the size-n schedule");
  return 0;
}

FaultPlan& FaultPlan::add(FaultEvent event) {
  GCALIB_EXPECTS(event.kind != FaultKind::kStuckCell || event.stuck_steps >= 1);
  events_.push_back(event);
  return *this;
}

namespace {

/// Knuth's Poisson sampler (fine for the small rates fault runs use).
std::size_t draw_poisson(Xoshiro256& rng, double rate) {
  const double limit = std::exp(-rate);
  std::size_t k = 0;
  double p = 1.0;
  do {
    p *= rng.uniform01();
    ++k;
  } while (p > limit);
  return k - 1;
}

}  // namespace

FaultPlan FaultPlan::poisson(std::size_t n, double rate, std::uint64_t seed) {
  GCALIB_EXPECTS(n >= 1 && rate >= 0.0);
  FaultPlan plan;
  Xoshiro256 rng(seed);
  const gca::FieldGeometry geometry = gca::FieldGeometry::hirschberg(n);
  const std::size_t field = geometry.size();
  for (const StepId& step : enumerate_steps(n)) {
    const std::size_t count = draw_poisson(rng, rate);
    for (std::size_t f = 0; f < count; ++f) {
      FaultEvent event;
      event.at = step;
      event.cell = rng.below(field);
      switch (rng.below(4)) {
        case 0:
          event.kind = FaultKind::kBitFlip;
          // d takes most flips (it is the widest register); a and p get
          // single-bit upsets of their actual width.
          switch (rng.below(4)) {
            case 0:
              event.reg = CellRegister::kA;
              event.mask = 1;
              break;
            case 1:
              event.reg = CellRegister::kP;
              event.mask = std::uint32_t{1} << rng.below(32);
              break;
            default:
              event.reg = CellRegister::kD;
              event.mask = std::uint32_t{1} << rng.below(32);
              break;
          }
          break;
        case 1:
          event.kind = FaultKind::kStuckCell;
          event.stuck_value = static_cast<std::uint32_t>(rng.below(field));
          event.stuck_steps = 1 + static_cast<unsigned>(rng.below(4));
          break;
        case 2:
          event.kind = FaultKind::kDroppedRead;
          event.mode = static_cast<DroppedReadMode>(rng.below(3));
          break;
        default:
          event.kind = FaultKind::kWrongPointer;
          event.redirect_to = rng.below(field);
          break;
      }
      plan.add(event);
    }
  }
  return plan;
}

// --- Injector ----------------------------------------------------------

Injector::Injector(FaultPlan plan) {
  events_.reserve(plan.size());
  for (const FaultEvent& event : plan.events()) {
    events_.push_back(Armed{event, false});
  }
  all_ones_.a = 1;
  all_ones_.d = core::kInfData;
  all_ones_.p = ~std::uint32_t{0};
}

void Injector::install(core::RunOptions& options) {
  auto previous_before = std::move(options.before_step);
  options.before_step = [this, previous_before = std::move(previous_before)](
                            core::HirschbergGca& machine,
                            const core::StepId& id) {
    if (previous_before) previous_before(machine, id);
    before_step(machine, id);
  };
  auto previous_after = std::move(options.after_step);
  options.after_step = [this, previous_after = std::move(previous_after)](
                           core::HirschbergGca& machine,
                           const core::StepId& id) {
    after_step(machine, id);
    if (previous_after) previous_after(machine, id);
  };
  auto previous_restore = std::move(options.on_restore);
  options.on_restore = [this, previous_restore = std::move(previous_restore)](
                           core::HirschbergGca& machine) {
    on_restore(machine);
    if (previous_restore) previous_restore(machine);
  };
}

void Injector::before_step(core::HirschbergGca& machine,
                           const core::StepId& id) {
  active_reads_.clear();
  gca::Engine<core::Cell>& engine = machine.engine();
  for (Armed& armed : events_) {
    if (armed.fired || !(armed.event.at == id)) continue;
    armed.fired = true;
    ++fired_;
    const FaultEvent& event = armed.event;
    GCALIB_EXPECTS_MSG(event.cell < engine.size(),
                       "fault event addresses a cell outside the field");
    switch (event.kind) {
      case FaultKind::kBitFlip: {
        core::Cell victim = engine.state(event.cell);
        switch (event.reg) {
          case CellRegister::kA: victim.a ^= event.mask; break;
          case CellRegister::kD: victim.d ^= event.mask; break;
          case CellRegister::kP: victim.p ^= event.mask; break;
        }
        engine.set_state(event.cell, victim);
        break;
      }
      case FaultKind::kStuckCell: {
        core::Cell victim = engine.state(event.cell);
        victim.d = event.stuck_value;
        engine.set_state(event.cell, victim);
        pins_.push_back(Pin{event.cell, event.stuck_value, event.stuck_steps});
        break;
      }
      case FaultKind::kDroppedRead:
        active_reads_[event.cell] =
            ReadFault{event.kind, event.mode, 0};
        break;
      case FaultKind::kWrongPointer:
        GCALIB_EXPECTS_MSG(event.redirect_to < engine.size(),
                           "wrong-pointer fault redirects outside the field");
        active_reads_[event.cell] =
            ReadFault{event.kind, DroppedReadMode::kZeroed, event.redirect_to};
        break;
    }
  }
  sync_read_override(machine);
}

void Injector::after_step(core::HirschbergGca& machine,
                          const core::StepId& /*id*/) {
  // Read faults last exactly one step.
  if (!active_reads_.empty()) {
    active_reads_.clear();
    sync_read_override(machine);
  }
  // Stuck cells overwrite whatever the step just latched.
  gca::Engine<core::Cell>& engine = machine.engine();
  std::erase_if(pins_, [&engine](Pin& pin) {
    core::Cell victim = engine.state(pin.cell);
    victim.d = pin.value;
    engine.set_state(pin.cell, victim);
    return --pin.remaining == 0;
  });
}

void Injector::sync_read_override(core::HirschbergGca& machine) {
  gca::Engine<core::Cell>& engine = machine.engine();
  if (active_reads_.empty()) {
    if (override_installed_) {
      engine.set_read_override({});
      override_installed_ = false;
    }
    return;
  }
  engine.set_read_override(
      [this, &engine](std::size_t reader,
                      std::size_t /*target*/) -> std::optional<core::Cell> {
        const auto it = active_reads_.find(reader);
        if (it == active_reads_.end()) return std::nullopt;
        const ReadFault& fault = it->second;
        if (fault.kind == FaultKind::kWrongPointer) {
          return engine.state(fault.redirect_to);
        }
        switch (fault.mode) {
          case DroppedReadMode::kZeroed: return zeroed_;
          case DroppedReadMode::kAllOnes: return all_ones_;
          case DroppedReadMode::kStale: return engine.state(reader);
        }
        return std::nullopt;
      });
  override_installed_ = true;
}

void Injector::on_restore(core::HirschbergGca& machine) {
  pins_.clear();
  active_reads_.clear();
  sync_read_override(machine);
}

void Injector::reset() {
  for (Armed& armed : events_) armed.fired = false;
  pins_.clear();
  active_reads_.clear();
  override_installed_ = false;
  fired_ = 0;
}

}  // namespace gcalib::fault
