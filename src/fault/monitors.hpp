// Per-generation invariant monitors and the end-of-run oracle.
//
// Hirschberg runs are naturally self-checkable: labels only merge downward,
// every intermediate d is a node id or the infinity sentinel, and three of
// the twelve generations (1, 5, 9) produce *replicated* data — every square
// row and/or the D_N buffer holds copies of the same vector — so a single
// corrupted read leaves a detectable disagreement between replicas.  The
// `MonitorSet` registers one observer on the engine and checks, per step:
//
//  * register sanity — d is a node id (<= n) or kInfData, a is a bit,
//    p addresses the field;
//  * replication consistency — after generation 1 every square row must
//    equal D_N; after generation 5 every square row must equal row 0;
//    after generation 9 rows are constant and D_N mirrors column 0;
//  * D_N checksum stability — an index-salted XOR checksum of the bottom
//    row must not change across generations that never write D_N;
//  * iteration invariants — at every generation-11 boundary the labels in
//    column 0 are in range, per-node non-increasing, and the component
//    count never grows.
//
// Violations are recorded (never thrown): the run loop polls `drain()`
// through RunOptions::detect and decides on rollback.  The `Oracle`
// performs the end-of-run check against a sequential baseline
// (graph::bfs_components) of the pristine input graph.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/hirschberg_gca.hpp"
#include "graph/graph.hpp"

namespace gcalib::fault {

/// One recorded invariant violation.
struct Violation {
  std::uint64_t generation = 0;  ///< engine step counter at detection
  std::string monitor;           ///< which invariant fired
  std::string message;
};

/// Which monitors run (all on by default; the register scan is the only
/// per-step full-field pass and can be disabled for pure-speed runs).
struct MonitorConfig {
  bool register_sanity = true;
  bool replication_consistency = true;
  bool dn_checksum = true;
  bool iteration_invariants = true;
  std::size_t max_violations = 64;  ///< recording cap per run
};

/// Invariant monitors attached to a machine's engine as one observer.
/// Detach happens in the destructor; keep the MonitorSet alive for the
/// whole run.
class MonitorSet {
 public:
  explicit MonitorSet(core::HirschbergGca& machine, MonitorConfig config = {});
  ~MonitorSet();
  MonitorSet(const MonitorSet&) = delete;
  MonitorSet& operator=(const MonitorSet&) = delete;

  /// Every violation recorded so far (across rollbacks; never cleared).
  [[nodiscard]] const std::vector<Violation>& violations() const {
    return log_;
  }
  [[nodiscard]] bool healthy() const { return log_.empty(); }

  /// Joins the violations recorded since the last drain into one diagnosis
  /// ("" = healthy) and clears the pending set — the RunOptions::detect
  /// contract.
  [[nodiscard]] std::string drain();

  /// Re-baselines the stateful monitors (D_N checksum, previous labels)
  /// from the machine's current — just restored — field.
  void resync();

  /// Wires drain/resync into `options` (detect and on_restore, chaining
  /// hooks already present).
  void install(core::RunOptions& options);

 private:
  void observe(const gca::Engine<core::Cell>& engine,
               const gca::GenerationStats& stats);
  void record(std::uint64_t generation, const char* monitor,
              std::string message);
  void check_registers(const gca::Engine<core::Cell>& engine,
                       std::uint64_t generation);
  void check_replication(const gca::Engine<core::Cell>& engine,
                         std::uint64_t generation, core::Generation g);
  void check_iteration(const gca::Engine<core::Cell>& engine,
                       std::uint64_t generation);
  [[nodiscard]] std::uint64_t dn_checksum(
      const gca::Engine<core::Cell>& engine) const;

  core::HirschbergGca& machine_;
  MonitorConfig config_;
  std::size_t observer_id_ = 0;
  std::vector<Violation> log_;      ///< full history
  std::size_t drained_ = 0;         ///< log_ prefix already reported
  std::uint64_t dn_checksum_ = 0;
  bool have_dn_checksum_ = false;
  std::vector<graph::NodeId> previous_labels_;
  bool have_labels_ = false;
};

/// End-of-run oracle: the machine's labeling must equal the sequential
/// baseline of the *pristine* input graph (an adjacency-bit flip corrupts
/// the field's own copy of the graph, so the reference is kept outside).
class Oracle {
 public:
  explicit Oracle(const graph::Graph& pristine);

  /// "" when `labels` matches the baseline, else a diagnosis.
  [[nodiscard]] std::string check(
      const std::vector<graph::NodeId>& labels) const;

  [[nodiscard]] const std::vector<graph::NodeId>& expected() const {
    return expected_;
  }

  /// Wires the oracle into `options.final_check`.
  void install(core::RunOptions& options) const;

 private:
  std::vector<graph::NodeId> expected_;
};

}  // namespace gcalib::fault
