// Step-synchronous PRAM simulator with access-mode enforcement.
//
// The paper frames the GCA as a synchronous CROW PRAM (concurrent-read
// owner-write): any processor may read any shared-memory cell, but every
// cell is written by exactly one dedicated owner.  This machine simulates a
// PRAM at step granularity — every step, a set of processors runs the same
// program against a snapshot of shared memory, and all writes commit
// atomically at the step boundary — while checking the declared access mode
// and accumulating the cost metrics the paper reasons about (time = steps,
// work = sum of scheduled processors, and read congestion = the maximum
// number of concurrent reads to one cell, which bounds step duration on a
// distributed-memory realisation).
#pragma once

#include <cstdint>
#include <functional>
#include <limits>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/assert.hpp"

namespace gcalib::pram {

/// Shared-memory word.  Signed 64-bit so the +infinity sentinel used by the
/// min computations is representable without wraparound hazards.
using Word = std::int64_t;

/// "No connection found" sentinel for min computations (paper's infinity).
inline constexpr Word kInf = std::numeric_limits<Word>::max();

/// PRAM variants ordered from most to least restrictive.
enum class AccessMode {
  kErew,          ///< exclusive read, exclusive write
  kCrew,          ///< concurrent read, exclusive write
  kCrow,          ///< concurrent read, owner write (the GCA's regime)
  kCrcwPriority,  ///< concurrent write: lowest processor id wins
  kCrcwArbitrary, ///< concurrent write: simulator picks one (lowest id, documented)
  kCrcwMin,       ///< concurrent write: minimum value wins (combining)
};

[[nodiscard]] const char* to_string(AccessMode mode);

/// Thrown when a step violates the machine's declared access mode.
class AccessViolation : public std::runtime_error {
 public:
  explicit AccessViolation(const std::string& what) : std::runtime_error(what) {}
};

/// Per-step cost record.
struct StepStats {
  std::size_t step_index = 0;
  std::string label;
  std::size_t processors = 0;           ///< processors scheduled this step
  std::size_t reads = 0;                ///< total shared-memory reads
  std::size_t writes = 0;               ///< total committed writes
  std::size_t max_read_congestion = 0;  ///< max concurrent reads to one cell
};

/// Whole-run cost aggregate.
struct MachineStats {
  std::size_t steps = 0;
  std::size_t work = 0;  ///< sum of scheduled processors over all steps
  std::size_t reads = 0;
  std::size_t writes = 0;
  std::size_t max_read_congestion = 0;
};

class Machine;

/// Handle passed to a step body; mediates all shared-memory access for one
/// processor so the machine can trace and validate it.
class Processor {
 public:
  [[nodiscard]] std::size_t id() const { return id_; }

  /// Reads shared memory (snapshot semantics: sees pre-step values).
  [[nodiscard]] Word read(std::size_t addr);

  /// Buffers a write; committed at the step boundary.
  void write(std::size_t addr, Word value);

 private:
  friend class Machine;
  Processor(Machine& machine, std::size_t id) : machine_(machine), id_(id) {}
  Machine& machine_;
  std::size_t id_;
};

/// A named contiguous region of shared memory (layout convenience).
struct ArrayRef {
  std::size_t base = 0;
  std::size_t size = 0;
  [[nodiscard]] std::size_t at(std::size_t i) const {
    GCALIB_EXPECTS(i < size);
    return base + i;
  }
};

/// The PRAM.
class Machine {
 public:
  Machine(std::size_t memory_size, AccessMode mode);

  [[nodiscard]] AccessMode mode() const { return mode_; }
  [[nodiscard]] std::size_t memory_size() const { return memory_.size(); }

  /// Allocates a named array from the next free region.
  /// Throws ContractViolation if the memory is exhausted.
  ArrayRef alloc(const std::string& name, std::size_t size);

  /// Host-side (uncounted) accessors for setting inputs / reading outputs.
  [[nodiscard]] Word load(std::size_t addr) const;
  void store(std::size_t addr, Word value);

  /// Declares the owning processor of a cell (CROW enforcement).  Cells
  /// without a declared owner may be written by any single processor.
  void set_owner(std::size_t addr, std::size_t processor);

  /// Runs one synchronous step: `body` is invoked for processor ids
  /// 0..processors-1; all reads see the pre-step snapshot; writes commit at
  /// the end.  Throws AccessViolation on mode violations.
  void step(std::size_t processors, const std::function<void(Processor&)>& body,
            std::string label = {});

  /// Brent-scheduled step (paper, introduction): `virtual_processors`
  /// logical processors are simulated by `physical_processors` machines
  /// round-robin.  The snapshot semantics are those of ONE synchronous
  /// virtual step (all reads see the pre-step memory; all writes commit
  /// together), but the accounting charges ceil(V/P) time steps and V work
  /// — the round-robin slowdown of the simulation.
  void step_virtual(std::size_t virtual_processors,
                    std::size_t physical_processors,
                    const std::function<void(Processor&)>& body,
                    std::string label = {});

  [[nodiscard]] const MachineStats& stats() const { return stats_; }
  [[nodiscard]] const std::vector<StepStats>& history() const { return history_; }

  /// Clears cost counters and history (memory contents are kept).
  void reset_stats();

 private:
  friend class Processor;

  Word processor_read(std::size_t proc, std::size_t addr);
  void processor_write(std::size_t proc, std::size_t addr, Word value);
  void execute_step(std::size_t processors,
                    const std::function<void(Processor&)>& body,
                    std::string label, std::size_t time_charge);

  AccessMode mode_;
  std::vector<Word> memory_;
  std::vector<std::size_t> owner_;  ///< kNoOwner if undeclared
  static constexpr std::size_t kNoOwner = std::numeric_limits<std::size_t>::max();

  std::size_t next_free_ = 0;

  // Per-step scratch (valid only inside step()).
  bool in_step_ = false;
  std::size_t current_proc_ = 0;
  std::vector<std::size_t> read_count_;      ///< concurrent reads per cell
  std::vector<std::size_t> reader_of_;       ///< for EREW: which proc read a cell
  struct PendingWrite {
    std::size_t proc;
    std::size_t addr;
    Word value;
  };
  std::vector<PendingWrite> pending_writes_;
  StepStats current_;

  MachineStats stats_;
  std::vector<StepStats> history_;
};

}  // namespace gcalib::pram
