#include "pram/hirschberg.hpp"

#include <algorithm>

#include "common/bits.hpp"

namespace gcalib::pram {

using graph::Graph;
using graph::NodeId;

HirschbergReferenceResult hirschberg_reference_full(const Graph& g,
                                                    bool with_trace) {
  const NodeId n = g.node_count();
  HirschbergReferenceResult result;
  result.labels.resize(n);
  if (n == 0) return result;

  // Step 1: every node is its own component.
  std::vector<NodeId> c(n);
  for (NodeId i = 0; i < n; ++i) c[i] = i;

  const NodeId none = n;  // "infinity" sentinel: no candidate found
  const unsigned iterations = n > 1 ? log2_ceil(n) : 0;
  std::vector<NodeId> t(n), t2(n), next(n);

  for (unsigned iter = 0; iter < iterations; ++iter) {
    HirschbergIterationTrace trace_entry;

    // Step 2: each node finds the smallest neighbouring component.
    for (NodeId i = 0; i < n; ++i) {
      NodeId best = none;
      for (NodeId j : g.neighbors(i)) {
        if (c[j] != c[i]) best = std::min(best, c[j]);
      }
      t[i] = best == none ? c[i] : best;
    }
    if (with_trace) trace_entry.t_after_step2 = t;

    // Step 3: each component index i gathers the smallest candidate found by
    // its members ({j : C(j) = i}), ignoring candidates equal to i itself.
    for (NodeId i = 0; i < n; ++i) {
      NodeId best = none;
      for (NodeId j = 0; j < n; ++j) {
        if (c[j] == i && t[j] != i) best = std::min(best, t[j]);
      }
      t2[i] = best == none ? c[i] : best;
    }
    t = t2;
    if (with_trace) trace_entry.t_after_step3 = t;

    // Step 4: adopt the links.
    c = t;

    // Step 5: pointer jumping, ceil(lg n) rounds, all synchronous.
    for (unsigned r = 0; r < iterations; ++r) {
      for (NodeId i = 0; i < n; ++i) next[i] = c[c[i]];
      c.swap(next);
    }
    if (with_trace) trace_entry.c_after_step5 = c;

    // Step 6 (HCS-1979 form): resolve the 2-cycles left by min-hooking.
    for (NodeId i = 0; i < n; ++i) next[i] = std::min(c[i], c[t[i]]);
    c.swap(next);
    if (with_trace) {
      trace_entry.c_after_step6 = c;
      result.trace.push_back(std::move(trace_entry));
    }
  }

  result.labels = std::move(c);
  result.iterations = iterations;
  return result;
}

std::vector<NodeId> hirschberg_reference(const Graph& g) {
  return hirschberg_reference_full(g).labels;
}

std::size_t hirschberg_pram_step_count(NodeId n) {
  if (n <= 1) return 1;  // just the init step
  const std::size_t lg = log2_ceil(n);
  // init + per iteration: step2 (1 + lg + 1), step3 (1 + lg + 1),
  // step4 (1), step5 (lg), step6 (1) = 3*lg + 6 steps per iteration.
  return 1 + lg * (3 * lg + 6);
}

namespace {

/// Shared implementation of the fully parallel and Brent-virtualised runs;
/// `physical` == 0 means one physical machine per virtual processor.
HirschbergPramResult run_hirschberg_impl(const Graph& g, AccessMode mode,
                                         std::size_t physical) {
  const NodeId n = g.node_count();
  HirschbergPramResult result;
  if (n == 0) return result;

  const std::size_t nn = std::size_t{n} * n;
  Machine machine(nn /*A*/ + nn /*M scratch*/ + 2 * n /*C, T*/, mode);
  // Dispatch through Brent virtualisation when a physical machine count is
  // given (0 = fully parallel).
  const auto do_step = [&machine, physical](
                           std::size_t processors,
                           const std::function<void(Processor&)>& body,
                           std::string label) {
    if (physical == 0) {
      machine.step(processors, body, std::move(label));
    } else {
      machine.step_virtual(processors, physical, body, std::move(label));
    }
  };
  const ArrayRef a = machine.alloc("A", nn);
  const ArrayRef m = machine.alloc("M", nn);
  const ArrayRef c = machine.alloc("C", n);
  const ArrayRef t = machine.alloc("T", n);

  // Load the adjacency matrix as host data.
  for (NodeId i = 0; i < n; ++i) {
    for (NodeId j = 0; j < n; ++j) {
      machine.store(a.at(std::size_t{i} * n + j), g.has_edge(i, j) ? 1 : 0);
    }
  }
  // Ownership: processor (i,j) = i*n + j owns M(i,j); processor i owns C(i)
  // and T(i).  This is the owner-write discipline the paper points out the
  // algorithm needs (CROW, not full CREW).
  for (std::size_t k = 0; k < nn; ++k) machine.set_owner(m.at(k), k);
  for (NodeId i = 0; i < n; ++i) {
    machine.set_owner(c.at(i), i);
    machine.set_owner(t.at(i), i);
  }

  // Step 1: C(i) <- i.
  do_step(
      n, [&](Processor& p) { p.write(c.at(p.id()), static_cast<Word>(p.id())); },
      "step1:init");

  const unsigned iterations = n > 1 ? log2_ceil(n) : 0;
  const unsigned lg = iterations;

  // Tree-minimum over each row of M in ceil(lg n) synchronous halvings;
  // processor (i, k) combines M(i, k) and M(i, k + 2^s).
  const auto reduce_rows = [&](const std::string& label) {
    for (unsigned s = 0; s < lg; ++s) {
      const std::size_t offset = std::size_t{1} << s;
      do_step(
          nn,
          [&](Processor& p) {
            const std::size_t i = p.id() / n;
            const std::size_t k = p.id() % n;
            if (k % (offset * 2) != 0 || k + offset >= n) return;
            const Word lhs = p.read(m.at(i * n + k));
            const Word rhs = p.read(m.at(i * n + k + offset));
            if (rhs < lhs) p.write(m.at(i * n + k), rhs);
          },
          label + ":reduce" + std::to_string(s));
    }
  };

  for (unsigned iter = 0; iter < iterations; ++iter) {
    // Step 2: M(i,j) = C(j) if A(i,j)=1 and C(j) != C(i), else +inf.
    do_step(
        nn,
        [&](Processor& p) {
          const std::size_t i = p.id() / n;
          const std::size_t j = p.id() % n;
          const Word adj = p.read(a.at(i * n + j));
          const Word cj = p.read(c.at(j));
          const Word ci = p.read(c.at(i));
          p.write(m.at(i * n + j), (adj == 1 && cj != ci) ? cj : kInf);
        },
        "step2:candidates");
    reduce_rows("step2");
    do_step(
        n,
        [&](Processor& p) {
          const std::size_t i = p.id();
          const Word best = p.read(m.at(i * n));
          const Word fallback = p.read(c.at(i));
          p.write(t.at(i), best == kInf ? fallback : best);
        },
        "step2:collect");

    // Step 3: M(i,j) = T(j) if C(j)=i and T(j) != i, else +inf.
    do_step(
        nn,
        [&](Processor& p) {
          const std::size_t i = p.id() / n;
          const std::size_t j = p.id() % n;
          const Word cj = p.read(c.at(j));
          const Word tj = p.read(t.at(j));
          p.write(m.at(i * n + j),
                  (cj == static_cast<Word>(i) && tj != static_cast<Word>(i))
                      ? tj
                      : kInf);
        },
        "step3:candidates");
    reduce_rows("step3");
    do_step(
        n,
        [&](Processor& p) {
          const std::size_t i = p.id();
          const Word best = p.read(m.at(i * n));
          const Word fallback = p.read(c.at(i));
          p.write(t.at(i), best == kInf ? fallback : best);
        },
        "step3:collect");

    // Step 4: C <- T.
    do_step(
        n,
        [&](Processor& p) {
          p.write(c.at(p.id()), p.read(t.at(p.id())));
        },
        "step4:adopt");

    // Step 5: pointer jumping.
    for (unsigned r = 0; r < lg; ++r) {
      do_step(
          n,
          [&](Processor& p) {
            const Word ci = p.read(c.at(p.id()));
            const Word cci = p.read(c.at(static_cast<std::size_t>(ci)));
            p.write(c.at(p.id()), cci);
          },
          "step5:jump" + std::to_string(r));
    }

    // Step 6 (HCS-1979 form): C(i) <- min(C(i), C(T(i))).
    do_step(
        n,
        [&](Processor& p) {
          const Word ci = p.read(c.at(p.id()));
          const Word ti = p.read(t.at(p.id()));
          const Word cti = p.read(c.at(static_cast<std::size_t>(ti)));
          p.write(c.at(p.id()), std::min(ci, cti));
        },
        "step6:correct");
  }

  result.labels.resize(n);
  for (NodeId i = 0; i < n; ++i) {
    result.labels[i] = static_cast<NodeId>(machine.load(c.at(i)));
  }
  result.iterations = iterations;
  result.stats = machine.stats();
  result.step_history = machine.history();
  return result;
}

}  // namespace

HirschbergPramResult run_hirschberg_pram(const Graph& g, AccessMode mode) {
  return run_hirschberg_impl(g, mode, /*physical=*/0);
}

HirschbergPramResult run_hirschberg_pram_brent(const Graph& g,
                                               std::size_t physical_processors,
                                               AccessMode mode) {
  GCALIB_EXPECTS(physical_processors >= 1);
  return run_hirschberg_impl(g, mode, physical_processors);
}

}  // namespace gcalib::pram
