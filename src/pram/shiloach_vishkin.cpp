#include "pram/shiloach_vishkin.hpp"

#include <algorithm>

#include "common/bits.hpp"

namespace gcalib::pram {

using graph::Graph;
using graph::NodeId;

namespace {

/// Standard SV star detection over a parent forest:
/// a node is in a star iff its tree has depth <= 1.
std::vector<std::uint8_t> compute_stars(const std::vector<NodeId>& parent) {
  const std::size_t n = parent.size();
  std::vector<std::uint8_t> star(n, 1);
  for (std::size_t v = 0; v < n; ++v) {
    const NodeId gp = parent[parent[v]];
    if (parent[v] != gp) {
      star[v] = 0;
      star[parent[v]] = 0;
      star[gp] = 0;
    }
  }
  for (std::size_t v = 0; v < n; ++v) star[v] = star[parent[v]];
  return star;
}

}  // namespace

std::vector<NodeId> shiloach_vishkin_reference(const Graph& g) {
  const NodeId n = g.node_count();
  std::vector<NodeId> parent(n);
  for (NodeId v = 0; v < n; ++v) parent[v] = v;
  if (n == 0) return parent;

  // Invariant: parent[v] <= v is preserved by min-hooking and shortcutting,
  // so converged roots are minimum ids (no canonicalisation needed).
  while (true) {
    const std::vector<std::uint8_t> star = compute_stars(parent);

    // Star hooking with min-combining of concurrent proposals (deterministic
    // stand-in for the CRCW-arbitrary write of the original algorithm).
    std::vector<NodeId> proposal(n, n);  // n = "none"
    bool hooked = false;
    for (const graph::Edge& e : g.edges()) {
      const auto consider = [&](NodeId u, NodeId v) {
        if (star[u] && parent[v] < parent[u]) {
          proposal[parent[u]] = std::min(proposal[parent[u]], parent[v]);
          hooked = true;
        }
      };
      consider(e.u, e.v);
      consider(e.v, e.u);
    }

    bool all_stars = true;
    for (NodeId v = 0; v < n; ++v) all_stars = all_stars && star[v] != 0;
    if (!hooked && all_stars) break;

    for (NodeId v = 0; v < n; ++v) {
      if (proposal[v] != n) parent[v] = proposal[v];
    }
    // Shortcut (synchronous: reads pre-update parents).
    std::vector<NodeId> next(n);
    for (NodeId v = 0; v < n; ++v) next[v] = parent[parent[v]];
    parent.swap(next);
  }
  return parent;
}

ShiloachVishkinPramResult run_shiloach_vishkin_pram(const Graph& g,
                                                    AccessMode mode) {
  const NodeId n = g.node_count();
  ShiloachVishkinPramResult result;
  if (n == 0) return result;

  const std::size_t nn = std::size_t{n} * n;
  // Layout: A | parent | star | scratch (grandparent snapshot).
  Machine machine(nn + 3 * n, mode);
  const ArrayRef a = machine.alloc("A", nn);
  const ArrayRef parent = machine.alloc("parent", n);
  const ArrayRef star = machine.alloc("star", n);
  const ArrayRef scratch = machine.alloc("scratch", n);

  for (NodeId i = 0; i < n; ++i) {
    for (NodeId j = 0; j < n; ++j) {
      machine.store(a.at(std::size_t{i} * n + j), g.has_edge(i, j) ? 1 : 0);
    }
  }

  machine.step(
      n, [&](Processor& p) { p.write(parent.at(p.id()), static_cast<Word>(p.id())); },
      "sv:init");

  std::vector<Word> before(n), after(n);
  std::size_t iterations = 0;
  // Convergence: an iteration that leaves the forest unchanged can never be
  // followed by progress, so the host loop stops there.  The cap is a
  // safety net against implementation bugs only.
  const std::size_t cap = 4 * (n > 1 ? log2_ceil(n) : 1) + 8 + n;
  while (true) {
    GCALIB_ASSERT_MSG(iterations < cap, "Shiloach-Vishkin failed to converge");
    for (NodeId i = 0; i < n; ++i) before[i] = machine.load(parent.at(i));

    // Star detection, phase 1: assume star.
    machine.step(
        n, [&](Processor& p) { p.write(star.at(p.id()), 1); }, "sv:star-seed");
    // Phase 2: any depth-2 node clears itself, its parent and grandparent.
    // The three concurrent 0-writes need a CRCW mode.
    machine.step(
        n,
        [&](Processor& p) {
          const Word pv = p.read(parent.at(p.id()));
          const Word gp = p.read(parent.at(static_cast<std::size_t>(pv)));
          if (pv != gp) {
            p.write(star.at(p.id()), 0);
            p.write(star.at(static_cast<std::size_t>(pv)), 0);
            p.write(star.at(static_cast<std::size_t>(gp)), 0);
          }
        },
        "sv:star-mark");
    // Phase 3: inherit the root's verdict.
    machine.step(
        n,
        [&](Processor& p) {
          const Word pv = p.read(parent.at(p.id()));
          p.write(star.at(p.id()),
                  p.read(star.at(static_cast<std::size_t>(pv))));
        },
        "sv:star-propagate");

    // Hooking: processor (u,v) proposes parent[parent[u]] <- parent[v] when
    // u is in a star and the neighbour's parent is smaller.  Concurrent
    // proposals to the same root are combined by the machine (CRCW).
    machine.step(
        nn,
        [&](Processor& p) {
          const std::size_t u = p.id() / n;
          const std::size_t v = p.id() % n;
          if (p.read(a.at(u * n + v)) != 1) return;
          if (p.read(star.at(u)) != 1) return;
          const Word pu = p.read(parent.at(u));
          const Word pv = p.read(parent.at(v));
          if (pv < pu) p.write(parent.at(static_cast<std::size_t>(pu)), pv);
        },
        "sv:hook");

    // Shortcut: parent[v] <- parent[parent[v]] (synchronous via snapshot).
    machine.step(
        n,
        [&](Processor& p) {
          const Word pv = p.read(parent.at(p.id()));
          p.write(scratch.at(p.id()),
                  p.read(parent.at(static_cast<std::size_t>(pv))));
        },
        "sv:shortcut-read");
    machine.step(
        n,
        [&](Processor& p) {
          p.write(parent.at(p.id()), p.read(scratch.at(p.id())));
        },
        "sv:shortcut-write");

    ++iterations;
    bool changed = false;
    for (NodeId i = 0; i < n; ++i) {
      after[i] = machine.load(parent.at(i));
      changed = changed || after[i] != before[i];
    }
    if (!changed) break;
  }

  result.labels.resize(n);
  for (NodeId i = 0; i < n; ++i) {
    result.labels[i] = static_cast<NodeId>(machine.load(parent.at(i)));
  }
  result.iterations = iterations;
  result.stats = machine.stats();
  return result;
}

}  // namespace gcalib::pram
