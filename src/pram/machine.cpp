#include "pram/machine.hpp"

#include <algorithm>
#include <map>

namespace gcalib::pram {

const char* to_string(AccessMode mode) {
  switch (mode) {
    case AccessMode::kErew: return "EREW";
    case AccessMode::kCrew: return "CREW";
    case AccessMode::kCrow: return "CROW";
    case AccessMode::kCrcwPriority: return "CRCW-priority";
    case AccessMode::kCrcwArbitrary: return "CRCW-arbitrary";
    case AccessMode::kCrcwMin: return "CRCW-min";
  }
  return "?";
}

Word Processor::read(std::size_t addr) {
  return machine_.processor_read(id_, addr);
}

void Processor::write(std::size_t addr, Word value) {
  machine_.processor_write(id_, addr, value);
}

Machine::Machine(std::size_t memory_size, AccessMode mode)
    : mode_(mode),
      memory_(memory_size, 0),
      owner_(memory_size, kNoOwner),
      read_count_(memory_size, 0),
      reader_of_(memory_size, kNoOwner) {}

ArrayRef Machine::alloc(const std::string& name, std::size_t size) {
  GCALIB_EXPECTS_MSG(next_free_ + size <= memory_.size(),
                     "shared memory exhausted allocating " + name);
  ArrayRef ref{next_free_, size};
  next_free_ += size;
  return ref;
}

Word Machine::load(std::size_t addr) const {
  GCALIB_EXPECTS(addr < memory_.size());
  return memory_[addr];
}

void Machine::store(std::size_t addr, Word value) {
  GCALIB_EXPECTS(addr < memory_.size());
  memory_[addr] = value;
}

void Machine::set_owner(std::size_t addr, std::size_t processor) {
  GCALIB_EXPECTS(addr < memory_.size());
  owner_[addr] = processor;
}

Word Machine::processor_read(std::size_t proc, std::size_t addr) {
  GCALIB_EXPECTS_MSG(in_step_, "shared memory read outside a step");
  GCALIB_EXPECTS(addr < memory_.size());
  if (mode_ == AccessMode::kErew && read_count_[addr] > 0 &&
      reader_of_[addr] != proc) {
    throw AccessViolation("EREW: concurrent read of cell " +
                          std::to_string(addr) + " by processors " +
                          std::to_string(reader_of_[addr]) + " and " +
                          std::to_string(proc));
  }
  // Re-reads by the same processor hit its local register copy on a real
  // machine, so count each (processor, cell) pair once per step.
  if (read_count_[addr] == 0 || reader_of_[addr] != proc) {
    ++read_count_[addr];
    ++current_.reads;
  }
  reader_of_[addr] = proc;
  return memory_[addr];
}

void Machine::processor_write(std::size_t proc, std::size_t addr, Word value) {
  GCALIB_EXPECTS_MSG(in_step_, "shared memory write outside a step");
  GCALIB_EXPECTS(addr < memory_.size());
  if (owner_[addr] != kNoOwner && owner_[addr] != proc &&
      mode_ == AccessMode::kCrow) {
    throw AccessViolation("CROW: processor " + std::to_string(proc) +
                          " wrote cell " + std::to_string(addr) +
                          " owned by processor " + std::to_string(owner_[addr]));
  }
  pending_writes_.push_back(PendingWrite{proc, addr, value});
}

void Machine::step(std::size_t processors,
                   const std::function<void(Processor&)>& body,
                   std::string label) {
  execute_step(processors, body, std::move(label), 1);
}

void Machine::step_virtual(std::size_t virtual_processors,
                           std::size_t physical_processors,
                           const std::function<void(Processor&)>& body,
                           std::string label) {
  GCALIB_EXPECTS(physical_processors >= 1);
  const std::size_t slowdown =
      virtual_processors == 0
          ? 1
          : (virtual_processors + physical_processors - 1) / physical_processors;
  execute_step(virtual_processors, body, std::move(label), slowdown);
}

void Machine::execute_step(std::size_t processors,
                           const std::function<void(Processor&)>& body,
                           std::string label, std::size_t time_charge) {
  GCALIB_EXPECTS_MSG(!in_step_, "nested PRAM steps are not allowed");
  in_step_ = true;
  current_ = StepStats{};
  current_.step_index = stats_.steps;
  current_.label = std::move(label);
  current_.processors = processors;
  std::fill(read_count_.begin(), read_count_.end(), std::size_t{0});
  std::fill(reader_of_.begin(), reader_of_.end(), kNoOwner);
  pending_writes_.clear();

  try {
    for (std::size_t p = 0; p < processors; ++p) {
      current_proc_ = p;
      Processor handle(*this, p);
      body(handle);
    }
  } catch (...) {
    in_step_ = false;  // keep the machine usable after a violation
    throw;
  }

  // Commit writes with mode-specific conflict resolution.
  std::sort(pending_writes_.begin(), pending_writes_.end(),
            [](const PendingWrite& a, const PendingWrite& b) {
              return a.addr != b.addr ? a.addr < b.addr : a.proc < b.proc;
            });
  for (std::size_t i = 0; i < pending_writes_.size();) {
    std::size_t j = i;
    while (j < pending_writes_.size() &&
           pending_writes_[j].addr == pending_writes_[i].addr) {
      ++j;
    }
    const std::size_t addr = pending_writes_[i].addr;
    const std::size_t writers = j - i;
    Word value = pending_writes_[i].value;  // lowest processor id first
    if (writers > 1) {
      switch (mode_) {
        case AccessMode::kErew:
        case AccessMode::kCrew:
        case AccessMode::kCrow:
          in_step_ = false;
          throw AccessViolation(std::string(to_string(mode_)) +
                                ": write conflict on cell " +
                                std::to_string(addr) + " (" +
                                std::to_string(writers) + " writers)");
        case AccessMode::kCrcwPriority:
        case AccessMode::kCrcwArbitrary:
          break;  // lowest processor id wins (deterministic choice)
        case AccessMode::kCrcwMin:
          for (std::size_t k = i; k < j; ++k) {
            value = std::min(value, pending_writes_[k].value);
          }
          break;
      }
    }
    memory_[addr] = value;
    ++current_.writes;
    i = j;
  }

  for (std::size_t c : read_count_) {
    current_.max_read_congestion = std::max(current_.max_read_congestion, c);
  }

  stats_.steps += time_charge;
  stats_.work += processors;
  stats_.reads += current_.reads;
  stats_.writes += current_.writes;
  stats_.max_read_congestion =
      std::max(stats_.max_read_congestion, current_.max_read_congestion);
  history_.push_back(current_);
  in_step_ = false;
}

void Machine::reset_stats() {
  stats_ = MachineStats{};
  history_.clear();
}

}  // namespace gcalib::pram
