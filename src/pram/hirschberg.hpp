// Hirschberg's parallel connected-components algorithm (Listing 1 of the
// paper; Hirschberg 1976 / Hirschberg-Chandra-Sarwate 1979).
//
// Two implementations are provided:
//  * `hirschberg_reference` — a direct, synchronous vector implementation of
//    the six steps.  This is the functional specification that the GCA
//    mapping and the PRAM-hosted version are validated against.
//  * `run_hirschberg_pram` — the same algorithm hosted on the `pram::Machine`
//    simulator with n^2 virtual processors, exercising CREW/CROW access
//    checking and producing the step/work/congestion accounting that the
//    paper's optimality discussion (section 3) is about.
//
// Note on step 6: the paper's listing prints the final correction as
// `C(i) <- min(C(T(i)), T(i))`, which mislabels e.g. the 4-node path
// 0-1-2-3 (the 2-cycle between supernodes 0 and 1 survives).  The original
// HCS-1979 step is `C(i) <- min(C(i), C(T(i)))`, which is what we implement;
// the GCA's generation 11 (`min(C(i), T(C(i)))` after pointer jumping) is
// equivalent to it — see DESIGN.md for the argument.
#pragma once

#include <cstddef>
#include <vector>

#include "graph/graph.hpp"
#include "pram/machine.hpp"

namespace gcalib::pram {

/// Per-iteration snapshot of the reference run (for tracing / validation of
/// the GCA mapping's intermediate states).
struct HirschbergIterationTrace {
  std::vector<graph::NodeId> t_after_step2;  ///< T after the neighbour scan
  std::vector<graph::NodeId> t_after_step3;  ///< T after super-node gathering
  std::vector<graph::NodeId> c_after_step5;  ///< C after pointer jumping
  std::vector<graph::NodeId> c_after_step6;  ///< C at iteration end
};

/// Result of the reference implementation.
struct HirschbergReferenceResult {
  std::vector<graph::NodeId> labels;  ///< min-id component label per node
  std::size_t iterations = 0;         ///< outer iterations executed
  std::vector<HirschbergIterationTrace> trace;  ///< filled iff requested
};

/// Direct implementation of Listing 1 (see header comment for the step-6
/// erratum).  `with_trace` additionally records per-iteration snapshots.
[[nodiscard]] HirschbergReferenceResult hirschberg_reference_full(
    const graph::Graph& g, bool with_trace = false);

/// Convenience wrapper returning only the labels.
[[nodiscard]] std::vector<graph::NodeId> hirschberg_reference(const graph::Graph& g);

/// Result of the PRAM-hosted run.
struct HirschbergPramResult {
  std::vector<graph::NodeId> labels;
  std::size_t iterations = 0;
  MachineStats stats;                  ///< time/work/congestion accounting
  std::vector<StepStats> step_history; ///< per-step detail
};

/// Runs Listing 1 on a `pram::Machine` with n^2 virtual processors.
/// `mode` must be at least CROW-capable for this algorithm (every cell is
/// written only by its owner); kErew throws AccessViolation on the first
/// concurrent read, demonstrating that the algorithm genuinely needs
/// concurrent reading.
[[nodiscard]] HirschbergPramResult run_hirschberg_pram(
    const graph::Graph& g, AccessMode mode = AccessMode::kCrow);

/// Closed-form PRAM step count of our schedule for a given n (used by the
/// scaling bench to cross-check the simulator's accounting): per outer
/// iteration, steps 2 and 3 cost (1 + ceil(lg n) + 1) each, step 4 costs 1,
/// step 5 costs ceil(lg n) and step 6 costs 1; plus 1 init step.
[[nodiscard]] std::size_t hirschberg_pram_step_count(graph::NodeId n);

/// Brent-virtualised run (paper, introduction): the same n^2-processor
/// schedule simulated by `physical_processors` machines round-robin via
/// Machine::step_virtual.  Labels are identical to the fully parallel run;
/// the stats charge every step with its ceil(V/P) slowdown, so
/// stats.steps quantifies the time cost of shrinking the machine.
[[nodiscard]] HirschbergPramResult run_hirschberg_pram_brent(
    const graph::Graph& g, std::size_t physical_processors,
    AccessMode mode = AccessMode::kCrow);

}  // namespace gcalib::pram
