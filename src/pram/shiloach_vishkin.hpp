// Shiloach–Vishkin connected components (SIAM J. Computing 1982).
//
// Included for two reasons: the paper names "more elaborate PRAM
// algorithms" as future work, and SV is the canonical CRCW counterpart to
// Hirschberg's CREW/CROW algorithm — running it on the same `pram::Machine`
// demonstrates the access-mode hierarchy (SV needs arbitrary/priority
// concurrent writes during hooking, which the CROW machine rejects).
#pragma once

#include <vector>

#include "graph/graph.hpp"
#include "pram/machine.hpp"

namespace gcalib::pram {

/// Direct vector implementation (functional reference).  Labels follow the
/// min-id convention after an O(n) normalisation pass.
[[nodiscard]] std::vector<graph::NodeId> shiloach_vishkin_reference(
    const graph::Graph& g);

/// Result of the PRAM-hosted run.
struct ShiloachVishkinPramResult {
  std::vector<graph::NodeId> labels;
  std::size_t iterations = 0;
  MachineStats stats;
};

/// Runs SV on a `pram::Machine`; requires a CRCW mode (priority or
/// arbitrary) — other modes throw AccessViolation during hooking.
[[nodiscard]] ShiloachVishkinPramResult run_shiloach_vishkin_pram(
    const graph::Graph& g, AccessMode mode = AccessMode::kCrcwPriority);

}  // namespace gcalib::pram
