#include "gca/trace.hpp"

#include <algorithm>

#include "common/format.hpp"
#include "gca/instrumentation.hpp"

namespace gcalib::gca {

std::string render_active_mask(const FieldGeometry& geometry,
                               const std::vector<std::uint8_t>& active) {
  GCALIB_EXPECTS(active.size() == geometry.size());
  std::string out;
  out.reserve(geometry.size() + geometry.rows());
  for (std::size_t r = 0; r < geometry.rows(); ++r) {
    for (std::size_t c = 0; c < geometry.cols(); ++c) {
      out.push_back(active[geometry.index_of(r, c)] ? '#' : '.');
    }
    out.push_back('\n');
  }
  return out;
}

std::string render_indexed_mask(const FieldGeometry& geometry,
                                const std::vector<std::uint8_t>& active) {
  GCALIB_EXPECTS(active.size() == geometry.size());
  const std::size_t width = std::to_string(geometry.size() - 1).size();
  std::string out;
  for (std::size_t r = 0; r < geometry.rows(); ++r) {
    for (std::size_t c = 0; c < geometry.cols(); ++c) {
      const std::size_t index = geometry.index_of(r, c);
      const std::string num = pad_left(std::to_string(index), width);
      out += active[index] ? "[" + num + "]" : " " + num + " ";
      if (c + 1 < geometry.cols()) out.push_back(' ');
    }
    out.push_back('\n');
  }
  return out;
}

std::string render_access_edges(const FieldGeometry& geometry,
                                const std::vector<AccessEdge>& edges) {
  std::vector<AccessEdge> sorted = edges;
  std::sort(sorted.begin(), sorted.end());
  std::string out;
  for (const AccessEdge& e : sorted) {
    out += '(';
    out += std::to_string(geometry.row(e.reader));
    out += ',';
    out += std::to_string(geometry.col(e.reader));
    out += ") <- (";
    out += std::to_string(geometry.row(e.target));
    out += ',';
    out += std::to_string(geometry.col(e.target));
    out += ")\n";
  }
  return out;
}

std::string render_numeric_field(const FieldGeometry& geometry,
                                 const std::vector<std::uint64_t>& values,
                                 std::uint64_t inf_value) {
  GCALIB_EXPECTS(values.size() == geometry.size());
  std::size_t width = 3;  // at least "inf"
  for (std::uint64_t v : values) {
    if (v != inf_value) width = std::max(width, std::to_string(v).size());
  }
  std::string out;
  for (std::size_t r = 0; r < geometry.rows(); ++r) {
    for (std::size_t c = 0; c < geometry.cols(); ++c) {
      const std::uint64_t v = values[geometry.index_of(r, c)];
      out += pad_left(v == inf_value ? "inf" : std::to_string(v), width);
      if (c + 1 < geometry.cols()) out.push_back(' ');
    }
    out.push_back('\n');
  }
  return out;
}

std::string format_generation_stats(const GenerationStats& stats) {
  std::string out = stats.label.empty() ? "step" : stats.label;
  out += ": active=" + std::to_string(stats.active_cells);
  out += " reads=" + std::to_string(stats.total_reads);
  out += " cells_read=" + std::to_string(stats.cells_read);
  out += " max_congestion=" + std::to_string(stats.max_congestion);
  return out;
}

GenerationSummary summarize(const std::string& label,
                            const std::vector<GenerationStats>& steps) {
  GenerationSummary summary;
  summary.label = label;
  summary.steps = steps.size();
  for (std::size_t i = 0; i < steps.size(); ++i) {
    const GenerationStats& s = steps[i];
    if (i == 0) summary.active_cells_first = s.active_cells;
    summary.active_cells_total += s.active_cells;
    summary.total_reads += s.total_reads;
    summary.cells_read_total += s.cells_read;
    summary.max_congestion = std::max(summary.max_congestion, s.max_congestion);
  }
  return summary;
}

}  // namespace gcalib::gca
