#include "gca/metrics.hpp"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <ostream>
#include <stdexcept>
#include <utility>

#include "common/csv.hpp"
#include "common/format.hpp"

namespace gcalib::gca {

namespace {

/// Minimal JSON string escaping (labels are internal identifiers, but a
/// user-supplied step label must not be able to break the document).
std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

/// Microseconds with nanosecond precision, relative to `base_ns` — the
/// unit chrome://tracing expects for "ts"/"dur".
std::string us_from(std::uint64_t ns, std::uint64_t base_ns) {
  const std::uint64_t rel = ns >= base_ns ? ns - base_ns : 0;
  const std::string frac = std::to_string(rel % 1000);
  return std::to_string(rel / 1000) + "." +
         std::string(3 - frac.size(), '0') + frac;
}

std::string format_ms(std::uint64_t ns) {
  return fixed(static_cast<double>(ns) / 1e6, 3) + " ms";
}

}  // namespace

void Trace::on_step(const GenerationStats& stats) {
  const std::lock_guard<std::mutex> lock(mutex_);
  steps_.push_back(stats);
}

std::size_t Trace::size() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return steps_.size();
}

void Trace::clear() {
  const std::lock_guard<std::mutex> lock(mutex_);
  steps_.clear();
}

void Trace::write_chrome_trace(std::ostream& os) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  // Normalise to the first step so timestamps are small and the viewport
  // opens on the run instead of hours into the steady clock's epoch.
  const std::uint64_t base =
      steps_.empty() ? 0 : steps_.front().start_ns;
  os << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  const auto emit = [&](const std::string& name, const char* cat,
                        unsigned tid, std::uint64_t start_ns,
                        std::uint64_t duration_ns, const std::string& args) {
    if (!first) os << ",";
    first = false;
    os << "\n{\"name\":\"" << json_escape(name) << "\",\"cat\":\"" << cat
       << "\",\"ph\":\"X\",\"pid\":0,\"tid\":" << tid << ",\"ts\":"
       << us_from(start_ns, base) << ",\"dur\":" << us_from(duration_ns, 0)
       << ",\"args\":{" << args << "}}";
  };
  for (const GenerationStats& s : steps_) {
    const std::string name = s.label.empty()
                                 ? "step" + std::to_string(s.generation)
                                 : s.label;
    emit(name, "step", 0, s.start_ns, s.duration_ns,
         "\"generation\":" + std::to_string(s.generation) +
             ",\"active_cells\":" + std::to_string(s.active_cells) +
             ",\"total_reads\":" + std::to_string(s.total_reads) +
             ",\"max_congestion\":" + std::to_string(s.max_congestion));
    for (const LaneTiming& lane : s.lane_times) {
      emit(name + "/lane" + std::to_string(lane.lane), "lane", lane.lane + 1,
           lane.start_ns, lane.duration_ns,
           "\"cells\":" + std::to_string(lane.cells));
    }
  }
  os << "\n]}\n";
}

void Trace::write_metrics_csv(std::ostream& os) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  CsvWriter csv({"generation", "label", "start_ns", "duration_ns",
                 "cell_count", "cells_swept", "active_cells", "total_reads",
                 "cells_read", "max_congestion", "lanes"});
  for (const GenerationStats& s : steps_) {
    csv.add_row({std::to_string(s.generation), s.label,
                 std::to_string(s.start_ns), std::to_string(s.duration_ns),
                 std::to_string(s.cell_count), std::to_string(s.cells_swept),
                 std::to_string(s.active_cells), std::to_string(s.total_reads),
                 std::to_string(s.cells_read),
                 std::to_string(s.max_congestion),
                 std::to_string(s.lane_times.size())});
  }
  os << csv.render();
}

void Trace::write_metrics_json(std::ostream& os) const {
  const TraceSummary sum = summary();
  const std::lock_guard<std::mutex> lock(mutex_);
  os << "{\"steps\":[";
  for (std::size_t i = 0; i < steps_.size(); ++i) {
    const GenerationStats& s = steps_[i];
    os << (i == 0 ? "" : ",") << "\n{\"generation\":" << s.generation
       << ",\"label\":\"" << json_escape(s.label) << "\",\"start_ns\":"
       << s.start_ns << ",\"duration_ns\":" << s.duration_ns
       << ",\"cell_count\":" << s.cell_count << ",\"cells_swept\":"
       << s.cells_swept << ",\"active_cells\":"
       << s.active_cells << ",\"total_reads\":" << s.total_reads
       << ",\"cells_read\":" << s.cells_read << ",\"max_congestion\":"
       << s.max_congestion << ",\"lanes\":[";
    for (std::size_t l = 0; l < s.lane_times.size(); ++l) {
      const LaneTiming& lane = s.lane_times[l];
      os << (l == 0 ? "" : ",") << "{\"lane\":" << lane.lane
         << ",\"start_ns\":" << lane.start_ns << ",\"duration_ns\":"
         << lane.duration_ns << ",\"cells\":" << lane.cells << "}";
    }
    os << "]}";
  }
  os << "\n],\"summary\":{\"steps\":" << sum.steps << ",\"wall_ns\":"
     << sum.wall_ns << ",\"span_ns\":" << sum.span_ns
     << ",\"parallel_steps\":" << sum.parallel_steps
     << ",\"lane_utilisation\":" << fixed(sum.lane_utilisation, 4) << "}}\n";
}

TraceSummary Trace::summary() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  TraceSummary sum;
  sum.steps = steps_.size();
  std::uint64_t first_start = 0;
  std::uint64_t last_end = 0;
  std::uint64_t lane_busy_ns = 0;
  std::uint64_t lane_capacity_ns = 0;
  for (const GenerationStats& s : steps_) {
    sum.wall_ns += s.duration_ns;
    if (s.start_ns != 0) {
      if (first_start == 0) first_start = s.start_ns;
      last_end = std::max(last_end, s.start_ns + s.duration_ns);
    }
    if (!s.lane_times.empty()) {
      ++sum.parallel_steps;
      lane_capacity_ns += s.duration_ns * s.lane_times.size();
      for (const LaneTiming& lane : s.lane_times) {
        lane_busy_ns += lane.duration_ns;
      }
    }
    LabelSummary* row = nullptr;
    for (LabelSummary& existing : sum.by_label) {
      if (existing.label == s.label) {
        row = &existing;
        break;
      }
    }
    if (row == nullptr) {
      sum.by_label.push_back(LabelSummary{s.label, 0, 0, 0, 0, 0});
      row = &sum.by_label.back();
    }
    ++row->steps;
    row->total_ns += s.duration_ns;
    row->max_ns = std::max(row->max_ns, s.duration_ns);
    row->active_cells += s.active_cells;
    row->total_reads += s.total_reads;
  }
  if (last_end > first_start) sum.span_ns = last_end - first_start;
  if (lane_capacity_ns > 0) {
    sum.lane_utilisation =
        static_cast<double>(lane_busy_ns) / static_cast<double>(lane_capacity_ns);
  }
  return sum;
}

std::string format_summary(const TraceSummary& summary) {
  std::string out = "trace: " + std::to_string(summary.steps) + " steps, " +
                    format_ms(summary.wall_ns) + " swept (span " +
                    format_ms(summary.span_ns) + "), lane utilisation " +
                    fixed(summary.lane_utilisation * 100.0, 1) + "% over " +
                    std::to_string(summary.parallel_steps) +
                    " parallel steps\n";
  std::size_t width = 5;
  for (const LabelSummary& row : summary.by_label) {
    width = std::max(width, row.label.size());
  }
  out += "  " + pad_right("label", width) + "  steps  total        mean\n";
  for (const LabelSummary& row : summary.by_label) {
    const std::uint64_t mean =
        row.steps == 0 ? 0 : row.total_ns / row.steps;
    out += "  " + pad_right(row.label, width) + "  " +
           pad_left(std::to_string(row.steps), 5) + "  " +
           pad_left(format_ms(row.total_ns), 11) + "  " +
           pad_left(format_ms(mean), 10) + "\n";
  }
  return out;
}

namespace {

std::ofstream open_or_throw(const std::string& path) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("cannot write " + path);
  return out;
}

}  // namespace

void write_trace_file(const Trace& trace, const std::string& path) {
  std::ofstream out = open_or_throw(path);
  trace.write_chrome_trace(out);
  if (!out) throw std::runtime_error("error while writing " + path);
}

void write_metrics_file(const Trace& trace, const std::string& path) {
  std::ofstream out = open_or_throw(path);
  if (path.size() >= 5 && path.compare(path.size() - 5, 5, ".json") == 0) {
    trace.write_metrics_json(out);
  } else {
    trace.write_metrics_csv(out);
  }
  if (!out) throw std::runtime_error("error while writing " + path);
}

ServiceCountersSnapshot ServiceCounters::snapshot() const {
  ServiceCountersSnapshot s;
  s.accepted = accepted.load(std::memory_order_relaxed);
  s.rejected_queue_full = rejected_queue_full.load(std::memory_order_relaxed);
  s.rejected_deadline = rejected_deadline.load(std::memory_order_relaxed);
  s.rejected_draining = rejected_draining.load(std::memory_order_relaxed);
  s.shed_overload = shed_overload.load(std::memory_order_relaxed);
  s.completed_ok = completed_ok.load(std::memory_order_relaxed);
  s.expired = expired.load(std::memory_order_relaxed);
  s.failed = failed.load(std::memory_order_relaxed);
  s.recovered = recovered.load(std::memory_order_relaxed);
  s.batches = batches.load(std::memory_order_relaxed);
  s.degraded_batches = degraded_batches.load(std::memory_order_relaxed);
  s.drained = drained.load(std::memory_order_relaxed);
  s.restored = restored.load(std::memory_order_relaxed);
  s.journal_writes = journal_writes.load(std::memory_order_relaxed);
  s.overload_transitions =
      overload_transitions.load(std::memory_order_relaxed);
  s.overload_level = overload_level.load(std::memory_order_relaxed);
  return s;
}

namespace {

constexpr std::pair<const char*, std::uint64_t ServiceCountersSnapshot::*>
    kServiceFields[] = {
        {"accepted", &ServiceCountersSnapshot::accepted},
        {"rejected_queue_full", &ServiceCountersSnapshot::rejected_queue_full},
        {"rejected_deadline", &ServiceCountersSnapshot::rejected_deadline},
        {"rejected_draining", &ServiceCountersSnapshot::rejected_draining},
        {"shed_overload", &ServiceCountersSnapshot::shed_overload},
        {"completed_ok", &ServiceCountersSnapshot::completed_ok},
        {"expired", &ServiceCountersSnapshot::expired},
        {"failed", &ServiceCountersSnapshot::failed},
        {"recovered", &ServiceCountersSnapshot::recovered},
        {"batches", &ServiceCountersSnapshot::batches},
        {"degraded_batches", &ServiceCountersSnapshot::degraded_batches},
        {"drained", &ServiceCountersSnapshot::drained},
        {"restored", &ServiceCountersSnapshot::restored},
        {"journal_writes", &ServiceCountersSnapshot::journal_writes},
        {"overload_transitions",
         &ServiceCountersSnapshot::overload_transitions},
        {"overload_level", &ServiceCountersSnapshot::overload_level},
};

}  // namespace

std::string service_counters_json(const ServiceCountersSnapshot& counters) {
  std::string out = "{";
  bool first = true;
  for (const auto& [name, member] : kServiceFields) {
    if (!first) out += ",";
    first = false;
    out += "\"";
    out += name;
    out += "\":";
    out += std::to_string(counters.*member);
  }
  out += "}";
  return out;
}

std::string format_service_counters(const ServiceCountersSnapshot& counters) {
  std::string out;
  for (const auto& [name, member] : kServiceFields) {
    const std::size_t width = std::char_traits<char>::length(name);
    out += name;
    out.append(width < 22 ? 22 - width : 1, ' ');
    out += std::to_string(counters.*member);
    out += "\n";
  }
  return out;
}

}  // namespace gcalib::gca
