// Execution policy and options of the GCA engine.
//
// This header is deliberately light (no engine template, no <thread>) so
// every consumer that only needs to *configure* an engine — run-option
// structs, CLI front-ends, the Runner — can include it without pulling in
// the sweep machinery.
//
// Policies:
//  * kSequential — one thread sweeps all cells (the reference order; the
//    only policy that supports access-edge recording);
//  * kSpawn — the legacy backend: fresh std::threads are spawned and
//    joined every generation.  Kept for comparison benchmarks and as the
//    behaviour of the deprecated `set_threads` setter;
//  * kPool — a persistent worker pool (gca/thread_pool.hpp) is dispatched
//    per generation via an epoch handshake; the steady-state step performs
//    no thread creation and no allocation.  Engines with the same width
//    share one pool instance, so a process running many machines (the
//    Runner, the fault-recovery re-executions, the GCAL interpreter) keeps
//    a single worker set alive.
//
// All policies produce bit-identical states and statistics: cells are
// partitioned into the same contiguous chunks and instrumentation is
// merged in worker order.
#pragma once

#include <cstddef>
#include <string>

#include "gca/kernel_registry.hpp"

namespace gcalib::cli {
struct EngineFlags;  // common/cli.hpp
}  // namespace gcalib::cli

namespace gcalib::gca {

/// How the per-generation sweep over cells executes.
enum class ExecutionPolicy {
  kSequential,  ///< single-threaded reference sweep
  kSpawn,       ///< spawn-and-join std::threads every generation (legacy)
  kPool,        ///< persistent shared worker pool, dispatched per generation
};

/// Name of a policy ("sequential" / "spawn" / "pool").
[[nodiscard]] const char* to_string(ExecutionPolicy policy);

/// Inverse of `to_string`; throws ContractViolation on unknown names.
[[nodiscard]] ExecutionPolicy parse_execution_policy(const std::string& name);

/// Whether the engine honours per-step active regions.
///
/// Under kSparse the engine sweeps only the cells of the region a rule
/// advertises; every other cell carries its state over untouched (exactly
/// what an inactive rule invocation would have produced).  kDense ignores
/// the region and sweeps the whole field — the verification mode for the
/// dense/sparse equivalence contract (DESIGN.md §9).
enum class SweepMode {
  kDense,   ///< sweep every cell regardless of the advertised region
  kSparse,  ///< sweep only the advertised active region
};

/// Name of a sweep mode ("dense" / "sparse").
[[nodiscard]] const char* to_string(SweepMode mode);

/// Inverse of `to_string`; throws ContractViolation on unknown names.
[[nodiscard]] SweepMode parse_sweep_mode(const std::string& name);

/// Which substrate a connected-components query runs on (DESIGN.md §12).
///
/// Orthogonal to `SweepMode`: the sweep mode selects dense vs active-region
/// iteration *within* the paper's (n+1) x n cell field, while the substrate
/// selects the field itself — the paper-faithful dense field
/// (`core::DenseFieldSolver`) or the O(m)-work CSR label-propagation engine
/// (`core::SparseCcSolver`).  `kAuto` routes per query by node count and
/// density (`core::auto_substrate`).  The `Engine` template never reads
/// this: it is routing metadata consumed by the solver layer and carried on
/// `EngineOptions` so one validated options object configures either
/// substrate.
enum class SubstrateMode {
  kDense,      ///< the paper's (n+1) x n cell field — golden reference
  kSparseCsr,  ///< CSR label propagation, O(m) work per generation
  kAuto,       ///< choose per query from n and density
};

/// Name of a substrate ("dense" / "sparse_csr" / "auto").
[[nodiscard]] const char* to_string(SubstrateMode mode);

/// Inverse of `to_string`; throws ContractViolation on unknown names.
[[nodiscard]] SubstrateMode parse_substrate_mode(const std::string& name);

/// How the CSR substrate's generation loop runs (DESIGN.md §14).
///
/// Only consulted on the sparse_csr substrate; the dense field ignores it.
///
///  * kSync — the double-buffered synchronous hook/jump sweep: every sweep
///    is a pure function of the previous label buffer, so the labeling and
///    the per-sweep statistics are bit-identical across all execution
///    policies and thread counts.  This is the golden reference the
///    concurrent mode is cross-validated against.
///  * kAsync — in-place atomic CAS-min label propagation (Liu–Tarjan):
///    lanes lower labels concurrently without a per-sweep barrier copy,
///    sweeping edge-partitioned chunks and, once the set of still-moving
///    vertices shrinks, exact frontier worklists.  Intermediate states are
///    schedule-dependent, but the monotone label lattice guarantees the
///    *converged* labeling is the same canonical min-node-id labeling the
///    synchronous mode produces.
///  * kAuto — kAsync whenever the sweep actually runs parallel
///    (threads > 1 on a parallel policy), kSync otherwise: single-threaded,
///    the reference sweep is both canonical and free of atomics.
enum class SparseMode {
  kSync,   ///< double-buffered synchronous sweeps — golden reference
  kAsync,  ///< concurrent CAS-min propagation with frontier worklists
  kAuto,   ///< async iff the sweep is parallel
};

/// Name of a sparse mode ("sync" / "async" / "auto").
[[nodiscard]] const char* to_string(SparseMode mode);

/// Inverse of `to_string`; throws ContractViolation on unknown names.
[[nodiscard]] SparseMode parse_sparse_mode(const std::string& name);

/// The set of cells a generation may activate, as a rectangular (optionally
/// column-strided) window over a row-major field:
///
///   { row * row_stride + col_begin + c * col_step
///     : row in [row_begin, row_end), c in [0, cols_per_row()) }
///
/// with `col_begin + c * col_step < col_end`.  This shape covers every
/// generation of the Hirschberg machine: full field, square only, bottom
/// row, single column, and the strided survivor sets of the tree
/// reductions (gen 3/7: col % 2^(s+1) == 0).  A region is a *superset*
/// promise — cells outside it must be left unchanged by the rule (the rule
/// would return nullopt for them), so sweeping only the region is
/// observationally identical to a dense sweep.
///
/// Cells are enumerated in ascending linear index order; chunk partitions
/// split the enumeration [0, count()) so all backends and both sweep modes
/// agree on which lane touches which cell.
struct ActiveRegion {
  std::size_t row_begin = 0;
  std::size_t row_end = 0;    ///< exclusive
  std::size_t col_begin = 0;
  std::size_t col_end = 0;    ///< exclusive bound on the raw column value
  std::size_t col_step = 1;   ///< stride between active columns (>= 1)
  std::size_t row_stride = 0; ///< linear-index pitch between consecutive rows

  /// The whole-field safety mode: one "row" spanning all `cells` indices.
  [[nodiscard]] static constexpr ActiveRegion full(std::size_t cells) {
    return ActiveRegion{0, cells > 0 ? 1u : 0u, 0, cells, 1, cells};
  }

  /// Number of active columns within one row.
  [[nodiscard]] constexpr std::size_t cols_per_row() const {
    if (col_begin >= col_end || col_step == 0) return 0;
    return (col_end - col_begin + col_step - 1) / col_step;
  }

  /// Total number of cells in the region.
  [[nodiscard]] constexpr std::size_t count() const {
    return (row_end > row_begin ? row_end - row_begin : 0) * cols_per_row();
  }

  /// Linear index of enumeration position k (k < count()).
  [[nodiscard]] constexpr std::size_t index_at(std::size_t k) const {
    const std::size_t per_row = cols_per_row();
    const std::size_t row = row_begin + k / per_row;
    const std::size_t col = col_begin + (k % per_row) * col_step;
    return row * row_stride + col;
  }

  /// Calls `f(index)` for enumeration positions [k_begin, k_end), in
  /// ascending index order.  The division to locate the starting row runs
  /// once; per cell the cost is one add and a wrap test.
  template <typename F>
  void for_each(std::size_t k_begin, std::size_t k_end, F&& f) const {
    const std::size_t per_row = cols_per_row();
    if (per_row == 0 || k_begin >= k_end) return;
    std::size_t row = row_begin + k_begin / per_row;
    std::size_t c = k_begin % per_row;
    std::size_t index = row * row_stride + col_begin + c * col_step;
    for (std::size_t k = k_begin; k < k_end; ++k) {
      f(index);
      if (++c == per_row) {
        c = 0;
        ++row;
        index = row * row_stride + col_begin;
      } else {
        index += col_step;
      }
    }
  }

  [[nodiscard]] constexpr bool operator==(const ActiveRegion&) const = default;
};

/// Aggregate engine configuration — the primary way to construct an
/// `Engine`.  Fields can be set directly or through the chainable `with_*`
/// builder; `validate()` (called by the engine on every (re)configuration)
/// enforces the cross-field rules:
///
///  * `hands >= 1` and `threads >= 1`;
///  * `threads > 1` requires a parallel policy (kSpawn or kPool);
///  * `record_access` requires an effectively sequential sweep
///    (kSequential, or any policy with `threads == 1`).
struct EngineOptions {
  std::size_t hands = 1;  ///< global reads one cell may perform per generation
  unsigned threads = 1;   ///< sweep width (1 = sequential regardless of policy)
  ExecutionPolicy policy = ExecutionPolicy::kSequential;
  bool instrumentation = true;  ///< collect per-step congestion statistics
  bool record_access = false;   ///< record individual (reader, target) edges
  SweepMode sweep = SweepMode::kSparse;  ///< honour advertised active regions
  /// Substrate routing metadata (see `SubstrateMode`): consumed by the
  /// solver layer (core/cc_solver.hpp) to pick the engine a query runs on;
  /// the `Engine` template itself ignores it.
  SubstrateMode substrate = SubstrateMode::kAuto;
  /// Generation-loop mode of the sparse_csr substrate (see `SparseMode`);
  /// routing metadata like `substrate` — the `Engine` template ignores it.
  SparseMode sparse_mode = SparseMode::kAuto;
  /// Which bulk-kernel table the dense fast path dispatches
  /// (gca/kernel_registry.hpp).  kAuto picks the best variant the host
  /// supports; a concrete variant the host cannot execute is rejected by
  /// `validate()`.  Mediated (instrumented) sweeps ignore this — they are
  /// the golden reference the variants are checked against.
  KernelVariant kernels = KernelVariant::kAuto;

  EngineOptions& with_hands(std::size_t value) {
    hands = value;
    return *this;
  }
  EngineOptions& with_threads(unsigned value) {
    threads = value;
    return *this;
  }
  EngineOptions& with_policy(ExecutionPolicy value) {
    policy = value;
    return *this;
  }
  EngineOptions& with_instrumentation(bool value) {
    instrumentation = value;
    return *this;
  }
  EngineOptions& with_record_access(bool value) {
    record_access = value;
    return *this;
  }
  EngineOptions& with_sweep(SweepMode value) {
    sweep = value;
    return *this;
  }
  EngineOptions& with_substrate(SubstrateMode value) {
    substrate = value;
    return *this;
  }
  EngineOptions& with_sparse_mode(SparseMode value) {
    sparse_mode = value;
    return *this;
  }
  EngineOptions& with_kernels(KernelVariant value) {
    kernels = value;
    return *this;
  }

  /// True iff the sweep actually runs on more than one thread.
  [[nodiscard]] bool parallel() const {
    return policy != ExecutionPolicy::kSequential && threads > 1;
  }

  /// Throws ContractViolation when the combination is inconsistent.
  void validate() const;
};

/// Builds a *validated* EngineOptions from the shared CLI engine flags
/// (common/cli.hpp carries the policy / sweep / substrate as their spelled
/// names so common/ stays below gca/; this is the one conversion point).
/// Throws ContractViolation on inconsistent combinations — e.g.
/// `--record-access` with a parallel policy — so the tools can reject them
/// at parse time (exit 2) instead of asserting mid-run.
[[nodiscard]] EngineOptions options_from_flags(const cli::EngineFlags& flags);

/// The exit-2 wrapper every tool shares: converts + validates the flags,
/// printing `error: <diagnosis>` to stderr and exiting with status 2 on any
/// inconsistent combination — so `gca_cc_tool`, `gcal_run`,
/// `gca_resilient_cc` and `gcad` reject `--substrate marble` identically.
[[nodiscard]] EngineOptions options_from_flags_or_exit(
    const cli::EngineFlags& flags);

}  // namespace gcalib::gca
