// Execution policy and options of the GCA engine.
//
// This header is deliberately light (no engine template, no <thread>) so
// every consumer that only needs to *configure* an engine — run-option
// structs, CLI front-ends, the Runner — can include it without pulling in
// the sweep machinery.
//
// Policies:
//  * kSequential — one thread sweeps all cells (the reference order; the
//    only policy that supports access-edge recording);
//  * kSpawn — the legacy backend: fresh std::threads are spawned and
//    joined every generation.  Kept for comparison benchmarks and as the
//    behaviour of the deprecated `set_threads` setter;
//  * kPool — a persistent worker pool (gca/thread_pool.hpp) is dispatched
//    per generation via an epoch handshake; the steady-state step performs
//    no thread creation and no allocation.  Engines with the same width
//    share one pool instance, so a process running many machines (the
//    Runner, the fault-recovery re-executions, the GCAL interpreter) keeps
//    a single worker set alive.
//
// All policies produce bit-identical states and statistics: cells are
// partitioned into the same contiguous chunks and instrumentation is
// merged in worker order.
#pragma once

#include <cstddef>
#include <string>

namespace gcalib::cli {
struct ExecutionFlags;  // common/cli.hpp
}  // namespace gcalib::cli

namespace gcalib::gca {

/// How the per-generation sweep over cells executes.
enum class ExecutionPolicy {
  kSequential,  ///< single-threaded reference sweep
  kSpawn,       ///< spawn-and-join std::threads every generation (legacy)
  kPool,        ///< persistent shared worker pool, dispatched per generation
};

/// Name of a policy ("sequential" / "spawn" / "pool").
[[nodiscard]] const char* to_string(ExecutionPolicy policy);

/// Inverse of `to_string`; throws ContractViolation on unknown names.
[[nodiscard]] ExecutionPolicy parse_execution_policy(const std::string& name);

/// Aggregate engine configuration — the primary way to construct an
/// `Engine`.  Fields can be set directly or through the chainable `with_*`
/// builder; `validate()` (called by the engine on every (re)configuration)
/// enforces the cross-field rules:
///
///  * `hands >= 1` and `threads >= 1`;
///  * `threads > 1` requires a parallel policy (kSpawn or kPool);
///  * `record_access` requires an effectively sequential sweep
///    (kSequential, or any policy with `threads == 1`).
struct EngineOptions {
  std::size_t hands = 1;  ///< global reads one cell may perform per generation
  unsigned threads = 1;   ///< sweep width (1 = sequential regardless of policy)
  ExecutionPolicy policy = ExecutionPolicy::kSequential;
  bool instrumentation = true;  ///< collect per-step congestion statistics
  bool record_access = false;   ///< record individual (reader, target) edges

  EngineOptions& with_hands(std::size_t value) {
    hands = value;
    return *this;
  }
  EngineOptions& with_threads(unsigned value) {
    threads = value;
    return *this;
  }
  EngineOptions& with_policy(ExecutionPolicy value) {
    policy = value;
    return *this;
  }
  EngineOptions& with_instrumentation(bool value) {
    instrumentation = value;
    return *this;
  }
  EngineOptions& with_record_access(bool value) {
    record_access = value;
    return *this;
  }

  /// True iff the sweep actually runs on more than one thread.
  [[nodiscard]] bool parallel() const {
    return policy != ExecutionPolicy::kSequential && threads > 1;
  }

  /// Throws ContractViolation when the combination is inconsistent.
  void validate() const;
};

/// Builds a *validated* EngineOptions from the shared CLI execution flags
/// (common/cli.hpp carries the policy as its spelled name so common/ stays
/// below gca/; this is the one conversion point).  Throws ContractViolation
/// on inconsistent combinations — e.g. `--record-access` with a parallel
/// policy — so the tools can reject them at parse time (exit 2) instead of
/// asserting mid-run.
[[nodiscard]] EngineOptions options_from_flags(const cli::ExecutionFlags& flags);

}  // namespace gcalib::gca
