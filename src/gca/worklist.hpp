// Exact active-set worklists (DESIGN.md §13).
//
// The sparse sweep's `ActiveRegion` windows are rectangular *supersets* of
// the truly active cells: a row-min sub-generation with offset 2^s touches
// one cell every 2*2^s columns, but the strided window still enumerates a
// whole column block per row.  A `Worklist` names the active cells exactly
// — a strictly ascending list of cell indices — so when occupancy drops
// below a threshold the engine sweeps |active| cells instead of a window.
//
// Ascending enumeration is the determinism contract: chunking a worklist
// by position partitions the same ordered index sequence the sequential
// backend walks, so sequential/spawn/pool produce bit-identical fields at
// any thread count (the same argument ActiveRegion::for_each makes).
// Worklists are typically built once per geometry from a pooled scratch
// bitset (gca/bitplane.hpp) via `assign_from_bits` and cached.
#pragma once

#include <bit>
#include <cstdint>
#include <vector>

#include "common/assert.hpp"

namespace gcalib::gca {

/// A strictly ascending list of active cell indices.
class Worklist {
 public:
  void clear() { indices_.clear(); }

  /// Appends one index; must be strictly greater than the current last
  /// (the ascending invariant is enforced at build time, so the engine
  /// only has to bounds-check `max_index()` once per step).
  void push_back(std::uint32_t index) {
    GCALIB_ASSERT_MSG(indices_.empty() || index > indices_.back(),
                      "worklist indices must be strictly ascending");
    indices_.push_back(index);
  }

  /// Rebuilds from a packed bitset: bit i set => cell i active.  Extraction
  /// walks words in order and peels bits lowest-first (count-trailing-zeros),
  /// which yields the ascending enumeration by construction.
  void assign_from_bits(const std::uint64_t* words, std::size_t word_count) {
    indices_.clear();
    for (std::size_t w = 0; w < word_count; ++w) {
      std::uint64_t bits = words[w];
      while (bits != 0) {
        const auto bit = static_cast<unsigned>(std::countr_zero(bits));
        indices_.push_back(static_cast<std::uint32_t>(w * 64 + bit));
        bits &= bits - 1;
      }
    }
  }

  [[nodiscard]] std::size_t size() const { return indices_.size(); }
  [[nodiscard]] bool empty() const { return indices_.empty(); }
  [[nodiscard]] const std::uint32_t* data() const { return indices_.data(); }
  [[nodiscard]] const std::vector<std::uint32_t>& indices() const {
    return indices_;
  }

  /// Largest (last) index; the list must be non-empty.
  [[nodiscard]] std::uint32_t max_index() const {
    GCALIB_EXPECTS_MSG(!indices_.empty(), "max_index() on an empty worklist");
    return indices_.back();
  }

  friend bool operator==(const Worklist&, const Worklist&) = default;

 private:
  std::vector<std::uint32_t> indices_;
};

}  // namespace gcalib::gca
