#include "gca/kernel_registry.hpp"

#include <algorithm>
#include <cstring>

#include "common/assert.hpp"
#include "gca/bitplane.hpp"
#include "gca/kernels.hpp"

#if defined(__aarch64__)
#include <arm_neon.h>
#if defined(__linux__)
#include <asm/hwcap.h>
#include <sys/auxv.h>
#endif
#endif

#if defined(__x86_64__) || defined(__i386__)
// Intrinsics are emitted per-function via __attribute__((target("avx2")));
// the translation unit itself stays ISA-neutral.
#include <immintrin.h>
#endif

namespace gcalib::gca {

namespace {

/// Eight adjacency bits starting at cell i, lowest bit = cell i.  The
/// BitPlane guard word makes the straddle read of `words[w + 1]` safe for
/// any i < bit_count().
[[maybe_unused]] inline std::uint32_t bits8(const std::uint64_t* words,
                                            std::size_t i) {
  const std::size_t w = i >> 6;
  const unsigned s = static_cast<unsigned>(i & 63);
  std::uint64_t v = words[w] >> s;
  if (s > 56) v |= words[w + 1] << (64u - s);
  return static_cast<std::uint32_t>(v & 0xFFu);
}

/// Bit-cast a u32 to the int the intrinsics want (C++20 modular semantics).
[[maybe_unused]] inline int as_i32(std::uint32_t value) {
  return static_cast<int>(value);
}

const KernelTable& scalar_table() {
  static const KernelTable table = [] {
    KernelTable t;
    t.name = "scalar";
    t.row_min_span_max_offset = 0;  // faithful pre-SIMD routing: strided
    t.column_broadcast = &hirschberg_column_broadcast;
    t.mask_neighbors = &hirschberg_mask_neighbors;
    t.mask_members = &hirschberg_mask_members;
    t.row_min = &hirschberg_row_min;
    t.row_min_span = &hirschberg_row_min_span;
    t.row_min_indexed = &hirschberg_row_min_indexed;
    t.adopt = &hirschberg_adopt;
    t.pointer_jump_indexed = &hirschberg_pointer_jump_indexed;
    // init / fallback_indexed / final_min_indexed stay null: the scalar
    // reference keeps those generations on the mediated per-cell rule,
    // matching the pre-SIMD machine step for step.
    return t;
  }();
  return table;
}

}  // namespace

// --- AVX2 variant -------------------------------------------------------
//
// Eight 32-bit cells per vector.  Every kernel keeps the scalar row-walk
// skeleton (chunk boundaries land mid-row) and emits a vector block only
// when the whole block lies inside the current row and chunk, with scalar
// head/tail cells around it — so a lane never writes outside its chunk and
// chunked execution stays race-free and bit-identical to scalar.

#if defined(__x86_64__) || defined(__i386__)

namespace {

__attribute__((target("avx2"))) void avx2_column_broadcast(
    std::size_t n, const std::uint32_t* d, std::uint32_t* d_out,
    std::uint32_t* p_out, std::size_t k_begin, std::size_t k_end) {
  if (k_begin >= k_end) return;
  // Gather the source column once into pooled scratch; every row of the
  // chunk then becomes a contiguous copy instead of n strided loads.
  ScratchLease<std::uint32_t> scratch(n);
  std::uint32_t* head = scratch.data();
  for (std::size_t c = 0; c < n; ++c) head[c] = d[c * n];
  const __m256i ramp = _mm256_setr_epi32(0, 1, 2, 3, 4, 5, 6, 7);
  const __m256i rampn = _mm256_mullo_epi32(
      ramp, _mm256_set1_epi32(as_i32(static_cast<std::uint32_t>(n))));
  std::size_t i = k_begin;
  std::size_t col = i % n;
  while (i < k_end) {
    const std::size_t row_end = std::min(k_end, i + (n - col));
    std::memcpy(d_out + i, head + col, (row_end - i) * sizeof(std::uint32_t));
    std::size_t c = col;
    for (; i + 8 <= row_end; i += 8, c += 8) {
      const __m256i base =
          _mm256_set1_epi32(as_i32(static_cast<std::uint32_t>(c * n)));
      _mm256_storeu_si256(reinterpret_cast<__m256i*>(p_out + i),
                          _mm256_add_epi32(base, rampn));
    }
    for (; i < row_end; ++i, ++c) p_out[i] = static_cast<std::uint32_t>(c * n);
    col = 0;
  }
}

__attribute__((target("avx2"))) void avx2_mask_neighbors(
    std::size_t n, std::uint32_t inf, const std::uint64_t* a_words,
    const std::uint32_t* d, std::uint32_t* d_out, std::uint32_t* p_out,
    std::size_t k_begin, std::size_t k_end) {
  const std::size_t nn = n * n;
  const __m256i vinf = _mm256_set1_epi32(as_i32(inf));
  const __m256i bitpos = _mm256_setr_epi32(1, 2, 4, 8, 16, 32, 64, 128);
  std::size_t i = k_begin;
  std::size_t row = n > 0 ? i / n : 0;
  std::size_t col = n > 0 ? i % n : 0;
  while (i < k_end) {
    const std::size_t p = nn + row;
    const std::uint32_t global = d[p];  // D_N[row], hoisted per row
    const auto p32 = static_cast<std::uint32_t>(p);
    const __m256i vglobal = _mm256_set1_epi32(as_i32(global));
    const __m256i vp = _mm256_set1_epi32(as_i32(p32));
    const std::size_t row_end = std::min(k_end, i + (n - col));
    for (; i + 8 <= row_end; i += 8) {
      const __m256i self =
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(d + i));
      const __m256i bits = _mm256_set1_epi32(as_i32(bits8(a_words, i)));
      const __m256i adjacent =
          _mm256_cmpeq_epi32(_mm256_and_si256(bits, bitpos), bitpos);
      const __m256i keep = _mm256_andnot_si256(
          _mm256_cmpeq_epi32(self, vglobal), adjacent);
      _mm256_storeu_si256(reinterpret_cast<__m256i*>(d_out + i),
                          _mm256_blendv_epi8(vinf, self, keep));
      _mm256_storeu_si256(reinterpret_cast<__m256i*>(p_out + i), vp);
    }
    for (; i < row_end; ++i) {
      const std::uint32_t self = d[i];
      const bool adjacent = ((a_words[i >> 6] >> (i & 63)) & 1u) != 0;
      d_out[i] = (self != global) & adjacent ? self : inf;
      p_out[i] = p32;
    }
    ++row;
    col = 0;
  }
}

__attribute__((target("avx2"))) void avx2_mask_members(
    std::size_t n, std::uint32_t inf, const std::uint32_t* d,
    std::uint32_t* d_out, std::uint32_t* p_out, std::size_t k_begin,
    std::size_t k_end) {
  const std::size_t nn = n * n;
  const __m256i vinf = _mm256_set1_epi32(as_i32(inf));
  const __m256i ramp = _mm256_setr_epi32(0, 1, 2, 3, 4, 5, 6, 7);
  std::size_t i = k_begin;
  std::size_t row = n > 0 ? i / n : 0;
  std::size_t col = n > 0 ? i % n : 0;
  while (i < k_end) {
    const auto row32 = static_cast<std::uint32_t>(row);
    const __m256i vrow = _mm256_set1_epi32(as_i32(row32));
    const std::size_t row_end = std::min(k_end, i + (n - col));
    for (; i + 8 <= row_end; i += 8, col += 8) {
      const __m256i global =
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(d + nn + col));
      const __m256i self =
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(d + i));
      const __m256i keep = _mm256_andnot_si256(
          _mm256_cmpeq_epi32(self, vrow), _mm256_cmpeq_epi32(global, vrow));
      _mm256_storeu_si256(reinterpret_cast<__m256i*>(d_out + i),
                          _mm256_blendv_epi8(vinf, self, keep));
      const __m256i base = _mm256_set1_epi32(
          as_i32(static_cast<std::uint32_t>(nn + col)));
      _mm256_storeu_si256(reinterpret_cast<__m256i*>(p_out + i),
                          _mm256_add_epi32(base, ramp));
    }
    for (; i < row_end; ++i, ++col) {
      const std::uint32_t global = d[nn + col];
      const std::uint32_t self = d[i];
      d_out[i] = (global == row32) & (self != row32) ? self : inf;
      p_out[i] = static_cast<std::uint32_t>(nn + col);
    }
    ++row;
    col = 0;
  }
}

__attribute__((target("avx2"))) void avx2_row_min_span(
    std::size_t n, std::size_t offset, const std::uint32_t* d,
    const std::uint32_t* p, std::uint32_t* d_out, std::uint32_t* p_out,
    std::size_t k_begin, std::size_t k_end) {
  const std::size_t step = 2 * offset;
  // Lane mask of the active columns within a stride-aligned 8-block.
  const __m256i active_mask =
      offset == 1   ? _mm256_setr_epi32(-1, 0, -1, 0, -1, 0, -1, 0)
      : offset == 2 ? _mm256_setr_epi32(-1, 0, 0, 0, -1, 0, 0, 0)
                    : _mm256_setr_epi32(-1, 0, 0, 0, 0, 0, 0, 0);
  const __m256i lane4 = _mm256_set1_epi32(4);
  const __m256i ramp = _mm256_setr_epi32(0, 1, 2, 3, 4, 5, 6, 7);
  const __m256i voff =
      _mm256_set1_epi32(as_i32(static_cast<std::uint32_t>(offset)));
  std::size_t i = k_begin;
  std::size_t col = n > 0 ? i % n : 0;
  while (i < k_end) {
    const std::size_t row_end = std::min(k_end, i + (n - col));
    // Scalar head until the column is stride-aligned (misaligned columns
    // are inactive by definition: carry d/p through).
    while (i < row_end && col % step != 0) {
      d_out[i] = d[i];
      p_out[i] = p[i];
      ++i;
      ++col;
    }
    // Vector blocks: whole block and every partner inside this row+chunk.
    for (; i + 8 <= row_end && col + 8 <= n; i += 8, col += 8) {
      const __m256i v =
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(d + i));
      const __m256i partner =
          offset == 1   ? _mm256_srli_epi64(v, 32)
          : offset == 2 ? _mm256_shuffle_epi32(v, _MM_SHUFFLE(2, 2, 2, 2))
                        : _mm256_permutevar8x32_epi32(v, lane4);
      const __m256i m = _mm256_min_epu32(v, partner);
      const __m256i vd = _mm256_blendv_epi8(v, m, active_mask);
      const __m256i idx = _mm256_add_epi32(
          _mm256_set1_epi32(as_i32(static_cast<std::uint32_t>(i))), ramp);
      const __m256i carry_p =
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(p + i));
      const __m256i vp = _mm256_blendv_epi8(
          carry_p, _mm256_add_epi32(idx, voff), active_mask);
      _mm256_storeu_si256(reinterpret_cast<__m256i*>(d_out + i), vd);
      _mm256_storeu_si256(reinterpret_cast<__m256i*>(p_out + i), vp);
    }
    for (; i < row_end; ++i, ++col) {
      if (col % step == 0 && col + offset < n) {
        const std::size_t q = i + offset;
        d_out[i] = std::min(d[i], d[q]);
        p_out[i] = static_cast<std::uint32_t>(q);
      } else {
        d_out[i] = d[i];
        p_out[i] = p[i];
      }
    }
    col = 0;
  }
}

__attribute__((target("avx2"))) void avx2_adopt(
    std::size_t n, const std::uint32_t* d, std::uint32_t* d_out,
    std::uint32_t* p_out, std::size_t k_begin, std::size_t k_end) {
  const std::size_t nn = n * n;
  std::size_t i = k_begin;
  std::size_t row = n > 0 ? i / n : 0;
  std::size_t col = n > 0 ? i % n : 0;
  while (i < std::min(k_end, nn)) {
    const std::size_t p0 = row * n;
    const std::uint32_t head = d[p0];
    const auto p32 = static_cast<std::uint32_t>(p0);
    const __m256i vd = _mm256_set1_epi32(as_i32(head));
    const __m256i vp = _mm256_set1_epi32(as_i32(p32));
    const std::size_t row_end = std::min(std::min(k_end, nn), i + (n - col));
    for (; i + 8 <= row_end; i += 8) {
      _mm256_storeu_si256(reinterpret_cast<__m256i*>(d_out + i), vd);
      _mm256_storeu_si256(reinterpret_cast<__m256i*>(p_out + i), vp);
    }
    for (; i < row_end; ++i) {
      d_out[i] = head;
      p_out[i] = p32;
    }
    ++row;
    col = 0;
  }
  for (i = std::max(k_begin, nn); i < k_end; ++i) {
    const std::size_t p0 = (i - nn) * n;
    d_out[i] = d[p0];
    p_out[i] = static_cast<std::uint32_t>(p0);
  }
}

bool avx2_supported() { return __builtin_cpu_supports("avx2") != 0; }

const KernelTable& avx2_table() {
  static const KernelTable table = [] {
    KernelTable t;
    t.name = "avx2";
    t.row_min_span_max_offset = 4;  // offset 4's partner is lane 4 in-vector
    t.column_broadcast = &avx2_column_broadcast;
    t.mask_neighbors = &avx2_mask_neighbors;
    t.mask_members = &avx2_mask_members;
    t.row_min = &hirschberg_row_min;  // strided path has no vector shape
    t.row_min_span = &avx2_row_min_span;
    t.row_min_indexed = &hirschberg_row_min_indexed;  // gather-bound
    t.adopt = &avx2_adopt;
    t.pointer_jump_indexed = &hirschberg_pointer_jump_indexed;
    // O(n)-active / run-once generations: the bulk shapes are scalar (the
    // win over the mediated rule is skipping per-cell dispatch, not SIMD).
    t.init = &hirschberg_init;
    t.fallback_indexed = &hirschberg_fallback_indexed;
    t.final_min_indexed = &hirschberg_final_min_indexed;
    return t;
  }();
  return table;
}

}  // namespace

#endif  // x86

// --- NEON variant -------------------------------------------------------
//
// Four 32-bit cells per vector; same chunk-safe skeleton as AVX2.

#if defined(__aarch64__)

namespace {

void neon_column_broadcast(std::size_t n, const std::uint32_t* d,
                           std::uint32_t* d_out, std::uint32_t* p_out,
                           std::size_t k_begin, std::size_t k_end) {
  if (k_begin >= k_end) return;
  ScratchLease<std::uint32_t> scratch(n);
  std::uint32_t* head = scratch.data();
  for (std::size_t c = 0; c < n; ++c) head[c] = d[c * n];
  const auto n32 = static_cast<std::uint32_t>(n);
  const uint32x4_t rampn = {0, n32, 2 * n32, 3 * n32};
  std::size_t i = k_begin;
  std::size_t col = i % n;
  while (i < k_end) {
    const std::size_t row_end = std::min(k_end, i + (n - col));
    std::memcpy(d_out + i, head + col, (row_end - i) * sizeof(std::uint32_t));
    std::size_t c = col;
    for (; i + 4 <= row_end; i += 4, c += 4) {
      const uint32x4_t base = vdupq_n_u32(static_cast<std::uint32_t>(c * n));
      vst1q_u32(p_out + i, vaddq_u32(base, rampn));
    }
    for (; i < row_end; ++i, ++c) p_out[i] = static_cast<std::uint32_t>(c * n);
    col = 0;
  }
}

void neon_mask_neighbors(std::size_t n, std::uint32_t inf,
                         const std::uint64_t* a_words, const std::uint32_t* d,
                         std::uint32_t* d_out, std::uint32_t* p_out,
                         std::size_t k_begin, std::size_t k_end) {
  const std::size_t nn = n * n;
  const uint32x4_t vinf = vdupq_n_u32(inf);
  const uint32x4_t bitpos = {1u, 2u, 4u, 8u};
  std::size_t i = k_begin;
  std::size_t row = n > 0 ? i / n : 0;
  std::size_t col = n > 0 ? i % n : 0;
  while (i < k_end) {
    const std::size_t p = nn + row;
    const std::uint32_t global = d[p];
    const auto p32 = static_cast<std::uint32_t>(p);
    const uint32x4_t vglobal = vdupq_n_u32(global);
    const uint32x4_t vp = vdupq_n_u32(p32);
    const std::size_t row_end = std::min(k_end, i + (n - col));
    for (; i + 4 <= row_end; i += 4) {
      const uint32x4_t self = vld1q_u32(d + i);
      const uint32x4_t bits = vdupq_n_u32(bits8(a_words, i) & 0xFu);
      const uint32x4_t adjacent = vceqq_u32(vandq_u32(bits, bitpos), bitpos);
      const uint32x4_t keep = vbicq_u32(adjacent, vceqq_u32(self, vglobal));
      vst1q_u32(d_out + i, vbslq_u32(keep, self, vinf));
      vst1q_u32(p_out + i, vp);
    }
    for (; i < row_end; ++i) {
      const std::uint32_t self = d[i];
      const bool adjacent = ((a_words[i >> 6] >> (i & 63)) & 1u) != 0;
      d_out[i] = (self != global) & adjacent ? self : inf;
      p_out[i] = p32;
    }
    ++row;
    col = 0;
  }
}

void neon_mask_members(std::size_t n, std::uint32_t inf,
                       const std::uint32_t* d, std::uint32_t* d_out,
                       std::uint32_t* p_out, std::size_t k_begin,
                       std::size_t k_end) {
  const std::size_t nn = n * n;
  const uint32x4_t vinf = vdupq_n_u32(inf);
  const uint32x4_t ramp = {0u, 1u, 2u, 3u};
  std::size_t i = k_begin;
  std::size_t row = n > 0 ? i / n : 0;
  std::size_t col = n > 0 ? i % n : 0;
  while (i < k_end) {
    const auto row32 = static_cast<std::uint32_t>(row);
    const uint32x4_t vrow = vdupq_n_u32(row32);
    const std::size_t row_end = std::min(k_end, i + (n - col));
    for (; i + 4 <= row_end; i += 4, col += 4) {
      const uint32x4_t global = vld1q_u32(d + nn + col);
      const uint32x4_t self = vld1q_u32(d + i);
      const uint32x4_t keep =
          vbicq_u32(vceqq_u32(global, vrow), vceqq_u32(self, vrow));
      vst1q_u32(d_out + i, vbslq_u32(keep, self, vinf));
      const uint32x4_t base = vdupq_n_u32(static_cast<std::uint32_t>(nn + col));
      vst1q_u32(p_out + i, vaddq_u32(base, ramp));
    }
    for (; i < row_end; ++i, ++col) {
      const std::uint32_t global = d[nn + col];
      const std::uint32_t self = d[i];
      d_out[i] = (global == row32) & (self != row32) ? self : inf;
      p_out[i] = static_cast<std::uint32_t>(nn + col);
    }
    ++row;
    col = 0;
  }
}

void neon_row_min_span(std::size_t n, std::size_t offset,
                       const std::uint32_t* d, const std::uint32_t* p,
                       std::uint32_t* d_out, std::uint32_t* p_out,
                       std::size_t k_begin, std::size_t k_end) {
  const std::size_t step = 2 * offset;
  const uint32x4_t active_mask = offset == 1 ? uint32x4_t{~0u, 0u, ~0u, 0u}
                                             : uint32x4_t{~0u, 0u, 0u, 0u};
  const uint32x4_t ramp = {0u, 1u, 2u, 3u};
  const uint32x4_t voff = vdupq_n_u32(static_cast<std::uint32_t>(offset));
  std::size_t i = k_begin;
  std::size_t col = n > 0 ? i % n : 0;
  while (i < k_end) {
    const std::size_t row_end = std::min(k_end, i + (n - col));
    while (i < row_end && col % step != 0) {
      d_out[i] = d[i];
      p_out[i] = p[i];
      ++i;
      ++col;
    }
    for (; i + 4 <= row_end && col + 4 <= n; i += 4, col += 4) {
      const uint32x4_t v = vld1q_u32(d + i);
      const uint32x4_t partner =
          offset == 1 ? vrev64q_u32(v) : vextq_u32(v, v, 2);
      const uint32x4_t m = vminq_u32(v, partner);
      const uint32x4_t vd = vbslq_u32(active_mask, m, v);
      const uint32x4_t idx =
          vaddq_u32(vdupq_n_u32(static_cast<std::uint32_t>(i)), ramp);
      const uint32x4_t vp =
          vbslq_u32(active_mask, vaddq_u32(idx, voff), vld1q_u32(p + i));
      vst1q_u32(d_out + i, vd);
      vst1q_u32(p_out + i, vp);
    }
    for (; i < row_end; ++i, ++col) {
      if (col % step == 0 && col + offset < n) {
        const std::size_t q = i + offset;
        d_out[i] = std::min(d[i], d[q]);
        p_out[i] = static_cast<std::uint32_t>(q);
      } else {
        d_out[i] = d[i];
        p_out[i] = p[i];
      }
    }
    col = 0;
  }
}

void neon_adopt(std::size_t n, const std::uint32_t* d, std::uint32_t* d_out,
                std::uint32_t* p_out, std::size_t k_begin, std::size_t k_end) {
  const std::size_t nn = n * n;
  std::size_t i = k_begin;
  std::size_t row = n > 0 ? i / n : 0;
  std::size_t col = n > 0 ? i % n : 0;
  while (i < std::min(k_end, nn)) {
    const std::size_t p0 = row * n;
    const auto p32 = static_cast<std::uint32_t>(p0);
    const uint32x4_t vd = vdupq_n_u32(d[p0]);
    const uint32x4_t vp = vdupq_n_u32(p32);
    const std::size_t row_end = std::min(std::min(k_end, nn), i + (n - col));
    for (; i + 4 <= row_end; i += 4) {
      vst1q_u32(d_out + i, vd);
      vst1q_u32(p_out + i, vp);
    }
    for (; i < row_end; ++i) {
      d_out[i] = d[p0];
      p_out[i] = p32;
    }
    ++row;
    col = 0;
  }
  for (i = std::max(k_begin, nn); i < k_end; ++i) {
    const std::size_t p0 = (i - nn) * n;
    d_out[i] = d[p0];
    p_out[i] = static_cast<std::uint32_t>(p0);
  }
}

bool neon_supported() {
#if defined(__linux__) && defined(HWCAP_ASIMD)
  return (getauxval(AT_HWCAP) & HWCAP_ASIMD) != 0;
#else
  return true;  // AdvSIMD is architecturally mandatory on AArch64
#endif
}

const KernelTable& neon_table() {
  static const KernelTable table = [] {
    KernelTable t;
    t.name = "neon";
    t.row_min_span_max_offset = 2;
    t.column_broadcast = &neon_column_broadcast;
    t.mask_neighbors = &neon_mask_neighbors;
    t.mask_members = &neon_mask_members;
    t.row_min = &hirschberg_row_min;
    t.row_min_span = &neon_row_min_span;
    t.row_min_indexed = &hirschberg_row_min_indexed;
    t.adopt = &neon_adopt;
    t.pointer_jump_indexed = &hirschberg_pointer_jump_indexed;
    t.init = &hirschberg_init;
    t.fallback_indexed = &hirschberg_fallback_indexed;
    t.final_min_indexed = &hirschberg_final_min_indexed;
    return t;
  }();
  return table;
}

}  // namespace

#endif  // aarch64

// --- Registry -----------------------------------------------------------

const char* to_string(KernelVariant variant) {
  switch (variant) {
    case KernelVariant::kScalar:
      return "scalar";
    case KernelVariant::kAvx2:
      return "avx2";
    case KernelVariant::kNeon:
      return "neon";
    case KernelVariant::kAuto:
      return "auto";
  }
  GCALIB_ASSERT_MSG(false, "unreachable kernel variant");
  return "?";
}

KernelVariant parse_kernel_variant(const std::string& name) {
  if (name == "scalar") return KernelVariant::kScalar;
  if (name == "avx2") return KernelVariant::kAvx2;
  if (name == "neon") return KernelVariant::kNeon;
  if (name == "auto") return KernelVariant::kAuto;
  GCALIB_EXPECTS_MSG(false, "unknown kernel variant '" + name +
                                "' (expected scalar | avx2 | neon | auto)");
  return KernelVariant::kAuto;
}

bool kernel_variant_supported(KernelVariant variant) {
  switch (variant) {
    case KernelVariant::kScalar:
    case KernelVariant::kAuto:
      return true;
    case KernelVariant::kAvx2:
#if defined(__x86_64__) || defined(__i386__)
      return avx2_supported();
#else
      return false;
#endif
    case KernelVariant::kNeon:
#if defined(__aarch64__)
      return neon_supported();
#else
      return false;
#endif
  }
  return false;
}

KernelVariant resolve_kernel_variant(KernelVariant requested) {
  if (requested != KernelVariant::kAuto) return requested;
  if (kernel_variant_supported(KernelVariant::kAvx2)) return KernelVariant::kAvx2;
  if (kernel_variant_supported(KernelVariant::kNeon)) return KernelVariant::kNeon;
  return KernelVariant::kScalar;
}

std::vector<KernelVariant> supported_kernel_variants() {
  std::vector<KernelVariant> variants{KernelVariant::kScalar};
  if (kernel_variant_supported(KernelVariant::kAvx2)) {
    variants.push_back(KernelVariant::kAvx2);
  }
  if (kernel_variant_supported(KernelVariant::kNeon)) {
    variants.push_back(KernelVariant::kNeon);
  }
  return variants;
}

const KernelTable& kernel_table(KernelVariant variant) {
  const KernelVariant resolved = resolve_kernel_variant(variant);
  GCALIB_EXPECTS_MSG(kernel_variant_supported(resolved),
                     std::string("kernel variant '") + to_string(resolved) +
                         "' is not supported on this host");
  switch (resolved) {
#if defined(__x86_64__) || defined(__i386__)
    case KernelVariant::kAvx2:
      return avx2_table();
#endif
#if defined(__aarch64__)
    case KernelVariant::kNeon:
      return neon_table();
#endif
    default:
      return scalar_table();
  }
}

}  // namespace gcalib::gca
