#include "gca/thread_pool.hpp"

#include <map>

#include "common/assert.hpp"

namespace gcalib::gca {

namespace {

/// Set while the current thread executes a pool lane; `run` from such a
/// thread must not block on workers (they may be the ones waiting).
thread_local bool t_inside_pool_lane = false;

}  // namespace

ThreadPool::ThreadPool(unsigned width) : width_(width), errors_(width) {
  GCALIB_EXPECTS_MSG(width >= 1, "thread pool width must be >= 1");
  workers_.reserve(width - 1);
  for (unsigned lane = 1; lane < width; ++lane) {
    workers_.emplace_back([this, lane] { worker_loop(lane); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  dispatch_cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::worker_loop(unsigned lane) {
  t_inside_pool_lane = true;
  std::uint64_t seen_epoch = 0;
  while (true) {
    const TaskRef* task = nullptr;
    unsigned lanes = 0;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      dispatch_cv_.wait(lock,
                        [&] { return stop_ || epoch_ != seen_epoch; });
      if (stop_) return;
      seen_epoch = epoch_;
      lanes = active_lanes_;
      task = task_;
    }
    if (lane < lanes) {
      try {
        (*task)(lane);
      } catch (...) {
        errors_[lane] = std::current_exception();
      }
    }
    {
      std::lock_guard<std::mutex> lock(mutex_);
      --pending_;
    }
    done_cv_.notify_one();
  }
}

void ThreadPool::run(unsigned lanes, TaskRef task) {
  GCALIB_EXPECTS_MSG(lanes >= 1 && lanes <= width_,
                     "dispatch width exceeds the pool");
  if (lanes == 1 || t_inside_pool_lane) {
    // Inline fallback: a single lane needs no handshake, and a nested
    // dispatch from inside a lane must not wait on its own workers.
    for (unsigned lane = 0; lane < lanes; ++lane) task(lane);
    return;
  }

  std::lock_guard<std::mutex> dispatch_lock(dispatch_mutex_);
  {
    std::lock_guard<std::mutex> lock(mutex_);
    task_ = &task;
    active_lanes_ = lanes;
    pending_ = width_ - 1;  // every worker acknowledges the epoch
    for (std::exception_ptr& error : errors_) error = nullptr;
    ++epoch_;
  }
  dispatch_cv_.notify_all();

  try {
    task(0);
  } catch (...) {
    errors_[0] = std::current_exception();
  }

  {
    std::unique_lock<std::mutex> lock(mutex_);
    done_cv_.wait(lock, [&] { return pending_ == 0; });
    task_ = nullptr;
  }
  for (const std::exception_ptr& error : errors_) {
    if (error) std::rethrow_exception(error);
  }
}

std::shared_ptr<ThreadPool> ThreadPool::shared(unsigned width) {
  GCALIB_EXPECTS_MSG(width >= 1, "thread pool width must be >= 1");
  static std::mutex registry_mutex;
  static std::map<unsigned, std::weak_ptr<ThreadPool>> registry;
  std::lock_guard<std::mutex> lock(registry_mutex);
  std::weak_ptr<ThreadPool>& slot = registry[width];
  std::shared_ptr<ThreadPool> pool = slot.lock();
  if (!pool) {
    pool = std::make_shared<ThreadPool>(width);
    slot = pool;
  }
  return pool;
}

}  // namespace gcalib::gca
