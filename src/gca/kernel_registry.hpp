// Runtime-dispatched kernel registry for the Hirschberg bulk kernels
// (DESIGN.md §13).
//
// Kernel selection is a *runtime* decision, not a compile-time one: the
// same binary picks AVX2 on an x86 host that has it, NEON on aarch64, and
// the portable scalar path everywhere else (CPUID / getauxval feature
// detection, overridable with `--kernels scalar|avx2|neon|auto` on every
// tool).  The scalar table remains the bit-identical golden reference: it
// computes exactly what the instrumented per-cell rule path computes, and
// the registry's bit-identity suite (tests/kernel_registry_test.cpp) pins
// every registered variant x threads {1,2,4,7} x all three execution
// backends against it.
//
// A `KernelTable` is a bundle of function pointers over raw SoA planes —
// the adjacency plane arrives bit-packed (gca/bitplane.hpp), d/p as u32
// arrays.  All kernels share the chunk contract of Engine::step_bulk: they
// receive `[k_begin, k_end)` positions of the enumeration and may be called
// concurrently on disjoint chunks.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace gcalib::gca {

/// Which kernel table to dispatch.  kAuto resolves to the best variant the
/// host supports (AVX2 > NEON > scalar).
enum class KernelVariant : std::uint8_t {
  kScalar,
  kAvx2,
  kNeon,
  kAuto,
};

[[nodiscard]] const char* to_string(KernelVariant variant);

/// Parses "scalar" / "avx2" / "neon" / "auto"; throws ContractViolation on
/// anything else.
[[nodiscard]] KernelVariant parse_kernel_variant(const std::string& name);

/// True when this host can execute the variant (kScalar and kAuto always).
[[nodiscard]] bool kernel_variant_supported(KernelVariant variant);

/// Resolves kAuto to the best supported concrete variant; concrete variants
/// return themselves (caller must have checked support).
[[nodiscard]] KernelVariant resolve_kernel_variant(KernelVariant requested);

/// The concrete variants this host supports, scalar first.
[[nodiscard]] std::vector<KernelVariant> supported_kernel_variants();

/// One variant's kernel bundle.  Chunk arguments `[k_begin, k_end)` index
/// the active enumeration of the step's region or worklist.
struct KernelTable {
  const char* name = "scalar";

  /// Highest row-min offset this table's `row_min_span` handles; offsets
  /// above it (and below the worklist threshold) run the strided `row_min`.
  /// 0 means the variant has no span kernel.
  std::size_t row_min_span_max_offset = 0;

  /// kCopyCToRows / kCopyTToRows: d_out[i] = d[col(i) * n] over a
  /// contiguous region starting at cell 0 (k IS the cell index).
  using ColumnBroadcastFn = void (*)(std::size_t n, const std::uint32_t* d,
                                     std::uint32_t* d_out, std::uint32_t* p_out,
                                     std::size_t k_begin, std::size_t k_end);
  /// kMaskNeighbors over the square (k IS the cell index); adjacency comes
  /// from the packed plane `a_words` (one bit per cell, guard word present).
  using MaskNeighborsFn = void (*)(std::size_t n, std::uint32_t inf,
                                   const std::uint64_t* a_words,
                                   const std::uint32_t* d, std::uint32_t* d_out,
                                   std::uint32_t* p_out, std::size_t k_begin,
                                   std::size_t k_end);
  /// kMaskMembers over the square (k IS the cell index).
  using MaskMembersFn = void (*)(std::size_t n, std::uint32_t inf,
                                 const std::uint32_t* d, std::uint32_t* d_out,
                                 std::uint32_t* p_out, std::size_t k_begin,
                                 std::size_t k_end);
  /// Strided row-min: k enumerates the column-strided window (see
  /// kernels.hpp hirschberg_row_min).
  using RowMinFn = void (*)(std::size_t n, std::size_t offset,
                            const std::uint32_t* d, std::uint32_t* d_out,
                            std::uint32_t* p_out, std::size_t k_begin,
                            std::size_t k_end);
  /// Span row-min: k IS the cell index over the whole square; inactive
  /// cells carry d/p through unchanged (needs the current p plane).
  using RowMinSpanFn = void (*)(std::size_t n, std::size_t offset,
                                const std::uint32_t* d, const std::uint32_t* p,
                                std::uint32_t* d_out, std::uint32_t* p_out,
                                std::size_t k_begin, std::size_t k_end);
  /// Worklist row-min: k indexes `indices`, each entry an active cell i
  /// with partner i + offset.
  using RowMinIndexedFn = void (*)(std::size_t offset,
                                   const std::uint32_t* indices,
                                   const std::uint32_t* d, std::uint32_t* d_out,
                                   std::uint32_t* p_out, std::size_t k_begin,
                                   std::size_t k_end);
  /// kAdopt over the full field (k IS the cell index).
  using AdoptFn = void (*)(std::size_t n, const std::uint32_t* d,
                           std::uint32_t* d_out, std::uint32_t* p_out,
                           std::size_t k_begin, std::size_t k_end);
  /// Worklist pointer-jump: k indexes `indices` (the column-0 cells).
  using PointerJumpIndexedFn = void (*)(std::size_t n, std::size_t field_cells,
                                        const std::uint32_t* indices,
                                        const std::uint32_t* d,
                                        std::uint32_t* d_out,
                                        std::uint32_t* p_out,
                                        std::size_t k_begin, std::size_t k_end);
  /// kInit over the full field (k IS the cell index): pure geometry.
  using InitFn = void (*)(std::size_t n, std::uint32_t* d_out,
                          std::uint32_t* p_out, std::size_t k_begin,
                          std::size_t k_end);
  /// Worklist fallback (kFallback / kFallback2): k indexes `indices` (the
  /// column-0 cells); restore d from D_N where the row minimum is inf.
  using FallbackIndexedFn = void (*)(std::size_t n, std::uint32_t inf,
                                     const std::uint32_t* indices,
                                     const std::uint32_t* d,
                                     std::uint32_t* d_out, std::uint32_t* p_out,
                                     std::size_t k_begin, std::size_t k_end);
  /// Worklist final-min (kFinalMin): data-dependent read d[d[i] * n + 1],
  /// bounds-checked against `field_cells` like the pointer jump.
  using FinalMinIndexedFn = void (*)(std::size_t n, std::size_t field_cells,
                                     const std::uint32_t* indices,
                                     const std::uint32_t* d,
                                     std::uint32_t* d_out, std::uint32_t* p_out,
                                     std::size_t k_begin, std::size_t k_end);

  ColumnBroadcastFn column_broadcast = nullptr;
  MaskNeighborsFn mask_neighbors = nullptr;
  MaskMembersFn mask_members = nullptr;
  RowMinFn row_min = nullptr;
  RowMinSpanFn row_min_span = nullptr;
  RowMinIndexedFn row_min_indexed = nullptr;
  AdoptFn adopt = nullptr;
  PointerJumpIndexedFn pointer_jump_indexed = nullptr;

  // The next three are nullable: the scalar table leaves them null so that
  // generations 0, 4, 8 and 11 keep running the mediated per-cell rule —
  // exactly the pre-SIMD behaviour the golden reference is pinned to.  A
  // null entry makes the dispatcher fall back to the mediated rule.
  InitFn init = nullptr;
  FallbackIndexedFn fallback_indexed = nullptr;
  FinalMinIndexedFn final_min_indexed = nullptr;
};

/// The table for a variant; kAuto is resolved first.  The returned
/// reference is to a process-wide immutable table.  Requesting a variant
/// the host cannot execute throws ContractViolation (EngineOptions
/// validation normally rejects this earlier, at flag-parse time).
[[nodiscard]] const KernelTable& kernel_table(KernelVariant variant);

}  // namespace gcalib::gca
