// Structured tracing and metrics for GCA engine runs.
//
// The paper's whole evaluation is measurement — active cells, reads,
// congestion per generation — but a production-scale simulator also needs
// to see where generations spend *time*: per-step wall-clock, per-lane
// utilisation of the parallel sweeps, and the overhead instrumentation
// itself adds.  This header provides that layer:
//
//  * `MetricsSink` — the pluggable per-step consumer interface.  Engines
//    accept any number of sinks (Engine::add_sink); while at least one is
//    attached every step is timed (steady-clock, nanoseconds) and the
//    resulting `GenerationStats` — logical counters plus timing — is
//    pushed to each sink after the step completes.  With no sink attached
//    the engine performs no clock reads at all, so the hot path stays
//    measurement-free.
//  * `Trace` — the standard sink: records every step (thread-safe, so one
//    Trace can serve a Runner batch whose queries run on pool lanes) and
//    exports
//      - Chrome trace_event JSON (`write_chrome_trace`) that loads in
//        chrome://tracing and Perfetto: one "X" slice per step named by its
//        generation label (gen3:row-min.sub1, ...), plus one slice per
//        parallel-sweep lane on its own tid row;
//      - per-step metrics as CSV or JSON (`write_metrics_csv`,
//        `write_metrics_json`) for plotting timing series next to the
//        logical Table-1 counters;
//      - a run-level `summary()`: wall-clock per generation label, span,
//        and lane utilisation of the parallel sweeps.
//
// Timing fields vary run to run; the logical counters stay bit-identical
// across the sequential/spawn/pool backends (tests/metrics_test.cpp pins
// both properties).
#pragma once

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <mutex>
#include <string>
#include <vector>

#include "gca/instrumentation.hpp"

namespace gcalib::gca {

/// Per-step metrics consumer.  Implementations attached to an engine via
/// `Engine::add_sink` receive every completed step's `GenerationStats`
/// (with timing filled in).  A sink shared across parallel Runner queries
/// must be thread-safe; `Trace` is.
class MetricsSink {
 public:
  virtual ~MetricsSink() = default;
  virtual void on_step(const GenerationStats& stats) = 0;
};

/// Aggregate of all steps sharing one generation label.
struct LabelSummary {
  std::string label;
  std::size_t steps = 0;
  std::uint64_t total_ns = 0;   ///< summed step wall-clock
  std::uint64_t max_ns = 0;     ///< slowest step
  std::size_t active_cells = 0; ///< summed logical active-cell count
  std::size_t total_reads = 0;  ///< summed logical read count
};

/// Run-level rollup of a trace.
struct TraceSummary {
  std::size_t steps = 0;
  std::uint64_t wall_ns = 0;  ///< sum of per-step durations
  std::uint64_t span_ns = 0;  ///< last step end - first step start
  /// Busy fraction of the parallel sweeps: sum of lane busy time over
  /// (step duration x lane count), across steps that ran parallel lanes.
  /// 1.0 when every step swept sequentially (the single lane is never idle).
  double lane_utilisation = 1.0;
  std::size_t parallel_steps = 0;  ///< steps that recorded lane timings
  std::vector<LabelSummary> by_label;  ///< first-appearance order
};

/// The standard metrics sink: records every step for later export.
class Trace : public MetricsSink {
 public:
  /// Thread-safe append (Runner batches push from several pool lanes).
  void on_step(const GenerationStats& stats) override;

  /// Recorded steps, in arrival order.  Not synchronised against concurrent
  /// `on_step` calls — read it after the run, as the exporters do.
  [[nodiscard]] const std::vector<GenerationStats>& steps() const {
    return steps_;
  }
  [[nodiscard]] std::size_t size() const;
  void clear();

  /// Chrome trace_event JSON (catapult "JSON Object Format").  Timestamps
  /// are microseconds relative to the first recorded step.  Step slices go
  /// to tid 0; lane slices of parallel sweeps go to tid (lane + 1).
  void write_chrome_trace(std::ostream& os) const;

  /// One CSV row per step: timing next to the logical Table-1 counters.
  void write_metrics_csv(std::ostream& os) const;

  /// JSON: {"steps": [...], "summary": {...}} with per-lane detail.
  void write_metrics_json(std::ostream& os) const;

  [[nodiscard]] TraceSummary summary() const;

 private:
  mutable std::mutex mutex_;
  std::vector<GenerationStats> steps_;
};

/// Human-readable multi-line rendering of a summary (CLI `--trace-out` /
/// `--metrics-out` print this after the run).
[[nodiscard]] std::string format_summary(const TraceSummary& summary);

/// Writes the Chrome trace JSON to `path`; throws std::runtime_error when
/// the file cannot be written.
void write_trace_file(const Trace& trace, const std::string& path);

/// Writes per-step metrics to `path` — JSON when the name ends in ".json",
/// CSV otherwise; throws std::runtime_error when the file cannot be written.
void write_metrics_file(const Trace& trace, const std::string& path);

// --- service counters (gcad, DESIGN.md §11) -------------------------------

/// Point-in-time copy of `ServiceCounters` — plain integers for exporters,
/// tests and the gcad `stats` op.
struct ServiceCountersSnapshot {
  std::uint64_t accepted = 0;            ///< admitted into the intake queue
  std::uint64_t rejected_queue_full = 0; ///< shed on arrival: no queue space
  std::uint64_t rejected_deadline = 0;   ///< shed on arrival: wait > deadline
  std::uint64_t rejected_draining = 0;   ///< refused while draining
  std::uint64_t shed_overload = 0;       ///< accepted then evicted (replied!)
  std::uint64_t completed_ok = 0;        ///< terminal OK replies
  std::uint64_t expired = 0;             ///< terminal DEADLINE_EXCEEDED
  std::uint64_t failed = 0;              ///< other terminal errors
  std::uint64_t recovered = 0;           ///< OK after >= 1 retry
  std::uint64_t batches = 0;             ///< solve_batch dispatches
  std::uint64_t degraded_batches = 0;    ///< dispatched with degraded settings
  std::uint64_t drained = 0;             ///< queries finished during drain
  std::uint64_t restored = 0;            ///< re-enqueued from the journal
  std::uint64_t journal_writes = 0;      ///< journal rewrites performed
  std::uint64_t overload_transitions = 0;///< escalation-ladder level changes
  std::uint64_t overload_level = 0;      ///< current ladder level (0 = normal)

  /// Terminal replies owed = terminal replies delivered?  The zero-loss
  /// bookkeeping identity the soak test audits.
  [[nodiscard]] std::uint64_t terminal() const {
    return completed_ok + expired + failed + shed_overload;
  }
};

/// Monotonic, thread-safe counters of the gcad service loop: admission,
/// shedding, batch dispatch, drain and restart.  Every transition of the
/// overload escalation ladder bumps `overload_transitions`, so overload
/// behaviour is observable in production, not only in tests.  Relaxed
/// atomics: each counter is an independent statistic, no ordering needed.
struct ServiceCounters {
  std::atomic<std::uint64_t> accepted{0};
  std::atomic<std::uint64_t> rejected_queue_full{0};
  std::atomic<std::uint64_t> rejected_deadline{0};
  std::atomic<std::uint64_t> rejected_draining{0};
  std::atomic<std::uint64_t> shed_overload{0};
  std::atomic<std::uint64_t> completed_ok{0};
  std::atomic<std::uint64_t> expired{0};
  std::atomic<std::uint64_t> failed{0};
  std::atomic<std::uint64_t> recovered{0};
  std::atomic<std::uint64_t> batches{0};
  std::atomic<std::uint64_t> degraded_batches{0};
  std::atomic<std::uint64_t> drained{0};
  std::atomic<std::uint64_t> restored{0};
  std::atomic<std::uint64_t> journal_writes{0};
  std::atomic<std::uint64_t> overload_transitions{0};
  std::atomic<std::uint64_t> overload_level{0};

  [[nodiscard]] ServiceCountersSnapshot snapshot() const;
};

/// One-line JSON object of a snapshot (the gcad `stats` reply payload).
[[nodiscard]] std::string service_counters_json(
    const ServiceCountersSnapshot& counters);

/// Human-readable multi-line rendering (gcad prints this at exit).
[[nodiscard]] std::string format_service_counters(
    const ServiceCountersSnapshot& counters);

}  // namespace gcalib::gca
