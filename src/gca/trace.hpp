// ASCII rendering of GCA fields and access patterns.
//
// Reproduces the visual content of the paper's Figure 3 (access patterns
// for n = 4: which cells are active, where each active cell reads from) in
// plain text, and renders D/P field snapshots for debugging and examples.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "gca/engine.hpp"
#include "gca/field.hpp"

namespace gcalib::gca {

/// Renders the active-cell mask as a grid: '#' active, '.' inactive.
/// One row of the field per line.
[[nodiscard]] std::string render_active_mask(
    const FieldGeometry& geometry, const std::vector<std::uint8_t>& active);

/// Renders each cell's linear index, shading active cells with '[..]'
/// brackets and leaving inactive ones plain — the same information as the
/// paper's Figure 3 cell diagrams.
[[nodiscard]] std::string render_indexed_mask(
    const FieldGeometry& geometry, const std::vector<std::uint8_t>& active);

/// Renders read accesses as "reader(row,col) <- target(row,col)" lines,
/// coalescing runs with a shared target into "rows r..s of col c" style is
/// deliberately avoided: one line per edge keeps the output diffable.
[[nodiscard]] std::string render_access_edges(const FieldGeometry& geometry,
                                              const std::vector<AccessEdge>& edges);

/// Renders a numeric field (e.g. the D matrix) with `inf_value` printed as
/// "inf"; column-aligned.
[[nodiscard]] std::string render_numeric_field(const FieldGeometry& geometry,
                                               const std::vector<std::uint64_t>& values,
                                               std::uint64_t inf_value);

/// Summary line for a GenerationStats record (used by traces and benches).
[[nodiscard]] std::string format_generation_stats(const GenerationStats& stats);

}  // namespace gcalib::gca
