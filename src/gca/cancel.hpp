// Cooperative cancellation and deadlines for engine sweeps.
//
// A hung or pathological query must not wedge the service loop, so every
// sweep backend (sequential / spawn / pool) polls a stop signal at chunk
// boundaries: a few thousand cells of work at most elapse between polls,
// and a tripped signal aborts the step *before* the double-buffer commit —
// the field keeps the previous generation, so the machine stays in a
// consistent state after the unwind.
//
// Two independent signals compose:
//  * a `CancelToken` — an external kill switch the caller flips from any
//    thread (`request_cancel`); the engine only ever reads it;
//  * a deadline — an absolute steady-clock instant configured per run
//    (RunOptions::deadline_ms / Engine::set_deadline_ns).
//
// Both are strictly pay-for-use: an engine with neither installed performs
// two scalar compares per step and nothing per cell, which is what keeps
// the perf_smoke gate honest (DESIGN.md §10).
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <stdexcept>

namespace gcalib::gca {

/// Thrown by a sweep when its CancelToken was tripped.  Deliberately not a
/// ContractViolation: cancellation is a requested outcome, not corruption,
/// so the fault-recovery ladder never tries to roll it back.
class Cancelled : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Thrown by a sweep when the run's deadline expired.  Same taxonomy
/// position as `Cancelled`.
class DeadlineExceeded : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Shared kill switch: the owner flips it, sweeps poll it.  Reads are
/// relaxed atomic loads — safe from every lane of a parallel sweep.
class CancelToken {
 public:
  CancelToken() = default;
  CancelToken(const CancelToken&) = delete;
  CancelToken& operator=(const CancelToken&) = delete;

  /// Requests cooperative cancellation (idempotent; any thread).
  void request_cancel() { cancelled_.store(true, std::memory_order_release); }

  [[nodiscard]] bool cancel_requested() const {
    return cancelled_.load(std::memory_order_relaxed);
  }

  /// Re-arms the token for another run.
  void reset() { cancelled_.store(false, std::memory_order_release); }

 private:
  std::atomic<bool> cancelled_{false};
};

/// Steady-clock "now" in nanoseconds — the time base of engine deadlines.
[[nodiscard]] inline std::int64_t steady_now_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Absolute steady-clock deadline `ms` milliseconds from now (for
/// Engine::set_deadline_ns; 0 never results — a zero budget is clamped to
/// one nanosecond past now, i.e. "already expired at the first poll").
[[nodiscard]] inline std::int64_t steady_deadline_ns(std::int64_t ms) {
  const std::int64_t budget = ms * 1'000'000;
  return steady_now_ns() + (budget > 0 ? budget : 1);
}

}  // namespace gcalib::gca
