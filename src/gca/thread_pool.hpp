// Persistent worker pool for the per-generation cell sweep.
//
// The paper's generation loop executes 12·ceil(lg n) + O(lg² n) engine
// steps per run; the legacy parallel backend paid thread creation and join
// on every one of them.  This pool creates its workers once and dispatches
// each generation through an epoch handshake:
//
//  * the caller publishes a task and bumps an epoch counter under a mutex,
//    then executes lane 0 itself (so a width-t dispatch needs only t - 1
//    worker wakeups and the calling thread is never idle);
//  * each worker wakes on the epoch change, runs its lane if the dispatch
//    is wide enough to include it, and decrements a pending counter;
//  * the caller returns when the counter reaches zero.  Exceptions thrown
//    by lanes are captured per-lane and the first one is rethrown on the
//    calling thread, matching the spawn backend's semantics.
//
// Steady state: zero thread creation, zero allocation (the task is passed
// by reference), two mutex acquisitions plus condition-variable signalling
// per step.
//
// `shared(width)` hands out one process-wide pool per width so every
// engine, the Runner, the GCAL interpreter and the fault-recovery
// re-executions with the same sweep width reuse a single worker set
// instead of multiplying idle threads.  The registry holds weak
// references: when the last user releases a pool its threads shut down.
//
// Re-entrancy: `run` called from inside a pool lane (an engine stepping
// inside a Runner batch job, for example) executes all lanes inline on the
// calling thread instead of dead-locking on its own workers.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <exception>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace gcalib::gca {

/// Non-owning reference to a callable `void(unsigned lane)`.  The referee
/// must outlive the dispatch (the caller blocks until all lanes return, so
/// a stack lambda is fine).  Unlike std::function this never allocates,
/// which keeps the steady-state step allocation-free.
class TaskRef {
 public:
  template <typename F>
  TaskRef(F& callable)  // NOLINT(google-explicit-constructor)
      : context_(&callable), invoke_([](void* context, unsigned lane) {
          (*static_cast<F*>(context))(lane);
        }) {}

  void operator()(unsigned lane) const { invoke_(context_, lane); }

 private:
  void* context_;
  void (*invoke_)(void*, unsigned);
};

class ThreadPool {
 public:
  /// A pool able to run dispatches up to `width` lanes; spawns `width - 1`
  /// worker threads (lane 0 always runs on the dispatching thread).
  explicit ThreadPool(unsigned width);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Maximum dispatch width.
  [[nodiscard]] unsigned width() const { return width_; }

  /// Runs `task(lane)` for every lane in [0, lanes) concurrently and
  /// returns when all lanes finished; `lanes` must be <= `width()`.
  /// Concurrent `run` calls from different threads serialise; a call from
  /// inside a lane of any pool runs all lanes inline.
  void run(unsigned lanes, TaskRef task);

  /// The process-wide shared pool of the given width (created on first
  /// use, destroyed when the last shared_ptr drops).
  [[nodiscard]] static std::shared_ptr<ThreadPool> shared(unsigned width);

 private:
  void worker_loop(unsigned lane);

  const unsigned width_;
  std::mutex mutex_;
  std::condition_variable dispatch_cv_;  ///< workers wait for a new epoch
  std::condition_variable done_cv_;      ///< caller waits for pending == 0
  std::uint64_t epoch_ = 0;
  unsigned active_lanes_ = 0;  ///< lanes of the current dispatch
  unsigned pending_ = 0;       ///< workers still running the current epoch
  const TaskRef* task_ = nullptr;  ///< borrowed for one epoch
  bool stop_ = false;
  std::vector<std::exception_ptr> errors_;  ///< one slot per lane
  std::mutex dispatch_mutex_;  ///< serialises concurrent run() callers
  std::vector<std::thread> workers_;
};

}  // namespace gcalib::gca
