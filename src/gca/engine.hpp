// Generic synchronous Global Cellular Automaton engine.
//
// The GCA model (Hoffmann/Völkmann/Waldschmidt 2000): a collection of cells
// updates synchronously; every cell computes its next state from its own
// state and the states of *dynamically chosen global* neighbours, accessed
// read-only.  This engine is deliberately model-faithful:
//
//  * double-buffered states — all reads during a generation observe the
//    previous generation (no write conflicts can exist, as in the model);
//  * a `Reader` handle mediates neighbour access so the engine can (a)
//    enforce the k-handed restriction (the paper's algorithm is one-handed)
//    and (b) measure congestion, the paper's key cost metric;
//  * rules return `std::optional<State>`: `nullopt` means the cell is
//    inactive this generation (keeps its state and performs no data
//    operation), matching Table 1's "active cells" accounting.
//
// Work-efficient sweeps (DESIGN.md §9): a rule may advertise a per-step
// `ActiveRegion` — a superset of the cells that can activate.  Under the
// sparse sweep mode (the default) the engine iterates, chunks and commits
// only that region; every other cell implicitly carries its state, exactly
// what an inactive rule invocation would have produced.  Under the dense
// mode the region is ignored and the whole field sweeps — states, history
// and the logical (Table-1) statistics are bit-identical either way; only
// the physical `cells_swept` counter and timings differ.
//
// Storage layout: by default cells live in one `std::vector<State>` (AoS).
// A `State` type can opt into a struct-of-arrays layout by specialising
// `SoaLayout<State>`, splitting the state into an immutable part (written
// only by host-side `set_state`) and a double-buffered mutable part.  The
// accessor API is unchanged except that `state(i)`/reads return the state
// *by value* and `mutable_state` is unavailable (use `set_state`).  SoA
// engines additionally support `step_bulk`: an un-mediated generation whose
// kernel writes the next-state arrays directly (gca/kernels.hpp).
//
// Execution is configured through `EngineOptions` (gca/execution.hpp):
// the sweep runs sequentially, on freshly spawned threads (legacy), or on
// a persistent shared worker pool (gca/thread_pool.hpp).  Cells are
// independent within a generation, so the parallel sweeps are
// embarrassingly parallel; instrumentation is merged per-worker in lane
// order, and all backends partition the active index set into the same
// contiguous chunks, which keeps the three backends bit-identical.
// Per-worker scratch (congestion counts, active counters) persists across
// steps, so a steady-state pool step performs no allocation and no thread
// creation.
//
// Robustness extension points (used by src/fault/):
//  * observers — callbacks invoked after every completed step, with the
//    post-step states visible (invariant monitors register here);
//  * snapshot()/restore() — copy-out/copy-in of the full cell state for
//    checkpoint/rollback recovery (SoA engines snapshot the SoA buffers,
//    immutable part included, so a bit flip injected into the immutable
//    register is also rolled back);
//  * a read override — an interposer consulted on every mediated global
//    read, which models faulty reads (dropped or misrouted accesses)
//    without touching the rules;
//  * deadlines/cancellation (gca/cancel.hpp) — a CancelToken and/or an
//    absolute deadline polled at every chunk boundary of every backend; a
//    tripped signal throws before the commit, leaving the field on the
//    previous generation.  Zero cost while neither is installed.
//
// Observability (gca/metrics.hpp): any number of `MetricsSink`s can be
// attached alongside the observers.  While at least one sink is attached,
// every step is wall-clock timed (plus per-lane timing for parallel
// sweeps) and the completed step's stats are pushed to each sink; with no
// sink attached the engine performs no clock reads at all.
#pragma once

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <exception>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

#include "common/assert.hpp"
#include "gca/cancel.hpp"
#include "gca/execution.hpp"
#include "gca/instrumentation.hpp"
#include "gca/metrics.hpp"
#include "gca/thread_pool.hpp"
#include "gca/worklist.hpp"

namespace gcalib::gca {

/// One recorded read access: (reading cell, target cell).
struct AccessEdge {
  std::size_t reader = 0;
  std::size_t target = 0;
  friend bool operator==(const AccessEdge&, const AccessEdge&) = default;
  friend auto operator<=>(const AccessEdge&, const AccessEdge&) = default;
};

/// Customisation point: opt a `State` type into the struct-of-arrays field
/// layout.  The primary template keeps the array-of-structs vector; a
/// specialisation with `kEnabled = true` must provide
///
///   struct Immutable;  // arrays written only by host-side set_state
///   struct Mutable;    // arrays double-buffered across generations
///   static void init(const std::vector<State>&, Immutable&, Mutable&);
///   static void resize(Mutable&, std::size_t);
///   static std::size_t size(const Mutable&);
///   static State load(const Immutable&, const Mutable&, std::size_t);
///   static void store(const Immutable&, Mutable&, std::size_t,
///                     const State&);   // mutable part only; asserts the
///                                      // immutable part was not changed
///   static void store_host(Immutable&, Mutable&, std::size_t,
///                          const State&);  // all registers (host mutation)
///   static void copy(const Mutable& from, Mutable& to, std::size_t);
///
/// Optionally, a layout may provide
///
///   static void copy_span(const Mutable& from, Mutable& to,
///                         std::size_t begin, std::size_t end);
///
/// — a contiguous bulk copy the complement-swap commit uses instead of
/// per-index `copy` calls (detected with `requires`; absent layouts fall
/// back to the per-index loop).
///
/// (core/hirschberg_gca.hpp specialises this for core::Cell: `a` is
/// immutable after initialisation, `d`/`p` are double-buffered.)
template <typename State>
struct SoaLayout {
  static constexpr bool kEnabled = false;
};

namespace detail {

/// Cell storage behind the engine: AoS primary, SoA specialisation.  Both
/// expose the same interface; `ReadResult` is `const State&` for AoS and
/// `State` (by value, composed from the arrays) for SoA.
template <typename State, bool kSoa>
class FieldStore;

template <typename State>
class FieldStore<State, false> {
 public:
  using ReadResult = const State&;
  using SnapshotData = std::vector<State>;

  explicit FieldStore(std::vector<State> initial)
      : cells_(std::move(initial)), next_(cells_.size()) {}

  [[nodiscard]] std::size_t size() const { return cells_.size(); }
  [[nodiscard]] const State& read(std::size_t i) const { return cells_[i]; }
  [[nodiscard]] const std::vector<State>& states() const { return cells_; }
  [[nodiscard]] State& mutable_ref(std::size_t i) { return cells_[i]; }
  void set_state(std::size_t i, const State& value) { cells_[i] = value; }
  void write_next(std::size_t i, State value) { next_[i] = std::move(value); }
  void carry_next(std::size_t i) { next_[i] = cells_[i]; }
  void commit_full() { cells_.swap(next_); }
  void commit_index(std::size_t i) { cells_[i] = next_[i]; }
  /// Complement-swap commit for row-contiguous partial regions: copies the
  /// untouched spans [0, head_end) and [tail_begin, size) current -> next,
  /// then swaps the buffers (see Engine::commit).
  void commit_span_swap(std::size_t head_end, std::size_t tail_begin) {
    std::copy_n(cells_.begin(), head_end, next_.begin());
    std::copy(cells_.begin() + static_cast<std::ptrdiff_t>(tail_begin),
              cells_.end(),
              next_.begin() + static_cast<std::ptrdiff_t>(tail_begin));
    cells_.swap(next_);
  }
  [[nodiscard]] SnapshotData snapshot() const { return cells_; }
  void restore(const SnapshotData& data) { cells_ = data; }
  [[nodiscard]] static std::size_t snapshot_size(const SnapshotData& data) {
    return data.size();
  }

 private:
  std::vector<State> cells_;
  std::vector<State> next_;
};

template <typename State>
class FieldStore<State, true> {
  using Layout = SoaLayout<State>;

 public:
  using ReadResult = State;
  struct SnapshotData {
    typename Layout::Immutable immutable;
    typename Layout::Mutable current;
  };

  explicit FieldStore(std::vector<State> initial) : size_(initial.size()) {
    Layout::init(initial, immutable_, current_);
    Layout::resize(next_, size_);
  }

  [[nodiscard]] std::size_t size() const { return size_; }
  [[nodiscard]] State read(std::size_t i) const {
    return Layout::load(immutable_, current_, i);
  }
  [[nodiscard]] std::vector<State> states() const {
    std::vector<State> out;
    out.reserve(size_);
    for (std::size_t i = 0; i < size_; ++i) out.push_back(read(i));
    return out;
  }
  void set_state(std::size_t i, const State& value) {
    Layout::store_host(immutable_, current_, i, value);
  }
  void write_next(std::size_t i, const State& value) {
    Layout::store(immutable_, next_, i, value);
  }
  void carry_next(std::size_t i) { Layout::copy(current_, next_, i); }
  void commit_full() { std::swap(current_, next_); }
  void commit_index(std::size_t i) { Layout::copy(next_, current_, i); }
  /// Complement-swap commit (see the AoS store); uses the layout's
  /// contiguous `copy_span` when it provides one.
  void commit_span_swap(std::size_t head_end, std::size_t tail_begin) {
    if constexpr (requires(const typename Layout::Mutable& from,
                           typename Layout::Mutable& to) {
                    Layout::copy_span(from, to, std::size_t{}, std::size_t{});
                  }) {
      Layout::copy_span(current_, next_, 0, head_end);
      Layout::copy_span(current_, next_, tail_begin, size_);
    } else {
      for (std::size_t i = 0; i < head_end; ++i) {
        Layout::copy(current_, next_, i);
      }
      for (std::size_t i = tail_begin; i < size_; ++i) {
        Layout::copy(current_, next_, i);
      }
    }
    std::swap(current_, next_);
  }
  [[nodiscard]] SnapshotData snapshot() const {
    return SnapshotData{immutable_, current_};
  }
  void restore(const SnapshotData& data) {
    immutable_ = data.immutable;
    current_ = data.current;
  }
  [[nodiscard]] static std::size_t snapshot_size(const SnapshotData& data) {
    return Layout::size(data.current);
  }

  // Raw array access for bulk kernels (step_bulk).
  [[nodiscard]] const typename Layout::Immutable& immutable() const {
    return immutable_;
  }
  [[nodiscard]] const typename Layout::Mutable& current() const {
    return current_;
  }
  [[nodiscard]] typename Layout::Mutable& next() { return next_; }

 private:
  std::size_t size_;
  typename Layout::Immutable immutable_;
  typename Layout::Mutable current_;
  typename Layout::Mutable next_;
};

}  // namespace detail

template <typename State>
class Engine {
  static constexpr bool kSoa = SoaLayout<State>::kEnabled;
  using Store = detail::FieldStore<State, kSoa>;

 public:
  /// What a mediated read (and `state(i)`) returns: a reference into the
  /// field for AoS states, a by-value composite for SoA states.
  using ReadResult = typename Store::ReadResult;

  /// Primary constructor: engine over the given initial cell states,
  /// configured by a validated `EngineOptions` aggregate.
  Engine(std::vector<State> initial, EngineOptions options)
      : store_(std::move(initial)) {
    GCALIB_EXPECTS_MSG(store_.size() > 0, "engine requires at least one cell");
    set_options(options);
  }

  /// Default-configured engine — shorthand for
  /// `Engine(initial, EngineOptions{})` (one hand, sequential, sparse).
  explicit Engine(std::vector<State> initial)
      : Engine(std::move(initial), EngineOptions{}) {}

  /// Legacy constructor (pre-EngineOptions API).  `hands` is the maximum
  /// number of global reads one cell may perform per generation (1 = the
  /// paper's one-handed GCA).
  [[deprecated("construct with a validated EngineOptions aggregate: "
               "Engine(states, EngineOptions{}.with_hands(h))")]]
  Engine(std::vector<State> initial, std::size_t hands)
      : Engine(std::move(initial), EngineOptions{}.with_hands(hands)) {}

  [[nodiscard]] std::size_t size() const { return store_.size(); }
  [[nodiscard]] std::size_t hands() const { return options_.hands; }
  [[nodiscard]] std::uint64_t generation() const { return generation_; }

  /// The current execution configuration.
  [[nodiscard]] const EngineOptions& options() const { return options_; }

  /// Replaces the execution configuration wholesale (validated).  Safe
  /// between steps; switching to the pool policy (re)acquires the shared
  /// pool of the requested width.
  void set_options(const EngineOptions& options) {
    options.validate();
    options_ = options;
    acquire_pool();
  }

  [[nodiscard]] ReadResult state(std::size_t i) const {
    GCALIB_EXPECTS(i < store_.size());
    return store_.read(i);
  }

  /// All cell states.  A reference to the backing vector for AoS engines;
  /// a freshly composed vector (by value) for SoA engines — either way the
  /// result compares with `==` against another engine's states.
  [[nodiscard]] decltype(auto) states() const { return store_.states(); }

  /// Host-side mutation (initialisation only; not part of the GCA model).
  /// AoS engines only — an SoA state has no single storage location to
  /// reference.  Use `set_state` for layout-agnostic host writes.
  [[nodiscard]] State& mutable_state(std::size_t i)
    requires(!kSoa)
  {
    GCALIB_EXPECTS(i < store_.size());
    return store_.mutable_ref(i);
  }

  /// Host-side write of a full cell state (works for both layouts; on SoA
  /// engines this is the only way to change the immutable registers, which
  /// is exactly what fault injection needs).
  void set_state(std::size_t i, const State& value) {
    GCALIB_EXPECTS(i < store_.size());
    store_.set_state(i, value);
  }

  // --- legacy setters ([[deprecated]]: prefer EngineOptions/set_options) -
  // All of them route through `set_options`, so an inconsistent combination
  // (e.g. record_access on a parallel engine) is rejected at the setter —
  // never mid-run.  They survive as thin wrappers for out-of-tree callers;
  // every in-repo caller constructs a full EngineOptions instead.

  /// Collects congestion statistics per step when enabled (default on;
  /// disable for pure-speed runs).
  [[deprecated("use set_options(EngineOptions{options()}"
               ".with_instrumentation(enabled))")]]
  void set_instrumentation(bool enabled) {
    set_options(EngineOptions{options_}.with_instrumentation(enabled));
  }
  [[nodiscard]] bool instrumentation() const { return options_.instrumentation; }

  /// Records individual (reader, target) access edges of the most recent
  /// step (for access-pattern rendering; implies instrumentation overhead).
  /// Throws ContractViolation when the engine sweeps in parallel.
  [[deprecated("use set_options(EngineOptions{options()}"
               ".with_record_access(enabled))")]]
  void set_record_access(bool enabled) {
    set_options(EngineOptions{options_}.with_record_access(enabled));
  }
  [[nodiscard]] const std::vector<AccessEdge>& last_access() const {
    return last_access_;
  }

  /// Parallel sweep width (1 = sequential).  Keeps the legacy semantics:
  /// widening a sequential engine selects the spawn-per-step backend; an
  /// engine already on the pool policy stays there.
  [[deprecated("use set_options(EngineOptions{options()}.with_threads(n)"
               ".with_policy(...)) — the policy choice is explicit there")]]
  void set_threads(unsigned threads) {
    EngineOptions next = options_;
    next.threads = threads;
    if (threads > 1 && next.policy == ExecutionPolicy::kSequential) {
      next.policy = ExecutionPolicy::kSpawn;
    }
    set_options(next);
  }

  /// Active-cell mask of the most recent step.  Maintained only while
  /// instrumentation is enabled (a full-field mask would defeat the
  /// sparse sweep's work bound); empty otherwise.
  [[nodiscard]] const std::vector<std::uint8_t>& last_active() const {
    return last_active_;
  }

  // --- robustness extension points -------------------------------------

  /// Observer invoked after every completed step; `engine.states()` shows
  /// the post-step generation the observer may validate.
  ///
  /// Re-entrancy semantics: observers (and metrics sinks) may call
  /// `add_observer` / `remove_observer` / `add_sink` / `remove_sink` from
  /// inside a callback.  A removal takes effect immediately — the removed
  /// callback is not invoked again, not even later in the same step's
  /// notification round — while an addition takes effect from the *next*
  /// step.  Calling `step()` from inside a callback is rejected.
  using Observer = std::function<void(const Engine&, const GenerationStats&)>;

  /// Registers an observer; returns an id for `remove_observer`.
  std::size_t add_observer(Observer observer) {
    GCALIB_EXPECTS(observer != nullptr);
    const std::size_t id = next_observer_id_++;
    if (notifying_) {
      pending_observers_.emplace_back(id, std::move(observer));
    } else {
      observers_.emplace_back(id, std::move(observer));
    }
    return id;
  }

  /// Removes a previously registered observer (no-op on unknown ids).
  /// Safe to call from inside an observer callback (including an observer
  /// removing itself); see the `Observer` re-entrancy semantics.
  void remove_observer(std::size_t id) {
    if (notifying_) {
      // The notification loop iterates `observers_` by index: null the
      // entry in place (skipped, compacted afterwards) instead of erasing
      // mid-iteration.
      for (auto& [oid, callback] : observers_) {
        if (oid == id) callback = nullptr;
      }
      std::erase_if(pending_observers_,
                    [id](const auto& entry) { return entry.first == id; });
    } else {
      std::erase_if(observers_,
                    [id](const auto& entry) { return entry.first == id; });
    }
  }

  [[nodiscard]] std::size_t observer_count() const {
    std::size_t count = pending_observers_.size();
    for (const auto& [id, callback] : observers_) {
      if (callback != nullptr) ++count;
    }
    return count;
  }

  // --- observability (gca/metrics.hpp) ----------------------------------

  /// Attaches a metrics sink (non-owning; the sink must stay alive until
  /// removed or the engine is destroyed).  While at least one sink is
  /// attached every step is timed and pushed to all sinks.  Returns an id
  /// for `remove_sink`.  Shares the observers' re-entrancy semantics.
  std::size_t add_sink(MetricsSink* sink) {
    GCALIB_EXPECTS(sink != nullptr);
    const std::size_t id = next_observer_id_++;
    if (notifying_) {
      pending_sinks_.emplace_back(id, sink);
    } else {
      sinks_.emplace_back(id, sink);
    }
    return id;
  }

  /// Detaches a previously attached sink (no-op on unknown ids); safe from
  /// inside a callback.
  void remove_sink(std::size_t id) {
    if (notifying_) {
      for (auto& [sid, sink] : sinks_) {
        if (sid == id) sink = nullptr;
      }
      std::erase_if(pending_sinks_,
                    [id](const auto& entry) { return entry.first == id; });
    } else {
      std::erase_if(sinks_,
                    [id](const auto& entry) { return entry.first == id; });
    }
  }

  [[nodiscard]] std::size_t sink_count() const {
    std::size_t count = pending_sinks_.size();
    for (const auto& [id, sink] : sinks_) {
      if (sink != nullptr) ++count;
    }
    return count;
  }

  /// Full copy of the mutable machine state, sufficient to re-execute from
  /// this point (instrumentation history is append-only and not part of it).
  /// For SoA engines `cells` holds the SoA buffers — immutable registers
  /// included, so restore() also rolls back host-injected corruption.
  struct Snapshot {
    typename Store::SnapshotData cells;
    std::uint64_t generation = 0;
  };

  [[nodiscard]] Snapshot snapshot() const {
    return Snapshot{store_.snapshot(), generation_};
  }

  /// Rolls the engine back to a snapshot taken on this engine (same field).
  void restore(const Snapshot& snap) {
    GCALIB_EXPECTS_MSG(Store::snapshot_size(snap.cells) == store_.size(),
                       "snapshot does not match this engine's field");
    store_.restore(snap.cells);
    generation_ = snap.generation;
  }

  /// Fault-injection interposer: consulted on every mediated read.  Return
  /// nullopt to let the read proceed normally; otherwise the returned state
  /// is observed instead of the addressed neighbour.  Must be thread-safe
  /// when a parallel sweep is enabled (treat it as read-only during a
  /// step).
  using ReadOverride = std::function<std::optional<State>(std::size_t reader,
                                                          std::size_t target)>;

  void set_read_override(ReadOverride override) {
    read_override_ = std::move(override);
  }
  [[nodiscard]] bool has_read_override() const {
    return static_cast<bool>(read_override_);
  }

  // --- deadlines and cooperative cancellation (gca/cancel.hpp) ----------
  //
  // Both signals are polled at step entry and at every chunk boundary of
  // every sweep backend; a tripped signal throws `Cancelled` /
  // `DeadlineExceeded` *before* the commit, so the field keeps the previous
  // generation.  With neither installed the cost is two scalar compares per
  // step and nothing per cell.

  /// Installs an external kill switch (non-owning; nullptr detaches).  The
  /// token is only ever read during a step — trip it from any thread.
  void set_cancel_token(const CancelToken* token) { cancel_ = token; }

  /// Absolute steady-clock deadline in nanoseconds (steady_deadline_ns);
  /// 0 disables deadline enforcement.
  void set_deadline_ns(std::int64_t deadline_ns) { deadline_ns_ = deadline_ns; }

  [[nodiscard]] bool has_stop_signal() const {
    return cancel_ != nullptr || deadline_ns_ != 0;
  }

  /// Mediates global reads for one cell during one generation.
  class Reader {
   public:
    /// Returns the state of `target` as of the *previous* generation.
    /// For AoS engines the reference stays valid until this Reader's next
    /// read (an override lands in a slot inside the Reader); SoA engines
    /// return by value.
    ReadResult operator()(std::size_t target) {
      GCALIB_EXPECTS(target < engine_.store_.size());
      GCALIB_EXPECTS_MSG(reads_ < engine_.options_.hands,
                         "cell exceeded its k-handed read budget");
      ++reads_;
      if (counts_ != nullptr) ++(*counts_)[target];
      if (edges_ != nullptr) edges_->push_back(AccessEdge{self_, target});
      if (engine_.read_override_) {
        if (std::optional<State> faulty =
                engine_.read_override_(self_, target)) {
          if constexpr (std::is_reference_v<ReadResult>) {
            override_slot_ = *std::move(faulty);
            return *override_slot_;
          } else {
            return *std::move(faulty);
          }
        }
      }
      return engine_.store_.read(target);
    }

    /// Reads performed so far by this cell in this generation.
    [[nodiscard]] std::size_t reads() const { return reads_; }

   private:
    friend class Engine;
    Reader(const Engine& engine, std::size_t self,
           std::vector<std::size_t>* counts, std::vector<AccessEdge>* edges)
        : engine_(engine), self_(self), counts_(counts), edges_(edges) {}

    const Engine& engine_;
    std::size_t self_;
    std::size_t reads_ = 0;
    std::vector<std::size_t>* counts_;
    std::vector<AccessEdge>* edges_;
    std::optional<State> override_slot_;  ///< backs overridden AoS reads
  };

  /// Executes one synchronous generation over the whole field.
  /// `rule(index, reader) -> std::optional<State>`; `nullopt` keeps the old
  /// state and marks the cell inactive.
  template <typename Rule>
  GenerationStats step(Rule&& rule, std::string label = {}) {
    return step(std::forward<Rule>(rule), ActiveRegion::full(store_.size()),
                std::move(label));
  }

  /// Executes one synchronous generation whose rule promises that every
  /// cell outside `region` is inactive (returns nullopt without reading).
  /// Under the sparse sweep mode only the region is iterated; under the
  /// dense mode the whole field sweeps.  Both produce identical states and
  /// logical statistics — the region is validated, the promise is not
  /// (run a dense sweep to check a suspect region, see DESIGN.md §9).
  template <typename Rule>
  GenerationStats step(Rule&& rule, const ActiveRegion& region,
                       std::string label = {}) {
    validate_region(region);
    const bool sparse = options_.sweep == SweepMode::kSparse;
    return run_step(rule,
                    sparse ? region : ActiveRegion::full(store_.size()),
                    std::move(label));
  }

  // --- bulk (kernel) steps — SoA engines only ---------------------------

  /// Raw SoA arrays for bulk kernels: the immutable registers, the current
  /// generation (read-only during a step) and the next-generation buffers
  /// (`SoaLayout<State>::Immutable` / `::Mutable`).
  [[nodiscard]] const auto& soa_immutable() const
    requires kSoa
  {
    return store_.immutable();
  }
  [[nodiscard]] const auto& soa_current() const
    requires kSoa
  {
    return store_.current();
  }
  [[nodiscard]] auto& soa_next()
    requires kSoa
  {
    return store_.next();
  }

  /// Executes one generation as a bulk kernel: `bulk(k_begin, k_end)` must
  /// write the next state of every region cell at enumeration positions
  /// [k_begin, k_end) straight into `soa_next()`, reading `soa_current()` /
  /// `soa_immutable()`.  The kernel bypasses read mediation entirely, so
  /// bulk steps are rejected while instrumentation, access recording or a
  /// read override is active — the caller falls back to the equivalent
  /// mediated rule in those configurations.  Every region cell counts as
  /// active (bulk kernels implement generations whose region is exactly
  /// the active set).
  template <typename Bulk>
  GenerationStats step_bulk(const ActiveRegion& region, Bulk&& bulk,
                            std::string label = {})
    requires kSoa
  {
    validate_region(region);
    const std::size_t work = region.count();
    return bulk_step_impl(
        work, work, std::forward<Bulk>(bulk), std::move(label),
        [this, &region, work] { commit(region, work); });
  }

  /// Span form of a bulk step: physically sweeps every cell of `region`
  /// (the kernel must *carry* d/p through at inactive cells) but reports
  /// `logical_active` as the generation's active-cell count, keeping the
  /// Table-1 accounting identical to the strided window it replaces.  Used
  /// by the SIMD row-min span kernels, where a contiguous sweep plus the
  /// complement-swap commit beats a strided enumeration.
  template <typename Bulk>
  GenerationStats step_bulk(const ActiveRegion& region,
                            std::size_t logical_active, Bulk&& bulk,
                            std::string label = {})
    requires kSoa
  {
    validate_region(region);
    const std::size_t work = region.count();
    return bulk_step_impl(
        work, logical_active, std::forward<Bulk>(bulk), std::move(label),
        [this, &region, work] { commit(region, work); });
  }

  /// Worklist form of a bulk step: the kernel receives positions
  /// [k_begin, k_end) into the ascending index list (gca/worklist.hpp) and
  /// must write exactly those cells; the commit publishes exactly those
  /// indices.  The list's ascending invariant is enforced at build time,
  /// so only the largest index needs a bounds check here.  Chunking the
  /// position range partitions the same ordered sequence on every backend
  /// — bit-identical at any thread count.
  template <typename Bulk>
  GenerationStats step_bulk(const Worklist& list, Bulk&& bulk,
                            std::string label = {})
    requires kSoa
  {
    if (!list.empty()) {
      GCALIB_EXPECTS_MSG(list.max_index() < store_.size(),
                         "worklist exceeds the field");
    }
    const std::size_t work = list.size();
    return bulk_step_impl(work, work, std::forward<Bulk>(bulk),
                          std::move(label), [this, &list] {
                            for (const std::uint32_t i : list.indices()) {
                              store_.commit_index(i);
                            }
                          });
  }

  [[nodiscard]] const std::vector<GenerationStats>& history() const {
    return history_;
  }
  void clear_history() { history_.clear(); }

 private:
  /// Polls the stop signals; throws before any state is committed.  Called
  /// at step entry and between chunks; thread-safe (token reads are atomic,
  /// the deadline is immutable during a step).
  void poll_stop() const {
    if (cancel_ != nullptr && cancel_->cancel_requested()) {
      throw Cancelled("sweep cancelled at generation " +
                      std::to_string(generation_));
    }
    if (deadline_ns_ != 0 &&
        steady_now_ns() >= deadline_ns_) {
      throw DeadlineExceeded("deadline expired at generation " +
                             std::to_string(generation_));
    }
  }

  /// Enumeration-positions per poll on the sequential backend (parallel
  /// backends poll per lane chunk, which is already of this order).
  static constexpr std::size_t kStopPollStride = 4096;

  [[nodiscard]] static std::uint64_t now_ns() {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
  }

  /// Rejects malformed regions: overlap between rows (which would visit an
  /// index twice) and out-of-field indices.  Empty regions are fine — the
  /// step still runs (and records a generation) with zero work.
  void validate_region(const ActiveRegion& region) const {
    GCALIB_EXPECTS_MSG(region.col_step >= 1,
                       "active region: col_step must be >= 1");
    const std::size_t work = region.count();
    if (work == 0) return;
    GCALIB_EXPECTS_MSG(
        region.row_end - region.row_begin <= 1 ||
            region.col_end <= region.row_stride,
        "active region: column range exceeds the row stride (rows overlap)");
    const std::size_t last =
        (region.row_end - 1) * region.row_stride + region.col_begin +
        (region.cols_per_row() - 1) * region.col_step;
    GCALIB_EXPECTS_MSG(last < store_.size(),
                       "active region exceeds the field");
  }

  /// Shared body of the three step_bulk forms: runs `bulk` over
  /// [0, work) positions (chunked across lanes / stop polls), then invokes
  /// `commit_fn` to publish and advances the generation.  `logical_active`
  /// is what the stats report as active (== work except for span sweeps).
  template <typename Bulk, typename CommitFn>
  GenerationStats bulk_step_impl(std::size_t work, std::size_t logical_active,
                                 Bulk&& bulk, std::string label,
                                 CommitFn&& commit_fn)
    requires kSoa
  {
    GCALIB_EXPECTS_MSG(!notifying_,
                       "Engine::step_bulk must not be called from an observer "
                       "or metrics-sink callback");
    GCALIB_EXPECTS_MSG(
        !options_.instrumentation && !options_.record_access &&
            !read_override_,
        "bulk steps bypass read mediation; disable instrumentation, access "
        "recording and read overrides or use the mediated rule");
    if (has_stop_signal()) poll_stop();
    GenerationStats stats;
    stats.generation = generation_;
    stats.label = std::move(label);
    stats.cell_count = store_.size();
    stats.cells_swept = work;
    stats.active_cells = logical_active;
    last_active_.clear();
    last_access_.clear();

    const bool timed = !sinks_.empty();
    const std::uint64_t sweep_start = timed ? now_ns() : 0;

    const unsigned t = options_.threads;
    if (!options_.parallel() || work < 2 * t) {
      if (has_stop_signal()) {
        for (std::size_t k = 0; k < work; k += kStopPollStride) {
          poll_stop();
          bulk(k, std::min(work, k + kStopPollStride));
        }
      } else {
        bulk(std::size_t{0}, work);
      }
    } else {
      run_chunks(work, timed,
                 [&bulk](unsigned, std::size_t begin, std::size_t end) {
                   bulk(begin, end);
                 });
      if (timed) {
        stats.lane_times.assign(scratch_lanes_.begin(),
                                scratch_lanes_.begin() + t);
      }
    }

    if (timed) {
      stats.start_ns = sweep_start;
      stats.duration_ns = now_ns() - sweep_start;
    }

    commit_fn();
    ++generation_;
    notify(stats);
    return stats;
  }

  template <typename Rule>
  GenerationStats run_step(Rule& rule, const ActiveRegion& region,
                           std::string label) {
    GCALIB_EXPECTS_MSG(!notifying_,
                       "Engine::step must not be called from an observer or "
                       "metrics-sink callback");
    if (has_stop_signal()) poll_stop();
    GenerationStats stats;
    stats.generation = generation_;
    stats.label = std::move(label);
    stats.cell_count = store_.size();
    const std::size_t work = region.count();
    stats.cells_swept = work;

    if (options_.instrumentation) {
      last_active_.assign(store_.size(), 0);
    } else {
      last_active_.clear();
    }
    last_access_.clear();

    // Timing runs only while a sink is attached, so the un-instrumented
    // hot path performs no clock reads.
    const bool timed = !sinks_.empty();
    const std::uint64_t sweep_start = timed ? now_ns() : 0;

    const unsigned t = options_.threads;
    if (!options_.parallel() || work < 2 * t) {
      if (options_.instrumentation) scratch_count(0).assign(store_.size(), 0);
      std::vector<std::size_t>* counts =
          options_.instrumentation ? &scratch_count(0) : nullptr;
      std::vector<AccessEdge>* edges =
          options_.record_access ? &last_access_ : nullptr;
      if (has_stop_signal()) {
        // Chunked sweep with a stop poll between chunks; counts and edges
        // accumulate across chunks exactly as in the single call.
        for (std::size_t k = 0; k < work; k += kStopPollStride) {
          poll_stop();
          sweep_region(rule, region, k, std::min(work, k + kStopPollStride),
                       counts, edges, stats.active_cells);
        }
      } else {
        sweep_region(rule, region, 0, work, counts, edges,
                     stats.active_cells);
      }
      if (options_.instrumentation) fold_counts(scratch_count(0), stats);
    } else {
      // set_options/setters validate every configuration path, so a
      // parallel sweep with access recording cannot be reached.
      GCALIB_ASSERT_MSG(!options_.record_access,
                        "access-edge recording requires a sequential sweep");
      sweep_parallel(rule, region, work, stats, timed);
    }

    if (timed) {
      stats.start_ns = sweep_start;
      stats.duration_ns = now_ns() - sweep_start;
    }

    commit(region, work);
    ++generation_;
    if (options_.instrumentation) history_.push_back(stats);
    notify(stats);
    return stats;
  }

  /// Publishes the next-state buffer: a whole-field region swaps the
  /// double buffers (the classic synchronous commit); a partial region
  /// copies back only its own cells — everything else keeps its state
  /// without ever being touched.
  ///
  /// Row-contiguous partial regions (full-width rows, e.g. the Hirschberg
  /// square inside the (n+1) x n field) take a third path when it is
  /// cheaper: copy the *complement* spans current -> next and swap — the
  /// commit is then O(inactive cells) of contiguous copies instead of
  /// O(active cells) per-index copies.  Valid for both mediated and bulk
  /// steps: every region cell of the next buffer was written by the sweep
  /// (inactive rule invocations carry, bulk kernels write every position),
  /// so after the copy the next buffer is complete and swapping publishes
  /// exactly the same field as the per-index path.
  void commit(const ActiveRegion& region, std::size_t work) {
    if (work == store_.size()) {
      store_.commit_full();
      return;
    }
    if (region.col_begin == 0 && region.col_step == 1 &&
        region.col_end == region.row_stride && work > 0) {
      const std::size_t head_end = region.row_begin * region.row_stride;
      const std::size_t tail_begin = region.row_end * region.row_stride;
      if (head_end + (store_.size() - tail_begin) < work) {
        store_.commit_span_swap(head_end, tail_begin);
        return;
      }
    }
    region.for_each(0, work,
                    [this](std::size_t i) { store_.commit_index(i); });
  }

  /// Invokes observers, then sinks, with deferred add/remove semantics
  /// (see `Observer`): callbacks registered during the round start next
  /// step, removed ones are skipped immediately and compacted afterwards.
  void notify(const GenerationStats& stats) {
    if (observers_.empty() && sinks_.empty() && pending_observers_.empty() &&
        pending_sinks_.empty()) {
      return;
    }
    notifying_ = true;
    try {
      for (std::size_t i = 0; i < observers_.size(); ++i) {
        if (observers_[i].second) observers_[i].second(*this, stats);
      }
      for (std::size_t i = 0; i < sinks_.size(); ++i) {
        if (sinks_[i].second != nullptr) sinks_[i].second->on_step(stats);
      }
    } catch (...) {
      finish_notify();
      throw;
    }
    finish_notify();
  }

  void finish_notify() {
    notifying_ = false;
    std::erase_if(observers_,
                  [](const auto& entry) { return entry.second == nullptr; });
    for (auto& entry : pending_observers_) {
      observers_.push_back(std::move(entry));
    }
    pending_observers_.clear();
    std::erase_if(sinks_,
                  [](const auto& entry) { return entry.second == nullptr; });
    sinks_.insert(sinks_.end(), pending_sinks_.begin(), pending_sinks_.end());
    pending_sinks_.clear();
  }

  void acquire_pool() {
    if (options_.policy == ExecutionPolicy::kPool && options_.threads > 1) {
      // The sweep is always partitioned into `threads` chunks (that fixes
      // the results and statistics), but more OS threads than cores only
      // adds context switching — so the pool is clamped to the hardware
      // and lanes pull chunks off a cursor.
      const unsigned hardware =
          std::max(1u, std::thread::hardware_concurrency());
      const unsigned width = std::min(options_.threads, hardware);
      if (!pool_ || pool_->width() != width) pool_ = ThreadPool::shared(width);
    } else {
      pool_.reset();
    }
  }

  /// Per-worker congestion-count scratch; grown on demand, zeroed in place
  /// every step (capacity persists, so the steady state never allocates).
  std::vector<std::size_t>& scratch_count(unsigned worker) {
    if (scratch_counts_.size() <= worker) scratch_counts_.resize(worker + 1);
    return scratch_counts_[worker];
  }

  template <typename Rule>
  void sweep_region(Rule& rule, const ActiveRegion& region,
                    std::size_t k_begin, std::size_t k_end,
                    std::vector<std::size_t>* counts,
                    std::vector<AccessEdge>* edges, std::size_t& active) {
    const bool mask = !last_active_.empty();
    region.for_each(k_begin, k_end, [&](std::size_t i) {
      Reader reader(*this, i, counts, edges);
      std::optional<State> result = rule(i, reader);
      if (result.has_value()) {
        store_.write_next(i, *std::move(result));
        if (mask) last_active_[i] = 1;
        ++active;
      } else {
        store_.carry_next(i);
      }
    });
  }

  /// Partitions [0, work) into `threads` contiguous chunks and runs
  /// `chunk_fn(w, begin, end)` for each — every chunk exactly once — on
  /// the configured parallel backend, recording per-lane timing into
  /// `scratch_lanes_` when `timed`.
  template <typename ChunkFn>
  void run_chunks(std::size_t work, bool timed, ChunkFn&& chunk_fn) {
    const unsigned t = options_.threads;
    if (timed) scratch_lanes_.assign(t, LaneTiming{});
    const std::size_t chunk = (work + t - 1) / t;
    auto lane = [this, &chunk_fn, chunk, work, timed](unsigned w) {
      const std::size_t begin = std::min(work, std::size_t{w} * chunk);
      const std::size_t end = std::min(work, begin + chunk);
      const std::uint64_t lane_start = timed ? now_ns() : 0;
      // Chunk-boundary stop poll: both parallel backends capture lane
      // exceptions and rethrow the first on the dispatching thread, so a
      // tripped signal unwinds the step before the commit.
      if (has_stop_signal()) poll_stop();
      chunk_fn(w, begin, end);
      if (timed) {
        scratch_lanes_[w] =
            LaneTiming{w, lane_start, now_ns() - lane_start, end - begin};
      }
    };

    if (options_.policy == ExecutionPolicy::kPool) {
      GCALIB_ASSERT(pool_ != nullptr);
      // Lanes pull chunks off a shared cursor: each of the t chunks runs
      // exactly once with its own scratch, so the result is bit-identical
      // to the spawn backend even when the pool has fewer lanes.
      std::atomic<unsigned> cursor{0};
      auto pool_lane = [&lane, &cursor, t](unsigned) {
        for (unsigned w = cursor.fetch_add(1, std::memory_order_relaxed);
             w < t; w = cursor.fetch_add(1, std::memory_order_relaxed)) {
          lane(w);
        }
      };
      pool_->run(std::min(t, pool_->width()), pool_lane);
    } else {
      // Legacy spawn-per-step backend: fresh threads every generation.
      scratch_errors_.assign(t, nullptr);
      std::vector<std::thread> workers;
      workers.reserve(t);
      for (unsigned w = 0; w < t; ++w) {
        workers.emplace_back([this, &lane, w]() {
          try {
            lane(w);
          } catch (...) {
            scratch_errors_[w] = std::current_exception();
          }
        });
      }
      for (auto& worker : workers) worker.join();
      for (const std::exception_ptr& error : scratch_errors_) {
        if (error) std::rethrow_exception(error);
      }
    }
  }

  template <typename Rule>
  void sweep_parallel(Rule& rule, const ActiveRegion& region,
                      std::size_t work, GenerationStats& stats, bool timed) {
    const unsigned t = options_.threads;
    const bool counting = options_.instrumentation;
    scratch_actives_.assign(t, 0);
    if (counting) {
      for (unsigned w = 0; w < t; ++w) {
        scratch_count(w).assign(store_.size(), 0);
      }
    }
    run_chunks(work, timed,
               [this, &rule, &region, counting](unsigned w, std::size_t begin,
                                                std::size_t end) {
                 sweep_region(rule, region, begin, end,
                              counting ? &scratch_counts_[w] : nullptr,
                              nullptr, scratch_actives_[w]);
               });

    if (timed) {
      stats.lane_times.assign(scratch_lanes_.begin(),
                              scratch_lanes_.begin() + t);
    }
    for (std::size_t a : scratch_actives_) stats.active_cells += a;
    if (counting) {
      std::vector<std::size_t>& merged = scratch_counts_[0];
      for (unsigned w = 1; w < t; ++w) {
        const std::vector<std::size_t>& part = scratch_counts_[w];
        for (std::size_t i = 0; i < merged.size(); ++i) merged[i] += part[i];
      }
      fold_counts(merged, stats);
    }
  }

  void fold_counts(const std::vector<std::size_t>& counts,
                   GenerationStats& stats) const {
    for (std::size_t c : counts) {
      if (c == 0) continue;
      ++stats.cells_read;
      stats.total_reads += c;
      stats.max_congestion = std::max(stats.max_congestion, c);
      ++stats.congestion_classes[c];
    }
  }

  Store store_;
  EngineOptions options_;
  std::uint64_t generation_ = 0;
  std::vector<AccessEdge> last_access_;
  std::vector<std::uint8_t> last_active_;
  std::vector<GenerationStats> history_;
  std::vector<std::pair<std::size_t, Observer>> observers_;
  std::vector<std::pair<std::size_t, MetricsSink*>> sinks_;
  // Deferred registrations made during a notification round (observers_
  // and sinks_ are iterated by index then; see `Observer` semantics).
  std::vector<std::pair<std::size_t, Observer>> pending_observers_;
  std::vector<std::pair<std::size_t, MetricsSink*>> pending_sinks_;
  bool notifying_ = false;
  std::size_t next_observer_id_ = 0;
  ReadOverride read_override_;
  const CancelToken* cancel_ = nullptr;  ///< external kill switch (non-owning)
  std::int64_t deadline_ns_ = 0;         ///< steady-clock deadline; 0 = none
  std::shared_ptr<ThreadPool> pool_;
  // Persistent parallel-sweep scratch (reused across steps).
  std::vector<std::vector<std::size_t>> scratch_counts_;
  std::vector<std::size_t> scratch_actives_;
  std::vector<std::exception_ptr> scratch_errors_;
  std::vector<LaneTiming> scratch_lanes_;
};

}  // namespace gcalib::gca
