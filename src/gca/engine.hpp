// Generic synchronous Global Cellular Automaton engine.
//
// The GCA model (Hoffmann/Völkmann/Waldschmidt 2000): a collection of cells
// updates synchronously; every cell computes its next state from its own
// state and the states of *dynamically chosen global* neighbours, accessed
// read-only.  This engine is deliberately model-faithful:
//
//  * double-buffered states — all reads during a generation observe the
//    previous generation (no write conflicts can exist, as in the model);
//  * a `Reader` handle mediates neighbour access so the engine can (a)
//    enforce the k-handed restriction (the paper's algorithm is one-handed)
//    and (b) measure congestion, the paper's key cost metric;
//  * rules return `std::optional<State>`: `nullopt` means the cell is
//    inactive this generation (keeps its state and performs no data
//    operation), matching Table 1's "active cells" accounting.
//
// Execution is configured through `EngineOptions` (gca/execution.hpp):
// the sweep runs sequentially, on freshly spawned threads (legacy), or on
// a persistent shared worker pool (gca/thread_pool.hpp).  Cells are
// independent within a generation, so the parallel sweeps are
// embarrassingly parallel; instrumentation is merged per-worker in lane
// order, which keeps all three backends bit-identical.  Per-worker scratch
// (congestion counts, active counters) persists across steps, so a
// steady-state pool step performs no allocation and no thread creation.
//
// Robustness extension points (used by src/fault/):
//  * observers — callbacks invoked after every completed step, with the
//    post-step states visible (invariant monitors register here);
//  * snapshot()/restore() — copy-out/copy-in of the full cell state for
//    checkpoint/rollback recovery;
//  * a read override — an interposer consulted on every mediated global
//    read, which models faulty reads (dropped or misrouted accesses)
//    without touching the rules.
//
// Observability (gca/metrics.hpp): any number of `MetricsSink`s can be
// attached alongside the observers.  While at least one sink is attached,
// every step is wall-clock timed (plus per-lane timing for parallel
// sweeps) and the completed step's stats are pushed to each sink; with no
// sink attached the engine performs no clock reads at all.
#pragma once

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <exception>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/assert.hpp"
#include "gca/execution.hpp"
#include "gca/instrumentation.hpp"
#include "gca/metrics.hpp"
#include "gca/thread_pool.hpp"

namespace gcalib::gca {

/// One recorded read access: (reading cell, target cell).
struct AccessEdge {
  std::size_t reader = 0;
  std::size_t target = 0;
  friend bool operator==(const AccessEdge&, const AccessEdge&) = default;
  friend auto operator<=>(const AccessEdge&, const AccessEdge&) = default;
};

template <typename State>
class Engine {
 public:
  /// Primary constructor: engine over the given initial cell states,
  /// configured by a validated `EngineOptions` aggregate.
  Engine(std::vector<State> initial, EngineOptions options)
      : cells_(std::move(initial)), next_(cells_.size()) {
    GCALIB_EXPECTS_MSG(!cells_.empty(), "engine requires at least one cell");
    set_options(options);
  }

  /// Legacy constructor (pre-EngineOptions API; prefer the primary one).
  /// `hands` is the maximum number of global reads one cell may perform per
  /// generation (1 = the paper's one-handed GCA).
  explicit Engine(std::vector<State> initial, std::size_t hands = 1)
      : Engine(std::move(initial), EngineOptions{}.with_hands(hands)) {}

  [[nodiscard]] std::size_t size() const { return cells_.size(); }
  [[nodiscard]] std::size_t hands() const { return options_.hands; }
  [[nodiscard]] std::uint64_t generation() const { return generation_; }

  /// The current execution configuration.
  [[nodiscard]] const EngineOptions& options() const { return options_; }

  /// Replaces the execution configuration wholesale (validated).  Safe
  /// between steps; switching to the pool policy (re)acquires the shared
  /// pool of the requested width.
  void set_options(const EngineOptions& options) {
    options.validate();
    options_ = options;
    acquire_pool();
  }

  [[nodiscard]] const State& state(std::size_t i) const {
    GCALIB_EXPECTS(i < cells_.size());
    return cells_[i];
  }
  [[nodiscard]] const std::vector<State>& states() const { return cells_; }

  /// Host-side mutation (initialisation only; not part of the GCA model).
  State& mutable_state(std::size_t i) {
    GCALIB_EXPECTS(i < cells_.size());
    return cells_[i];
  }

  // --- legacy setters (deprecated: prefer EngineOptions/set_options) ----
  // All of them route through `set_options`, so an inconsistent combination
  // (e.g. record_access on a parallel engine) is rejected at the setter —
  // never mid-run.

  /// Collects congestion statistics per step when enabled (default on;
  /// disable for pure-speed runs).
  void set_instrumentation(bool enabled) {
    set_options(EngineOptions{options_}.with_instrumentation(enabled));
  }
  [[nodiscard]] bool instrumentation() const { return options_.instrumentation; }

  /// Records individual (reader, target) access edges of the most recent
  /// step (for access-pattern rendering; implies instrumentation overhead).
  /// Throws ContractViolation when the engine sweeps in parallel.
  void set_record_access(bool enabled) {
    set_options(EngineOptions{options_}.with_record_access(enabled));
  }
  [[nodiscard]] const std::vector<AccessEdge>& last_access() const {
    return last_access_;
  }

  /// Parallel sweep width (1 = sequential).  Keeps the legacy semantics:
  /// widening a sequential engine selects the spawn-per-step backend; an
  /// engine already on the pool policy stays there.
  void set_threads(unsigned threads) {
    EngineOptions next = options_;
    next.threads = threads;
    if (threads > 1 && next.policy == ExecutionPolicy::kSequential) {
      next.policy = ExecutionPolicy::kSpawn;
    }
    set_options(next);
  }

  /// Active-cell mask of the most recent step.
  [[nodiscard]] const std::vector<std::uint8_t>& last_active() const {
    return last_active_;
  }

  // --- robustness extension points -------------------------------------

  /// Observer invoked after every completed step; `engine.states()` shows
  /// the post-step generation the observer may validate.
  ///
  /// Re-entrancy semantics: observers (and metrics sinks) may call
  /// `add_observer` / `remove_observer` / `add_sink` / `remove_sink` from
  /// inside a callback.  A removal takes effect immediately — the removed
  /// callback is not invoked again, not even later in the same step's
  /// notification round — while an addition takes effect from the *next*
  /// step.  Calling `step()` from inside a callback is rejected.
  using Observer = std::function<void(const Engine&, const GenerationStats&)>;

  /// Registers an observer; returns an id for `remove_observer`.
  std::size_t add_observer(Observer observer) {
    GCALIB_EXPECTS(observer != nullptr);
    const std::size_t id = next_observer_id_++;
    if (notifying_) {
      pending_observers_.emplace_back(id, std::move(observer));
    } else {
      observers_.emplace_back(id, std::move(observer));
    }
    return id;
  }

  /// Removes a previously registered observer (no-op on unknown ids).
  /// Safe to call from inside an observer callback (including an observer
  /// removing itself); see the `Observer` re-entrancy semantics.
  void remove_observer(std::size_t id) {
    if (notifying_) {
      // The notification loop iterates `observers_` by index: null the
      // entry in place (skipped, compacted afterwards) instead of erasing
      // mid-iteration.
      for (auto& [oid, callback] : observers_) {
        if (oid == id) callback = nullptr;
      }
      std::erase_if(pending_observers_,
                    [id](const auto& entry) { return entry.first == id; });
    } else {
      std::erase_if(observers_,
                    [id](const auto& entry) { return entry.first == id; });
    }
  }

  [[nodiscard]] std::size_t observer_count() const {
    std::size_t count = pending_observers_.size();
    for (const auto& [id, callback] : observers_) {
      if (callback != nullptr) ++count;
    }
    return count;
  }

  // --- observability (gca/metrics.hpp) ----------------------------------

  /// Attaches a metrics sink (non-owning; the sink must stay alive until
  /// removed or the engine is destroyed).  While at least one sink is
  /// attached every step is timed and pushed to all sinks.  Returns an id
  /// for `remove_sink`.  Shares the observers' re-entrancy semantics.
  std::size_t add_sink(MetricsSink* sink) {
    GCALIB_EXPECTS(sink != nullptr);
    const std::size_t id = next_observer_id_++;
    if (notifying_) {
      pending_sinks_.emplace_back(id, sink);
    } else {
      sinks_.emplace_back(id, sink);
    }
    return id;
  }

  /// Detaches a previously attached sink (no-op on unknown ids); safe from
  /// inside a callback.
  void remove_sink(std::size_t id) {
    if (notifying_) {
      for (auto& [sid, sink] : sinks_) {
        if (sid == id) sink = nullptr;
      }
      std::erase_if(pending_sinks_,
                    [id](const auto& entry) { return entry.first == id; });
    } else {
      std::erase_if(sinks_,
                    [id](const auto& entry) { return entry.first == id; });
    }
  }

  [[nodiscard]] std::size_t sink_count() const {
    std::size_t count = pending_sinks_.size();
    for (const auto& [id, sink] : sinks_) {
      if (sink != nullptr) ++count;
    }
    return count;
  }

  /// Full copy of the mutable machine state, sufficient to re-execute from
  /// this point (instrumentation history is append-only and not part of it).
  struct Snapshot {
    std::vector<State> cells;
    std::uint64_t generation = 0;
  };

  [[nodiscard]] Snapshot snapshot() const { return Snapshot{cells_, generation_}; }

  /// Rolls the engine back to a snapshot taken on this engine (same field).
  void restore(const Snapshot& snap) {
    GCALIB_EXPECTS_MSG(snap.cells.size() == cells_.size(),
                       "snapshot does not match this engine's field");
    cells_ = snap.cells;
    generation_ = snap.generation;
  }

  /// Fault-injection interposer: consulted on every mediated read.  Return
  /// nullptr to let the read proceed normally; otherwise the returned state
  /// is observed instead of the addressed neighbour.  The pointer must stay
  /// valid for the remainder of the step.  Must be thread-safe when a
  /// parallel sweep is enabled (treat it as read-only during a step).
  using ReadOverride =
      std::function<const State*(std::size_t reader, std::size_t target)>;

  void set_read_override(ReadOverride override) {
    read_override_ = std::move(override);
  }
  [[nodiscard]] bool has_read_override() const {
    return static_cast<bool>(read_override_);
  }

  /// Mediates global reads for one cell during one generation.
  class Reader {
   public:
    /// Returns the state of `target` as of the *previous* generation.
    const State& operator()(std::size_t target) {
      GCALIB_EXPECTS(target < engine_.cells_.size());
      GCALIB_EXPECTS_MSG(reads_ < engine_.options_.hands,
                         "cell exceeded its k-handed read budget");
      ++reads_;
      if (counts_ != nullptr) ++(*counts_)[target];
      if (edges_ != nullptr) edges_->push_back(AccessEdge{self_, target});
      if (engine_.read_override_) {
        if (const State* faulty = engine_.read_override_(self_, target)) {
          return *faulty;
        }
      }
      return engine_.cells_[target];
    }

    /// Reads performed so far by this cell in this generation.
    [[nodiscard]] std::size_t reads() const { return reads_; }

   private:
    friend class Engine;
    Reader(const Engine& engine, std::size_t self,
           std::vector<std::size_t>* counts, std::vector<AccessEdge>* edges)
        : engine_(engine), self_(self), counts_(counts), edges_(edges) {}

    const Engine& engine_;
    std::size_t self_;
    std::size_t reads_ = 0;
    std::vector<std::size_t>* counts_;
    std::vector<AccessEdge>* edges_;
  };

  /// Executes one synchronous generation.
  /// `rule(index, reader) -> std::optional<State>`; `nullopt` keeps the old
  /// state and marks the cell inactive.
  template <typename Rule>
  GenerationStats step(Rule&& rule, std::string label = {}) {
    GCALIB_EXPECTS_MSG(!notifying_,
                       "Engine::step must not be called from an observer or "
                       "metrics-sink callback");
    GenerationStats stats;
    stats.generation = generation_;
    stats.label = std::move(label);
    stats.cell_count = cells_.size();

    last_active_.assign(cells_.size(), 0);
    last_access_.clear();

    // Timing runs only while a sink is attached, so the un-instrumented
    // hot path performs no clock reads.
    const bool timed = !sinks_.empty();
    const std::uint64_t sweep_start = timed ? now_ns() : 0;

    const unsigned t = options_.threads;
    if (!options_.parallel() || cells_.size() < 2 * t) {
      if (options_.instrumentation) scratch_count(0).assign(cells_.size(), 0);
      sweep_range(rule, 0, cells_.size(),
                  options_.instrumentation ? &scratch_count(0) : nullptr,
                  options_.record_access ? &last_access_ : nullptr,
                  stats.active_cells);
      if (options_.instrumentation) fold_counts(scratch_count(0), stats);
    } else {
      // set_options/setters validate every configuration path, so a
      // parallel sweep with access recording cannot be reached.
      GCALIB_ASSERT_MSG(!options_.record_access,
                        "access-edge recording requires a sequential sweep");
      sweep_parallel(rule, stats, timed);
    }

    if (timed) {
      stats.start_ns = sweep_start;
      stats.duration_ns = now_ns() - sweep_start;
    }

    cells_.swap(next_);
    ++generation_;
    if (options_.instrumentation) history_.push_back(stats);
    notify(stats);
    return stats;
  }

  [[nodiscard]] const std::vector<GenerationStats>& history() const {
    return history_;
  }
  void clear_history() { history_.clear(); }

 private:
  [[nodiscard]] static std::uint64_t now_ns() {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
  }

  /// Invokes observers, then sinks, with deferred add/remove semantics
  /// (see `Observer`): callbacks registered during the round start next
  /// step, removed ones are skipped immediately and compacted afterwards.
  void notify(const GenerationStats& stats) {
    if (observers_.empty() && sinks_.empty() && pending_observers_.empty() &&
        pending_sinks_.empty()) {
      return;
    }
    notifying_ = true;
    try {
      for (std::size_t i = 0; i < observers_.size(); ++i) {
        if (observers_[i].second) observers_[i].second(*this, stats);
      }
      for (std::size_t i = 0; i < sinks_.size(); ++i) {
        if (sinks_[i].second != nullptr) sinks_[i].second->on_step(stats);
      }
    } catch (...) {
      finish_notify();
      throw;
    }
    finish_notify();
  }

  void finish_notify() {
    notifying_ = false;
    std::erase_if(observers_,
                  [](const auto& entry) { return entry.second == nullptr; });
    for (auto& entry : pending_observers_) {
      observers_.push_back(std::move(entry));
    }
    pending_observers_.clear();
    std::erase_if(sinks_,
                  [](const auto& entry) { return entry.second == nullptr; });
    sinks_.insert(sinks_.end(), pending_sinks_.begin(), pending_sinks_.end());
    pending_sinks_.clear();
  }

  void acquire_pool() {
    if (options_.policy == ExecutionPolicy::kPool && options_.threads > 1) {
      // The sweep is always partitioned into `threads` chunks (that fixes
      // the results and statistics), but more OS threads than cores only
      // adds context switching — so the pool is clamped to the hardware
      // and lanes pull chunks off a cursor.
      const unsigned hardware =
          std::max(1u, std::thread::hardware_concurrency());
      const unsigned width = std::min(options_.threads, hardware);
      if (!pool_ || pool_->width() != width) pool_ = ThreadPool::shared(width);
    } else {
      pool_.reset();
    }
  }

  /// Per-worker congestion-count scratch; grown on demand, zeroed in place
  /// every step (capacity persists, so the steady state never allocates).
  std::vector<std::size_t>& scratch_count(unsigned worker) {
    if (scratch_counts_.size() <= worker) scratch_counts_.resize(worker + 1);
    return scratch_counts_[worker];
  }

  template <typename Rule>
  void sweep_range(Rule& rule, std::size_t begin, std::size_t end,
                   std::vector<std::size_t>* counts,
                   std::vector<AccessEdge>* edges, std::size_t& active) {
    for (std::size_t i = begin; i < end; ++i) {
      Reader reader(*this, i, counts, edges);
      std::optional<State> result = rule(i, reader);
      if (result.has_value()) {
        next_[i] = *std::move(result);
        last_active_[i] = 1;
        ++active;
      } else {
        next_[i] = cells_[i];
      }
    }
  }

  template <typename Rule>
  void sweep_parallel(Rule& rule, GenerationStats& stats, bool timed) {
    const unsigned t = options_.threads;
    const bool counting = options_.instrumentation;
    scratch_actives_.assign(t, 0);
    if (counting) {
      for (unsigned w = 0; w < t; ++w) scratch_count(w).assign(cells_.size(), 0);
    }
    if (timed) scratch_lanes_.assign(t, LaneTiming{});
    const std::size_t chunk = (cells_.size() + t - 1) / t;
    auto lane = [this, &rule, chunk, counting, timed](unsigned w) {
      const std::size_t begin = std::min(cells_.size(), std::size_t{w} * chunk);
      const std::size_t end = std::min(cells_.size(), begin + chunk);
      const std::uint64_t lane_start = timed ? now_ns() : 0;
      sweep_range(rule, begin, end, counting ? &scratch_counts_[w] : nullptr,
                  nullptr, scratch_actives_[w]);
      if (timed) {
        scratch_lanes_[w] =
            LaneTiming{w, lane_start, now_ns() - lane_start, end - begin};
      }
    };

    if (options_.policy == ExecutionPolicy::kPool) {
      GCALIB_ASSERT(pool_ != nullptr);
      // Lanes pull chunks off a shared cursor: each of the t chunks runs
      // exactly once with its own scratch, so the result is bit-identical
      // to the spawn backend even when the pool has fewer lanes.
      std::atomic<unsigned> cursor{0};
      auto pool_lane = [&lane, &cursor, t](unsigned) {
        for (unsigned w = cursor.fetch_add(1, std::memory_order_relaxed);
             w < t; w = cursor.fetch_add(1, std::memory_order_relaxed)) {
          lane(w);
        }
      };
      pool_->run(std::min(t, pool_->width()), pool_lane);
    } else {
      // Legacy spawn-per-step backend: fresh threads every generation.
      scratch_errors_.assign(t, nullptr);
      std::vector<std::thread> workers;
      workers.reserve(t);
      for (unsigned w = 0; w < t; ++w) {
        workers.emplace_back([this, &lane, w]() {
          try {
            lane(w);
          } catch (...) {
            scratch_errors_[w] = std::current_exception();
          }
        });
      }
      for (auto& worker : workers) worker.join();
      for (const std::exception_ptr& error : scratch_errors_) {
        if (error) std::rethrow_exception(error);
      }
    }

    if (timed) {
      stats.lane_times.assign(scratch_lanes_.begin(),
                              scratch_lanes_.begin() + t);
    }
    for (std::size_t a : scratch_actives_) stats.active_cells += a;
    if (counting) {
      std::vector<std::size_t>& merged = scratch_counts_[0];
      for (unsigned w = 1; w < t; ++w) {
        const std::vector<std::size_t>& part = scratch_counts_[w];
        for (std::size_t i = 0; i < merged.size(); ++i) merged[i] += part[i];
      }
      fold_counts(merged, stats);
    }
  }

  void fold_counts(const std::vector<std::size_t>& counts,
                   GenerationStats& stats) const {
    for (std::size_t c : counts) {
      if (c == 0) continue;
      ++stats.cells_read;
      stats.total_reads += c;
      stats.max_congestion = std::max(stats.max_congestion, c);
      ++stats.congestion_classes[c];
    }
  }

  std::vector<State> cells_;
  std::vector<State> next_;
  EngineOptions options_;
  std::uint64_t generation_ = 0;
  std::vector<AccessEdge> last_access_;
  std::vector<std::uint8_t> last_active_;
  std::vector<GenerationStats> history_;
  std::vector<std::pair<std::size_t, Observer>> observers_;
  std::vector<std::pair<std::size_t, MetricsSink*>> sinks_;
  // Deferred registrations made during a notification round (observers_
  // and sinks_ are iterated by index then; see `Observer` semantics).
  std::vector<std::pair<std::size_t, Observer>> pending_observers_;
  std::vector<std::pair<std::size_t, MetricsSink*>> pending_sinks_;
  bool notifying_ = false;
  std::size_t next_observer_id_ = 0;
  ReadOverride read_override_;
  std::shared_ptr<ThreadPool> pool_;
  // Persistent parallel-sweep scratch (reused across steps).
  std::vector<std::vector<std::size_t>> scratch_counts_;
  std::vector<std::size_t> scratch_actives_;
  std::vector<std::exception_ptr> scratch_errors_;
  std::vector<LaneTiming> scratch_lanes_;
};

}  // namespace gcalib::gca
