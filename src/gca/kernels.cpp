#include "gca/kernels.hpp"

#include <algorithm>

#include "common/assert.hpp"
#include "common/bits.hpp"

namespace gcalib::gca {

namespace {

/// Folds one engine step's stats into the kernel result.
void track(KernelResult& result, const GenerationStats& stats) {
  ++result.generations;
  result.max_congestion = std::max(result.max_congestion, stats.max_congestion);
}

}  // namespace

KernelResult reduce(const std::vector<KernelWord>& values,
                    const Combiner& combine) {
  const std::size_t n = values.size();
  GCALIB_EXPECTS(n >= 1);
  Engine<KernelWord> engine(values, /*hands=*/1);
  KernelResult result;
  const std::size_t steps = n > 1 ? log2_ceil(n) : 0;
  for (std::size_t s = 0; s < steps; ++s) {
    const std::size_t offset = std::size_t{1} << s;
    track(result, engine.step([n, offset, &combine, &engine](
                                  std::size_t i,
                                  auto& read) -> std::optional<KernelWord> {
      if (i % (2 * offset) != 0 || i + offset >= n) return std::nullopt;
      return combine(engine.state(i), read(i + offset));
    }));
  }
  result.values = engine.states();
  return result;
}

KernelResult broadcast(const std::vector<KernelWord>& values,
                       std::size_t source) {
  const std::size_t n = values.size();
  GCALIB_EXPECTS(n >= 1 && source < n);
  Engine<KernelWord> engine(values, /*hands=*/1);
  KernelResult result;
  const std::size_t steps = n > 1 ? log2_ceil(n) : 0;
  for (std::size_t s = 0; s < steps; ++s) {
    const std::size_t offset = std::size_t{1} << s;
    track(result, engine.step([n, source, offset](
                                  std::size_t i,
                                  auto& read) -> std::optional<KernelWord> {
      const std::size_t dist = (i + n - source) % n;
      if (dist < offset || dist >= 2 * offset) return std::nullopt;
      return read((i + n - offset) % n);
    }));
  }
  result.values = engine.states();
  return result;
}

KernelResult exclusive_scan(const std::vector<KernelWord>& values,
                            const Combiner& combine, KernelWord identity) {
  const std::size_t n = values.size();
  GCALIB_EXPECTS(n >= 1);
  Engine<KernelWord> engine(values, /*hands=*/1);
  KernelResult result;
  // Hillis-Steele inclusive scan...
  const std::size_t hs_steps = n > 1 ? log2_ceil(n) : 0;
  for (std::size_t s = 0; s < hs_steps; ++s) {
    const std::size_t offset = std::size_t{1} << s;
    track(result, engine.step([offset, &combine, &engine](
                                  std::size_t i,
                                  auto& read) -> std::optional<KernelWord> {
      if (i < offset) return std::nullopt;
      return combine(read(i - offset), engine.state(i));
    }));
  }
  // ...then shift right by one with the identity entering at cell 0.
  track(result, engine.step([identity](std::size_t i, auto& read)
                                -> std::optional<KernelWord> {
    if (i == 0) return identity;
    return read(i - 1);
  }));
  result.values = engine.states();
  return result;
}

KernelResult cyclic_shift(const std::vector<KernelWord>& values,
                          std::size_t offset) {
  const std::size_t n = values.size();
  GCALIB_EXPECTS(n >= 1);
  Engine<KernelWord> engine(values, /*hands=*/1);
  KernelResult result;
  track(result, engine.step([n, offset](std::size_t i, auto& read)
                                -> std::optional<KernelWord> {
    return read((i + offset) % n);
  }));
  result.values = engine.states();
  return result;
}

KernelResult bitonic_sort(const std::vector<KernelWord>& values) {
  const std::size_t n = values.size();
  GCALIB_EXPECTS_MSG(is_pow2(n), "bitonic sort needs a power-of-two size");
  Engine<KernelWord> engine(values, /*hands=*/1);
  KernelResult result;
  for (std::size_t k = 2; k <= n; k *= 2) {
    for (std::size_t j = k / 2; j >= 1; j /= 2) {
      track(result, engine.step([k, j, &engine](
                                    std::size_t i,
                                    auto& read) -> std::optional<KernelWord> {
        const std::size_t partner = i ^ j;
        const KernelWord self = engine.state(i);
        const KernelWord other = read(partner);
        const bool ascending = (i & k) == 0;
        const bool is_low = i < partner;
        const bool keep_min = ascending == is_low;
        return keep_min ? std::min(self, other) : std::max(self, other);
      }));
    }
  }
  result.values = engine.states();
  return result;
}

namespace {

/// Cell state of the list-ranking kernel.
struct RankCell {
  std::size_t next = 0;
  std::size_t rank = 0;
};

}  // namespace

ListRankResult list_rank(const std::vector<std::size_t>& next) {
  const std::size_t n = next.size();
  ListRankResult result;
  if (n == 0) return result;

  std::vector<RankCell> initial(n);
  for (std::size_t i = 0; i < n; ++i) {
    GCALIB_EXPECTS(next[i] < n);
    initial[i].next = next[i];
    initial[i].rank = next[i] == i ? 0 : 1;  // tails are rank 0
  }
  Engine<RankCell> engine(std::move(initial), /*hands=*/1);

  const std::size_t steps = n > 1 ? log2_ceil(n) : 0;
  for (std::size_t s = 0; s < steps; ++s) {
    const GenerationStats stats = engine.step(
        [&engine](std::size_t i, auto& read) -> std::optional<RankCell> {
          const RankCell& self = engine.state(i);
          if (self.next == i) return std::nullopt;  // reached the tail
          const RankCell& successor = read(self.next);
          RankCell out;
          out.rank = self.rank + successor.rank;
          out.next = successor.next;
          return out;
        });
    ++result.generations;
    result.max_congestion = std::max(result.max_congestion, stats.max_congestion);
  }

  result.ranks.resize(n);
  for (std::size_t i = 0; i < n; ++i) result.ranks[i] = engine.state(i).rank;
  return result;
}

}  // namespace gcalib::gca
