#include "gca/kernels.hpp"

#include <algorithm>

#include "common/assert.hpp"
#include "common/bits.hpp"

namespace gcalib::gca {

namespace {

/// Folds one engine step's stats into the kernel result.
void track(KernelResult& result, const GenerationStats& stats) {
  ++result.generations;
  result.max_congestion = std::max(result.max_congestion, stats.max_congestion);
}

}  // namespace

KernelResult reduce(const std::vector<KernelWord>& values,
                    const Combiner& combine) {
  const std::size_t n = values.size();
  GCALIB_EXPECTS(n >= 1);
  Engine<KernelWord> engine(values);
  KernelResult result;
  const std::size_t steps = n > 1 ? log2_ceil(n) : 0;
  for (std::size_t s = 0; s < steps; ++s) {
    const std::size_t offset = std::size_t{1} << s;
    track(result, engine.step([n, offset, &combine, &engine](
                                  std::size_t i,
                                  auto& read) -> std::optional<KernelWord> {
      if (i % (2 * offset) != 0 || i + offset >= n) return std::nullopt;
      return combine(engine.state(i), read(i + offset));
    }));
  }
  result.values = engine.states();
  return result;
}

KernelResult broadcast(const std::vector<KernelWord>& values,
                       std::size_t source) {
  const std::size_t n = values.size();
  GCALIB_EXPECTS(n >= 1 && source < n);
  Engine<KernelWord> engine(values);
  KernelResult result;
  const std::size_t steps = n > 1 ? log2_ceil(n) : 0;
  for (std::size_t s = 0; s < steps; ++s) {
    const std::size_t offset = std::size_t{1} << s;
    track(result, engine.step([n, source, offset](
                                  std::size_t i,
                                  auto& read) -> std::optional<KernelWord> {
      const std::size_t dist = (i + n - source) % n;
      if (dist < offset || dist >= 2 * offset) return std::nullopt;
      return read((i + n - offset) % n);
    }));
  }
  result.values = engine.states();
  return result;
}

KernelResult exclusive_scan(const std::vector<KernelWord>& values,
                            const Combiner& combine, KernelWord identity) {
  const std::size_t n = values.size();
  GCALIB_EXPECTS(n >= 1);
  Engine<KernelWord> engine(values);
  KernelResult result;
  // Hillis-Steele inclusive scan...
  const std::size_t hs_steps = n > 1 ? log2_ceil(n) : 0;
  for (std::size_t s = 0; s < hs_steps; ++s) {
    const std::size_t offset = std::size_t{1} << s;
    track(result, engine.step([offset, &combine, &engine](
                                  std::size_t i,
                                  auto& read) -> std::optional<KernelWord> {
      if (i < offset) return std::nullopt;
      return combine(read(i - offset), engine.state(i));
    }));
  }
  // ...then shift right by one with the identity entering at cell 0.
  track(result, engine.step([identity](std::size_t i, auto& read)
                                -> std::optional<KernelWord> {
    if (i == 0) return identity;
    return read(i - 1);
  }));
  result.values = engine.states();
  return result;
}

KernelResult cyclic_shift(const std::vector<KernelWord>& values,
                          std::size_t offset) {
  const std::size_t n = values.size();
  GCALIB_EXPECTS(n >= 1);
  Engine<KernelWord> engine(values);
  KernelResult result;
  track(result, engine.step([n, offset](std::size_t i, auto& read)
                                -> std::optional<KernelWord> {
    return read((i + offset) % n);
  }));
  result.values = engine.states();
  return result;
}

KernelResult bitonic_sort(const std::vector<KernelWord>& values) {
  const std::size_t n = values.size();
  GCALIB_EXPECTS_MSG(is_pow2(n), "bitonic sort needs a power-of-two size");
  Engine<KernelWord> engine(values);
  KernelResult result;
  for (std::size_t k = 2; k <= n; k *= 2) {
    for (std::size_t j = k / 2; j >= 1; j /= 2) {
      track(result, engine.step([k, j, &engine](
                                    std::size_t i,
                                    auto& read) -> std::optional<KernelWord> {
        const std::size_t partner = i ^ j;
        const KernelWord self = engine.state(i);
        const KernelWord other = read(partner);
        const bool ascending = (i & k) == 0;
        const bool is_low = i < partner;
        const bool keep_min = ascending == is_low;
        return keep_min ? std::min(self, other) : std::max(self, other);
      }));
    }
  }
  result.values = engine.states();
  return result;
}

namespace {

/// Cell state of the list-ranking kernel.
struct RankCell {
  std::size_t next = 0;
  std::size_t rank = 0;
};

}  // namespace

ListRankResult list_rank(const std::vector<std::size_t>& next) {
  const std::size_t n = next.size();
  ListRankResult result;
  if (n == 0) return result;

  std::vector<RankCell> initial(n);
  for (std::size_t i = 0; i < n; ++i) {
    GCALIB_EXPECTS(next[i] < n);
    initial[i].next = next[i];
    initial[i].rank = next[i] == i ? 0 : 1;  // tails are rank 0
  }
  Engine<RankCell> engine(std::move(initial));

  const std::size_t steps = n > 1 ? log2_ceil(n) : 0;
  for (std::size_t s = 0; s < steps; ++s) {
    const GenerationStats stats = engine.step(
        [&engine](std::size_t i, auto& read) -> std::optional<RankCell> {
          const RankCell& self = engine.state(i);
          if (self.next == i) return std::nullopt;  // reached the tail
          const RankCell& successor = read(self.next);
          RankCell out;
          out.rank = self.rank + successor.rank;
          out.next = successor.next;
          return out;
        });
    ++result.generations;
    result.max_congestion = std::max(result.max_congestion, stats.max_congestion);
  }

  result.ranks.resize(n);
  for (std::size_t i = 0; i < n; ++i) result.ranks[i] = engine.state(i).rank;
  return result;
}

// --- Hirschberg bulk kernels (SoA fast path) ----------------------------

void hirschberg_init(std::size_t n, std::uint32_t* d_out, std::uint32_t* p_out,
                     std::size_t k_begin, std::size_t k_end) {
  std::size_t i = k_begin;
  std::size_t row = n > 0 ? i / n : 0;
  std::size_t col = n > 0 ? i % n : 0;
  while (i < k_end) {
    const auto row32 = static_cast<std::uint32_t>(row);
    const std::size_t row_end = std::min(k_end, i + (n - col));
    for (; i < row_end; ++i) {
      d_out[i] = row32;
      p_out[i] = static_cast<std::uint32_t>(i);
    }
    ++row;
    col = 0;
  }
}

void hirschberg_column_broadcast(std::size_t n, const std::uint32_t* d,
                                 std::uint32_t* d_out, std::uint32_t* p_out,
                                 std::size_t k_begin, std::size_t k_end) {
  std::size_t i = k_begin;
  std::size_t col = n > 0 ? i % n : 0;
  while (i < k_end) {
    // One row (or the tail of one): per cell a single strided gather.
    const std::size_t row_end = std::min(k_end, i + (n - col));
    for (; i < row_end; ++i, ++col) {
      const std::size_t p = col * n;
      d_out[i] = d[p];
      p_out[i] = static_cast<std::uint32_t>(p);
    }
    col = 0;
  }
}

void hirschberg_mask_neighbors(std::size_t n, std::uint32_t inf,
                               const std::uint64_t* a_words,
                               const std::uint32_t* d, std::uint32_t* d_out,
                               std::uint32_t* p_out, std::size_t k_begin,
                               std::size_t k_end) {
  const std::size_t nn = n * n;
  std::size_t i = k_begin;
  std::size_t row = n > 0 ? i / n : 0;
  std::size_t col = n > 0 ? i % n : 0;
  while (i < k_end) {
    const std::size_t p = nn + row;
    const std::uint32_t global = d[p];  // D_N[row]: hoisted, one read per row
    const auto p32 = static_cast<std::uint32_t>(p);
    const std::size_t row_end = std::min(k_end, i + (n - col));
    for (; i < row_end; ++i) {
      const std::uint32_t self = d[i];
      const bool adjacent = ((a_words[i >> 6] >> (i & 63)) & 1u) != 0;
      d_out[i] = (self != global) & adjacent ? self : inf;
      p_out[i] = p32;
    }
    ++row;
    col = 0;
  }
}

void hirschberg_mask_members(std::size_t n, std::uint32_t inf,
                             const std::uint32_t* d, std::uint32_t* d_out,
                             std::uint32_t* p_out, std::size_t k_begin,
                             std::size_t k_end) {
  const std::size_t nn = n * n;
  std::size_t i = k_begin;
  std::size_t row = n > 0 ? i / n : 0;
  std::size_t col = n > 0 ? i % n : 0;
  while (i < k_end) {
    const auto row32 = static_cast<std::uint32_t>(row);
    const std::size_t row_end = std::min(k_end, i + (n - col));
    for (; i < row_end; ++i, ++col) {
      const std::uint32_t global = d[nn + col];  // D_N[col] — contiguous
      const std::uint32_t self = d[i];
      d_out[i] = (global == row32) & (self != row32) ? self : inf;
      p_out[i] = static_cast<std::uint32_t>(nn + col);
    }
    ++row;
    col = 0;
  }
}

void hirschberg_row_min(std::size_t n, std::size_t offset,
                        const std::uint32_t* d, std::uint32_t* d_out,
                        std::uint32_t* p_out, std::size_t k_begin,
                        std::size_t k_end) {
  const std::size_t step = 2 * offset;
  const std::size_t per_row =
      offset < n ? (n - offset + step - 1) / step : 0;
  if (per_row == 0 || k_begin >= k_end) return;
  std::size_t row = k_begin / per_row;
  std::size_t c = k_begin % per_row;
  std::size_t i = row * n + c * step;
  for (std::size_t k = k_begin; k < k_end; ++k) {
    const std::size_t p = i + offset;
    const std::uint32_t lo = d[i];
    const std::uint32_t hi = d[p];
    d_out[i] = hi < lo ? hi : lo;
    p_out[i] = static_cast<std::uint32_t>(p);
    if (++c == per_row) {
      c = 0;
      ++row;
      i = row * n;
    } else {
      i += step;
    }
  }
}

void hirschberg_row_min_span(std::size_t n, std::size_t offset,
                             const std::uint32_t* d, const std::uint32_t* p,
                             std::uint32_t* d_out, std::uint32_t* p_out,
                             std::size_t k_begin, std::size_t k_end) {
  const std::size_t step = 2 * offset;
  std::size_t i = k_begin;
  std::size_t col = n > 0 ? i % n : 0;
  while (i < k_end) {
    const std::size_t row_end = std::min(k_end, i + (n - col));
    for (; i < row_end; ++i, ++col) {
      if (col % step == 0 && col + offset < n) {
        const std::size_t q = i + offset;
        const std::uint32_t lo = d[i];
        const std::uint32_t hi = d[q];
        d_out[i] = hi < lo ? hi : lo;
        p_out[i] = static_cast<std::uint32_t>(q);
      } else {
        d_out[i] = d[i];  // inactive: carry d/p through unchanged
        p_out[i] = p[i];
      }
    }
    col = 0;
  }
}

void hirschberg_row_min_indexed(std::size_t offset,
                                const std::uint32_t* indices,
                                const std::uint32_t* d, std::uint32_t* d_out,
                                std::uint32_t* p_out, std::size_t k_begin,
                                std::size_t k_end) {
  for (std::size_t k = k_begin; k < k_end; ++k) {
    const std::size_t i = indices[k];
    const std::size_t q = i + offset;
    const std::uint32_t lo = d[i];
    const std::uint32_t hi = d[q];
    d_out[i] = hi < lo ? hi : lo;
    p_out[i] = static_cast<std::uint32_t>(q);
  }
}

void hirschberg_adopt(std::size_t n, const std::uint32_t* d,
                      std::uint32_t* d_out, std::uint32_t* p_out,
                      std::size_t k_begin, std::size_t k_end) {
  const std::size_t nn = n * n;
  // Square rows: splat the row head d[row * n] across the row.
  std::size_t i = k_begin;
  std::size_t row = n > 0 ? i / n : 0;
  std::size_t col = n > 0 ? i % n : 0;
  while (i < std::min(k_end, nn)) {
    const std::size_t p = row * n;
    const std::uint32_t head = d[p];
    const auto p32 = static_cast<std::uint32_t>(p);
    const std::size_t row_end = std::min(std::min(k_end, nn), i + (n - col));
    for (; i < row_end; ++i) {
      d_out[i] = head;
      p_out[i] = p32;
    }
    ++row;
    col = 0;
  }
  // Bottom row: gather the transposed T — D_N[i] <- d[i * n].
  for (i = std::max(k_begin, nn); i < k_end; ++i) {
    const std::size_t p = (i - nn) * n;
    d_out[i] = d[p];
    p_out[i] = static_cast<std::uint32_t>(p);
  }
}

void hirschberg_pointer_jump(std::size_t n, std::size_t field_cells,
                             const std::uint32_t* d, std::uint32_t* d_out,
                             std::uint32_t* p_out, std::size_t k_begin,
                             std::size_t k_end) {
  for (std::size_t row = k_begin; row < k_end; ++row) {
    const std::size_t i = row * n;
    const std::size_t t = std::size_t{d[i]} * n;
    GCALIB_EXPECTS_MSG(t < field_cells,
                       "pointer jump target outside the field");
    d_out[i] = d[t];
    p_out[i] = static_cast<std::uint32_t>(t);
  }
}

void hirschberg_pointer_jump_indexed(std::size_t n, std::size_t field_cells,
                                     const std::uint32_t* indices,
                                     const std::uint32_t* d,
                                     std::uint32_t* d_out, std::uint32_t* p_out,
                                     std::size_t k_begin, std::size_t k_end) {
  for (std::size_t k = k_begin; k < k_end; ++k) {
    const std::size_t i = indices[k];
    const std::size_t t = std::size_t{d[i]} * n;
    GCALIB_EXPECTS_MSG(t < field_cells,
                       "pointer jump target outside the field");
    d_out[i] = d[t];
    p_out[i] = static_cast<std::uint32_t>(t);
  }
}

void hirschberg_fallback_indexed(std::size_t n, std::uint32_t inf,
                                 const std::uint32_t* indices,
                                 const std::uint32_t* d, std::uint32_t* d_out,
                                 std::uint32_t* p_out, std::size_t k_begin,
                                 std::size_t k_end) {
  const std::size_t nn = n * n;
  for (std::size_t k = k_begin; k < k_end; ++k) {
    const std::size_t i = indices[k];
    const std::size_t p = nn + i / n;
    const std::uint32_t self = d[i];
    d_out[i] = self == inf ? d[p] : self;
    p_out[i] = static_cast<std::uint32_t>(p);
  }
}

void hirschberg_final_min_indexed(std::size_t n, std::size_t field_cells,
                                  const std::uint32_t* indices,
                                  const std::uint32_t* d, std::uint32_t* d_out,
                                  std::uint32_t* p_out, std::size_t k_begin,
                                  std::size_t k_end) {
  for (std::size_t k = k_begin; k < k_end; ++k) {
    const std::size_t i = indices[k];
    const std::uint32_t self = d[i];
    const std::size_t t = std::size_t{self} * n + 1;
    GCALIB_EXPECTS_MSG(t < field_cells,
                       "final-min target outside the field");
    const std::uint32_t global = d[t];
    d_out[i] = global < self ? global : self;
    p_out[i] = static_cast<std::uint32_t>(t);
  }
}

}  // namespace gcalib::gca
