#include "gca/ca.hpp"

#include <algorithm>

#include "common/assert.hpp"

namespace gcalib::gca {

Neighborhood von_neumann_neighborhood() {
  return {{-1, 0}, {0, -1}, {0, 1}, {1, 0}};
}

Neighborhood moore_neighborhood() {
  return {{-1, -1}, {-1, 0}, {-1, 1}, {0, -1}, {0, 1}, {1, -1}, {1, 0}, {1, 1}};
}

CellularAutomaton::CellularAutomaton(FieldGeometry geometry,
                                     Neighborhood neighborhood,
                                     Boundary boundary,
                                     std::uint8_t boundary_state)
    : geometry_(geometry),
      neighborhood_(std::move(neighborhood)),
      boundary_(boundary),
      boundary_state_(boundary_state),
      engine_(std::vector<std::uint8_t>(geometry.size(), 0),
              EngineOptions{}.with_hands(
                  std::max<std::size_t>(neighborhood_.size(), 1))) {
  GCALIB_EXPECTS(!neighborhood_.empty());
}

void CellularAutomaton::set_state(const std::vector<std::uint8_t>& cells) {
  GCALIB_EXPECTS(cells.size() == geometry_.size());
  for (std::size_t i = 0; i < cells.size(); ++i) {
    engine_.mutable_state(i) = cells[i];
  }
}

GenerationStats CellularAutomaton::step(const Rule& rule) {
  const FieldGeometry geo = geometry_;
  const Boundary boundary = boundary_;
  const std::uint8_t outside = boundary_state_;
  const Neighborhood& hood = neighborhood_;
  return engine_.step([this, geo, boundary, outside, &hood, &rule](
                          std::size_t index,
                          auto& read) -> std::optional<std::uint8_t> {
    const auto row = static_cast<long>(geo.row(index));
    const auto col = static_cast<long>(geo.col(index));
    const auto rows = static_cast<long>(geo.rows());
    const auto cols = static_cast<long>(geo.cols());
    std::vector<std::uint8_t> neighbors;
    neighbors.reserve(hood.size());
    for (const auto& [dr, dc] : hood) {
      long r = row + dr;
      long c = col + dc;
      if (boundary == Boundary::kTorus) {
        r = (r + rows) % rows;
        c = (c + cols) % cols;
      } else if (r < 0 || r >= rows || c < 0 || c >= cols) {
        neighbors.push_back(outside);
        continue;
      }
      neighbors.push_back(read(geo.index_of(static_cast<std::size_t>(r),
                                            static_cast<std::size_t>(c))));
    }
    return rule(engine_.state(index), neighbors);
  });
}

void CellularAutomaton::run(const Rule& rule, std::size_t generations) {
  for (std::size_t g = 0; g < generations; ++g) step(rule);
}

std::size_t CellularAutomaton::census(std::uint8_t state) const {
  const auto& cells = engine_.states();
  return static_cast<std::size_t>(
      std::count(cells.begin(), cells.end(), state));
}

CellularAutomaton::Rule game_of_life_rule() {
  return [](std::uint8_t self, const std::vector<std::uint8_t>& neighbors) {
    unsigned alive = 0;
    for (std::uint8_t n : neighbors) alive += n != 0 ? 1u : 0u;
    const bool next = self != 0 ? (alive == 2 || alive == 3) : alive == 3;
    return static_cast<std::uint8_t>(next ? 1 : 0);
  };
}

CellularAutomaton::Rule majority_rule() {
  return [](std::uint8_t self, const std::vector<std::uint8_t>& neighbors) {
    unsigned ones = self != 0 ? 1u : 0u;
    for (std::uint8_t n : neighbors) ones += n != 0 ? 1u : 0u;
    const unsigned total = static_cast<unsigned>(neighbors.size()) + 1;
    if (2 * ones > total) return std::uint8_t{1};
    if (2 * ones < total) return std::uint8_t{0};
    return self;
  };
}

CellularAutomaton::Rule parity_rule() {
  return [](std::uint8_t self, const std::vector<std::uint8_t>& neighbors) {
    std::uint8_t x = self;
    for (std::uint8_t n : neighbors) x = static_cast<std::uint8_t>(x ^ n);
    return static_cast<std::uint8_t>(x & 1);
  };
}

ElementaryCA::ElementaryCA(std::size_t width, unsigned rule, Boundary boundary)
    : rule_(rule),
      boundary_(boundary),
      engine_(std::vector<std::uint8_t>(width, 0),
              EngineOptions{}.with_hands(2)) {
  GCALIB_EXPECTS(width >= 1);
  GCALIB_EXPECTS(rule <= 255);
}

void ElementaryCA::set_state(const std::vector<std::uint8_t>& cells) {
  GCALIB_EXPECTS(cells.size() == engine_.size());
  for (std::size_t i = 0; i < cells.size(); ++i) {
    engine_.mutable_state(i) = cells[i];
  }
}

void ElementaryCA::seed_center() {
  for (std::size_t i = 0; i < engine_.size(); ++i) engine_.mutable_state(i) = 0;
  engine_.mutable_state(engine_.size() / 2) = 1;
}

GenerationStats ElementaryCA::step() {
  const std::size_t n = engine_.size();
  const unsigned rule = rule_;
  const Boundary boundary = boundary_;
  return engine_.step([this, n, rule, boundary](
                          std::size_t i, auto& read) -> std::optional<std::uint8_t> {
    const auto fetch = [&](std::size_t j, bool valid) -> std::uint8_t {
      if (!valid) return 0;
      return read(j);
    };
    std::uint8_t left, right;
    if (boundary == Boundary::kTorus) {
      left = fetch((i + n - 1) % n, true);
      right = fetch((i + 1) % n, true);
    } else {
      left = fetch(i - 1, i > 0);
      right = fetch(i + 1, i + 1 < n);
    }
    const unsigned pattern = static_cast<unsigned>(left) << 2 |
                             static_cast<unsigned>(engine_.state(i)) << 1 |
                             static_cast<unsigned>(right);
    return static_cast<std::uint8_t>((rule >> pattern) & 1u);
  });
}

void ElementaryCA::run(std::size_t generations) {
  for (std::size_t g = 0; g < generations; ++g) step();
}

std::size_t ElementaryCA::live_count() const {
  const auto& cells = engine_.states();
  std::size_t live = 0;
  for (std::uint8_t c : cells) live += c != 0 ? 1 : 0;
  return live;
}

}  // namespace gcalib::gca
