// Bit-packed cell planes and pooled thread-local scratch (DESIGN.md §13).
//
// The paper's GCA stores exactly one bit of adjacency information per
// square cell, yet the SoA layout spent a full 32-bit word on it.
// `BitPlane` packs an immutable 0/1 plane 64 cells per word, cutting the
// adjacency traffic of the mask kernels 32x and letting the word-at-a-time
// kernel variants (gca/kernel_registry.hpp) test eight cells with one
// shift+mask.  The plane always carries one zeroed *guard word* past the
// last payload word, so a kernel may read the word containing bit i and
// its successor without a bounds branch (`i < bit_count()` is enough).
//
// `ScratchLease` is the nesfab `array_pool.hpp` idiom: a thread-local free
// list of typed buffers, leased for the duration of a kernel call and
// returned with their capacity intact — so a steady-state sweep performs
// zero allocation no matter how many times kernels borrow scratch, and no
// locks are needed because each worker thread owns its pool.
#pragma once

#include <bit>
#include <cstdint>
#include <vector>

#include "common/assert.hpp"

namespace gcalib::gca {

/// An immutable-ish plane of bits, packed 64 cells per word.
class BitPlane {
 public:
  BitPlane() = default;
  explicit BitPlane(std::size_t bits) { resize(bits); }

  /// Resizes to `bits` cells, all zero (plus the guard word).
  void resize(std::size_t bits) {
    bits_ = bits;
    words_.assign(payload_words(bits) + 1, 0);  // trailing zero guard word
  }

  [[nodiscard]] std::size_t bit_count() const { return bits_; }

  /// Payload words (the guard word is not counted).
  [[nodiscard]] std::size_t word_count() const {
    return words_.empty() ? 0 : words_.size() - 1;
  }

  [[nodiscard]] bool test(std::size_t i) const {
    GCALIB_ASSERT(i < bits_);
    return ((words_[i >> 6] >> (i & 63)) & 1u) != 0;
  }

  void set(std::size_t i, bool value) {
    GCALIB_ASSERT(i < bits_);
    const std::uint64_t mask = std::uint64_t{1} << (i & 63);
    if (value) {
      words_[i >> 6] |= mask;
    } else {
      words_[i >> 6] &= ~mask;
    }
  }

  /// Raw packed words for kernels.  Safe to read `word_count() + 1` words —
  /// the last one is the zero guard.
  [[nodiscard]] const std::uint64_t* words() const { return words_.data(); }

  [[nodiscard]] std::size_t popcount() const {
    std::size_t total = 0;
    for (const std::uint64_t w : words_) {
      total += static_cast<std::size_t>(std::popcount(w));
    }
    return total;
  }

  /// Packs a word-per-cell plane: bit i is set iff `plane[i] != 0`.
  [[nodiscard]] static BitPlane pack(const std::vector<std::uint32_t>& plane) {
    BitPlane packed(plane.size());
    for (std::size_t i = 0; i < plane.size(); ++i) {
      if (plane[i] != 0) {
        packed.words_[i >> 6] |= std::uint64_t{1} << (i & 63);
      }
    }
    return packed;
  }

  /// The inverse of `pack` (values normalised to 0/1) — the word-per-cell
  /// view the durable checkpoint format (core/checkpoint.hpp) serialises.
  [[nodiscard]] std::vector<std::uint32_t> unpack() const {
    std::vector<std::uint32_t> plane(bits_);
    for (std::size_t i = 0; i < bits_; ++i) {
      plane[i] = ((words_[i >> 6] >> (i & 63)) & 1u) != 0 ? 1u : 0u;
    }
    return plane;
  }

  friend bool operator==(const BitPlane&, const BitPlane&) = default;

 private:
  [[nodiscard]] static std::size_t payload_words(std::size_t bits) {
    return (bits + 63) / 64;
  }

  std::size_t bits_ = 0;
  std::vector<std::uint64_t> words_;  ///< payload + one zero guard word
};

namespace detail {

template <typename T>
std::vector<std::vector<T>>& scratch_free_list() {
  thread_local std::vector<std::vector<T>> pool;
  return pool;
}

}  // namespace detail

/// A leased thread-local scratch buffer of `count` elements (contents
/// unspecified — callers initialise what they use).  The backing vector
/// returns to this thread's free list on destruction with its capacity
/// intact, so repeated leases of the same order allocate nothing.
template <typename T>
class ScratchLease {
 public:
  explicit ScratchLease(std::size_t count) : size_(count) {
    auto& pool = detail::scratch_free_list<T>();
    if (!pool.empty()) {
      buffer_ = std::move(pool.back());
      pool.pop_back();
    }
    if (buffer_.size() < count) buffer_.resize(count);
  }
  ~ScratchLease() {
    detail::scratch_free_list<T>().push_back(std::move(buffer_));
  }

  ScratchLease(const ScratchLease&) = delete;
  ScratchLease& operator=(const ScratchLease&) = delete;

  [[nodiscard]] T* data() { return buffer_.data(); }
  [[nodiscard]] const T* data() const { return buffer_.data(); }
  [[nodiscard]] std::size_t size() const { return size_; }

 private:
  std::vector<T> buffer_;
  std::size_t size_;
};

}  // namespace gcalib::gca
