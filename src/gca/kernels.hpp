// Reusable GCA kernels: the communication/computation primitives that the
// Hirschberg machine uses implicitly (tree reduction, broadcast) plus the
// standard companions (exclusive scan, cyclic shift, hypercube-pattern
// bitonic sort).  All kernels run on the generic Engine with one-handed
// cells and static, position-dependent pointers — i.e. they are legal GCA
// programs in the paper's sense, not host-side shortcuts.
//
// Each kernel reports the number of generations it used; the congestion of
// every kernel generation is 1 (reduction, shift, sort) or is made 1 by
// doubling (broadcast) — properties the tests pin down.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "gca/engine.hpp"

namespace gcalib::gca {

/// Word type used by the kernels.
using KernelWord = std::uint64_t;

/// Result of a kernel run: the final cell values and the generation count.
struct KernelResult {
  std::vector<KernelWord> values;
  std::size_t generations = 0;
  std::size_t max_congestion = 0;  ///< max over the kernel's generations
};

/// Associative combiner (e.g. min, +, |).
using Combiner = std::function<KernelWord(KernelWord, KernelWord)>;

/// Tree-reduces `values` with `combine`; the result lands in cell 0
/// (classic ascend reduction, ceil(lg n) generations, congestion 1).
[[nodiscard]] KernelResult reduce(const std::vector<KernelWord>& values,
                                  const Combiner& combine);

/// Broadcasts the value of cell `source` to every cell by distance
/// doubling (ceil(lg n) generations, congestion 1).
[[nodiscard]] KernelResult broadcast(const std::vector<KernelWord>& values,
                                     std::size_t source);

/// Exclusive prefix scan (Hillis-Steele style, inclusive shifted):
/// cell i ends with combine(values[0..i-1]), cell 0 with `identity`.
/// ceil(lg n) + 1 generations; every generation has congestion 1.
[[nodiscard]] KernelResult exclusive_scan(const std::vector<KernelWord>& values,
                                          const Combiner& combine,
                                          KernelWord identity);

/// Cyclic shift by `offset` (single generation, congestion 1): cell i ends
/// with values[(i + offset) mod n].
[[nodiscard]] KernelResult cyclic_shift(const std::vector<KernelWord>& values,
                                        std::size_t offset);

/// Bitonic sort (ascending) — the "hypercube algorithm" pattern from the
/// paper's introduction: partners are index XOR 2^s, all pointers static.
/// Requires |values| to be a power of two.  (lg n)(lg n + 1)/2 compare
/// generations, congestion 1 throughout.
[[nodiscard]] KernelResult bitonic_sort(const std::vector<KernelWord>& values);

/// Result of list ranking.
struct ListRankResult {
  std::vector<std::size_t> ranks;  ///< distance to the list tail
  std::size_t generations = 0;
  std::size_t max_congestion = 0;
};

/// List ranking by pointer doubling — the canonical *data-dependent
/// pointer* kernel (the capability that separates the GCA from the CA, and
/// the mechanism behind the Hirschberg machine's generation 10).
/// `next[i]` is the successor of i; tails point to themselves.  After
/// ceil(lg n) generations every cell knows its distance to its tail.
/// One-handed: a cell reads its successor's whole state (rank and next) in
/// a single access.
[[nodiscard]] ListRankResult list_rank(const std::vector<std::size_t>& next);

// --- Hirschberg bulk kernels (SoA fast path) ----------------------------
//
// Tight branch-free inner loops for the O(n^2)-active generations of the
// Hirschberg machine, operating directly on the SoA field arrays (`d`/`p`
// double-buffered, `a` immutable; see SoaLayout<core::Cell>).  Each kernel
// covers one generation's uniform rule over a contiguous slice
// [k_begin, k_end) of its active region's enumeration (gca/execution.hpp),
// which is how `Engine::step_bulk` chunks them across lanes — the slice
// boundaries are the same for every backend, so kernel and rule execution
// stay bit-identical.  All kernels write d_out/p_out only at active
// indices; the engine's sparse commit publishes exactly those.
//
// `n` is the square side of the (n+1) x n field; rows have pitch n and the
// bottom row D_N starts at linear index n*n.

/// Generation 0 (init): full field, k is the linear index.
/// d_out[i] = row(i), p_out[i] = i — pure geometry, no reads.
void hirschberg_init(std::size_t n, std::uint32_t* d_out, std::uint32_t* p_out,
                     std::size_t k_begin, std::size_t k_end);

/// Generations 1 and 5 (copy C/T to rows): active region is `row_count`
/// full-width rows from row 0 (n+1 under generation 1, n under
/// generation 5), so k IS the linear index.  d_out[i] = d[col(i) * n].
void hirschberg_column_broadcast(std::size_t n, const std::uint32_t* d,
                                 std::uint32_t* d_out, std::uint32_t* p_out,
                                 std::size_t k_begin, std::size_t k_end);

/// Generation 2 (mask neighbours): square, k is the linear index.
/// d_out[i] = (d[i] != D_N[row] && a-bit i set) ? d[i] : inf, with the
/// per-row global read D_N[row] = d[n^2 + row] hoisted out of the row loop.
/// The adjacency plane arrives bit-packed 64 cells per word
/// (gca/bitplane.hpp; the plane's guard word lets SIMD variants read one
/// word past the last payload word).
void hirschberg_mask_neighbors(std::size_t n, std::uint32_t inf,
                               const std::uint64_t* a_words,
                               const std::uint32_t* d, std::uint32_t* d_out,
                               std::uint32_t* p_out, std::size_t k_begin,
                               std::size_t k_end);

/// Generation 6 (mask members): square, k is the linear index.
/// d_out[i] = (D_N[col] == row && d[i] != row) ? d[i] : inf with
/// D_N[col] = d[n^2 + col] (the paper-erratum pointer; see DESIGN.md).
void hirschberg_mask_members(std::size_t n, std::uint32_t inf,
                             const std::uint32_t* d, std::uint32_t* d_out,
                             std::uint32_t* p_out, std::size_t k_begin,
                             std::size_t k_end);

/// Generations 3 and 7, sub-generation with partner distance `offset`:
/// the active region strides the surviving columns (col % 2*offset == 0,
/// col + offset < n), so k enumerates that lattice.
/// d_out[i] = min(d[i], d[i + offset]).
void hirschberg_row_min(std::size_t n, std::size_t offset,
                        const std::uint32_t* d, std::uint32_t* d_out,
                        std::uint32_t* p_out, std::size_t k_begin,
                        std::size_t k_end);

/// Span form of row-min for small offsets: sweeps the *whole* square
/// (k IS the linear index) and carries d/p through unchanged at inactive
/// cells.  Physically O(n^2), but contiguous — the SIMD variants and the
/// engine's complement-swap commit make it beat the strided window when
/// occupancy is still >= 1/(2*offset) per row.
void hirschberg_row_min_span(std::size_t n, std::size_t offset,
                             const std::uint32_t* d, const std::uint32_t* p,
                             std::uint32_t* d_out, std::uint32_t* p_out,
                             std::size_t k_begin, std::size_t k_end);

/// Worklist form of row-min for large offsets: k indexes `indices`, an
/// ascending list of exactly the active cells (gca/worklist.hpp), each
/// with partner i + offset.
void hirschberg_row_min_indexed(std::size_t offset,
                                const std::uint32_t* indices,
                                const std::uint32_t* d, std::uint32_t* d_out,
                                std::uint32_t* p_out, std::size_t k_begin,
                                std::size_t k_end);

/// Generation 9 (adopt): full field, k is the linear index.  Square rows
/// splat the row head d[row * n] across the row; the bottom row gathers
/// the transposed T: d_out[n^2 + i] = d[i * n].
void hirschberg_adopt(std::size_t n, const std::uint32_t* d,
                      std::uint32_t* d_out, std::uint32_t* p_out,
                      std::size_t k_begin, std::size_t k_end);

/// Generation 10 (pointer jump): column 0 of the square, k is the row.
/// The data-dependent pointer t = d[row * n] * n must stay inside the
/// field (`field_cells`); a corrupted pointer throws ContractViolation,
/// which the fault-recovery ladder treats as a detection.
void hirschberg_pointer_jump(std::size_t n, std::size_t field_cells,
                             const std::uint32_t* d, std::uint32_t* d_out,
                             std::uint32_t* p_out, std::size_t k_begin,
                             std::size_t k_end);

/// Worklist form of the pointer jump: k indexes `indices` (the column-0
/// cells, ascending).  Same data-dependent bounds check as above.
void hirschberg_pointer_jump_indexed(std::size_t n, std::size_t field_cells,
                                     const std::uint32_t* indices,
                                     const std::uint32_t* d,
                                     std::uint32_t* d_out, std::uint32_t* p_out,
                                     std::size_t k_begin, std::size_t k_end);

/// Worklist form of generations 4 and 8 (fallback): k indexes `indices`
/// (the column-0 cells).  d_out[i] = d[i] == inf ? D_N[row(i)] : d[i].
void hirschberg_fallback_indexed(std::size_t n, std::uint32_t inf,
                                 const std::uint32_t* indices,
                                 const std::uint32_t* d, std::uint32_t* d_out,
                                 std::uint32_t* p_out, std::size_t k_begin,
                                 std::size_t k_end);

/// Worklist form of generation 11 (final min): k indexes `indices` (the
/// column-0 cells).  Data-dependent read t = d[i] * n + 1 (T(C(j)) from a
/// row copy); a corrupted pointer throws ContractViolation like the jump.
void hirschberg_final_min_indexed(std::size_t n, std::size_t field_cells,
                                  const std::uint32_t* indices,
                                  const std::uint32_t* d, std::uint32_t* d_out,
                                  std::uint32_t* p_out, std::size_t k_begin,
                                  std::size_t k_end);

}  // namespace gcalib::gca
