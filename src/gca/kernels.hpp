// Reusable GCA kernels: the communication/computation primitives that the
// Hirschberg machine uses implicitly (tree reduction, broadcast) plus the
// standard companions (exclusive scan, cyclic shift, hypercube-pattern
// bitonic sort).  All kernels run on the generic Engine with one-handed
// cells and static, position-dependent pointers — i.e. they are legal GCA
// programs in the paper's sense, not host-side shortcuts.
//
// Each kernel reports the number of generations it used; the congestion of
// every kernel generation is 1 (reduction, shift, sort) or is made 1 by
// doubling (broadcast) — properties the tests pin down.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "gca/engine.hpp"

namespace gcalib::gca {

/// Word type used by the kernels.
using KernelWord = std::uint64_t;

/// Result of a kernel run: the final cell values and the generation count.
struct KernelResult {
  std::vector<KernelWord> values;
  std::size_t generations = 0;
  std::size_t max_congestion = 0;  ///< max over the kernel's generations
};

/// Associative combiner (e.g. min, +, |).
using Combiner = std::function<KernelWord(KernelWord, KernelWord)>;

/// Tree-reduces `values` with `combine`; the result lands in cell 0
/// (classic ascend reduction, ceil(lg n) generations, congestion 1).
[[nodiscard]] KernelResult reduce(const std::vector<KernelWord>& values,
                                  const Combiner& combine);

/// Broadcasts the value of cell `source` to every cell by distance
/// doubling (ceil(lg n) generations, congestion 1).
[[nodiscard]] KernelResult broadcast(const std::vector<KernelWord>& values,
                                     std::size_t source);

/// Exclusive prefix scan (Hillis-Steele style, inclusive shifted):
/// cell i ends with combine(values[0..i-1]), cell 0 with `identity`.
/// ceil(lg n) + 1 generations; every generation has congestion 1.
[[nodiscard]] KernelResult exclusive_scan(const std::vector<KernelWord>& values,
                                          const Combiner& combine,
                                          KernelWord identity);

/// Cyclic shift by `offset` (single generation, congestion 1): cell i ends
/// with values[(i + offset) mod n].
[[nodiscard]] KernelResult cyclic_shift(const std::vector<KernelWord>& values,
                                        std::size_t offset);

/// Bitonic sort (ascending) — the "hypercube algorithm" pattern from the
/// paper's introduction: partners are index XOR 2^s, all pointers static.
/// Requires |values| to be a power of two.  (lg n)(lg n + 1)/2 compare
/// generations, congestion 1 throughout.
[[nodiscard]] KernelResult bitonic_sort(const std::vector<KernelWord>& values);

/// Result of list ranking.
struct ListRankResult {
  std::vector<std::size_t> ranks;  ///< distance to the list tail
  std::size_t generations = 0;
  std::size_t max_congestion = 0;
};

/// List ranking by pointer doubling — the canonical *data-dependent
/// pointer* kernel (the capability that separates the GCA from the CA, and
/// the mechanism behind the Hirschberg machine's generation 10).
/// `next[i]` is the successor of i; tails point to themselves.  After
/// ceil(lg n) generations every cell knows its distance to its tail.
/// One-handed: a cell reads its successor's whole state (rank and next) in
/// a single access.
[[nodiscard]] ListRankResult list_rank(const std::vector<std::size_t>& next);

}  // namespace gcalib::gca
