#include "gca/execution.hpp"

#include <cstdio>
#include <cstdlib>

#include "common/assert.hpp"
#include "common/cli.hpp"

namespace gcalib::gca {

const char* to_string(ExecutionPolicy policy) {
  switch (policy) {
    case ExecutionPolicy::kSequential:
      return "sequential";
    case ExecutionPolicy::kSpawn:
      return "spawn";
    case ExecutionPolicy::kPool:
      return "pool";
  }
  GCALIB_ASSERT_MSG(false, "unreachable execution policy");
  return "?";
}

ExecutionPolicy parse_execution_policy(const std::string& name) {
  if (name == "sequential" || name == "seq") return ExecutionPolicy::kSequential;
  if (name == "spawn") return ExecutionPolicy::kSpawn;
  if (name == "pool") return ExecutionPolicy::kPool;
  GCALIB_EXPECTS_MSG(false, "unknown execution policy '" + name +
                                "' (expected sequential | spawn | pool)");
  return ExecutionPolicy::kSequential;
}

const char* to_string(SweepMode mode) {
  switch (mode) {
    case SweepMode::kDense:
      return "dense";
    case SweepMode::kSparse:
      return "sparse";
  }
  GCALIB_ASSERT_MSG(false, "unreachable sweep mode");
  return "?";
}

SweepMode parse_sweep_mode(const std::string& name) {
  if (name == "dense") return SweepMode::kDense;
  if (name == "sparse") return SweepMode::kSparse;
  GCALIB_EXPECTS_MSG(
      false, "unknown sweep mode '" + name + "' (expected dense | sparse)");
  return SweepMode::kSparse;
}

const char* to_string(SubstrateMode mode) {
  switch (mode) {
    case SubstrateMode::kDense:
      return "dense";
    case SubstrateMode::kSparseCsr:
      return "sparse_csr";
    case SubstrateMode::kAuto:
      return "auto";
  }
  GCALIB_ASSERT_MSG(false, "unreachable substrate mode");
  return "?";
}

SubstrateMode parse_substrate_mode(const std::string& name) {
  if (name == "dense") return SubstrateMode::kDense;
  if (name == "sparse_csr" || name == "csr") return SubstrateMode::kSparseCsr;
  if (name == "auto") return SubstrateMode::kAuto;
  GCALIB_EXPECTS_MSG(false,
                     "unknown substrate '" + name +
                         "' (expected dense | sparse_csr | auto)");
  return SubstrateMode::kAuto;
}

const char* to_string(SparseMode mode) {
  switch (mode) {
    case SparseMode::kSync:
      return "sync";
    case SparseMode::kAsync:
      return "async";
    case SparseMode::kAuto:
      return "auto";
  }
  GCALIB_ASSERT_MSG(false, "unreachable sparse mode");
  return "?";
}

SparseMode parse_sparse_mode(const std::string& name) {
  if (name == "sync") return SparseMode::kSync;
  if (name == "async") return SparseMode::kAsync;
  if (name == "auto") return SparseMode::kAuto;
  GCALIB_EXPECTS_MSG(false, "unknown sparse mode '" + name +
                                "' (expected sync | async | auto)");
  return SparseMode::kAuto;
}

void EngineOptions::validate() const {
  GCALIB_EXPECTS_MSG(hands >= 1, "engine options: hands must be >= 1");
  GCALIB_EXPECTS_MSG(threads >= 1, "engine options: threads must be >= 1");
  GCALIB_EXPECTS_MSG(!(threads > 1 && policy == ExecutionPolicy::kSequential),
                     "engine options: threads > 1 requires a parallel policy "
                     "(spawn or pool)");
  GCALIB_EXPECTS_MSG(!(record_access && parallel()),
                     "engine options: access-edge recording requires a "
                     "sequential sweep (threads == 1)");
  GCALIB_EXPECTS_MSG(kernel_variant_supported(kernels),
                     std::string("engine options: kernel variant '") +
                         to_string(kernels) +
                         "' is not supported on this host");
}

EngineOptions options_from_flags(const cli::EngineFlags& flags) {
  const EngineOptions options =
      EngineOptions{}
          .with_threads(flags.threads)
          .with_policy(parse_execution_policy(flags.policy))
          .with_instrumentation(flags.instrumentation)
          .with_record_access(flags.record_access)
          .with_sweep(parse_sweep_mode(flags.sweep))
          .with_substrate(parse_substrate_mode(flags.substrate))
          .with_sparse_mode(parse_sparse_mode(flags.sparse_mode))
          .with_kernels(parse_kernel_variant(flags.kernels));
  options.validate();
  return options;
}

EngineOptions options_from_flags_or_exit(const cli::EngineFlags& flags) {
  try {
    return options_from_flags(flags);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    std::exit(2);
  }
}

}  // namespace gcalib::gca
