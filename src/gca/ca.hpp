// Classical cellular automata as the degenerate GCA case.
//
// The paper's introduction derives the GCA as a generalisation of the CA:
// if every cell's pointers are fixed to its local neighbourhood forever,
// the GCA *is* a CA.  This adapter makes that subsumption a library
// feature: a 2-D CA over an arbitrary state type and neighbourhood runs on
// the same Engine as the Hirschberg machine (k-handed with k = the
// neighbourhood size, all pointers static).
#pragma once

#include <cstdint>
#include <functional>
#include <utility>
#include <vector>

#include "gca/engine.hpp"
#include "gca/field.hpp"

namespace gcalib::gca {

/// Relative neighbourhood offsets (row delta, column delta).
using Neighborhood = std::vector<std::pair<int, int>>;

/// The 4-neighbourhood (von Neumann) and 8-neighbourhood (Moore).
[[nodiscard]] Neighborhood von_neumann_neighborhood();
[[nodiscard]] Neighborhood moore_neighborhood();

/// Boundary handling.
enum class Boundary {
  kTorus,  ///< wrap around
  kFixed,  ///< out-of-field neighbours read as a constant state
};

/// A synchronous 2-D cellular automaton over byte states, executed on the
/// generic GCA engine (each neighbour access is a genuine engine read, so
/// instrumentation and the k-handed discipline apply).
class CellularAutomaton {
 public:
  /// `rule(self, neighbors) -> next state`; `neighbors` are delivered in
  /// neighbourhood order.
  using Rule =
      std::function<std::uint8_t(std::uint8_t, const std::vector<std::uint8_t>&)>;

  CellularAutomaton(FieldGeometry geometry, Neighborhood neighborhood,
                    Boundary boundary, std::uint8_t boundary_state = 0);

  [[nodiscard]] const FieldGeometry& geometry() const { return geometry_; }
  [[nodiscard]] const Engine<std::uint8_t>& engine() const { return engine_; }

  /// Sets the initial configuration (row-major, geometry().size() cells).
  void set_state(const std::vector<std::uint8_t>& cells);

  [[nodiscard]] const std::vector<std::uint8_t>& state() const {
    return engine_.states();
  }
  [[nodiscard]] std::uint8_t at(std::size_t row, std::size_t col) const {
    return engine_.state(geometry_.index_of(row, col));
  }

  /// Advances one synchronous generation.
  GenerationStats step(const Rule& rule);

  /// Advances `generations` steps.
  void run(const Rule& rule, std::size_t generations);

  /// Number of cells in a given state.
  [[nodiscard]] std::size_t census(std::uint8_t state) const;

 private:
  FieldGeometry geometry_;
  Neighborhood neighborhood_;
  Boundary boundary_;
  std::uint8_t boundary_state_;
  Engine<std::uint8_t> engine_;
};

/// Conway's Game of Life rule (B3/S23) for use with the Moore
/// neighbourhood.
[[nodiscard]] CellularAutomaton::Rule game_of_life_rule();

/// Two-state majority rule: adopt the majority of self + neighbours
/// (self-inclusive; ties keep the current state).
[[nodiscard]] CellularAutomaton::Rule majority_rule();

/// Parity (XOR) rule over the neighbourhood — the classic linear CA.
[[nodiscard]] CellularAutomaton::Rule parity_rule();

/// One-dimensional elementary cellular automaton (Wolfram rule numbering,
/// 0..255) on the GCA engine: each cell reads its two ring neighbours
/// (2-handed) and applies the 3-bit lookup table.
class ElementaryCA {
 public:
  ElementaryCA(std::size_t width, unsigned rule,
               Boundary boundary = Boundary::kTorus);

  [[nodiscard]] std::size_t width() const { return engine_.size(); }
  [[nodiscard]] unsigned rule() const { return rule_; }

  void set_state(const std::vector<std::uint8_t>& cells);
  /// Clears the row and sets the middle cell to 1 (the canonical seed).
  void seed_center();

  [[nodiscard]] const std::vector<std::uint8_t>& state() const {
    return engine_.states();
  }
  [[nodiscard]] std::uint8_t at(std::size_t i) const { return engine_.state(i); }

  GenerationStats step();
  void run(std::size_t generations);

  [[nodiscard]] std::size_t live_count() const;

 private:
  unsigned rule_;
  Boundary boundary_;
  Engine<std::uint8_t> engine_;
};

}  // namespace gcalib::gca
