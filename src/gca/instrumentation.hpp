// Per-generation measurement records for GCA runs.
//
// Table 1 of the paper characterises every generation by the number of
// active cells (cells that modify their state), the number of cells that
// are read, and the congestion delta — how many concurrent read accesses
// each read cell receives.  `GenerationStats` captures exactly those
// quantities from an instrumented engine step, as congestion *classes*
// (delta value -> number of target cells with that delta) so the bench can
// print rows in the same shape as the paper's table.
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace gcalib::gca {

/// Measurements of one engine step (one generation or sub-generation).
struct GenerationStats {
  std::uint64_t generation = 0;   ///< global step counter value
  std::string label;              ///< e.g. "gen2", "gen3.sub1"
  std::size_t cell_count = 0;     ///< field size
  std::size_t active_cells = 0;   ///< cells whose rule produced a new state
  std::size_t total_reads = 0;    ///< sum of all global read accesses
  std::size_t cells_read = 0;     ///< distinct cells that were read
  std::size_t max_congestion = 0; ///< max reads received by any one cell

  /// delta -> number of cells read exactly delta times (delta >= 1).
  std::map<std::size_t, std::size_t> congestion_classes;

  /// Cells receiving no read this step (= cell_count - cells_read).
  [[nodiscard]] std::size_t cells_unread() const {
    return cell_count - cells_read;
  }
};

/// Aggregates several (sub-)generation records, e.g. the log n
/// sub-generations of a tree-reduction generation, into one summary row.
struct GenerationSummary {
  std::string label;
  std::size_t steps = 0;
  std::size_t active_cells_total = 0;
  std::size_t active_cells_first = 0;  ///< paper reports first sub-generation
  std::size_t total_reads = 0;
  std::size_t cells_read_total = 0;
  std::size_t max_congestion = 0;
};

[[nodiscard]] GenerationSummary summarize(const std::string& label,
                                          const std::vector<GenerationStats>& steps);

}  // namespace gcalib::gca
