// Per-generation measurement records for GCA runs.
//
// Table 1 of the paper characterises every generation by the number of
// active cells (cells that modify their state), the number of cells that
// are read, and the congestion delta — how many concurrent read accesses
// each read cell receives.  `GenerationStats` captures exactly those
// quantities from an instrumented engine step, as congestion *classes*
// (delta value -> number of target cells with that delta) so the bench can
// print rows in the same shape as the paper's table.
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace gcalib::gca {

/// Wall-clock timing of one lane (= chunk) of a parallel sweep.  Chunk w of
/// the spawn backend always runs on thread w; the pool backend multiplexes
/// chunks over its lanes but the chunk partition — and therefore this
/// record's identity and cell range — is the same.
struct LaneTiming {
  unsigned lane = 0;              ///< chunk index of the sweep partition
  std::uint64_t start_ns = 0;     ///< steady-clock stamp at chunk start
  std::uint64_t duration_ns = 0;  ///< wall-clock of the chunk sweep
  std::size_t cells = 0;          ///< cells swept by this chunk
};

/// Measurements of one engine step (one generation or sub-generation).
///
/// The logical counters (active cells, reads, congestion — the paper's
/// Table 1 quantities) are bit-identical across all execution backends.
/// The timing fields are wall-clock measurements filled only while a
/// `MetricsSink` is attached to the engine (gca/metrics.hpp); they
/// naturally vary between runs and backends.
struct GenerationStats {
  std::uint64_t generation = 0;   ///< global step counter value
  std::string label;              ///< e.g. "gen2", "gen3.sub1"
  std::size_t cell_count = 0;     ///< field size
  std::size_t active_cells = 0;   ///< cells whose rule produced a new state
  std::size_t total_reads = 0;    ///< sum of all global read accesses
  std::size_t cells_read = 0;     ///< distinct cells that were read
  std::size_t max_congestion = 0; ///< max reads received by any one cell

  /// delta -> number of cells read exactly delta times (delta >= 1).
  std::map<std::size_t, std::size_t> congestion_classes;

  // --- physical counters (vary with SweepMode, never with backend) ------

  /// Cells the engine actually iterated this step.  Equal to `cell_count`
  /// under dense sweeps; under sparse sweeps it is the advertised region's
  /// size.  Like the timing fields below, this measures the *execution*,
  /// not the algorithm: the logical Table-1 counters above are computed
  /// over the full logical field in both modes.
  std::size_t cells_swept = 0;

  // --- wall-clock timing (zero unless a MetricsSink was attached) -------
  std::uint64_t start_ns = 0;     ///< steady-clock stamp at sweep start
  std::uint64_t duration_ns = 0;  ///< wall-clock of the whole step
  std::vector<LaneTiming> lane_times;  ///< per-chunk timing (parallel sweeps)

  /// Cells receiving no read this step (= cell_count - cells_read, clamped
  /// to zero: a read override or hand-merged multi-field stats can push
  /// cells_read past cell_count, and the difference must not wrap).
  [[nodiscard]] std::size_t cells_unread() const {
    return cells_read < cell_count ? cell_count - cells_read : 0;
  }

  /// True iff the *logical* (Table-1) projection of two records matches:
  /// generation counter, label, field size, active cells, reads and the
  /// full congestion histogram.  Physical fields (cells_swept, timing)
  /// are excluded — they legitimately differ between sweep modes and
  /// between timed and untimed runs.
  [[nodiscard]] bool logically_equal(const GenerationStats& other) const {
    return generation == other.generation && label == other.label &&
           cell_count == other.cell_count &&
           active_cells == other.active_cells &&
           total_reads == other.total_reads &&
           cells_read == other.cells_read &&
           max_congestion == other.max_congestion &&
           congestion_classes == other.congestion_classes;
  }
};

/// Aggregates several (sub-)generation records, e.g. the log n
/// sub-generations of a tree-reduction generation, into one summary row.
struct GenerationSummary {
  std::string label;
  std::size_t steps = 0;
  std::size_t active_cells_total = 0;
  std::size_t active_cells_first = 0;  ///< paper reports first sub-generation
  std::size_t total_reads = 0;
  std::size_t cells_read_total = 0;
  std::size_t max_congestion = 0;
};

[[nodiscard]] GenerationSummary summarize(const std::string& label,
                                          const std::vector<GenerationStats>& steps);

}  // namespace gcalib::gca
