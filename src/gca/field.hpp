// Field geometry for matrix-shaped GCA cell fields.
//
// The paper arranges cells in an (n+1) x n matrix addressed by a linear
// index: index = j*n + i with j = row in 0..n and i = column in 0..n-1.
// The first n rows form the square working field D-square, the extra bottom
// row D_N buffers intermediate vectors.  This type centralises that
// arithmetic so every module (rule, trace, hardware model) agrees on it.
#pragma once

#include <cstddef>

#include "common/assert.hpp"

namespace gcalib::gca {

/// Geometry of a rows x cols cell field with row-major linear indexing.
class FieldGeometry {
 public:
  constexpr FieldGeometry(std::size_t rows, std::size_t cols)
      : rows_(rows), cols_(cols) {
    GCALIB_EXPECTS(rows >= 1 && cols >= 1);
  }

  /// The paper's layout for problem size n: (n+1) rows by n columns.
  [[nodiscard]] static constexpr FieldGeometry hirschberg(std::size_t n) {
    return FieldGeometry(n + 1, n);
  }

  [[nodiscard]] constexpr std::size_t rows() const { return rows_; }
  [[nodiscard]] constexpr std::size_t cols() const { return cols_; }
  [[nodiscard]] constexpr std::size_t size() const { return rows_ * cols_; }

  [[nodiscard]] constexpr std::size_t row(std::size_t index) const {
    GCALIB_EXPECTS(index < size());
    return index / cols_;
  }

  [[nodiscard]] constexpr std::size_t col(std::size_t index) const {
    GCALIB_EXPECTS(index < size());
    return index % cols_;
  }

  [[nodiscard]] constexpr std::size_t index_of(std::size_t row,
                                               std::size_t col) const {
    GCALIB_EXPECTS(row < rows_ && col < cols_);
    return row * cols_ + col;
  }

  /// True iff `index` lies in the square part (paper: D-square), i.e. not in
  /// the extra bottom row.  Only meaningful for the hirschberg() layout.
  [[nodiscard]] constexpr bool in_square(std::size_t index) const {
    return row(index) + 1 < rows_;
  }

  /// True iff `index` lies in the extra bottom row (paper: D_N).
  [[nodiscard]] constexpr bool in_bottom_row(std::size_t index) const {
    return row(index) + 1 == rows_;
  }

  friend constexpr bool operator==(const FieldGeometry&,
                                   const FieldGeometry&) = default;

 private:
  std::size_t rows_;
  std::size_t cols_;
};

}  // namespace gcalib::gca
