#include "graph/io.hpp"

#include <istream>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace gcalib::graph {

void write_edge_list(std::ostream& os, const Graph& g) {
  os << g.node_count() << ' ' << g.edge_count() << '\n';
  for (const Edge& e : g.edges()) os << e.u << ' ' << e.v << '\n';
}

namespace {

/// Parse failure with the 1-based line number it occurred on.
[[noreturn]] void parse_fail(const char* format, std::size_t line,
                             const std::string& what) {
  throw std::runtime_error(std::string(format) + " line " +
                           std::to_string(line) + ": " + what);
}

[[nodiscard]] bool is_blank(const std::string& line) {
  return line.find_first_not_of(" \t\r") == std::string::npos;
}

}  // namespace

Graph read_edge_list(std::istream& is) {
  std::string line;
  std::size_t lineno = 0;
  std::size_t n = 0, m = 0;
  bool have_header = false;
  while (!have_header && std::getline(is, line)) {
    ++lineno;
    if (is_blank(line)) continue;
    std::istringstream ls(line);
    std::string junk;
    if (!(ls >> n >> m) || (ls >> junk)) {
      parse_fail("edge list", lineno, "malformed header (expected \"n m\")");
    }
    have_header = true;
  }
  if (!have_header) {
    parse_fail("edge list", lineno + 1, "missing \"n m\" header");
  }
  Graph g(static_cast<NodeId>(n));
  std::size_t edges = 0;
  while (edges < m && std::getline(is, line)) {
    ++lineno;
    if (is_blank(line)) continue;
    std::istringstream ls(line);
    std::size_t u = 0, v = 0;
    std::string junk;
    if (!(ls >> u >> v) || (ls >> junk)) {
      parse_fail("edge list", lineno, "malformed edge (expected \"u v\")");
    }
    if (u >= n || v >= n) {
      parse_fail("edge list", lineno,
                 "node out of range (ids must be < " + std::to_string(n) + ")");
    }
    g.add_edge(static_cast<NodeId>(u), static_cast<NodeId>(v));
    ++edges;
  }
  if (edges < m) {
    parse_fail("edge list", lineno + 1,
               "truncated: only " + std::to_string(edges) + " of " +
                   std::to_string(m) + " edges before end of input");
  }
  return g;
}

void write_dimacs(std::ostream& os, const Graph& g) {
  os << "p edge " << g.node_count() << ' ' << g.edge_count() << '\n';
  for (const Edge& e : g.edges()) os << "e " << e.u + 1 << ' ' << e.v + 1 << '\n';
}

Graph read_dimacs(std::istream& is) {
  std::string line;
  std::size_t lineno = 0;
  Graph g;
  bool have_header = false;
  while (std::getline(is, line)) {
    ++lineno;
    if (is_blank(line) || line[0] == 'c') continue;
    std::istringstream ls(line);
    char tag = 0;
    ls >> tag;
    std::string junk;
    if (tag == 'c') continue;  // comment with leading whitespace
    if (tag == 'p') {
      if (have_header) {
        parse_fail("dimacs", lineno, "duplicate problem line");
      }
      std::string kind;
      std::size_t n = 0, m = 0;
      if (!(ls >> kind >> n >> m) || kind != "edge" || (ls >> junk)) {
        parse_fail("dimacs", lineno,
                   "bad problem line (expected \"p edge <n> <m>\")");
      }
      g = Graph(static_cast<NodeId>(n));
      have_header = true;
    } else if (tag == 'e') {
      if (!have_header) {
        parse_fail("dimacs", lineno, "edge line before the problem line");
      }
      std::size_t u = 0, v = 0;
      if (!(ls >> u >> v) || (ls >> junk)) {
        parse_fail("dimacs", lineno, "bad edge line (expected \"e <u> <v>\")");
      }
      if (u == 0 || v == 0 || u > g.node_count() || v > g.node_count()) {
        parse_fail("dimacs", lineno,
                   "node out of range (1-based ids must be <= " +
                       std::to_string(g.node_count()) + ")");
      }
      g.add_edge(static_cast<NodeId>(u - 1), static_cast<NodeId>(v - 1));
    } else {
      parse_fail("dimacs", lineno,
                 std::string("unknown line tag '") + tag + "'");
    }
  }
  if (!have_header) {
    parse_fail("dimacs", lineno + 1, "missing problem line");
  }
  return g;
}

Graph parse_matrix(const std::string& text) {
  std::vector<std::string> rows;
  std::string current;
  for (char c : text) {
    if (c == '0' || c == '.') {
      current.push_back('0');
    } else if (c == '1') {
      current.push_back('1');
    } else if (!current.empty()) {
      rows.push_back(std::move(current));
      current.clear();
    }
  }
  if (!current.empty()) rows.push_back(std::move(current));
  const std::size_t n = rows.size();
  AdjacencyMatrix matrix(static_cast<NodeId>(n));
  for (std::size_t i = 0; i < n; ++i) {
    if (rows[i].size() != n) {
      throw std::runtime_error("matrix literal is not square");
    }
    for (std::size_t j = 0; j < n; ++j) {
      if (rows[i][j] != '1') continue;
      if (i == j) {
        throw std::runtime_error("matrix literal has a nonzero diagonal");
      }
      if (rows[j][i] != '1') {
        throw std::runtime_error("matrix literal is not symmetric");
      }
      matrix.add_edge(static_cast<NodeId>(i), static_cast<NodeId>(j));
    }
  }
  return Graph::from_matrix(matrix);
}

std::string format_matrix(const Graph& g) {
  std::string out;
  const NodeId n = g.node_count();
  out.reserve((std::size_t{n} + 1) * n);
  for (NodeId i = 0; i < n; ++i) {
    for (NodeId j = 0; j < n; ++j) out.push_back(g.has_edge(i, j) && i != j ? '1' : '0');
    out.push_back('\n');
  }
  return out;
}

}  // namespace gcalib::graph
