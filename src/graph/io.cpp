#include "graph/io.hpp"

#include <istream>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace gcalib::graph {

void write_edge_list(std::ostream& os, const Graph& g) {
  os << g.node_count() << ' ' << g.edge_count() << '\n';
  for (const Edge& e : g.edges()) os << e.u << ' ' << e.v << '\n';
}

Graph read_edge_list(std::istream& is) {
  std::size_t n = 0, m = 0;
  if (!(is >> n >> m)) throw std::runtime_error("edge list: missing header");
  Graph g(static_cast<NodeId>(n));
  for (std::size_t i = 0; i < m; ++i) {
    std::size_t u = 0, v = 0;
    if (!(is >> u >> v)) throw std::runtime_error("edge list: truncated");
    if (u >= n || v >= n) throw std::runtime_error("edge list: node out of range");
    g.add_edge(static_cast<NodeId>(u), static_cast<NodeId>(v));
  }
  return g;
}

void write_dimacs(std::ostream& os, const Graph& g) {
  os << "p edge " << g.node_count() << ' ' << g.edge_count() << '\n';
  for (const Edge& e : g.edges()) os << "e " << e.u + 1 << ' ' << e.v + 1 << '\n';
}

Graph read_dimacs(std::istream& is) {
  std::string line;
  Graph g;
  bool have_header = false;
  while (std::getline(is, line)) {
    if (line.empty() || line[0] == 'c') continue;
    std::istringstream ls(line);
    char tag = 0;
    ls >> tag;
    if (tag == 'p') {
      std::string kind;
      std::size_t n = 0, m = 0;
      if (!(ls >> kind >> n >> m) || kind != "edge") {
        throw std::runtime_error("dimacs: bad problem line");
      }
      g = Graph(static_cast<NodeId>(n));
      have_header = true;
    } else if (tag == 'e') {
      if (!have_header) throw std::runtime_error("dimacs: edge before header");
      std::size_t u = 0, v = 0;
      if (!(ls >> u >> v) || u == 0 || v == 0 || u > g.node_count() ||
          v > g.node_count()) {
        throw std::runtime_error("dimacs: bad edge line");
      }
      g.add_edge(static_cast<NodeId>(u - 1), static_cast<NodeId>(v - 1));
    } else {
      throw std::runtime_error("dimacs: unknown line tag");
    }
  }
  if (!have_header) throw std::runtime_error("dimacs: missing problem line");
  return g;
}

Graph parse_matrix(const std::string& text) {
  std::vector<std::string> rows;
  std::string current;
  for (char c : text) {
    if (c == '0' || c == '.') {
      current.push_back('0');
    } else if (c == '1') {
      current.push_back('1');
    } else if (!current.empty()) {
      rows.push_back(std::move(current));
      current.clear();
    }
  }
  if (!current.empty()) rows.push_back(std::move(current));
  const std::size_t n = rows.size();
  AdjacencyMatrix matrix(static_cast<NodeId>(n));
  for (std::size_t i = 0; i < n; ++i) {
    if (rows[i].size() != n) {
      throw std::runtime_error("matrix literal is not square");
    }
    for (std::size_t j = 0; j < n; ++j) {
      if (rows[i][j] != '1') continue;
      if (i == j) {
        throw std::runtime_error("matrix literal has a nonzero diagonal");
      }
      if (rows[j][i] != '1') {
        throw std::runtime_error("matrix literal is not symmetric");
      }
      matrix.add_edge(static_cast<NodeId>(i), static_cast<NodeId>(j));
    }
  }
  return Graph::from_matrix(matrix);
}

std::string format_matrix(const Graph& g) {
  std::string out;
  const NodeId n = g.node_count();
  out.reserve((std::size_t{n} + 1) * n);
  for (NodeId i = 0; i < n; ++i) {
    for (NodeId j = 0; j < n; ++j) out.push_back(g.has_edge(i, j) && i != j ? '1' : '0');
    out.push_back('\n');
  }
  return out;
}

}  // namespace gcalib::graph
