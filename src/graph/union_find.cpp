#include "graph/union_find.hpp"

#include <algorithm>

namespace gcalib::graph {

UnionFind::UnionFind(NodeId n) : parent_(n), rank_(n, 0), sets_(n) {
  for (NodeId i = 0; i < n; ++i) parent_[i] = i;
}

NodeId UnionFind::find(NodeId x) {
  GCALIB_EXPECTS(x < parent_.size());
  while (parent_[x] != x) {
    parent_[x] = parent_[parent_[x]];  // path halving
    x = parent_[x];
  }
  return x;
}

bool UnionFind::unite(NodeId a, NodeId b) {
  NodeId ra = find(a);
  NodeId rb = find(b);
  if (ra == rb) return false;
  if (rank_[ra] < rank_[rb]) std::swap(ra, rb);
  parent_[rb] = ra;
  if (rank_[ra] == rank_[rb]) ++rank_[ra];
  --sets_;
  return true;
}

std::vector<NodeId> UnionFind::min_labels() {
  const NodeId n = size();
  std::vector<NodeId> min_of_root(n);
  for (NodeId i = 0; i < n; ++i) min_of_root[i] = n;  // sentinel: none yet
  // Scanning in ascending id order, the first member seen per root is the
  // minimum id of that set.
  std::vector<NodeId> roots(n);
  for (NodeId i = 0; i < n; ++i) {
    roots[i] = find(i);
    if (min_of_root[roots[i]] == n) min_of_root[roots[i]] = i;
  }
  std::vector<NodeId> labels(n);
  for (NodeId i = 0; i < n; ++i) labels[i] = min_of_root[roots[i]];
  return labels;
}

std::vector<NodeId> union_find_components(const Graph& g) {
  UnionFind uf(g.node_count());
  for (const Edge& e : g.edges()) uf.unite(e.u, e.v);
  return uf.min_labels();
}

}  // namespace gcalib::graph
