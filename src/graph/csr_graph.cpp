#include "graph/csr_graph.hpp"

#include <algorithm>

#include "common/assert.hpp"

namespace gcalib::graph {

CsrGraph CsrGraph::from_graph(const Graph& g) {
  CsrGraph out;
  out.n_ = g.node_count();
  out.offsets_.assign(std::size_t{out.n_} + 1, 0);
  out.neighbors_.reserve(2 * g.edge_count());
  for (NodeId u = 0; u < out.n_; ++u) {
    const std::vector<NodeId>& adj = g.neighbors(u);
    out.neighbors_.insert(out.neighbors_.end(), adj.begin(), adj.end());
    out.offsets_[u + 1] = out.neighbors_.size();
  }
  return out;
}

CsrGraph CsrGraph::from_edges(NodeId n, const std::vector<Edge>& edges) {
  CsrGraph out;
  out.n_ = n;
  out.offsets_.assign(std::size_t{n} + 1, 0);
  if (n == 0) return out;

  // Two-pass counting sort over the arcs: O(n + m) time, no comparison
  // sort over the full arc array.  Degrees first (offsets_[u + 1] counts
  // arcs of u), then an exclusive scan, then placement.
  for (const Edge& e : edges) {
    GCALIB_EXPECTS_MSG(e.u < n && e.v < n,
                       "csr: edge endpoint out of range");
    if (e.u == e.v) continue;  // self-loops never label anything
    ++out.offsets_[std::size_t{e.u} + 1];
    ++out.offsets_[std::size_t{e.v} + 1];
  }
  for (std::size_t u = 0; u < n; ++u) {
    out.offsets_[u + 1] += out.offsets_[u];
  }
  out.neighbors_.resize(out.offsets_[n]);
  std::vector<std::size_t> cursor(out.offsets_.begin(),
                                  out.offsets_.end() - 1);
  for (const Edge& e : edges) {
    if (e.u == e.v) continue;
    out.neighbors_[cursor[e.u]++] = e.v;
    out.neighbors_[cursor[e.v]++] = e.u;
  }
  // Per-node sort + dedup keeps `neighbors(u)` ascending and collapses
  // parallel edges; compaction rewrites offsets in place.
  std::size_t write = 0;
  std::size_t row_begin = 0;
  for (NodeId u = 0; u < n; ++u) {
    const std::size_t row_end = out.offsets_[u + 1];
    std::sort(out.neighbors_.begin() + static_cast<std::ptrdiff_t>(row_begin),
              out.neighbors_.begin() + static_cast<std::ptrdiff_t>(row_end));
    NodeId last = n;  // impossible neighbour value
    for (std::size_t k = row_begin; k < row_end; ++k) {
      if (out.neighbors_[k] == last) continue;
      last = out.neighbors_[k];
      out.neighbors_[write++] = last;
    }
    row_begin = row_end;
    out.offsets_[u + 1] = write;
  }
  out.neighbors_.resize(write);
  return out;
}

std::vector<NodeId> CsrGraph::edge_balanced_boundaries(unsigned parts) const {
  GCALIB_EXPECTS_MSG(parts >= 1, "csr: partition needs at least one part");
  std::vector<NodeId> bounds(std::size_t{parts} + 1, n_);
  bounds[0] = 0;
  const std::size_t total_arcs = offsets_[n_];
  for (unsigned k = 1; k < parts; ++k) {
    // offsets_ is the (non-decreasing) degree prefix sum, so the first
    // vertex whose prefix exceeds the target arc count is one upper_bound.
    const std::size_t target = total_arcs * k / parts;
    const auto it =
        std::upper_bound(offsets_.begin(), offsets_.end(), target);
    NodeId b = static_cast<NodeId>(it - offsets_.begin());
    if (b > 0) --b;  // offsets_[b] <= target < offsets_[b + 1]
    b -= b % kLineVertices;
    // Keep the sequence monotone; empty ranges are fine (a lane with no
    // vertices just returns immediately).
    bounds[k] = std::max(bounds[k - 1], std::min(b, n_));
  }
  return bounds;
}

double CsrGraph::density() const {
  if (n_ < 2) return 0.0;
  const double pairs =
      static_cast<double>(n_) * static_cast<double>(n_ - 1) / 2.0;
  return static_cast<double>(edge_count()) / pairs;
}

std::uint64_t CsrGraph::content_hash() const {
  // FNV-1a over the structural integers.  Hashing values (not bytes) keeps
  // the digest identical across endianness and std::size_t widths.
  std::uint64_t hash = 0xcbf29ce484222325ull;
  const auto mix = [&hash](std::uint64_t value) {
    for (int shift = 0; shift < 64; shift += 8) {
      hash ^= (value >> shift) & 0xFFu;
      hash *= 0x100000001b3ull;
    }
  };
  mix(n_);
  for (const std::size_t offset : offsets_) mix(offset);
  for (const NodeId arc : neighbors_) mix(arc);
  return hash;
}

Graph CsrGraph::to_graph() const {
  Graph g(n_);
  for (NodeId u = 0; u < n_; ++u) {
    for (const NodeId v : neighbors(u)) {
      if (u < v) g.add_edge(u, v);
    }
  }
  return g;
}

}  // namespace gcalib::graph
