// Undirected graph with both adjacency-list and adjacency-matrix views.
//
// The GCA/PRAM algorithms consume the dense matrix; sequential baselines and
// generators prefer edge/neighbour iteration, so `Graph` keeps both in sync.
#pragma once

#include <utility>
#include <vector>

#include "graph/adjacency_matrix.hpp"

namespace gcalib::graph {

/// An undirected edge as an (ordered) node pair with u < v.
struct Edge {
  NodeId u = 0;
  NodeId v = 0;
  friend bool operator==(const Edge&, const Edge&) = default;
  friend auto operator<=>(const Edge&, const Edge&) = default;
};

/// Simple undirected graph without self-loops or parallel edges.
class Graph {
 public:
  Graph() = default;

  /// Creates an edge-less graph over `n` nodes.
  explicit Graph(NodeId n);

  /// Builds a graph from an edge list (duplicates are collapsed).
  static Graph from_edges(NodeId n, const std::vector<Edge>& edges);

  /// Builds a graph from a dense matrix (must be symmetric, zero diagonal).
  static Graph from_matrix(const AdjacencyMatrix& matrix);

  [[nodiscard]] NodeId node_count() const { return n_; }
  [[nodiscard]] std::size_t edge_count() const { return edges_; }

  [[nodiscard]] bool has_edge(NodeId u, NodeId v) const {
    return matrix_.at(u, v);
  }

  /// Inserts {u, v}; returns false if it was already present.
  bool add_edge(NodeId u, NodeId v);

  /// Neighbours of `u` in ascending order.
  [[nodiscard]] const std::vector<NodeId>& neighbors(NodeId u) const {
    GCALIB_EXPECTS(u < n_);
    return adjacency_[u];
  }

  [[nodiscard]] NodeId degree(NodeId u) const {
    GCALIB_EXPECTS(u < n_);
    return static_cast<NodeId>(adjacency_[u].size());
  }

  /// All edges, each once, sorted by (u, v) with u < v.
  [[nodiscard]] std::vector<Edge> edges() const;

  /// Dense matrix view (the input format of the paper's algorithms).
  [[nodiscard]] const AdjacencyMatrix& matrix() const { return matrix_; }

  /// Edge density m / (n choose 2); 0 for n < 2.
  [[nodiscard]] double density() const;

  friend bool operator==(const Graph& a, const Graph& b) {
    return a.matrix_ == b.matrix_;
  }

 private:
  NodeId n_ = 0;
  std::size_t edges_ = 0;
  AdjacencyMatrix matrix_;
  std::vector<std::vector<NodeId>> adjacency_;
};

}  // namespace gcalib::graph
