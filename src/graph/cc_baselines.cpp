#include "graph/cc_baselines.hpp"

#include <deque>

namespace gcalib::graph {

std::vector<NodeId> bfs_components(const Graph& g) {
  const NodeId n = g.node_count();
  const NodeId unset = n;
  std::vector<NodeId> label(n, unset);
  std::deque<NodeId> queue;
  for (NodeId s = 0; s < n; ++s) {
    if (label[s] != unset) continue;
    label[s] = s;
    queue.push_back(s);
    while (!queue.empty()) {
      const NodeId u = queue.front();
      queue.pop_front();
      for (NodeId v : g.neighbors(u)) {
        if (label[v] == unset) {
          label[v] = s;
          queue.push_back(v);
        }
      }
    }
  }
  return label;
}

std::vector<NodeId> dfs_components(const Graph& g) {
  const NodeId n = g.node_count();
  const NodeId unset = n;
  std::vector<NodeId> label(n, unset);
  std::vector<NodeId> stack;
  for (NodeId s = 0; s < n; ++s) {
    if (label[s] != unset) continue;
    stack.push_back(s);
    label[s] = s;
    while (!stack.empty()) {
      const NodeId u = stack.back();
      stack.pop_back();
      for (NodeId v : g.neighbors(u)) {
        if (label[v] == unset) {
          label[v] = s;
          stack.push_back(v);
        }
      }
    }
  }
  return label;
}

}  // namespace gcalib::graph
