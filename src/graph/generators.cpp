#include "graph/generators.hpp"

#include <algorithm>
#include <numeric>
#include <stdexcept>

#include "common/rng.hpp"

namespace gcalib::graph {
namespace {

/// Fisher–Yates shuffle with our deterministic generator.
void shuffle_ids(std::vector<NodeId>& ids, Xoshiro256& rng) {
  for (std::size_t i = ids.size(); i > 1; --i) {
    const std::size_t j = rng.below(i);
    std::swap(ids[i - 1], ids[j]);
  }
}

}  // namespace

Graph random_gnp(NodeId n, double p, std::uint64_t seed) {
  GCALIB_EXPECTS(p >= 0.0 && p <= 1.0);
  Xoshiro256 rng(seed);
  Graph g(n);
  for (NodeId u = 0; u < n; ++u) {
    for (NodeId v = u + 1; v < n; ++v) {
      if (rng.bernoulli(p)) g.add_edge(u, v);
    }
  }
  return g;
}

Graph random_gnm(NodeId n, std::size_t m, std::uint64_t seed) {
  const std::size_t possible = n < 2 ? 0 : std::size_t{n} * (n - 1) / 2;
  GCALIB_EXPECTS_MSG(m <= possible, "more edges requested than n choose 2");
  Xoshiro256 rng(seed);
  Graph g(n);
  std::size_t added = 0;
  while (added < m) {
    const NodeId u = static_cast<NodeId>(rng.below(n));
    const NodeId v = static_cast<NodeId>(rng.below(n));
    if (u == v) continue;
    if (g.add_edge(u, v)) ++added;
  }
  return g;
}

Graph path(NodeId n) {
  Graph g(n);
  for (NodeId i = 0; i + 1 < n; ++i) g.add_edge(i, i + 1);
  return g;
}

Graph cycle(NodeId n) {
  GCALIB_EXPECTS(n >= 3);
  Graph g = path(n);
  g.add_edge(n - 1, 0);
  return g;
}

Graph star(NodeId n) {
  Graph g(n);
  for (NodeId i = 1; i < n; ++i) g.add_edge(0, i);
  return g;
}

Graph complete(NodeId n) {
  Graph g(n);
  for (NodeId u = 0; u < n; ++u) {
    for (NodeId v = u + 1; v < n; ++v) g.add_edge(u, v);
  }
  return g;
}

Graph grid(NodeId rows, NodeId cols) {
  Graph g(rows * cols);
  const auto id = [cols](NodeId r, NodeId c) { return r * cols + c; };
  for (NodeId r = 0; r < rows; ++r) {
    for (NodeId c = 0; c < cols; ++c) {
      if (c + 1 < cols) g.add_edge(id(r, c), id(r, c + 1));
      if (r + 1 < rows) g.add_edge(id(r, c), id(r + 1, c));
    }
  }
  return g;
}

Graph random_tree(NodeId n, std::uint64_t seed) {
  if (n <= 1) return Graph(n);
  // Random attachment tree over shuffled labels: node ids[i] attaches to a
  // uniformly chosen earlier node ids[j], j < i.  Always a spanning tree.
  Xoshiro256 rng(seed);
  std::vector<NodeId> ids(n);
  std::iota(ids.begin(), ids.end(), NodeId{0});
  shuffle_ids(ids, rng);
  Graph g(n);
  for (NodeId i = 1; i < n; ++i) {
    const NodeId parent = static_cast<NodeId>(rng.below(i));
    g.add_edge(ids[i], ids[parent]);
  }
  return g;
}

Graph disjoint_cliques(const std::vector<NodeId>& sizes) {
  NodeId n = 0;
  for (NodeId s : sizes) {
    GCALIB_EXPECTS(s >= 1);
    n += s;
  }
  Graph g(n);
  NodeId base = 0;
  for (NodeId s : sizes) {
    for (NodeId u = 0; u < s; ++u) {
      for (NodeId v = u + 1; v < s; ++v) g.add_edge(base + u, base + v);
    }
    base += s;
  }
  return g;
}

Graph planted_components(NodeId n, NodeId k, double p_in, std::uint64_t seed) {
  GCALIB_EXPECTS(k >= 1 && k <= n);
  Xoshiro256 rng(seed);
  std::vector<NodeId> ids(n);
  std::iota(ids.begin(), ids.end(), NodeId{0});
  shuffle_ids(ids, rng);

  Graph g(n);
  // Split the shuffled ids into k nearly equal blocks.
  const NodeId base_size = n / k;
  NodeId extra = n % k;
  std::size_t offset = 0;
  for (NodeId c = 0; c < k; ++c) {
    const NodeId size = base_size + (c < extra ? 1 : 0);
    if (size == 0) continue;
    // Random spanning tree over the block guarantees connectivity.
    for (NodeId i = 1; i < size; ++i) {
      const NodeId parent = static_cast<NodeId>(rng.below(i));
      g.add_edge(ids[offset + i], ids[offset + parent]);
    }
    // Extra internal edges with probability p_in.
    for (NodeId i = 0; i < size; ++i) {
      for (NodeId j = i + 1; j < size; ++j) {
        if (rng.bernoulli(p_in)) g.add_edge(ids[offset + i], ids[offset + j]);
      }
    }
    offset += size;
  }
  return g;
}

Graph caterpillar(NodeId spine, NodeId legs) {
  GCALIB_EXPECTS(spine >= 1);
  Graph g(spine + spine * legs);
  for (NodeId i = 0; i + 1 < spine; ++i) g.add_edge(i, i + 1);
  NodeId next = spine;
  for (NodeId i = 0; i < spine; ++i) {
    for (NodeId l = 0; l < legs; ++l) g.add_edge(i, next++);
  }
  return g;
}

Graph complete_bipartite(NodeId a, NodeId b) {
  Graph g(a + b);
  for (NodeId u = 0; u < a; ++u) {
    for (NodeId v = 0; v < b; ++v) g.add_edge(u, a + v);
  }
  return g;
}

Graph empty_graph(NodeId n) { return Graph(n); }

Graph make_named(const std::string& spec, NodeId n, std::uint64_t seed) {
  const auto split = [](const std::string& s) {
    std::vector<std::string> parts;
    std::size_t start = 0;
    while (true) {
      const std::size_t colon = s.find(':', start);
      parts.push_back(s.substr(start, colon - start));
      if (colon == std::string::npos) break;
      start = colon + 1;
    }
    return parts;
  };
  const std::vector<std::string> parts = split(spec);
  const std::string& kind = parts[0];

  if (kind == "gnp") {
    const double p = parts.size() > 1 ? std::stod(parts[1]) : 0.1;
    return random_gnp(n, p, seed);
  }
  if (kind == "gnm") {
    const std::size_t m =
        parts.size() > 1 ? std::stoull(parts[1]) : std::size_t{n} * 2;
    return random_gnm(n, m, seed);
  }
  if (kind == "path") return path(n);
  if (kind == "cycle") return cycle(n);
  if (kind == "star") return star(n);
  if (kind == "complete") return complete(n);
  if (kind == "tree") return random_tree(n, seed);
  if (kind == "empty") return empty_graph(n);
  if (kind == "grid") {
    const NodeId rows = parts.size() > 1
                            ? static_cast<NodeId>(std::stoul(parts[1]))
                            : NodeId{1};
    GCALIB_EXPECTS(rows >= 1 && n % rows == 0);
    return grid(rows, n / rows);
  }
  if (kind == "cliques") {
    const NodeId k = parts.size() > 1 ? static_cast<NodeId>(std::stoul(parts[1]))
                                      : NodeId{4};
    GCALIB_EXPECTS(k >= 1 && k <= n);
    std::vector<NodeId> sizes(k, n / k);
    for (NodeId i = 0; i < n % k; ++i) ++sizes[i];
    return disjoint_cliques(sizes);
  }
  if (kind == "planted") {
    const NodeId k = parts.size() > 1 ? static_cast<NodeId>(std::stoul(parts[1]))
                                      : NodeId{4};
    const double p = parts.size() > 2 ? std::stod(parts[2]) : 0.2;
    return planted_components(n, k, p, seed);
  }
  if (kind == "bipartite") {
    const NodeId a = parts.size() > 1 ? static_cast<NodeId>(std::stoul(parts[1]))
                                      : n / 2;
    GCALIB_EXPECTS(a <= n);
    return complete_bipartite(a, n - a);
  }
  throw std::runtime_error("unknown graph family: " + spec);
}

std::vector<std::string> named_families() {
  return {"gnp:<p>",      "gnm:<m>",  "path",       "cycle",
          "star",         "complete", "tree",       "empty",
          "grid:<rows>",  "cliques:<k>", "planted:<k>:<p>", "bipartite:<a>"};
}

}  // namespace gcalib::graph
