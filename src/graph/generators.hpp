// Deterministic graph generators used as workloads for tests, examples and
// the benchmark sweeps.
//
// The paper targets dense graphs (Hirschberg's algorithm is work-optimal for
// m = Theta(n^2)) but the GCA mapping is correct for any undirected graph,
// so the generator set spans the full density range plus structured families
// with known component structure for oracle-free checks.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "graph/graph.hpp"

namespace gcalib::graph {

/// Erdős–Rényi G(n, p): every possible edge present with probability p.
[[nodiscard]] Graph random_gnp(NodeId n, double p, std::uint64_t seed);

/// Random graph with exactly m distinct edges chosen uniformly.
[[nodiscard]] Graph random_gnm(NodeId n, std::size_t m, std::uint64_t seed);

/// Simple path 0-1-2-...-(n-1); one component, diameter n-1 (stress case for
/// the pointer-jumping step).
[[nodiscard]] Graph path(NodeId n);

/// Cycle over n nodes (requires n >= 3).
[[nodiscard]] Graph cycle(NodeId n);

/// Star with centre 0 and n-1 leaves.
[[nodiscard]] Graph star(NodeId n);

/// Complete graph K_n — the dense regime the algorithm is optimal for.
[[nodiscard]] Graph complete(NodeId n);

/// rows x cols grid graph (4-neighbourhood).
[[nodiscard]] Graph grid(NodeId rows, NodeId cols);

/// Uniformly random spanning tree over n nodes (random Prüfer sequence).
[[nodiscard]] Graph random_tree(NodeId n, std::uint64_t seed);

/// Union of `k` cliques with the given sizes; node ids are assigned in
/// blocks, so component c spans a contiguous id range.  Known answer:
/// exactly `sizes.size()` components.
[[nodiscard]] Graph disjoint_cliques(const std::vector<NodeId>& sizes);

/// `k` planted components, each an independent G(size, p_in) that is then
/// connected (a random spanning tree is added so every planted part really
/// is one component).  Node ids are shuffled so components are interleaved.
/// Known answer: exactly `k` components (plus any isolated remainder nodes).
[[nodiscard]] Graph planted_components(NodeId n, NodeId k, double p_in,
                                       std::uint64_t seed);

/// Caterpillar: a path spine of `spine` nodes, each with `legs` leaves.
[[nodiscard]] Graph caterpillar(NodeId spine, NodeId legs);

/// Complete bipartite graph K_{a,b}.
[[nodiscard]] Graph complete_bipartite(NodeId a, NodeId b);

/// n isolated nodes (no edges): n components.
[[nodiscard]] Graph empty_graph(NodeId n);

/// Named generator dispatch used by CLI tools:
/// "gnp:<p>", "gnm:<m>", "path", "cycle", "star", "complete", "tree",
/// "cliques:<k>", "planted:<k>:<p>", "grid:<rows>", "bipartite:<a>", "empty".
[[nodiscard]] Graph make_named(const std::string& spec, NodeId n,
                               std::uint64_t seed);

/// The list of specs accepted by `make_named` (for --help output / sweeps).
[[nodiscard]] std::vector<std::string> named_families();

}  // namespace gcalib::graph
