// Spanning-forest certificates — independently checkable witnesses that a
// labeling is *the* canonical min-id connected-components labeling.
//
// `self_check_labels` (core/sparse_cc_solver.cpp) re-solves the query with
// a sequential union-find and compares — a strong oracle, but one the
// caller has to trust as much as the solver.  A certificate is stronger in
// the auditing sense: `build_certificate` extracts a per-component BFS
// forest from the final labels in O(n + m), and `verify_certificate` then
// proves the labeling correct *from the forest alone*, also in O(n + m),
// without re-running any solver:
//
//  (a) every edge {u, v} has label[u] == label[v] — no component is split;
//  (b) every non-root vertex has a parent that is a real neighbour with
//      the same label, and the parent chains are acyclic down to the root —
//      each label class is genuinely connected, so no two components were
//      merged;
//  (c) every root satisfies label[root] == root and every vertex
//      label[v] <= v — together with (b) this forces label[v] to be the
//      *minimum* id of v's component: the minimum m of a class labelled r
//      has label[m] = r <= m by (c), and r is in the class by (b), so
//      r == m.
//
// Any labeling passing all three is exactly the canonical min-id labeling
// — a wrong answer cannot be certified, whatever produced it.  The sparse
// resilience path (DESIGN.md §15) uses a failed *build* as a corruption
// detection in its own right: labels corrupted into a state with no
// spanning forest (cross-component lowering, stuck survivors) fail here
// even when every per-round lattice monitor stayed silent.
#pragma once

#include <cstddef>
#include <vector>

#include "common/status.hpp"
#include "graph/csr_graph.hpp"

namespace gcalib::graph {

/// A spanning forest over the label classes: `parent[v]` is v's BFS tree
/// parent (a neighbour of v with the same label), and `parent[r] == r`
/// exactly for the class roots.
struct ForestCertificate {
  std::vector<NodeId> parent;

  friend bool operator==(const ForestCertificate&, const ForestCertificate&) =
      default;
};

/// Extracts a spanning-forest certificate from `labels` in O(n + m): one
/// BFS per label class, rooted at the class's self-labelled vertex.
/// Returns kFailedPrecondition with a diagnosis when no such forest exists
/// — a label out of range, label[v] > v, a class without a root, or a
/// vertex unreachable from its root through same-label edges.  `out` is
/// only written on success.
[[nodiscard]] Status build_certificate(const CsrGraph& g,
                                       const std::vector<NodeId>& labels,
                                       ForestCertificate& out);

/// Proves `labels` is the canonical min-id labeling with `components`
/// components, using only the certificate (checks (a)–(c) above plus the
/// root count).  O(n + m); never re-runs a solver.  Returns
/// kFailedPrecondition with a diagnosis naming the first violated check.
[[nodiscard]] Status verify_certificate(const CsrGraph& g,
                                        const std::vector<NodeId>& labels,
                                        std::size_t components,
                                        const ForestCertificate& cert);

}  // namespace gcalib::graph
