#include "graph/graph.hpp"

#include <algorithm>

namespace gcalib::graph {

Graph::Graph(NodeId n) : n_(n), matrix_(n), adjacency_(n) {}

Graph Graph::from_edges(NodeId n, const std::vector<Edge>& edges) {
  Graph g(n);
  for (const Edge& e : edges) g.add_edge(e.u, e.v);
  return g;
}

Graph Graph::from_matrix(const AdjacencyMatrix& matrix) {
  GCALIB_EXPECTS_MSG(matrix.is_valid_undirected(),
                     "matrix must be symmetric with zero diagonal");
  Graph g(matrix.size());
  for (NodeId i = 0; i < matrix.size(); ++i) {
    for (NodeId j = i + 1; j < matrix.size(); ++j) {
      if (matrix.at(i, j)) g.add_edge(i, j);
    }
  }
  return g;
}

bool Graph::add_edge(NodeId u, NodeId v) {
  GCALIB_EXPECTS(u < n_ && v < n_);
  GCALIB_EXPECTS_MSG(u != v, "self-loops are not representable");
  if (matrix_.at(u, v)) return false;
  matrix_.add_edge(u, v);
  // Keep neighbour lists sorted for deterministic iteration.
  auto insert_sorted = [](std::vector<NodeId>& list, NodeId x) {
    list.insert(std::lower_bound(list.begin(), list.end(), x), x);
  };
  insert_sorted(adjacency_[u], v);
  insert_sorted(adjacency_[v], u);
  ++edges_;
  return true;
}

std::vector<Edge> Graph::edges() const {
  std::vector<Edge> out;
  out.reserve(edges_);
  for (NodeId u = 0; u < n_; ++u) {
    for (NodeId v : adjacency_[u]) {
      if (u < v) out.push_back(Edge{u, v});
    }
  }
  return out;
}

double Graph::density() const {
  if (n_ < 2) return 0.0;
  const double possible = 0.5 * static_cast<double>(n_) * (n_ - 1.0);
  return static_cast<double>(edges_) / possible;
}

}  // namespace gcalib::graph
