// Sequential traversal baselines for connected components.
#pragma once

#include <vector>

#include "graph/graph.hpp"

namespace gcalib::graph {

/// BFS labeling with minimum-id representatives: starting sources in
/// ascending id order makes each source the minimum of its component.
[[nodiscard]] std::vector<NodeId> bfs_components(const Graph& g);

/// Iterative DFS labeling with minimum-id representatives.
[[nodiscard]] std::vector<NodeId> dfs_components(const Graph& g);

}  // namespace gcalib::graph
