// Utilities over component labelings: canonicalisation, validation and
// comparison.  All gcalib algorithms use Hirschberg's convention (each node
// labelled with the minimum node id of its component) so labelings compare
// bit-for-bit; these helpers additionally allow comparing against labelings
// in arbitrary conventions.
#pragma once

#include <cstddef>
#include <vector>

#include "graph/graph.hpp"

namespace gcalib::graph {

/// Number of distinct labels.
[[nodiscard]] std::size_t component_count(const std::vector<NodeId>& labels);

/// Rewrites labels so every node carries the *minimum node id* occurring in
/// its label class.  Idempotent on labelings already in that convention.
[[nodiscard]] std::vector<NodeId> canonicalize_min(const std::vector<NodeId>& labels);

/// True iff the two labelings induce the same partition of nodes (labels
/// themselves may differ).
[[nodiscard]] bool same_partition(const std::vector<NodeId>& a,
                                  const std::vector<NodeId>& b);

/// Full validity check of `labels` as the connected components of `g`:
///  * endpoints of every edge share a label,
///  * every label class is connected in `g` (checked by traversal),
///  * every label equals the minimum node id of its class.
[[nodiscard]] bool is_valid_min_labeling(const Graph& g,
                                         const std::vector<NodeId>& labels);

/// Sizes of each component keyed by representative, ascending by key.
[[nodiscard]] std::vector<std::pair<NodeId, NodeId>> component_sizes(
    const std::vector<NodeId>& labels);

}  // namespace gcalib::graph
