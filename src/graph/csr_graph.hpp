// Immutable CSR (compressed sparse row) adjacency — the sparse substrate.
//
// `Graph` keeps a dense n x n bit matrix in sync with its adjacency lists,
// which is exactly what the paper's cell field wants but caps practical n
// at a few thousand: a million-node graph would need 10^12 matrix bits
// before a single sweep runs.  `CsrGraph` stores only the 2m directed arcs
// in two flat arrays (offsets + neighbour ids), so building it and sweeping
// it are both O(n + m) — the representation behind the O(m)-work label
// propagation solver (core/sparse_cc_solver.hpp, DESIGN.md §12).
//
// The structure is immutable after construction: solvers double-buffer
// labels *next to* it and never mutate the adjacency, which is what makes
// parallel sweeps over it race-free without any per-edge synchronisation.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "graph/graph.hpp"

namespace gcalib::graph {

/// Undirected graph in CSR form: for each node u the neighbours are
/// `neighbors(u)` (ascending, no self-loops, no duplicates); every edge
/// {u, v} appears as the two arcs u->v and v->u.
class CsrGraph {
 public:
  CsrGraph() = default;

  /// Builds the CSR view of an existing dense `Graph` (O(n + m)).
  [[nodiscard]] static CsrGraph from_graph(const Graph& g);

  /// Builds directly from an edge list without ever materialising a dense
  /// matrix — the only constructor that scales to millions of edges.
  /// Self-loops are dropped and duplicate edges collapsed, matching
  /// `Graph::from_edges` semantics.  Throws ContractViolation on an
  /// endpoint >= n.
  [[nodiscard]] static CsrGraph from_edges(NodeId n,
                                           const std::vector<Edge>& edges);

  [[nodiscard]] NodeId node_count() const { return n_; }
  /// Undirected edge count m (arc count is 2m).
  [[nodiscard]] std::size_t edge_count() const { return neighbors_.size() / 2; }

  [[nodiscard]] NodeId degree(NodeId u) const {
    return static_cast<NodeId>(offsets_[u + 1] - offsets_[u]);
  }

  /// Neighbours of u in ascending order, as a view into the arc array.
  [[nodiscard]] std::span<const NodeId> neighbors(NodeId u) const {
    return {neighbors_.data() + offsets_[u], offsets_[u + 1] - offsets_[u]};
  }

  /// Offset array (size n + 1) — bulk kernels index the arc array directly.
  [[nodiscard]] const std::vector<std::size_t>& offsets() const {
    return offsets_;
  }
  /// Arc array (size 2m), ascending within each node's range.
  [[nodiscard]] const std::vector<NodeId>& arcs() const { return neighbors_; }

  /// Edge density m / (n choose 2); 0 for n < 2.
  [[nodiscard]] double density() const;

  /// Vertices per label-array cache line (64 bytes / 4-byte NodeId): the
  /// alignment grain of `edge_balanced_boundaries`, so two sweep lanes
  /// never write labels into the same cache line.
  static constexpr NodeId kLineVertices = 16;

  /// Degree-prefix partition for parallel sweeps: `parts + 1` ascending
  /// vertex boundaries `b[0] = 0 <= b[1] <= ... <= b[parts] = n` such that
  /// every range [b[k], b[k+1]) covers roughly `2m / parts` arcs (the
  /// offsets array *is* the degree prefix sum, so each boundary is one
  /// binary search).  Interior boundaries are rounded down to a
  /// `kLineVertices` multiple, so per-lane label writes stay cache-line
  /// disjoint.  Count-equal vertex partitions starve all but one lane on
  /// skewed degree distributions (a star graph puts every arc in the hub's
  /// range); arc-balanced boundaries keep the lanes loaded.
  [[nodiscard]] std::vector<NodeId> edge_balanced_boundaries(
      unsigned parts) const;

  /// Materialises the dense `Graph` (O(n^2) memory — small graphs only;
  /// round-trip helper for tests and the dense fallback path).
  [[nodiscard]] Graph to_graph() const;

  /// Order-sensitive 64-bit digest of the adjacency structure (FNV-1a over
  /// n, the offset array and the arc array) — the binding a durable sparse
  /// checkpoint (core/checkpoint.hpp, GSKP) carries so a label plane can
  /// never be resumed against a different graph.  Deterministic across
  /// platforms: it hashes the integer values, not their byte layout.
  [[nodiscard]] std::uint64_t content_hash() const;

  friend bool operator==(const CsrGraph&, const CsrGraph&) = default;

 private:
  NodeId n_ = 0;
  std::vector<std::size_t> offsets_ = {0};  ///< size n + 1
  std::vector<NodeId> neighbors_;           ///< size 2m
};

}  // namespace gcalib::graph
