// Graph serialisation: a plain edge-list text format and a DIMACS-like
// format, plus a 0/1 matrix literal parser for tests and examples.
#pragma once

#include <iosfwd>
#include <string>

#include "graph/graph.hpp"

namespace gcalib::graph {

/// Writes "n m" on the first line followed by one "u v" pair per edge.
void write_edge_list(std::ostream& os, const Graph& g);

/// Reads the edge-list format written by `write_edge_list`.
/// Throws std::runtime_error on malformed input.
[[nodiscard]] Graph read_edge_list(std::istream& is);

/// Writes DIMACS: "p edge <n> <m>" header and "e <u+1> <v+1>" lines
/// (DIMACS nodes are 1-based).
void write_dimacs(std::ostream& os, const Graph& g);

/// Reads DIMACS; accepts comment lines starting with 'c'.
[[nodiscard]] Graph read_dimacs(std::istream& is);

/// Parses a square 0/1 matrix from rows of '0'/'1' characters (whitespace
/// and '.' for 0 accepted), e.g. "0110 1001 ...".  Must be symmetric with a
/// zero diagonal.
[[nodiscard]] Graph parse_matrix(const std::string& text);

/// Renders the adjacency matrix as rows of 0/1 characters.
[[nodiscard]] std::string format_matrix(const Graph& g);

}  // namespace gcalib::graph
