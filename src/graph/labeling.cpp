#include "graph/labeling.hpp"

#include <algorithm>
#include <map>

#include "graph/cc_baselines.hpp"

namespace gcalib::graph {

std::size_t component_count(const std::vector<NodeId>& labels) {
  std::vector<NodeId> sorted = labels;
  std::sort(sorted.begin(), sorted.end());
  sorted.erase(std::unique(sorted.begin(), sorted.end()), sorted.end());
  return sorted.size();
}

std::vector<NodeId> canonicalize_min(const std::vector<NodeId>& labels) {
  std::map<NodeId, NodeId> min_of;
  for (NodeId i = 0; i < labels.size(); ++i) {
    const auto [it, inserted] = min_of.emplace(labels[i], i);
    if (!inserted) it->second = std::min(it->second, static_cast<NodeId>(i));
  }
  std::vector<NodeId> out(labels.size());
  for (std::size_t i = 0; i < labels.size(); ++i) out[i] = min_of.at(labels[i]);
  return out;
}

bool same_partition(const std::vector<NodeId>& a, const std::vector<NodeId>& b) {
  if (a.size() != b.size()) return false;
  return canonicalize_min(a) == canonicalize_min(b);
}

bool is_valid_min_labeling(const Graph& g, const std::vector<NodeId>& labels) {
  if (labels.size() != g.node_count()) return false;
  // Edge endpoints must agree.
  for (const Edge& e : g.edges()) {
    if (labels[e.u] != labels[e.v]) return false;
  }
  // Partition must match the traversal oracle (this also enforces that each
  // label class is connected and no component was split).
  const std::vector<NodeId> oracle = bfs_components(g);
  if (!same_partition(labels, oracle)) return false;
  // Labels must be minimum ids of their class.
  return canonicalize_min(labels) == labels;
}

std::vector<std::pair<NodeId, NodeId>> component_sizes(
    const std::vector<NodeId>& labels) {
  std::map<NodeId, NodeId> counts;
  for (NodeId l : labels) ++counts[l];
  return {counts.begin(), counts.end()};
}

}  // namespace gcalib::graph
