#include "graph/certificate.hpp"

#include <algorithm>
#include <string>
#include <utility>

namespace gcalib::graph {

namespace {

[[nodiscard]] Status fail(std::string message) {
  return Status::error(StatusCode::kFailedPrecondition,
                       "certificate: " + std::move(message));
}

/// Shared precondition of both directions: labels must already satisfy the
/// lattice invariants (in range, label[v] <= v) for the min-id argument to
/// go through at all.
[[nodiscard]] Status check_lattice(const NodeId n,
                                   const std::vector<NodeId>& labels) {
  if (labels.size() != n) {
    return fail("label count " + std::to_string(labels.size()) +
                " does not match the graph (n = " + std::to_string(n) + ")");
  }
  for (NodeId v = 0; v < n; ++v) {
    if (labels[v] >= n) {
      return fail("label of vertex " + std::to_string(v) +
                  " is out of range (" + std::to_string(labels[v]) + ")");
    }
    if (labels[v] > v) {
      return fail("label of vertex " + std::to_string(v) +
                  " exceeds the vertex id (" + std::to_string(labels[v]) +
                  " > " + std::to_string(v) + ")");
    }
  }
  return Status{};
}

}  // namespace

Status build_certificate(const CsrGraph& g, const std::vector<NodeId>& labels,
                         ForestCertificate& out) {
  const NodeId n = g.node_count();
  if (Status lattice = check_lattice(n, labels); !lattice.ok()) {
    return lattice;
  }

  const NodeId kUnset = n;
  std::vector<NodeId> parent(n, kUnset);
  std::vector<NodeId> queue;
  queue.reserve(64);

  // One BFS per label class, rooted at the self-labelled vertex.  Every
  // vertex is enqueued at most once and every arc scanned at most once
  // across all classes, so the whole build is O(n + m).
  for (NodeId root = 0; root < n; ++root) {
    if (labels[root] != root) continue;
    parent[root] = root;
    queue.clear();
    queue.push_back(root);
    for (std::size_t head = 0; head < queue.size(); ++head) {
      const NodeId u = queue[head];
      for (const NodeId w : g.neighbors(u)) {
        if (labels[w] == root && parent[w] == kUnset) {
          parent[w] = u;
          queue.push_back(w);
        }
      }
    }
  }

  for (NodeId v = 0; v < n; ++v) {
    if (parent[v] == kUnset) {
      // Either the class has no root (labels[l] != l for l = labels[v]) or
      // v is disconnected from it through same-label edges — both mean the
      // labeling admits no spanning forest and cannot be correct.
      return fail("vertex " + std::to_string(v) +
                  " is not reachable from the root of its label class " +
                  std::to_string(labels[v]));
    }
  }
  out.parent = std::move(parent);
  return Status{};
}

Status verify_certificate(const CsrGraph& g, const std::vector<NodeId>& labels,
                          std::size_t components,
                          const ForestCertificate& cert) {
  const NodeId n = g.node_count();
  if (Status lattice = check_lattice(n, labels); !lattice.ok()) {
    return lattice;
  }
  if (cert.parent.size() != n) {
    return fail("forest size " + std::to_string(cert.parent.size()) +
                " does not match the graph (n = " + std::to_string(n) + ")");
  }

  // Per-vertex structure: roots are self-labelled, every other parent is a
  // genuine same-label neighbour (neighbour rows are ascending, so the
  // membership test is one binary search).
  std::size_t roots = 0;
  for (NodeId v = 0; v < n; ++v) {
    const NodeId p = cert.parent[v];
    if (p >= n) {
      return fail("parent of vertex " + std::to_string(v) +
                  " is out of range (" + std::to_string(p) + ")");
    }
    if (p == v) {
      ++roots;
      if (labels[v] != v) {
        return fail("root " + std::to_string(v) + " is not self-labelled");
      }
      continue;
    }
    if (labels[p] != labels[v]) {
      return fail("parent edge " + std::to_string(v) + " -> " +
                  std::to_string(p) + " crosses label classes");
    }
    const std::span<const NodeId> row = g.neighbors(v);
    if (!std::binary_search(row.begin(), row.end(), p)) {
      return fail("parent " + std::to_string(p) + " of vertex " +
                  std::to_string(v) + " is not a neighbour");
    }
  }
  if (roots != components) {
    return fail("forest has " + std::to_string(roots) +
                " roots but the result claims " + std::to_string(components) +
                " components");
  }

  // Acyclicity: walk each parent chain once with tri-state marking; a
  // chain re-entering itself before reaching a settled vertex is a cycle.
  // Every vertex settles exactly once, so the pass is O(n) amortised.
  enum : unsigned char { kUnseen = 0, kOnPath = 1, kSettled = 2 };
  std::vector<unsigned char> state(n, kUnseen);
  std::vector<NodeId> path;
  for (NodeId v = 0; v < n; ++v) {
    if (state[v] != kUnseen) continue;
    path.clear();
    NodeId cur = v;
    while (state[cur] == kUnseen && cert.parent[cur] != cur) {
      state[cur] = kOnPath;
      path.push_back(cur);
      cur = cert.parent[cur];
    }
    if (state[cur] == kOnPath) {
      return fail("parent chain of vertex " + std::to_string(v) +
                  " cycles without reaching a root");
    }
    for (const NodeId u : path) state[u] = kSettled;
    state[cur] = kSettled;
  }

  // Edge closure: no arc may cross label classes (otherwise the labeling
  // split a component).  Together with the forest (each class connected)
  // and the lattice checks (label[v] <= v, roots self-labelled) this pins
  // labels to the exact canonical min-id fixpoint.
  const std::vector<std::size_t>& offsets = g.offsets();
  const std::vector<NodeId>& arcs = g.arcs();
  for (NodeId u = 0; u < n; ++u) {
    const NodeId lu = labels[u];
    for (std::size_t a = offsets[u]; a < offsets[std::size_t{u} + 1]; ++a) {
      if (labels[arcs[a]] != lu) {
        return fail("edge {" + std::to_string(u) + ", " +
                    std::to_string(arcs[a]) + "} crosses label classes");
      }
    }
  }
  return Status{};
}

}  // namespace gcalib::graph
