#include "graph/adjacency_matrix.hpp"

namespace gcalib::graph {

std::size_t AdjacencyMatrix::edge_count() const {
  std::size_t twice = 0;
  for (std::uint8_t b : bits_) twice += b;
  return twice / 2;
}

NodeId AdjacencyMatrix::degree(NodeId i) const {
  GCALIB_EXPECTS(i < n_);
  NodeId deg = 0;
  for (NodeId j = 0; j < n_; ++j) deg += bits_[idx(i, j)];
  return deg;
}

bool AdjacencyMatrix::is_valid_undirected() const {
  for (NodeId i = 0; i < n_; ++i) {
    if (bits_[idx(i, i)] != 0) return false;
    for (NodeId j = i + 1; j < n_; ++j) {
      if (bits_[idx(i, j)] != bits_[idx(j, i)]) return false;
    }
  }
  return true;
}

}  // namespace gcalib::graph
