// Dense symmetric adjacency matrix — the paper's input representation.
//
// Hirschberg's algorithm (and its GCA mapping, which stores one bit
// A(i,j) per cell) consumes the graph as a dense n x n 0/1 matrix, so this
// type is the canonical interchange format between the graph substrate and
// the simulators.
#pragma once

#include <cstdint>
#include <vector>

#include "common/assert.hpp"

namespace gcalib::graph {

/// Node index type.  The paper's cell registers hold node numbers of
/// O(log n) bits; 32 bits comfortably covers every simulatable size.
using NodeId = std::uint32_t;

/// Dense symmetric boolean adjacency matrix with no self-loops.
class AdjacencyMatrix {
 public:
  AdjacencyMatrix() = default;

  /// Creates an empty (edge-less) matrix over `n` nodes.
  explicit AdjacencyMatrix(NodeId n) : n_(n), bits_(std::size_t{n} * n, 0) {}

  [[nodiscard]] NodeId size() const { return n_; }

  /// True iff there is an edge {i, j}.  Diagonal entries are always 0.
  [[nodiscard]] bool at(NodeId i, NodeId j) const {
    GCALIB_EXPECTS(i < n_ && j < n_);
    return bits_[idx(i, j)] != 0;
  }

  /// Inserts the undirected edge {i, j}; both triangle entries are set.
  /// Self-loops are rejected (the algorithm's condition C(j) != C(i) makes
  /// them meaningless and the paper's matrices have a zero diagonal).
  void add_edge(NodeId i, NodeId j) {
    GCALIB_EXPECTS(i < n_ && j < n_);
    GCALIB_EXPECTS_MSG(i != j, "self-loops are not representable");
    bits_[idx(i, j)] = 1;
    bits_[idx(j, i)] = 1;
  }

  /// Removes the undirected edge {i, j} (no-op if absent).
  void remove_edge(NodeId i, NodeId j) {
    GCALIB_EXPECTS(i < n_ && j < n_);
    bits_[idx(i, j)] = 0;
    bits_[idx(j, i)] = 0;
  }

  /// Number of undirected edges.
  [[nodiscard]] std::size_t edge_count() const;

  /// Degree of node i.
  [[nodiscard]] NodeId degree(NodeId i) const;

  /// True iff the matrix is symmetric with a zero diagonal (class invariant;
  /// exposed so tests and loaders can validate externally built data).
  [[nodiscard]] bool is_valid_undirected() const;

  friend bool operator==(const AdjacencyMatrix&, const AdjacencyMatrix&) = default;

 private:
  [[nodiscard]] std::size_t idx(NodeId i, NodeId j) const {
    return std::size_t{i} * n_ + j;
  }

  NodeId n_ = 0;
  std::vector<std::uint8_t> bits_;
};

}  // namespace gcalib::graph
