// Disjoint-set union — the sequential gold-standard for connected
// components, used as the oracle in every cross-validation test.
#pragma once

#include <vector>

#include "graph/graph.hpp"

namespace gcalib::graph {

/// Union-find with union by rank and path halving.
class UnionFind {
 public:
  explicit UnionFind(NodeId n);

  /// Representative of the set containing x (with path halving).
  [[nodiscard]] NodeId find(NodeId x);

  /// Merges the sets of a and b; returns true if they were distinct.
  bool unite(NodeId a, NodeId b);

  [[nodiscard]] NodeId size() const { return static_cast<NodeId>(parent_.size()); }
  [[nodiscard]] NodeId set_count() const { return sets_; }

  /// Labels every node with the *minimum node id* of its set — the same
  /// representative convention as Hirschberg's super nodes, so results are
  /// directly comparable without canonicalisation.
  [[nodiscard]] std::vector<NodeId> min_labels();

 private:
  std::vector<NodeId> parent_;
  std::vector<NodeId> rank_;
  NodeId sets_;
};

/// Connected-component labels of `g` via union-find, using minimum-id
/// representatives (Hirschberg's super-node convention).
[[nodiscard]] std::vector<NodeId> union_find_components(const Graph& g);

}  // namespace gcalib::graph
