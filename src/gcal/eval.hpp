// Expression evaluation for gcal, shared by the interpreter (per-cell
// execution) and the static analyzer (position-only evaluation).
#pragma once

#include <cstdint>
#include <optional>

#include "gcal/ast.hpp"
#include "gcal/interpreter.hpp"  // EvalError

namespace gcalib::gcal {

/// Evaluated word; the infinity code matches core::kInfData.
using Value = std::int64_t;
inline constexpr std::uint64_t kInfCode = 0xFFFFFFFFull;

/// Cell state visible to expressions (e is the optional second data
/// register used by broadcast-style programs such as the tree variant).
struct CellView {
  std::uint64_t a = 0;
  std::uint64_t d = 0;
  std::uint64_t e = 0;
  std::uint64_t p = 0;
};

/// Per-cell evaluation context.  `self` must be set; `global` stays null
/// until the pointer has been resolved (using dstar/astar before that is an
/// EvalError).  For static analysis, `self` may point to a dummy cell —
/// but then expressions touching d/a/p are semantically state-dependent
/// (see references_state below).
struct EvalContext {
  std::size_t n = 0;
  std::size_t index = 0;
  std::size_t row = 0;
  std::size_t col = 0;
  std::size_t sub = 0;
  const CellView* self = nullptr;
  const CellView* global = nullptr;
};

/// Evaluates `expr` in `ctx`; throws EvalError on semantic errors.
[[nodiscard]] Value evaluate(const Expr& expr, const EvalContext& ctx);

/// True iff the expression references cell state (d, a, p, dstar, astar) —
/// i.e. it is NOT a pure function of position.  Pointer expressions that
/// reference state are data-dependent (the paper's extended cells).
[[nodiscard]] bool references_state(const Expr& expr);

}  // namespace gcalib::gcal
