#include "gcal/analyzer.hpp"

#include <algorithm>
#include <map>
#include <set>

#include "common/assert.hpp"
#include "common/bits.hpp"
#include "gca/field.hpp"
#include "gcal/eval.hpp"

namespace gcalib::gcal {

namespace {

PointerClass classify(const GenerationDef& generation) {
  if (!generation.pointer) return PointerClass::kNone;
  return references_state(*generation.pointer) ? PointerClass::kDataDependent
                                               : PointerClass::kStatic;
}

/// Evaluates a position-only expression for one cell.  The activity
/// condition may legally reference state (e.g. masks on d); for analysis
/// purposes such conditions are treated as potentially-active (worst case)
/// — the Hirschberg program's activity conditions are all positional, so
/// the analysis is exact there.
struct PositionalEval {
  std::size_t n;
  std::size_t sub;
  const gca::FieldGeometry* geometry;

  [[nodiscard]] bool active(const GenerationDef& generation,
                            std::size_t index) const {
    if (references_state(*generation.active)) return true;  // worst case
    return evaluate(*generation.active, context(index)) != 0;
  }

  [[nodiscard]] std::size_t pointer_target(const GenerationDef& generation,
                                           std::size_t index) const {
    const Value target = evaluate(*generation.pointer, context(index));
    if (target < 0 || static_cast<std::size_t>(target) >= geometry->size()) {
      throw EvalError("static pointer out of field range in generation '" +
                          generation.name + "'",
                      generation.line, 0);
    }
    return static_cast<std::size_t>(target);
  }

 private:
  [[nodiscard]] EvalContext context(std::size_t index) const {
    EvalContext ctx;
    ctx.n = n;
    ctx.index = index;
    ctx.row = geometry->row(index);
    ctx.col = geometry->col(index);
    ctx.sub = sub;
    return ctx;
  }
};

}  // namespace

const char* to_string(PointerClass cls) {
  switch (cls) {
    case PointerClass::kNone: return "none";
    case PointerClass::kStatic: return "static";
    case PointerClass::kDataDependent: return "data-dependent";
  }
  return "?";
}

ProgramAnalysis analyze(const Program& program, std::size_t n) {
  GCALIB_EXPECTS(n >= 1);
  const gca::FieldGeometry geometry = gca::FieldGeometry::hirschberg(n);
  const std::size_t subs = n > 1 ? log2_ceil(n) : 1;

  ProgramAnalysis analysis;
  analysis.n = n;

  std::vector<std::set<std::size_t>> sources(geometry.size());
  std::vector<bool> extended(geometry.size(), false);

  const auto analyze_generation = [&](const GenerationDef& generation) {
    GenerationAnalysis record;
    record.name = generation.name;
    record.repeat = generation.repeat;
    record.pointer_class = classify(generation);

    const std::size_t sub_count =
        generation.repeat ? (generation.repeat_rows ? log2_ceil(n + 1) : subs)
                          : 1;
    for (std::size_t sub = 0; sub < sub_count; ++sub) {
      const PositionalEval eval{n, sub, &geometry};
      std::map<std::size_t, std::size_t> reads;  // target -> count
      std::size_t active = 0;
      for (std::size_t index = 0; index < geometry.size(); ++index) {
        if (!eval.active(generation, index)) continue;
        ++active;
        switch (record.pointer_class) {
          case PointerClass::kNone:
            break;
          case PointerClass::kStatic: {
            const std::size_t target = eval.pointer_target(generation, index);
            ++reads[target];
            sources[index].insert(target);
            break;
          }
          case PointerClass::kDataDependent:
            extended[index] = true;
            break;
        }
      }
      if (sub == 0) record.active_cells_first = active;
      for (const auto& [target, count] : reads) {
        record.max_congestion = std::max(record.max_congestion, count);
      }
    }
    if (record.pointer_class == PointerClass::kStatic) {
      analysis.static_max_congestion =
          std::max(analysis.static_max_congestion, record.max_congestion);
    }
    analysis.generations.push_back(std::move(record));
  };

  for (const GenerationDef& generation : program.prologue) {
    analyze_generation(generation);
  }
  for (const GenerationDef& generation : program.loop) {
    analyze_generation(generation);
  }

  // Assemble the hardware portrait.
  analysis.portrait.n = n;
  analysis.portrait.data_width = hw::data_width_for(n);
  analysis.portrait.pointer_width = hw::pointer_width_for(n);
  analysis.portrait.cells.reserve(geometry.size());
  for (std::size_t index = 0; index < geometry.size(); ++index) {
    hw::CellPortrait cell;
    cell.index = index;
    cell.extended = extended[index];
    cell.bottom_row = geometry.in_bottom_row(index);
    cell.static_sources.assign(sources[index].begin(), sources[index].end());
    analysis.portrait.cells.push_back(std::move(cell));
  }
  return analysis;
}

hw::SynthesisEstimate estimate_program(const Program& program, std::size_t n) {
  const ProgramAnalysis analysis = analyze(program, n);
  return hw::estimate(analysis.portrait,
                      hw::CostParameters::cyclone2_calibrated());
}

namespace {

int precedence(Op op) {
  switch (op) {
    case Op::kOr: return 1;
    case Op::kAnd: return 2;
    case Op::kEq: case Op::kNe: case Op::kLt: case Op::kGt:
    case Op::kLe: case Op::kGe: return 3;
    case Op::kShl: case Op::kShr: return 4;
    case Op::kAdd: case Op::kSub: return 5;
    case Op::kMul: case Op::kDiv: case Op::kMod: return 6;
    case Op::kNeg: case Op::kNot: return 7;
  }
  return 0;
}

const char* op_text(Op op) {
  switch (op) {
    case Op::kOr: return "||";
    case Op::kAnd: return "&&";
    case Op::kEq: return "==";
    case Op::kNe: return "!=";
    case Op::kLt: return "<";
    case Op::kGt: return ">";
    case Op::kLe: return "<=";
    case Op::kGe: return ">=";
    case Op::kShl: return "<<";
    case Op::kShr: return ">>";
    case Op::kAdd: return "+";
    case Op::kSub: return "-";
    case Op::kMul: return "*";
    case Op::kDiv: return "/";
    case Op::kMod: return "%";
    case Op::kNeg: return "-";
    case Op::kNot: return "!";
  }
  return "?";
}

std::string print_expr(const Expr& expr, int parent_precedence) {
  switch (expr.kind) {
    case ExprKind::kNumber:
      return std::to_string(expr.number);
    case ExprKind::kVariable:
      return expr.name;
    case ExprKind::kUnary: {
      const std::string inner = print_expr(*expr.a, precedence(expr.op));
      return std::string(op_text(expr.op)) + inner;
    }
    case ExprKind::kBinary: {
      const int prec = precedence(expr.op);
      // Right operand gets prec+1: our parser is left-associative.
      const std::string text = print_expr(*expr.a, prec) + " " +
                               op_text(expr.op) + " " +
                               print_expr(*expr.b, prec + 1);
      return prec < parent_precedence ? "(" + text + ")" : text;
    }
    case ExprKind::kTernary: {
      const std::string text = print_expr(*expr.a, 1) + " ? " +
                               print_expr(*expr.b, 0) + " : " +
                               print_expr(*expr.c, 0);
      // Ternary binds loosest: parenthesise unless at top level.
      return parent_precedence > 0 ? "(" + text + ")" : text;
    }
    case ExprKind::kCall:
      return expr.name + "(" + print_expr(*expr.a, 0) + ", " +
             print_expr(*expr.b, 0) + ")";
  }
  return "?";
}

void print_generation(std::string& out, const GenerationDef& generation,
                      const std::string& indent) {
  out += indent + "generation " + generation.name;
  if (generation.repeat) {
    out += generation.repeat_rows ? " repeat rows" : " repeat";
  }
  out += ":\n";
  out += indent + "  active " + print_expr(*generation.active, 0) + "\n";
  if (generation.pointer) {
    out += indent + "  p = " + print_expr(*generation.pointer, 0) + "\n";
  }
  if (generation.data) {
    out += indent + "  d = " + print_expr(*generation.data, 0) + "\n";
  }
  if (generation.data_e) {
    out += indent + "  e = " + print_expr(*generation.data_e, 0) + "\n";
  }
}

}  // namespace

std::string to_source(const Program& program) {
  std::string out = "program " + program.name + "\n";
  for (const GenerationDef& generation : program.prologue) {
    out += "\n";
    print_generation(out, generation, "");
  }
  if (!program.loop.empty()) {
    out += "\nloop:\n";
    for (const GenerationDef& generation : program.loop) {
      out += "\n";
      print_generation(out, generation, "  ");
    }
  }
  return out;
}

}  // namespace gcalib::gcal
