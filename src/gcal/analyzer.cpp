#include "gcal/analyzer.hpp"

#include <algorithm>
#include <map>
#include <optional>
#include <set>
#include <utility>

#include "common/assert.hpp"
#include "common/bits.hpp"
#include "gca/field.hpp"
#include "gcal/eval.hpp"

namespace gcalib::gcal {

namespace {

PointerClass classify(const GenerationDef& generation) {
  if (!generation.pointer) return PointerClass::kNone;
  return references_state(*generation.pointer) ? PointerClass::kDataDependent
                                               : PointerClass::kStatic;
}

/// Evaluates a position-only expression for one cell.  The activity
/// condition may legally reference state (e.g. masks on d); for analysis
/// purposes such conditions are treated as potentially-active (worst case)
/// — the Hirschberg program's activity conditions are all positional, so
/// the analysis is exact there.
struct PositionalEval {
  std::size_t n;
  std::size_t sub;
  const gca::FieldGeometry* geometry;

  [[nodiscard]] bool active(const GenerationDef& generation,
                            std::size_t index) const {
    if (references_state(*generation.active)) return true;  // worst case
    return evaluate(*generation.active, context(index)) != 0;
  }

  [[nodiscard]] std::size_t pointer_target(const GenerationDef& generation,
                                           std::size_t index) const {
    const Value target = evaluate(*generation.pointer, context(index));
    if (target < 0 || static_cast<std::size_t>(target) >= geometry->size()) {
      throw EvalError("static pointer out of field range in generation '" +
                          generation.name + "'",
                      generation.line, 0);
    }
    return static_cast<std::size_t>(target);
  }

 private:
  [[nodiscard]] EvalContext context(std::size_t index) const {
    EvalContext ctx;
    ctx.n = n;
    ctx.index = index;
    ctx.row = geometry->row(index);
    ctx.col = geometry->col(index);
    ctx.sub = sub;
    return ctx;
  }
};

/// Folds an expression that is a pure function of (n, sub) and literals.
/// Returns nullopt for anything positional, state-dependent or erroneous.
std::optional<Value> fold_constant(const Expr& expr, std::size_t n,
                                   std::size_t sub) {
  const auto positional = [](const Expr& e, const auto& self) -> bool {
    switch (e.kind) {
      case ExprKind::kNumber:
        return false;
      case ExprKind::kVariable:
        return e.name == "index" || e.name == "row" || e.name == "col" ||
               e.name == "square" || e.name == "bottom";
      case ExprKind::kUnary:
        return self(*e.a, self);
      case ExprKind::kBinary:
      case ExprKind::kCall:
        return self(*e.a, self) || self(*e.b, self);
      case ExprKind::kTernary:
        return self(*e.a, self) || self(*e.b, self) || self(*e.c, self);
    }
    return true;
  };
  if (references_state(expr) || positional(expr, positional)) {
    return std::nullopt;
  }
  EvalContext ctx;
  ctx.n = n;
  ctx.sub = sub;
  try {
    return evaluate(expr, ctx);
  } catch (const EvalError&) {
    return std::nullopt;
  }
}

/// Matches `col`, `col + C` or `C + col`; returns the constant offset C.
std::optional<Value> match_col_plus(const Expr& expr, std::size_t n,
                                    std::size_t sub) {
  if (expr.kind == ExprKind::kVariable && expr.name == "col") return 0;
  if (expr.kind == ExprKind::kBinary && expr.op == Op::kAdd) {
    if (expr.a->kind == ExprKind::kVariable && expr.a->name == "col") {
      return fold_constant(*expr.b, n, sub);
    }
    if (expr.b->kind == ExprKind::kVariable && expr.b->name == "col") {
      return fold_constant(*expr.a, n, sub);
    }
  }
  return std::nullopt;
}

/// Collected interval/stride constraints while scanning the conjuncts of an
/// active clause; converted to an ActiveRegion at the end.
struct RegionBounds {
  Value row_lo, row_hi;  // half-open row range
  Value col_lo, col_hi;  // half-open column range
  Value mod = 1;         // column stride constraint: col % mod == rem
  Value rem = 0;
  bool empty = false;
};

void apply_col_bound(RegionBounds& b, Op op, Value bound) {
  switch (op) {
    case Op::kLt: b.col_hi = std::min(b.col_hi, bound); break;
    case Op::kLe: b.col_hi = std::min(b.col_hi, bound + 1); break;
    case Op::kGe: b.col_lo = std::max(b.col_lo, bound); break;
    case Op::kGt: b.col_lo = std::max(b.col_lo, bound + 1); break;
    default: break;
  }
}

void apply_conjunct(RegionBounds& b, const Expr& c, std::size_t n,
                    std::size_t sub) {
  const Value rows_total = static_cast<Value>(n) + 1;
  if (const std::optional<Value> v = fold_constant(c, n, sub)) {
    if (*v == 0) b.empty = true;  // `active 0`: nothing ever fires
    return;
  }
  if (c.kind == ExprKind::kVariable) {
    if (c.name == "square") b.row_hi = std::min(b.row_hi, static_cast<Value>(n));
    if (c.name == "bottom") b.row_lo = std::max(b.row_lo, static_cast<Value>(n));
    return;
  }
  if (c.kind != ExprKind::kBinary) return;
  const Expr& lhs = *c.a;
  const Expr& rhs = *c.b;
  if (c.op == Op::kEq) {
    // Try both orientations of `<positional> == <constant>`.
    using Sides = std::pair<const Expr*, const Expr*>;
    for (const auto& [pos, val] : {Sides{&lhs, &rhs}, Sides{&rhs, &lhs}}) {
      const std::optional<Value> cst = fold_constant(*val, n, sub);
      if (!cst) continue;
      if (pos->kind == ExprKind::kVariable && pos->name == "col") {
        b.col_lo = std::max(b.col_lo, *cst);
        b.col_hi = std::min(b.col_hi, *cst + 1);
        return;
      }
      if (pos->kind == ExprKind::kVariable && pos->name == "row") {
        b.row_lo = std::max(b.row_lo, *cst);
        b.row_hi = std::min(b.row_hi, std::min(*cst + 1, rows_total));
        return;
      }
      if (pos->kind == ExprKind::kBinary && pos->op == Op::kMod &&
          pos->a->kind == ExprKind::kVariable && pos->a->name == "col") {
        const std::optional<Value> m = fold_constant(*pos->b, n, sub);
        // A second stride constraint is simply ignored (still a superset).
        if (m && *m >= 1 && b.mod == 1) {
          if (*cst < 0 || *cst >= *m) {
            b.empty = true;
          } else {
            b.mod = *m;
            b.rem = *cst;
          }
          return;
        }
      }
    }
    return;
  }
  if (c.op == Op::kLt || c.op == Op::kLe || c.op == Op::kGt ||
      c.op == Op::kGe) {
    if (const std::optional<Value> off = match_col_plus(lhs, n, sub)) {
      if (const std::optional<Value> bound = fold_constant(rhs, n, sub)) {
        apply_col_bound(b, c.op, *bound - *off);  // col + off OP bound
        return;
      }
    }
    if (const std::optional<Value> off = match_col_plus(rhs, n, sub)) {
      if (const std::optional<Value> bound = fold_constant(lhs, n, sub)) {
        // bound OP col + off  ==  col + off OP' bound (mirrored operator)
        const Op mirrored = c.op == Op::kLt   ? Op::kGt
                            : c.op == Op::kLe ? Op::kGe
                            : c.op == Op::kGt ? Op::kLt
                                              : Op::kLe;
        apply_col_bound(b, mirrored, *bound - *off);
        return;
      }
    }
  }
}

}  // namespace

gca::ActiveRegion lower_active_region(const Expr& active, std::size_t n,
                                      std::size_t sub) {
  RegionBounds b;
  b.row_lo = 0;
  b.row_hi = static_cast<Value>(n) + 1;
  b.col_lo = 0;
  b.col_hi = static_cast<Value>(n);

  // Flatten `a && b && c` and let every recognised conjunct tighten the
  // bounds; unrecognised conjuncts are skipped (conjunction: skipping a
  // constraint can only widen, so the result stays a superset).
  const auto scan = [&](const Expr& e, const auto& self) -> void {
    if (e.kind == ExprKind::kBinary && e.op == Op::kAnd) {
      self(*e.a, self);
      self(*e.b, self);
      return;
    }
    apply_conjunct(b, e, n, sub);
  };
  scan(active, scan);

  b.row_lo = std::max<Value>(b.row_lo, 0);
  b.col_lo = std::max<Value>(b.col_lo, 0);
  if (b.mod > 1 && !b.empty) {
    // Align the lower column bound up to the stride's residue class.
    b.col_lo += (((b.rem - b.col_lo) % b.mod) + b.mod) % b.mod;
  }
  if (b.empty || b.row_lo >= b.row_hi || b.col_lo >= b.col_hi) {
    return gca::ActiveRegion{0, 0, 0, 0, 1, n};
  }
  return gca::ActiveRegion{static_cast<std::size_t>(b.row_lo),
                           static_cast<std::size_t>(b.row_hi),
                           static_cast<std::size_t>(b.col_lo),
                           static_cast<std::size_t>(b.col_hi),
                           static_cast<std::size_t>(b.mod), n};
}

const char* to_string(PointerClass cls) {
  switch (cls) {
    case PointerClass::kNone: return "none";
    case PointerClass::kStatic: return "static";
    case PointerClass::kDataDependent: return "data-dependent";
  }
  return "?";
}

ProgramAnalysis analyze(const Program& program, std::size_t n) {
  GCALIB_EXPECTS(n >= 1);
  const gca::FieldGeometry geometry = gca::FieldGeometry::hirschberg(n);
  const std::size_t subs = n > 1 ? log2_ceil(n) : 1;

  ProgramAnalysis analysis;
  analysis.n = n;

  std::vector<std::set<std::size_t>> sources(geometry.size());
  std::vector<bool> extended(geometry.size(), false);

  const auto analyze_generation = [&](const GenerationDef& generation) {
    GenerationAnalysis record;
    record.name = generation.name;
    record.repeat = generation.repeat;
    record.pointer_class = classify(generation);

    const std::size_t sub_count =
        generation.repeat ? (generation.repeat_rows ? log2_ceil(n + 1) : subs)
                          : 1;
    for (std::size_t sub = 0; sub < sub_count; ++sub) {
      const PositionalEval eval{n, sub, &geometry};
      std::map<std::size_t, std::size_t> reads;  // target -> count
      std::size_t active = 0;
      for (std::size_t index = 0; index < geometry.size(); ++index) {
        if (!eval.active(generation, index)) continue;
        ++active;
        switch (record.pointer_class) {
          case PointerClass::kNone:
            break;
          case PointerClass::kStatic: {
            const std::size_t target = eval.pointer_target(generation, index);
            ++reads[target];
            sources[index].insert(target);
            break;
          }
          case PointerClass::kDataDependent:
            extended[index] = true;
            break;
        }
      }
      if (sub == 0) record.active_cells_first = active;
      for (const auto& [target, count] : reads) {
        record.max_congestion = std::max(record.max_congestion, count);
      }
    }
    if (record.pointer_class == PointerClass::kStatic) {
      analysis.static_max_congestion =
          std::max(analysis.static_max_congestion, record.max_congestion);
    }
    analysis.generations.push_back(std::move(record));
  };

  for (const GenerationDef& generation : program.prologue) {
    analyze_generation(generation);
  }
  for (const GenerationDef& generation : program.loop) {
    analyze_generation(generation);
  }

  // Assemble the hardware portrait.
  analysis.portrait.n = n;
  analysis.portrait.data_width = hw::data_width_for(n);
  analysis.portrait.pointer_width = hw::pointer_width_for(n);
  analysis.portrait.cells.reserve(geometry.size());
  for (std::size_t index = 0; index < geometry.size(); ++index) {
    hw::CellPortrait cell;
    cell.index = index;
    cell.extended = extended[index];
    cell.bottom_row = geometry.in_bottom_row(index);
    cell.static_sources.assign(sources[index].begin(), sources[index].end());
    analysis.portrait.cells.push_back(std::move(cell));
  }
  return analysis;
}

hw::SynthesisEstimate estimate_program(const Program& program, std::size_t n) {
  const ProgramAnalysis analysis = analyze(program, n);
  return hw::estimate(analysis.portrait,
                      hw::CostParameters::cyclone2_calibrated());
}

namespace {

int precedence(Op op) {
  switch (op) {
    case Op::kOr: return 1;
    case Op::kAnd: return 2;
    case Op::kEq: case Op::kNe: case Op::kLt: case Op::kGt:
    case Op::kLe: case Op::kGe: return 3;
    case Op::kShl: case Op::kShr: return 4;
    case Op::kAdd: case Op::kSub: return 5;
    case Op::kMul: case Op::kDiv: case Op::kMod: return 6;
    case Op::kNeg: case Op::kNot: return 7;
  }
  return 0;
}

const char* op_text(Op op) {
  switch (op) {
    case Op::kOr: return "||";
    case Op::kAnd: return "&&";
    case Op::kEq: return "==";
    case Op::kNe: return "!=";
    case Op::kLt: return "<";
    case Op::kGt: return ">";
    case Op::kLe: return "<=";
    case Op::kGe: return ">=";
    case Op::kShl: return "<<";
    case Op::kShr: return ">>";
    case Op::kAdd: return "+";
    case Op::kSub: return "-";
    case Op::kMul: return "*";
    case Op::kDiv: return "/";
    case Op::kMod: return "%";
    case Op::kNeg: return "-";
    case Op::kNot: return "!";
  }
  return "?";
}

std::string print_expr(const Expr& expr, int parent_precedence) {
  switch (expr.kind) {
    case ExprKind::kNumber:
      return std::to_string(expr.number);
    case ExprKind::kVariable:
      return expr.name;
    case ExprKind::kUnary: {
      const std::string inner = print_expr(*expr.a, precedence(expr.op));
      return std::string(op_text(expr.op)) + inner;
    }
    case ExprKind::kBinary: {
      const int prec = precedence(expr.op);
      // Right operand gets prec+1: our parser is left-associative.
      const std::string text = print_expr(*expr.a, prec) + " " +
                               op_text(expr.op) + " " +
                               print_expr(*expr.b, prec + 1);
      return prec < parent_precedence ? "(" + text + ")" : text;
    }
    case ExprKind::kTernary: {
      const std::string text = print_expr(*expr.a, 1) + " ? " +
                               print_expr(*expr.b, 0) + " : " +
                               print_expr(*expr.c, 0);
      // Ternary binds loosest: parenthesise unless at top level.
      return parent_precedence > 0 ? "(" + text + ")" : text;
    }
    case ExprKind::kCall:
      return expr.name + "(" + print_expr(*expr.a, 0) + ", " +
             print_expr(*expr.b, 0) + ")";
  }
  return "?";
}

void print_generation(std::string& out, const GenerationDef& generation,
                      const std::string& indent) {
  out += indent + "generation " + generation.name;
  if (generation.repeat) {
    out += generation.repeat_rows ? " repeat rows" : " repeat";
  }
  out += ":\n";
  out += indent + "  active " + print_expr(*generation.active, 0) + "\n";
  if (generation.pointer) {
    out += indent + "  p = " + print_expr(*generation.pointer, 0) + "\n";
  }
  if (generation.data) {
    out += indent + "  d = " + print_expr(*generation.data, 0) + "\n";
  }
  if (generation.data_e) {
    out += indent + "  e = " + print_expr(*generation.data_e, 0) + "\n";
  }
}

}  // namespace

std::string to_source(const Program& program) {
  std::string out = "program " + program.name + "\n";
  for (const GenerationDef& generation : program.prologue) {
    out += "\n";
    print_generation(out, generation, "");
  }
  if (!program.loop.empty()) {
    out += "\nloop:\n";
    for (const GenerationDef& generation : program.loop) {
      out += "\n";
      print_generation(out, generation, "  ");
    }
  }
  return out;
}

}  // namespace gcalib::gcal
