// Abstract syntax of gcal programs.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace gcalib::gcal {

/// Expression node kinds.
enum class ExprKind {
  kNumber,    ///< literal
  kVariable,  ///< named builtin (index, row, col, d, dstar, ...)
  kUnary,     ///< op in {'-', '!'}
  kBinary,    ///< op is a TokenKind-style two-operand operator name
  kTernary,   ///< cond ? a : b
  kCall,      ///< min(...), max(...)
};

/// Binary/unary operator identifiers (subset of the token set).
enum class Op {
  kNeg, kNot,                              // unary
  kOr, kAnd,                               // logical
  kEq, kNe, kLt, kGt, kLe, kGe,            // comparison
  kShl, kShr, kAdd, kSub, kMul, kDiv, kMod // arithmetic
};

struct Expr;
using ExprPtr = std::unique_ptr<Expr>;

struct Expr {
  ExprKind kind = ExprKind::kNumber;
  std::int64_t number = 0;     // kNumber
  std::string name;            // kVariable / kCall
  Op op = Op::kAdd;            // kUnary / kBinary
  ExprPtr a, b, c;             // operands (c = ternary else-branch)
  int line = 0;
  int column = 0;
};

/// One generation definition.
struct GenerationDef {
  std::string name;
  bool repeat = false;       ///< iterate ceil(lg n) sub-generations
  bool repeat_rows = false;  ///< iterate ceil(lg (n+1)) sub-generations
                             ///< ("repeat rows": rings over all n+1 rows)
  ExprPtr active;            ///< required activity condition
  ExprPtr pointer;           ///< optional (absent = no global read)
  ExprPtr data;              ///< d operation (optional if data_e present)
  ExprPtr data_e;            ///< e operation (second register; optional)
  int line = 0;
};

/// A whole program: prologue generations run once, loop generations run
/// ceil(lg n) times (in order) per outer iteration.
struct Program {
  std::string name;
  std::vector<GenerationDef> prologue;
  std::vector<GenerationDef> loop;
};

}  // namespace gcalib::gcal
