// Recursive-descent parser for gcal.
//
// Grammar (whitespace-insensitive; '#' comments):
//   program     := "program" IDENT item*
//   item        := generation | loop
//   loop        := "loop" ":" generation*          (at most one)
//   generation  := "generation" IDENT ["repeat"] ":" stmt*
//   stmt        := "active" expr | "p" "=" expr | "d" "=" expr
//   expr        := ternary
//   ternary     := or ["?" expr ":" expr]
//   or          := and {"||" and}
//   and         := cmp {"&&" cmp}
//   cmp         := shift {("=="|"!="|"<"|">"|"<="|">=") shift}
//   shift       := add {("<<"|">>") add}
//   add         := mul {("+"|"-") mul}
//   mul         := unary {("*"|"/"|"%") unary}
//   unary       := ("!"|"-") unary | primary
//   primary     := NUMBER | IDENT ["(" expr {"," expr} ")"] | "(" expr ")"
#pragma once

#include <string>

#include "gcal/ast.hpp"
#include "gcal/lexer.hpp"

namespace gcalib::gcal {

/// Parses a gcal source text.  Throws ParseError with position info.
[[nodiscard]] Program parse(const std::string& source);

}  // namespace gcalib::gcal
