#include "gcal/interpreter.hpp"

#include <algorithm>
#include <optional>

#include "common/assert.hpp"
#include "common/bits.hpp"
#include "gca/engine.hpp"
#include "gca/field.hpp"
#include "gcal/analyzer.hpp"
#include "gcal/eval.hpp"
#include "gcal/parser.hpp"

namespace gcalib::gcal {

namespace {

/// Cell state: mirrors the native machine's (a, d, p); the infinity code
/// (kInfCode) matches core::kInfData so native and gcal fields are directly
/// comparable.
using Cell = CellView;
using Context = EvalContext;

}  // namespace

GcalRunResult Interpreter::run(const graph::Graph& g,
                               const GenerationHook& hook,
                               gca::EngineOptions exec,
                               gca::MetricsSink* sink,
                               std::int64_t deadline_ms) const {
  const graph::NodeId n = g.node_count();
  GcalRunResult result;
  if (n == 0) return result;

  const gca::FieldGeometry geometry = gca::FieldGeometry::hirschberg(n);
  std::vector<Cell> initial(geometry.size());
  for (graph::NodeId j = 0; j < n; ++j) {
    for (graph::NodeId i = 0; i < n; ++i) {
      initial[geometry.index_of(j, i)].a = g.has_edge(j, i) ? 1 : 0;
    }
  }
  gca::Engine<Cell> engine(std::move(initial), exec.with_hands(1));
  // Engine is local to this run, so the sink stays attached for its whole
  // lifetime — no removal needed.
  if (sink != nullptr) engine.add_sink(sink);
  if (deadline_ms > 0) {
    engine.set_deadline_ns(gca::steady_deadline_ns(deadline_ms));
  }

  const auto snapshot = [&]() {
    std::vector<std::uint64_t> d(engine.size());
    for (std::size_t i = 0; i < d.size(); ++i) d[i] = engine.state(i).d;
    return d;
  };

  const unsigned subs = n > 1 ? log2_ceil(n) : 0;
  const unsigned subs_rows = log2_ceil(n + 1);
  const auto run_generation = [&](const GenerationDef& generation,
                                  std::size_t sub) {
    std::string label = generation.name;
    if (generation.repeat) label += ".sub" + std::to_string(sub);
    // The statically-lowered superset of the clause's active cells; under
    // the sparse sweep mode (EngineOptions default) the engine only visits
    // this region.  The per-cell `active` check below stays authoritative.
    const gca::ActiveRegion region =
        lower_active_region(*generation.active, n, sub);
    const gca::GenerationStats stats = engine.step(
        [&](std::size_t index, auto& read) -> std::optional<Cell> {
          Context ctx;
          ctx.n = n;
          ctx.index = index;
          ctx.row = geometry.row(index);
          ctx.col = geometry.col(index);
          ctx.sub = sub;
          ctx.self = &engine.state(index);
          if (evaluate(*generation.active, ctx) == 0) return std::nullopt;

          Cell next = *ctx.self;
          if (generation.pointer) {
            const Value target = evaluate(*generation.pointer, ctx);
            if (target < 0 ||
                static_cast<std::size_t>(target) >= engine.size()) {
              throw EvalError("pointer out of range in generation '" +
                                  generation.name + "'",
                              generation.line, 0);
            }
            ctx.global = &read(static_cast<std::size_t>(target));
            next.p = static_cast<std::uint64_t>(target);
          }
          const auto apply = [&](const Expr& op, std::uint64_t& slot) {
            const Value value = evaluate(op, ctx);
            if (value < 0) {
              throw EvalError("data operation produced a negative value in '" +
                                  generation.name + "'",
                              generation.line, 0);
            }
            slot = static_cast<std::uint64_t>(value);
          };
          // Evaluate both operations against the OLD state, then commit.
          std::uint64_t new_d = next.d;
          std::uint64_t new_e = next.e;
          if (generation.data) apply(*generation.data, new_d);
          if (generation.data_e) apply(*generation.data_e, new_e);
          next.d = new_d;
          next.e = new_e;
          return next;
        },
        region, label);
    ++result.generations;
    result.max_congestion = std::max(result.max_congestion, stats.max_congestion);
    if (hook) hook(label, snapshot());
  };

  const auto run_list = [&](const std::vector<GenerationDef>& generations) {
    for (const GenerationDef& generation : generations) {
      const std::size_t repeats =
          generation.repeat ? (generation.repeat_rows ? subs_rows : subs) : 1;
      for (std::size_t s = 0; s < repeats; ++s) run_generation(generation, s);
    }
  };

  run_list(program_.prologue);
  const unsigned iterations = n > 1 ? log2_ceil(n) : 0;
  for (unsigned iter = 0; iter < iterations; ++iter) {
    run_list(program_.loop);
  }

  result.iterations = iterations;
  result.labels.resize(n);
  for (graph::NodeId j = 0; j < n; ++j) {
    result.labels[j] =
        static_cast<graph::NodeId>(engine.state(geometry.index_of(j, 0)).d);
  }
  return result;
}

GcalRunResult run_gcal(const std::string& source, const graph::Graph& g) {
  const Program program = parse(source);
  return Interpreter(program).run(g);
}

const std::string& hirschberg_gcal_source() {
  static const std::string kSource = R"gcal(
# Hirschberg's connected-components algorithm on the GCA —
# the paper's Figure 2 as a gcal program (generation-6 pointer corrected,
# see DESIGN.md).
program hirschberg

generation init:
  active all
  d = row

loop:
  generation copy_c:                   # gen 1
    active all
    p = col * n
    d = dstar

  generation mask_neighbors:           # gen 2
    active square
    p = nn + row
    d = (d != dstar && a == 1) ? d : inf

  generation row_min repeat:           # gen 3
    active square && (col % (2 << sub)) == 0 && col + (1 << sub) < n
    p = index + (1 << sub)
    d = min(d, dstar)

  generation fallback_c:               # gen 4
    active square && col == 0
    p = nn + row
    d = d == inf ? dstar : d

  generation copy_t:                   # gen 5
    active square
    p = col * n
    d = dstar

  generation mask_members:             # gen 6
    active square
    p = nn + col
    d = (dstar == row && d != row) ? d : inf

  generation row_min2 repeat:          # gen 7
    active square && (col % (2 << sub)) == 0 && col + (1 << sub) < n
    p = index + (1 << sub)
    d = min(d, dstar)

  generation fallback_c2:              # gen 8
    active square && col == 0
    p = nn + row
    d = d == inf ? dstar : d

  generation adopt:                    # gen 9
    active all
    p = bottom ? col * n : row * n
    d = dstar

  generation jump repeat:              # gen 10
    active square && col == 0
    p = d * n
    d = dstar

  generation final_min:                # gen 11
    active square && col == 0
    p = d * n + 1
    d = min(d, dstar)
)gcal";
  return kSource;
}

const std::string& hirschberg_tree_gcal_source() {
  static const std::string kSource = R"gcal(
# Congestion-1 tree-broadcast variant of the Hirschberg machine
# (section 4's "tree-like manner"; mirrors core::HirschbergGcaTree).
# Uses the second register e as the broadcast landing slot; every static
# generation reads each target cell at most once.
program hirschberg_tree

generation init:
  active all
  d = row

loop:
  generation b1_seed:                  # (i,i) <- C(i) from (i,0)
    active square && row == col
    p = row * n
    d = dstar

  generation b1_double repeat rows:    # ring doubling down columns (n+1 rows)
    active (row + rows - col) % rows >= (1 << sub) && (row + rows - col) % rows < (2 << sub)
    p = ((row + rows - (1 << sub)) % rows) * n + col
    d = dstar

  generation b2_seed:                  # (j,j).e <- C(j) from D_N[j]
    active square && row == col
    p = nn + col
    e = dstar

  generation b2_double repeat:         # ring doubling along square rows
    active square && (col + n - row) % n >= (1 << sub) && (col + n - row) % n < (2 << sub)
    p = row * n + (col + n - (1 << sub)) % n
    e = estar

  generation mask_neighbors:           # local: no global read at all
    active square
    d = (d != e && a == 1) ? d : inf

  generation row_min repeat:
    active square && (col % (2 << sub)) == 0 && col + (1 << sub) < n
    p = index + (1 << sub)
    d = min(d, dstar)

  generation fallback_c:
    active square && col == 0
    p = nn + row
    d = d == inf ? dstar : d

  generation b3_seed:                  # (i,i) <- T(i) from (i,0)
    active square && row == col
    p = row * n
    d = dstar

  generation b3_double repeat:         # ring doubling over square rows only
    active square && (row + n - col) % n >= (1 << sub) && (row + n - col) % n < (2 << sub)
    p = ((row + n - (1 << sub)) % n) * n + col
    d = dstar

  generation b4_stage:                 # D_N stages C into e (local)
    active bottom
    e = d

  generation b4_double repeat rows:    # ring doubling up columns from D_N
    active (row + rows - n) % rows >= (1 << sub) && (row + rows - n) % rows < (2 << sub)
    p = ((row + rows - (1 << sub)) % rows) * n + col
    e = estar

  generation mask_members:             # local
    active square
    d = (e == row && d != row) ? d : inf

  generation row_min2 repeat:
    active square && (col % (2 << sub)) == 0 && col + (1 << sub) < n
    p = index + (1 << sub)
    d = min(d, dstar)

  generation fallback_c2:
    active square && col == 0
    p = nn + row
    d = d == inf ? dstar : d

  generation adopt_double repeat:      # row doubling from column 0
    active square && col >= (1 << sub) && col < (2 << sub)
    p = index - (1 << sub)
    d = dstar

  generation adopt_dn:                 # D_N[i] <- T(i) from (i,i)
    active bottom
    p = col * n + col
    d = dstar

  generation jump repeat:
    active square && col == 0
    p = d * n
    d = dstar

  generation final_min:
    active square && col == 0
    p = d * n + 1
    d = min(d, dstar)
)gcal";
  return kSource;
}

}  // namespace gcalib::gcal
