#include "gcal/eval.hpp"

#include <algorithm>

namespace gcalib::gcal {

Value evaluate(const Expr& expr, const EvalContext& ctx) {
  switch (expr.kind) {
    case ExprKind::kNumber:
      return expr.number;

    case ExprKind::kVariable: {
      const std::string& name = expr.name;
      if (name == "n") return static_cast<Value>(ctx.n);
      if (name == "nn") return static_cast<Value>(ctx.n * ctx.n);
      if (name == "rows") return static_cast<Value>(ctx.n + 1);
      if (name == "index") return static_cast<Value>(ctx.index);
      if (name == "row") return static_cast<Value>(ctx.row);
      if (name == "col") return static_cast<Value>(ctx.col);
      if (name == "sub") return static_cast<Value>(ctx.sub);
      if (name == "inf") return static_cast<Value>(kInfCode);
      if (name == "all") return 1;
      if (name == "square") return ctx.row < ctx.n ? 1 : 0;
      if (name == "bottom") return ctx.row == ctx.n ? 1 : 0;
      if (name == "d" || name == "a" || name == "p" || name == "e") {
        if (ctx.self == nullptr) {
          throw EvalError("'" + name + "' is not available in this context",
                          expr.line, expr.column);
        }
        if (name == "d") return static_cast<Value>(ctx.self->d);
        if (name == "a") return static_cast<Value>(ctx.self->a);
        if (name == "e") return static_cast<Value>(ctx.self->e);
        return static_cast<Value>(ctx.self->p);
      }
      if (name == "dstar" || name == "astar" || name == "estar") {
        if (ctx.global == nullptr) {
          throw EvalError("'" + name + "' used without a 'p =' clause",
                          expr.line, expr.column);
        }
        if (name == "dstar") return static_cast<Value>(ctx.global->d);
        if (name == "estar") return static_cast<Value>(ctx.global->e);
        return static_cast<Value>(ctx.global->a);
      }
      throw EvalError("unknown variable '" + name + "'", expr.line,
                      expr.column);
    }

    case ExprKind::kUnary: {
      const Value a = evaluate(*expr.a, ctx);
      return expr.op == Op::kNeg ? -a : (a == 0 ? 1 : 0);
    }

    case ExprKind::kBinary: {
      if (expr.op == Op::kAnd) {
        return evaluate(*expr.a, ctx) != 0 && evaluate(*expr.b, ctx) != 0 ? 1
                                                                          : 0;
      }
      if (expr.op == Op::kOr) {
        return evaluate(*expr.a, ctx) != 0 || evaluate(*expr.b, ctx) != 0 ? 1
                                                                          : 0;
      }
      const Value a = evaluate(*expr.a, ctx);
      const Value b = evaluate(*expr.b, ctx);
      switch (expr.op) {
        case Op::kEq: return a == b ? 1 : 0;
        case Op::kNe: return a != b ? 1 : 0;
        case Op::kLt: return a < b ? 1 : 0;
        case Op::kGt: return a > b ? 1 : 0;
        case Op::kLe: return a <= b ? 1 : 0;
        case Op::kGe: return a >= b ? 1 : 0;
        case Op::kShl:
        case Op::kShr:
          if (b < 0 || b > 62) {
            throw EvalError("shift amount out of range", expr.line,
                            expr.column);
          }
          return expr.op == Op::kShl ? (a << b) : (a >> b);
        case Op::kAdd: return a + b;
        case Op::kSub: return a - b;
        case Op::kMul: return a * b;
        case Op::kDiv:
          if (b == 0) {
            throw EvalError("division by zero", expr.line, expr.column);
          }
          return a / b;
        case Op::kMod:
          if (b == 0) {
            throw EvalError("modulo by zero", expr.line, expr.column);
          }
          return a % b;
        default:
          break;
      }
      throw EvalError("unsupported binary operator", expr.line, expr.column);
    }

    case ExprKind::kTernary:
      return evaluate(*expr.a, ctx) != 0 ? evaluate(*expr.b, ctx)
                                         : evaluate(*expr.c, ctx);

    case ExprKind::kCall: {
      const Value a = evaluate(*expr.a, ctx);
      const Value b = evaluate(*expr.b, ctx);
      if (expr.name == "min") return std::min(a, b);
      if (expr.name == "max") return std::max(a, b);
      throw EvalError("unknown function '" + expr.name + "'", expr.line,
                      expr.column);
    }
  }
  throw EvalError("corrupt expression node", expr.line, expr.column);
}

bool references_state(const Expr& expr) {
  switch (expr.kind) {
    case ExprKind::kNumber:
      return false;
    case ExprKind::kVariable:
      return expr.name == "d" || expr.name == "a" || expr.name == "p" ||
             expr.name == "e" || expr.name == "dstar" ||
             expr.name == "astar" || expr.name == "estar";
    case ExprKind::kUnary:
      return references_state(*expr.a);
    case ExprKind::kBinary:
      return references_state(*expr.a) || references_state(*expr.b);
    case ExprKind::kTernary:
      return references_state(*expr.a) || references_state(*expr.b) ||
             references_state(*expr.c);
    case ExprKind::kCall:
      return references_state(*expr.a) || references_state(*expr.b);
  }
  return false;
}

}  // namespace gcalib::gcal
