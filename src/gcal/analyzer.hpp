// Static analysis of gcal programs: derives, without executing the
// program, each generation's activity pattern and pointer classification
// (none / static / data-dependent), per-cell static source sets and the
// expected congestion — the same information core/access_pattern.hpp
// declares by hand for the Hirschberg machine.  On top of that the
// analyzer builds a hardware FieldPortrait, which plugs straight into the
// calibrated cost model: write a GCA program in gcal, get an FPGA
// synthesis estimate.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "gca/execution.hpp"
#include "gcal/ast.hpp"
#include "hw/cell_model.hpp"
#include "hw/cost_model.hpp"

namespace gcalib::gcal {

/// Pointer classification of one generation.
enum class PointerClass {
  kNone,           ///< no global read
  kStatic,         ///< pure function of position (and sub-generation)
  kDataDependent,  ///< references cell state -> extended cell needed
};

[[nodiscard]] const char* to_string(PointerClass cls);

/// Analysis record of one generation (aggregated over its sub-generations
/// for `repeat` generations, evaluated at a concrete n).
struct GenerationAnalysis {
  std::string name;
  bool repeat = false;
  PointerClass pointer_class = PointerClass::kNone;
  std::size_t active_cells_first = 0;  ///< first sub-generation
  std::size_t max_congestion = 0;      ///< exact for static; 0 for dynamic
                                       ///< (unknowable without data)
};

/// Whole-program analysis at size n.
struct ProgramAnalysis {
  std::size_t n = 0;
  std::vector<GenerationAnalysis> generations;  ///< prologue then loop
  hw::FieldPortrait portrait;  ///< per-cell static sources + extended flags
  /// Worst congestion over all static generations.
  std::size_t static_max_congestion = 0;
};

/// Analyzes `program` for problem size n (n >= 1).  Throws EvalError if a
/// static pointer expression evaluates out of field range.
[[nodiscard]] ProgramAnalysis analyze(const Program& program, std::size_t n);

/// Lowers a generation's `active` clause to an engine ActiveRegion over the
/// (n+1)-row by n-column Hirschberg field — a *superset* of the cells where
/// the clause can evaluate nonzero, which is exactly the contract
/// `Engine::step(rule, region)` requires (see DESIGN.md §9).
///
/// The lowering is conservative: the clause is flattened as a conjunction
/// and each conjunct may tighten the region.  Recognised conjuncts are
/// position-only constants (folded; a constant 0 empties the region),
/// `square`, `bottom`, `row == C`, `col == C`, `(col % M) == R`, and
/// linear column bounds `col + C <op> B` (both orientations of
/// <, <=, >, >=).  Anything else — data-dependent predicates, disjunctions,
/// the tree variant's ring conditions — leaves the region unchanged, so an
/// unanalysable clause simply falls back to the whole field.  `sub` is the
/// sub-generation number the `sub` builtin folds to.
[[nodiscard]] gca::ActiveRegion lower_active_region(const Expr& active,
                                                    std::size_t n,
                                                    std::size_t sub);

/// Synthesis estimate for the program's derived field structure, using the
/// Cyclone-II-calibrated coefficients.
[[nodiscard]] hw::SynthesisEstimate estimate_program(const Program& program,
                                                     std::size_t n);

/// Canonical pretty-printer: renders a Program back to gcal source.
/// parse(to_source(parse(s))) is structurally identical to parse(s)
/// (round-trip property, tested).
[[nodiscard]] std::string to_source(const Program& program);

}  // namespace gcalib::gcal
