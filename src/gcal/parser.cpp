#include "gcal/parser.hpp"

#include <utility>

namespace gcalib::gcal {

namespace {

class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  Program parse_program() {
    expect(TokenKind::kProgram);
    Program program;
    program.name = expect(TokenKind::kIdentifier).text;
    bool seen_loop = false;
    while (!at(TokenKind::kEnd)) {
      if (at(TokenKind::kLoop)) {
        if (seen_loop) {
          fail("only one loop block is allowed");
        }
        seen_loop = true;
        advance();
        expect(TokenKind::kColon);
        while (at(TokenKind::kGeneration)) {
          program.loop.push_back(parse_generation());
        }
        if (program.loop.empty()) fail("loop block has no generations");
      } else if (at(TokenKind::kGeneration)) {
        if (seen_loop) {
          fail("generations after the loop block are not supported");
        }
        program.prologue.push_back(parse_generation());
      } else {
        fail("expected 'generation' or 'loop'");
      }
    }
    if (program.prologue.empty() && program.loop.empty()) {
      fail("program has no generations");
    }
    return program;
  }

 private:
  GenerationDef parse_generation() {
    const Token& keyword = expect(TokenKind::kGeneration);
    GenerationDef generation;
    generation.line = keyword.line;
    generation.name = expect(TokenKind::kIdentifier).text;
    if (at(TokenKind::kRepeat)) {
      generation.repeat = true;
      advance();
      if (at(TokenKind::kIdentifier) && current().text == "rows") {
        generation.repeat_rows = true;
        advance();
      }
    }
    expect(TokenKind::kColon);
    while (true) {
      if (at(TokenKind::kActive)) {
        advance();
        if (generation.active) fail("duplicate 'active' clause");
        generation.active = parse_expr();
      } else if (at(TokenKind::kIdentifier) &&
                 (current().text == "p" || current().text == "d" ||
                  current().text == "e") &&
                 tokens_[pos_ + 1].kind == TokenKind::kAssign) {
        const std::string target = current().text;
        advance();
        advance();  // '='
        ExprPtr value = parse_expr();
        if (target == "p") {
          if (generation.pointer) fail("duplicate 'p =' clause");
          generation.pointer = std::move(value);
        } else if (target == "d") {
          if (generation.data) fail("duplicate 'd =' clause");
          generation.data = std::move(value);
        } else {
          if (generation.data_e) fail("duplicate 'e =' clause");
          generation.data_e = std::move(value);
        }
      } else {
        break;
      }
    }
    if (!generation.active) {
      fail("generation '" + generation.name + "' is missing 'active'");
    }
    if (!generation.data && !generation.data_e) {
      fail("generation '" + generation.name + "' is missing 'd =' or 'e ='");
    }
    return generation;
  }

  ExprPtr parse_expr() { return parse_ternary(); }

  ExprPtr parse_ternary() {
    ExprPtr cond = parse_or();
    if (!at(TokenKind::kQuestion)) return cond;
    const Token& tok = current();
    advance();
    ExprPtr then_branch = parse_expr();
    expect(TokenKind::kColon);
    ExprPtr else_branch = parse_expr();
    auto node = std::make_unique<Expr>();
    node->kind = ExprKind::kTernary;
    node->a = std::move(cond);
    node->b = std::move(then_branch);
    node->c = std::move(else_branch);
    node->line = tok.line;
    node->column = tok.column;
    return node;
  }

  ExprPtr parse_or() {
    return parse_left_assoc({{TokenKind::kOrOr, Op::kOr}},
                            [this] { return parse_and(); });
  }
  ExprPtr parse_and() {
    return parse_left_assoc({{TokenKind::kAndAnd, Op::kAnd}},
                            [this] { return parse_cmp(); });
  }
  ExprPtr parse_cmp() {
    return parse_left_assoc({{TokenKind::kEq, Op::kEq},
                             {TokenKind::kNe, Op::kNe},
                             {TokenKind::kLe, Op::kLe},
                             {TokenKind::kGe, Op::kGe},
                             {TokenKind::kLt, Op::kLt},
                             {TokenKind::kGt, Op::kGt}},
                            [this] { return parse_shift(); });
  }
  ExprPtr parse_shift() {
    return parse_left_assoc({{TokenKind::kShl, Op::kShl},
                             {TokenKind::kShr, Op::kShr}},
                            [this] { return parse_add(); });
  }
  ExprPtr parse_add() {
    return parse_left_assoc({{TokenKind::kPlus, Op::kAdd},
                             {TokenKind::kMinus, Op::kSub}},
                            [this] { return parse_mul(); });
  }
  ExprPtr parse_mul() {
    return parse_left_assoc({{TokenKind::kStar, Op::kMul},
                             {TokenKind::kSlash, Op::kDiv},
                             {TokenKind::kPercent, Op::kMod}},
                            [this] { return parse_unary(); });
  }

  template <typename Sub>
  ExprPtr parse_left_assoc(
      std::initializer_list<std::pair<TokenKind, Op>> operators, Sub&& sub) {
    ExprPtr lhs = sub();
    while (true) {
      bool matched = false;
      for (const auto& [kind, op] : operators) {
        if (at(kind)) {
          const Token& tok = current();
          advance();
          auto node = std::make_unique<Expr>();
          node->kind = ExprKind::kBinary;
          node->op = op;
          node->a = std::move(lhs);
          node->b = sub();
          node->line = tok.line;
          node->column = tok.column;
          lhs = std::move(node);
          matched = true;
          break;
        }
      }
      if (!matched) return lhs;
    }
  }

  ExprPtr parse_unary() {
    if (at(TokenKind::kBang) || at(TokenKind::kMinus)) {
      const Token& tok = current();
      const Op op = at(TokenKind::kBang) ? Op::kNot : Op::kNeg;
      advance();
      auto node = std::make_unique<Expr>();
      node->kind = ExprKind::kUnary;
      node->op = op;
      node->a = parse_unary();
      node->line = tok.line;
      node->column = tok.column;
      return node;
    }
    return parse_primary();
  }

  ExprPtr parse_primary() {
    const Token& tok = current();
    if (at(TokenKind::kNumber)) {
      advance();
      auto node = std::make_unique<Expr>();
      node->kind = ExprKind::kNumber;
      node->number = tok.value;
      node->line = tok.line;
      node->column = tok.column;
      return node;
    }
    if (at(TokenKind::kIdentifier)) {
      advance();
      auto node = std::make_unique<Expr>();
      node->line = tok.line;
      node->column = tok.column;
      node->name = tok.text;
      if (at(TokenKind::kLParen)) {
        advance();
        node->kind = ExprKind::kCall;
        node->a = parse_expr();
        expect(TokenKind::kComma);
        node->b = parse_expr();
        expect(TokenKind::kRParen);
      } else {
        node->kind = ExprKind::kVariable;
      }
      return node;
    }
    if (at(TokenKind::kLParen)) {
      advance();
      ExprPtr inner = parse_expr();
      expect(TokenKind::kRParen);
      return inner;
    }
    fail(std::string("expected an expression, found ") +
         to_string(current().kind));
  }

  [[nodiscard]] const Token& current() const { return tokens_[pos_]; }
  [[nodiscard]] bool at(TokenKind kind) const {
    return current().kind == kind;
  }
  void advance() {
    if (!at(TokenKind::kEnd)) ++pos_;
  }
  const Token& expect(TokenKind kind) {
    if (!at(kind)) {
      fail(std::string("expected ") + to_string(kind) + ", found " +
           to_string(current().kind));
    }
    const Token& tok = current();
    advance();
    return tok;
  }
  [[noreturn]] void fail(const std::string& message) const {
    throw ParseError(message, current().line, current().column);
  }

  std::vector<Token> tokens_;
  std::size_t pos_ = 0;
};

}  // namespace

Program parse(const std::string& source) {
  Parser parser(lex(source));
  return parser.parse_program();
}

}  // namespace gcalib::gcal
