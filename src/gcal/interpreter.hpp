// gcal — a rule-description language for Global Cellular Automata.
//
// The paper presents its algorithm as a state graph (Figure 2): per
// generation, a pointer operation and a data operation over position
// variables.  gcal is exactly that, as text.  The interpreter executes a
// gcal program on the generic GCA engine over the paper's (n+1) x n
// Hirschberg field layout, which makes machine descriptions testable
// against the hand-written C++ rules (the test suite runs the embedded
// Hirschberg program and compares the D field with core::HirschbergGca
// after every generation).
//
// Language reference
// ------------------
//   program NAME
//   generation NAME [repeat [rows]]: # prologue: runs once, in order
//     active EXPR                    # which cells participate (0 = idle)
//     p = EXPR                       # optional: global read target
//     d = EXPR                       # new d value (optional if e = given)
//     e = EXPR                       # new e value (second register)
//   loop:                            # body repeats ceil(lg n) times
//     generation ... (as above)
//
// `repeat` generations run ceil(lg n) sub-generations with `sub` = 0,1,...;
// `repeat rows` runs ceil(lg (n+1)) of them (rings over all n+1 rows).
// When both `d =` and `e =` are present they evaluate against the old
// state and commit together (synchronous semantics within the cell).
//
// Expression variables (all evaluate per cell):
//   n, nn (= n*n), rows (= n+1), index, row, col, sub,
//   d, e, a, p (own state), dstar, estar, astar (global cell, needs `p =`),
//   inf (the infinity code), square (1 iff row < n), bottom (1 iff
//   row == n), all (1).
// Operators: ?: || && == != < > <= >= << >> + - * / % unary - !
// Functions: min(x, y), max(x, y).
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <stdexcept>
#include <string>
#include <vector>

#include "gca/execution.hpp"
#include "gcal/ast.hpp"
#include "graph/graph.hpp"

namespace gcalib::gca {
class MetricsSink;
}  // namespace gcalib::gca

namespace gcalib::gcal {

/// Thrown for semantic errors during execution (unknown variable, use of
/// dstar without a pointer clause, division by zero, pointer out of range).
class EvalError : public std::runtime_error {
 public:
  EvalError(const std::string& message, int line, int column)
      : std::runtime_error("gcal:" + std::to_string(line) + ":" +
                           std::to_string(column) + ": " + message) {}
};

/// Result of running a gcal program.
struct GcalRunResult {
  std::vector<graph::NodeId> labels;  ///< column 0 of the square at the end
  std::size_t generations = 0;
  std::size_t max_congestion = 0;
  unsigned iterations = 0;
};

/// Executes a parsed program over the Hirschberg field layout for graph
/// `g`; the field is initialised with the adjacency bits, d = 0.
/// `on_generation`, when set, observes the machine after every engine step
/// (for differential testing against the native implementation).
class Interpreter {
 public:
  /// Observer: generation label plus the full D field (row-major,
  /// (n+1) x n, with the infinity code as stored).
  using GenerationHook = std::function<void(
      const std::string& label, const std::vector<std::uint64_t>& d_field)>;

  explicit Interpreter(const Program& program) : program_(program) {}

  /// Runs the program to completion on graph `g`; `hook` (optional)
  /// observes the field after every engine step.  `exec` selects the
  /// engine backend (`exec.hands` is overridden to 1 — gcal programs have
  /// a single pointer clause); a pool policy shares the process-wide
  /// worker set.  `sink` (optional, non-owning) receives timed per-step
  /// statistics, labelled `name` / `name.subK` as in the hook.
  /// `deadline_ms` (0 = unlimited) bounds the run's wall clock; an expiry
  /// throws gca::DeadlineExceeded at the next sweep chunk boundary.
  GcalRunResult run(const graph::Graph& g, const GenerationHook& hook = {},
                    gca::EngineOptions exec = {},
                    gca::MetricsSink* sink = nullptr,
                    std::int64_t deadline_ms = 0) const;

 private:
  const Program& program_;
};

/// Convenience: parse + run.
[[nodiscard]] GcalRunResult run_gcal(const std::string& source,
                                     const graph::Graph& g);

/// The paper's Hirschberg machine expressed in gcal (Figure 2 as text).
[[nodiscard]] const std::string& hirschberg_gcal_source();

/// The congestion-1 tree-broadcast variant in gcal (exercises the second
/// register e, 'repeat rows' ring doublings and local-only generations).
[[nodiscard]] const std::string& hirschberg_tree_gcal_source();

}  // namespace gcalib::gcal
