// Token definitions for the gcal rule-description language.
//
// gcal is a small textual form of the paper's Figure-2 state graph: a GCA
// program is a list of generations, each with an activity condition, an
// optional pointer expression and a data operation.  See
// interpreter.hpp for the language reference and the embedded Hirschberg
// program.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace gcalib::gcal {

enum class TokenKind {
  kIdentifier,
  kNumber,
  // keywords
  kProgram,
  kGeneration,
  kLoop,
  kActive,
  kRepeat,
  // punctuation / operators
  kColon,
  kComma,
  kLParen,
  kRParen,
  kAssign,    // =
  kQuestion,  // ?
  kOrOr,
  kAndAnd,
  kEq,
  kNe,
  kLe,
  kGe,
  kLt,
  kGt,
  kShl,
  kShr,
  kPlus,
  kMinus,
  kStar,
  kSlash,
  kPercent,
  kBang,
  kEnd,
};

struct Token {
  TokenKind kind = TokenKind::kEnd;
  std::string text;        ///< identifier text / number literal
  std::int64_t value = 0;  ///< numeric value for kNumber
  int line = 0;            ///< 1-based source line
  int column = 0;          ///< 1-based source column
};

/// Human-readable token-kind name for diagnostics.
[[nodiscard]] const char* to_string(TokenKind kind);

}  // namespace gcalib::gcal
