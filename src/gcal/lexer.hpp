// Lexer for the gcal language.
#pragma once

#include <stdexcept>
#include <string>
#include <vector>

#include "gcal/token.hpp"

namespace gcalib::gcal {

/// Thrown on lexical or syntactic errors; carries source position.
class ParseError : public std::runtime_error {
 public:
  ParseError(const std::string& message, int line, int column)
      : std::runtime_error("gcal:" + std::to_string(line) + ":" +
                           std::to_string(column) + ": " + message),
        line_(line),
        column_(column) {}

  [[nodiscard]] int line() const { return line_; }
  [[nodiscard]] int column() const { return column_; }

 private:
  int line_;
  int column_;
};

/// Tokenises `source`; '#' starts a comment running to end of line.
/// Throws ParseError on unknown characters or malformed numbers.
/// The result always ends with a kEnd token.
[[nodiscard]] std::vector<Token> lex(const std::string& source);

}  // namespace gcalib::gcal
