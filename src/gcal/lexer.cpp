#include "gcal/lexer.hpp"

#include <cctype>
#include <map>

namespace gcalib::gcal {

const char* to_string(TokenKind kind) {
  switch (kind) {
    case TokenKind::kIdentifier: return "identifier";
    case TokenKind::kNumber: return "number";
    case TokenKind::kProgram: return "'program'";
    case TokenKind::kGeneration: return "'generation'";
    case TokenKind::kLoop: return "'loop'";
    case TokenKind::kActive: return "'active'";
    case TokenKind::kRepeat: return "'repeat'";
    case TokenKind::kColon: return "':'";
    case TokenKind::kComma: return "','";
    case TokenKind::kLParen: return "'('";
    case TokenKind::kRParen: return "')'";
    case TokenKind::kAssign: return "'='";
    case TokenKind::kQuestion: return "'?'";
    case TokenKind::kOrOr: return "'||'";
    case TokenKind::kAndAnd: return "'&&'";
    case TokenKind::kEq: return "'=='";
    case TokenKind::kNe: return "'!='";
    case TokenKind::kLe: return "'<='";
    case TokenKind::kGe: return "'>='";
    case TokenKind::kLt: return "'<'";
    case TokenKind::kGt: return "'>'";
    case TokenKind::kShl: return "'<<'";
    case TokenKind::kShr: return "'>>'";
    case TokenKind::kPlus: return "'+'";
    case TokenKind::kMinus: return "'-'";
    case TokenKind::kStar: return "'*'";
    case TokenKind::kSlash: return "'/'";
    case TokenKind::kPercent: return "'%'";
    case TokenKind::kBang: return "'!'";
    case TokenKind::kEnd: return "end of input";
  }
  return "?";
}

std::vector<Token> lex(const std::string& source) {
  static const std::map<std::string, TokenKind> kKeywords = {
      {"program", TokenKind::kProgram},
      {"generation", TokenKind::kGeneration},
      {"loop", TokenKind::kLoop},
      {"active", TokenKind::kActive},
      {"repeat", TokenKind::kRepeat},
  };

  std::vector<Token> tokens;
  int line = 1;
  int column = 1;
  std::size_t i = 0;

  const auto advance = [&](std::size_t count = 1) {
    for (std::size_t k = 0; k < count && i < source.size(); ++k) {
      if (source[i] == '\n') {
        ++line;
        column = 1;
      } else {
        ++column;
      }
      ++i;
    }
  };
  const auto peek = [&](std::size_t ahead = 0) -> char {
    return i + ahead < source.size() ? source[i + ahead] : '\0';
  };
  const auto emit = [&](TokenKind kind, std::string text, int tok_line,
                        int tok_column, std::int64_t value = 0) {
    tokens.push_back(Token{kind, std::move(text), value, tok_line, tok_column});
  };

  while (i < source.size()) {
    const char c = peek();
    if (c == '#') {
      while (i < source.size() && peek() != '\n') advance();
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c))) {
      advance();
      continue;
    }
    const int tok_line = line;
    const int tok_column = column;
    if (std::isdigit(static_cast<unsigned char>(c))) {
      std::string digits;
      while (std::isdigit(static_cast<unsigned char>(peek()))) {
        digits.push_back(peek());
        advance();
      }
      if (std::isalpha(static_cast<unsigned char>(peek()))) {
        throw ParseError("malformed number '" + digits + peek() + "'",
                         tok_line, tok_column);
      }
      emit(TokenKind::kNumber, digits, tok_line, tok_column,
           std::stoll(digits));
      continue;
    }
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      std::string ident;
      while (std::isalnum(static_cast<unsigned char>(peek())) || peek() == '_') {
        ident.push_back(peek());
        advance();
      }
      const auto keyword = kKeywords.find(ident);
      emit(keyword != kKeywords.end() ? keyword->second
                                      : TokenKind::kIdentifier,
           ident, tok_line, tok_column);
      continue;
    }

    // Operators and punctuation (two-char first).
    const auto two = [&](char a, char b) { return c == a && peek(1) == b; };
    if (two('|', '|')) { emit(TokenKind::kOrOr, "||", tok_line, tok_column); advance(2); continue; }
    if (two('&', '&')) { emit(TokenKind::kAndAnd, "&&", tok_line, tok_column); advance(2); continue; }
    if (two('=', '=')) { emit(TokenKind::kEq, "==", tok_line, tok_column); advance(2); continue; }
    if (two('!', '=')) { emit(TokenKind::kNe, "!=", tok_line, tok_column); advance(2); continue; }
    if (two('<', '=')) { emit(TokenKind::kLe, "<=", tok_line, tok_column); advance(2); continue; }
    if (two('>', '=')) { emit(TokenKind::kGe, ">=", tok_line, tok_column); advance(2); continue; }
    if (two('<', '<')) { emit(TokenKind::kShl, "<<", tok_line, tok_column); advance(2); continue; }
    if (two('>', '>')) { emit(TokenKind::kShr, ">>", tok_line, tok_column); advance(2); continue; }

    TokenKind kind;
    switch (c) {
      case ':': kind = TokenKind::kColon; break;
      case ',': kind = TokenKind::kComma; break;
      case '(': kind = TokenKind::kLParen; break;
      case ')': kind = TokenKind::kRParen; break;
      case '=': kind = TokenKind::kAssign; break;
      case '?': kind = TokenKind::kQuestion; break;
      case '<': kind = TokenKind::kLt; break;
      case '>': kind = TokenKind::kGt; break;
      case '+': kind = TokenKind::kPlus; break;
      case '-': kind = TokenKind::kMinus; break;
      case '*': kind = TokenKind::kStar; break;
      case '/': kind = TokenKind::kSlash; break;
      case '%': kind = TokenKind::kPercent; break;
      case '!': kind = TokenKind::kBang; break;
      default:
        throw ParseError(std::string("unexpected character '") + c + "'",
                         tok_line, tok_column);
    }
    emit(kind, std::string(1, c), tok_line, tok_column);
    advance();
  }
  emit(TokenKind::kEnd, "", line, column);
  return tokens;
}

}  // namespace gcalib::gcal
