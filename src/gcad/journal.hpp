// Durable intake-queue journal: accepted queries survive a SIGKILL.
//
// The zero-loss contract of gcad is that a query acknowledged as
// *accepted* is never silently lost — not even by `kill -9`.  The journal
// is how: the daemon rewrites this file (atomically, temp + rename, same
// discipline as core/checkpoint.cpp) every time the set of
// accepted-but-unfinished queries changes, and a restarting daemon
// re-admits every journaled entry before reading new input.  Replies are
// written *before* the completed entry leaves the journal, so a crash
// between the two replays the query — at-least-once delivery with
// bit-identical results (the solver is deterministic), never at-most-once.
//
// Format GCQJ v1 (all integers little-endian, fixed width):
//
//   offset  size  field
//   0       4     magic "GCQJ"
//   4       4     version (currently 1)
//   8       4     entry count
//   12      4     reserved (zero)
//   then per entry:
//           8     query id
//           4     priority
//           8     remaining deadline budget in ms at journal-write time
//                 (the wall budget excludes daemon downtime; 0 = unlimited)
//           4     client name length L (<= 64)
//           L     client name bytes
//           4     n (node count)
//           4     edge count M
//           8*M   edges as (u, v) u32 pairs
//   end     4     CRC-32 (IEEE) over every preceding byte
//
// The loader validates magic, version, every bound (entry count, name
// length, node count, edge endpoints, self-loops), the exact payload
// length and the CRC, and reports each failure as a distinct kDataLoss
// diagnosis — a torn or tampered journal is rejected, never half-loaded.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.hpp"
#include "graph/graph.hpp"

namespace gcalib::gcad {

/// Hard cap on journaled entries — far above any sane queue bound; rejects
/// fuzzed headers that would otherwise allocate unbounded memory.
inline constexpr std::uint32_t kMaxJournalEntries = 65536;

/// One accepted-but-unfinished query as persisted.
struct JournalEntry {
  std::uint64_t id = 0;
  int priority = 1;
  std::int64_t deadline_ms = 0;  ///< remaining budget when journaled
  std::string client;
  graph::Graph graph;
};

/// The on-disk encoding (header + entries + CRC).
[[nodiscard]] std::string serialize_journal(
    const std::vector<JournalEntry>& entries);

/// Inverse of `serialize_journal` with full validation; `out` is only
/// written on success.  Never throws on malformed input.
[[nodiscard]] Status parse_journal(const std::string& bytes,
                                   std::vector<JournalEntry>& out);

/// Atomically writes the journal (temp file + rename).
[[nodiscard]] Status save_journal_file(
    const std::string& path, const std::vector<JournalEntry>& entries);

/// Loads and validates a journal file.  kNotFound when no file exists
/// (cold start), kDataLoss for a torn or tampered file.
[[nodiscard]] Status load_journal_file(const std::string& path,
                                       std::vector<JournalEntry>& out);

/// Removes the journal file if present (clean shutdown with empty queue).
void remove_journal_file(const std::string& path);

}  // namespace gcalib::gcad
