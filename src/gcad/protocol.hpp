// gcad wire protocol: line-delimited JSON over a byte stream.
//
// The daemon speaks newline-delimited JSON objects in both directions —
// trivially scriptable (`echo '{"id":1,"n":4,"edges":[[0,1]]}' | gcad`),
// diffable in soak logs, and framing-robust: one line is one message, so a
// malformed line poisons exactly itself and the connection keeps going.
//
// Requests (client -> daemon); unknown keys are rejected, not ignored, so
// a typo'd option fails loudly instead of being silently dropped:
//
//   {"id": 7, "op": "solve", "n": 5, "edges": [[0,1],[2,3]],
//    "deadline_ms": 250, "priority": 2, "client": "alice"}
//   {"id": 8, "op": "stats"}      — counters + queue snapshot
//   {"id": 9, "op": "ping"}       — liveness probe
//   {"op": "drain"}               — stop intake, finish queued work
//   {"op": "shutdown"}            — drain, then exit the serve loop
//
// Replies (daemon -> client), one JSON object per line.  A solve yields
// *two* replies: an immediate admission verdict and, if admitted, a later
// terminal outcome — the pair is what the zero-loss audit of the soak
// driver keys on:
//
//   {"id": 7, "event": "accepted", "est_wait_ms": 3}
//   {"id": 7, "event": "done", "status": "OK", "components": 2,
//    "labels": [0,0,2,2,2], "attempts": 1, "elapsed_ms": 1}
//   {"id": 9, "event": "rejected", "status": "RESOURCE_EXHAUSTED",
//    "message": "intake queue full"}
//   {"event": "error", "status": "INVALID_ARGUMENT", "message": "..."}
//
// The parser is a self-contained strict JSON subset reader (objects,
// arrays, strings with escapes, integer/float numbers, true/false/null)
// with hard depth and size limits — hostile input gets a Status, never an
// exception or unbounded allocation.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/status.hpp"
#include "graph/graph.hpp"

namespace gcalib::gcad {

// --- minimal JSON document model ------------------------------------------

/// One parsed JSON value.  Numbers keep both views: `number` (double) and,
/// when the literal was integral and in range, `integer` — protocol ids and
/// sizes must be exact, not rounded doubles.
struct Json {
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  Type type = Type::kNull;
  bool boolean = false;
  double number = 0.0;
  std::int64_t integer = 0;
  bool is_integer = false;
  std::string string;
  std::vector<Json> array;
  std::vector<std::pair<std::string, Json>> object;  ///< insertion order

  /// First member named `key`, or nullptr.
  [[nodiscard]] const Json* find(std::string_view key) const;
};

/// Strict parse of exactly one JSON document (trailing garbage rejected).
/// Depth is limited to 16, element counts by the input length.  Returns
/// kInvalidArgument with a position-annotated diagnosis on any error.
[[nodiscard]] Status parse_json(std::string_view text, Json& out);

// --- requests -------------------------------------------------------------

/// Hard cap on one request line; longer lines are shed at the framing
/// layer with an error reply (and the overlong tail is discarded).
inline constexpr std::size_t kMaxRequestBytes = std::size_t{1} << 20;

/// Largest graph a service query may carry.  The offline tools can go
/// bigger; an always-on daemon bounds its per-request work up front.
inline constexpr std::uint32_t kMaxRequestNodes = 4096;

/// Priority band of a query: 0 (best-effort) .. 3 (critical).  Overload
/// shedding evicts lower bands first; fairness weights scale with band.
inline constexpr int kMinPriority = 0;
inline constexpr int kMaxPriority = 3;

enum class Op { kSolve, kPing, kStats, kDrain, kShutdown };

[[nodiscard]] const char* to_string(Op op);

struct Request {
  std::uint64_t id = 0;  ///< client-chosen correlation id (solve/stats/ping)
  Op op = Op::kSolve;
  graph::Graph graph;            ///< solve only
  std::int64_t deadline_ms = 0;  ///< 0 = unlimited
  int priority = 1;
  std::string client;  ///< fairness key; empty = the anonymous client
};

/// Parses and validates one request line.  Every failure — bad JSON, wrong
/// types, unknown op or key, out-of-range endpoint, self-loop, oversized n
/// — is a distinct kInvalidArgument diagnosis; `out` is only written on
/// success.  Never throws on malformed input.
[[nodiscard]] Status parse_request(const std::string& line, Request& out);

// --- replies --------------------------------------------------------------

/// JSON string escaping (control characters, quote, backslash).
[[nodiscard]] std::string json_escape(std::string_view text);

/// `{"id":..,"event":"accepted","est_wait_ms":..}`
[[nodiscard]] std::string encode_accepted(std::uint64_t id,
                                          std::int64_t est_wait_ms);

/// `{"id":..,"event":"rejected","status":..,"message":..}` — the admission
/// verdict for a shed query (also used for post-accept overload eviction,
/// as event "shed", so an accepted query is never dropped silently).
[[nodiscard]] std::string encode_rejected(std::uint64_t id,
                                          const Status& status,
                                          bool after_accept = false);

/// Terminal outcome of an admitted solve.  Labels are included only for OK.
struct DoneReply {
  std::uint64_t id = 0;
  Status status;
  std::vector<graph::NodeId> labels;
  std::size_t components = 0;
  unsigned attempts = 1;
  std::int64_t elapsed_ms = 0;
};
[[nodiscard]] std::string encode_done(const DoneReply& reply);

/// `{"id":..,"event":"pong"}`
[[nodiscard]] std::string encode_pong(std::uint64_t id);

/// `{"id":..,"event":"stats","queue_depth":..,"counters":{...}}` —
/// `counters_json` must already be a JSON object literal.
[[nodiscard]] std::string encode_stats(std::uint64_t id,
                                       std::size_t queue_depth,
                                       std::int64_t est_wait_ms,
                                       const std::string& counters_json);

/// `{"event":"error","status":..,"message":..}` with optional id — the
/// per-line reply to an unparseable or oversized request.
[[nodiscard]] std::string encode_error(std::optional<std::uint64_t> id,
                                       const Status& status);

/// `{"event":"overload","level":..,"transitions":..}` — escalation-ladder
/// transition announcement.
[[nodiscard]] std::string encode_overload(unsigned level,
                                          std::uint64_t transitions);

}  // namespace gcalib::gcad
