#include "gcad/latency.hpp"

#include <algorithm>
#include <cmath>

#include "common/assert.hpp"

namespace gcalib::gcad {

double LatencyModel::weight(gca::SubstrateMode substrate, std::uint32_t n,
                            std::size_t m) {
  if (n == 0) return 1.0;
  const double logn = std::floor(std::log2(static_cast<double>(n))) + 1.0;
  if (substrate == gca::SubstrateMode::kSparseCsr) {
    // One hook sweep reads every arc (2m) and writes every vertex (n);
    // O(log n) hook/jump sweeps to the fixpoint.
    return (static_cast<double>(n) + 2.0 * static_cast<double>(m)) * logn;
  }
  return static_cast<double>(n) * static_cast<double>(n) * logn * logn;
}

unsigned LatencyModel::bucket_of(std::uint32_t n) {
  unsigned bucket = 0;
  while (n > 1 && bucket + 1 < kBuckets) {
    n >>= 1;
    ++bucket;
  }
  return bucket;
}

unsigned LatencyModel::slot_of(gca::SubstrateMode substrate) {
  GCALIB_EXPECTS_MSG(substrate != gca::SubstrateMode::kAuto,
                     "latency model: substrate must be resolved, not auto");
  return substrate == gca::SubstrateMode::kSparseCsr ? 1u : 0u;
}

void LatencyModel::record(gca::SubstrateMode substrate, std::uint32_t n,
                          std::size_t m, std::int64_t elapsed_ns) {
  if (n == 0 || elapsed_ns < 0) return;
  const double observed = static_cast<double>(elapsed_ns);
  const double per_weight = observed / weight(substrate, n, m);
  std::lock_guard<std::mutex> lock(mutex_);
  Slot& slot = slots_[slot_of(substrate)];
  Bucket& bucket = slot.buckets[bucket_of(n)];
  bucket.ewma_ns = bucket.samples == 0
                       ? observed
                       : (1.0 - kAlpha) * bucket.ewma_ns + kAlpha * observed;
  ++bucket.samples;
  slot.ns_per_weight =
      slot.samples == 0
          ? per_weight
          : (1.0 - kAlpha) * slot.ns_per_weight + kAlpha * per_weight;
  ++slot.samples;
  ++samples_;
}

std::int64_t LatencyModel::estimate_ns(gca::SubstrateMode substrate,
                                       std::uint32_t n, std::size_t m) const {
  if (n == 0) return 0;
  std::lock_guard<std::mutex> lock(mutex_);
  const Slot& slot = slots_[slot_of(substrate)];
  const Bucket& bucket = slot.buckets[bucket_of(n)];
  double estimate = 0.0;
  if (bucket.samples > 0) {
    estimate = bucket.ewma_ns;
  } else if (slot.samples > 0) {
    estimate = slot.ns_per_weight * weight(substrate, n, m);
  } else {
    estimate = kColdNsPerWeight * weight(substrate, n, m);
    if (substrate == gca::SubstrateMode::kSparseCsr) {
      // Cold sparse queries run the parallel CAS-min path when the solver
      // has lanes: assuming single-lane cost here over-sheds exactly the
      // work the parallel path finishes in time.  Warm branches above are
      // learned from observed (already-parallel) wall times.
      estimate /= effective_parallelism(solver_threads_);
    }
  }
  return static_cast<std::int64_t>(std::max(estimate, 1.0));
}

void LatencyModel::set_solver_threads(unsigned threads) {
  std::lock_guard<std::mutex> lock(mutex_);
  solver_threads_ = std::max(threads, 1u);
}

std::uint64_t LatencyModel::samples() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return samples_;
}

}  // namespace gcalib::gcad
