#include "gcad/latency.hpp"

#include <algorithm>
#include <cmath>

namespace gcalib::gcad {

double LatencyModel::weight(std::uint32_t n) {
  if (n == 0) return 1.0;
  const double logn = std::floor(std::log2(static_cast<double>(n))) + 1.0;
  return static_cast<double>(n) * static_cast<double>(n) * logn * logn;
}

unsigned LatencyModel::bucket_of(std::uint32_t n) {
  unsigned bucket = 0;
  while (n > 1 && bucket + 1 < kBuckets) {
    n >>= 1;
    ++bucket;
  }
  return bucket;
}

void LatencyModel::record(std::uint32_t n, std::int64_t elapsed_ns) {
  if (n == 0 || elapsed_ns < 0) return;
  const double observed = static_cast<double>(elapsed_ns);
  const double per_weight = observed / weight(n);
  std::lock_guard<std::mutex> lock(mutex_);
  Bucket& bucket = buckets_[bucket_of(n)];
  bucket.ewma_ns = bucket.samples == 0
                       ? observed
                       : (1.0 - kAlpha) * bucket.ewma_ns + kAlpha * observed;
  ++bucket.samples;
  ns_per_weight_ = samples_ == 0
                       ? per_weight
                       : (1.0 - kAlpha) * ns_per_weight_ + kAlpha * per_weight;
  ++samples_;
}

std::int64_t LatencyModel::estimate_ns(std::uint32_t n) const {
  if (n == 0) return 0;
  std::lock_guard<std::mutex> lock(mutex_);
  const Bucket& bucket = buckets_[bucket_of(n)];
  double estimate = 0.0;
  if (bucket.samples > 0) {
    estimate = bucket.ewma_ns;
  } else if (samples_ > 0) {
    estimate = ns_per_weight_ * weight(n);
  } else {
    estimate = kColdNsPerWeight * weight(n);
  }
  return static_cast<std::int64_t>(std::max(estimate, 1.0));
}

std::uint64_t LatencyModel::samples() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return samples_;
}

}  // namespace gcalib::gcad
