// Admission control: the bounded intake queue of the gcad service loop.
//
// The robust posture under load is to *refuse work early* rather than
// accept everything and let deadlines die quietly in a queue.  Admission
// applies three rules, in order, to every arriving solve:
//
//  1. deadline-aware shedding — if the estimated queue wait plus the
//     estimated solve time (LatencyModel) already exceeds the client's
//     deadline, the query is rejected on arrival with kDeadlineExceeded:
//     it would expire before completing, so running it only burns capacity
//     that deadline-feasible queries need;
//  2. the overload escalation ladder — queue fill drives a level
//     (normal -> elevated -> severe -> critical); at critical, only
//     top-priority work is admitted (kResourceExhausted otherwise);
//  3. bounded queue with priority eviction — when the queue is full, the
//     newest strictly-lower-priority entry is evicted to make room (the
//     eviction is *returned* to the caller, which must reply to the evicted
//     client — an accepted query is never dropped silently); with no lower
//     priority victim available, the arrival itself is shed.
//
// Dequeue side: weighted round-robin across clients — each turn a client
// releases up to (head priority + 1) queries — so one flooding client
// cannot starve the others, and higher-priority traffic drains faster
// without hard starvation of best-effort work.
//
// The controller is deliberately *not* internally synchronised: the server
// serialises access under its queue mutex, and the unit tests drive it
// deterministically.
#pragma once

#include <chrono>
#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "common/status.hpp"
#include "gcad/latency.hpp"
#include "graph/graph.hpp"

namespace gcalib::gcad {

/// One admitted-but-not-yet-solved query.
struct PendingQuery {
  std::uint64_t id = 0;
  graph::Graph graph;
  std::int64_t deadline_ms = 0;  ///< remaining budget at admission (0 = none)
  std::chrono::steady_clock::time_point admitted_at;
  int priority = 1;
  std::string client;
  std::int64_t est_ns = 0;  ///< model estimate at admission (cost accounting)
  bool restored = false;    ///< re-admitted from the journal after a restart
};

struct AdmissionConfig {
  std::size_t queue_capacity = 256;  ///< bounded intake
  unsigned workers = 1;  ///< parallel solve lanes the wait estimate divides by
  /// Substrate the server routes queries to (DESIGN.md §12).  Admission
  /// resolves kAuto per query — estimates must price the engine the query
  /// will actually run on, not a fixed worst case.
  gca::SubstrateMode substrate = gca::SubstrateMode::kAuto;
  /// Escalation-ladder thresholds as queue-fill fractions.
  double elevated_fill = 0.50;
  double severe_fill = 0.75;
  double critical_fill = 0.90;
};

/// The escalation ladder (DESIGN.md §11).  Levels only govern *behaviour*
/// (shedding and batch degradation); they carry no queue state themselves.
enum class OverloadLevel : unsigned {
  kNormal = 0,    ///< full service: retries, self-checks, metrics
  kElevated = 1,  ///< watch state: transitions logged, no behaviour change
  kSevere = 2,    ///< degrade batches: no retries, no per-query self checks
  kCritical = 3,  ///< admit only top-priority work
};

[[nodiscard]] const char* to_string(OverloadLevel level);

/// Outcome of one admission decision.
struct AdmissionVerdict {
  Status status;  ///< OK = admitted; else the reject reason
  std::int64_t est_wait_ms = 0;  ///< estimated queue wait quoted to the client
  /// Lower-priority entries evicted to make room.  The caller owes each an
  /// explicit shed reply — this is the "never silently dropped" contract.
  std::vector<PendingQuery> evicted;
};

class AdmissionController {
 public:
  explicit AdmissionController(AdmissionConfig config, LatencyModel* model);

  /// Decides the fate of one arriving solve.  `draining` refuses all new
  /// work with kUnavailable (the drain path).  On OK the query is queued.
  [[nodiscard]] AdmissionVerdict admit(PendingQuery query, bool draining);

  /// Weighted-round-robin dequeue of up to `max` queries for one
  /// micro-batch.  Entries whose deadline already expired while queued are
  /// *included* — the server owes them a kDeadlineExceeded reply (cheap:
  /// they are detected at dispatch and never executed).
  [[nodiscard]] std::vector<PendingQuery> dequeue_batch(std::size_t max);

  [[nodiscard]] std::size_t depth() const { return depth_; }
  [[nodiscard]] bool empty() const { return depth_ == 0; }

  /// Estimated wall-clock to drain the current backlog plus the in-flight
  /// work, divided across the solve lanes.
  [[nodiscard]] std::int64_t backlog_wait_ms() const;

  /// Cost of the batch currently executing (the server sets this around
  /// each dispatch so admission sees in-flight work, not just the queue).
  void set_in_flight_ns(std::int64_t ns) { in_flight_ns_ = ns; }

  [[nodiscard]] OverloadLevel level() const;

  [[nodiscard]] const AdmissionConfig& config() const { return config_; }

 private:
  struct ClientQueue {
    std::string name;
    std::deque<PendingQuery> entries;
  };

  [[nodiscard]] ClientQueue& client_queue(const std::string& name);
  /// Evicts the newest strictly-lower-priority entry than `priority`;
  /// returns true and appends it to `evicted` on success.
  bool evict_one_below(int priority, std::vector<PendingQuery>& evicted);

  AdmissionConfig config_;
  LatencyModel* model_;  ///< non-owning
  std::vector<ClientQueue> clients_;  ///< rotation order; empty queues pruned
  std::size_t rotation_ = 0;          ///< WRR cursor into `clients_`
  std::size_t depth_ = 0;
  std::int64_t backlog_ns_ = 0;    ///< summed est_ns of queued entries
  std::int64_t in_flight_ns_ = 0;  ///< cost of the executing batch
};

}  // namespace gcalib::gcad
