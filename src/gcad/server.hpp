// gcad server loop: always-on connected components with a robustness spine.
//
// The daemon wraps `core::Runner` behind the line-delimited-JSON protocol
// (gcad/protocol.hpp) with four interlocking robustness mechanisms:
//
//  1. admission control (gcad/admission.hpp) — bounded intake, deadline-
//     aware shedding against the rolling latency model, weighted
//     round-robin fairness across clients;
//  2. dynamic micro-batching — the worker drains the queue into
//     `Runner::solve_batch` calls sized by queue depth (deeper queue ->
//     bigger batch, up to `max_batch`), so PR 5's per-query fault
//     isolation carries straight over to the service path: one corrupt or
//     expired query diagnoses itself, its batch siblings are unaffected;
//  3. graceful drain and crash restart — a stop request (SIGTERM via
//     `request_stop`, the `drain`/`shutdown` ops, or input EOF) stops
//     intake and finishes queued work; accepted-but-unfinished queries
//     live in the CRC-guarded journal (gcad/journal.hpp), which a
//     restarted daemon replays before reading new input, so `kill -9`
//     loses nothing that was ever acknowledged as accepted;
//  4. overload degradation — the escalation ladder sheds lowest-priority
//     work first (admission) and switches batches to a degraded tier (no
//     retries, no metrics sink) under pressure; every level transition
//     bumps the service counters and is announced on the reply stream.
//
// Threading: the caller's thread runs intake (`serve` reads lines); one
// worker thread dispatches batches; `Runner` fans each batch across the
// process-wide shared pool.  Replies from both threads serialise through
// one mutex-protected writer, one line per reply.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <iosfwd>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/runner.hpp"
#include "gca/cancel.hpp"
#include "gca/metrics.hpp"
#include "gcad/admission.hpp"
#include "gcad/journal.hpp"
#include "gcad/latency.hpp"
#include "gcad/protocol.hpp"

namespace gcalib::gcad {

struct ServerOptions {
  unsigned threads = 1;  ///< solve lanes (Runner pool width)
  gca::ExecutionPolicy policy = gca::ExecutionPolicy::kPool;
  gca::SweepMode sweep = gca::SweepMode::kSparse;
  /// Substrate routing (DESIGN.md §12) for every query the daemon solves;
  /// kAuto resolves per query by size and density.  Admission estimates
  /// and the latency model's learning are keyed by the same resolution,
  /// so the crystal ball prices the engine each query actually runs on.
  gca::SubstrateMode substrate = gca::SubstrateMode::kAuto;
  AdmissionConfig admission;  ///< `workers` is overridden with `threads`
  std::string journal_path;   ///< empty = no durability (accepted != durable)
  std::size_t max_batch = 16; ///< micro-batch ceiling
  unsigned retries = 1;       ///< normal-tier retries for corrupt queries
  std::int64_t retry_backoff_ms = 0;
  /// Fault injection for soak runs: expected faults per query (Poisson
  /// over the run schedule); 0 = off.  Injected runs self-check, so
  /// corruption is detected and retried — or reported, never mislabelled.
  double fault_rate = 0.0;
  std::uint64_t fault_seed = 1;
  /// Durable per-query checkpoints (DESIGN.md §15): each query writes its
  /// GCKP / GSKP artifact under `<checkpoint_dir>/q<id>`, so a SIGKILL
  /// mid-solve resumes the interrupted query mid-lattice on replay instead
  /// of from scratch.  Per-query subdirectories keep batch siblings from
  /// racing on one artifact file.  Empty = no durable solver state.
  std::string checkpoint_dir;
  /// Budget for the drain phase; work still queued when it expires stays
  /// in the journal for the next incarnation (checkpoint-not-finish).
  std::int64_t drain_timeout_ms = 30'000;
  /// Per-step metrics sink for normal-tier batches (non-owning; the
  /// degraded tier always runs sink-free).
  gca::MetricsSink* sink = nullptr;
  bool announce_overload = true;  ///< emit {"event":"overload",...} lines
};

class Server {
 public:
  explicit Server(ServerOptions options);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// The blocking serve loop: replays the journal, then reads request
  /// lines from `in` until EOF, a shutdown op, or `request_stop`, then
  /// drains and returns 0 (clean) or 1 (drain timeout left journaled
  /// work behind).  Replies go to `out`, one JSON object per line,
  /// flushed per line.
  int serve(std::istream& in, std::ostream& out);

  /// Stop intake and drain (SIGTERM path).  Callable from any thread;
  /// the intake loop notices at the next line boundary (install the
  /// signal handler without SA_RESTART so a blocking read returns EINTR).
  void request_stop() { stop_.store(true, std::memory_order_release); }

  [[nodiscard]] const gca::ServiceCounters& counters() const {
    return counters_;
  }
  [[nodiscard]] const LatencyModel& latency_model() const { return model_; }

 private:
  /// Per-dispatch context the `configure_query` hook reads from the pool
  /// lanes (set by the single worker thread before each solve_batch).
  struct BatchContext {
    std::vector<std::int64_t> deadlines_ms;  ///< remaining budget per query
    std::vector<std::uint64_t> ids;          ///< query ids (checkpoint dirs)
    std::vector<std::uint32_t> sizes;        ///< node counts (fault plans)
    std::vector<std::size_t> edges;          ///< edge counts (substrate resolve)
    std::vector<std::uint64_t> fault_seeds;  ///< per-query injection seeds
    /// Attempt counter per query: transient faults strike the first
    /// attempt only, so a retry re-executes clean and recovers.
    std::unique_ptr<std::atomic<unsigned>[]> attempts;
  };

  /// Returns false when the line requested shutdown (ends the serve loop).
  bool handle_line(const std::string& line, bool oversized);
  void handle_solve(Request&& request);
  void worker_loop();
  void dispatch_batch(std::vector<PendingQuery> batch);
  void emit(const std::string& line);
  void configure_query(std::size_t index, core::RunOptions& run) const;

  /// Journal mutations — all under `queue_mutex_`.
  void journal_add_locked(const PendingQuery& query);
  void journal_remove_locked(const std::vector<std::uint64_t>& ids);
  void journal_rewrite_locked();
  void replay_journal();

  void update_overload_locked();

  ServerOptions options_;
  gca::ServiceCounters counters_;
  LatencyModel model_;
  gca::CancelToken hard_stop_;  ///< trips in-flight sweeps on drain timeout

  std::unique_ptr<core::Runner> runner_;           ///< normal tier
  std::unique_ptr<core::Runner> degraded_runner_;  ///< severe+ tier

  std::mutex queue_mutex_;
  std::condition_variable queue_cv_;
  AdmissionController admission_;
  /// Accepted-but-unfinished queries as journaled (original deadline and
  /// admission instant kept to recompute the remaining budget on rewrite).
  struct LiveEntry {
    JournalEntry entry;
    std::chrono::steady_clock::time_point admitted_at;
  };
  std::vector<LiveEntry> journaled_;
  OverloadLevel last_level_ = OverloadLevel::kNormal;

  std::mutex out_mutex_;
  std::ostream* out_ = nullptr;

  std::atomic<bool> stop_{false};       ///< stop intake, then drain
  std::atomic<bool> hard_quit_{false};  ///< drain timeout: abandon the queue
  bool draining_ = false;               ///< under queue_mutex_
  bool worker_exit_ = false;            ///< under queue_mutex_
  bool batch_in_flight_ = false;        ///< under queue_mutex_
  /// Worker publishes (release) before solve_batch; pool lanes read
  /// (acquire) from `configure_query`.
  std::atomic<const BatchContext*> current_batch_{nullptr};
};

}  // namespace gcalib::gcad
