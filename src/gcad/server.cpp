#include "gcad/server.hpp"

#include <algorithm>
#include <chrono>
#include <istream>
#include <ostream>

#include "common/assert.hpp"
#include "core/hirschberg_gca.hpp"
#include "fault/fault_plan.hpp"
#include "fault/sparse_fault.hpp"

namespace gcalib::gcad {

namespace {

using Clock = std::chrono::steady_clock;

[[nodiscard]] std::int64_t ms_since(Clock::time_point instant) {
  return std::chrono::duration_cast<std::chrono::milliseconds>(Clock::now() -
                                                               instant)
      .count();
}

}  // namespace

Server::Server(ServerOptions options)
    : options_(std::move(options)),
      admission_([&] {
        AdmissionConfig config = options_.admission;
        config.workers = std::max(1u, options_.threads);
        config.substrate = options_.substrate;
        return config;
      }(), &model_) {
  GCALIB_EXPECTS_MSG(options_.threads >= 1, "gcad: threads must be >= 1");
  // The admission estimator prices cold sparse queries against the
  // parallel CAS-min path this many lanes buy (gcad/latency.hpp).
  model_.set_solver_threads(options_.threads);
  GCALIB_EXPECTS_MSG(options_.max_batch >= 1, "gcad: max_batch must be >= 1");
  GCALIB_EXPECTS_MSG(options_.fault_rate >= 0.0,
                     "gcad: fault_rate must be >= 0");
  GCALIB_EXPECTS_MSG(options_.drain_timeout_ms >= 0,
                     "gcad: drain_timeout_ms must be >= 0");

  core::RunnerOptions normal;
  normal.threads = options_.threads;
  normal.policy = options_.policy;
  normal.sweep = options_.sweep;
  normal.substrate = options_.substrate;
  normal.instrument = false;
  normal.sink = options_.sink;
  normal.retries = options_.retries;
  normal.retry_backoff_ms = options_.retry_backoff_ms;
  normal.cancel = &hard_stop_;
  normal.configure_query = [this](std::size_t index, core::RunOptions& run) {
    configure_query(index, run);
  };
  core::RunnerOptions degraded = normal;
  degraded.retries = 0;
  degraded.retry_backoff_ms = 0;
  degraded.sink = nullptr;
  // Both tiers share the same process-wide pool (ThreadPool::shared), so
  // switching tiers never tears down or respins threads.
  runner_ = std::make_unique<core::Runner>(std::move(normal));
  degraded_runner_ = std::make_unique<core::Runner>(std::move(degraded));
}

Server::~Server() = default;

void Server::emit(const std::string& line) {
  std::lock_guard<std::mutex> lock(out_mutex_);
  if (out_ == nullptr) return;
  *out_ << line << '\n';
  out_->flush();
}

void Server::configure_query(std::size_t index, core::RunOptions& run) const {
  const BatchContext* ctx = current_batch_.load(std::memory_order_acquire);
  if (ctx == nullptr || index >= ctx->deadlines_ms.size()) return;
  run.deadline_ms = ctx->deadlines_ms[index];
  if (!options_.checkpoint_dir.empty()) {
    // One subdirectory per query id: batch siblings solve concurrently and
    // must never race on a shared artifact file.  Either substrate writes
    // its own artifact (GCKP / GSKP) there and resumes from it on replay.
    run.checkpoint_dir =
        options_.checkpoint_dir + "/q" + std::to_string(ctx->ids[index]);
  }
  if (options_.fault_rate > 0.0) {
    // Transient-fault soak mode: the first attempt of each query runs
    // under an injected fault plan with checking on, so corruption is
    // *detected* (never mislabelled); retries re-execute clean, which is
    // exactly how transient upsets recover.  The injector targets the
    // substrate the query will actually run on — the sparse round hooks
    // do not pin routing (DESIGN.md §15), so the choice mirrors the
    // Runner's own resolution.
    run.self_check = true;
    run.certify = true;
    const unsigned attempt =
        ctx->attempts[index].fetch_add(1, std::memory_order_relaxed) + 1;
    if (attempt == 1) {
      const gca::SubstrateMode resolved = core::resolve_substrate(
          options_.substrate, ctx->sizes[index], ctx->edges[index],
          run.threads);
      if (resolved == gca::SubstrateMode::kSparseCsr) {
        auto injector = std::make_shared<fault::SparseInjector>(
            fault::SparseFaultPlan::poisson(ctx->sizes[index],
                                            options_.fault_rate,
                                            ctx->fault_seeds[index]));
        injector->install(run);  // chains hooks, forces sparse_monitors
        // `install` captures the raw injector; parking the shared_ptr in
        // a hook wrapper ties its lifetime to the RunOptions copy the run
        // holds.
        auto previous_after = run.sparse_after_round;
        run.sparse_after_round =
            [injector, previous_after](const core::SparseRoundContext& round) {
              if (previous_after) previous_after(round);
            };
      } else {
        auto injector = std::make_shared<fault::Injector>(
            fault::FaultPlan::poisson(ctx->sizes[index], options_.fault_rate,
                                      ctx->fault_seeds[index]));
        injector->install(run);
        auto previous_on_step = run.on_step;
        run.on_step = [injector,
                       previous_on_step](const core::StepRecord& record) {
          if (previous_on_step) previous_on_step(record);
        };
      }
    }
  }
}

// --- journal bookkeeping (all under queue_mutex_) -------------------------

void Server::journal_rewrite_locked() {
  if (options_.journal_path.empty()) return;
  std::vector<JournalEntry> entries;
  entries.reserve(journaled_.size());
  for (const LiveEntry& live : journaled_) {
    JournalEntry entry = live.entry;
    if (entry.deadline_ms > 0) {
      // Persist the *remaining* budget: the deadline clock stops while the
      // daemon is down and resumes on replay.  Clamped to 1 ms so an
      // already-expired entry replays into an immediate, precise
      // kDeadlineExceeded reply instead of silently vanishing.
      entry.deadline_ms =
          std::max<std::int64_t>(1, entry.deadline_ms - ms_since(live.admitted_at));
    }
    entries.push_back(std::move(entry));
  }
  const Status saved = save_journal_file(options_.journal_path, entries);
  counters_.journal_writes.fetch_add(1, std::memory_order_relaxed);
  if (!saved.ok()) {
    emit(encode_error(std::nullopt, saved));
  }
}

void Server::journal_add_locked(const PendingQuery& query) {
  if (options_.journal_path.empty()) return;
  LiveEntry live;
  live.entry.id = query.id;
  live.entry.priority = query.priority;
  live.entry.deadline_ms = query.deadline_ms;
  live.entry.client = query.client;
  live.entry.graph = query.graph;
  live.admitted_at = query.admitted_at;
  journaled_.push_back(std::move(live));
  journal_rewrite_locked();
}

void Server::journal_remove_locked(const std::vector<std::uint64_t>& ids) {
  if (options_.journal_path.empty() || ids.empty()) return;
  const auto is_removed = [&](const LiveEntry& live) {
    return std::find(ids.begin(), ids.end(), live.entry.id) != ids.end();
  };
  const auto end =
      std::remove_if(journaled_.begin(), journaled_.end(), is_removed);
  if (end == journaled_.end()) return;
  journaled_.erase(end, journaled_.end());
  journal_rewrite_locked();
}

void Server::replay_journal() {
  if (options_.journal_path.empty()) return;
  std::vector<JournalEntry> entries;
  const Status loaded = load_journal_file(options_.journal_path, entries);
  if (loaded.code == StatusCode::kNotFound) return;
  if (!loaded.ok()) {
    // A torn journal is reported loudly but does not stop the daemon:
    // serving new traffic beats dying over unrecoverable history.
    emit(encode_error(std::nullopt, loaded));
    return;
  }
  std::lock_guard<std::mutex> lock(queue_mutex_);
  for (JournalEntry& entry : entries) {
    PendingQuery query;
    query.id = entry.id;
    query.graph = entry.graph;
    query.deadline_ms = entry.deadline_ms;
    query.admitted_at = Clock::now();
    query.priority = entry.priority;
    query.client = entry.client;
    query.restored = true;
    AdmissionVerdict verdict = admission_.admit(std::move(query),
                                                /*draining=*/false);
    for (PendingQuery& evicted : verdict.evicted) {
      // Cannot happen in practice (the journal is bounded by the same
      // queue the last incarnation ran), but the contract holds anyway:
      // an evicted accepted query gets an explicit shed reply.
      emit(encode_rejected(evicted.id,
                           Status::error(StatusCode::kResourceExhausted,
                                         "evicted during journal replay"),
                           /*after_accept=*/true));
      counters_.shed_overload.fetch_add(1, std::memory_order_relaxed);
    }
    if (verdict.status.ok()) {
      LiveEntry live;
      live.entry = std::move(entry);
      live.admitted_at = Clock::now();
      journaled_.push_back(std::move(live));
      counters_.restored.fetch_add(1, std::memory_order_relaxed);
    } else {
      // The replayed query cannot be served (e.g. its remaining budget is
      // provably too small).  It was accepted once, so it is shed loudly,
      // never dropped.
      emit(encode_rejected(entry.id, verdict.status, /*after_accept=*/true));
      counters_.shed_overload.fetch_add(1, std::memory_order_relaxed);
    }
  }
  journal_rewrite_locked();
  update_overload_locked();
  queue_cv_.notify_all();
}

void Server::update_overload_locked() {
  const OverloadLevel level = admission_.level();
  if (level == last_level_) return;
  last_level_ = level;
  counters_.overload_level.store(static_cast<std::uint64_t>(level),
                                 std::memory_order_relaxed);
  const std::uint64_t transitions =
      counters_.overload_transitions.fetch_add(1, std::memory_order_relaxed) +
      1;
  if (options_.announce_overload) {
    emit(encode_overload(static_cast<unsigned>(level), transitions));
  }
}

// --- intake ---------------------------------------------------------------

void Server::handle_solve(Request&& request) {
  PendingQuery query;
  query.id = request.id;
  query.graph = std::move(request.graph);
  query.deadline_ms = request.deadline_ms;
  query.admitted_at = Clock::now();
  query.priority = request.priority;
  query.client = std::move(request.client);

  std::vector<std::string> replies;
  {
    std::lock_guard<std::mutex> lock(queue_mutex_);
    const std::uint64_t id = query.id;
    // Copy kept for the write-ahead journal entry (admit consumes `query`).
    const PendingQuery journal_copy = query;
    AdmissionVerdict verdict = admission_.admit(std::move(query), draining_);
    std::vector<std::uint64_t> evicted_ids;
    for (PendingQuery& evicted : verdict.evicted) {
      replies.push_back(encode_rejected(
          evicted.id,
          Status::error(StatusCode::kResourceExhausted,
                        "shed for higher-priority arrival " +
                            std::to_string(id)),
          /*after_accept=*/true));
      counters_.shed_overload.fetch_add(1, std::memory_order_relaxed);
      evicted_ids.push_back(evicted.id);
    }
    journal_remove_locked(evicted_ids);
    if (verdict.status.ok()) {
      // Write-ahead: the journal holds the query *before* the accepted
      // ack leaves the process, so an ack always implies durability.
      journal_add_locked(journal_copy);
      counters_.accepted.fetch_add(1, std::memory_order_relaxed);
      replies.push_back(encode_accepted(id, verdict.est_wait_ms));
    } else {
      switch (verdict.status.code) {
        case StatusCode::kDeadlineExceeded:
          counters_.rejected_deadline.fetch_add(1, std::memory_order_relaxed);
          break;
        case StatusCode::kUnavailable:
          counters_.rejected_draining.fetch_add(1, std::memory_order_relaxed);
          break;
        default:
          counters_.rejected_queue_full.fetch_add(1,
                                                  std::memory_order_relaxed);
      }
      replies.push_back(encode_rejected(id, verdict.status));
    }
    update_overload_locked();
  }
  for (const std::string& reply : replies) emit(reply);
  queue_cv_.notify_all();
}

bool Server::handle_line(const std::string& line, bool oversized) {
  if (oversized) {
    emit(encode_error(
        std::nullopt,
        Status::error(StatusCode::kInvalidArgument,
                      "request: line of " + std::to_string(line.size()) +
                          " bytes exceeds the " +
                          std::to_string(kMaxRequestBytes) + "-byte limit")));
    return true;
  }
  if (line.empty()) return true;  // blank lines are keep-alive noise

  Request request;
  const Status status = parse_request(line, request);
  if (!status.ok()) {
    // Best-effort correlation: if the line was at least valid JSON with an
    // integral id, echo it so the client can match the error to a request.
    std::optional<std::uint64_t> id;
    Json doc;
    if (parse_json(line, doc).ok() && doc.type == Json::Type::kObject) {
      const Json* found = doc.find("id");
      if (found != nullptr && found->is_integer && found->integer >= 0) {
        id = static_cast<std::uint64_t>(found->integer);
      }
    }
    emit(encode_error(id, status));
    return true;
  }

  switch (request.op) {
    case Op::kSolve:
      handle_solve(std::move(request));
      return true;
    case Op::kPing:
      emit(encode_pong(request.id));
      return true;
    case Op::kStats: {
      std::size_t depth = 0;
      std::int64_t wait_ms = 0;
      {
        std::lock_guard<std::mutex> lock(queue_mutex_);
        depth = admission_.depth();
        wait_ms = admission_.backlog_wait_ms();
      }
      emit(encode_stats(request.id, depth, wait_ms,
                        gca::service_counters_json(counters_.snapshot())));
      return true;
    }
    case Op::kDrain: {
      {
        std::lock_guard<std::mutex> lock(queue_mutex_);
        draining_ = true;
      }
      emit("{\"event\":\"draining\"}");
      queue_cv_.notify_all();
      return true;
    }
    case Op::kShutdown:
      return false;
  }
  return true;
}

// --- worker ---------------------------------------------------------------

void Server::dispatch_batch(std::vector<PendingQuery> batch) {
  const bool draining_now = [&] {
    std::lock_guard<std::mutex> lock(queue_mutex_);
    return draining_;
  }();

  BatchContext ctx;
  std::vector<graph::Graph> graphs;
  std::vector<const PendingQuery*> running;
  std::vector<std::uint64_t> finished_ids;
  std::vector<std::string> replies;

  for (const PendingQuery& query : batch) {
    std::int64_t remaining = 0;
    if (query.deadline_ms > 0) {
      remaining = query.deadline_ms - ms_since(query.admitted_at);
      if (remaining <= 0) {
        // Expired while queued: a precise reply, zero execution cost.
        DoneReply reply;
        reply.id = query.id;
        reply.status = Status::error(
            StatusCode::kDeadlineExceeded,
            "deadline expired after " + std::to_string(ms_since(query.admitted_at)) +
                " ms in the intake queue");
        replies.push_back(encode_done(reply));
        counters_.expired.fetch_add(1, std::memory_order_relaxed);
        if (draining_now) {
          counters_.drained.fetch_add(1, std::memory_order_relaxed);
        }
        finished_ids.push_back(query.id);
        continue;
      }
    }
    ctx.deadlines_ms.push_back(remaining);
    ctx.ids.push_back(query.id);
    ctx.sizes.push_back(query.graph.node_count());
    ctx.edges.push_back(query.graph.edge_count());
    ctx.fault_seeds.push_back(options_.fault_seed * 0x9E3779B97F4A7C15ull +
                              query.id);
    graphs.push_back(query.graph);
    running.push_back(&query);
  }

  if (!graphs.empty()) {
    ctx.attempts = std::make_unique<std::atomic<unsigned>[]>(graphs.size());
    for (std::size_t i = 0; i < graphs.size(); ++i) {
      ctx.attempts[i].store(0, std::memory_order_relaxed);
    }

    // Overload degradation: severe and critical pressure dispatch on the
    // cheap tier (no retries, no metrics) — latency beats completeness
    // exactly when the queue says so.
    OverloadLevel level = OverloadLevel::kNormal;
    {
      std::lock_guard<std::mutex> lock(queue_mutex_);
      level = admission_.level();
    }
    const bool degraded = level >= OverloadLevel::kSevere;
    counters_.batches.fetch_add(1, std::memory_order_relaxed);
    if (degraded) {
      counters_.degraded_batches.fetch_add(1, std::memory_order_relaxed);
    }
    const core::Runner& runner = degraded ? *degraded_runner_ : *runner_;

    current_batch_.store(&ctx, std::memory_order_release);
    const std::vector<core::QueryOutcome> outcomes =
        runner.solve_batch(graphs);
    current_batch_.store(nullptr, std::memory_order_release);

    for (std::size_t i = 0; i < outcomes.size(); ++i) {
      const core::QueryOutcome& outcome = outcomes[i];
      const PendingQuery& query = *running[i];
      if (hard_quit_.load(std::memory_order_relaxed) &&
          outcome.status.code == StatusCode::kCancelled) {
        // Drain timeout tripped the hard stop mid-batch: the query stays
        // journaled and replays in the next incarnation — no reply now.
        continue;
      }
      DoneReply reply;
      reply.id = query.id;
      reply.status = outcome.status;
      reply.attempts = outcome.attempts;
      reply.elapsed_ms = outcome.elapsed_ns / 1'000'000;
      if (outcome.ok()) {
        reply.labels = outcome.result.labels;
        reply.components = outcome.result.components;
        counters_.completed_ok.fetch_add(1, std::memory_order_relaxed);
        if (outcome.recovered()) {
          counters_.recovered.fetch_add(1, std::memory_order_relaxed);
        }
        // Thread-aware resolve, mirroring the admission pricing: the
        // sample must land in the slot the query was priced against.
        model_.record(core::resolve_substrate(options_.substrate,
                                              query.graph.node_count(),
                                              query.graph.edge_count(),
                                              options_.threads),
                      query.graph.node_count(), query.graph.edge_count(),
                      outcome.elapsed_ns);
      } else if (outcome.status.code == StatusCode::kDeadlineExceeded) {
        counters_.expired.fetch_add(1, std::memory_order_relaxed);
      } else {
        counters_.failed.fetch_add(1, std::memory_order_relaxed);
      }
      if (draining_now) {
        counters_.drained.fetch_add(1, std::memory_order_relaxed);
      }
      replies.push_back(encode_done(reply));
      finished_ids.push_back(query.id);
    }
  }

  // Reply before unjournaling: a crash between the two replays the query
  // (at-least-once with deterministic results), never loses it.
  for (const std::string& reply : replies) emit(reply);
  {
    std::lock_guard<std::mutex> lock(queue_mutex_);
    journal_remove_locked(finished_ids);
  }
}

void Server::worker_loop() {
  std::unique_lock<std::mutex> lock(queue_mutex_);
  for (;;) {
    queue_cv_.wait(lock, [&] {
      return hard_quit_.load(std::memory_order_relaxed) || worker_exit_ ||
             !admission_.empty();
    });
    if (hard_quit_.load(std::memory_order_relaxed)) return;
    if (admission_.empty()) {
      if (worker_exit_) return;
      continue;
    }
    // Dynamic micro-batching: batch size tracks queue depth — a lone
    // query dispatches alone (lowest latency), a deep queue amortises
    // dispatch across up to max_batch queries (highest throughput).
    const std::size_t depth = admission_.depth();
    std::vector<PendingQuery> batch =
        admission_.dequeue_batch(std::min(depth, options_.max_batch));
    std::int64_t batch_cost = 0;
    for (const PendingQuery& query : batch) batch_cost += query.est_ns;
    admission_.set_in_flight_ns(batch_cost);
    batch_in_flight_ = true;
    lock.unlock();

    dispatch_batch(std::move(batch));

    lock.lock();
    admission_.set_in_flight_ns(0);
    batch_in_flight_ = false;
    update_overload_locked();
    queue_cv_.notify_all();
  }
}

// --- the serve loop -------------------------------------------------------

int Server::serve(std::istream& in, std::ostream& out) {
  {
    std::lock_guard<std::mutex> lock(out_mutex_);
    out_ = &out;
  }
  replay_journal();
  std::thread worker([this] { worker_loop(); });

  std::string line;
  while (!stop_.load(std::memory_order_acquire) && std::getline(in, line)) {
    if (!handle_line(line, line.size() > kMaxRequestBytes)) break;
  }

  // Drain: intake is over; let the worker finish the backlog within the
  // drain budget, then hard-stop whatever is left (it stays journaled).
  int exit_code = 0;
  {
    std::unique_lock<std::mutex> lock(queue_mutex_);
    draining_ = true;
    queue_cv_.notify_all();
    const bool drained = queue_cv_.wait_for(
        lock, std::chrono::milliseconds(options_.drain_timeout_ms),
        [&] { return admission_.empty() && !batch_in_flight_; });
    if (!drained) {
      hard_quit_.store(true, std::memory_order_release);
      hard_stop_.request_cancel();
      exit_code = 1;
    }
    worker_exit_ = true;
    queue_cv_.notify_all();
  }
  worker.join();

  {
    std::lock_guard<std::mutex> lock(queue_mutex_);
    if (!options_.journal_path.empty()) {
      if (journaled_.empty()) {
        remove_journal_file(options_.journal_path);
      } else {
        journal_rewrite_locked();  // freshen remaining deadline budgets
      }
    }
  }
  {
    std::lock_guard<std::mutex> lock(out_mutex_);
    out_ = nullptr;
  }
  return exit_code;
}

}  // namespace gcalib::gcad
