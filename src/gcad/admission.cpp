#include "gcad/admission.hpp"

#include <algorithm>

#include "common/assert.hpp"
#include "core/cc_solver.hpp"
#include "gcad/protocol.hpp"

namespace gcalib::gcad {

const char* to_string(OverloadLevel level) {
  switch (level) {
    case OverloadLevel::kNormal: return "normal";
    case OverloadLevel::kElevated: return "elevated";
    case OverloadLevel::kSevere: return "severe";
    case OverloadLevel::kCritical: return "critical";
  }
  return "unknown";
}

AdmissionController::AdmissionController(AdmissionConfig config,
                                         LatencyModel* model)
    : config_(config), model_(model) {
  GCALIB_EXPECTS_MSG(config_.queue_capacity >= 1,
                     "admission: queue capacity must be >= 1");
  GCALIB_EXPECTS_MSG(config_.workers >= 1,
                     "admission: workers must be >= 1");
  GCALIB_EXPECTS_MSG(model_ != nullptr,
                     "admission: a latency model is required");
  GCALIB_EXPECTS_MSG(config_.elevated_fill <= config_.severe_fill &&
                         config_.severe_fill <= config_.critical_fill,
                     "admission: ladder thresholds must be non-decreasing");
}

OverloadLevel AdmissionController::level() const {
  const double fill = static_cast<double>(depth_) /
                      static_cast<double>(config_.queue_capacity);
  if (fill >= config_.critical_fill) return OverloadLevel::kCritical;
  if (fill >= config_.severe_fill) return OverloadLevel::kSevere;
  if (fill >= config_.elevated_fill) return OverloadLevel::kElevated;
  return OverloadLevel::kNormal;
}

std::int64_t AdmissionController::backlog_wait_ms() const {
  const std::int64_t total = backlog_ns_ + in_flight_ns_;
  const std::int64_t per_lane =
      total / static_cast<std::int64_t>(config_.workers);
  return per_lane / 1'000'000;
}

AdmissionController::ClientQueue& AdmissionController::client_queue(
    const std::string& name) {
  for (ClientQueue& client : clients_) {
    if (client.name == name) return client;
  }
  clients_.push_back(ClientQueue{name, {}});
  return clients_.back();
}

bool AdmissionController::evict_one_below(int priority,
                                          std::vector<PendingQuery>& evicted) {
  // Victim choice: the *newest* entry of the *lowest* priority band below
  // the arrival — newest because it has waited least (least sunk cost),
  // lowest band first because that is the ladder's shed order.
  ClientQueue* victim_client = nullptr;
  std::size_t victim_index = 0;
  int victim_priority = priority;
  for (ClientQueue& client : clients_) {
    for (std::size_t i = client.entries.size(); i-- > 0;) {
      const PendingQuery& entry = client.entries[i];
      if (entry.priority < victim_priority) {
        victim_client = &client;
        victim_index = i;
        victim_priority = entry.priority;
      }
    }
  }
  if (victim_client == nullptr) return false;
  auto it = victim_client->entries.begin() +
            static_cast<std::ptrdiff_t>(victim_index);
  backlog_ns_ -= it->est_ns;
  --depth_;
  evicted.push_back(std::move(*it));
  victim_client->entries.erase(it);
  return true;
}

AdmissionVerdict AdmissionController::admit(PendingQuery query,
                                            bool draining) {
  AdmissionVerdict verdict;
  if (draining) {
    verdict.status = Status::error(
        StatusCode::kUnavailable,
        "service is draining; no new work is accepted");
    return verdict;
  }

  // Price the query on the substrate it will actually run on: the model
  // keeps separate calibrations per substrate (latency.hpp), so a stream
  // of cheap sparse solves never miscalibrates dense admission.  The
  // worker count doubles as the solver-thread budget a lone query can
  // claim, so routing is thread-aware (core::auto_substrate overload).
  const gca::SubstrateMode resolved = core::resolve_substrate(
      config_.substrate, query.graph.node_count(), query.graph.edge_count(),
      config_.workers);
  query.est_ns = model_->estimate_ns(resolved, query.graph.node_count(),
                                     query.graph.edge_count());
  const std::int64_t est_wait_ms = backlog_wait_ms();
  const std::int64_t est_total_ms =
      est_wait_ms + query.est_ns / 1'000'000;
  verdict.est_wait_ms = est_wait_ms;

  // Rule 1: deadline-aware shedding — reject-on-arrival when the query
  // cannot plausibly finish inside its own budget.
  if (query.deadline_ms > 0 && est_total_ms > query.deadline_ms) {
    verdict.status = Status::error(
        StatusCode::kDeadlineExceeded,
        "estimated completion in " + std::to_string(est_total_ms) +
            " ms exceeds the " + std::to_string(query.deadline_ms) +
            " ms deadline; shed at admission");
    return verdict;
  }

  // Rule 2: the escalation ladder — critical overload admits only
  // top-priority work.
  if (level() == OverloadLevel::kCritical &&
      query.priority < kMaxPriority) {
    verdict.status = Status::error(
        StatusCode::kResourceExhausted,
        "critical overload (queue " + std::to_string(depth_) + "/" +
            std::to_string(config_.queue_capacity) +
            "); only priority " + std::to_string(kMaxPriority) +
            " is admitted");
    return verdict;
  }

  // Rule 3: bounded queue with priority eviction.
  if (depth_ >= config_.queue_capacity) {
    if (!evict_one_below(query.priority, verdict.evicted)) {
      verdict.status = Status::error(
          StatusCode::kResourceExhausted,
          "intake queue full (" + std::to_string(config_.queue_capacity) +
              ") with no lower-priority work to shed");
      return verdict;
    }
  }

  backlog_ns_ += query.est_ns;
  ++depth_;
  client_queue(query.client).entries.push_back(std::move(query));
  verdict.status = Status{};
  return verdict;
}

std::vector<PendingQuery> AdmissionController::dequeue_batch(
    std::size_t max) {
  std::vector<PendingQuery> batch;
  if (max == 0) return batch;
  while (batch.size() < max && depth_ > 0) {
    // Prune empty client queues; keep the rotation cursor stable.
    for (std::size_t i = 0; i < clients_.size();) {
      if (clients_[i].entries.empty()) {
        clients_.erase(clients_.begin() + static_cast<std::ptrdiff_t>(i));
        if (rotation_ > i) --rotation_;
      } else {
        ++i;
      }
    }
    if (clients_.empty()) break;
    if (rotation_ >= clients_.size()) rotation_ = 0;
    ClientQueue& client = clients_[rotation_];
    // WRR: a client's turn releases up to (head priority + 1) queries, so
    // higher-priority streams drain faster without starving anyone.
    const std::size_t quota =
        static_cast<std::size_t>(client.entries.front().priority) + 1;
    for (std::size_t taken = 0;
         taken < quota && !client.entries.empty() && batch.size() < max;
         ++taken) {
      PendingQuery& head = client.entries.front();
      backlog_ns_ -= head.est_ns;
      --depth_;
      batch.push_back(std::move(head));
      client.entries.pop_front();
    }
    ++rotation_;
  }
  return batch;
}

}  // namespace gcalib::gcad
