#include "gcad/protocol.hpp"

#include <cctype>
#include <charconv>
#include <cmath>
#include <limits>

namespace gcalib::gcad {

namespace {

[[nodiscard]] Status invalid(std::string message) {
  return Status::error(StatusCode::kInvalidArgument,
                       "request: " + std::move(message));
}

// --- JSON parser ----------------------------------------------------------

constexpr int kMaxDepth = 16;

class JsonParser {
 public:
  explicit JsonParser(std::string_view text) : text_(text) {}

  Status parse(Json& out) {
    Status status = value(out, 0);
    if (!status.ok()) return status;
    skip_ws();
    if (pos_ != text_.size()) {
      return fail("trailing garbage after the JSON document");
    }
    return Status{};
  }

 private:
  [[nodiscard]] Status fail(const std::string& message) const {
    return Status::error(StatusCode::kInvalidArgument,
                         "json: " + message + " (at byte " +
                             std::to_string(pos_) + ")");
  }

  void skip_ws() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  [[nodiscard]] bool eat(char expected) {
    if (pos_ < text_.size() && text_[pos_] == expected) {
      ++pos_;
      return true;
    }
    return false;
  }

  Status value(Json& out, int depth) {
    if (depth > kMaxDepth) return fail("nesting deeper than the limit");
    skip_ws();
    if (pos_ >= text_.size()) return fail("unexpected end of input");
    const char c = text_[pos_];
    switch (c) {
      case '{': return object(out, depth);
      case '[': return array(out, depth);
      case '"': out.type = Json::Type::kString; return string(out.string);
      case 't':
      case 'f': return boolean(out);
      case 'n': return null(out);
      default: return number(out);
    }
  }

  Status object(Json& out, int depth) {
    ++pos_;  // '{'
    out.type = Json::Type::kObject;
    skip_ws();
    if (eat('}')) return Status{};
    while (true) {
      skip_ws();
      if (pos_ >= text_.size() || text_[pos_] != '"') {
        return fail("expected a string key");
      }
      std::string key;
      Status status = string(key);
      if (!status.ok()) return status;
      skip_ws();
      if (!eat(':')) return fail("expected ':' after object key");
      Json member;
      status = value(member, depth + 1);
      if (!status.ok()) return status;
      out.object.emplace_back(std::move(key), std::move(member));
      skip_ws();
      if (eat(',')) continue;
      if (eat('}')) return Status{};
      return fail("expected ',' or '}' in object");
    }
  }

  Status array(Json& out, int depth) {
    ++pos_;  // '['
    out.type = Json::Type::kArray;
    skip_ws();
    if (eat(']')) return Status{};
    while (true) {
      Json element;
      Status status = value(element, depth + 1);
      if (!status.ok()) return status;
      out.array.push_back(std::move(element));
      skip_ws();
      if (eat(',')) continue;
      if (eat(']')) return Status{};
      return fail("expected ',' or ']' in array");
    }
  }

  Status string(std::string& out) {
    ++pos_;  // '"'
    out.clear();
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return Status{};
      if (static_cast<unsigned char>(c) < 0x20) {
        return fail("raw control character in string");
      }
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) break;
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          if (pos_ + 4 > text_.size()) return fail("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
            else return fail("bad hex digit in \\u escape");
          }
          // Encode the BMP code point as UTF-8 (surrogate pairs are not
          // needed by the protocol; a lone surrogate is passed through).
          if (code < 0x80) {
            out += static_cast<char>(code);
          } else if (code < 0x800) {
            out += static_cast<char>(0xC0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3F));
          } else {
            out += static_cast<char>(0xE0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (code & 0x3F));
          }
          break;
        }
        default: return fail("unknown escape sequence");
      }
    }
    return fail("unterminated string");
  }

  Status boolean(Json& out) {
    out.type = Json::Type::kBool;
    if (text_.substr(pos_, 4) == "true") {
      out.boolean = true;
      pos_ += 4;
      return Status{};
    }
    if (text_.substr(pos_, 5) == "false") {
      out.boolean = false;
      pos_ += 5;
      return Status{};
    }
    return fail("bad literal");
  }

  Status null(Json& out) {
    out.type = Json::Type::kNull;
    if (text_.substr(pos_, 4) == "null") {
      pos_ += 4;
      return Status{};
    }
    return fail("bad literal");
  }

  Status number(Json& out) {
    out.type = Json::Type::kNumber;
    const std::size_t begin = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    bool integral = true;
    bool digits = false;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c >= '0' && c <= '9') {
        digits = true;
        ++pos_;
      } else if (c == '.' || c == 'e' || c == 'E' || c == '+' || c == '-') {
        integral = false;
        ++pos_;
      } else {
        break;
      }
    }
    if (!digits) return fail("malformed number");
    const std::string_view token = text_.substr(begin, pos_ - begin);
    if (integral) {
      std::int64_t v = 0;
      const auto [ptr, ec] =
          std::from_chars(token.data(), token.data() + token.size(), v);
      if (ec == std::errc{} && ptr == token.data() + token.size()) {
        out.integer = v;
        out.is_integer = true;
        out.number = static_cast<double>(v);
        return Status{};
      }
      return fail("integer out of range");
    }
    double v = 0.0;
    const auto [ptr, ec] =
        std::from_chars(token.data(), token.data() + token.size(), v);
    if (ec != std::errc{} || ptr != token.data() + token.size() ||
        !std::isfinite(v)) {
      return fail("malformed number");
    }
    out.number = v;
    return Status{};
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

// --- request field extraction ---------------------------------------------

[[nodiscard]] Status require_u64(const Json& value, const char* name,
                                 std::uint64_t& out) {
  if (value.type != Json::Type::kNumber || !value.is_integer ||
      value.integer < 0) {
    return invalid(std::string("\"") + name +
                   "\" must be a non-negative integer");
  }
  out = static_cast<std::uint64_t>(value.integer);
  return Status{};
}

}  // namespace

const Json* Json::find(std::string_view key) const {
  for (const auto& [name, value] : object) {
    if (name == key) return &value;
  }
  return nullptr;
}

Status parse_json(std::string_view text, Json& out) {
  Json parsed;
  Status status = JsonParser(text).parse(parsed);
  if (!status.ok()) return status;
  out = std::move(parsed);
  return Status{};
}

const char* to_string(Op op) {
  switch (op) {
    case Op::kSolve: return "solve";
    case Op::kPing: return "ping";
    case Op::kStats: return "stats";
    case Op::kDrain: return "drain";
    case Op::kShutdown: return "shutdown";
  }
  return "unknown";
}

Status parse_request(const std::string& line, Request& out) {
  if (line.size() > kMaxRequestBytes) {
    return invalid("line of " + std::to_string(line.size()) +
                   " bytes exceeds the " + std::to_string(kMaxRequestBytes) +
                   "-byte limit");
  }
  Json doc;
  Status status = parse_json(line, doc);
  if (!status.ok()) return status;
  if (doc.type != Json::Type::kObject) {
    return invalid("a request must be a JSON object");
  }

  Request request;
  bool saw_id = false;
  std::uint32_t n = 0;
  const Json* edges = nullptr;
  for (const auto& [key, value] : doc.object) {
    if (key == "id") {
      status = require_u64(value, "id", request.id);
      if (!status.ok()) return status;
      saw_id = true;
    } else if (key == "op") {
      if (value.type != Json::Type::kString) {
        return invalid("\"op\" must be a string");
      }
      if (value.string == "solve") request.op = Op::kSolve;
      else if (value.string == "ping") request.op = Op::kPing;
      else if (value.string == "stats") request.op = Op::kStats;
      else if (value.string == "drain") request.op = Op::kDrain;
      else if (value.string == "shutdown") request.op = Op::kShutdown;
      else return invalid("unknown op \"" + value.string + "\"");
    } else if (key == "n") {
      std::uint64_t raw = 0;
      status = require_u64(value, "n", raw);
      if (!status.ok()) return status;
      if (raw == 0 || raw > kMaxRequestNodes) {
        return invalid("\"n\" must be in [1, " +
                       std::to_string(kMaxRequestNodes) + "]");
      }
      n = static_cast<std::uint32_t>(raw);
    } else if (key == "edges") {
      if (value.type != Json::Type::kArray) {
        return invalid("\"edges\" must be an array of [u, v] pairs");
      }
      edges = &value;
    } else if (key == "deadline_ms") {
      if (value.type != Json::Type::kNumber || !value.is_integer ||
          value.integer < 0) {
        return invalid("\"deadline_ms\" must be a non-negative integer");
      }
      request.deadline_ms = value.integer;
    } else if (key == "priority") {
      if (value.type != Json::Type::kNumber || !value.is_integer ||
          value.integer < kMinPriority || value.integer > kMaxPriority) {
        return invalid("\"priority\" must be an integer in [" +
                       std::to_string(kMinPriority) + ", " +
                       std::to_string(kMaxPriority) + "]");
      }
      request.priority = static_cast<int>(value.integer);
    } else if (key == "client") {
      if (value.type != Json::Type::kString || value.string.size() > 64) {
        return invalid("\"client\" must be a string of at most 64 bytes");
      }
      request.client = value.string;
    } else {
      return invalid("unknown key \"" + key + "\"");
    }
  }

  if (request.op == Op::kSolve) {
    if (!saw_id) return invalid("a solve request needs an \"id\"");
    if (n == 0) return invalid("a solve request needs \"n\"");
    graph::Graph g(n);
    if (edges != nullptr) {
      for (const Json& pair : edges->array) {
        if (pair.type != Json::Type::kArray || pair.array.size() != 2) {
          return invalid("each edge must be a [u, v] pair");
        }
        std::uint64_t u = 0;
        std::uint64_t v = 0;
        status = require_u64(pair.array[0], "edge endpoint", u);
        if (!status.ok()) return status;
        status = require_u64(pair.array[1], "edge endpoint", v);
        if (!status.ok()) return status;
        if (u >= n || v >= n) {
          return invalid("edge endpoint " + std::to_string(std::max(u, v)) +
                         " is outside [0, " + std::to_string(n) + ")");
        }
        if (u == v) {
          return invalid("self-loop at node " + std::to_string(u) +
                         " is not representable");
        }
        g.add_edge(static_cast<graph::NodeId>(u),
                   static_cast<graph::NodeId>(v));
      }
    }
    request.graph = std::move(g);
  } else if ((request.op == Op::kPing || request.op == Op::kStats) &&
             !saw_id) {
    return invalid(std::string("a ") + to_string(request.op) +
                   " request needs an \"id\"");
  }

  out = std::move(request);
  return Status{};
}

// --- reply encoding -------------------------------------------------------

std::string json_escape(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          constexpr char hex[] = "0123456789abcdef";
          out += "\\u00";
          out += hex[(static_cast<unsigned char>(c) >> 4) & 0xF];
          out += hex[static_cast<unsigned char>(c) & 0xF];
        } else {
          out += c;
        }
    }
  }
  return out;
}

namespace {

void append_status(std::string& out, const Status& status) {
  out += "\"status\":\"";
  out += gcalib::to_string(status.code);
  out += "\"";
  if (!status.message.empty()) {
    out += ",\"message\":\"";
    out += json_escape(status.message);
    out += "\"";
  }
}

}  // namespace

std::string encode_accepted(std::uint64_t id, std::int64_t est_wait_ms) {
  return "{\"id\":" + std::to_string(id) +
         ",\"event\":\"accepted\",\"est_wait_ms\":" +
         std::to_string(est_wait_ms) + "}";
}

std::string encode_rejected(std::uint64_t id, const Status& status,
                            bool after_accept) {
  std::string out = "{\"id\":" + std::to_string(id) + ",\"event\":\"";
  out += after_accept ? "shed" : "rejected";
  out += "\",";
  append_status(out, status);
  out += "}";
  return out;
}

std::string encode_done(const DoneReply& reply) {
  std::string out = "{\"id\":" + std::to_string(reply.id) +
                    ",\"event\":\"done\",";
  append_status(out, reply.status);
  if (reply.status.ok()) {
    out += ",\"components\":" + std::to_string(reply.components);
    out += ",\"labels\":[";
    for (std::size_t i = 0; i < reply.labels.size(); ++i) {
      if (i != 0) out += ",";
      out += std::to_string(reply.labels[i]);
    }
    out += "]";
  }
  out += ",\"attempts\":" + std::to_string(reply.attempts);
  out += ",\"elapsed_ms\":" + std::to_string(reply.elapsed_ms);
  out += "}";
  return out;
}

std::string encode_pong(std::uint64_t id) {
  return "{\"id\":" + std::to_string(id) + ",\"event\":\"pong\"}";
}

std::string encode_stats(std::uint64_t id, std::size_t queue_depth,
                         std::int64_t est_wait_ms,
                         const std::string& counters_json) {
  return "{\"id\":" + std::to_string(id) +
         ",\"event\":\"stats\",\"queue_depth\":" +
         std::to_string(queue_depth) +
         ",\"est_wait_ms\":" + std::to_string(est_wait_ms) +
         ",\"counters\":" + counters_json + "}";
}

std::string encode_error(std::optional<std::uint64_t> id,
                         const Status& status) {
  std::string out = "{";
  if (id.has_value()) out += "\"id\":" + std::to_string(*id) + ",";
  out += "\"event\":\"error\",";
  append_status(out, status);
  out += "}";
  return out;
}

std::string encode_overload(unsigned level, std::uint64_t transitions) {
  return "{\"event\":\"overload\",\"level\":" + std::to_string(level) +
         ",\"transitions\":" + std::to_string(transitions) + "}";
}

}  // namespace gcalib::gcad
