// Rolling per-size latency model — the admission controller's crystal ball.
//
// Deadline-aware shedding needs an answer to "how long until a query
// admitted *now* actually runs, and how long will it take once it does?"
// before the query executes.  The model keeps an exponentially weighted
// moving average of observed per-query solve times in log2(n) buckets
// (queries of similar field size cost similar work), plus a global
// calibration of nanoseconds-per-work-unit so sizes never seen before
// still get a sane estimate.
//
// Substrates cost differently, so the model is two-dimensional: every
// bucket set and every calibration exists once per substrate
// (DESIGN.md §12).  The dense paper field sweeps O(n^2) cells for
// O(log n) generations over O(log n) iterations — work weight
// n^2 * (log2 n + 1)^2; the CSR engine does O(n + m) work per sweep for
// O(log n) sweeps — work weight (n + 2m) * (log2 n + 1).  Mixing the two
// in one EWMA would let a burst of cheap sparse solves talk the model
// into admitting dense queries it cannot finish, so they never share
// state.
//
// Thread-safe: the intake thread reads estimates while worker lanes feed
// observations back.
#pragma once

#include <cstddef>
#include <cstdint>
#include <mutex>

#include "gca/execution.hpp"

namespace gcalib::gcad {

class LatencyModel {
 public:
  /// Records one observed isolated-solve wall time for an n-node, m-edge
  /// query solved on `substrate` (must be resolved: dense or sparse_csr,
  /// never auto).
  void record(gca::SubstrateMode substrate, std::uint32_t n, std::size_t m,
              std::int64_t elapsed_ns);
  /// Legacy dense-field entry point (m irrelevant to the dense weight).
  void record(std::uint32_t n, std::int64_t elapsed_ns) {
    record(gca::SubstrateMode::kDense, n, 0, elapsed_ns);
  }

  /// Estimated solve time for an n-node, m-edge query on `substrate`: the
  /// bucket EWMA when that (substrate, size class) has history, otherwise
  /// that substrate's calibration scaled by its work weight, otherwise a
  /// conservative cold-start constant.
  [[nodiscard]] std::int64_t estimate_ns(gca::SubstrateMode substrate,
                                         std::uint32_t n,
                                         std::size_t m) const;
  /// Legacy dense-field estimate.
  [[nodiscard]] std::int64_t estimate_ns(std::uint32_t n) const {
    return estimate_ns(gca::SubstrateMode::kDense, n, 0);
  }

  /// Total observations recorded across both substrates (tests, stats op).
  [[nodiscard]] std::uint64_t samples() const;

  /// Declares the solver-thread budget queries run with.  The parallel CSR
  /// path (concurrent CAS-min labeling, DESIGN.md §14) divides sparse
  /// solve time by roughly `effective_parallelism(threads)`, so *cold*
  /// sparse estimates — sizes the model has never observed — are divided
  /// by that factor instead of assuming single-lane cost; without this the
  /// admission controller over-sheds exactly the queries the parallel path
  /// would have finished in time.  Warm estimates (bucket EWMAs and the
  /// ns-per-weight calibration) are learned from observed wall times and
  /// are therefore already thread-consistent; they are not scaled.
  void set_solver_threads(unsigned threads);

  /// The speedup model: 1 + (threads - 1) / 2 — half-efficient scaling,
  /// the conservative end of the measured sparse speedups (over-estimating
  /// cost sheds a little too eagerly; under-estimating admits work that
  /// then misses its deadline).
  [[nodiscard]] static double effective_parallelism(unsigned threads) {
    return threads <= 1 ? 1.0 : 1.0 + 0.5 * static_cast<double>(threads - 1);
  }

  /// Work weight of an n-node, m-edge query on `substrate`:
  /// dense n^2 * (log2 n + 1)^2 cell updates, sparse_csr
  /// (n + 2m) * (log2 n + 1) label reads.
  [[nodiscard]] static double weight(gca::SubstrateMode substrate,
                                     std::uint32_t n, std::size_t m);
  /// Legacy dense-field weight.
  [[nodiscard]] static double weight(std::uint32_t n) {
    return weight(gca::SubstrateMode::kDense, n, 0);
  }

 private:
  static constexpr double kAlpha = 0.2;  ///< EWMA smoothing factor
  /// Cold-start nanoseconds per work unit (no observation yet anywhere).
  /// Deliberately on the slow side: over-estimating sheds a little too
  /// eagerly, under-estimating admits work that then misses deadlines.
  static constexpr double kColdNsPerWeight = 30.0;
  static constexpr unsigned kBuckets = 16;  ///< log2 buckets up to n = 65535
  static constexpr unsigned kSubstrates = 2;  ///< dense, sparse_csr

  struct Bucket {
    double ewma_ns = 0.0;
    std::uint64_t samples = 0;
  };
  /// One substrate's whole history: size-class EWMAs plus the global
  /// ns-per-work calibration for sizes that class has never seen.
  struct Slot {
    Bucket buckets[kBuckets];
    double ns_per_weight = 0.0;
    std::uint64_t samples = 0;
  };

  [[nodiscard]] static unsigned bucket_of(std::uint32_t n);
  [[nodiscard]] static unsigned slot_of(gca::SubstrateMode substrate);

  mutable std::mutex mutex_;
  Slot slots_[kSubstrates];
  std::uint64_t samples_ = 0;
  unsigned solver_threads_ = 1;
};

}  // namespace gcalib::gcad
