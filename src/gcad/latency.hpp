// Rolling per-size latency model — the admission controller's crystal ball.
//
// Deadline-aware shedding needs an answer to "how long until a query
// admitted *now* actually runs, and how long will it take once it does?"
// before the query executes.  The model keeps an exponentially weighted
// moving average of observed per-query solve times in log2(n) buckets
// (queries of similar field size cost similar work), plus a global
// calibration of nanoseconds-per-work-unit so sizes never seen before
// still get a sane estimate: the Hirschberg GCA sweeps O(n^2) cells for
// O(log n) generations per iteration over O(log n) iterations, so the
// work weight is n^2 * (log2 n + 1)^2 and cold estimates scale with it.
//
// Thread-safe: the intake thread reads estimates while worker lanes feed
// observations back.
#pragma once

#include <cstdint>
#include <mutex>

namespace gcalib::gcad {

class LatencyModel {
 public:
  /// Records one observed isolated-solve wall time for a size-n query.
  void record(std::uint32_t n, std::int64_t elapsed_ns);

  /// Estimated solve time for a size-n query: the bucket EWMA when that
  /// size class has history, otherwise the global calibration scaled by
  /// the work weight, otherwise a conservative cold-start constant.
  [[nodiscard]] std::int64_t estimate_ns(std::uint32_t n) const;

  /// Total observations recorded (tests and the stats op).
  [[nodiscard]] std::uint64_t samples() const;

  /// Work weight of a size-n query: n^2 * (log2 n + 1)^2 cell updates.
  [[nodiscard]] static double weight(std::uint32_t n);

 private:
  static constexpr double kAlpha = 0.2;  ///< EWMA smoothing factor
  /// Cold-start nanoseconds per work unit (no observation yet anywhere).
  /// Deliberately on the slow side: over-estimating sheds a little too
  /// eagerly, under-estimating admits work that then misses deadlines.
  static constexpr double kColdNsPerWeight = 30.0;
  static constexpr unsigned kBuckets = 16;  ///< log2 buckets up to n = 65535

  struct Bucket {
    double ewma_ns = 0.0;
    std::uint64_t samples = 0;
  };

  [[nodiscard]] static unsigned bucket_of(std::uint32_t n);

  mutable std::mutex mutex_;
  Bucket buckets_[kBuckets];
  double ns_per_weight_ = 0.0;  ///< global calibration EWMA
  std::uint64_t samples_ = 0;
};

}  // namespace gcalib::gcad
