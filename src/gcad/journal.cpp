#include "gcad/journal.hpp"

#include <cstdio>
#include <cstring>
#include <limits>

#include "common/crc32.hpp"
#include "gcad/protocol.hpp"

namespace gcalib::gcad {

namespace {

constexpr char kMagic[4] = {'G', 'C', 'Q', 'J'};
constexpr std::uint32_t kVersion = 1;
constexpr std::size_t kHeaderBytes = 16;
constexpr std::size_t kCrcBytes = 4;
constexpr std::size_t kMaxClientBytes = 64;

void put_u32(std::string& out, std::uint32_t value) {
  for (int i = 0; i < 4; ++i) {
    out += static_cast<char>((value >> (8 * i)) & 0xFFu);
  }
}

void put_u64(std::string& out, std::uint64_t value) {
  for (int i = 0; i < 8; ++i) {
    out += static_cast<char>((value >> (8 * i)) & 0xFFu);
  }
}

/// Bounds-checked little-endian reader over the journal bytes.
class Reader {
 public:
  explicit Reader(const std::string& bytes) : bytes_(bytes) {}

  [[nodiscard]] bool u32(std::uint32_t& out) {
    if (pos_ + 4 > bytes_.size()) return false;
    out = 0;
    for (int i = 3; i >= 0; --i) {
      out = (out << 8) | static_cast<unsigned char>(
                             bytes_[pos_ + static_cast<std::size_t>(i)]);
    }
    pos_ += 4;
    return true;
  }

  [[nodiscard]] bool u64(std::uint64_t& out) {
    if (pos_ + 8 > bytes_.size()) return false;
    out = 0;
    for (int i = 7; i >= 0; --i) {
      out = (out << 8) | static_cast<unsigned char>(
                             bytes_[pos_ + static_cast<std::size_t>(i)]);
    }
    pos_ += 8;
    return true;
  }

  [[nodiscard]] bool raw(std::size_t count, std::string& out) {
    if (pos_ + count > bytes_.size()) return false;
    out.assign(bytes_, pos_, count);
    pos_ += count;
    return true;
  }

  [[nodiscard]] std::size_t pos() const { return pos_; }

 private:
  const std::string& bytes_;
  std::size_t pos_ = 0;
};

[[nodiscard]] Status data_loss(std::string message) {
  return Status::error(StatusCode::kDataLoss,
                       "journal: " + std::move(message));
}

}  // namespace

std::string serialize_journal(const std::vector<JournalEntry>& entries) {
  std::string out;
  out.append(kMagic, sizeof kMagic);
  put_u32(out, kVersion);
  put_u32(out, static_cast<std::uint32_t>(entries.size()));
  put_u32(out, 0);  // reserved
  for (const JournalEntry& entry : entries) {
    put_u64(out, entry.id);
    put_u32(out, static_cast<std::uint32_t>(entry.priority));
    put_u64(out, static_cast<std::uint64_t>(entry.deadline_ms));
    put_u32(out, static_cast<std::uint32_t>(entry.client.size()));
    out += entry.client;
    put_u32(out, entry.graph.node_count());
    const std::vector<graph::Edge> edges = entry.graph.edges();
    put_u32(out, static_cast<std::uint32_t>(edges.size()));
    for (const graph::Edge& edge : edges) {
      put_u32(out, edge.u);
      put_u32(out, edge.v);
    }
  }
  put_u32(out, crc32(out.data(), out.size()));
  return out;
}

Status parse_journal(const std::string& bytes,
                     std::vector<JournalEntry>& out) {
  if (bytes.size() < kHeaderBytes + kCrcBytes) {
    return data_loss("truncated header (" + std::to_string(bytes.size()) +
                     " bytes)");
  }
  if (std::memcmp(bytes.data(), kMagic, sizeof kMagic) != 0) {
    return data_loss("bad magic (not a GCQJ journal)");
  }
  // CRC first: everything after the magic is untrusted until it checks out.
  std::uint32_t stored_crc = 0;
  for (int i = 3; i >= 0; --i) {
    stored_crc = (stored_crc << 8) |
                 static_cast<unsigned char>(
                     bytes[bytes.size() - kCrcBytes + static_cast<std::size_t>(i)]);
  }
  if (stored_crc != crc32(bytes.data(), bytes.size() - kCrcBytes)) {
    return data_loss("CRC mismatch (torn write or bit rot)");
  }

  Reader reader(bytes);
  std::string magic;
  std::uint32_t version = 0;
  std::uint32_t count = 0;
  std::uint32_t reserved = 0;
  if (!reader.raw(4, magic) || !reader.u32(version) || !reader.u32(count) ||
      !reader.u32(reserved)) {
    return data_loss("truncated header");
  }
  if (version != kVersion) {
    return data_loss("unsupported version " + std::to_string(version) +
                     " (expected " + std::to_string(kVersion) + ")");
  }
  if (count > kMaxJournalEntries) {
    return data_loss("entry count " + std::to_string(count) +
                     " exceeds the loader bound");
  }

  std::vector<JournalEntry> entries;
  entries.reserve(count);
  for (std::uint32_t index = 0; index < count; ++index) {
    const std::string at = " in entry " + std::to_string(index);
    JournalEntry entry;
    std::uint32_t priority = 0;
    std::uint64_t deadline = 0;
    std::uint32_t client_len = 0;
    if (!reader.u64(entry.id) || !reader.u32(priority) ||
        !reader.u64(deadline) || !reader.u32(client_len)) {
      return data_loss("truncated entry header" + at);
    }
    if (priority > static_cast<std::uint32_t>(kMaxPriority)) {
      return data_loss("priority " + std::to_string(priority) +
                       " out of range" + at);
    }
    entry.priority = static_cast<int>(priority);
    if (deadline > static_cast<std::uint64_t>(
                       std::numeric_limits<std::int64_t>::max())) {
      return data_loss("deadline out of range" + at);
    }
    entry.deadline_ms = static_cast<std::int64_t>(deadline);
    if (client_len > kMaxClientBytes) {
      return data_loss("client name of " + std::to_string(client_len) +
                       " bytes exceeds the limit" + at);
    }
    if (!reader.raw(client_len, entry.client)) {
      return data_loss("truncated client name" + at);
    }
    std::uint32_t n = 0;
    std::uint32_t edge_count = 0;
    if (!reader.u32(n) || !reader.u32(edge_count)) {
      return data_loss("truncated graph header" + at);
    }
    if (n == 0 || n > kMaxRequestNodes) {
      return data_loss("node count " + std::to_string(n) + " out of range" +
                       at);
    }
    const std::uint64_t max_edges =
        static_cast<std::uint64_t>(n) * (n - 1) / 2;
    if (edge_count > max_edges) {
      return data_loss("edge count " + std::to_string(edge_count) +
                       " exceeds the maximum for n = " + std::to_string(n) +
                       at);
    }
    graph::Graph g(n);
    for (std::uint32_t e = 0; e < edge_count; ++e) {
      std::uint32_t u = 0;
      std::uint32_t v = 0;
      if (!reader.u32(u) || !reader.u32(v)) {
        return data_loss("truncated edge list" + at);
      }
      if (u >= n || v >= n) {
        return data_loss("edge endpoint outside the graph" + at);
      }
      if (u == v) return data_loss("self-loop" + at);
      g.add_edge(u, v);
    }
    entry.graph = std::move(g);
    entries.push_back(std::move(entry));
  }
  if (reader.pos() != bytes.size() - kCrcBytes) {
    return data_loss("payload length does not match the entry count");
  }
  out = std::move(entries);
  return Status{};
}

Status save_journal_file(const std::string& path,
                         const std::vector<JournalEntry>& entries) {
  const std::string bytes = serialize_journal(entries);
  const std::string tmp = path + ".tmp";
  std::FILE* file = std::fopen(tmp.c_str(), "wb");
  if (file == nullptr) {
    return Status::error(StatusCode::kInternal,
                         "journal: cannot open " + tmp + " for writing");
  }
  const std::size_t written = std::fwrite(bytes.data(), 1, bytes.size(), file);
  const bool flushed = std::fflush(file) == 0;
  const bool closed = std::fclose(file) == 0;
  if (written != bytes.size() || !flushed || !closed) {
    std::remove(tmp.c_str());
    return Status::error(StatusCode::kInternal,
                         "journal: short write to " + tmp);
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return Status::error(StatusCode::kInternal,
                         "journal: cannot rename " + tmp + " to " + path);
  }
  return Status{};
}

Status load_journal_file(const std::string& path,
                         std::vector<JournalEntry>& out) {
  std::FILE* file = std::fopen(path.c_str(), "rb");
  if (file == nullptr) {
    return Status::error(StatusCode::kNotFound,
                         "journal: no file at " + path);
  }
  std::string bytes;
  char buffer[1 << 16];
  std::size_t got = 0;
  while ((got = std::fread(buffer, 1, sizeof buffer, file)) > 0) {
    bytes.append(buffer, got);
  }
  const bool read_error = std::ferror(file) != 0;
  std::fclose(file);
  if (read_error) {
    return Status::error(StatusCode::kInternal,
                         "journal: read error on " + path);
  }
  Status status = parse_journal(bytes, out);
  if (!status.ok()) status.message += " [" + path + "]";
  return status;
}

void remove_journal_file(const std::string& path) {
  std::remove(path.c_str());
}

}  // namespace gcalib::gcad
