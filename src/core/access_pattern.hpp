// Declarative description of each generation's activity and pointer
// pattern, independent of the executable rules in hirschberg_gca.cpp.
//
// Two consumers:
//  * the hardware model derives every cell's multiplexer inputs (static
//    neighbour set, data-dependent ports) from this description;
//  * the test suite cross-checks that the engine's *recorded* access edges
//    match this description in every generation — i.e. that the executable
//    rule and the declarative spec agree (Figure 3 is this information for
//    n = 4).
#pragma once

#include <cstddef>
#include <optional>
#include <vector>

#include "core/generation.hpp"
#include "gca/field.hpp"

namespace gcalib::core {

/// How a cell's pointer is formed in a given generation.
enum class PointerKind {
  kNone,           ///< cell performs no global read (inactive or local-only)
  kStatic,         ///< target is a fixed function of (index, generation)
  kDataDependent,  ///< target depends on the cell's d value (extended cell)
};

/// Pointer of one cell in one (sub-)generation.
struct PointerSpec {
  PointerKind kind = PointerKind::kNone;
  std::size_t target = 0;  ///< valid iff kind == kStatic
};

/// True iff `index` performs a data operation in generation `g`
/// (sub-generation `subgen` where applicable) — Table 1's "active cells".
[[nodiscard]] bool is_active(Generation g, unsigned subgen, std::size_t index,
                             std::size_t n);

/// The pointer a cell uses; kNone for inactive cells and for generation 0.
[[nodiscard]] PointerSpec pointer_spec(Generation g, unsigned subgen,
                                       std::size_t index, std::size_t n);

/// All static targets cell `index` ever reads across the whole algorithm
/// (every generation and sub-generation), deduplicated and sorted.  This is
/// the input set of the cell's static neighbour multiplexer in hardware.
[[nodiscard]] std::vector<std::size_t> static_source_set(std::size_t index,
                                                         std::size_t n);

/// True iff the cell needs a data-dependent neighbour port (paper's
/// "extended cells": the n cells of column 0).
[[nodiscard]] bool needs_extended_cell(std::size_t index, std::size_t n);

/// Closed-form active-cell count for a generation (first sub-generation for
/// the iterated ones) — the formulas of Table 1.
[[nodiscard]] std::size_t expected_active_cells(Generation g, unsigned subgen,
                                                std::size_t n);

}  // namespace gcalib::core
