#include "core/hirschberg_gca.hpp"

#include <algorithm>

#include "common/bits.hpp"
#include "core/schedule.hpp"
#include "core/state_graph.hpp"
#include "gca/kernels.hpp"
#include "graph/labeling.hpp"

namespace gcalib::core {

using gca::GenerationStats;
using graph::NodeId;

namespace {

/// Builds the initial cell field: adjacency bits in the square, zeros in
/// the bottom row; d/p start at 0 (generation 0 overwrites d anyway).
std::vector<Cell> build_field(const graph::Graph& g) {
  const NodeId n = g.node_count();
  const gca::FieldGeometry geometry = gca::FieldGeometry::hirschberg(n);
  std::vector<Cell> cells(geometry.size());
  for (NodeId j = 0; j < n; ++j) {
    for (NodeId i = 0; i < n; ++i) {
      cells[geometry.index_of(j, i)].a = g.has_edge(j, i) ? 1 : 0;
    }
  }
  return cells;
}

/// Row-min offsets at or above this dispatch through the exact worklist
/// (occupancy <= 1/32 of the square); below it a contiguous sweep — the
/// rectangular window or the SIMD span kernel — wins on locality.
constexpr std::size_t kWorklistMinOffset = 16;

}  // namespace

HirschbergGca::HirschbergGca(const graph::Graph& g)
    : n_(g.node_count()),
      geometry_(gca::FieldGeometry::hirschberg(std::max<std::size_t>(n_, 1))),
      engine_(std::make_unique<gca::Engine<Cell>>(
          n_ > 0 ? build_field(g) : std::vector<Cell>(2),
          gca::EngineOptions{})) {}

template <typename Rule>
GenerationStats HirschbergGca::step_with(Rule&& rule,
                                         const gca::ActiveRegion& region,
                                         Generation g, unsigned subgen) {
  return engine_->step(std::forward<Rule>(rule), region,
                       generation_label(g, subgen));
}

GenerationStats HirschbergGca::initialize() {
  return step_generation(Generation::kInit, 0);
}

gca::ActiveRegion HirschbergGca::region_for(Generation g, unsigned sub) const {
  const std::size_t n = n_;
  if (n == 0) return gca::ActiveRegion::full(engine_->size());
  // Rows have pitch n; the square is rows [0, n), D_N is row n.
  const auto rows = [n](std::size_t row_begin, std::size_t row_end,
                        std::size_t col_begin, std::size_t col_end,
                        std::size_t col_step = 1) {
    return gca::ActiveRegion{row_begin, row_end, col_begin, col_end, col_step,
                             n};
  };
  switch (g) {
    case Generation::kInit:
    case Generation::kCopyCToRows:
    case Generation::kAdopt:
      return rows(0, n + 1, 0, n);  // whole field, D_N included
    case Generation::kMaskNeighbors:
    case Generation::kCopyTToRows:
    case Generation::kMaskMembers:
      return rows(0, n, 0, n);  // the square
    case Generation::kRowMin:
    case Generation::kRowMin2: {
      // Survivors of sub-generation `sub`: col % 2^(sub+1) == 0 with a
      // partner col + 2^sub still inside the row.
      const std::size_t offset = std::size_t{1} << sub;
      return rows(0, n, 0, offset < n ? n - offset : 0, 2 * offset);
    }
    case Generation::kFallback:
    case Generation::kFallback2:
    case Generation::kPointerJump:
    case Generation::kFinalMin:
      return rows(0, n, 0, 1);  // column 0 of the square
  }
  GCALIB_ASSERT_MSG(false, "unreachable generation");
  return gca::ActiveRegion::full(engine_->size());
}

bool HirschbergGca::fast_kernels_enabled() const {
  const gca::EngineOptions& options = engine_->options();
  return options.sweep == gca::SweepMode::kSparse && !options.instrumentation &&
         !options.record_access && !engine_->has_read_override();
}

gca::GenerationStats HirschbergGca::step_generation(Generation g,
                                                    unsigned subgeneration) {
  const std::size_t n = n_;
  const std::size_t nn = n * n;  // linear index of the first bottom-row cell
  const gca::FieldGeometry geo = geometry_;
  const gca::ActiveRegion region = region_for(g, subgeneration);

  // The O(n^2)-active generations dispatch to the bulk SoA kernels when
  // nothing needs to observe individual reads; *which* kernel runs —
  // scalar, AVX2, NEON; window, span or exact worklist — is a per-step
  // runtime decision through the registry (gca/kernel_registry.hpp).  The
  // mediated uniform rule below remains the reference semantics and the
  // only path under instrumentation, dense sweeps or fault interposers.
  if (n > 0 && fast_kernels_enabled()) {
    const gca::KernelTable& table =
        gca::kernel_table(engine_->options().kernels);
    const auto& immutable = engine_->soa_immutable();
    const auto& current = engine_->soa_current();
    auto& next = engine_->soa_next();
    const std::uint32_t* d = current.d.data();
    const std::uint32_t* p = current.p.data();
    std::uint32_t* d_out = next.d.data();
    std::uint32_t* p_out = next.p.data();
    const std::string label = generation_label(g, subgeneration);
    switch (g) {
      case Generation::kCopyCToRows:
      case Generation::kCopyTToRows: {
        const auto fn = table.column_broadcast;
        return engine_->step_bulk(
            region,
            [fn, n, d, d_out, p_out](std::size_t k_begin, std::size_t k_end) {
              fn(n, d, d_out, p_out, k_begin, k_end);
            },
            label);
      }
      case Generation::kMaskNeighbors: {
        const std::uint64_t* a = immutable.a.words();
        const auto fn = table.mask_neighbors;
        return engine_->step_bulk(
            region,
            [fn, n, a, d, d_out, p_out](std::size_t k_begin,
                                        std::size_t k_end) {
              fn(n, kInfData, a, d, d_out, p_out, k_begin, k_end);
            },
            label);
      }
      case Generation::kMaskMembers: {
        const auto fn = table.mask_members;
        return engine_->step_bulk(
            region,
            [fn, n, d, d_out, p_out](std::size_t k_begin, std::size_t k_end) {
              fn(n, kInfData, d, d_out, p_out, k_begin, k_end);
            },
            label);
      }
      case Generation::kRowMin:
      case Generation::kRowMin2: {
        const std::size_t offset = std::size_t{1} << subgeneration;
        if (offset >= kWorklistMinOffset && offset < n) {
          // Low occupancy: enumerate exactly the active cells.
          const gca::Worklist& list = row_min_worklist(subgeneration);
          const std::uint32_t* indices = list.data();
          const auto fn = table.row_min_indexed;
          return engine_->step_bulk(
              list,
              [fn, offset, indices, d, d_out, p_out](std::size_t k_begin,
                                                     std::size_t k_end) {
                fn(offset, indices, d, d_out, p_out, k_begin, k_end);
              },
              label);
        }
        if (offset <= table.row_min_span_max_offset) {
          // High occupancy with a SIMD span kernel: contiguous sweep of
          // the square carrying d/p at inactive cells, committed by the
          // engine's complement swap; the stats still report the strided
          // window's count as active.
          const gca::ActiveRegion span{0, n, 0, n, 1, n};
          const auto fn = table.row_min_span;
          return engine_->step_bulk(
              span, region.count(),
              [fn, n, offset, d, p, d_out, p_out](std::size_t k_begin,
                                                  std::size_t k_end) {
                fn(n, offset, d, p, d_out, p_out, k_begin, k_end);
              },
              label);
        }
        const auto fn = table.row_min;
        return engine_->step_bulk(
            region,
            [fn, n, offset, d, d_out, p_out](std::size_t k_begin,
                                             std::size_t k_end) {
              fn(n, offset, d, d_out, p_out, k_begin, k_end);
            },
            label);
      }
      case Generation::kAdopt: {
        const auto fn = table.adopt;
        return engine_->step_bulk(
            region,
            [fn, n, d, d_out, p_out](std::size_t k_begin, std::size_t k_end) {
              fn(n, d, d_out, p_out, k_begin, k_end);
            },
            label);
      }
      case Generation::kPointerJump: {
        const std::size_t cells = engine_->size();
        const gca::Worklist& list = column_worklist();
        const std::uint32_t* indices = list.data();
        const auto fn = table.pointer_jump_indexed;
        return engine_->step_bulk(
            list,
            [fn, n, cells, indices, d, d_out, p_out](std::size_t k_begin,
                                                     std::size_t k_end) {
              fn(n, cells, indices, d, d_out, p_out, k_begin, k_end);
            },
            label);
      }
      case Generation::kInit: {
        // Null on the scalar table: the golden reference keeps this on the
        // mediated per-cell rule (same for the three cases below).
        const auto fn = table.init;
        if (fn == nullptr) break;
        return engine_->step_bulk(
            region,
            [fn, n, d_out, p_out](std::size_t k_begin, std::size_t k_end) {
              fn(n, d_out, p_out, k_begin, k_end);
            },
            label);
      }
      case Generation::kFallback:
      case Generation::kFallback2: {
        const auto fn = table.fallback_indexed;
        if (fn == nullptr) break;
        const gca::Worklist& list = column_worklist();
        const std::uint32_t* indices = list.data();
        return engine_->step_bulk(
            list,
            [fn, n, indices, d, d_out, p_out](std::size_t k_begin,
                                              std::size_t k_end) {
              fn(n, kInfData, indices, d, d_out, p_out, k_begin, k_end);
            },
            label);
      }
      case Generation::kFinalMin: {
        const auto fn = table.final_min_indexed;
        if (fn == nullptr) break;
        const std::size_t cells = engine_->size();
        const gca::Worklist& list = column_worklist();
        const std::uint32_t* indices = list.data();
        return engine_->step_bulk(
            list,
            [fn, n, cells, indices, d, d_out, p_out](std::size_t k_begin,
                                                     std::size_t k_end) {
              fn(n, cells, indices, d, d_out, p_out, k_begin, k_end);
            },
            label);
      }
    }
  }

  switch (g) {
    case Generation::kInit:
      // d <- row(index) for the whole field (initialising everything, not
      // just column 0, keeps the rule simple; the rest is overwritten in
      // generation 1 — paper, section 3).  No global read.
      return step_with(
          [this, geo](std::size_t index, auto& /*read*/) -> std::optional<Cell> {
            Cell next = engine_->state(index);
            next.d = static_cast<std::uint32_t>(geo.row(index));
            next.p = static_cast<std::uint32_t>(index);
            return next;
          },
          region, g, 0);

    case Generation::kCopyCToRows:
      // p = col(index) * n; d <- d*.  Copies C (column 0) into every row of
      // the whole field, including D_N.
      return step_with(
          [this, geo, n](std::size_t index, auto& read) -> std::optional<Cell> {
            const std::size_t p = geo.col(index) * n;
            Cell next = engine_->state(index);
            next.d = read(p).d;
            next.p = static_cast<std::uint32_t>(p);
            return next;
          },
          region, g, 0);

    case Generation::kMaskNeighbors:
      // Square only.  p = n^2 + row; keep d iff (d != d* && A == 1).
      return step_with(
          [this, geo, nn](std::size_t index, auto& read) -> std::optional<Cell> {
            if (geo.in_bottom_row(index)) return std::nullopt;
            const std::size_t p = nn + geo.row(index);
            const Cell& global = read(p);
            Cell next;
            const Cell& self = engine_->state(index);
            next.a = self.a;
            next.d = (self.d != global.d && self.a == 1) ? self.d : kInfData;
            next.p = static_cast<std::uint32_t>(p);
            return next;
          },
          region, g, 0);

    case Generation::kRowMin:
    case Generation::kRowMin2: {
      // Tree-reduction minimum within each square row; sub-generation s
      // combines cells col and col + 2^s.
      const std::size_t offset = std::size_t{1} << subgeneration;
      return step_with(
          [this, geo, n, offset](std::size_t index,
                                 auto& read) -> std::optional<Cell> {
            if (geo.in_bottom_row(index)) return std::nullopt;
            const std::size_t col = geo.col(index);
            if (col % (2 * offset) != 0 || col + offset >= n) return std::nullopt;
            const std::size_t p = index + offset;
            const Cell& partner = read(p);
            const Cell& self = engine_->state(index);
            Cell next = self;
            next.d = std::min(self.d, partner.d);
            next.p = static_cast<std::uint32_t>(p);
            return next;
          },
          region, g, subgeneration);
    }

    case Generation::kFallback:
    case Generation::kFallback2:
      // Column 0 of the square: if the row minimum is infinity (no external
      // connection) restore C(j) from D_N[j].
      return step_with(
          [this, geo, nn](std::size_t index, auto& read) -> std::optional<Cell> {
            if (geo.in_bottom_row(index) || geo.col(index) != 0) {
              return std::nullopt;
            }
            const std::size_t p = nn + geo.row(index);
            const Cell& global = read(p);
            const Cell& self = engine_->state(index);
            Cell next = self;
            next.d = self.d == kInfData ? global.d : self.d;
            next.p = static_cast<std::uint32_t>(p);
            return next;
          },
          region, g, 0);

    case Generation::kCopyTToRows:
      // Square only: p = col * n; d <- d*.  D_N keeps C.
      return step_with(
          [this, geo, n](std::size_t index, auto& read) -> std::optional<Cell> {
            if (geo.in_bottom_row(index)) return std::nullopt;
            const std::size_t p = geo.col(index) * n;
            const Cell& global = read(p);
            Cell next = engine_->state(index);  // a survives
            next.d = global.d;
            next.p = static_cast<std::uint32_t>(p);
            return next;
          },
          region, g, 0);

    case Generation::kMaskMembers:
      // Square only.  p = n^2 + col (paper erratum: printed as n^2 + row;
      // see DESIGN.md).  d* = C(i); keep d = T(i) iff C(i) = j and T(i) != j.
      return step_with(
          [this, geo, nn](std::size_t index, auto& read) -> std::optional<Cell> {
            if (geo.in_bottom_row(index)) return std::nullopt;
            const std::size_t p = nn + geo.col(index);
            const Cell& global = read(p);
            const Cell& self = engine_->state(index);
            const auto row = static_cast<std::uint32_t>(geo.row(index));
            Cell next = self;
            next.d = (global.d == row && self.d != row) ? self.d : kInfData;
            next.p = static_cast<std::uint32_t>(p);
            return next;
          },
          region, g, 0);

    case Generation::kAdopt:
      // Square: p = row * n (copy T(j) = column 0 across the row).
      // Bottom row: p = col * n (store T transposed: D_N[i] <- T(i)).
      return step_with(
          [this, geo, n](std::size_t index, auto& read) -> std::optional<Cell> {
            const std::size_t p = geo.in_bottom_row(index)
                                      ? geo.col(index) * n
                                      : geo.row(index) * n;
            const Cell& global = read(p);
            const Cell& self = engine_->state(index);
            Cell next = self;
            next.d = global.d;
            next.p = static_cast<std::uint32_t>(p);
            return next;
          },
          region, g, 0);

    case Generation::kPointerJump:
      // Column 0 of the square; data-dependent pointer p = d * n, so the
      // cell reads C(C(j)) in one generation (paper's extended cells).
      return step_with(
          [this, geo, n](std::size_t index, auto& read) -> std::optional<Cell> {
            if (geo.in_bottom_row(index) || geo.col(index) != 0) {
              return std::nullopt;
            }
            const Cell& self = engine_->state(index);
            const std::size_t p = std::size_t{self.d} * n;
            const Cell& global = read(p);
            Cell next = self;
            next.d = global.d;
            next.p = static_cast<std::uint32_t>(p);
            return next;
          },
          region, g, subgeneration);

    case Generation::kFinalMin:
      // Column 0 of the square; p = d * n + 1 reads T(C(j)) (columns >= 1
      // hold row-copies of T after generation 9);
      // d <- min(C(j), T(C(j))) — equivalent to HCS-1979's step 6.
      return step_with(
          [this, geo, n](std::size_t index, auto& read) -> std::optional<Cell> {
            if (geo.in_bottom_row(index) || geo.col(index) != 0) {
              return std::nullopt;
            }
            const Cell& self = engine_->state(index);
            const std::size_t p = std::size_t{self.d} * n + 1;
            const Cell& global = read(p);
            Cell next = self;
            next.d = std::min(self.d, global.d);
            next.p = static_cast<std::uint32_t>(p);
            return next;
          },
          region, g, 0);
  }
  GCALIB_ASSERT_MSG(false, "unreachable generation");
  return GenerationStats{};
}

void HirschbergGca::run_iteration(
    unsigned iteration, const std::function<void(const StepRecord&)>& sink) {
  run_iteration(iteration, StepHooks{sink, {}, {}});
}

void HirschbergGca::run_iteration(unsigned iteration, const StepHooks& hooks) {
  const unsigned subs = subgeneration_count(n_);
  static constexpr Generation kOrder[] = {
      Generation::kCopyCToRows, Generation::kMaskNeighbors,
      Generation::kRowMin,      Generation::kFallback,
      Generation::kCopyTToRows, Generation::kMaskMembers,
      Generation::kRowMin2,     Generation::kFallback2,
      Generation::kAdopt,       Generation::kPointerJump,
      Generation::kFinalMin};
  for (Generation g : kOrder) {
    const unsigned repeats = has_subgenerations(g) ? subs : 1;
    for (unsigned s = 0; s < repeats; ++s) {
      const StepId id{iteration, g, s};
      if (hooks.before) hooks.before(*this, id);
      GenerationStats stats = step_generation(g, s);
      if (hooks.after) hooks.after(*this, id);
      if (hooks.sink) hooks.sink(StepRecord{id, std::move(stats)});
    }
  }
}

const gca::Worklist& HirschbergGca::row_min_worklist(unsigned sub) {
  if (row_min_worklists_.empty()) {
    row_min_worklists_.resize(subgeneration_count(n_));
  }
  GCALIB_ASSERT_MSG(sub < row_min_worklists_.size(),
                    "row-min sub-generation outside the schedule");
  gca::Worklist& list = row_min_worklists_[sub];
  if (list.empty()) {  // geometry-only, so build once and cache (the
                       // region is never empty when this is reached)
    const gca::ActiveRegion region = region_for(Generation::kRowMin, sub);
    const std::size_t words = (n_ * n_ + 63) / 64;
    gca::ScratchLease<std::uint64_t> scratch(words);
    std::uint64_t* bits = scratch.data();
    std::fill_n(bits, words, std::uint64_t{0});
    region.for_each(0, region.count(), [bits](std::size_t i) {
      bits[i >> 6] |= std::uint64_t{1} << (i & 63);
    });
    list.assign_from_bits(bits, words);
  }
  return list;
}

const gca::Worklist& HirschbergGca::column_worklist() {
  if (column_worklist_.empty()) {
    for (std::size_t j = 0; j < n_; ++j) {
      column_worklist_.push_back(static_cast<std::uint32_t>(j * n_));
    }
  }
  return column_worklist_;
}

/// Reconstructs the input graph from the adjacency bits stored in the cell
/// field (used by the self-check so no external graph reference is needed).
graph::Graph HirschbergGca::graph_from_field() const {
  graph::Graph g(n_);
  for (NodeId j = 0; j < n_; ++j) {
    for (NodeId i = j + 1; i < n_; ++i) {
      if (engine_->state(geometry_.index_of(j, i)).a == 1) g.add_edge(j, i);
    }
  }
  return g;
}

CheckpointData HirschbergGca::checkpoint_data(unsigned next_iteration) const {
  CheckpointData data;
  data.n = n_;
  data.iteration = next_iteration;
  data.generation = engine_->generation();
  data.a = engine_->soa_immutable().a.unpack();
  data.d = engine_->soa_current().d;
  data.p = engine_->soa_current().p;
  return data;
}

Status HirschbergGca::restore_from(const CheckpointData& data,
                                   unsigned& next_iteration) {
  const auto reject = [](std::string message) {
    return Status::error(StatusCode::kInvalidArgument,
                         "checkpoint restore: " + std::move(message));
  };
  if (n_ == 0) return reject("machine has no nodes");
  if (data.n != n_) {
    return reject("data is for n = " + std::to_string(data.n) +
                  ", this machine has n = " + std::to_string(n_));
  }
  const std::size_t cells = engine_->size();
  if (data.a.size() != cells || data.d.size() != cells ||
      data.p.size() != cells) {
    return reject("plane sizes do not match the field");
  }
  if (data.iteration > outer_iterations(n_)) {
    return reject("iteration " + std::to_string(data.iteration) +
                  " is beyond the schedule of n = " + std::to_string(n_));
  }
  gca::Engine<Cell>::Snapshot snap;
  snap.cells.immutable.a = gca::BitPlane::pack(data.a);
  snap.cells.current.d = data.d;
  snap.cells.current.p = data.p;
  snap.generation = data.generation;
  engine_->restore(snap);
  next_iteration = data.iteration;
  return Status{};
}

RunResult HirschbergGca::run(const RunOptions& options) {
  RunResult result;
  engine_->set_options(gca::EngineOptions{}
                           .with_hands(engine_->hands())
                           .with_threads(options.threads)
                           .with_policy(options.threads > 1
                                            ? options.policy
                                            : gca::ExecutionPolicy::kSequential)
                           .with_instrumentation(options.instrument)
                           .with_record_access(options.record_access)
                           .with_sweep(options.sweep)
                           .with_kernels(options.kernels));

  if (n_ == 0) return result;

  // Install the stop signals for the duration of the run (detached on
  // every exit path — including a Cancelled/DeadlineExceeded unwind — so
  // the machine can be re-run with a fresh budget).
  struct StopGuard {
    gca::Engine<Cell>* engine = nullptr;
    ~StopGuard() {
      if (engine != nullptr) {
        engine->set_cancel_token(nullptr);
        engine->set_deadline_ns(0);
      }
    }
  } stop_guard;
  if (options.deadline_ms > 0 || options.cancel != nullptr) {
    stop_guard.engine = engine_.get();
    if (options.deadline_ms > 0) {
      engine_->set_deadline_ns(gca::steady_deadline_ns(options.deadline_ms));
    }
    if (options.cancel != nullptr) engine_->set_cancel_token(options.cancel);
  }

  // Attach the metrics sink for the duration of the run (detached on every
  // exit path, so a machine can be re-run with different options).
  struct SinkGuard {
    gca::Engine<Cell>* engine = nullptr;
    std::size_t id = 0;
    ~SinkGuard() {
      if (engine != nullptr) engine->remove_sink(id);
    }
  } sink_guard;
  if (options.sink != nullptr) {
    sink_guard.id = engine_->add_sink(options.sink);
    sink_guard.engine = engine_.get();
  }

  const auto emit = [&](const StepRecord& record) {
    if (options.instrument) result.records.push_back(record);
    if (options.on_step) options.on_step(record);
    ++result.generations;
  };
  const StepHooks hooks{emit, options.before_step, options.after_step};

  // Durable-checkpoint setup: an intact checkpoint in `checkpoint_dir`
  // replaces generation 0 entirely (the killed process's progress resumes
  // mid-algorithm); a torn or mismatched one is rejected with a diagnosis
  // and the run starts fresh — corrupt state is never silently loaded.
  std::string durable_path =
      options.checkpoint_dir.empty()
          ? std::string{}
          : checkpoint_path_in(options.checkpoint_dir);
  if (!durable_path.empty()) {
    // Create-or-fail-fast: a missing directory is created here, and an
    // unusable one yields a single clean diagnosis up front — the run then
    // proceeds degraded (no durability) instead of hitting an opaque
    // rename error at every checkpoint boundary.
    const Status usable = ensure_checkpoint_dir(options.checkpoint_dir);
    if (!usable.ok()) {
      result.diagnoses.push_back("durable checkpoints disabled: " +
                                 usable.message);
      durable_path.clear();
    }
  }
  unsigned start_iteration = 0;
  if (!durable_path.empty()) {
    CheckpointData data;
    const Status loaded = load_checkpoint_file(durable_path, data);
    if (loaded.ok()) {
      const Status restored = restore_from(data, start_iteration);
      if (restored.ok()) {
        result.resumed = true;
        result.resume_iteration = start_iteration;
      } else {
        result.diagnoses.push_back("durable checkpoint rejected: " +
                                   restored.message);
      }
    } else if (loaded.code != StatusCode::kNotFound) {
      result.diagnoses.push_back("durable checkpoint rejected: " +
                                 loaded.message);
    }
  }

  // Generation 0 (the injection hooks cover it too: a fault here corrupts
  // the field before the initial snapshot is taken, which is the one kind
  // of corruption checkpoint recovery cannot undo).  Skipped on a durable
  // resume — the restored field already is a post-initialisation state.
  if (!result.resumed) {
    const StepId id{0, Generation::kInit, 0};
    if (hooks.before) hooks.before(*this, id);
    GenerationStats stats = step_generation(Generation::kInit, 0);
    if (hooks.after) hooks.after(*this, id);
    emit(StepRecord{id, std::move(stats)});
  }

  const unsigned iterations = outer_iterations(n_);
  const RecoveryPolicy& policy = options.recovery;
  const bool recovery = policy.enabled();

  // Checkpoints.  `initial` (the post-initialisation — or just-resumed —
  // state) doubles as the restart anchor; `checkpoint` advances every
  // `checkpoint_interval` completed-and-clean outer iterations.  The
  // durable file mirrors the in-memory cadence (every iteration when
  // recovery is off) and is written atomically, so a crash at any moment
  // leaves an intact resume anchor on disk.
  gca::Engine<Cell>::Snapshot initial;
  gca::Engine<Cell>::Snapshot checkpoint;
  unsigned checkpoint_iteration = start_iteration;
  if (recovery) {
    initial = engine_->snapshot();
    checkpoint = initial;
  }
  const unsigned durable_interval =
      recovery ? policy.checkpoint_interval : 1;
  const auto write_durable = [&](unsigned next_iteration) {
    if (durable_path.empty()) return;
    const Status saved =
        save_checkpoint_file(durable_path, checkpoint_data(next_iteration));
    if (!saved.ok()) {
      // Degraded but correct: the run continues, it just cannot resume
      // from this point after a crash.
      result.diagnoses.push_back("durable checkpoint write failed: " +
                                 saved.message);
    }
  };
  if (!result.resumed) write_durable(start_iteration);
  if (result.resumed && options.on_restore) options.on_restore(*this);

  std::size_t previous_components = n_;
  unsigned iter = start_iteration;

  // Escalation ladder: rollback to the latest checkpoint while the budget
  // lasts, then restart from the initial snapshot, then fail with the full
  // diagnosis history.  Each recovery resets the detectors via on_restore.
  const auto recover = [&](const std::string& diagnosis) {
    result.diagnoses.push_back(diagnosis);
    if (!recovery) {
      throw ContractViolation(
          "corruption detected with recovery disabled — " + diagnosis);
    }
    if (result.rollbacks < policy.max_rollbacks) {
      ++result.rollbacks;
      engine_->restore(checkpoint);
      iter = checkpoint_iteration;
    } else if (result.restarts < policy.max_restarts) {
      ++result.restarts;
      engine_->restore(initial);
      checkpoint = initial;
      checkpoint_iteration = start_iteration;
      iter = start_iteration;
    } else {
      std::string history;
      for (const std::string& d : result.diagnoses) {
        if (!history.empty()) history += "; ";
        history += d;
      }
      throw ContractViolation("fault recovery exhausted (" +
                              std::to_string(result.rollbacks) +
                              " rollbacks, " +
                              std::to_string(result.restarts) +
                              " restarts): " + history);
    }
    previous_components = n_;
    if (options.on_restore) options.on_restore(*this);
  };

  while (true) {
    if (iter < iterations) {
      std::string diagnosis;
      try {
        run_iteration(iter, hooks);
        if (options.detect) diagnosis = options.detect(*this);
      } catch (const ContractViolation& trap) {
        // A corrupted pointer walking off the field (or any other contract
        // trap) is itself a detection: recover instead of crashing.
        if (!recovery) throw;
        diagnosis = std::string("contract trap: ") + trap.what();
      }
      if (!diagnosis.empty()) {
        recover(diagnosis);
        continue;
      }
      if (options.self_check) {
        const std::vector<NodeId> labels = current_labels();
        std::size_t components = 0;
        std::vector<std::uint8_t> seen(n_, 0);
        for (NodeId label : labels) {
          GCALIB_ASSERT_MSG(label < n_, "self-check: label out of range");
          if (!seen[label]) {
            seen[label] = 1;
            ++components;
          }
        }
        GCALIB_ASSERT_MSG(components <= previous_components,
                          "self-check: component count increased");
        previous_components = components;
      }
      ++iter;
      if (recovery && iter < iterations &&
          iter % policy.checkpoint_interval == 0) {
        checkpoint = engine_->snapshot();
        checkpoint_iteration = iter;
      }
      if (iter < iterations && iter % durable_interval == 0) {
        write_durable(iter);
      }
      continue;
    }

    result.labels = current_labels();
    if (options.final_check) {
      const std::string diagnosis = options.final_check(*this, result.labels);
      if (!diagnosis.empty()) {
        recover("end-of-run oracle: " + diagnosis);
        continue;
      }
    }
    break;
  }

  // A completed run retires its durable anchor so the next fresh run on
  // this directory starts from generation 0 instead of a stale state.
  if (!durable_path.empty()) remove_checkpoint_file(durable_path);

  result.iterations = iterations;

  if (options.self_check) {
    const graph::Graph g = graph_from_field();
    GCALIB_ASSERT_MSG(graph::is_valid_min_labeling(g, result.labels),
                      "self-check: final labeling disagrees with the oracle");
  }
  return result;
}

std::vector<NodeId> HirschbergGca::current_labels() const {
  std::vector<NodeId> labels(n_);
  for (NodeId j = 0; j < n_; ++j) {
    labels[j] = engine_->state(geometry_.index_of(j, 0)).d;
  }
  return labels;
}

std::uint32_t HirschbergGca::d_at(std::size_t row, std::size_t col) const {
  return engine_->state(geometry_.index_of(row, col)).d;
}

std::vector<std::uint64_t> HirschbergGca::d_snapshot() const {
  std::vector<std::uint64_t> out(geometry_.size());
  for (std::size_t i = 0; i < out.size(); ++i) {
    out[i] = engine_->state(i).d;
  }
  return out;
}

std::vector<NodeId> gca_components(const graph::Graph& g) {
  HirschbergGca machine(g);
  RunOptions options;
  options.instrument = false;
  return machine.run(options).labels;
}

}  // namespace gcalib::core
