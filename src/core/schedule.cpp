#include "core/schedule.hpp"

#include "common/bits.hpp"

namespace gcalib::core {

unsigned outer_iterations(std::size_t n) {
  return n > 1 ? log2_ceil(n) : 0;
}

unsigned subgeneration_count(std::size_t n) {
  return n > 1 ? log2_ceil(n) : 0;
}

std::size_t generations_of(Generation g, std::size_t n) {
  return has_subgenerations(g) ? subgeneration_count(n) : 1;
}

std::array<std::size_t, 6> generations_per_step(std::size_t n) {
  const std::size_t lg = subgeneration_count(n);
  return {
      1,           // step 1: generation 0
      3 + lg,      // step 2: generations 1, 2, 3 (log n), 4
      3 + lg,      // step 3: generations 5, 6, 7 (log n), 8
      1,           // step 4: generation 9
      lg,          // step 5: generation 10 (log n)
      1,           // step 6: generation 11
  };
}

std::size_t total_generations(std::size_t n) {
  if (n <= 1) return 1;
  const std::size_t lg = log2_ceil(n);
  return 1 + lg * (3 * lg + 8);
}

}  // namespace gcalib::core
