#include "core/cc_solver.hpp"

#include <algorithm>
#include <chrono>
#include <utility>

#include "common/assert.hpp"
#include "core/hirschberg_gca.hpp"
#include "core/sparse_cc_solver.hpp"
#include "gca/cancel.hpp"
#include "graph/certificate.hpp"
#include "graph/labeling.hpp"

namespace gcalib::core {

const graph::Graph& SolverInput::dense() const {
  if (dense_ != nullptr) return *dense_;
  if (dense_cache_ == nullptr) {
    dense_cache_ = std::make_unique<graph::Graph>(csr_->to_graph());
  }
  return *dense_cache_;
}

const graph::CsrGraph& SolverInput::csr() const {
  if (csr_ != nullptr) return *csr_;
  if (csr_cache_ == nullptr) {
    csr_cache_ =
        std::make_unique<graph::CsrGraph>(graph::CsrGraph::from_graph(*dense_));
  }
  return *csr_cache_;
}

QueryOutcome CcSolver::try_solve(const SolverInput& input,
                                 const RunOptions& options) const {
  QueryOutcome outcome;
  const auto start = std::chrono::steady_clock::now();
  try {
    outcome.result = solve(input, options);
    outcome.status = Status{};
  } catch (const gca::DeadlineExceeded& e) {
    outcome.status = Status::error(StatusCode::kDeadlineExceeded, e.what());
  } catch (const gca::Cancelled& e) {
    outcome.status = Status::error(StatusCode::kCancelled, e.what());
  } catch (const ContractViolation& e) {
    outcome.status = Status::error(StatusCode::kFailedPrecondition, e.what());
  } catch (const std::exception& e) {
    outcome.status = Status::error(StatusCode::kInternal, e.what());
  } catch (...) {
    outcome.status = Status::error(StatusCode::kInternal,
                                   "query failed with a non-standard exception");
  }
  outcome.elapsed_ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                           std::chrono::steady_clock::now() - start)
                           .count();
  return outcome;
}

gca::SubstrateMode auto_substrate(graph::NodeId n, std::size_t m) {
  if (n == 0) return gca::SubstrateMode::kDense;
  // Dense iff m >= ceil(n^2 / 8).  Compared in the divided form: the
  // once-natural `8 * m >= n * n` wraps for m > SIZE_MAX / 8 (a legal
  // multigraph edge count) and would misroute exactly the huge-m queries
  // where the wrong substrate hurts most.  n <= 512 keeps n * n far from
  // overflow on its side.
  if (n <= 512 && m >= (std::size_t{n} * n + 7) / 8) {
    return gca::SubstrateMode::kDense;
  }
  return gca::SubstrateMode::kSparseCsr;
}

gca::SubstrateMode auto_substrate(graph::NodeId n, std::size_t m,
                                  unsigned threads) {
  if (n == 0) return gca::SubstrateMode::kDense;
  // The parallel CSR path divides its solve time by roughly the effective
  // parallelism p = 1 + (threads - 1) / 2, so dense has to be p times as
  // profitable before it wins the routing.  n <= 512 bounds the product:
  // ceil(n^2 / 8) <= 32768, far from std::size_t overflow at any thread
  // count.
  const std::size_t parallelism =
      1 + (std::size_t{std::max(threads, 1u)} - 1) / 2;
  if (n <= 512 && m >= parallelism * ((std::size_t{n} * n + 7) / 8)) {
    return gca::SubstrateMode::kDense;
  }
  return gca::SubstrateMode::kSparseCsr;
}

gca::SubstrateMode resolve_substrate(gca::SubstrateMode requested,
                                     graph::NodeId n, std::size_t m) {
  return requested == gca::SubstrateMode::kAuto ? auto_substrate(n, m)
                                                : requested;
}

gca::SubstrateMode resolve_substrate(gca::SubstrateMode requested,
                                     graph::NodeId n, std::size_t m,
                                     unsigned threads) {
  return requested == gca::SubstrateMode::kAuto
             ? auto_substrate(n, m, threads)
             : requested;
}

bool requires_dense_machine(const RunOptions& options) {
  // Only the HirschbergGca-typed hooks pin the dense machine.  The
  // substrate-agnostic resilience options (checkpoint_dir, recovery,
  // certify, sparse_monitors, the sparse round hooks) are implemented by
  // both substrates since DESIGN.md §15 and deliberately absent here:
  // pinning a million-vertex fault-tolerant query onto the O(n²) field was
  // the routing footgun this predicate used to be.
  return options.record_access || static_cast<bool>(options.on_step) ||
         static_cast<bool>(options.before_step) ||
         static_cast<bool>(options.after_step) ||
         static_cast<bool>(options.detect) ||
         static_cast<bool>(options.final_check) ||
         static_cast<bool>(options.on_restore);
}

namespace {

/// The paper-faithful substrate: one `HirschbergGca` machine per query.
/// Honours every RunOptions hook — this is the engine the fault-recovery
/// ladder, durable checkpoints and access recording were built around.
class DenseFieldSolver final : public CcSolver {
 public:
  [[nodiscard]] const char* name() const override { return "dense-field"; }
  [[nodiscard]] gca::SubstrateMode substrate() const override {
    return gca::SubstrateMode::kDense;
  }

  [[nodiscard]] QueryResult solve(const SolverInput& input,
                                  const RunOptions& options) const override {
    QueryResult result;
    if (input.node_count() == 0) return result;
    HirschbergGca machine(input.dense());
    RunResult run = machine.run(options);
    result.components = graph::component_count(run.labels);
    result.labels = std::move(run.labels);
    result.generations = run.generations;
    result.rollbacks = run.rollbacks;
    result.restarts = run.restarts;
    result.diagnoses = std::move(run.diagnoses);
    result.resumed = run.resumed;
    result.resume_round = run.resume_iteration;
    result.sweeps.reserve(run.records.size());
    for (StepRecord& record : run.records) {
      result.sweeps.push_back(std::move(record.stats));
    }
    if (options.certify) {
      // Dense queries are small by routing (n <= 512), so materialising
      // the CSR view for the certificate is cheap relative to the field.
      const graph::CsrGraph& csr = input.csr();
      graph::ForestCertificate certificate;
      Status status = build_certificate(csr, result.labels, certificate);
      if (status.ok()) {
        status = verify_certificate(csr, result.labels, result.components,
                                    certificate);
      }
      if (!status.ok()) throw ContractViolation(status.message);
      result.certified = true;
    }
    return result;
  }
};

}  // namespace

const CcSolver& dense_cc_solver() {
  static const DenseFieldSolver solver;
  return solver;
}

const CcSolver& sparse_cc_solver() {
  static const SparseCcSolver solver;
  return solver;
}

const CcSolver& cc_solver_for(gca::SubstrateMode substrate) {
  switch (substrate) {
    case gca::SubstrateMode::kDense:
      return dense_cc_solver();
    case gca::SubstrateMode::kSparseCsr:
      return sparse_cc_solver();
    case gca::SubstrateMode::kAuto:
      break;
  }
  GCALIB_EXPECTS_MSG(false,
                     "cc_solver_for: kAuto must be resolved against a "
                     "concrete query first (resolve_substrate)");
  return dense_cc_solver();
}

}  // namespace gcalib::core
