// The twelve generations of the GCA mapping (paper Figure 2 / Table 1).
#pragma once

#include <cstdint>

namespace gcalib::core {

/// One generation of the paper's state machine.  The numeric values match
/// the paper's generation numbers exactly.
enum class Generation : std::uint8_t {
  kInit = 0,           ///< d <- row(index)                     (step 1)
  kCopyCToRows = 1,    ///< copy C (column 0) into every row    (step 2)
  kMaskNeighbors = 2,  ///< keep C(i) iff A(j,i)=1 and C(i)!=C(j), else inf
  kRowMin = 3,         ///< tree-reduction row minimum, log n sub-generations
  kFallback = 4,       ///< column 0: if inf, restore C(j) from D_N
  kCopyTToRows = 5,    ///< copy T (column 0) into every row    (step 3)
  kMaskMembers = 6,    ///< keep T(i) iff C(i)=j and T(i)!=j, else inf
  kRowMin2 = 7,        ///< identical to generation 3
  kFallback2 = 8,      ///< identical to generation 4
  kAdopt = 9,          ///< C <- T: copy column 0 across rows; D_N <- T (step 4)
  kPointerJump = 10,   ///< column 0: C(j) <- C(C(j)), log n sub-generations (step 5)
  kFinalMin = 11,      ///< column 0: C(j) <- min(C(j), T(C(j)))  (step 6)
};

inline constexpr std::uint8_t kGenerationCount = 12;

/// The PRAM step of Listing 1 that a generation implements.
[[nodiscard]] constexpr int paper_step(Generation g) {
  switch (g) {
    case Generation::kInit: return 1;
    case Generation::kCopyCToRows:
    case Generation::kMaskNeighbors:
    case Generation::kRowMin:
    case Generation::kFallback: return 2;
    case Generation::kCopyTToRows:
    case Generation::kMaskMembers:
    case Generation::kRowMin2:
    case Generation::kFallback2: return 3;
    case Generation::kAdopt: return 4;
    case Generation::kPointerJump: return 5;
    case Generation::kFinalMin: return 6;
  }
  return 0;
}

/// True for the generations that iterate log2(n) sub-generations.
[[nodiscard]] constexpr bool has_subgenerations(Generation g) {
  return g == Generation::kRowMin || g == Generation::kRowMin2 ||
         g == Generation::kPointerJump;
}

}  // namespace gcalib::core
