// Hirschberg's connected-components algorithm on a one-handed, uniform GCA
// — the paper's primary contribution (section 3).
//
// Cell field: (n+1) x n.  Each square cell (j, i) carries
//   a — the adjacency bit A(j, i),
//   d — the working data word (node / super-node numbers, or infinity),
//   p — the pointer most recently used (recomputed every generation, as in
//       the paper's "=" assignments; kept in the state for traceability).
// The bottom row D_N buffers the C / T vectors between phases.
//
// The run is a direct execution of the Figure-2 state machine: one engine
// step per generation (log n steps for generations 3, 7 and 10), repeated
// for ceil(log2 n) outer iterations.  Every cell evaluates the same uniform
// rule; position-dependent behaviour (first column, bottom row, square) is
// part of that rule, exactly as in the paper.
#pragma once

#include <algorithm>
#include <cstdint>
#include <functional>
#include <limits>
#include <memory>
#include <vector>

#include "common/status.hpp"
#include "core/checkpoint.hpp"
#include "core/generation.hpp"
#include "gca/bitplane.hpp"
#include "gca/cancel.hpp"
#include "gca/engine.hpp"
#include "gca/execution.hpp"
#include "gca/field.hpp"
#include "gca/worklist.hpp"
#include "graph/graph.hpp"

namespace gcalib::core {

/// GCA cell state (paper: "(a, d, p)" for square cells, "(d, p)" for the
/// bottom row; we carry a = 0 there).
struct Cell {
  std::uint32_t a = 0;  ///< adjacency bit A(row, col)
  std::uint32_t d = 0;  ///< data word
  std::uint32_t p = 0;  ///< pointer used in the last generation
  friend bool operator==(const Cell&, const Cell&) = default;
};

/// The infinity sentinel of the min computations.
inline constexpr std::uint32_t kInfData = std::numeric_limits<std::uint32_t>::max();

}  // namespace gcalib::core

namespace gcalib::gca {

/// SoA layout for the Hirschberg cell (DESIGN.md §9/§13): the adjacency bit
/// is written once at initialisation (and by fault injection through
/// `Engine::set_state`), so only `d` and `p` are double-buffered.  The
/// adjacency plane is *bit-packed* 64 cells per word (gca::BitPlane) — the
/// paper's model stores exactly one bit there, and packing cuts the mask
/// kernels' adjacency traffic 32x while the word-at-a-time kernel variants
/// (gca/kernel_registry.hpp) test eight cells per shift.  `load` composes
/// the bit back to the 0/1 word the Cell API always exposed, so mediated
/// rules, fault injection (which flips the bit with mask 1) and the
/// checkpoint format are unchanged.
template <>
struct SoaLayout<core::Cell> {
  static constexpr bool kEnabled = true;

  struct Immutable {
    BitPlane a;
  };
  struct Mutable {
    std::vector<std::uint32_t> d;
    std::vector<std::uint32_t> p;
  };

  static void init(const std::vector<core::Cell>& cells, Immutable& immutable,
                   Mutable& mutable_part) {
    const std::size_t count = cells.size();
    immutable.a.resize(count);
    mutable_part.d.resize(count);
    mutable_part.p.resize(count);
    for (std::size_t i = 0; i < count; ++i) {
      if (cells[i].a != 0) immutable.a.set(i, true);
      mutable_part.d[i] = cells[i].d;
      mutable_part.p[i] = cells[i].p;
    }
  }
  static void resize(Mutable& mutable_part, std::size_t count) {
    mutable_part.d.resize(count);
    mutable_part.p.resize(count);
  }
  [[nodiscard]] static std::size_t size(const Mutable& mutable_part) {
    return mutable_part.d.size();
  }
  [[nodiscard]] static core::Cell load(const Immutable& immutable,
                                       const Mutable& mutable_part,
                                       std::size_t i) {
    return core::Cell{immutable.a.test(i) ? 1u : 0u, mutable_part.d[i],
                      mutable_part.p[i]};
  }
  static void store(const Immutable& immutable, Mutable& mutable_part,
                    std::size_t i, const core::Cell& value) {
    GCALIB_ASSERT_MSG(value.a == (immutable.a.test(i) ? 1u : 0u),
                      "rules must not modify the immutable adjacency bit");
    mutable_part.d[i] = value.d;
    mutable_part.p[i] = value.p;
  }
  static void store_host(Immutable& immutable, Mutable& mutable_part,
                         std::size_t i, const core::Cell& value) {
    immutable.a.set(i, value.a != 0);
    mutable_part.d[i] = value.d;
    mutable_part.p[i] = value.p;
  }
  static void copy(const Mutable& from, Mutable& to, std::size_t i) {
    to.d[i] = from.d[i];
    to.p[i] = from.p[i];
  }
  /// Contiguous bulk copy for the engine's complement-swap commit.
  static void copy_span(const Mutable& from, Mutable& to, std::size_t begin,
                        std::size_t end) {
    const auto b = static_cast<std::ptrdiff_t>(begin);
    const auto e = static_cast<std::ptrdiff_t>(end);
    std::copy(from.d.begin() + b, from.d.begin() + e, to.d.begin() + b);
    std::copy(from.p.begin() + b, from.p.begin() + e, to.p.begin() + b);
  }
};

}  // namespace gcalib::gca

namespace gcalib::core {

/// Identifies one engine step within a run.
struct StepId {
  unsigned iteration = 0;      ///< outer iteration (0-based); 0 for gen 0
  Generation generation = Generation::kInit;
  unsigned subgeneration = 0;  ///< 0 unless the generation iterates
  friend bool operator==(const StepId&, const StepId&) = default;
};

/// A recorded engine step: identification plus measured statistics.
struct StepRecord {
  StepId id;
  gca::GenerationStats stats;
};

class HirschbergGca;

/// Mutable between-rounds view of the sparse CSR label lattice, handed to
/// the sparse resilience hooks (fault injection and monitors — DESIGN.md
/// §15).  Hooks run on the driving thread while every sweep lane is
/// quiesced, so `get`/`set` are plain accesses with no synchronisation
/// burden on the hook.  `set` may raise a label — that is exactly what a
/// fault injector does — and the per-round monitors (`sparse_monitors`)
/// are what catches it before the next sweep dereferences it.
struct SparseRoundContext {
  unsigned round = 0;        ///< 0-based hook/shortcut round index
  graph::NodeId n = 0;       ///< vertex count; labels are indexed [0, n)
  bool async = false;        ///< true on the concurrent CAS-min round loop
  std::function<graph::NodeId(graph::NodeId)> get;  ///< read label[v]
  std::function<void(graph::NodeId, graph::NodeId)> set;  ///< write label[v]
  /// Async only (empty in sync mode): discard every change recorded this
  /// round, so the next frontier worklist misses them — the stale-frontier
  /// fault site.  The labels themselves are untouched.
  std::function<void()> drop_frontier;
};

/// Checkpoint/rollback policy for detected state corruption (see src/fault/
/// for the injectors and monitors that produce the detections).
struct RecoveryPolicy {
  /// Outer iterations between engine snapshots.  0 disables checkpointing:
  /// a detection then throws ContractViolation instead of recovering.
  unsigned checkpoint_interval = 0;
  /// Rollbacks to the latest checkpoint before escalating to a restart.
  unsigned max_rollbacks = 3;
  /// Full restarts (from the post-initialisation snapshot) before the run
  /// fails with the accumulated diagnosis.
  unsigned max_restarts = 1;
  [[nodiscard]] bool enabled() const { return checkpoint_interval > 0; }
};

/// Options controlling a run.
struct RunOptions {
  bool instrument = true;      ///< collect per-step congestion statistics
  bool record_access = false;  ///< record individual access edges (slow)
  unsigned threads = 1;        ///< parallel sweep width
  /// Sweep backend for threads > 1 (default: the persistent shared pool;
  /// kSpawn recreates the legacy spawn-per-generation behaviour).
  gca::ExecutionPolicy policy = gca::ExecutionPolicy::kPool;
  /// Whether the engine honours the per-generation active regions of the
  /// Figure-2 state machine (kSparse, the default: work proportional to
  /// the active cells) or sweeps the whole field every generation (kDense:
  /// the verification mode — bit-identical states and logical stats).
  gca::SweepMode sweep = gca::SweepMode::kSparse;
  /// Bulk-kernel variant the fast path dispatches
  /// (gca/kernel_registry.hpp): kAuto resolves to the best the host
  /// supports (AVX2 / NEON / scalar).  Only consulted when the fast
  /// kernels are enabled at all (sparse sweep, no instrumentation); every
  /// variant is bit-identical to the scalar reference.
  gca::KernelVariant kernels = gca::KernelVariant::kAuto;
  /// Generation-loop discipline of the CSR substrate (ignored by the dense
  /// cell-field machine): kSync double-buffers labels and is the
  /// bit-identical golden reference; kAsync runs concurrent CAS-min label
  /// propagation with active-frontier worklists; kAuto picks async exactly
  /// when the sweep is parallel (threads > 1 and a parallel policy).  Both
  /// modes converge to the same canonical min-id labeling (DESIGN.md §14).
  gca::SparseMode sparse_mode = gca::SparseMode::kAuto;
  /// Frontier/dense crossover for the async CSR path: a round sweeps only
  /// the active worklist while the frontier holds at most this fraction of
  /// the vertices, and falls back to a full sweep above it (building a
  /// worklist that names most of the graph costs more than it saves).
  /// 0 disables worklists entirely (every async round sweeps densely);
  /// values are clamped to [0, 1].  Ignored in sync mode.
  double sparse_frontier = 0.35;
  /// Paranoid mode: validates machine invariants after every outer
  /// iteration (labels are node ids, component count never increases) and
  /// the final labeling against a sequential oracle.  Throws
  /// ContractViolation on any violation.  Costs O(m alpha(n)) at the end.
  bool self_check = false;
  /// Metrics sink attached to the engine for the duration of the run
  /// (non-owning; nullptr = no tracing).  While attached, every engine
  /// step is wall-clock timed and pushed to the sink — and the timing also
  /// appears in `RunResult::records` / `on_step` stats.  See
  /// gca/metrics.hpp.
  gca::MetricsSink* sink = nullptr;
  /// Called after every engine step (tracing / golden tests); may be empty.
  std::function<void(const StepRecord&)> on_step;

  // --- robustness hooks (wired up by fault::run_resilient) --------------

  /// Called immediately before each engine step; may mutate cell state
  /// through the machine (fault injection).
  std::function<void(HirschbergGca&, const StepId&)> before_step;
  /// Called immediately after each engine step (stuck-at re-pinning).
  std::function<void(HirschbergGca&, const StepId&)> after_step;
  /// Corruption detector, polled after every outer iteration: returns a
  /// non-empty diagnosis when monitors flagged the state since the last
  /// poll.  A ContractViolation escaping an iteration (e.g. a corrupted
  /// pointer read out of the field) is treated as the same kind of
  /// detection when recovery is enabled.
  std::function<std::string(const HirschbergGca&)> detect;
  /// End-of-run oracle over the final labeling; non-empty = corrupted.
  std::function<std::string(const HirschbergGca&,
                            const std::vector<graph::NodeId>&)>
      final_check;
  /// Called after a rollback or restart restored the field, so stateful
  /// monitors and injectors can resynchronise their baselines.
  std::function<void(HirschbergGca&)> on_restore;
  RecoveryPolicy recovery;

  // --- sparse resilience hooks (DESIGN.md §15) --------------------------
  //
  // The CSR-substrate counterparts of the dense step hooks above.  They
  // cost nothing when unset: the sparse solver only leaves its PR-9 fast
  // path when one of these (or `checkpoint_dir` / an enabled recovery
  // policy) is present.

  /// Called before every sparse round, after any checkpoint/anchor state
  /// was captured — the injection point for label corruption.
  std::function<void(const SparseRoundContext&)> sparse_before_round;
  /// Called after every sparse round — the injection point for stuck-at
  /// re-pinning, lost-update reverts and frontier drops.
  std::function<void(const SparseRoundContext&)> sparse_after_round;
  /// Per-round label-lattice monitors: every label in range and <= its
  /// vertex id, monotone non-increasing against the previous round, and
  /// root-reachable via a bounded pointer chase.  A violation is a
  /// detection: the recovery ladder handles it when enabled, otherwise the
  /// solve throws ContractViolation.  Fault injectors force this on.
  bool sparse_monitors = false;
  /// Build a spanning-forest certificate from the final labels and verify
  /// the labeling against it (graph/certificate.hpp, O(n + m)) — an
  /// independently checkable proof of correctness, strictly stronger than
  /// `self_check` auditing-wise (no solver re-run to trust).  A failed
  /// build or verify is a detection like any monitor violation.  Honoured
  /// by both substrates.
  bool certify = false;

  // --- process-resilience hooks (DESIGN.md §10) -------------------------

  /// Wall-clock budget for the whole run in milliseconds; 0 = unlimited.
  /// The deadline is polled at every sweep chunk boundary and an expiry
  /// throws `gca::DeadlineExceeded` with the field left on the last
  /// completed generation.  No cost when unset.
  std::int64_t deadline_ms = 0;
  /// External kill switch (non-owning; nullptr = none).  Tripping it from
  /// any thread aborts the run with `gca::Cancelled` at the next chunk
  /// boundary.
  gca::CancelToken* cancel = nullptr;
  /// Directory for durable checkpoints (empty = in-memory recovery only).
  /// When set, the run (a) resumes from an intact checkpoint found there —
  /// a corrupt one is rejected with a diagnosis and the run starts fresh —
  /// and (b) writes a checkpoint atomically at every checkpoint boundary
  /// (`recovery.checkpoint_interval` iterations; every iteration when
  /// recovery is disabled).  The file is removed on successful completion.
  /// Honoured by both substrates: the dense machine writes GCKP artifacts,
  /// the sparse CSR engine writes GSKP label-plane artifacts (per *round*
  /// rather than per iteration) — resuming either mid-run reproduces the
  /// bit-identical canonical labeling.
  std::string checkpoint_dir;
};

/// Result of a full run.
struct RunResult {
  std::vector<graph::NodeId> labels;  ///< min-id component label per node
  unsigned iterations = 0;            ///< outer iterations executed
  std::size_t generations = 0;        ///< engine steps executed (incl. gen 0
                                      ///< and any rolled-back re-execution)
  std::vector<StepRecord> records;    ///< filled iff options.instrument
  unsigned rollbacks = 0;             ///< checkpoint rollbacks performed
  unsigned restarts = 0;              ///< full restarts performed
  std::vector<std::string> diagnoses; ///< one entry per detected corruption
  bool resumed = false;               ///< run resumed from a durable checkpoint
  unsigned resume_iteration = 0;      ///< outer iteration the resume entered at
};

/// The GCA machine specialised to Hirschberg's algorithm.
///
/// Grain of use: either call `run()` for the whole algorithm, or drive it
/// manually (`initialize()` + `step_generation(...)`) for golden tests and
/// visualisation.
class HirschbergGca {
 public:
  /// Binds the machine to a graph (loads A into the cell field).
  explicit HirschbergGca(const graph::Graph& g);

  HirschbergGca(const HirschbergGca&) = delete;
  HirschbergGca& operator=(const HirschbergGca&) = delete;

  [[nodiscard]] graph::NodeId n() const { return n_; }
  [[nodiscard]] const gca::FieldGeometry& geometry() const { return geometry_; }
  [[nodiscard]] const gca::Engine<Cell>& engine() const { return *engine_; }
  [[nodiscard]] gca::Engine<Cell>& engine() { return *engine_; }

  /// Executes the whole algorithm and returns the labeling.
  RunResult run(const RunOptions& options = {});

  // --- granular interface ---------------------------------------------

  /// Executes generation 0 (field initialisation).
  gca::GenerationStats initialize();

  /// Executes one generation (one sub-generation for generations 3/7/10).
  gca::GenerationStats step_generation(Generation g, unsigned subgeneration = 0);

  /// Per-step callbacks threaded through an iteration (all optional).
  struct StepHooks {
    std::function<void(const StepRecord&)> sink;
    std::function<void(HirschbergGca&, const StepId&)> before;
    std::function<void(HirschbergGca&, const StepId&)> after;
  };

  /// Executes one full outer iteration (generations 1..11 with all
  /// sub-generations); `sink` (optional) observes each step.
  void run_iteration(unsigned iteration,
                     const std::function<void(const StepRecord&)>& sink = {});

  /// As above, with fault-injection hooks around every step.
  void run_iteration(unsigned iteration, const StepHooks& hooks);

  /// The active region generation `g` (sub-generation `sub`) advertises to
  /// the engine — straight from the Figure-2 state machine: the exact set
  /// of cells whose rule can activate (full field, square, column 0, or
  /// the strided survivor set of a tree-reduction sub-generation).
  [[nodiscard]] gca::ActiveRegion region_for(Generation g, unsigned sub) const;

  /// Current C vector (column 0 of the square field).
  [[nodiscard]] std::vector<graph::NodeId> current_labels() const;

  /// Current d value at (row, col) — test/visualisation access.
  [[nodiscard]] std::uint32_t d_at(std::size_t row, std::size_t col) const;

  /// Snapshot of all d values (row-major, (n+1) x n) for rendering.
  [[nodiscard]] std::vector<std::uint64_t> d_snapshot() const;

  /// The input graph reconstructed from the adjacency bits in the field.
  [[nodiscard]] graph::Graph graph_from_field() const;

  // --- durable checkpoints (core/checkpoint.hpp) ------------------------

  /// The machine's full serialisable state: both SoA planes, the engine
  /// generation counter, and `next_iteration` as the state-machine
  /// position a resumed run enters at.
  [[nodiscard]] CheckpointData checkpoint_data(unsigned next_iteration) const;

  /// Restores the machine from checkpoint data (the inverse of
  /// `checkpoint_data`).  Validates that the data belongs to a machine of
  /// this size and that the iteration is within the schedule; returns
  /// kInvalidArgument with a diagnosis instead of loading a mismatched
  /// state.  On success `next_iteration` receives the iteration to resume
  /// at.
  [[nodiscard]] Status restore_from(const CheckpointData& data,
                                    unsigned& next_iteration);

 private:
  template <typename Rule>
  gca::GenerationStats step_with(Rule&& rule, const gca::ActiveRegion& region,
                                 Generation g, unsigned subgen);

  /// True when generations may dispatch to the bulk SoA kernels
  /// (gca/kernels.hpp) instead of the mediated uniform rule: sparse sweeps
  /// with no instrumentation, no access recording and no read override
  /// (the kernels bypass read mediation, so anything that observes
  /// individual reads forces the rule path).
  [[nodiscard]] bool fast_kernels_enabled() const;

  /// Exact worklist of the row-min sub-generation `sub` (offset 2^sub) —
  /// built lazily from a pooled scratch bitset, cached for the machine's
  /// lifetime (the active set depends only on n and sub, never on data).
  [[nodiscard]] const gca::Worklist& row_min_worklist(unsigned sub);
  /// Exact worklist of the column-0 cells (pointer jump).
  [[nodiscard]] const gca::Worklist& column_worklist();

  graph::NodeId n_;
  gca::FieldGeometry geometry_;
  std::unique_ptr<gca::Engine<Cell>> engine_;
  std::vector<gca::Worklist> row_min_worklists_;
  gca::Worklist column_worklist_;
};

/// One-call convenience: labels of `g` computed on the GCA.
[[nodiscard]] std::vector<graph::NodeId> gca_components(const graph::Graph& g);

}  // namespace gcalib::core
