// Transitive closure on the GCA.
//
// The paper's reference [5] — Hirschberg, STOC 1976 — is titled "Parallel
// algorithms for the transitive closure AND the connected component
// problems"; the connected-components mapping reproduced in core/ covers
// the second half, and this module covers the first as the natural
// companion (also the paper's stated future work: "more elaborate PRAM
// algorithms").
//
// Algorithm: repeated Boolean squaring of R = A | I.  After ceil(lg n)
// squarings R is the reflexive-transitive closure.  GCA mapping: n^2 cells,
// cell (i, j) holds the bit R(i, j); one squaring runs n sub-generations,
// in sub-generation k cell (i, j) reads R(i, k) and R(k, j) and ORs their
// conjunction into an accumulator.  This needs a *two-handed* GCA — a
// deliberate contrast to the one-handed connected-components machine,
// exercising the k-handed dimension of the model (the paper: "one handed
// if only one neighbor can be addressed, two handed if two...").
// Congestion is n per read cell (a whole row/column reads the same bit;
// 2n at the pivot cell (k,k), which serves both roles), and total
// generations are ceil(lg n) * (n + 1): asymptotically
// O(n log n), the classic time for closure on n^2 processors without a
// combining network.
#pragma once

#include <cstdint>
#include <vector>

#include "gca/execution.hpp"
#include "graph/graph.hpp"

namespace gcalib::core {

/// Dense square Boolean matrix; unlike graph::AdjacencyMatrix this one is
/// directed (no symmetry requirement) because transitive closure is a
/// directed-graph problem.
class BoolMatrix {
 public:
  BoolMatrix() = default;
  explicit BoolMatrix(std::size_t n) : n_(n), bits_(n * n, 0) {}

  [[nodiscard]] std::size_t size() const { return n_; }
  [[nodiscard]] bool at(std::size_t i, std::size_t j) const {
    return bits_[i * n_ + j] != 0;
  }
  void set(std::size_t i, std::size_t j, bool value = true) {
    bits_[i * n_ + j] = value ? 1 : 0;
  }

  /// From an undirected graph's adjacency matrix.
  [[nodiscard]] static BoolMatrix from_graph(const graph::Graph& g);

  friend bool operator==(const BoolMatrix&, const BoolMatrix&) = default;

 private:
  std::size_t n_ = 0;
  std::vector<std::uint8_t> bits_;
};

/// Floyd–Warshall style sequential closure (the oracle).
[[nodiscard]] BoolMatrix transitive_closure_warshall(const BoolMatrix& a);

/// Repeated Boolean squaring (the functional reference of the parallel
/// algorithm; same result, different schedule).
[[nodiscard]] BoolMatrix transitive_closure_squaring(const BoolMatrix& a);

/// Result of the GCA run.
struct TcRunResult {
  BoolMatrix closure;
  std::size_t generations = 0;
  std::size_t max_congestion = 0;
};

/// Repeated squaring executed on a two-handed GCA with n^2 cells.
[[nodiscard]] TcRunResult transitive_closure_gca(const BoolMatrix& a,
                                                 bool instrument = true);

/// As above with full execution control; `exec.hands` is overridden to 2
/// (the machine is two-handed by construction).  A pool policy shares the
/// process-wide worker set with every other engine of the same width.
[[nodiscard]] TcRunResult transitive_closure_gca(const BoolMatrix& a,
                                                 gca::EngineOptions exec);

/// Closed-form generation count of the GCA schedule.
[[nodiscard]] std::size_t tc_total_generations(std::size_t n);

/// Connected components of an undirected graph via closure: label(i) =
/// min{ j : R(i, j) }.  Cross-validation target against union-find.
[[nodiscard]] std::vector<graph::NodeId> components_from_closure(
    const graph::Graph& g);

}  // namespace gcalib::core
