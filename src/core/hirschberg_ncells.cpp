#include "core/hirschberg_ncells.hpp"

#include <algorithm>

#include "common/assert.hpp"
#include "common/bits.hpp"
#include "gca/engine.hpp"

namespace gcalib::core {

namespace {

constexpr std::uint32_t kInf = std::numeric_limits<std::uint32_t>::max();

/// One cell per node: C(i), T(i) and the scan accumulator.  The cell's
/// adjacency row lives outside the evolving state (read-only input, the
/// hardware analogue is a per-cell ROM).
struct NCell {
  std::uint32_t c = 0;
  std::uint32_t t = 0;
  std::uint32_t acc = 0;
};

}  // namespace

NCellRunResult hirschberg_ncells(const graph::Graph& g, bool instrument) {
  const graph::NodeId n = g.node_count();
  NCellRunResult result;
  if (n == 0) return result;

  gca::Engine<NCell> engine(
      std::vector<NCell>(n),
      gca::EngineOptions{}.with_instrumentation(instrument));

  const auto track = [&result](const gca::GenerationStats& stats) {
    ++result.generations;
    result.max_congestion = std::max(result.max_congestion, stats.max_congestion);
  };

  // Step 1: C(i) <- i (local).
  track(engine.step(
      [](std::size_t i, auto&) -> std::optional<NCell> {
        NCell next;
        next.c = static_cast<std::uint32_t>(i);
        return next;
      },
      "ncell.init"));

  const unsigned iterations = n > 1 ? log2_ceil(n) : 0;

  // Sequential-scan minimum: `accept(self, neighbour_state, k)` filters
  // candidates; after the scan, acc holds the min or kInf.
  const auto scan_min = [&](auto&& accept, const char* label) {
    track(engine.step(
        [&engine](std::size_t i, auto&) -> std::optional<NCell> {
          NCell next = engine.state(i);
          next.acc = kInf;
          return next;
        },
        std::string(label) + ".reset"));
    for (graph::NodeId k = 0; k < n; ++k) {
      track(engine.step(
          [&engine, &accept, k](std::size_t i,
                                auto& read) -> std::optional<NCell> {
            NCell next = engine.state(i);
            const NCell& other = read(k);
            const std::uint32_t candidate = accept(i, next, other, k);
            next.acc = std::min(next.acc, candidate);
            return next;
          },
          std::string(label) + ".k" + std::to_string(k)));
    }
    // Fallback: T <- acc, or C when no candidate was found.
    track(engine.step(
        [&engine](std::size_t i, auto&) -> std::optional<NCell> {
          NCell next = engine.state(i);
          next.t = next.acc == kInf ? next.c : next.acc;
          return next;
        },
        std::string(label) + ".collect"));
  };

  for (unsigned iter = 0; iter < iterations; ++iter) {
    // Step 2: T(i) = min{C(k) : A(i,k)=1, C(k) != C(i)}.
    scan_min(
        [&g](std::size_t i, const NCell& self, const NCell& other,
             graph::NodeId k) -> std::uint32_t {
          const bool adjacent = g.has_edge(static_cast<graph::NodeId>(i), k);
          return (adjacent && other.c != self.c) ? other.c : kInf;
        },
        "ncell.step2");

    // Step 3: T(i) = min{T(k) : C(k) = i, T(k) != i}.
    scan_min(
        [](std::size_t i, const NCell& /*self*/, const NCell& other,
           graph::NodeId /*k*/) -> std::uint32_t {
          const auto node = static_cast<std::uint32_t>(i);
          return (other.c == node && other.t != node) ? other.t : kInf;
        },
        "ncell.step3");

    // Step 4: C <- T (local).
    track(engine.step(
        [&engine](std::size_t i, auto&) -> std::optional<NCell> {
          NCell next = engine.state(i);
          next.c = next.t;
          return next;
        },
        "ncell.adopt"));

    // Step 5: pointer jumping, ceil(lg n) rounds.
    for (unsigned r = 0; r < iterations; ++r) {
      track(engine.step(
          [&engine](std::size_t i, auto& read) -> std::optional<NCell> {
            NCell next = engine.state(i);
            next.c = read(next.c).c;
            return next;
          },
          "ncell.jump"));
    }

    // Step 6: C(i) <- min(C(i), C(T(i))).
    track(engine.step(
        [&engine](std::size_t i, auto& read) -> std::optional<NCell> {
          NCell next = engine.state(i);
          next.c = std::min(next.c, read(next.t).c);
          return next;
        },
        "ncell.correct"));
  }

  result.iterations = iterations;
  result.labels.resize(n);
  for (graph::NodeId i = 0; i < n; ++i) {
    result.labels[i] = engine.state(i).c;
  }
  return result;
}

std::size_t ncells_total_generations(std::size_t n) {
  if (n <= 1) return 1;
  const std::size_t lg = log2_ceil(n);
  // init + per iteration: two scans of (1 + n + 1), adopt (1), lg jumps,
  // correct (1).
  return 1 + lg * (2 * (n + 2) + lg + 2);
}

}  // namespace gcalib::core
