#include "core/hirschberg_tree.hpp"

#include <algorithm>

#include "common/bits.hpp"
#include "core/schedule.hpp"

namespace gcalib::core {

using gca::GenerationStats;
using graph::NodeId;

namespace {

std::vector<TreeCell> build_field(const graph::Graph& g) {
  const NodeId n = g.node_count();
  const gca::FieldGeometry geometry = gca::FieldGeometry::hirschberg(n);
  std::vector<TreeCell> cells(geometry.size());
  for (NodeId j = 0; j < n; ++j) {
    for (NodeId i = 0; i < n; ++i) {
      cells[geometry.index_of(j, i)].a = g.has_edge(j, i) ? 1 : 0;
    }
  }
  return cells;
}

}  // namespace

HirschbergGcaTree::HirschbergGcaTree(const graph::Graph& g)
    : n_(g.node_count()),
      geometry_(gca::FieldGeometry::hirschberg(std::max<std::size_t>(n_, 1))),
      engine_(std::make_unique<gca::Engine<TreeCell>>(
          n_ > 0 ? build_field(g) : std::vector<TreeCell>(2),
          gca::EngineOptions{})) {}

template <typename Rule>
void HirschbergGcaTree::static_step(TreeRunResult& result, Rule&& rule,
                                    const char* label) {
  const GenerationStats stats = engine_->step(std::forward<Rule>(rule), label);
  ++result.generations;
  result.static_max_congestion =
      std::max(result.static_max_congestion, stats.max_congestion);
}

template <typename Rule>
void HirschbergGcaTree::dynamic_step(TreeRunResult& result, Rule&& rule,
                                     const char* label) {
  const GenerationStats stats = engine_->step(std::forward<Rule>(rule), label);
  ++result.generations;
  result.dynamic_max_congestion =
      std::max(result.dynamic_max_congestion, stats.max_congestion);
}

void HirschbergGcaTree::broadcast_c_into_columns(TreeRunResult& result) {
  const std::size_t n = n_;
  const std::size_t rows = n + 1;
  const auto geo = geometry_;
  // Seed: cell (i, i) fetches C(i) from (i, 0); every target is read once.
  static_step(
      result,
      [this, geo](std::size_t index, auto& read) -> std::optional<TreeCell> {
        if (geo.in_bottom_row(index) || geo.row(index) != geo.col(index)) {
          return std::nullopt;
        }
        TreeCell next = engine_->state(index);
        const std::size_t p = geo.index_of(geo.row(index), 0);
        next.d = read(p).d;
        next.p = static_cast<std::uint32_t>(p);
        return next;
      },
      "tree.b1:seed");
  // Ring doubling down each column (anchor row = column index), covering
  // all n+1 rows including D_N.
  for (unsigned s = 0; (std::size_t{1} << s) < rows; ++s) {
    const std::size_t offset = std::size_t{1} << s;
    static_step(
        result,
        [this, geo, rows, offset](std::size_t index,
                                  auto& read) -> std::optional<TreeCell> {
          const std::size_t dist =
              (geo.row(index) + rows - geo.col(index)) % rows;
          if (dist < offset || dist >= 2 * offset) return std::nullopt;
          const std::size_t src_row = (geo.row(index) + rows - offset) % rows;
          const std::size_t p = geo.index_of(src_row, geo.col(index));
          TreeCell next = engine_->state(index);
          next.d = read(p).d;
          next.p = static_cast<std::uint32_t>(p);
          return next;
        },
        "tree.b1:double");
  }
}

void HirschbergGcaTree::broadcast_row_c_and_mask(TreeRunResult& result) {
  const std::size_t n = n_;
  const auto geo = geometry_;
  // Seed: (j, j) fetches C(j) from D_N[j] into e.
  static_step(
      result,
      [this, geo, n](std::size_t index, auto& read) -> std::optional<TreeCell> {
        if (geo.in_bottom_row(index) || geo.row(index) != geo.col(index)) {
          return std::nullopt;
        }
        TreeCell next = engine_->state(index);
        const std::size_t p = geo.index_of(n, geo.col(index));
        next.e = read(p).d;
        next.p = static_cast<std::uint32_t>(p);
        return next;
      },
      "tree.b2:seed");
  // Ring doubling along each square row (anchor column = row index).
  for (unsigned s = 0; (std::size_t{1} << s) < n; ++s) {
    const std::size_t offset = std::size_t{1} << s;
    static_step(
        result,
        [this, geo, n, offset](std::size_t index,
                               auto& read) -> std::optional<TreeCell> {
          if (geo.in_bottom_row(index)) return std::nullopt;
          const std::size_t dist = (geo.col(index) + n - geo.row(index)) % n;
          if (dist < offset || dist >= 2 * offset) return std::nullopt;
          const std::size_t src_col = (geo.col(index) + n - offset) % n;
          const std::size_t p = geo.index_of(geo.row(index), src_col);
          TreeCell next = engine_->state(index);
          next.e = read(p).e;
          next.p = static_cast<std::uint32_t>(p);
          return next;
        },
        "tree.b2:double");
  }
  // Local mask — no global read at all.
  static_step(
      result,
      [this, geo](std::size_t index, auto&) -> std::optional<TreeCell> {
        if (geo.in_bottom_row(index)) return std::nullopt;
        TreeCell next = engine_->state(index);
        next.d = (next.d != next.e && next.a == 1) ? next.d : kTreeInf;
        return next;
      },
      "tree.mask-neighbors(local)");
}

void HirschbergGcaTree::row_min(TreeRunResult& result) {
  const std::size_t n = n_;
  const auto geo = geometry_;
  const unsigned subs = subgeneration_count(n);
  for (unsigned s = 0; s < subs; ++s) {
    const std::size_t offset = std::size_t{1} << s;
    static_step(
        result,
        [this, geo, n, offset](std::size_t index,
                               auto& read) -> std::optional<TreeCell> {
          if (geo.in_bottom_row(index)) return std::nullopt;
          const std::size_t col = geo.col(index);
          if (col % (2 * offset) != 0 || col + offset >= n) return std::nullopt;
          const std::size_t p = index + offset;
          TreeCell next = engine_->state(index);
          next.d = std::min(next.d, read(p).d);
          next.p = static_cast<std::uint32_t>(p);
          return next;
        },
        "tree.row-min");
  }
}

void HirschbergGcaTree::fallback(TreeRunResult& result) {
  const std::size_t n = n_;
  const auto geo = geometry_;
  static_step(
      result,
      [this, geo, n](std::size_t index, auto& read) -> std::optional<TreeCell> {
        if (geo.in_bottom_row(index) || geo.col(index) != 0) return std::nullopt;
        const std::size_t p = geo.index_of(n, geo.row(index));
        const TreeCell& global = read(p);
        TreeCell next = engine_->state(index);
        next.d = next.d == kTreeInf ? global.d : next.d;
        next.p = static_cast<std::uint32_t>(p);
        return next;
      },
      "tree.fallback");
}

void HirschbergGcaTree::broadcast_t_into_columns(TreeRunResult& result) {
  const std::size_t n = n_;
  const auto geo = geometry_;
  // Seed: (i, i) fetches T(i) from (i, 0); square only, D_N keeps C.
  static_step(
      result,
      [this, geo](std::size_t index, auto& read) -> std::optional<TreeCell> {
        if (geo.in_bottom_row(index) || geo.row(index) != geo.col(index)) {
          return std::nullopt;
        }
        TreeCell next = engine_->state(index);
        const std::size_t p = geo.index_of(geo.row(index), 0);
        next.d = read(p).d;
        next.p = static_cast<std::uint32_t>(p);
        return next;
      },
      "tree.b3:seed");
  // Ring doubling over the n square rows only.
  for (unsigned s = 0; (std::size_t{1} << s) < n; ++s) {
    const std::size_t offset = std::size_t{1} << s;
    static_step(
        result,
        [this, geo, n, offset](std::size_t index,
                               auto& read) -> std::optional<TreeCell> {
          if (geo.in_bottom_row(index)) return std::nullopt;
          const std::size_t dist = (geo.row(index) + n - geo.col(index)) % n;
          if (dist < offset || dist >= 2 * offset) return std::nullopt;
          const std::size_t src_row = (geo.row(index) + n - offset) % n;
          const std::size_t p = geo.index_of(src_row, geo.col(index));
          TreeCell next = engine_->state(index);
          next.d = read(p).d;
          next.p = static_cast<std::uint32_t>(p);
          return next;
        },
        "tree.b3:double");
  }
}

void HirschbergGcaTree::broadcast_col_c_and_mask(TreeRunResult& result) {
  const std::size_t n = n_;
  const std::size_t rows = n + 1;
  const auto geo = geometry_;
  // Stage: D_N copies its own d (= C) into e so the ring can travel in e.
  // A purely local operation.
  static_step(
      result,
      [this, geo](std::size_t index, auto&) -> std::optional<TreeCell> {
        if (!geo.in_bottom_row(index)) return std::nullopt;
        TreeCell next = engine_->state(index);
        next.e = next.d;
        return next;
      },
      "tree.b4:stage");
  // Ring doubling up each column, anchored at the bottom row.
  for (unsigned s = 0; (std::size_t{1} << s) < rows; ++s) {
    const std::size_t offset = std::size_t{1} << s;
    static_step(
        result,
        [this, geo, rows, offset, n](std::size_t index,
                                     auto& read) -> std::optional<TreeCell> {
          const std::size_t dist = (geo.row(index) + rows - n) % rows;
          if (dist < offset || dist >= 2 * offset) return std::nullopt;
          const std::size_t src_row = (geo.row(index) + rows - offset) % rows;
          const std::size_t p = geo.index_of(src_row, geo.col(index));
          TreeCell next = engine_->state(index);
          next.e = read(p).e;
          next.p = static_cast<std::uint32_t>(p);
          return next;
        },
        "tree.b4:double");
  }
  // Local mask: keep T(i) iff C(i) = row and T(i) != row.
  static_step(
      result,
      [this, geo](std::size_t index, auto&) -> std::optional<TreeCell> {
        if (geo.in_bottom_row(index)) return std::nullopt;
        const auto row = static_cast<std::uint32_t>(geo.row(index));
        TreeCell next = engine_->state(index);
        next.d = (next.e == row && next.d != row) ? next.d : kTreeInf;
        return next;
      },
      "tree.mask-members(local)");
}

void HirschbergGcaTree::adopt(TreeRunResult& result) {
  const std::size_t n = n_;
  const auto geo = geometry_;
  // Row doubling from column 0 (plain distances, no ring needed).
  for (unsigned s = 0; (std::size_t{1} << s) < n; ++s) {
    const std::size_t offset = std::size_t{1} << s;
    static_step(
        result,
        [this, geo, offset](std::size_t index,
                            auto& read) -> std::optional<TreeCell> {
          if (geo.in_bottom_row(index)) return std::nullopt;
          const std::size_t col = geo.col(index);
          if (col < offset || col >= 2 * offset) return std::nullopt;
          const std::size_t p = index - offset;
          TreeCell next = engine_->state(index);
          next.d = read(p).d;
          next.p = static_cast<std::uint32_t>(p);
          return next;
        },
        "tree.adopt:double");
  }
  // D_N fetch: (n, i) <- (i, i) — the transposed store of T.
  static_step(
      result,
      [this, geo](std::size_t index, auto& read) -> std::optional<TreeCell> {
        if (!geo.in_bottom_row(index)) return std::nullopt;
        const std::size_t i = geo.col(index);
        const std::size_t p = geo.index_of(i, i);
        TreeCell next = engine_->state(index);
        next.d = read(p).d;
        next.p = static_cast<std::uint32_t>(p);
        return next;
      },
      "tree.adopt:dn-fetch");
}

void HirschbergGcaTree::pointer_jump(TreeRunResult& result) {
  const std::size_t n = n_;
  const auto geo = geometry_;
  const unsigned subs = subgeneration_count(n);
  for (unsigned s = 0; s < subs; ++s) {
    dynamic_step(
        result,
        [this, geo, n](std::size_t index, auto& read) -> std::optional<TreeCell> {
          if (geo.in_bottom_row(index) || geo.col(index) != 0) {
            return std::nullopt;
          }
          TreeCell next = engine_->state(index);
          const std::size_t p = std::size_t{next.d} * n;
          next.d = read(p).d;
          next.p = static_cast<std::uint32_t>(p);
          return next;
        },
        "tree.jump");
  }
}

void HirschbergGcaTree::final_min(TreeRunResult& result) {
  const std::size_t n = n_;
  const auto geo = geometry_;
  dynamic_step(
      result,
      [this, geo, n](std::size_t index, auto& read) -> std::optional<TreeCell> {
        if (geo.in_bottom_row(index) || geo.col(index) != 0) return std::nullopt;
        TreeCell next = engine_->state(index);
        const std::size_t p = std::size_t{next.d} * n + 1;
        next.d = std::min(next.d, read(p).d);
        next.p = static_cast<std::uint32_t>(p);
        return next;
      },
      "tree.final-min");
}

TreeRunResult HirschbergGcaTree::run(bool instrument) {
  TreeRunResult result;
  engine_->set_options(
      gca::EngineOptions{engine_->options()}.with_instrumentation(
          instrument));
  if (n_ == 0) return result;

  const auto geo = geometry_;
  // Generation 0, unchanged from the baseline: d <- row(index), local.
  static_step(
      result,
      [this, geo](std::size_t index, auto&) -> std::optional<TreeCell> {
        TreeCell next = engine_->state(index);
        next.d = static_cast<std::uint32_t>(geo.row(index));
        next.p = static_cast<std::uint32_t>(index);
        return next;
      },
      "tree.init");

  const unsigned iterations = outer_iterations(n_);
  for (unsigned iter = 0; iter < iterations; ++iter) {
    broadcast_c_into_columns(result);
    broadcast_row_c_and_mask(result);
    row_min(result);
    fallback(result);
    broadcast_t_into_columns(result);
    broadcast_col_c_and_mask(result);
    row_min(result);
    fallback(result);
    adopt(result);
    pointer_jump(result);
    final_min(result);
  }

  result.iterations = iterations;
  result.labels.resize(n_);
  for (NodeId j = 0; j < n_; ++j) {
    result.labels[j] = engine_->state(geometry_.index_of(j, 0)).d;
  }
  return result;
}

std::size_t HirschbergGcaTree::total_generations(std::size_t n) {
  if (n <= 1) return 1;
  const std::size_t lg = log2_ceil(n);
  const std::size_t lg_rows = log2_ceil(n + 1);
  // b1: 1 + lg_rows; b2: 1 + lg + 1; rowmin: lg; fallback: 1;
  // b3: 1 + lg; b4: 1 + lg_rows + 1; rowmin2: lg; fallback2: 1;
  // adopt: lg + 1; jump: lg; final: 1.
  const std::size_t per_iteration =
      (1 + lg_rows) + (2 + lg) + lg + 1 + (1 + lg) + (2 + lg_rows) + lg + 1 +
      (lg + 1) + lg + 1;
  return 1 + log2_ceil(n) * per_iteration;
}

std::vector<NodeId> gca_tree_components(const graph::Graph& g) {
  HirschbergGcaTree machine(g);
  return machine.run(/*instrument=*/false).labels;
}

}  // namespace gcalib::core
