// Durable (on-disk) checkpoints for Hirschberg runs.
//
// PR 1's snapshot/rollback recovery dies with the process: a SIGKILL mid-
// algorithm loses every anchor and the run restarts from generation 0.
// This module serialises the full machine state — both SoA planes (the
// immutable adjacency bits plus the double-buffered d/p registers), the
// engine generation counter and the state-machine position (next outer
// iteration) — into a small versioned binary artifact that survives the
// process, so a relaunched run resumes mid-algorithm.
//
// Format (all integers little-endian, fixed width):
//
//   offset  size  field
//   0       4     magic "GCKP"
//   4       4     version (currently 1)
//   8       4     n (node count; field is (n+1) x n cells)
//   12      4     next outer iteration to execute
//   16      8     engine generation counter
//   24      8     cell count (must equal (n+1) * n)
//   32      4*C   a plane (adjacency bits)
//   32+4C   4*C   d plane (data words)
//   32+8C   4*C   p plane (pointer words)
//   end     4     CRC-32 (IEEE) over every preceding byte
//
// Torn-write safety: `save_checkpoint_file` writes to a temporary sibling
// and renames it over the target, so a crash mid-write leaves either the
// previous intact checkpoint or a stray temp file — never a half-written
// artifact under the real name.  The loader additionally verifies magic,
// version, exact length, the CRC, and the per-register value ranges, and
// reports each failure as a distinct `Status` diagnosis instead of ever
// accepting corrupt state (fuzzed in tests/fuzz_test.cpp).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.hpp"

namespace gcalib::core {

/// One serialisable machine state.  `HirschbergGca::checkpoint_data` /
/// `restore_from` convert between this and a live machine.
struct CheckpointData {
  std::uint32_t n = 0;           ///< node count; field is (n+1) x n
  std::uint32_t iteration = 0;   ///< next outer iteration to execute
  std::uint64_t generation = 0;  ///< engine generation counter
  std::vector<std::uint32_t> a;  ///< adjacency plane, (n+1) * n entries
  std::vector<std::uint32_t> d;  ///< data plane
  std::vector<std::uint32_t> p;  ///< pointer plane

  friend bool operator==(const CheckpointData&, const CheckpointData&) =
      default;
};

/// The on-disk encoding of `data` (header + planes + CRC).
[[nodiscard]] std::string serialize_checkpoint(const CheckpointData& data);

/// Inverse of `serialize_checkpoint` with full validation.  Returns
/// kDataLoss with a diagnosis on any corruption (bad magic/version, size
/// mismatch, truncation, CRC failure, out-of-range register values); `out`
/// is only written on success.  Never throws on malformed input.
[[nodiscard]] Status parse_checkpoint(const std::string& bytes,
                                      CheckpointData& out);

/// Atomically writes `data` to `path` (temp file + rename).  Returns
/// kInternal with the OS diagnosis when the filesystem refuses.
[[nodiscard]] Status save_checkpoint_file(const std::string& path,
                                          const CheckpointData& data);

/// Loads and validates a checkpoint file.  kNotFound when no file exists
/// (the normal cold-start case), kDataLoss for a torn or tampered file.
[[nodiscard]] Status load_checkpoint_file(const std::string& path,
                                          CheckpointData& out);

/// Removes a checkpoint file if present (cleanup after a completed run).
void remove_checkpoint_file(const std::string& path);

/// The checkpoint filename used inside a `--checkpoint-dir` directory.
[[nodiscard]] std::string checkpoint_path_in(const std::string& dir);

// --- sparse (CSR) checkpoints: the GSKP format -------------------------
//
// The sparse engine's whole resumable state is the label plane: labels
// form a monotone non-increasing lattice with a unique fixpoint (the
// canonical min-id labeling), so resuming *any* valid intermediate label
// vector — in either sparse mode — converges to the bit-identical result
// (DESIGN.md §15).  A GSKP artifact therefore carries just the labels, the
// round counter, and a content hash binding it to the exact graph it was
// taken from:
//
//   offset  size  field
//   0       4     magic "GSKP"
//   4       4     version (currently 1)
//   8       4     n (node count)
//   12      4     next round to execute
//   16      8     graph content hash (CsrGraph::content_hash)
//   24      8     label count (must equal n)
//   32      4*n   label plane
//   end     4     CRC-32 (IEEE) over every preceding byte
//
// Same durability discipline as GCKP: atomic temp+rename writes, and a
// total loader (alloc-guarded, CRC-checked, semantic label-range checks)
// that reports every corruption as a distinct kDataLoss diagnosis.

/// One serialisable sparse-solver state.
struct SparseCheckpointData {
  std::uint32_t n = 0;          ///< node count
  std::uint32_t round = 0;      ///< next hook/shortcut round to execute
  std::uint64_t graph_hash = 0; ///< CsrGraph::content_hash of the input
  std::vector<std::uint32_t> labels;  ///< label plane, n entries

  friend bool operator==(const SparseCheckpointData&,
                         const SparseCheckpointData&) = default;
};

/// The on-disk GSKP encoding of `data` (header + label plane + CRC).
[[nodiscard]] std::string serialize_sparse_checkpoint(
    const SparseCheckpointData& data);

/// Inverse of `serialize_sparse_checkpoint` with full validation: returns
/// kDataLoss with a diagnosis on any corruption (bad magic/version, size
/// mismatch, truncation, CRC failure, labels violating the lattice
/// invariant label[v] <= v); `out` is only written on success.  Never
/// throws on malformed input.
[[nodiscard]] Status parse_sparse_checkpoint(const std::string& bytes,
                                             SparseCheckpointData& out);

/// Atomically writes `data` to `path` (temp file + rename).  Returns
/// kInternal with the OS diagnosis when the filesystem refuses.
[[nodiscard]] Status save_sparse_checkpoint_file(
    const std::string& path, const SparseCheckpointData& data);

/// Loads and validates a GSKP file.  kNotFound when no file exists (the
/// normal cold-start case), kDataLoss for a torn or tampered file.
[[nodiscard]] Status load_sparse_checkpoint_file(const std::string& path,
                                                 SparseCheckpointData& out);

/// The GSKP filename used inside a `--checkpoint-dir` directory.  Distinct
/// from the dense `hirschberg.ckpt`, so a directory can serve either
/// substrate without the loaders tripping over each other's artifacts.
[[nodiscard]] std::string sparse_checkpoint_path_in(const std::string& dir);

/// Create-or-fail-fast validation of a checkpoint directory: creates the
/// directory (and missing parents) when absent, and returns
/// kInvalidArgument with the OS diagnosis when the path cannot become a
/// writable directory (exists as a file, uncreatable parent, permission).
/// Callers run this *before* any work so a misconfigured directory yields
/// one clean Status up front instead of a write error deep inside the
/// atomic temp+rename path on every checkpoint boundary.
[[nodiscard]] Status ensure_checkpoint_dir(const std::string& dir);

}  // namespace gcalib::core
