#include "core/checkpoint.hpp"

#include <cstdio>
#include <cstring>
#include <filesystem>
#include <functional>
#include <limits>
#include <system_error>

#include "common/crc32.hpp"

namespace gcalib::core {

namespace {

constexpr char kMagic[4] = {'G', 'C', 'K', 'P'};
constexpr std::uint32_t kVersion = 1;
constexpr char kSparseMagic[4] = {'G', 'S', 'K', 'P'};
constexpr std::uint32_t kSparseVersion = 1;
constexpr std::size_t kHeaderBytes = 32;
constexpr std::size_t kCrcBytes = 4;

/// Alloc guard of the GSKP loader: one u32 label per node, so 2^28 nodes
/// (a 1 GiB plane) bounds anything a hostile header can request while
/// leaving the million-node graphs the sparse substrate exists for far
/// inside the limit.
constexpr std::uint64_t kMaxSparseNodes = std::uint64_t{1} << 28;

/// Upper bound on the cell count a loader will allocate for — rejects
/// fuzzed headers that would otherwise request gigabytes.  2^26 cells
/// covers n up to ~8k nodes, far beyond any simulated field.
constexpr std::uint64_t kMaxCells = std::uint64_t{1} << 26;

/// The infinity sentinel of the d registers (mirrors core::kInfData without
/// pulling in the machine header).
constexpr std::uint32_t kInf = std::numeric_limits<std::uint32_t>::max();

void put_u32(std::string& out, std::uint32_t value) {
  unsigned char bytes[4];
  for (int i = 0; i < 4; ++i) {
    bytes[i] = static_cast<unsigned char>((value >> (8 * i)) & 0xFFu);
  }
  out.append(reinterpret_cast<const char*>(bytes), 4);
}

void put_u64(std::string& out, std::uint64_t value) {
  unsigned char bytes[8];
  for (int i = 0; i < 8; ++i) {
    bytes[i] = static_cast<unsigned char>((value >> (8 * i)) & 0xFFu);
  }
  out.append(reinterpret_cast<const char*>(bytes), 8);
}

[[nodiscard]] std::uint32_t get_u32(const std::string& bytes,
                                    std::size_t offset) {
  std::uint32_t value = 0;
  for (int i = 3; i >= 0; --i) {
    value = (value << 8) |
            static_cast<unsigned char>(bytes[offset + static_cast<std::size_t>(i)]);
  }
  return value;
}

[[nodiscard]] std::uint64_t get_u64(const std::string& bytes,
                                    std::size_t offset) {
  std::uint64_t value = 0;
  for (int i = 7; i >= 0; --i) {
    value = (value << 8) |
            static_cast<unsigned char>(bytes[offset + static_cast<std::size_t>(i)]);
  }
  return value;
}

void get_plane(const std::string& bytes, std::size_t offset, std::size_t count,
               std::vector<std::uint32_t>& plane) {
  plane.resize(count);
  for (std::size_t i = 0; i < count; ++i) {
    plane[i] = get_u32(bytes, offset + 4 * i);
  }
}

[[nodiscard]] Status data_loss(std::string message) {
  return Status::error(StatusCode::kDataLoss,
                       "checkpoint: " + std::move(message));
}

}  // namespace

std::string serialize_checkpoint(const CheckpointData& data) {
  const std::size_t cells = data.a.size();
  std::string out;
  out.reserve(kHeaderBytes + 12 * cells + kCrcBytes);
  out.append(kMagic, sizeof kMagic);
  put_u32(out, kVersion);
  put_u32(out, data.n);
  put_u32(out, data.iteration);
  put_u64(out, data.generation);
  put_u64(out, cells);
  for (const std::vector<std::uint32_t>* plane : {&data.a, &data.d, &data.p}) {
    for (std::uint32_t value : *plane) put_u32(out, value);
  }
  put_u32(out, crc32(out.data(), out.size()));
  return out;
}

Status parse_checkpoint(const std::string& bytes, CheckpointData& out) {
  if (bytes.size() < kHeaderBytes + kCrcBytes) {
    return data_loss("truncated header (" + std::to_string(bytes.size()) +
                     " bytes)");
  }
  if (std::memcmp(bytes.data(), kMagic, sizeof kMagic) != 0) {
    return data_loss("bad magic (not a GCKP checkpoint)");
  }
  const std::uint32_t version = get_u32(bytes, 4);
  if (version != kVersion) {
    return data_loss("unsupported version " + std::to_string(version) +
                     " (expected " + std::to_string(kVersion) + ")");
  }
  const std::uint32_t n = get_u32(bytes, 8);
  const std::uint32_t iteration = get_u32(bytes, 12);
  const std::uint64_t generation = get_u64(bytes, 16);
  const std::uint64_t cells = get_u64(bytes, 24);
  if (n == 0) return data_loss("node count is zero");
  if (cells > kMaxCells) {
    return data_loss("cell count " + std::to_string(cells) +
                     " exceeds the loader bound");
  }
  if (cells != (std::uint64_t{n} + 1) * n) {
    return data_loss("cell count " + std::to_string(cells) +
                     " does not match the (n+1) x n field of n = " +
                     std::to_string(n));
  }
  const std::size_t expected =
      kHeaderBytes + 12 * static_cast<std::size_t>(cells) + kCrcBytes;
  if (bytes.size() != expected) {
    return data_loss("payload length " + std::to_string(bytes.size()) +
                     " does not match the header (expected " +
                     std::to_string(expected) + " bytes)");
  }
  const std::uint32_t stored_crc = get_u32(bytes, bytes.size() - kCrcBytes);
  const std::uint32_t actual_crc =
      crc32(bytes.data(), bytes.size() - kCrcBytes);
  if (stored_crc != actual_crc) {
    return data_loss("CRC mismatch (torn write or bit rot)");
  }

  CheckpointData data;
  data.n = n;
  data.iteration = iteration;
  data.generation = generation;
  const auto count = static_cast<std::size_t>(cells);
  get_plane(bytes, kHeaderBytes, count, data.a);
  get_plane(bytes, kHeaderBytes + 4 * count, count, data.d);
  get_plane(bytes, kHeaderBytes + 8 * count, count, data.p);

  // Semantic range checks: a CRC only proves the file matches what was
  // written; these prove what was written is a reachable machine state.
  for (std::size_t i = 0; i < count; ++i) {
    if (data.a[i] > 1) {
      return data_loss("adjacency bit out of range at cell " +
                       std::to_string(i));
    }
    if (data.d[i] > n && data.d[i] != kInf) {
      return data_loss("d register out of range at cell " + std::to_string(i));
    }
    if (data.p[i] >= count) {
      return data_loss("p register addresses outside the field at cell " +
                       std::to_string(i));
    }
  }
  out = std::move(data);
  return Status{};
}

std::string serialize_sparse_checkpoint(const SparseCheckpointData& data) {
  std::string out;
  out.reserve(kHeaderBytes + 4 * data.labels.size() + kCrcBytes);
  out.append(kSparseMagic, sizeof kSparseMagic);
  put_u32(out, kSparseVersion);
  put_u32(out, data.n);
  put_u32(out, data.round);
  put_u64(out, data.graph_hash);
  put_u64(out, data.labels.size());
  for (const std::uint32_t label : data.labels) put_u32(out, label);
  put_u32(out, crc32(out.data(), out.size()));
  return out;
}

Status parse_sparse_checkpoint(const std::string& bytes,
                               SparseCheckpointData& out) {
  if (bytes.size() < kHeaderBytes + kCrcBytes) {
    return data_loss("truncated header (" + std::to_string(bytes.size()) +
                     " bytes)");
  }
  if (std::memcmp(bytes.data(), kSparseMagic, sizeof kSparseMagic) != 0) {
    return data_loss("bad magic (not a GSKP sparse checkpoint)");
  }
  const std::uint32_t version = get_u32(bytes, 4);
  if (version != kSparseVersion) {
    return data_loss("unsupported GSKP version " + std::to_string(version) +
                     " (expected " + std::to_string(kSparseVersion) + ")");
  }
  const std::uint32_t n = get_u32(bytes, 8);
  const std::uint32_t round = get_u32(bytes, 12);
  const std::uint64_t graph_hash = get_u64(bytes, 16);
  const std::uint64_t count = get_u64(bytes, 24);
  if (n == 0) return data_loss("node count is zero");
  if (count > kMaxSparseNodes) {
    return data_loss("label count " + std::to_string(count) +
                     " exceeds the loader bound");
  }
  if (count != n) {
    return data_loss("label count " + std::to_string(count) +
                     " does not match n = " + std::to_string(n));
  }
  const std::size_t expected =
      kHeaderBytes + 4 * static_cast<std::size_t>(count) + kCrcBytes;
  if (bytes.size() != expected) {
    return data_loss("payload length " + std::to_string(bytes.size()) +
                     " does not match the header (expected " +
                     std::to_string(expected) + " bytes)");
  }
  const std::uint32_t stored_crc = get_u32(bytes, bytes.size() - kCrcBytes);
  const std::uint32_t actual_crc =
      crc32(bytes.data(), bytes.size() - kCrcBytes);
  if (stored_crc != actual_crc) {
    return data_loss("CRC mismatch (torn write or bit rot)");
  }

  SparseCheckpointData data;
  data.n = n;
  data.round = round;
  data.graph_hash = graph_hash;
  get_plane(bytes, kHeaderBytes, count, data.labels);

  // Semantic lattice check: a resumable label plane must satisfy
  // label[v] <= v (which also bounds it below n) — anything else is not a
  // reachable solver state and resuming it could index out of the graph.
  for (std::size_t v = 0; v < data.labels.size(); ++v) {
    if (data.labels[v] > v) {
      return data_loss("label of vertex " + std::to_string(v) +
                       " violates the lattice invariant (" +
                       std::to_string(data.labels[v]) + " > " +
                       std::to_string(v) + ")");
    }
  }
  out = std::move(data);
  return Status{};
}

namespace {

/// Shared atomic temp+rename writer of both artifact formats.
Status write_file_atomically(const std::string& path,
                             const std::string& bytes) {
  const std::string tmp = path + ".tmp";
  std::FILE* file = std::fopen(tmp.c_str(), "wb");
  if (file == nullptr) {
    return Status::error(StatusCode::kInternal,
                         "checkpoint: cannot open " + tmp + " for writing");
  }
  const std::size_t written = std::fwrite(bytes.data(), 1, bytes.size(), file);
  const bool flushed = std::fflush(file) == 0;
  const bool closed = std::fclose(file) == 0;
  if (written != bytes.size() || !flushed || !closed) {
    std::remove(tmp.c_str());
    return Status::error(StatusCode::kInternal,
                         "checkpoint: short write to " + tmp);
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return Status::error(StatusCode::kInternal,
                         "checkpoint: cannot rename " + tmp + " to " + path);
  }
  return Status{};
}

/// Shared whole-file reader; parse errors get the path appended.
Status read_and_parse(const std::string& path,
                      const std::function<Status(const std::string&)>& parse) {
  std::FILE* file = std::fopen(path.c_str(), "rb");
  if (file == nullptr) {
    return Status::error(StatusCode::kNotFound,
                         "checkpoint: no file at " + path);
  }
  std::string bytes;
  char buffer[1 << 16];
  std::size_t got = 0;
  while ((got = std::fread(buffer, 1, sizeof buffer, file)) > 0) {
    bytes.append(buffer, got);
  }
  const bool read_error = std::ferror(file) != 0;
  std::fclose(file);
  if (read_error) {
    return Status::error(StatusCode::kInternal,
                         "checkpoint: read error on " + path);
  }
  Status status = parse(bytes);
  if (!status.ok()) status.message += " [" + path + "]";
  return status;
}

}  // namespace

Status save_sparse_checkpoint_file(const std::string& path,
                                   const SparseCheckpointData& data) {
  return write_file_atomically(path, serialize_sparse_checkpoint(data));
}

Status load_sparse_checkpoint_file(const std::string& path,
                                   SparseCheckpointData& out) {
  return read_and_parse(path, [&out](const std::string& bytes) {
    return parse_sparse_checkpoint(bytes, out);
  });
}

std::string sparse_checkpoint_path_in(const std::string& dir) {
  if (dir.empty()) return {};
  const char last = dir.back();
  return (last == '/' || last == '\\') ? dir + "sparse.gskp"
                                       : dir + "/sparse.gskp";
}

Status save_checkpoint_file(const std::string& path,
                            const CheckpointData& data) {
  const std::string bytes = serialize_checkpoint(data);
  const std::string tmp = path + ".tmp";
  std::FILE* file = std::fopen(tmp.c_str(), "wb");
  if (file == nullptr) {
    return Status::error(StatusCode::kInternal,
                         "checkpoint: cannot open " + tmp + " for writing");
  }
  const std::size_t written = std::fwrite(bytes.data(), 1, bytes.size(), file);
  const bool flushed = std::fflush(file) == 0;
  const bool closed = std::fclose(file) == 0;
  if (written != bytes.size() || !flushed || !closed) {
    std::remove(tmp.c_str());
    return Status::error(StatusCode::kInternal,
                         "checkpoint: short write to " + tmp);
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return Status::error(StatusCode::kInternal,
                         "checkpoint: cannot rename " + tmp + " to " + path);
  }
  return Status{};
}

Status load_checkpoint_file(const std::string& path, CheckpointData& out) {
  std::FILE* file = std::fopen(path.c_str(), "rb");
  if (file == nullptr) {
    return Status::error(StatusCode::kNotFound,
                         "checkpoint: no file at " + path);
  }
  std::string bytes;
  char buffer[1 << 16];
  std::size_t got = 0;
  while ((got = std::fread(buffer, 1, sizeof buffer, file)) > 0) {
    bytes.append(buffer, got);
  }
  const bool read_error = std::ferror(file) != 0;
  std::fclose(file);
  if (read_error) {
    return Status::error(StatusCode::kInternal,
                         "checkpoint: read error on " + path);
  }
  Status status = parse_checkpoint(bytes, out);
  if (!status.ok()) status.message += " [" + path + "]";
  return status;
}

void remove_checkpoint_file(const std::string& path) {
  std::remove(path.c_str());
}

Status ensure_checkpoint_dir(const std::string& dir) {
  if (dir.empty()) {
    return Status::error(StatusCode::kInvalidArgument,
                         "checkpoint: directory path is empty");
  }
  std::error_code ec;
  const std::filesystem::path path(dir);
  if (std::filesystem::exists(path, ec)) {
    if (!std::filesystem::is_directory(path, ec)) {
      return Status::error(StatusCode::kInvalidArgument,
                           "checkpoint: " + dir + " is not a directory");
    }
    return Status{};
  }
  if (!std::filesystem::create_directories(path, ec) || ec) {
    return Status::error(StatusCode::kInvalidArgument,
                         "checkpoint: cannot create directory " + dir +
                             (ec ? " (" + ec.message() + ")" : ""));
  }
  return Status{};
}

std::string checkpoint_path_in(const std::string& dir) {
  if (dir.empty()) return {};
  const char last = dir.back();
  return (last == '/' || last == '\\') ? dir + "hirschberg.ckpt"
                                       : dir + "/hirschberg.ckpt";
}

}  // namespace gcalib::core
