#include "core/apsp.hpp"

#include <algorithm>

#include "common/assert.hpp"
#include "common/bits.hpp"
#include "gca/engine.hpp"

namespace gcalib::core {

DistMatrix DistMatrix::from_graph(const graph::Graph& g) {
  DistMatrix m(g.node_count());
  for (const graph::Edge& e : g.edges()) {
    m.set(e.u, e.v, 1);
    m.set(e.v, e.u, 1);
  }
  return m;
}

DistMatrix apsp_floyd_warshall(const DistMatrix& w) {
  const std::size_t n = w.size();
  DistMatrix dist = w;
  for (std::size_t k = 0; k < n; ++k) {
    for (std::size_t i = 0; i < n; ++i) {
      const Dist dik = dist.at(i, k);
      if (dik >= kUnreachable) continue;
      for (std::size_t j = 0; j < n; ++j) {
        const Dist through = saturating_add(dik, dist.at(k, j));
        if (through < dist.at(i, j)) dist.set(i, j, through);
      }
    }
  }
  return dist;
}

namespace {

struct ApspCell {
  Dist d = kUnreachable;
  Dist acc = kUnreachable;
};

}  // namespace

ApspRunResult apsp_gca(const DistMatrix& w, bool instrument) {
  const std::size_t n = w.size();
  ApspRunResult result;
  result.distances = DistMatrix(n);
  if (n == 0) return result;

  std::vector<ApspCell> initial(n * n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      initial[i * n + j].d = w.at(i, j);
    }
  }
  gca::Engine<ApspCell> engine(
      std::move(initial),
      gca::EngineOptions{}.with_hands(2).with_instrumentation(instrument));

  const unsigned rounds = n > 1 ? log2_ceil(n) : 0;
  for (unsigned round = 0; round < rounds; ++round) {
    for (std::size_t k = 0; k < n; ++k) {
      const gca::GenerationStats stats = engine.step(
          [n, k, &engine](std::size_t index,
                          auto& read) -> std::optional<ApspCell> {
            const std::size_t i = index / n;
            const std::size_t j = index % n;
            ApspCell next = engine.state(index);
            const Dist left = read(i * n + k).d;
            const Dist right = read(k * n + j).d;
            next.acc = std::min(next.acc, saturating_add(left, right));
            return next;
          },
          "apsp.round" + std::to_string(round) + ".k" + std::to_string(k));
      ++result.generations;
      result.max_congestion =
          std::max(result.max_congestion, stats.max_congestion);
    }
    engine.step(
        [&engine](std::size_t index, auto&) -> std::optional<ApspCell> {
          const ApspCell& self = engine.state(index);
          return ApspCell{std::min(self.d, self.acc), kUnreachable};
        },
        "apsp.round" + std::to_string(round) + ".commit");
    ++result.generations;
  }

  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      result.distances.set(i, j, engine.state(i * n + j).d);
    }
  }
  return result;
}

std::size_t apsp_total_generations(std::size_t n) {
  if (n <= 1) return 0;
  return log2_ceil(n) * (n + 1);
}

}  // namespace gcalib::core
