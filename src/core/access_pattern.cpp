#include "core/access_pattern.hpp"

#include <algorithm>

#include "common/assert.hpp"
#include "common/bits.hpp"
#include "core/schedule.hpp"

namespace gcalib::core {

namespace {

struct Coords {
  std::size_t row;
  std::size_t col;
  bool bottom;
};

Coords coords(std::size_t index, std::size_t n) {
  const std::size_t row = index / n;
  return Coords{row, index % n, row == n};
}

}  // namespace

bool is_active(Generation g, unsigned subgen, std::size_t index, std::size_t n) {
  GCALIB_EXPECTS(n >= 1 && index < n * (n + 1));
  const Coords c = coords(index, n);
  switch (g) {
    case Generation::kInit:
    case Generation::kCopyCToRows:
    case Generation::kAdopt:
      return true;  // whole field, including D_N
    case Generation::kMaskNeighbors:
    case Generation::kCopyTToRows:
    case Generation::kMaskMembers:
      return !c.bottom;  // the square
    case Generation::kRowMin:
    case Generation::kRowMin2: {
      const std::size_t offset = std::size_t{1} << subgen;
      return !c.bottom && c.col % (2 * offset) == 0 && c.col + offset < n;
    }
    case Generation::kFallback:
    case Generation::kFallback2:
    case Generation::kPointerJump:
    case Generation::kFinalMin:
      return !c.bottom && c.col == 0;
  }
  return false;
}

PointerSpec pointer_spec(Generation g, unsigned subgen, std::size_t index,
                         std::size_t n) {
  if (!is_active(g, subgen, index, n)) return PointerSpec{};
  const Coords c = coords(index, n);
  const std::size_t nn = n * n;
  switch (g) {
    case Generation::kInit:
      return PointerSpec{};  // local-only
    case Generation::kCopyCToRows:
    case Generation::kCopyTToRows:
      return PointerSpec{PointerKind::kStatic, c.col * n};
    case Generation::kMaskNeighbors:
    case Generation::kFallback:
    case Generation::kFallback2:
      return PointerSpec{PointerKind::kStatic, nn + c.row};
    case Generation::kMaskMembers:
      return PointerSpec{PointerKind::kStatic, nn + c.col};
    case Generation::kRowMin:
    case Generation::kRowMin2:
      return PointerSpec{PointerKind::kStatic,
                         index + (std::size_t{1} << subgen)};
    case Generation::kAdopt:
      return PointerSpec{PointerKind::kStatic,
                         c.bottom ? c.col * n : c.row * n};
    case Generation::kPointerJump:
    case Generation::kFinalMin:
      return PointerSpec{PointerKind::kDataDependent, 0};
  }
  return PointerSpec{};
}

std::vector<std::size_t> static_source_set(std::size_t index, std::size_t n) {
  std::vector<std::size_t> sources;
  const unsigned subs = subgeneration_count(n);
  for (std::uint8_t gi = 0; gi < kGenerationCount; ++gi) {
    const auto g = static_cast<Generation>(gi);
    const unsigned repeats = has_subgenerations(g) ? subs : 1;
    for (unsigned s = 0; s < repeats; ++s) {
      const PointerSpec spec = pointer_spec(g, s, index, n);
      if (spec.kind == PointerKind::kStatic) sources.push_back(spec.target);
    }
  }
  std::sort(sources.begin(), sources.end());
  sources.erase(std::unique(sources.begin(), sources.end()), sources.end());
  return sources;
}

bool needs_extended_cell(std::size_t index, std::size_t n) {
  GCALIB_EXPECTS(n >= 1 && index < n * (n + 1));
  const Coords c = coords(index, n);
  return !c.bottom && c.col == 0;
}

std::size_t expected_active_cells(Generation g, unsigned subgen, std::size_t n) {
  switch (g) {
    case Generation::kInit:
    case Generation::kCopyCToRows:
    case Generation::kAdopt:
      return n * (n + 1);
    case Generation::kMaskNeighbors:
    case Generation::kCopyTToRows:
    case Generation::kMaskMembers:
      return n * n;
    case Generation::kRowMin:
    case Generation::kRowMin2: {
      // Pairs per row in sub-generation s over arbitrary n:
      // cells with col % 2^(s+1) == 0 and col + 2^s < n.
      const std::size_t stride = std::size_t{2} << subgen;
      const std::size_t offset = std::size_t{1} << subgen;
      std::size_t per_row = 0;
      for (std::size_t col = 0; col + offset < n; col += stride) ++per_row;
      return n * per_row;  // n^2/2 for the first sub-generation, n power of 2
    }
    case Generation::kFallback:
    case Generation::kFallback2:
    case Generation::kPointerJump:
    case Generation::kFinalMin:
      return n;
  }
  return 0;
}

}  // namespace gcalib::core
