// Closed-form schedule arithmetic (paper Table 2 and the total-generation
// formula of section 3): how many GCA generations each PRAM step costs and
// the total 1 + log(n) * (3*log(n) + 8).
#pragma once

#include <array>
#include <cstddef>

#include "core/generation.hpp"

namespace gcalib::core {

/// Outer iterations of steps 2..6 (Listing 1): ceil(log2 n), 0 for n <= 1.
[[nodiscard]] unsigned outer_iterations(std::size_t n);

/// Sub-generations of one tree-reduction / pointer-jump generation.
[[nodiscard]] unsigned subgeneration_count(std::size_t n);

/// Engine steps one generation costs within one outer iteration.
[[nodiscard]] std::size_t generations_of(Generation g, std::size_t n);

/// Generations per PRAM step *per outer iteration* — Table 2 rows.
/// Index 0 is step 1 (runs once, outside the iterations).
[[nodiscard]] std::array<std::size_t, 6> generations_per_step(std::size_t n);

/// Total generations: 1 + log(n) * (3*log(n) + 8); 1 for n <= 1.
[[nodiscard]] std::size_t total_generations(std::size_t n);

}  // namespace gcalib::core
