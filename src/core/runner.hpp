// Runner — batch front-end for independent connected-components queries.
//
// The ROADMAP's service shape is "many small queries under heavy traffic",
// not one giant field: a stream of graphs (social subgraphs, circuit nets,
// image tiles) each needing a labeling.  Spinning an engine *and* a thread
// team per query would pay the setup cost the pool backend just removed,
// so the Runner owns one shared `gca::ThreadPool` and amortises it two
// ways:
//
//  * `solve(graph)` — one query, swept in parallel across the pool lanes
//    (the right grain for a large field);
//  * `solve_batch(graphs)` — many queries pulled off a shared cursor by
//    the pool lanes, each solved with a sequential sweep (the right grain
//    for many small fields: no per-generation handshake at all, lanes stay
//    busy across query boundaries).
//
// Results always come back in input order, and every query is labelled by
// the same Hirschberg machine the single-shot API uses, so a batch is
// bit-compatible with n independent `gca_components` calls.
#pragma once

#include <cstddef>
#include <memory>
#include <vector>

#include "gca/execution.hpp"
#include "graph/graph.hpp"

namespace gcalib::gca {
class MetricsSink;
class ThreadPool;
}  // namespace gcalib::gca

namespace gcalib::core {

/// Knobs of a Runner instance (validated by the constructor).
struct RunnerOptions {
  unsigned threads = 1;  ///< pool width (1 = everything sequential)
  /// Backend for the per-query sweep in `solve`; `solve_batch` uses the
  /// pool across queries whenever the policy is kPool and threads > 1.
  gca::ExecutionPolicy policy = gca::ExecutionPolicy::kPool;
  /// Sweep strategy for every query: sparse sweeps only each generation's
  /// active region, dense the whole field.  Bit-identical results either way.
  gca::SweepMode sweep = gca::SweepMode::kSparse;
  bool instrument = false;  ///< collect per-step statistics per query
  /// Metrics sink shared by every query (non-owning; nullptr = no tracing).
  /// `solve_batch` pushes steps from all pool lanes concurrently, so the
  /// sink must be thread-safe — `gca::Trace` is.
  gca::MetricsSink* sink = nullptr;
};

/// Labeling of one query.
struct QueryResult {
  std::vector<graph::NodeId> labels;  ///< min-id component label per node
  std::size_t components = 0;         ///< number of distinct labels
  std::size_t generations = 0;        ///< engine steps the query executed
};

class Runner {
 public:
  explicit Runner(RunnerOptions options = {});
  ~Runner();

  Runner(const Runner&) = delete;
  Runner& operator=(const Runner&) = delete;

  [[nodiscard]] const RunnerOptions& options() const { return options_; }

  /// Labels one graph, sweeping its field across the pool lanes.
  [[nodiscard]] QueryResult solve(const graph::Graph& g) const;

  /// Labels every graph of the batch; queries are distributed over the
  /// pool lanes and each is solved with a sequential sweep.  Results are
  /// in input order.  Exceptions from any query propagate to the caller.
  [[nodiscard]] std::vector<QueryResult> solve_batch(
      const std::vector<graph::Graph>& graphs) const;

 private:
  RunnerOptions options_;
  std::shared_ptr<gca::ThreadPool> pool_;
};

}  // namespace gcalib::core
