// Runner — batch front-end for independent connected-components queries.
//
// The ROADMAP's service shape is "many small queries under heavy traffic",
// not one giant field: a stream of graphs (social subgraphs, circuit nets,
// image tiles) each needing a labeling.  Spinning an engine *and* a thread
// team per query would pay the setup cost the pool backend just removed,
// so the Runner owns one shared `gca::ThreadPool` and amortises it two
// ways:
//
//  * `solve(graph)` — one query, swept in parallel across the pool lanes
//    (the right grain for a large field);
//  * `solve_batch(graphs)` — many queries pulled off a shared cursor by
//    the pool lanes, each solved with a sequential sweep (the right grain
//    for many small fields: no per-generation handshake at all, lanes stay
//    busy across query boundaries).
//
// Results always come back in input order, and every query is labelled by
// the same Hirschberg machine the single-shot API uses, so a batch is
// bit-compatible with n independent `gca_components` calls.
//
// Fault isolation (DESIGN.md §10): `solve_batch` confines every failure to
// its own query.  Each query runs under the batch deadline and retry
// policy and reports a `QueryOutcome` — ok, error-with-diagnosis, timed
// out, cancelled, or recovered-after-retry — so one corrupt input, one
// injected fault or one pathological graph no longer aborts its 63
// siblings.  No exception of any kind escapes `solve_batch`: the pool
// lanes catch at the query boundary, which also keeps the shared-cursor
// joins exception-safe (a throw can no longer leave lanes draining a dead
// cursor).
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "common/status.hpp"
#include "core/cc_solver.hpp"
#include "gca/execution.hpp"
#include "graph/csr_graph.hpp"
#include "graph/graph.hpp"

namespace gcalib::gca {
class CancelToken;
class MetricsSink;
class ThreadPool;
}  // namespace gcalib::gca

namespace gcalib::cli {
struct RunnerFlags;  // common/cli.hpp
}  // namespace gcalib::cli

namespace gcalib::core {

struct RunOptions;  // core/hirschberg_gca.hpp

/// Knobs of a Runner instance (validated by the constructor).
struct RunnerOptions {
  unsigned threads = 1;  ///< pool width (1 = everything sequential)
  /// Backend for the per-query sweep in `solve`; `solve_batch` uses the
  /// pool across queries whenever the policy is kPool and threads > 1.
  gca::ExecutionPolicy policy = gca::ExecutionPolicy::kPool;
  /// Sweep strategy for every query: sparse sweeps only each generation's
  /// active region, dense the whole field.  Bit-identical results either way.
  gca::SweepMode sweep = gca::SweepMode::kSparse;
  /// Substrate routing (DESIGN.md §12): which `CcSolver` a query runs on.
  /// kAuto (the default) resolves per query from its node count and
  /// density; dense and sparse_csr pin the paper field / CSR engine.
  /// Labelings are bit-identical either way.
  gca::SubstrateMode substrate = gca::SubstrateMode::kAuto;
  /// Bulk-kernel variant for every query's dense fast path
  /// (gca/kernel_registry.hpp): kAuto picks the best the host supports;
  /// `scalar` pins the golden reference the SIMD tables are checked
  /// against.  Labelings are bit-identical across variants.
  gca::KernelVariant kernels = gca::KernelVariant::kAuto;
  /// Generation-loop discipline for queries routed to the CSR substrate
  /// (DESIGN.md §14): kSync pins the double-buffered reference, kAsync the
  /// concurrent CAS-min path, kAuto (the default) picks async exactly when
  /// the query sweeps in parallel.  The converged labeling is identical
  /// either way.
  gca::SparseMode sparse_mode = gca::SparseMode::kAuto;
  bool instrument = false;  ///< collect per-step statistics per query
  /// Metrics sink shared by every query (non-owning; nullptr = no tracing).
  /// `solve_batch` pushes steps from all pool lanes concurrently, so the
  /// sink must be thread-safe — `gca::Trace` is.
  gca::MetricsSink* sink = nullptr;

  // --- per-query fault isolation (solve_batch / try_solve) --------------

  /// Wall-clock budget per query in milliseconds (0 = unlimited).  The
  /// budget covers the *whole* isolated solve — every attempt and every
  /// backoff sleep draw from the same allowance, so retries can never
  /// stretch a query past its deadline.  An expired query reports
  /// kDeadlineExceeded; its siblings are unaffected.
  std::int64_t deadline_ms = 0;
  /// Re-attempts for a query that failed with detected corruption or an
  /// internal error (deadline and cancellation outcomes are final — their
  /// budget is already spent).  `attempts = retries + 1` total.
  unsigned retries = 0;
  /// Base backoff between attempts in milliseconds, doubled per retry
  /// (0 = immediate re-attempt; transient upsets usually only need the
  /// re-execution itself).  Each sleep is clamped to the remaining
  /// deadline budget: a query whose budget is already spent reports
  /// kDeadlineExceeded immediately instead of sleeping through it.
  std::int64_t retry_backoff_ms = 0;
  /// External kill switch observed by every query of a batch (non-owning).
  gca::CancelToken* cancel = nullptr;
  /// Durable checkpoint directory for *single-query* solves (DESIGN.md
  /// §15): forwarded to RunOptions::checkpoint_dir, so the query writes
  /// GCKP / GSKP artifacts and resumes across a crash.  Deliberately NOT
  /// applied to multi-query batches — the queries would race on one
  /// artifact file; batch callers wanting durability assign per-query
  /// directories through `configure_query` (gcad does exactly this).
  std::string checkpoint_dir;
  /// Verify every result against a freshly built spanning-forest
  /// certificate (RunOptions::certify; both substrates).
  bool certify = false;
  /// Per-attempt configuration hook: called with the query index before
  /// every attempt and may adjust that query's RunOptions (per-query
  /// deadlines, fault-injection hooks for resilience tests, self checks).
  /// Runs on the solving lane — must be thread-safe across queries.
  std::function<void(std::size_t query, RunOptions& run)> configure_query;
};

// QueryResult / QueryOutcome live in core/cc_solver.hpp with the solver
// interface; the Runner re-exports them through this include for its
// callers (gcad, tools, tests).

class Runner {
 public:
  explicit Runner(RunnerOptions options = {});
  ~Runner();

  Runner(const Runner&) = delete;
  Runner& operator=(const Runner&) = delete;

  [[nodiscard]] const RunnerOptions& options() const { return options_; }

  /// Labels one graph — the throwing single-query API, a documented thin
  /// wrapper over `try_solve`: the same deadline/retry policy applies, and
  /// a failing outcome is *rethrown with its Status diagnosis* as the
  /// matching typed exception (gca::DeadlineExceeded for an expired
  /// budget, gca::Cancelled for a tripped token, ContractViolation for
  /// everything else).  The diagnosis text is never silently discarded.
  [[nodiscard]] QueryResult solve(const graph::Graph& g) const;
  /// CSR-native overload: a million-edge graph never has to materialise a
  /// dense adjacency matrix to be labelled.
  [[nodiscard]] QueryResult solve(const graph::CsrGraph& g) const;

  /// Labels one graph with full fault isolation: never throws, applies
  /// the deadline/retry policy, and reports the outcome.
  [[nodiscard]] QueryOutcome try_solve(const graph::Graph& g) const;
  /// CSR-native overload (see `solve(const graph::CsrGraph&)`).
  [[nodiscard]] QueryOutcome try_solve(const graph::CsrGraph& g) const;

  /// Labels every graph of the batch; queries are distributed over the
  /// pool lanes and each is solved with a sequential sweep.  Outcomes are
  /// in input order.  Every failure is confined to its own QueryOutcome —
  /// no exception escapes the batch, and the lane joins are exception-safe
  /// by construction (lanes catch at the query boundary).
  [[nodiscard]] std::vector<QueryOutcome> solve_batch(
      const std::vector<graph::Graph>& graphs) const;

 private:
  [[nodiscard]] QueryOutcome attempt_query(const SolverInput& input,
                                           std::size_t index,
                                           const RunOptions& base) const;
  /// RunOptions for a lone query: the full thread budget, policy and
  /// sparse mode (a single query has the whole pool to itself).
  [[nodiscard]] RunOptions single_query_options() const;
  [[nodiscard]] QueryResult unwrap(QueryOutcome outcome) const;

  RunnerOptions options_;
  std::shared_ptr<gca::ThreadPool> pool_;
};

/// Builds validated RunnerOptions from the shared CLI runner flags —
/// engine flags (threads / policy / sweep / substrate / instrumentation /
/// deadline / retries) plus the runner's --retry-backoff-ms.  Throws
/// ContractViolation on inconsistent combinations, exactly like
/// gca::options_from_flags (use with the tools' exit-2 validation).
/// Sinks, cancel tokens and per-query hooks are not flag-expressible and
/// stay default.
[[nodiscard]] RunnerOptions runner_options_from_flags(
    const cli::RunnerFlags& flags);

}  // namespace gcalib::core
