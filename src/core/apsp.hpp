// All-pairs shortest paths on the GCA.
//
// The transitive-closure machine (transitive_closure.hpp) is Boolean
// matrix powering; swapping the (OR, AND) semiring for (min, +) turns the
// same 2-handed GCA skeleton into APSP by repeated min-plus squaring —
// ceil(lg n) squarings of n sub-generations each, because shortest paths
// have at most n-1 edges.  This is the classic parallel-APSP schedule and
// demonstrates that the paper's cell/field machinery carries a whole
// family of "graph algorithms" (introduction), not just connectivity.
#pragma once

#include <cstdint>
#include <limits>
#include <vector>

#include "graph/graph.hpp"

namespace gcalib::core {

/// Edge weight / distance type.
using Dist = std::int64_t;

/// "Unreachable" sentinel; min-plus additions saturate at it.
inline constexpr Dist kUnreachable = std::numeric_limits<Dist>::max() / 4;

/// Dense distance matrix (directed; diagonal 0 by construction).
class DistMatrix {
 public:
  DistMatrix() = default;
  explicit DistMatrix(std::size_t n)
      : n_(n), dist_(n * n, kUnreachable) {
    for (std::size_t i = 0; i < n; ++i) dist_[i * n + i] = 0;
  }

  [[nodiscard]] std::size_t size() const { return n_; }
  [[nodiscard]] Dist at(std::size_t i, std::size_t j) const {
    return dist_[i * n_ + j];
  }
  void set(std::size_t i, std::size_t j, Dist d) { dist_[i * n_ + j] = d; }

  /// From an undirected graph with unit edge weights.
  [[nodiscard]] static DistMatrix from_graph(const graph::Graph& g);

  friend bool operator==(const DistMatrix&, const DistMatrix&) = default;

 private:
  std::size_t n_ = 0;
  std::vector<Dist> dist_;
};

/// Saturating min-plus addition.
[[nodiscard]] constexpr Dist saturating_add(Dist a, Dist b) {
  return (a >= kUnreachable || b >= kUnreachable) ? kUnreachable : a + b;
}

/// Floyd–Warshall (the sequential oracle).  Non-negative weights assumed.
[[nodiscard]] DistMatrix apsp_floyd_warshall(const DistMatrix& w);

/// Result of the GCA run.
struct ApspRunResult {
  DistMatrix distances;
  std::size_t generations = 0;
  std::size_t max_congestion = 0;
};

/// Min-plus repeated squaring on a two-handed GCA with n^2 cells.
[[nodiscard]] ApspRunResult apsp_gca(const DistMatrix& w,
                                     bool instrument = true);

/// Closed-form generation count (identical to the closure machine's:
/// ceil(lg n) * (n + 1)).
[[nodiscard]] std::size_t apsp_total_generations(std::size_t n);

}  // namespace gcalib::core
