#include "core/sparse_cc_solver.hpp"

#include <algorithm>
#include <cstdint>
#include <exception>
#include <memory>
#include <thread>
#include <utility>
#include <vector>

#include "common/assert.hpp"
#include "core/hirschberg_gca.hpp"
#include "gca/cancel.hpp"
#include "gca/metrics.hpp"
#include "gca/thread_pool.hpp"
#include "graph/union_find.hpp"

namespace gcalib::core {

namespace {

using graph::NodeId;

/// Vertices between stop polls — the same grain as the engine's chunk
/// boundaries: a tripped token or expired deadline aborts within a few
/// thousand cells of work, always *before* the double-buffer commit.
constexpr std::size_t kStopPollStride = 4096;

struct StopState {
  const gca::CancelToken* cancel = nullptr;
  std::int64_t deadline_ns = 0;  ///< absolute steady-clock; 0 = none

  [[nodiscard]] bool armed() const {
    return cancel != nullptr || deadline_ns != 0;
  }
  void poll() const {
    if (cancel != nullptr && cancel->cancel_requested()) {
      throw gca::Cancelled("sparse-csr sweep cancelled");
    }
    if (deadline_ns != 0 && gca::steady_now_ns() > deadline_ns) {
      throw gca::DeadlineExceeded("sparse-csr sweep deadline expired");
    }
  }
};

/// Runs `body(lane, begin, end)` over a deterministic contiguous partition
/// of [0, n) on the configured backend and returns the summed per-lane
/// results (the sweep's active-cell count).  The partition is fixed by
/// (n, lanes) alone and every sweep writes only its own `next` slots, so
/// results are bit-identical across backends and lane counts.
class SweepBackend {
 public:
  SweepBackend(unsigned threads, gca::ExecutionPolicy policy, std::size_t n)
      : lanes_(policy == gca::ExecutionPolicy::kSequential
                   ? 1u
                   : static_cast<unsigned>(std::min<std::size_t>(
                         threads, std::max<std::size_t>(n, 1)))) {
    if (lanes_ > 1 && policy == gca::ExecutionPolicy::kPool) {
      pool_ = gca::ThreadPool::shared(lanes_);
    }
  }

  template <typename Body>
  std::size_t sweep(std::size_t n, const Body& body) const {
    if (lanes_ <= 1 || n == 0) return body(0, 0, n);
    const std::size_t chunk = (n + lanes_ - 1) / lanes_;
    std::vector<std::size_t> active(lanes_, 0);
    std::vector<std::exception_ptr> errors(lanes_);
    auto lane_fn = [&](unsigned lane) {
      const std::size_t begin = std::min(n, std::size_t{lane} * chunk);
      const std::size_t end = std::min(n, begin + chunk);
      try {
        active[lane] = body(lane, begin, end);
      } catch (...) {
        errors[lane] = std::current_exception();
      }
    };
    if (pool_ != nullptr) {
      pool_->run(lanes_, lane_fn);
    } else {
      std::vector<std::thread> workers;
      workers.reserve(lanes_ - 1);
      for (unsigned lane = 1; lane < lanes_; ++lane) {
        workers.emplace_back(lane_fn, lane);
      }
      lane_fn(0);
      for (std::thread& worker : workers) worker.join();
    }
    for (const std::exception_ptr& error : errors) {
      if (error) std::rethrow_exception(error);
    }
    std::size_t total = 0;
    for (const std::size_t a : active) total += a;
    return total;
  }

 private:
  unsigned lanes_;
  std::shared_ptr<gca::ThreadPool> pool_;
};

/// Per-sweep statistics of the CSR substrate.  The logical counters are
/// deterministic (active cells = label changes; reads = arcs for a hook,
/// one per vertex for a jump).  Congestion for a hook sweep is exactly the
/// degree distribution — vertex u is read once per neighbour — so the
/// histogram is precomputed once per query; jump congestion is the label
/// in-degree histogram, recomputed per sweep (O(n), instrumented runs
/// only).
struct SweepStats {
  const graph::CsrGraph* csr = nullptr;
  bool enabled = false;
  bool timed = false;  ///< sink attached: stamp wall clocks

  // Hook-congestion projection, computed on first use.
  bool hook_ready = false;
  std::size_t hook_cells_read = 0;
  std::size_t hook_max_congestion = 0;
  std::map<std::size_t, std::size_t> hook_classes;

  void prepare_hook() {
    if (hook_ready) return;
    hook_ready = true;
    const NodeId n = csr->node_count();
    for (NodeId u = 0; u < n; ++u) {
      const std::size_t deg = csr->degree(u);
      if (deg == 0) continue;
      ++hook_cells_read;
      hook_max_congestion = std::max(hook_max_congestion, deg);
      ++hook_classes[deg];
    }
  }

  [[nodiscard]] gca::GenerationStats hook_stats(
      std::uint64_t generation, unsigned round,
      std::size_t active_cells) {
    prepare_hook();
    gca::GenerationStats stats;
    stats.generation = generation;
    stats.label = "hook#" + std::to_string(round);
    stats.cell_count = csr->node_count();
    stats.cells_swept = csr->node_count();
    stats.active_cells = active_cells;
    stats.total_reads = 2 * csr->edge_count();
    stats.cells_read = hook_cells_read;
    stats.max_congestion = hook_max_congestion;
    stats.congestion_classes = hook_classes;
    return stats;
  }

  [[nodiscard]] gca::GenerationStats jump_stats(
      std::uint64_t generation, unsigned round, unsigned sub,
      std::size_t active_cells, const std::vector<NodeId>& read_labels) {
    gca::GenerationStats stats;
    stats.generation = generation;
    stats.label =
        "jump#" + std::to_string(round) + "." + std::to_string(sub);
    stats.cell_count = csr->node_count();
    stats.cells_swept = csr->node_count();
    stats.active_cells = active_cells;
    stats.total_reads = csr->node_count();
    // Label in-degree histogram: cell d[v] received one read per vertex v.
    std::vector<std::size_t> reads(read_labels.size(), 0);
    for (const NodeId label : read_labels) ++reads[label];
    for (const std::size_t count : reads) {
      if (count == 0) continue;
      ++stats.cells_read;
      stats.max_congestion = std::max(stats.max_congestion, count);
      ++stats.congestion_classes[count];
    }
    return stats;
  }
};

}  // namespace

QueryResult SparseCcSolver::solve(const SolverInput& input,
                                  const RunOptions& options) const {
  QueryResult result;
  const graph::CsrGraph& csr = input.csr();
  const NodeId n = csr.node_count();
  if (n == 0) return result;

  GCALIB_EXPECTS_MSG(options.threads >= 1,
                     "sparse-csr: threads must be >= 1");
  GCALIB_EXPECTS_MSG(
      !(options.threads > 1 &&
        options.policy == gca::ExecutionPolicy::kSequential),
      "sparse-csr: threads > 1 requires a parallel policy (spawn or pool)");

  StopState stop;
  stop.cancel = options.cancel;
  if (options.deadline_ms > 0) {
    stop.deadline_ns = gca::steady_deadline_ns(options.deadline_ms);
  }

  const SweepBackend backend(options.threads, options.policy, n);
  SweepStats stats;
  stats.csr = &csr;
  stats.enabled = options.instrument || options.sink != nullptr;
  stats.timed = options.sink != nullptr;

  std::vector<NodeId> cur(n);
  std::vector<NodeId> next(n);
  for (NodeId v = 0; v < n; ++v) cur[v] = v;

  const auto emit = [&](gca::GenerationStats&& sweep_stats,
                        std::int64_t start_ns) {
    if (stats.timed) {
      sweep_stats.start_ns = static_cast<std::uint64_t>(start_ns);
      sweep_stats.duration_ns =
          static_cast<std::uint64_t>(gca::steady_now_ns() - start_ns);
      options.sink->on_step(sweep_stats);
    }
    if (options.instrument) result.sweeps.push_back(std::move(sweep_stats));
  };

  const std::vector<NodeId>* read = &cur;  // sweeps read cur, write next
  const auto hook_body = [&](unsigned, std::size_t begin,
                             std::size_t end) -> std::size_t {
    std::size_t active = 0;
    const std::vector<NodeId>& d = *read;
    if (!stop.armed()) {  // unarmed: the tight loop carries no poll counter
      for (std::size_t v = begin; v < end; ++v) {
        NodeId best = d[v];
        for (const NodeId u : csr.neighbors(static_cast<NodeId>(v))) {
          best = std::min(best, d[u]);
        }
        next[v] = best;
        active += best != d[v] ? 1u : 0u;
      }
      return active;
    }
    // Armed: the poll budget counts *edges*, not vertices.  A per-vertex
    // counter lets one hub vertex scan millions of arcs between polls —
    // unbounded cancel latency on star-shaped inputs — so the budget is
    // spent inside the neighbour scan and a tripped token aborts within
    // ~kStopPollStride arcs wherever it lands.  Aborting mid-vertex is
    // safe: the exception unwinds before the sweep's buffer swap, so no
    // partial generation is ever published.
    std::size_t budget = kStopPollStride;
    for (std::size_t v = begin; v < end; ++v) {
      NodeId best = d[v];
      for (const NodeId u : csr.neighbors(static_cast<NodeId>(v))) {
        best = std::min(best, d[u]);
        if (--budget == 0) {
          budget = kStopPollStride;
          stop.poll();
        }
      }
      next[v] = best;
      active += best != d[v] ? 1u : 0u;
      if (--budget == 0) {  // isolated vertices still drain the budget
        budget = kStopPollStride;
        stop.poll();
      }
    }
    stop.poll();
    return active;
  };
  const auto jump_body = [&](unsigned, std::size_t begin,
                             std::size_t end) -> std::size_t {
    std::size_t active = 0;
    std::size_t since_poll = 0;
    const std::vector<NodeId>& d = *read;
    for (std::size_t v = begin; v < end; ++v) {
      const NodeId target = d[d[v]];
      next[v] = target;
      active += target != d[v] ? 1u : 0u;
      if (stop.armed() && ++since_poll >= kStopPollStride) {
        since_poll = 0;
        stop.poll();
      }
    }
    if (stop.armed()) stop.poll();
    return active;
  };

  // Convergence guard: hooking + jump-to-fixpoint rounds are O(log n) (the
  // same doubling argument as the paper's generations 3/7/10); blowing far
  // past that bound means a library bug, not a hard input.
  unsigned log2n = 0;
  while ((std::uint64_t{1} << (log2n + 1)) <= n && log2n < 31) ++log2n;
  const unsigned max_rounds = 2 * (log2n + 2) + 8;

  for (unsigned round = 0;; ++round) {
    GCALIB_ASSERT_MSG(round < max_rounds,
                      "sparse-csr: hook/jump rounds failed to converge");
    const std::int64_t hook_start = stats.timed ? gca::steady_now_ns() : 0;
    const std::size_t hooked = backend.sweep(n, hook_body);
    cur.swap(next);
    const std::uint64_t generation = result.generations++;
    if (stats.enabled) emit(stats.hook_stats(generation, round, hooked),
                            hook_start);
    if (hooked == 0) break;  // labels constant across every edge: converged

    for (unsigned sub = 0;; ++sub) {
      GCALIB_ASSERT_MSG(sub < max_rounds + 32,
                        "sparse-csr: pointer jumping failed to converge");
      const std::int64_t jump_start = stats.timed ? gca::steady_now_ns() : 0;
      const std::size_t jumped = backend.sweep(n, jump_body);
      if (jumped == 0) break;  // d is idempotent; nothing left to collapse
      cur.swap(next);
      const std::uint64_t jump_generation = result.generations++;
      if (stats.enabled) {
        // After the swap `next` holds the labels this sweep read *from* —
        // the read targets the congestion histogram is taken over.
        emit(stats.jump_stats(jump_generation, round, sub, jumped, next),
             jump_start);
      }
    }
  }

  result.labels = std::move(cur);
  // At the fixpoint the label values are exactly the component minima and
  // each satisfies d[w] == w, so counting self-labelled vertices counts
  // components in O(n) without sorting.
  for (NodeId v = 0; v < n; ++v) {
    if (result.labels[v] == v) ++result.components;
  }

  if (options.self_check) {
    graph::UnionFind oracle(n);
    for (NodeId u = 0; u < n; ++u) {
      for (const NodeId v : csr.neighbors(u)) {
        if (u < v) oracle.unite(u, v);
      }
    }
    GCALIB_ENSURES(result.labels == oracle.min_labels());
    GCALIB_ENSURES(result.components == oracle.set_count());
  }
  return result;
}

}  // namespace gcalib::core
