#include "core/sparse_cc_solver.hpp"

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <exception>
#include <functional>
#include <memory>
#include <stdexcept>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/assert.hpp"
#include "core/checkpoint.hpp"
#include "core/hirschberg_gca.hpp"
#include "gca/bitplane.hpp"
#include "gca/cancel.hpp"
#include "gca/metrics.hpp"
#include "gca/thread_pool.hpp"
#include "gca/worklist.hpp"
#include "graph/certificate.hpp"
#include "graph/union_find.hpp"

namespace gcalib::core {

namespace {

using graph::NodeId;

/// Work items between stop polls — the same grain as the engine's chunk
/// boundaries: a tripped token or expired deadline aborts within a few
/// thousand cells of work, always *before* a result is published.
constexpr std::size_t kStopPollStride = 4096;

/// Worklist entries a lane claims per cursor bump.  Small enough that a
/// handful of high-degree vertices cannot serialise the sweep behind one
/// lane, large enough that the cursor's cache line is not contended.
constexpr std::size_t kWorklistChunk = 256;

struct StopState {
  const gca::CancelToken* cancel = nullptr;
  std::int64_t deadline_ns = 0;  ///< absolute steady-clock; 0 = none

  [[nodiscard]] bool armed() const {
    return cancel != nullptr || deadline_ns != 0;
  }
  void poll() const {
    if (cancel != nullptr && cancel->cancel_requested()) {
      throw gca::Cancelled("sparse-csr sweep cancelled");
    }
    if (deadline_ns != 0 && gca::steady_now_ns() > deadline_ns) {
      throw gca::DeadlineExceeded("sparse-csr sweep deadline expired");
    }
  }
};

/// Per-lane tallies, one cache line each: lanes bump their own counters in
/// the hot loop without ever invalidating a sibling's line (a shared
/// atomic counter serialises every lane behind one line's ownership).
struct alignas(64) LaneTally {
  std::size_t changes = 0;
  std::size_t reads = 0;
};

/// Tree-style (pairwise, stride-doubling) reduction of the per-lane
/// tallies after the dispatch barrier: log2(lanes) combining rounds, the
/// PRAM reduction shape, instead of a serial left fold.  With the lane
/// counts in play the arithmetic difference is negligible — the point is
/// that no sweep ever funnels its convergence decision through a single
/// shared accumulator.
std::size_t reduce_changes(std::vector<LaneTally>& tallies) {
  const std::size_t lanes = tallies.size();
  for (std::size_t stride = 1; stride < lanes; stride *= 2) {
    for (std::size_t i = 0; i + stride < lanes; i += 2 * stride) {
      tallies[i].changes += tallies[i + stride].changes;
      tallies[i].reads += tallies[i + stride].reads;
    }
  }
  return tallies.empty() ? 0 : tallies[0].changes;
}

/// Runs per-lane bodies over the configured backend (sequential / spawn /
/// persistent pool) with per-lane exception capture; the first captured
/// exception is rethrown on the calling thread after all lanes joined.
/// The pool's epoch handshake (and the spawn join) is the barrier that
/// makes every lane's plain writes visible to the caller.
class SweepBackend {
 public:
  SweepBackend(unsigned threads, gca::ExecutionPolicy policy, std::size_t n)
      : lanes_(policy == gca::ExecutionPolicy::kSequential
                   ? 1u
                   : static_cast<unsigned>(std::min<std::size_t>(
                         threads, std::max<std::size_t>(n, 1)))) {
    if (lanes_ > 1 && policy == gca::ExecutionPolicy::kPool) {
      pool_ = gca::ThreadPool::shared(lanes_);
    }
  }

  [[nodiscard]] unsigned lanes() const { return lanes_; }

  /// Runs `fn(lane)` once per lane concurrently.
  template <typename Fn>
  void run(const Fn& fn) const {
    if (lanes_ <= 1) {
      fn(0u);
      return;
    }
    std::vector<std::exception_ptr> errors(lanes_);
    auto lane_fn = [&](unsigned lane) {
      try {
        fn(lane);
      } catch (...) {
        errors[lane] = std::current_exception();
      }
    };
    if (pool_ != nullptr) {
      pool_->run(lanes_, lane_fn);
    } else {
      std::vector<std::thread> workers;
      workers.reserve(lanes_ - 1);
      for (unsigned lane = 1; lane < lanes_; ++lane) {
        workers.emplace_back(lane_fn, lane);
      }
      lane_fn(0);
      for (std::thread& worker : workers) worker.join();
    }
    for (const std::exception_ptr& error : errors) {
      if (error) std::rethrow_exception(error);
    }
  }

  /// Runs `body(lane, begin, end)` over a deterministic contiguous
  /// count-equal partition of [0, n) and returns the summed per-lane
  /// results.  The partition is fixed by (n, lanes) alone and every sweep
  /// writes only its own `next` slots, so results are bit-identical across
  /// backends and lane counts.
  template <typename Body>
  std::size_t sweep(std::size_t n, const Body& body) const {
    if (lanes_ <= 1 || n == 0) return body(0, 0, n);
    const std::size_t chunk = (n + lanes_ - 1) / lanes_;
    std::vector<std::size_t> active(lanes_, 0);
    run([&](unsigned lane) {
      const std::size_t begin = std::min(n, std::size_t{lane} * chunk);
      const std::size_t end = std::min(n, begin + chunk);
      active[lane] = body(lane, begin, end);
    });
    std::size_t total = 0;
    for (const std::size_t a : active) total += a;
    return total;
  }

  /// Like `sweep`, but over explicit vertex boundaries (lane k handles
  /// [bounds[k], bounds[k+1])) — the arc-balanced partition that keeps
  /// lanes loaded on skewed degree distributions.  A synchronous sweep is
  /// a pure function of the previous buffer, so *which* valid partition is
  /// used cannot change a single output bit.
  template <typename Body>
  std::size_t sweep_bounds(const std::vector<NodeId>& bounds,
                           const Body& body) const {
    GCALIB_ASSERT(bounds.size() == std::size_t{lanes_} + 1);
    if (lanes_ <= 1) return body(0, bounds.front(), bounds.back());
    std::vector<std::size_t> active(lanes_, 0);
    run([&](unsigned lane) {
      active[lane] = body(lane, bounds[lane], bounds[lane + 1]);
    });
    std::size_t total = 0;
    for (const std::size_t a : active) total += a;
    return total;
  }

 private:
  unsigned lanes_;
  std::shared_ptr<gca::ThreadPool> pool_;
};

/// Per-sweep statistics of the CSR substrate.  The logical counters are
/// deterministic (active cells = label changes; reads = arcs for a hook,
/// one per vertex for a jump).  Congestion for a hook sweep is exactly the
/// degree distribution — vertex u is read once per neighbour — so the
/// histogram is precomputed once per query; jump congestion is the label
/// in-degree histogram, recomputed per sweep (O(n), instrumented runs
/// only).
struct SweepStats {
  const graph::CsrGraph* csr = nullptr;
  bool enabled = false;
  bool timed = false;  ///< sink attached: stamp wall clocks

  // Hook-congestion projection, computed on first use.
  bool hook_ready = false;
  std::size_t hook_cells_read = 0;
  std::size_t hook_max_congestion = 0;
  std::map<std::size_t, std::size_t> hook_classes;

  void prepare_hook() {
    if (hook_ready) return;
    hook_ready = true;
    const NodeId n = csr->node_count();
    for (NodeId u = 0; u < n; ++u) {
      const std::size_t deg = csr->degree(u);
      if (deg == 0) continue;
      ++hook_cells_read;
      hook_max_congestion = std::max(hook_max_congestion, deg);
      ++hook_classes[deg];
    }
  }

  [[nodiscard]] gca::GenerationStats hook_stats(
      std::uint64_t generation, unsigned round,
      std::size_t active_cells) {
    prepare_hook();
    gca::GenerationStats stats;
    stats.generation = generation;
    stats.label = "hook#" + std::to_string(round);
    stats.cell_count = csr->node_count();
    stats.cells_swept = csr->node_count();
    stats.active_cells = active_cells;
    stats.total_reads = 2 * csr->edge_count();
    stats.cells_read = hook_cells_read;
    stats.max_congestion = hook_max_congestion;
    stats.congestion_classes = hook_classes;
    return stats;
  }

  [[nodiscard]] gca::GenerationStats jump_stats(
      std::uint64_t generation, unsigned round, unsigned sub,
      std::size_t active_cells, const std::vector<NodeId>& read_labels) {
    gca::GenerationStats stats;
    stats.generation = generation;
    stats.label =
        "jump#" + std::to_string(round) + "." + std::to_string(sub);
    stats.cell_count = csr->node_count();
    stats.cells_swept = csr->node_count();
    stats.active_cells = active_cells;
    stats.total_reads = csr->node_count();
    // Label in-degree histogram: cell d[v] received one read per vertex v.
    std::vector<std::size_t> reads(read_labels.size(), 0);
    for (const NodeId label : read_labels) ++reads[label];
    for (const std::size_t count : reads) {
      if (count == 0) continue;
      ++stats.cells_read;
      stats.max_congestion = std::max(stats.max_congestion, count);
      ++stats.congestion_classes[count];
    }
    return stats;
  }

  /// Async-round counters: cells_swept / active_cells / total_reads only.
  /// Congestion histograms are a synchronous-reference notion — they
  /// project *which cell was read how often in one generation*, and the
  /// in-place concurrent sweep has no generation-consistent read set to
  /// project (DESIGN.md §14).
  [[nodiscard]] gca::GenerationStats async_stats(
      std::uint64_t generation, const char* kind, unsigned round,
      std::size_t cells_swept, std::size_t active_cells,
      std::size_t total_reads) const {
    gca::GenerationStats stats;
    stats.generation = generation;
    stats.label = std::string(kind) + "#" + std::to_string(round);
    stats.cell_count = csr->node_count();
    stats.cells_swept = cells_swept;
    stats.active_cells = active_cells;
    stats.total_reads = total_reads;
    return stats;
  }
};

/// Convergence guard: hooking + jump-to-fixpoint rounds are O(log n) (the
/// same doubling argument as the paper's generations 3/7/10); blowing far
/// past that bound means a library bug, not a hard input.
unsigned round_guard(NodeId n, unsigned slack) {
  unsigned log2n = 0;
  while ((std::uint64_t{1} << (log2n + 1)) <= n && log2n < 31) ++log2n;
  return 2 * (log2n + 2) + slack;
}

void self_check_labels(const graph::CsrGraph& csr, const QueryResult& result) {
  const NodeId n = csr.node_count();
  graph::UnionFind oracle(n);
  for (NodeId u = 0; u < n; ++u) {
    for (const NodeId v : csr.neighbors(u)) {
      if (u < v) oracle.unite(u, v);
    }
  }
  GCALIB_ENSURES(result.labels == oracle.min_labels());
  GCALIB_ENSURES(result.components == oracle.set_count());
}

// ---------------------------------------------------------------------------
// Resilience context — monitors, anchors, durable GSKP checkpoints
// (DESIGN.md §15).  Everything here is on the cold path: a solve without
// sparse hooks / monitors / certify / checkpoint_dir / recovery passes a
// null context and runs the PR-9 round loops untouched.
// ---------------------------------------------------------------------------

/// Steps of the bounded root chase a monitored round walks per vertex.
/// Chains shrink geometrically under pointer jumping, so a healthy run is
/// far below this; the bound only caps the monitor's cost on adversarial
/// mid-run chain shapes (an exceeded bound is not a violation).
constexpr unsigned kChaseBound = 16;

/// Internal detection signal of the resilient round loops: a monitor or
/// certificate found the label lattice corrupted.  Caught by the recovery
/// ladder (rollback → degraded sync re-run → restart) and converted to
/// ContractViolation only when the ladder is exhausted or disabled.
struct SparseDetection : std::runtime_error {
  using std::runtime_error::runtime_error;
};

/// Per-attempt resilience state threaded through the round loops.  The
/// loops call `begin_round` / `end_round` between sweeps — every lane is
/// quiesced there, so the hooks and monitors read and write labels without
/// synchronisation.
class ResilienceState {
 public:
  const RunOptions* options = nullptr;
  NodeId n = 0;
  /// Rounds between anchors / durable saves (recovery.checkpoint_interval;
  /// 1 when recovery is disabled but checkpoint_dir is set).
  unsigned interval = 1;
  std::string gskp_path;         ///< empty = no durable checkpoints
  std::uint64_t graph_hash = 0;  ///< binds GSKP artifacts to the graph
  std::vector<NodeId> seed;    ///< start labels of the attempt; empty = identity
  std::vector<NodeId> anchor;  ///< last good labels (rollback target)
  std::vector<NodeId> prev;    ///< end of previous round (monitor baseline)

  template <typename Get>
  void start_attempt(const Get& get) {
    prev.resize(n);
    for (NodeId v = 0; v < n; ++v) prev[v] = get(v);
    if (anchor.empty()) anchor = prev;  // the start state is a valid anchor
  }

  template <typename Get, typename Set>
  void begin_round(unsigned round, bool async, const Get& get, const Set& set,
                   const std::function<void()>& drop) {
    if (options->sparse_before_round) {
      options->sparse_before_round(make_ctx(round, async, get, set, drop));
    }
    // Monitors run immediately after the injection point and *before* the
    // sweep: a label corrupted out of [0, n) would otherwise be used as an
    // array index inside the round body.
    if (options->sparse_monitors) monitors_or_throw(round, get);
  }

  template <typename Get, typename Set>
  void end_round(unsigned round, bool async, const Get& get, const Set& set,
                 const std::function<void()>& drop) {
    if (options->sparse_after_round) {
      options->sparse_after_round(make_ctx(round, async, get, set, drop));
    }
    if (options->sparse_monitors) monitors_or_throw(round, get);
    for (NodeId v = 0; v < n; ++v) prev[v] = get(v);
    if ((round + 1) % interval == 0) {
      // Anchor only after the monitors passed: rollback targets are states
      // the checks believed in.  (A corruption the monitors cannot see can
      // still poison an anchor — that is exactly what the ladder's restart
      // rung exists for.)
      anchor = prev;
      if (!gskp_path.empty()) save_gskp(round + 1);
    }
  }

  /// Writes the GSKP artifact for a run about to execute `next_round`.
  void save_gskp(unsigned next_round) const {
    SparseCheckpointData data;
    data.n = n;
    data.round = next_round;
    data.graph_hash = graph_hash;
    data.labels.assign(prev.begin(), prev.end());
    const Status status = save_sparse_checkpoint_file(gskp_path, data);
    if (!status.ok()) throw ContractViolation(status.message);
  }

 private:
  template <typename Get, typename Set>
  [[nodiscard]] SparseRoundContext make_ctx(
      unsigned round, bool async, const Get& get, const Set& set,
      const std::function<void()>& drop) const {
    SparseRoundContext ctx;
    ctx.round = round;
    ctx.n = n;
    ctx.async = async;
    ctx.get = get;
    ctx.set = set;
    ctx.drop_frontier = drop;
    return ctx;
  }

  /// The per-round lattice monitors: every label in range and at most its
  /// vertex id, monotone non-increasing against the previous round, and
  /// root-reachable via a bounded strictly-decreasing pointer chase.
  template <typename Get>
  void monitors_or_throw(unsigned round, const Get& get) const {
    for (NodeId v = 0; v < n; ++v) {
      const NodeId l = get(v);
      if (l >= n) {
        throw SparseDetection("sparse monitor: label of vertex " +
                              std::to_string(v) + " out of range (" +
                              std::to_string(l) + ") at round " +
                              std::to_string(round));
      }
      if (l > v) {
        throw SparseDetection("sparse monitor: label of vertex " +
                              std::to_string(v) + " exceeds its id (" +
                              std::to_string(l) + ") at round " +
                              std::to_string(round));
      }
      if (l > prev[v]) {
        throw SparseDetection("sparse monitor: label of vertex " +
                              std::to_string(v) + " increased (" +
                              std::to_string(prev[v]) + " -> " +
                              std::to_string(l) + ") at round " +
                              std::to_string(round));
      }
    }
    for (NodeId v = 0; v < n; ++v) {
      NodeId l = get(v);
      for (unsigned step = 0; step < kChaseBound; ++step) {
        const NodeId next_l = get(l);
        if (next_l == l) break;
        if (next_l > l) {
          throw SparseDetection("sparse monitor: label chain of vertex " +
                                std::to_string(v) + " rises at " +
                                std::to_string(l) + " on round " +
                                std::to_string(round));
        }
        l = next_l;
      }
    }
  }
};

// ---------------------------------------------------------------------------
// Synchronous mode — the double-buffered golden reference.
// ---------------------------------------------------------------------------

QueryResult solve_sync(const graph::CsrGraph& csr, const RunOptions& options,
                       const StopState& stop, const SweepBackend& backend,
                       ResilienceState* res) {
  QueryResult result;
  const NodeId n = csr.node_count();

  SweepStats stats;
  stats.csr = &csr;
  stats.enabled = options.instrument || options.sink != nullptr;
  stats.timed = options.sink != nullptr;

  std::vector<NodeId> cur(n);
  std::vector<NodeId> next(n);
  for (NodeId v = 0; v < n; ++v) cur[v] = v;
  if (res != nullptr && !res->seed.empty()) cur = res->seed;
  // Between-rounds label view for the resilience hooks; reads/writes go
  // through `cur` by reference, so the buffer swaps stay transparent.
  const auto res_get = [&cur](NodeId v) { return cur[v]; };
  const auto res_set = [&cur](NodeId v, NodeId l) { cur[v] = l; };
  if (res != nullptr) res->start_attempt(res_get);

  const auto emit = [&](gca::GenerationStats&& sweep_stats,
                        std::int64_t start_ns) {
    if (stats.timed) {
      sweep_stats.start_ns = static_cast<std::uint64_t>(start_ns);
      sweep_stats.duration_ns =
          static_cast<std::uint64_t>(gca::steady_now_ns() - start_ns);
      options.sink->on_step(sweep_stats);
    }
    if (options.instrument) result.sweeps.push_back(std::move(sweep_stats));
  };

  const std::vector<NodeId>* read = &cur;  // sweeps read cur, write next
  const auto hook_body = [&](unsigned, std::size_t begin,
                             std::size_t end) -> std::size_t {
    std::size_t active = 0;
    const std::vector<NodeId>& d = *read;
    if (!stop.armed()) {  // unarmed: the tight loop carries no poll counter
      for (std::size_t v = begin; v < end; ++v) {
        NodeId best = d[v];
        for (const NodeId u : csr.neighbors(static_cast<NodeId>(v))) {
          best = std::min(best, d[u]);
        }
        next[v] = best;
        active += best != d[v] ? 1u : 0u;
      }
      return active;
    }
    // Armed: the poll budget counts *edges*, not vertices.  A per-vertex
    // counter lets one hub vertex scan millions of arcs between polls —
    // unbounded cancel latency on star-shaped inputs — so the budget is
    // spent inside the neighbour scan and a tripped token aborts within
    // ~kStopPollStride arcs wherever it lands.  Aborting mid-vertex is
    // safe: the exception unwinds before the sweep's buffer swap, so no
    // partial generation is ever published.
    std::size_t budget = kStopPollStride;
    for (std::size_t v = begin; v < end; ++v) {
      NodeId best = d[v];
      for (const NodeId u : csr.neighbors(static_cast<NodeId>(v))) {
        best = std::min(best, d[u]);
        if (--budget == 0) {
          budget = kStopPollStride;
          stop.poll();
        }
      }
      next[v] = best;
      active += best != d[v] ? 1u : 0u;
      if (--budget == 0) {  // isolated vertices still drain the budget
        budget = kStopPollStride;
        stop.poll();
      }
    }
    stop.poll();
    return active;
  };
  const auto jump_body = [&](unsigned, std::size_t begin,
                             std::size_t end) -> std::size_t {
    std::size_t active = 0;
    std::size_t since_poll = 0;
    const std::vector<NodeId>& d = *read;
    for (std::size_t v = begin; v < end; ++v) {
      const NodeId target = d[d[v]];
      next[v] = target;
      active += target != d[v] ? 1u : 0u;
      if (stop.armed() && ++since_poll >= kStopPollStride) {
        since_poll = 0;
        stop.poll();
      }
    }
    if (stop.armed()) stop.poll();
    return active;
  };

  // The hook sweep's cost per vertex is its degree, so lane boundaries
  // come from the degree prefix (edge-balanced), not from the vertex
  // count: a count-equal split of a star graph puts every arc in one
  // lane.  The jump sweep is O(1) per vertex — count-equal is already
  // balanced there.
  const std::vector<NodeId> hook_bounds =
      csr.edge_balanced_boundaries(backend.lanes());

  const unsigned max_rounds = round_guard(n, 8);
  for (unsigned round = 0;; ++round) {
    GCALIB_ASSERT_MSG(round < max_rounds,
                      "sparse-csr: hook/jump rounds failed to converge");
    if (res != nullptr) res->begin_round(round, false, res_get, res_set, {});
    const std::int64_t hook_start = stats.timed ? gca::steady_now_ns() : 0;
    const std::size_t hooked = backend.sweep_bounds(hook_bounds, hook_body);
    cur.swap(next);
    const std::uint64_t generation = result.generations++;
    if (stats.enabled) emit(stats.hook_stats(generation, round, hooked),
                            hook_start);
    if (hooked == 0) break;  // labels constant across every edge: converged

    for (unsigned sub = 0;; ++sub) {
      GCALIB_ASSERT_MSG(sub < max_rounds + 32,
                        "sparse-csr: pointer jumping failed to converge");
      const std::int64_t jump_start = stats.timed ? gca::steady_now_ns() : 0;
      const std::size_t jumped = backend.sweep(n, jump_body);
      if (jumped == 0) break;  // d is idempotent; nothing left to collapse
      cur.swap(next);
      const std::uint64_t jump_generation = result.generations++;
      if (stats.enabled) {
        // After the swap `next` holds the labels this sweep read *from* —
        // the read targets the congestion histogram is taken over.
        emit(stats.jump_stats(jump_generation, round, sub, jumped, next),
             jump_start);
      }
    }
    if (res != nullptr) res->end_round(round, false, res_get, res_set, {});
  }

  result.labels = std::move(cur);
  // At the fixpoint the label values are exactly the component minima and
  // each satisfies d[w] == w, so counting self-labelled vertices counts
  // components in O(n) without sorting.
  for (NodeId v = 0; v < n; ++v) {
    if (result.labels[v] == v) ++result.components;
  }
  return result;
}

// ---------------------------------------------------------------------------
// Asynchronous mode — in-place concurrent CAS-min label propagation.
// ---------------------------------------------------------------------------

/// Lowers `slot` to at most `value`; returns true iff *this caller* made
/// it smaller.  Relaxed ordering is sufficient: labels form a monotone
/// non-increasing lattice where every stored value is the id of a
/// same-component vertex, so a stale read can only delay a decrease, never
/// un-make one, and the round barrier (pool epoch / thread join) orders
/// rounds against each other (Liu–Tarjan; DESIGN.md §14).
inline bool fetch_min(std::atomic<NodeId>& slot, NodeId value) {
  NodeId cur = slot.load(std::memory_order_relaxed);
  while (value < cur) {
    if (slot.compare_exchange_weak(cur, value, std::memory_order_relaxed,
                                   std::memory_order_relaxed)) {
      return true;
    }
  }
  return false;
}

/// The async generation loop.  Per round:
///
///  * hook pass — CAS-min label propagation over the arcs: a full round
///    partitions the *arc array* (not the vertex array) into count-equal
///    lane ranges aligned to `CsrGraph::kLineVertices` arcs, so a hub
///    vertex's row is split across lanes and star graphs stay balanced
///    (splitting a row is safe precisely because the update is a CAS-min
///    on the owner's label, not a private write);  a frontier round sweeps
///    only the worklist of vertices whose label changed last round, lanes
///    claiming `kWorklistChunk`-entry slices off a shared atomic cursor,
///    and updates *both* endpoints of every arc it scans (so the changed
///    vertex's neighbourhood is covered without materialising N(changed));
///  * shortcut pass — full O(n) pointer jumping with root chase:
///    label[v] <- root(label[v]), compressing label chains in one pass
///    (labels satisfy label[x] <= x, so the chase is a strictly
///    decreasing walk and always terminates).
///
/// Vertices whose label changed (in either pass) are recorded in per-lane
/// leased bitsets (gca::ScratchLease — zero steady-state allocation) and
/// merged into a shared atomic bitset with one fetch_or per non-zero word;
/// the next round's worklist is built from that snapshot when the changed
/// count is at or below `sparse_frontier * n`, and the round falls back to
/// the full arc sweep above it.  Convergence: a round with zero changes in
/// both passes is a global fixpoint — any still-violated arc (u, v) with
/// label[u] < label[v] would require u's label to have changed after the
/// last full sweep of that arc, which puts u in the current worklist, and
/// u's row was just swept without effect.
QueryResult solve_async(const graph::CsrGraph& csr, const RunOptions& options,
                        const StopState& stop, const SweepBackend& backend,
                        ResilienceState* res) {
  QueryResult result;
  const NodeId n = csr.node_count();
  const std::vector<std::size_t>& offsets = csr.offsets();
  const std::vector<NodeId>& arcs = csr.arcs();
  const std::size_t arc_count = arcs.size();
  const unsigned lanes = backend.lanes();

  SweepStats stats;
  stats.csr = &csr;
  stats.enabled = options.instrument || options.sink != nullptr;
  stats.timed = options.sink != nullptr;
  const auto emit = [&](gca::GenerationStats&& sweep_stats,
                        std::int64_t start_ns) {
    if (stats.timed) {
      sweep_stats.start_ns = static_cast<std::uint64_t>(start_ns);
      sweep_stats.duration_ns =
          static_cast<std::uint64_t>(gca::steady_now_ns() - start_ns);
      options.sink->on_step(sweep_stats);
    }
    if (options.instrument) result.sweeps.push_back(std::move(sweep_stats));
  };

  // One atomic label slot per vertex, initialised before the first
  // dispatch (the dispatch barrier publishes the stores to every lane).
  std::unique_ptr<std::atomic<NodeId>[]> label(new std::atomic<NodeId>[n]);
  for (NodeId v = 0; v < n; ++v) {
    label[v].store(res != nullptr && !res->seed.empty() ? res->seed[v] : v,
                   std::memory_order_relaxed);
  }

  // Shared changed bitset (atomic words, fetch_or-merged from the per-lane
  // leased bitsets) and its plain snapshot for worklist extraction.
  const std::size_t word_count = (std::size_t{n} + 63) / 64;
  std::unique_ptr<std::atomic<std::uint64_t>[]> changed_bits(
      new std::atomic<std::uint64_t>[word_count]);

  // Between-rounds label view for the resilience hooks.  Hooks run with
  // every lane quiesced (between backend dispatches), so relaxed loads and
  // stores are plain accesses in effect.  `drop_fn` clears the changed
  // bitset — the stale-frontier fault site: the labels keep their values
  // but the next worklist forgets who moved.
  const auto res_get = [&label](NodeId v) {
    return label[v].load(std::memory_order_relaxed);
  };
  const auto res_set = [&label](NodeId v, NodeId l) {
    label[v].store(l, std::memory_order_relaxed);
  };
  std::function<void()> drop_fn;
  if (res != nullptr) {
    drop_fn = [&changed_bits, word_count] {
      for (std::size_t w = 0; w < word_count; ++w) {
        changed_bits[w].store(0, std::memory_order_relaxed);
      }
    };
    res->start_attempt(res_get);
  }

  // Arc-range lane boundaries for full hook rounds: count-equal over the
  // arc array, rounded down to a kLineVertices-arc grain.
  std::vector<std::size_t> arc_bounds(std::size_t{lanes} + 1, arc_count);
  arc_bounds[0] = 0;
  for (unsigned k = 1; k < lanes; ++k) {
    std::size_t b = arc_count * k / lanes;
    b -= b % graph::CsrGraph::kLineVertices;
    arc_bounds[k] = std::max(arc_bounds[k - 1], std::min(b, arc_count));
  }

  const double fraction =
      std::clamp(options.sparse_frontier, 0.0, 1.0);
  const auto frontier_limit =
      static_cast<std::size_t>(fraction * static_cast<double>(n));

  std::vector<LaneTally> hook_tally(lanes);
  std::vector<LaneTally> jump_tally(lanes);
  gca::Worklist worklist;
  bool use_worklist = false;  // round 0 must sweep every arc

  const auto set_bit = [](std::uint64_t* words, NodeId v) {
    words[v >> 6] |= std::uint64_t{1} << (v & 63);
  };
  const auto merge_bits = [&](const std::uint64_t* local) {
    for (std::size_t w = 0; w < word_count; ++w) {
      if (local[w] != 0) {
        changed_bits[w].fetch_or(local[w], std::memory_order_relaxed);
      }
    }
  };

  const unsigned max_rounds = round_guard(n, 16);
  for (unsigned round = 0;; ++round) {
    GCALIB_ASSERT_MSG(round < max_rounds,
                      "sparse-csr: async rounds failed to converge");
    if (res != nullptr) res->begin_round(round, true, res_get, res_set, drop_fn);
    for (std::size_t w = 0; w < word_count; ++w) {
      changed_bits[w].store(0, std::memory_order_relaxed);
    }
    for (LaneTally& t : hook_tally) t = {};
    for (LaneTally& t : jump_tally) t = {};

    // --- hook pass -------------------------------------------------------
    const std::int64_t hook_start = stats.timed ? gca::steady_now_ns() : 0;
    std::atomic<std::size_t> cursor{0};
    if (use_worklist) {
      const std::uint32_t* items = worklist.data();
      const std::size_t item_count = worklist.size();
      backend.run([&](unsigned lane) {
        gca::ScratchLease<std::uint64_t> local(word_count);
        std::fill_n(local.data(), word_count, std::uint64_t{0});
        std::size_t changes = 0;
        std::size_t reads = 0;
        std::size_t budget = kStopPollStride;
        for (std::size_t begin =
                 cursor.fetch_add(kWorklistChunk, std::memory_order_relaxed);
             begin < item_count;
             begin =
                 cursor.fetch_add(kWorklistChunk, std::memory_order_relaxed)) {
          const std::size_t end =
              std::min(item_count, begin + kWorklistChunk);
          for (std::size_t i = begin; i < end; ++i) {
            const NodeId v = items[i];
            NodeId lv = label[v].load(std::memory_order_relaxed);
            const std::size_t row_end = offsets[std::size_t{v} + 1];
            reads += row_end - offsets[v];
            for (std::size_t a = offsets[v]; a < row_end; ++a) {
              const NodeId u = arcs[a];
              const NodeId lu = label[u].load(std::memory_order_relaxed);
              if (lu < lv) {
                if (fetch_min(label[v], lu)) {
                  set_bit(local.data(), v);
                  ++changes;
                }
                // lu is now a former value of label[v]: a valid (possibly
                // stale) upper bound for the reverse-direction updates.
                lv = lu;
              } else if (lv < lu) {
                if (fetch_min(label[u], lv)) {
                  set_bit(local.data(), u);
                  ++changes;
                }
              }
              if (stop.armed() && --budget == 0) {
                budget = kStopPollStride;
                stop.poll();
              }
            }
          }
        }
        merge_bits(local.data());
        hook_tally[lane].changes = changes;
        hook_tally[lane].reads = reads;
        if (stop.armed()) stop.poll();
      });
    } else {
      backend.run([&](unsigned lane) {
        gca::ScratchLease<std::uint64_t> local(word_count);
        std::fill_n(local.data(), word_count, std::uint64_t{0});
        std::size_t changes = 0;
        const std::size_t a0 = arc_bounds[lane];
        const std::size_t a1 = arc_bounds[lane + 1];
        if (a0 < a1) {
          // Owner of the first arc: the last vertex whose offset is <= a0.
          NodeId v = static_cast<NodeId>(
              std::upper_bound(offsets.begin(), offsets.end(), a0) -
              offsets.begin() - 1);
          std::size_t budget = kStopPollStride;
          for (std::size_t a = a0; a < a1; ++a) {
            while (offsets[std::size_t{v} + 1] <= a) ++v;
            // One direction per arc suffices in a full sweep: the reverse
            // arc is in the array too (possibly in another lane's range).
            const NodeId lu = label[arcs[a]].load(std::memory_order_relaxed);
            if (fetch_min(label[v], lu)) {
              set_bit(local.data(), v);
              ++changes;
            }
            if (stop.armed() && --budget == 0) {
              budget = kStopPollStride;
              stop.poll();
            }
          }
        }
        merge_bits(local.data());
        hook_tally[lane].changes = changes;
        hook_tally[lane].reads = a1 - a0;
        if (stop.armed()) stop.poll();
      });
    }
    const std::size_t swept =
        use_worklist ? worklist.size() : static_cast<std::size_t>(n);
    const std::size_t hooked = reduce_changes(hook_tally);
    if (stats.enabled) {
      emit(stats.async_stats(result.generations,
                             use_worklist ? "cas-hook-frontier" : "cas-hook",
                             round, swept, hooked, hook_tally[0].reads),
           hook_start);
    }
    ++result.generations;

    // --- shortcut pass (full, O(n) with root chase) ----------------------
    const std::int64_t jump_start = stats.timed ? gca::steady_now_ns() : 0;
    backend.run([&](unsigned lane) {
      gca::ScratchLease<std::uint64_t> local(word_count);
      std::fill_n(local.data(), word_count, std::uint64_t{0});
      std::size_t changes = 0;
      const std::size_t chunk = (std::size_t{n} + lanes - 1) / lanes;
      const std::size_t begin = std::min<std::size_t>(n, chunk * lane);
      const std::size_t end = std::min<std::size_t>(n, begin + chunk);
      std::size_t since_poll = 0;
      for (std::size_t v = begin; v < end; ++v) {
        NodeId l = label[v].load(std::memory_order_relaxed);
        NodeId r = label[l].load(std::memory_order_relaxed);
        while (r < l) {  // labels satisfy label[x] <= x: strictly decreasing
          l = r;
          r = label[l].load(std::memory_order_relaxed);
        }
        if (fetch_min(label[v], l)) {
          set_bit(local.data(), static_cast<NodeId>(v));
          ++changes;
        }
        if (stop.armed() && ++since_poll >= kStopPollStride) {
          since_poll = 0;
          stop.poll();
        }
      }
      merge_bits(local.data());
      jump_tally[lane].changes = changes;
      if (stop.armed()) stop.poll();
    });
    const std::size_t jumped = reduce_changes(jump_tally);
    if (stats.enabled) {
      emit(stats.async_stats(result.generations, "shortcut", round, n, jumped,
                             n),
           jump_start);
    }
    ++result.generations;

    // End-of-round hooks run *before* the frontier decision, so a dropped
    // changed bitset (the stale-frontier fault site) poisons exactly the
    // worklist the next round would have trusted.
    if (res != nullptr) res->end_round(round, true, res_get, res_set, drop_fn);

    const std::size_t changed = hooked + jumped;
    if (changed == 0) break;

    // --- frontier decision for the next round ----------------------------
    use_worklist = frontier_limit > 0 && changed <= frontier_limit;
    if (use_worklist) {
      gca::ScratchLease<std::uint64_t> snapshot(word_count);
      for (std::size_t w = 0; w < word_count; ++w) {
        snapshot.data()[w] = changed_bits[w].load(std::memory_order_relaxed);
      }
      worklist.assign_from_bits(snapshot.data(), word_count);
    }
  }

  result.labels.resize(n);
  for (NodeId v = 0; v < n; ++v) {
    result.labels[v] = label[v].load(std::memory_order_relaxed);
  }
  for (NodeId v = 0; v < n; ++v) {
    if (result.labels[v] == v) ++result.components;
  }
  return result;
}

// ---------------------------------------------------------------------------
// Resilient driver — durable GSKP resume plus the recovery ladder:
// detect -> rollback to the last anchor (re-run in deterministic sync mode)
// -> fresh restart -> fail with the accumulated diagnosis (DESIGN.md §15).
// ---------------------------------------------------------------------------

/// Builds and verifies the spanning-forest certificate for `result`; any
/// failure is a detection (the ladder's problem, not the caller's).
void certify_or_throw(const graph::CsrGraph& csr, const QueryResult& result) {
  graph::ForestCertificate certificate;
  Status status = build_certificate(csr, result.labels, certificate);
  if (status.ok()) {
    status =
        verify_certificate(csr, result.labels, result.components, certificate);
  }
  if (!status.ok()) throw SparseDetection(status.message);
}

QueryResult solve_resilient(const graph::CsrGraph& csr,
                            const RunOptions& options, const StopState& stop,
                            const SweepBackend& backend, gca::SparseMode mode) {
  const NodeId n = csr.node_count();

  ResilienceState res;
  res.options = &options;
  res.n = n;
  res.interval = options.recovery.enabled()
                     ? std::max(1u, options.recovery.checkpoint_interval)
                     : 1;

  unsigned rollbacks = 0;
  unsigned restarts = 0;
  std::vector<std::string> diagnoses;
  bool resumed = false;
  unsigned resume_round = 0;

  if (!options.checkpoint_dir.empty()) {
    Status status = ensure_checkpoint_dir(options.checkpoint_dir);
    if (!status.ok()) throw ContractViolation(status.message);
    res.gskp_path = sparse_checkpoint_path_in(options.checkpoint_dir);
    res.graph_hash = csr.content_hash();
    SparseCheckpointData ckpt;
    status = load_sparse_checkpoint_file(res.gskp_path, ckpt);
    if (status.ok()) {
      if (ckpt.n == n && ckpt.graph_hash == res.graph_hash) {
        res.seed.assign(ckpt.labels.begin(), ckpt.labels.end());
        resumed = true;
        resume_round = ckpt.round;
      } else {
        // An intact artifact for a *different* graph: not corruption, just
        // a reused directory.  Diagnose and start fresh.
        diagnoses.push_back(
            "sparse checkpoint ignored: belongs to a different graph (n=" +
            std::to_string(ckpt.n) + ")");
      }
    } else if (status.code == StatusCode::kDataLoss) {
      diagnoses.push_back("sparse checkpoint rejected (" + status.message +
                          "); starting fresh");
    }
    // kNotFound is the normal cold start: silent.
  }

  // Rollback re-runs happen in the double-buffered synchronous mode
  // regardless of the requested mode: deterministic, monitorable between
  // every sweep, the degraded tier the dense ladder's sync re-run mirrors.
  bool degraded = false;
  for (;;) {
    try {
      const bool sync = mode == gca::SparseMode::kSync || degraded;
      QueryResult result = sync
                               ? solve_sync(csr, options, stop, backend, &res)
                               : solve_async(csr, options, stop, backend, &res);
      // The certificate is the end-of-run oracle: monitors are lattice
      // checks and cannot see a silently pinned vertex, but a spanning
      // forest over the final labels can.
      if (options.certify || options.sparse_monitors) {
        certify_or_throw(csr, result);
        result.certified = options.certify;
      }
      result.rollbacks = rollbacks;
      result.restarts = restarts;
      result.diagnoses = std::move(diagnoses);
      result.resumed = resumed;
      result.resume_round = resume_round;
      if (!res.gskp_path.empty()) remove_checkpoint_file(res.gskp_path);
      return result;
    } catch (const gca::Cancelled&) {
      throw;  // an aborted run is not a detection
    } catch (const gca::DeadlineExceeded&) {
      throw;
    } catch (const std::runtime_error& e) {
      // SparseDetection, plus ContractViolation escaping a round body (a
      // corrupted label used as an index trips an assert there) — the same
      // taxonomy the dense ladder applies.
      diagnoses.emplace_back(e.what());
      if (options.recovery.enabled() &&
          rollbacks < options.recovery.max_rollbacks) {
        ++rollbacks;
        res.seed = res.anchor;  // last state the monitors believed in
        degraded = true;
        continue;
      }
      if (options.recovery.enabled() &&
          restarts < options.recovery.max_restarts) {
        ++restarts;
        res.seed.clear();  // identity labels: the run of record, replayed
        res.anchor.clear();
        degraded = false;
        continue;
      }
      std::string joined =
          "sparse-csr: unrecoverable corruption (" +
          std::to_string(rollbacks) + " rollbacks, " +
          std::to_string(restarts) + " restarts)";
      for (const std::string& d : diagnoses) joined += "\n  - " + d;
      throw ContractViolation(joined);
    }
  }
}

}  // namespace

QueryResult SparseCcSolver::solve(const SolverInput& input,
                                  const RunOptions& options) const {
  const graph::CsrGraph& csr = input.csr();
  const NodeId n = csr.node_count();
  if (n == 0) return {};

  GCALIB_EXPECTS_MSG(options.threads >= 1,
                     "sparse-csr: threads must be >= 1");
  GCALIB_EXPECTS_MSG(
      !(options.threads > 1 &&
        options.policy == gca::ExecutionPolicy::kSequential),
      "sparse-csr: threads > 1 requires a parallel policy (spawn or pool)");

  StopState stop;
  stop.cancel = options.cancel;
  if (options.deadline_ms > 0) {
    stop.deadline_ns = gca::steady_deadline_ns(options.deadline_ms);
  }
  const SweepBackend backend(options.threads, options.policy, n);

  // kAuto resolves to the concurrent path exactly when the sweep is
  // parallel: with one lane the CAS-min loop is pure overhead, and the
  // synchronous reference is the stronger default (bit-identical history,
  // full congestion instrumentation).  Both paths converge to the same
  // canonical min-id labeling (DESIGN.md §14), so the choice is invisible
  // in the result.
  gca::SparseMode mode = options.sparse_mode;
  if (mode == gca::SparseMode::kAuto) {
    mode = backend.lanes() > 1 ? gca::SparseMode::kAsync
                               : gca::SparseMode::kSync;
  }

  // The fast path (null resilience context) is the PR-9 round loops,
  // untouched: everything below only engages when a resilience feature was
  // asked for.
  const bool resilient = options.sparse_monitors || options.certify ||
                         static_cast<bool>(options.sparse_before_round) ||
                         static_cast<bool>(options.sparse_after_round) ||
                         !options.checkpoint_dir.empty() ||
                         options.recovery.enabled();
  QueryResult result =
      resilient ? solve_resilient(csr, options, stop, backend, mode)
                : (mode == gca::SparseMode::kSync
                       ? solve_sync(csr, options, stop, backend, nullptr)
                       : solve_async(csr, options, stop, backend, nullptr));
  if (options.self_check) self_check_labels(csr, result);
  return result;
}

}  // namespace gcalib::core
