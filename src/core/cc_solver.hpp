// CcSolver — the substrate-agnostic connected-components interface.
//
// Everything above the engines (the Runner, the gcad dispatch path, the CLI
// tools) programs against this interface instead of constructing a
// `HirschbergGca` concretely, so a query can run on either substrate behind
// one contract (DESIGN.md §12):
//
//  * `DenseFieldSolver` — the paper-faithful (n+1) x n cell field
//    (core/hirschberg_gca.hpp), the golden reference with the full Table-1
//    observability, checkpoint/rollback recovery and durable checkpoints;
//  * `SparseCcSolver` — O(m)-work Hirschberg-style hooking/pointer-jumping
//    over an immutable CSR adjacency (core/sparse_cc_solver.hpp), the
//    substrate that scales to millions of edges.
//
// Both consume the same `RunOptions` (threads / policy / deadline / cancel /
// metrics sink / self_check) and produce the same min-node-id canonical
// labeling, bit-identical to each other and across every execution backend
// and thread count.  Routing between them is `SubstrateMode` plus the
// `auto_substrate` heuristic.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/status.hpp"
#include "gca/execution.hpp"
#include "gca/instrumentation.hpp"
#include "graph/csr_graph.hpp"
#include "graph/graph.hpp"

namespace gcalib::core {

struct RunOptions;  // core/hirschberg_gca.hpp

/// One query's graph, on whichever representation the caller already has.
/// Solvers ask for the view they need (`dense()` / `csr()`); the missing
/// one is materialised lazily and cached for the duration of the query.
/// Not thread-safe — one SolverInput belongs to one query attempt.  The
/// referenced graph must outlive the input (non-owning).
class SolverInput {
 public:
  // NOLINTNEXTLINE(google-explicit-constructor) — a Graph IS a solver input.
  SolverInput(const graph::Graph& dense) : dense_(&dense) {}
  // NOLINTNEXTLINE(google-explicit-constructor)
  SolverInput(const graph::CsrGraph& csr) : csr_(&csr) {}

  [[nodiscard]] graph::NodeId node_count() const {
    return dense_ != nullptr ? dense_->node_count() : csr_->node_count();
  }
  [[nodiscard]] std::size_t edge_count() const {
    return dense_ != nullptr ? dense_->edge_count() : csr_->edge_count();
  }
  [[nodiscard]] double density() const {
    return dense_ != nullptr ? dense_->density() : csr_->density();
  }

  [[nodiscard]] bool has_dense() const { return dense_ != nullptr; }
  [[nodiscard]] bool has_csr() const { return csr_ != nullptr; }

  /// Dense view; materialised from the CSR on first use (O(n^2) memory —
  /// the auto router never sends a large CSR graph here).
  [[nodiscard]] const graph::Graph& dense() const;

  /// CSR view; materialised from the dense graph on first use (O(n + m)).
  [[nodiscard]] const graph::CsrGraph& csr() const;

 private:
  const graph::Graph* dense_ = nullptr;
  const graph::CsrGraph* csr_ = nullptr;
  mutable std::unique_ptr<graph::Graph> dense_cache_;
  mutable std::unique_ptr<graph::CsrGraph> csr_cache_;
};

/// Labeling of one query — the shape every substrate produces.
struct QueryResult {
  std::vector<graph::NodeId> labels;  ///< min-id component label per node
  std::size_t components = 0;         ///< number of distinct labels
  std::size_t generations = 0;        ///< synchronous sweeps the query ran
  /// Per-sweep statistics, filled iff `RunOptions::instrument`.  The dense
  /// substrate reports the paper's Table-1 counters; the sparse substrate
  /// reports active cells and read totals (congestion histograms are a
  /// dense-field concept — see DESIGN.md §12).
  std::vector<gca::GenerationStats> sweeps;

  // --- resilience bookkeeping (both substrates; DESIGN.md §15) ----------
  unsigned rollbacks = 0;  ///< recovery rollbacks performed
  unsigned restarts = 0;   ///< fresh restarts performed
  std::vector<std::string> diagnoses;  ///< one entry per detected corruption
  bool resumed = false;    ///< resumed from a durable checkpoint
  unsigned resume_round = 0;  ///< round/iteration the resume entered at
  /// True when a spanning-forest certificate was built from the final
  /// labels and verified (`RunOptions::certify`).
  bool certified = false;
};

/// Per-query outcome of an isolated solve: the Status taxonomy plus the
/// result (valid iff `status.ok()`).
struct QueryOutcome {
  Status status;       ///< kOk / kDeadlineExceeded / kCancelled / error
  QueryResult result;  ///< meaningful only when `status.ok()`
  unsigned attempts = 1;  ///< attempts consumed (> 1 with retries)
  /// Wall-clock spent on this query across all attempts and backoffs.
  /// Service front-ends (gcad) feed this into their queue-wait estimator.
  std::int64_t elapsed_ns = 0;

  [[nodiscard]] bool ok() const { return status.ok(); }
  /// True when the query failed at least once and a retry produced a
  /// clean labeling.
  [[nodiscard]] bool recovered() const { return status.ok() && attempts > 1; }
};

/// A connected-components engine over one substrate.
///
/// Contract shared by all implementations:
///  * `solve` returns the min-node-id labeling, deterministically —
///    bit-identical across execution policies and thread counts;
///  * honoured RunOptions: instrument, threads, policy, self_check, sink,
///    deadline_ms, cancel.  Substrate-specific hooks (the dense field's
///    before_step / after_step / detect / recovery / checkpoint_dir /
///    record_access) are honoured where they exist and ignored where the
///    substrate has no equivalent — `solve` documents each;
///  * failures surface as exceptions: ContractViolation for detected
///    corruption or invalid input, gca::DeadlineExceeded / gca::Cancelled
///    for an expired budget.  `try_solve` is the never-throwing wrapper.
class CcSolver {
 public:
  virtual ~CcSolver() = default;

  /// Human-readable solver name ("dense-field" / "sparse-csr").
  [[nodiscard]] virtual const char* name() const = 0;

  /// The substrate this solver implements (never kAuto).
  [[nodiscard]] virtual gca::SubstrateMode substrate() const = 0;

  /// Labels one graph.  Throws on failure (see class contract).
  [[nodiscard]] virtual QueryResult solve(const SolverInput& input,
                                          const RunOptions& options) const = 0;

  /// Single-attempt isolated solve: never throws, maps the exception
  /// taxonomy onto Status codes and stamps the wall clock.  Retry/backoff
  /// ladders live above this (core::Runner).
  [[nodiscard]] QueryOutcome try_solve(const SolverInput& input,
                                       const RunOptions& options) const;
};

/// The auto-routing heuristic (DESIGN.md §12): the dense field sweeps
/// n(n+1) cells per generation no matter how sparse the graph is, while
/// the CSR engine sweeps 2m + n words — so dense only wins where the field
/// is small and the matrix actually full.  Dense iff n <= 512 and
/// m >= ceil(n^2 / 8) (density >= ~1/4); everything else routes to CSR.
/// n = 0 is dense (trivially empty either way).  The density test is
/// evaluated in the divided form — never as `8 * m` — so an edge count
/// near SIZE_MAX (dense multigraphs, adversarial inputs) cannot wrap and
/// flip the routing.
[[nodiscard]] gca::SubstrateMode auto_substrate(graph::NodeId n,
                                                std::size_t m);

/// Thread-aware routing: a query that sweeps with `threads` lanes runs the
/// CSR substrate's concurrent CAS-min path, whose solve time divides by
/// roughly the effective parallelism 1 + (threads - 1) / 2 (half-efficient
/// scaling — the conservative end of the measured speedups, DESIGN.md
/// §14).  The dense-wins window shrinks by that factor: dense iff
/// n <= 512 and m >= p * ceil(n^2 / 8).  `threads = 1` is exactly the
/// two-argument heuristic.
[[nodiscard]] gca::SubstrateMode auto_substrate(graph::NodeId n,
                                                std::size_t m,
                                                unsigned threads);

/// Resolves a requested mode against a concrete query: kAuto applies
/// `auto_substrate(n, m)`, anything else is returned unchanged.
[[nodiscard]] gca::SubstrateMode resolve_substrate(gca::SubstrateMode requested,
                                                   graph::NodeId n,
                                                   std::size_t m);

/// Thread-aware resolve: kAuto applies `auto_substrate(n, m, threads)`.
[[nodiscard]] gca::SubstrateMode resolve_substrate(gca::SubstrateMode requested,
                                                   graph::NodeId n,
                                                   std::size_t m,
                                                   unsigned threads);

/// True when the options carry hooks only the dense machine implements —
/// `HirschbergGca`-typed fault callbacks (before_step / after_step /
/// detect / final_check / on_restore), per-step StepRecord callbacks, and
/// access-edge recording.  Auto-routing (`core::Runner`) pins such queries
/// to the dense reference regardless of size, because silently dropping a
/// fault monitor is not an optimisation.  An *explicitly* requested
/// sparse_csr substrate still wins; the hooks are then ignored as
/// documented on `CcSolver`.
///
/// Routing rule since DESIGN.md §15: substrate-agnostic resilience options
/// — `checkpoint_dir`, an enabled `recovery` policy, `certify`,
/// `sparse_monitors`, `self_check` and the sparse round hooks — do NOT pin
/// the dense machine.  Both substrates implement durable checkpoints
/// (GCKP / GSKP), the detect→rollback→restart recovery ladder and result
/// certificates, so a million-vertex query asking for fault tolerance
/// routes by size like any other instead of landing on the O(n²) field.
[[nodiscard]] bool requires_dense_machine(const RunOptions& options);

/// The process-wide solver instances (stateless, thread-safe).
[[nodiscard]] const CcSolver& dense_cc_solver();
[[nodiscard]] const CcSolver& sparse_cc_solver();

/// Solver for a *resolved* substrate; kAuto throws ContractViolation (call
/// `resolve_substrate` first — routing needs the query's n and m).
[[nodiscard]] const CcSolver& cc_solver_for(gca::SubstrateMode substrate);

}  // namespace gcalib::core
