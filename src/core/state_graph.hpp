// Self-describing metadata for the state machine of Figure 2: per
// generation, the pointer operation and data operation in the paper's own
// notation.  The execution engine in hirschberg_gca.cpp implements exactly
// these operations; the Figure-2 bench prints this table.
#pragma once

#include <array>
#include <string>

#include "core/generation.hpp"

namespace gcalib::core {

/// Descriptive record for one generation of the state graph.
struct GenerationInfo {
  Generation id = Generation::kInit;
  const char* name = "";        ///< short mnemonic
  const char* pointer_op = "";  ///< Figure 2, left column
  const char* data_op = "";     ///< Figure 2, right column
  const char* active = "";      ///< which cells participate
  int step = 0;                 ///< PRAM step of Listing 1
  bool subgenerations = false;  ///< iterates log2(n) times
};

/// The full state graph, indexed by generation number.
[[nodiscard]] const std::array<GenerationInfo, kGenerationCount>& state_graph();

/// Lookup of one generation's record.
[[nodiscard]] const GenerationInfo& info(Generation g);

/// Human-readable name ("gen2:mask-neighbors").
[[nodiscard]] std::string generation_label(Generation g, unsigned subgeneration);

}  // namespace gcalib::core
