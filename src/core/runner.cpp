#include "core/runner.hpp"

#include <atomic>

#include "common/assert.hpp"
#include "core/hirschberg_gca.hpp"
#include "gca/thread_pool.hpp"
#include "graph/labeling.hpp"

namespace gcalib::core {

namespace {

QueryResult solve_query(const graph::Graph& g, const RunOptions& run_options) {
  QueryResult result;
  if (g.node_count() == 0) return result;
  HirschbergGca machine(g);
  RunResult run = machine.run(run_options);
  result.components = graph::component_count(run.labels);
  result.labels = std::move(run.labels);
  result.generations = run.generations;
  return result;
}

}  // namespace

Runner::Runner(RunnerOptions options) : options_(options) {
  GCALIB_EXPECTS_MSG(options_.threads >= 1, "runner: threads must be >= 1");
  if (options_.threads > 1 && options_.policy == gca::ExecutionPolicy::kPool) {
    pool_ = gca::ThreadPool::shared(options_.threads);
  }
}

Runner::~Runner() = default;

QueryResult Runner::solve(const graph::Graph& g) const {
  RunOptions run_options;
  run_options.instrument = options_.instrument;
  run_options.threads = options_.threads;
  run_options.policy = options_.policy;
  run_options.sweep = options_.sweep;
  run_options.sink = options_.sink;
  return solve_query(g, run_options);
}

std::vector<QueryResult> Runner::solve_batch(
    const std::vector<graph::Graph>& graphs) const {
  std::vector<QueryResult> results(graphs.size());
  RunOptions run_options;
  run_options.instrument = options_.instrument;
  run_options.sweep = options_.sweep;
  run_options.sink = options_.sink;  // thread-safe sink; lanes push concurrently
  // Lanes parallelise across queries, so each query sweeps sequentially.
  run_options.threads = 1;
  run_options.policy = gca::ExecutionPolicy::kSequential;

  const unsigned lanes = static_cast<unsigned>(
      std::min<std::size_t>(options_.threads, graphs.size()));
  if (pool_ == nullptr || lanes <= 1) {
    for (std::size_t i = 0; i < graphs.size(); ++i) {
      results[i] = solve_query(graphs[i], run_options);
    }
    return results;
  }

  std::atomic<std::size_t> cursor{0};
  auto lane = [&](unsigned) {
    for (std::size_t i = cursor.fetch_add(1, std::memory_order_relaxed);
         i < graphs.size();
         i = cursor.fetch_add(1, std::memory_order_relaxed)) {
      results[i] = solve_query(graphs[i], run_options);
    }
  };
  pool_->run(lanes, lane);
  return results;
}

}  // namespace gcalib::core
