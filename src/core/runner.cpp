#include "core/runner.hpp"

#include <atomic>
#include <chrono>
#include <thread>
#include <utility>

#include "common/assert.hpp"
#include "common/cli.hpp"
#include "core/hirschberg_gca.hpp"
#include "gca/cancel.hpp"
#include "gca/thread_pool.hpp"

namespace gcalib::core {

namespace {

/// One routed solve: resolves the substrate against the query's size and
/// hands the input to that solver (core/cc_solver.hpp).  A query carrying
/// dense-only hooks (HirschbergGca-typed fault callbacks, per-step
/// callbacks, access recording — typically planted by `configure_query`)
/// pins auto-routing to the dense machine: dropping a monitor silently is
/// not routing.  Substrate-agnostic resilience options (checkpoint_dir,
/// recovery, certify, the sparse round hooks) route by size like any other
/// query — both substrates implement them (DESIGN.md §15).
QueryResult solve_query(const SolverInput& input,
                        gca::SubstrateMode substrate,
                        const RunOptions& run_options) {
  if (input.node_count() == 0) return {};
  gca::SubstrateMode requested = substrate;
  if (requested == gca::SubstrateMode::kAuto &&
      requires_dense_machine(run_options)) {
    requested = gca::SubstrateMode::kDense;
  }
  // Thread-aware routing: with a parallel sweep the CSR substrate gets the
  // concurrent CAS-min path, so its effective cost shrinks with the lane
  // count and the dense window narrows accordingly.
  const gca::SubstrateMode resolved =
      resolve_substrate(requested, input.node_count(), input.edge_count(),
                        run_options.threads);
  return cc_solver_for(resolved).solve(input, run_options);
}

}  // namespace

Runner::Runner(RunnerOptions options) : options_(std::move(options)) {
  GCALIB_EXPECTS_MSG(options_.threads >= 1, "runner: threads must be >= 1");
  GCALIB_EXPECTS_MSG(options_.deadline_ms >= 0,
                     "runner: deadline_ms must be >= 0 (0 = unlimited)");
  GCALIB_EXPECTS_MSG(options_.retry_backoff_ms >= 0,
                     "runner: retry_backoff_ms must be >= 0");
  if (options_.threads > 1 && options_.policy == gca::ExecutionPolicy::kPool) {
    pool_ = gca::ThreadPool::shared(options_.threads);
  }
}

Runner::~Runner() = default;

QueryResult Runner::unwrap(QueryOutcome outcome) const {
  if (outcome.ok()) return std::move(outcome.result);
  // The bugfix contract of `solve`: a failing isolated solve rethrows as
  // the matching typed exception carrying the Status diagnosis, so callers
  // that skip the outcome API still see *why* the query failed.
  switch (outcome.status.code) {
    case StatusCode::kDeadlineExceeded:
      throw gca::DeadlineExceeded(outcome.status.message);
    case StatusCode::kCancelled:
      throw gca::Cancelled(outcome.status.message);
    default:
      throw ContractViolation(outcome.status.message);
  }
}

QueryResult Runner::solve(const graph::Graph& g) const {
  return unwrap(try_solve(g));
}

QueryResult Runner::solve(const graph::CsrGraph& g) const {
  return unwrap(try_solve(g));
}

QueryOutcome Runner::attempt_query(const SolverInput& input, std::size_t index,
                                   const RunOptions& base) const {
  QueryOutcome outcome;
  const unsigned max_attempts = options_.retries + 1;
  const auto start = std::chrono::steady_clock::now();
  const auto elapsed_ms = [&] {
    return std::chrono::duration_cast<std::chrono::milliseconds>(
               std::chrono::steady_clock::now() - start)
        .count();
  };
  const auto stamp = [&](QueryOutcome& o) -> QueryOutcome& {
    o.elapsed_ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                       std::chrono::steady_clock::now() - start)
                       .count();
    return o;
  };
  for (unsigned attempt = 0; attempt < max_attempts; ++attempt) {
    outcome.attempts = attempt + 1;
    if (options_.cancel != nullptr && options_.cancel->cancel_requested()) {
      outcome.status = Status::error(StatusCode::kCancelled,
                                     "query cancelled before execution");
      return stamp(outcome);
    }
    RunOptions run_options = base;
    if (options_.configure_query) options_.configure_query(index, run_options);
    // The deadline is a budget for the whole isolated solve: later attempts
    // only get what earlier attempts and backoffs left over, and an attempt
    // with no budget left fails immediately instead of running to certain
    // expiry.
    const std::int64_t query_deadline_ms = run_options.deadline_ms;
    if (query_deadline_ms > 0) {
      const std::int64_t remaining = query_deadline_ms - elapsed_ms();
      if (remaining <= 0) {
        outcome.status = Status::error(
            StatusCode::kDeadlineExceeded,
            "deadline budget exhausted before attempt " +
                std::to_string(attempt + 1));
        return stamp(outcome);
      }
      run_options.deadline_ms = remaining;
    }
    try {
      outcome.result = solve_query(input, options_.substrate, run_options);
      outcome.status = Status{};
      return stamp(outcome);
    } catch (const gca::DeadlineExceeded& e) {
      // The budget is spent; a retry would just time out again later.
      outcome.status = Status::error(StatusCode::kDeadlineExceeded, e.what());
      return stamp(outcome);
    } catch (const gca::Cancelled& e) {
      outcome.status = Status::error(StatusCode::kCancelled, e.what());
      return stamp(outcome);
    } catch (const ContractViolation& e) {
      // Detected corruption (bad input, injected fault, failed self check):
      // retryable — a fresh machine re-derives everything from the graph.
      outcome.status = Status::error(StatusCode::kFailedPrecondition, e.what());
    } catch (const std::exception& e) {
      outcome.status = Status::error(StatusCode::kInternal, e.what());
    } catch (...) {
      outcome.status = Status::error(StatusCode::kInternal,
                                     "query failed with a non-standard exception");
    }
    if (attempt + 1 < max_attempts && options_.retry_backoff_ms > 0) {
      // Exponential backoff: base, 2x base, 4x base, ... — clamped to the
      // remaining deadline budget so a sleep can never outlive the query,
      // and skipped entirely (reporting expiry) when no budget remains.
      std::int64_t wait = options_.retry_backoff_ms << attempt;
      if (query_deadline_ms > 0) {
        const std::int64_t remaining = query_deadline_ms - elapsed_ms();
        if (remaining <= 0) {
          outcome.status = Status::error(
              StatusCode::kDeadlineExceeded,
              "deadline budget exhausted during retry backoff (last error: " +
                  outcome.status.message + ")");
          return stamp(outcome);
        }
        wait = std::min(wait, remaining);
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(wait));
    }
  }
  return stamp(outcome);  // last attempt's error status, attempts == max_attempts
}

QueryOutcome Runner::try_solve(const graph::Graph& g) const {
  return attempt_query(SolverInput(g), 0, single_query_options());
}

QueryOutcome Runner::try_solve(const graph::CsrGraph& g) const {
  return attempt_query(SolverInput(g), 0, single_query_options());
}

RunOptions Runner::single_query_options() const {
  RunOptions run_options;
  run_options.instrument = options_.instrument;
  run_options.threads = options_.threads;
  run_options.policy = options_.policy;
  run_options.sweep = options_.sweep;
  run_options.kernels = options_.kernels;
  run_options.sparse_mode = options_.sparse_mode;
  run_options.sink = options_.sink;
  run_options.deadline_ms = options_.deadline_ms;
  run_options.cancel = options_.cancel;
  run_options.checkpoint_dir = options_.checkpoint_dir;
  run_options.certify = options_.certify;
  return run_options;
}

std::vector<QueryOutcome> Runner::solve_batch(
    const std::vector<graph::Graph>& graphs) const {
  std::vector<QueryOutcome> outcomes(graphs.size());
  if (graphs.size() == 1) {
    // A one-query batch has no sibling queries to parallelise across —
    // sequentialising it would leave every lane but one idle.  Give the
    // lone query the full thread budget (and with it the async sparse
    // path), exactly like the single-shot API.
    outcomes[0] = attempt_query(SolverInput(graphs[0]), 0,
                                single_query_options());
    return outcomes;
  }
  RunOptions run_options;
  run_options.instrument = options_.instrument;
  run_options.sweep = options_.sweep;
  run_options.kernels = options_.kernels;
  run_options.sparse_mode = options_.sparse_mode;
  run_options.sink = options_.sink;  // thread-safe sink; lanes push concurrently
  run_options.deadline_ms = options_.deadline_ms;
  run_options.cancel = options_.cancel;
  // Lanes parallelise across queries, so each query sweeps sequentially.
  run_options.threads = 1;
  run_options.policy = gca::ExecutionPolicy::kSequential;

  const unsigned lanes = static_cast<unsigned>(
      std::min<std::size_t>(options_.threads, graphs.size()));
  if (pool_ == nullptr || lanes <= 1) {
    for (std::size_t i = 0; i < graphs.size(); ++i) {
      outcomes[i] = attempt_query(SolverInput(graphs[i]), i, run_options);
    }
    return outcomes;
  }

  // attempt_query is noexcept in effect (it catches at the query boundary),
  // so no exception can reach the pool joins: a failing query can no longer
  // strand sibling lanes draining a dead cursor.
  std::atomic<std::size_t> cursor{0};
  auto lane = [&](unsigned) {
    for (std::size_t i = cursor.fetch_add(1, std::memory_order_relaxed);
         i < graphs.size();
         i = cursor.fetch_add(1, std::memory_order_relaxed)) {
      outcomes[i] = attempt_query(SolverInput(graphs[i]), i, run_options);
    }
  };
  pool_->run(lanes, lane);
  return outcomes;
}

RunnerOptions runner_options_from_flags(const cli::RunnerFlags& flags) {
  // Route through the engine-options validator so a tool rejects exactly
  // the combinations the engine would (one shared exit-2 surface).
  const gca::EngineOptions engine = gca::options_from_flags(flags.engine);
  GCALIB_EXPECTS_MSG(flags.retry_backoff_ms >= 0,
                     "runner options: retry_backoff_ms must be >= 0");
  RunnerOptions options;
  options.threads = engine.threads;
  options.policy = engine.policy;
  options.sweep = engine.sweep;
  options.substrate = engine.substrate;
  options.kernels = engine.kernels;
  options.sparse_mode = engine.sparse_mode;
  options.instrument = engine.instrumentation;
  options.deadline_ms = flags.engine.deadline_ms;
  options.retries = flags.engine.retries;
  options.retry_backoff_ms = flags.retry_backoff_ms;
  options.checkpoint_dir = flags.engine.checkpoint_dir;
  return options;
}

}  // namespace gcalib::core
