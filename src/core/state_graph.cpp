#include "core/state_graph.hpp"

#include "common/assert.hpp"

namespace gcalib::core {

const std::array<GenerationInfo, kGenerationCount>& state_graph() {
  static const std::array<GenerationInfo, kGenerationCount> kGraph = {{
      {Generation::kInit, "init",
       "p = index (no global read)",
       "d <- row(index)",
       "all n(n+1) cells", 1, false},
      {Generation::kCopyCToRows, "copy-C-to-rows",
       "p = col(index) * n",
       "d <- d*",
       "all n(n+1) cells", 2, false},
      {Generation::kMaskNeighbors, "mask-neighbors",
       "p = n^2 + row(index)",
       "if (d != d* && A == 1) then d <- d else d <- inf",
       "square cells", 2, false},
      {Generation::kRowMin, "row-min",
       "p = index + (1 << subGeneration)",
       "d <- min(d, d*)   [tree reduction]",
       "cells with col % 2^(s+1) == 0 and col + 2^s < n", 2, true},
      {Generation::kFallback, "fallback-C",
       "if (col(index) == 0 && row(index) != n) p = n^2 + row(index)",
       "if (d == inf) then d <- d* else d <- d",
       "column 0 of the square", 2, false},
      {Generation::kCopyTToRows, "copy-T-to-rows",
       "p = col(index) * n",
       "if (row(index) == n) then d <- d else d <- d*",
       "square cells", 3, false},
      {Generation::kMaskMembers, "mask-members",
       "p = n^2 + col(index)   [paper erratum: printed as n^2 + row(index)]",
       "if (d* == row(index) && d != row(index)) then d <- d else d <- inf",
       "square cells", 3, false},
      {Generation::kRowMin2, "row-min",
       "p = index + (1 << subGeneration)",
       "d <- min(d, d*)   [tree reduction]",
       "cells with col % 2^(s+1) == 0 and col + 2^s < n", 3, true},
      {Generation::kFallback2, "fallback-C",
       "if (col(index) == 0 && row(index) != n) p = n^2 + row(index)",
       "if (d == inf) then d <- d* else d <- d",
       "column 0 of the square", 3, false},
      {Generation::kAdopt, "adopt",
       "square: p = row(index) * n; bottom row: p = col(index) * n",
       "d <- d*   [C <- T, T transposed into D_N]",
       "all n(n+1) cells", 4, false},
      {Generation::kPointerJump, "pointer-jump",
       "p = d * n",
       "d <- d*   [C(j) <- C(C(j))]",
       "column 0 of the square", 5, true},
      {Generation::kFinalMin, "final-min",
       "p = d * n + 1",
       "d <- min(d, d*)   [C(j) <- min(C(j), T(C(j)))]",
       "column 0 of the square", 6, false},
  }};
  return kGraph;
}

const GenerationInfo& info(Generation g) {
  const auto index = static_cast<std::size_t>(g);
  GCALIB_EXPECTS(index < kGenerationCount);
  return state_graph()[index];
}

std::string generation_label(Generation g, unsigned subgeneration) {
  std::string label =
      "gen" + std::to_string(static_cast<unsigned>(g)) + ":" + info(g).name;
  if (has_subgenerations(g)) {
    label += ".sub" + std::to_string(subgeneration);
  }
  return label;
}

}  // namespace gcalib::core
