// Congestion-1 variant of the Hirschberg GCA machine — the executable form
// of section 4's remark that "the static nature of the communication can be
// used to implement the concurrent reads in a tree-like manner".
//
// Every broadcast generation of the baseline machine (generations 1, 2, 5,
// 6 and 9, whose hottest cells are read by up to n+1 neighbours) is
// expanded into a *sequence* of doubling steps in which every read target
// is read by exactly one cell:
//
//   baseline generation        tree expansion                     steps
//   -------------------------  --------------------------------  ----------
//   1  copy C into rows        seed (i,i) <- (i,0), then ring     1 + ceil(lg(n+1))
//                              doubling down each column
//   2  mask vs C(row)          broadcast D_N[j] along row j       1 + ceil(lg n), then local mask
//   5  copy T into rows        like 1, square rows only           1 + ceil(lg n)
//   6  mask vs C(col)          broadcast D_N[i] up column i       ceil(lg(n+1)), then local mask
//   9  adopt                   row doubling from column 0,        ceil(lg n) + 1
//                              then D_N fetch (n,i) <- (i,i)
//
// The masks become *local* operations (no global read at all) against a
// second per-cell register e that the broadcasts fill — one extra data
// register per cell, the hardware price of the scheme.  Generations 3/4/7/8
// already have congestion 1 in the baseline and are kept; generations 10
// and 11 have data-dependent pointers whose congestion cannot be removed by
// static trees (the paper's replication discussion concerns C/T only).
//
// Net effect, measured by the instrumentation: every static step of the
// machine has max congestion exactly <= 1, at the price of a constant-factor
// increase in generations (about 8 lg n + 7 per iteration instead of
// 3 lg n + 8).  bench_congestion_reduction prints both machines side by
// side.
#pragma once

#include <cstdint>
#include <limits>
#include <memory>
#include <vector>

#include "gca/engine.hpp"
#include "gca/field.hpp"
#include "graph/graph.hpp"

namespace gcalib::core {

/// Cell state of the tree variant: the baseline (a, d, p) plus the
/// broadcast scratch register e.
struct TreeCell {
  std::uint32_t a = 0;
  std::uint32_t d = 0;
  std::uint32_t e = 0;  ///< broadcast landing register
  std::uint32_t p = 0;
  friend bool operator==(const TreeCell&, const TreeCell&) = default;
};

/// Result of a tree-variant run.
struct TreeRunResult {
  std::vector<graph::NodeId> labels;
  unsigned iterations = 0;
  std::size_t generations = 0;
  /// Max congestion over the *static* steps (everything except the
  /// data-dependent pointer-jump and final-min generations).  The variant's
  /// contract is that this equals 1 (0 when a step performs no reads).
  std::size_t static_max_congestion = 0;
  /// Max congestion over the data-dependent steps (bounded by n as in the
  /// baseline).
  std::size_t dynamic_max_congestion = 0;
};

/// The congestion-1 machine.
class HirschbergGcaTree {
 public:
  explicit HirschbergGcaTree(const graph::Graph& g);

  HirschbergGcaTree(const HirschbergGcaTree&) = delete;
  HirschbergGcaTree& operator=(const HirschbergGcaTree&) = delete;

  [[nodiscard]] graph::NodeId n() const { return n_; }
  [[nodiscard]] const gca::FieldGeometry& geometry() const { return geometry_; }
  [[nodiscard]] const gca::Engine<TreeCell>& engine() const { return *engine_; }

  /// Runs the whole algorithm.  `instrument` collects per-step statistics
  /// (required for the congestion fields of the result to be meaningful).
  TreeRunResult run(bool instrument = true);

  /// Closed-form generation count of this schedule.
  [[nodiscard]] static std::size_t total_generations(std::size_t n);

 private:
  // Phase implementations; each returns the number of engine steps taken
  // and updates the congestion maxima in `result`.
  void broadcast_c_into_columns(TreeRunResult& result);   // baseline gen 1
  void broadcast_row_c_and_mask(TreeRunResult& result);   // baseline gen 2
  void row_min(TreeRunResult& result);                    // baseline gen 3/7
  void fallback(TreeRunResult& result);                   // baseline gen 4/8
  void broadcast_t_into_columns(TreeRunResult& result);   // baseline gen 5
  void broadcast_col_c_and_mask(TreeRunResult& result);   // baseline gen 6
  void adopt(TreeRunResult& result);                      // baseline gen 9
  void pointer_jump(TreeRunResult& result);               // baseline gen 10
  void final_min(TreeRunResult& result);                  // baseline gen 11

  template <typename Rule>
  void static_step(TreeRunResult& result, Rule&& rule, const char* label);
  template <typename Rule>
  void dynamic_step(TreeRunResult& result, Rule&& rule, const char* label);

  graph::NodeId n_;
  gca::FieldGeometry geometry_;
  std::unique_ptr<gca::Engine<TreeCell>> engine_;
};

/// Infinity sentinel (same convention as the baseline machine).
inline constexpr std::uint32_t kTreeInf = std::numeric_limits<std::uint32_t>::max();

/// One-call convenience.
[[nodiscard]] std::vector<graph::NodeId> gca_tree_components(const graph::Graph& g);

}  // namespace gcalib::core
