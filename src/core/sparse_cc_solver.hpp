// SparseCcSolver — Hirschberg-style hooking + pointer jumping over CSR.
//
// The paper's machine spends n(n+1) cells per generation because the
// adjacency matrix *is* the cell field.  This solver keeps the same
// synchronous-sweep discipline (double-buffered labels, one uniform rule
// per sweep, deterministic chunk partitions on the shared
// ThreadPool/spawn/sequential backends) but lays the graph out as an
// immutable CSR adjacency, so one generation costs O(m + n) words:
//
//  * hook sweep  — next[v] = min(d[v], min_{u in N(v)} d[u]): every vertex
//    adopts the smallest label among itself and its neighbours (the
//    paper's "connect to the smallest neighbouring super node", symmetric
//    form — Burkhardt's label-propagation hooking);
//  * jump sweeps — next[v] = d[d[v]]: pointer doubling, repeated until
//    stable, collapsing label chains the way generations 3/7/10 collapse
//    the paper's pointer trees.
//
// Labels start at d[v] = v, never increase, and always name a vertex of
// the same component, so the run converges on the min-node-id canonical
// labeling in O(log n) hook rounds — identical bit-for-bit to the dense
// field, across all execution policies and thread counts (every sweep is a
// pure function of the previous buffer; the partition cannot matter).
//
// RunOptions honoured: instrument, threads, policy, self_check, sink,
// deadline_ms, cancel (polled every few thousand vertices, like the
// engine's chunk boundaries).  Dense-field-only hooks — record_access,
// before_step/after_step/detect/final_check/recovery, checkpoint_dir,
// on_step — have no CSR equivalent and are ignored (DESIGN.md §12).
#pragma once

#include "core/cc_solver.hpp"

namespace gcalib::core {

class SparseCcSolver final : public CcSolver {
 public:
  [[nodiscard]] const char* name() const override { return "sparse-csr"; }
  [[nodiscard]] gca::SubstrateMode substrate() const override {
    return gca::SubstrateMode::kSparseCsr;
  }

  [[nodiscard]] QueryResult solve(const SolverInput& input,
                                  const RunOptions& options) const override;
};

}  // namespace gcalib::core
