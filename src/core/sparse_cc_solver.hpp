// SparseCcSolver — Hirschberg-style hooking + pointer jumping over CSR.
//
// The paper's machine spends n(n+1) cells per generation because the
// adjacency matrix *is* the cell field.  This solver lays the graph out as
// an immutable CSR adjacency instead, so one generation costs O(m + n)
// words, and runs one of two generation-loop disciplines
// (RunOptions::sparse_mode; DESIGN.md §14):
//
//  * sync — the double-buffered golden reference.  Hook sweeps
//    (next[v] = min(d[v], min_{u in N(v)} d[u]) — the paper's "connect to
//    the smallest neighbouring super node", symmetric label-propagation
//    form) alternate with pointer-jump sweeps (next[v] = d[d[v]]) until
//    stable.  Every sweep is a pure function of the previous buffer, so
//    the result — and the whole sweep history — is bit-identical across
//    execution policies, thread counts and lane partitions.  Hook lanes
//    are partitioned by degree prefix (CsrGraph::edge_balanced_boundaries)
//    so skewed graphs keep every lane loaded.
//
//  * async — in-place concurrent CAS-min label propagation (Liu–Tarjan).
//    Labels live in one shared atomic array; hook passes partition the
//    *arc array* across lanes (a hub's row splits safely, because the
//    update is a CAS-min, not a private write) and later rounds sweep only
//    the worklist of changed vertices; shortcut passes compress label
//    chains with a root chase.  Labels only decrease and every stored
//    value names a same-component vertex, so the fixpoint is exactly the
//    same canonical min-id labeling sync produces — the *final labeling*
//    is deterministic even though the intermediate states are not.
//
// RunOptions honoured: instrument, threads, policy, sparse_mode,
// sparse_frontier, self_check, sink, deadline_ms, cancel (polled every
// few thousand arcs, like the engine's chunk boundaries) — plus the full
// resilience surface (DESIGN.md §15): sparse_before_round /
// sparse_after_round (between-sweep fault-injection points),
// sparse_monitors (per-round label-lattice checks), certify
// (spanning-forest result certificate), checkpoint_dir (durable GSKP
// label-plane checkpoints with crash resume) and recovery (the
// detect -> rollback-to-anchor-in-sync-mode -> restart -> diagnose
// ladder).  None of these costs anything when unset: the solve then runs
// the untouched fast round loops.  Only the HirschbergGca-typed hooks —
// record_access, before_step/after_step/detect/final_check/on_restore,
// on_step — have no CSR equivalent and are ignored (DESIGN.md §12).
#pragma once

#include "core/cc_solver.hpp"

namespace gcalib::core {

class SparseCcSolver final : public CcSolver {
 public:
  [[nodiscard]] const char* name() const override { return "sparse-csr"; }
  [[nodiscard]] gca::SubstrateMode substrate() const override {
    return gca::SubstrateMode::kSparseCsr;
  }

  [[nodiscard]] QueryResult solve(const SolverInput& input,
                                  const RunOptions& options) const override;
};

}  // namespace gcalib::core
