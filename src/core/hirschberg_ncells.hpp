// The n-cell design alternative.
//
// Section 3: "For this algorithm we decide between n and n^2 cells.  We
// have decided for the n^2 case because we want to design and evaluate the
// GCA algorithm with the highest degree of parallelism."  This module
// implements the road not taken, so the design decision can be evaluated
// quantitatively (bench_design_space):
//
//   * one cell per graph node, holding C(i), T(i), a scan accumulator and
//    its own row of the adjacency matrix (a cell hosting more than O(1)
//    memory elements — exactly the case the introduction flags as needing
//    a revised pointer mechanism; here the row is cell-local read-only
//    input, so the single pointer still suffices);
//   * the min computations of steps 2 and 3 become sequential scans: in
//     sub-generation k every cell reads cell k (congestion n), so one scan
//     costs n generations instead of log n;
//   * total generations O(n log n) on n cells, versus O(log^2 n) on
//     n(n+1) cells for the paper's machine.
#pragma once

#include <cstdint>
#include <limits>
#include <vector>

#include "graph/graph.hpp"

namespace gcalib::core {

/// Result of an n-cell run.
struct NCellRunResult {
  std::vector<graph::NodeId> labels;
  unsigned iterations = 0;
  std::size_t generations = 0;
  std::size_t max_congestion = 0;
};

/// Runs Hirschberg's algorithm on the n-cell GCA.
[[nodiscard]] NCellRunResult hirschberg_ncells(const graph::Graph& g,
                                               bool instrument = true);

/// Closed-form generation count of the n-cell schedule:
/// 1 + ceil(lg n) * (2*(n + 2) + ceil(lg n) + 2).
[[nodiscard]] std::size_t ncells_total_generations(std::size_t n);

}  // namespace gcalib::core
