#include "core/transitive_closure.hpp"

#include <algorithm>

#include "common/assert.hpp"
#include "common/bits.hpp"
#include "gca/engine.hpp"

namespace gcalib::core {

BoolMatrix BoolMatrix::from_graph(const graph::Graph& g) {
  BoolMatrix m(g.node_count());
  for (const graph::Edge& e : g.edges()) {
    m.set(e.u, e.v);
    m.set(e.v, e.u);
  }
  return m;
}

BoolMatrix transitive_closure_warshall(const BoolMatrix& a) {
  const std::size_t n = a.size();
  BoolMatrix r = a;
  for (std::size_t i = 0; i < n; ++i) r.set(i, i);  // reflexive
  for (std::size_t k = 0; k < n; ++k) {
    for (std::size_t i = 0; i < n; ++i) {
      if (!r.at(i, k)) continue;
      for (std::size_t j = 0; j < n; ++j) {
        if (r.at(k, j)) r.set(i, j);
      }
    }
  }
  return r;
}

BoolMatrix transitive_closure_squaring(const BoolMatrix& a) {
  const std::size_t n = a.size();
  BoolMatrix r = a;
  for (std::size_t i = 0; i < n; ++i) r.set(i, i);
  const unsigned rounds = n > 1 ? log2_ceil(n) : 0;
  for (unsigned round = 0; round < rounds; ++round) {
    BoolMatrix next(n);
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = 0; j < n; ++j) {
        bool bit = false;
        for (std::size_t k = 0; k < n && !bit; ++k) {
          bit = r.at(i, k) && r.at(k, j);
        }
        next.set(i, j, bit);
      }
    }
    r = next;
  }
  return r;
}

namespace {

/// Cell state of the closure GCA: the current bit and the accumulator of
/// the squaring in progress.
struct TcCell {
  std::uint8_t r = 0;
  std::uint8_t acc = 0;
};

}  // namespace

TcRunResult transitive_closure_gca(const BoolMatrix& a, bool instrument) {
  return transitive_closure_gca(
      a, gca::EngineOptions{}.with_instrumentation(instrument));
}

TcRunResult transitive_closure_gca(const BoolMatrix& a,
                                   gca::EngineOptions exec) {
  const std::size_t n = a.size();
  TcRunResult result;
  result.closure = BoolMatrix(n);
  if (n == 0) return result;

  std::vector<TcCell> initial(n * n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      initial[i * n + j].r = (a.at(i, j) || i == j) ? 1 : 0;
    }
  }
  // Two-handed: sub-generation k reads R(i, k) and R(k, j).
  gca::Engine<TcCell> engine(std::move(initial), exec.with_hands(2));

  const unsigned rounds = n > 1 ? log2_ceil(n) : 0;
  for (unsigned round = 0; round < rounds; ++round) {
    for (std::size_t k = 0; k < n; ++k) {
      const gca::GenerationStats stats = engine.step(
          [n, k, &engine](std::size_t index,
                          auto& read) -> std::optional<TcCell> {
            const std::size_t i = index / n;
            const std::size_t j = index % n;
            TcCell next = engine.state(index);
            const std::uint8_t left = read(i * n + k).r;
            const std::uint8_t right = read(k * n + j).r;
            next.acc = static_cast<std::uint8_t>(next.acc | (left & right));
            return next;
          },
          "tc.round" + std::to_string(round) + ".k" + std::to_string(k));
      ++result.generations;
      result.max_congestion =
          std::max(result.max_congestion, stats.max_congestion);
    }
    // Commit: r <- acc, acc <- 0 (local operation).
    engine.step(
        [&engine](std::size_t index, auto&) -> std::optional<TcCell> {
          const TcCell& self = engine.state(index);
          return TcCell{self.acc, 0};
        },
        "tc.round" + std::to_string(round) + ".commit");
    ++result.generations;
  }

  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      result.closure.set(i, j, engine.state(i * n + j).r != 0);
    }
  }
  return result;
}

std::size_t tc_total_generations(std::size_t n) {
  if (n <= 1) return 0;
  return log2_ceil(n) * (n + 1);
}

std::vector<graph::NodeId> components_from_closure(const graph::Graph& g) {
  const BoolMatrix closure =
      transitive_closure_gca(BoolMatrix::from_graph(g), /*instrument=*/false)
          .closure;
  const std::size_t n = g.node_count();
  std::vector<graph::NodeId> labels(n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j <= i; ++j) {
      if (closure.at(i, j)) {
        labels[i] = static_cast<graph::NodeId>(j);
        break;
      }
    }
  }
  return labels;
}

}  // namespace gcalib::core
