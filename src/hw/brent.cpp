#include "hw/brent.hpp"

#include <cmath>

#include "common/assert.hpp"
#include "core/schedule.hpp"

namespace gcalib::hw {

BrentPoint brent_point(std::size_t n, std::size_t physical_cells) {
  GCALIB_EXPECTS(n >= 1);
  const std::size_t virtual_cells = n * (n + 1);
  GCALIB_EXPECTS(physical_cells >= 1 && physical_cells <= virtual_cells);

  BrentPoint point;
  point.n = n;
  point.physical_cells = physical_cells;
  point.virtual_cells = virtual_cells;
  point.slowdown = (virtual_cells + physical_cells - 1) / physical_cells;
  point.generations = core::total_generations(n);
  point.cycles = point.generations * point.slowdown;

  // Logic: scale the fully parallel estimate's cell logic by p / n(n+1);
  // the shared controller does not shrink.  Registers: the *whole* state
  // must exist regardless of p (the paper's point) plus per-physical-cell
  // overhead from the calibrated fit.
  const CostParameters params = CostParameters::cyclone2_calibrated();
  const FieldPortrait field = analyze_field(n);
  const double full_logic = raw_logic_elements(field, params);
  const std::size_t lg = n > 1 ? core::subgeneration_count(n) : 1;
  const double controller = params.le_controller_base +
                            params.le_controller_per_bit * static_cast<double>(lg);
  const double cell_logic = full_logic - controller;
  const double fraction = static_cast<double>(physical_cells) /
                          static_cast<double>(virtual_cells);
  point.logic_elements = static_cast<std::size_t>(std::llround(
      (cell_logic * fraction + controller) * params.technology_factor));

  const double state_bits = static_cast<double>(base_register_bits(field));
  point.register_bits = static_cast<std::size_t>(std::llround(
      state_bits +
      params.reg_overhead_per_cell * static_cast<double>(physical_cells)));

  point.cost_time_product =
      static_cast<double>(point.logic_elements + point.register_bits) *
      static_cast<double>(point.cycles);
  return point;
}

std::vector<BrentPoint> brent_tradeoff(std::size_t n) {
  GCALIB_EXPECTS(n >= 1);
  std::vector<BrentPoint> points;
  const std::size_t full = n * (n + 1);
  points.push_back(brent_point(n, full));
  // Halving sweep from n^2 down to n, then the fully sequential p = 1.
  for (std::size_t p = n * n; p > n; p /= 2) {
    points.push_back(brent_point(n, p));
  }
  if (n > 1) points.push_back(brent_point(n, n));
  points.push_back(brent_point(n, 1));
  return points;
}

}  // namespace gcalib::hw
