// Multiprocessor GCA architecture model (paper reference [4]:
// Heenes/Hoffmann/Jendrsczok, "A multiprocessor architecture for the
// massively parallel model GCA", IPDPS/SMTPS 2006).
//
// Between the fully parallel FPGA field (one unit per cell, section 4) and
// a sequential simulator lies the architecture the paper's group actually
// built: P processors, each owning a partition of the cell field,
// connected by an interconnection network.  Every generation costs
//   * compute: the largest number of active cells any processor must
//     update sequentially (load balance), and
//   * communication: moving every off-partition read across the network,
//     whose cost depends on the topology (bus: fully serialised; crossbar:
//     port contention; ring: per-link traffic plus hop latency).
//
// The model consumes *measured* access traces of real machine runs (the
// engine's recorded (reader, target) edges per generation), so partition
// and topology effects reflect the actual Hirschberg communication
// pattern, not an abstraction of it.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "gca/engine.hpp"
#include "graph/graph.hpp"

namespace gcalib::hw {

/// How cells are assigned to processors.
enum class Partitioning {
  kRowBlock,  ///< contiguous blocks of whole rows (locality of row ops)
  kBlock,     ///< contiguous linear index ranges
  kCyclic,    ///< cell i -> processor i mod P (load balance)
};

/// Interconnection topology.
enum class Network {
  kBus,       ///< one shared medium: all remote reads serialise
  kRing,      ///< bidirectional ring, shortest-path routing
  kCrossbar,  ///< non-blocking; only per-processor port contention remains
};

[[nodiscard]] const char* to_string(Partitioning partitioning);
[[nodiscard]] const char* to_string(Network network);

/// One architecture configuration.
struct MultiprocConfig {
  std::size_t processors = 4;
  Partitioning partitioning = Partitioning::kRowBlock;
  Network network = Network::kCrossbar;
};

/// Cost of one generation under a configuration.
struct StepCost {
  std::size_t compute = 0;        ///< max active cells on one processor
  std::size_t communication = 0;  ///< network cycles for remote reads
  std::size_t messages = 0;       ///< off-partition reads
  [[nodiscard]] std::size_t total() const { return compute + communication; }
};

/// Aggregate over a run.
struct MultiprocResult {
  MultiprocConfig config;
  std::size_t generations = 0;
  std::size_t compute_cycles = 0;
  std::size_t comm_cycles = 0;
  std::size_t messages = 0;
  [[nodiscard]] std::size_t total_cycles() const {
    return compute_cycles + comm_cycles;
  }
};

/// The partition map: processor of each cell.
class PartitionMap {
 public:
  /// Builds the map for a Hirschberg field of (n+1) x n cells.
  PartitionMap(std::size_t n, std::size_t processors, Partitioning scheme);

  [[nodiscard]] std::size_t processors() const { return processors_; }
  [[nodiscard]] std::size_t owner(std::size_t cell) const {
    GCALIB_EXPECTS(cell < owner_.size());
    return owner_[cell];
  }
  /// Number of cells owned by each processor.
  [[nodiscard]] const std::vector<std::size_t>& load() const { return load_; }

 private:
  std::size_t processors_;
  std::vector<std::size_t> owner_;
  std::vector<std::size_t> load_;
};

/// Evaluates one generation: active mask + access edges -> cycles.
[[nodiscard]] StepCost evaluate_step(const PartitionMap& map, Network network,
                                     const std::vector<std::uint8_t>& active,
                                     const std::vector<gca::AccessEdge>& edges);

/// Runs the (n+1) x n Hirschberg machine on graph `g` with full access
/// recording and accumulates the architecture cost of every generation.
[[nodiscard]] MultiprocResult simulate_hirschberg(const graph::Graph& g,
                                                  const MultiprocConfig& config);

}  // namespace gcalib::hw
