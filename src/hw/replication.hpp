// Congestion-reduction strategies from section 4 of the paper.
//
// A generation whose maximum congestion is delta cannot complete in one
// cycle if each cell's register has a single read port: the delta readers
// must be served somehow.  The paper names the options:
//   * serve concurrent reads directly (a wide fan-out net: one cycle but
//     the net's delay grows, or delta cycles on a single-ported realisation),
//   * "implement the concurrent reads in a tree-like manner"
//     (a balanced distribution tree: ceil(log2 delta) + 1 cycles),
//   * "use replication for arrays C and T to get congestion down to 1"
//     (each row keeps a rotated copy of C; one cycle, but all n^2 cells
//     become extended cells).
//
// This module turns a measured per-step congestion profile (engine
// instrumentation) into total-cycle counts and hardware overheads per
// strategy, which the ablation bench compares.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "gca/instrumentation.hpp"
#include "hw/cost_model.hpp"

namespace gcalib::hw {

/// How concurrent reads are realised.
enum class ReadStrategy {
  kSerialized,   ///< single-ported memory: delta cycles per generation
  kFanoutTree,   ///< balanced distribution tree: 1 + ceil(log2 delta) cycles
  kReplicated,   ///< rotated per-row copies of C/T: always 1 cycle
};

[[nodiscard]] const char* to_string(ReadStrategy strategy);

/// Cycles one generation costs under a strategy, given its max congestion.
[[nodiscard]] std::size_t cycles_for_step(ReadStrategy strategy,
                                          std::size_t max_congestion);

/// Aggregate cost of a whole run's congestion profile.
struct StrategyCost {
  ReadStrategy strategy = ReadStrategy::kSerialized;
  std::size_t generations = 0;    ///< engine steps in the profile
  std::size_t total_cycles = 0;   ///< after congestion handling
  double overhead_factor = 0.0;   ///< total_cycles / generations
  std::size_t extra_extended_cells = 0;  ///< hardware cost of the strategy
  std::size_t extra_logic_elements = 0;  ///< modelled LE overhead
};

/// Evaluates a strategy over the measured per-step statistics of a run.
[[nodiscard]] StrategyCost evaluate_strategy(
    ReadStrategy strategy, const std::vector<gca::GenerationStats>& profile,
    std::size_t n);

/// All three strategies side by side.
[[nodiscard]] std::vector<StrategyCost> compare_strategies(
    const std::vector<gca::GenerationStats>& profile, std::size_t n);

}  // namespace gcalib::hw
