// Brent-theorem virtualisation and the section-3 cost argument.
//
// The paper's introduction notes that a GCA has a fixed number p of
// physical cells, and a PRAM algorithm sized P(n) is mapped onto it by
// having each cell simulate P(n)/p virtual processors round-robin (Brent's
// theorem).  Section 3 then argues the punchline: because the algorithm
// needs O(n^2) *state* regardless, and a GCA cell's logic is about as cheap
// as a few memory words, reducing the number of processing cells below n^2
// buys almost nothing — the hardware cost is dominated by state, while the
// runtime multiplies by ceil(n(n+1)/p).
//
// This module makes that argument quantitative: for a problem size n and a
// physical cell count p it combines the schedule arithmetic (generations)
// with the calibrated cost model (logic for p cells + registers for the
// full n(n+1)-cell state) into a cost/time tradeoff curve.
#pragma once

#include <cstddef>
#include <vector>

#include "hw/cost_model.hpp"

namespace gcalib::hw {

/// One point of the virtualisation tradeoff.
struct BrentPoint {
  std::size_t n = 0;
  std::size_t physical_cells = 0;   ///< p
  std::size_t virtual_cells = 0;    ///< n(n+1)
  std::size_t slowdown = 0;         ///< ceil(virtual / physical)
  std::size_t generations = 0;      ///< algorithm generations (O(log^2 n))
  std::size_t cycles = 0;           ///< generations * slowdown
  std::size_t logic_elements = 0;   ///< logic for p cells + shared control
  std::size_t register_bits = 0;    ///< state for ALL virtual cells
  double cost_time_product = 0.0;   ///< (LEs + register bits) * cycles
};

/// Tradeoff point for one (n, p).  Requires 1 <= p <= n(n+1).
[[nodiscard]] BrentPoint brent_point(std::size_t n, std::size_t physical_cells);

/// The canonical sweep of p for a given n: n(n+1), n^2, n^2/2, ..., n, 1.
[[nodiscard]] std::vector<BrentPoint> brent_tradeoff(std::size_t n);

}  // namespace gcalib::hw
