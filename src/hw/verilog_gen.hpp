// Verilog generator for the fully parallel cell field (paper section 4).
//
// The paper describes a Verilog design synthesised for an Altera Cyclone II;
// that source is not published, so this generator reconstructs it from the
// state graph: a parameterised module with one register per cell, a global
// generation state machine, per-cell combinational neighbour selection
// (static multiplexers addressed by the generation; data-addressed
// multiplexers in the extended column-0 cells) and the data operations of
// Figure 2.  The output is deterministic, self-contained Verilog-2001.
//
// We cannot run synthesis in this environment; tests validate the output
// structurally (determinism, balanced begin/end, port and parameter
// inventory, per-n constants) and the cost model covers the area/clock
// estimates.
#pragma once

#include <cstddef>
#include <string>

namespace gcalib::hw {

/// Options for the generated module.
struct VerilogOptions {
  std::string module_name = "gca_hirschberg";
  bool include_testbench = false;  ///< append a smoke-test bench module
};

/// Generates the cell-field module for problem size n (n >= 2).
[[nodiscard]] std::string generate_verilog(std::size_t n,
                                           const VerilogOptions& options = {});

}  // namespace gcalib::hw
