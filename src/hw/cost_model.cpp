#include "hw/cost_model.hpp"

#include <cmath>

#include "common/assert.hpp"
#include "common/bits.hpp"

namespace gcalib::hw {

PaperDatapoint paper_ep2c70() { return PaperDatapoint{}; }

std::size_t base_register_bits(const FieldPortrait& field) {
  std::size_t bits = 0;
  for (const CellPortrait& cell : field.cells) {
    bits += field.data_width + (cell.bottom_row ? 0 : 1);  // d plus a bit
  }
  // Global controller: generation counter (12 states), sub-generation and
  // outer-iteration counters sized by log n.
  const std::size_t lg = field.n > 1 ? log2_ceil(field.n) : 1;
  bits += bit_width_for(12) + 2 * bit_width_for(lg + 1);
  return bits;
}

double raw_logic_elements(const FieldPortrait& field,
                          const CostParameters& params) {
  const double w = static_cast<double>(field.data_width);
  double les = 0.0;
  for (const CellPortrait& cell : field.cells) {
    const auto fanin = static_cast<double>(cell.static_sources.size());
    if (fanin > 1.0) {
      les += (fanin - 1.0) * w * params.le_per_mux_input_bit;
    }
    les += w * params.le_per_compare_bit;
    les += params.le_per_cell_decode;
    if (cell.extended) {
      // Data-addressed mux over the n possible targets of generations 10/11.
      les += static_cast<double>(field.n) * w * params.le_per_ext_mux_input_bit;
    }
  }
  const std::size_t lg = field.n > 1 ? log2_ceil(field.n) : 1;
  les += params.le_controller_base +
         params.le_controller_per_bit * static_cast<double>(lg);
  return les;
}

SynthesisEstimate estimate(const FieldPortrait& field,
                           const CostParameters& params) {
  SynthesisEstimate out;
  out.n = field.n;
  out.cells = field.cell_count();

  const double raw = raw_logic_elements(field, params);
  out.logic_elements =
      static_cast<std::size_t>(std::llround(raw * params.technology_factor));

  const double base_regs = static_cast<double>(base_register_bits(field));
  const double overhead =
      params.reg_overhead_per_cell * static_cast<double>(out.cells);
  out.register_bits = static_cast<std::size_t>(std::llround(base_regs + overhead));

  const double fanin = static_cast<double>(field.max_static_fanin());
  const double levels = fanin > 1.0 ? std::log2(fanin) : 0.0;
  const double delay_ns = params.t_base_ns + params.t_per_level_ns * levels;
  out.fmax_mhz = 1000.0 / delay_ns;
  return out;
}

CostParameters CostParameters::cyclone2_calibrated() {
  // Fit the three free scalars (technology_factor, reg_overhead_per_cell,
  // t_base_ns) against the published n = 16 datapoint.  The structural
  // coefficients keep their physically motivated defaults.
  CostParameters params;
  const PaperDatapoint paper = paper_ep2c70();
  const FieldPortrait field = analyze_field(paper.n);

  const double raw = raw_logic_elements(field, params);
  params.technology_factor = static_cast<double>(paper.logic_elements) / raw;

  const double base_regs = static_cast<double>(base_register_bits(field));
  params.reg_overhead_per_cell =
      (static_cast<double>(paper.register_bits) - base_regs) /
      static_cast<double>(field.cell_count());

  const double fanin = static_cast<double>(field.max_static_fanin());
  const double levels = fanin > 1.0 ? std::log2(fanin) : 0.0;
  params.t_base_ns = 1000.0 / paper.fmax_mhz - params.t_per_level_ns * levels;
  GCALIB_ENSURES(params.t_base_ns > 0.0);
  return params;
}

SynthesisEstimate estimate_for(std::size_t n) {
  static const CostParameters params = CostParameters::cyclone2_calibrated();
  return estimate(analyze_field(n), params);
}

CostBreakdown breakdown(const FieldPortrait& field, const CostParameters& params) {
  const double w = static_cast<double>(field.data_width);
  double static_mux = 0.0, compare_min = 0.0, decode = 0.0, extended = 0.0;
  for (const CellPortrait& cell : field.cells) {
    const auto fanin = static_cast<double>(cell.static_sources.size());
    if (fanin > 1.0) {
      static_mux += (fanin - 1.0) * w * params.le_per_mux_input_bit;
    }
    compare_min += w * params.le_per_compare_bit;
    decode += params.le_per_cell_decode;
    if (cell.extended) {
      extended += static_cast<double>(field.n) * w * params.le_per_ext_mux_input_bit;
    }
  }
  const std::size_t lg = field.n > 1 ? log2_ceil(field.n) : 1;
  const double controller =
      params.le_controller_base +
      params.le_controller_per_bit * static_cast<double>(lg);

  const auto scaled = [&params](double x) {
    return static_cast<std::size_t>(std::llround(x * params.technology_factor));
  };
  CostBreakdown out;
  out.n = field.n;
  out.static_mux = scaled(static_mux);
  out.compare_min = scaled(compare_min);
  out.decode = scaled(decode);
  out.extended_mux = scaled(extended);
  out.controller = scaled(controller);
  return out;
}

std::string synthesis_report(std::size_t n) {
  const CostParameters params = CostParameters::cyclone2_calibrated();
  const FieldPortrait field = analyze_field(n);
  const SynthesisEstimate est = estimate(field, params);
  const CostBreakdown items = breakdown(field, params);

  std::string report;
  const auto line = [&report](const std::string& s) { report += s + "\n"; };
  line("gcalib synthesis estimate (calibrated Cyclone II model)");
  line("problem size n ............ " + std::to_string(n));
  line("cells N x (N+1) ........... " + std::to_string(est.cells) + "  (" +
       std::to_string(field.standard_cell_count()) + " standard, " +
       std::to_string(field.extended_cell_count()) + " extended)");
  line("data width ................ " + std::to_string(field.data_width) +
       " bits (+1 adjacency bit in the square)");
  line("pointer width ............. " + std::to_string(field.pointer_width) +
       " bits (combinational, not registered)");
  line("max static mux fan-in ..... " + std::to_string(field.max_static_fanin()));
  line("logic elements ............ " + std::to_string(est.logic_elements));
  line("  static neighbour muxes .. " + std::to_string(items.static_mux));
  line("  compare/min/inf logic ... " + std::to_string(items.compare_min));
  line("  generation decode ....... " + std::to_string(items.decode));
  line("  extended data muxes ..... " + std::to_string(items.extended_mux));
  line("  global controller ....... " + std::to_string(items.controller));
  line("register bits ............. " + std::to_string(est.register_bits));
  line("clock frequency ........... " +
       std::to_string(est.fmax_mhz).substr(0, 5) + " MHz");
  return report;
}

}  // namespace gcalib::hw
