#include "hw/replication.hpp"

#include "common/assert.hpp"
#include "common/bits.hpp"

namespace gcalib::hw {

const char* to_string(ReadStrategy strategy) {
  switch (strategy) {
    case ReadStrategy::kSerialized: return "serialized";
    case ReadStrategy::kFanoutTree: return "fanout-tree";
    case ReadStrategy::kReplicated: return "replicated-C/T";
  }
  return "?";
}

std::size_t cycles_for_step(ReadStrategy strategy, std::size_t max_congestion) {
  const std::size_t delta = max_congestion;
  switch (strategy) {
    case ReadStrategy::kSerialized:
      return delta > 1 ? delta : 1;
    case ReadStrategy::kFanoutTree:
      return delta > 1 ? 1 + log2_ceil(delta) : 1;
    case ReadStrategy::kReplicated:
      return 1;
  }
  return 1;
}

StrategyCost evaluate_strategy(ReadStrategy strategy,
                               const std::vector<gca::GenerationStats>& profile,
                               std::size_t n) {
  GCALIB_EXPECTS(n >= 1);
  StrategyCost cost;
  cost.strategy = strategy;
  cost.generations = profile.size();
  for (const gca::GenerationStats& step : profile) {
    cost.total_cycles += cycles_for_step(strategy, step.max_congestion);
  }
  cost.overhead_factor =
      profile.empty() ? 0.0
                      : static_cast<double>(cost.total_cycles) /
                            static_cast<double>(cost.generations);

  const CostParameters params = CostParameters::cyclone2_calibrated();
  const std::size_t w = data_width_for(n);
  switch (strategy) {
    case ReadStrategy::kSerialized:
      break;  // no extra hardware; time is the cost
    case ReadStrategy::kFanoutTree: {
      // One distribution-tree buffer stage per read level on the hottest
      // nets: modelled as log2(n) extra LE rows on the n column-0 nets.
      const std::size_t levels = n > 1 ? log2_ceil(n) : 0;
      cost.extra_logic_elements = static_cast<std::size_t>(
          static_cast<double>(n * levels * w) * params.technology_factor);
      break;
    }
    case ReadStrategy::kReplicated: {
      // Paper: "this however would require extended cells in all places" —
      // every square cell gains a data-addressed mux over its row copy.
      cost.extra_extended_cells = n * n - n;
      cost.extra_logic_elements = static_cast<std::size_t>(
          static_cast<double>(cost.extra_extended_cells) *
          static_cast<double>(n) * static_cast<double>(w) *
          params.le_per_ext_mux_input_bit * params.technology_factor);
      break;
    }
  }
  return cost;
}

std::vector<StrategyCost> compare_strategies(
    const std::vector<gca::GenerationStats>& profile, std::size_t n) {
  return {
      evaluate_strategy(ReadStrategy::kSerialized, profile, n),
      evaluate_strategy(ReadStrategy::kFanoutTree, profile, n),
      evaluate_strategy(ReadStrategy::kReplicated, profile, n),
  };
}

}  // namespace gcalib::hw
