// Structural model of the fully parallel hardware implementation
// (paper Figure 4 and section 4).
//
// The field is built from n^2 *standard cells* — the neighbour is selected
// by a multiplexer addressed by the current generation (static sources
// only) — and n *extended cells* (column 0), which additionally carry a
// second multiplexer addressed by the cell's own data word, needed for the
// data-dependent pointers of generations 10 and 11.  Every cell registers
// its state; the pointer is combinational (computed "in the current
// generation", paper section 3), so it is not registered.
//
// This module derives, for a given problem size n, the exact structure of
// every cell (static mux input set, data port width, register bits) from
// the declarative access pattern in core/access_pattern.hpp.  The cost
// model and the Verilog generator are built on top of it.
#pragma once

#include <cstddef>
#include <vector>

#include "core/access_pattern.hpp"

namespace gcalib::hw {

/// Structure of one cell.
struct CellPortrait {
  std::size_t index = 0;
  bool extended = false;             ///< has a data-addressed neighbour mux
  bool bottom_row = false;           ///< D_N cell: (d, p) only, no a bit
  std::vector<std::size_t> static_sources;  ///< distinct static neighbours
};

/// Structure of the whole field for problem size n.
struct FieldPortrait {
  std::size_t n = 0;
  std::size_t data_width = 0;     ///< bits of d (node ids plus infinity code)
  std::size_t pointer_width = 0;  ///< bits of a cell address
  std::vector<CellPortrait> cells;

  [[nodiscard]] std::size_t cell_count() const { return cells.size(); }
  [[nodiscard]] std::size_t standard_cell_count() const;
  [[nodiscard]] std::size_t extended_cell_count() const;
  /// Largest static-mux input count over all cells.
  [[nodiscard]] std::size_t max_static_fanin() const;
};

/// Derives the field structure for problem size n (n >= 1).
[[nodiscard]] FieldPortrait analyze_field(std::size_t n);

/// Width of the d register: values 0..n plus a reserved infinity code.
[[nodiscard]] std::size_t data_width_for(std::size_t n);

/// Width of a cell address in the (n+1) x n field.
[[nodiscard]] std::size_t pointer_width_for(std::size_t n);

}  // namespace gcalib::hw
