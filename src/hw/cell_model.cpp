#include "hw/cell_model.hpp"

#include <algorithm>

#include "common/assert.hpp"
#include "common/bits.hpp"

namespace gcalib::hw {

std::size_t FieldPortrait::standard_cell_count() const {
  return static_cast<std::size_t>(
      std::count_if(cells.begin(), cells.end(),
                    [](const CellPortrait& c) { return !c.extended; }));
}

std::size_t FieldPortrait::extended_cell_count() const {
  return cells.size() - standard_cell_count();
}

std::size_t FieldPortrait::max_static_fanin() const {
  std::size_t best = 0;
  for (const CellPortrait& c : cells) {
    best = std::max(best, c.static_sources.size());
  }
  return best;
}

std::size_t data_width_for(std::size_t n) {
  GCALIB_EXPECTS(n >= 1);
  // Values 0..n (generation 0 writes row numbers up to n into the bottom
  // row) plus one reserved infinity code -> n+2 code points.
  return bit_width_for(n + 2);
}

std::size_t pointer_width_for(std::size_t n) {
  GCALIB_EXPECTS(n >= 1);
  return bit_width_for(n * (n + 1));
}

FieldPortrait analyze_field(std::size_t n) {
  GCALIB_EXPECTS(n >= 1);
  FieldPortrait field;
  field.n = n;
  field.data_width = data_width_for(n);
  field.pointer_width = pointer_width_for(n);
  const std::size_t total = n * (n + 1);
  field.cells.reserve(total);
  for (std::size_t index = 0; index < total; ++index) {
    CellPortrait cell;
    cell.index = index;
    cell.extended = core::needs_extended_cell(index, n);
    cell.bottom_row = index >= n * n;
    cell.static_sources = core::static_source_set(index, n);
    field.cells.push_back(std::move(cell));
  }
  return field;
}

}  // namespace gcalib::hw
