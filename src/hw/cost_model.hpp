// Analytic FPGA cost model, calibrated against the paper's single
// synthesis datapoint (section 4: Altera Cyclone II EP2C70, Quartus II).
//
// Substitution note (DESIGN.md): we cannot run Quartus synthesis, so the
// paper's hardware evaluation is reproduced by a structural model.  Every
// term is derived from the actual cell structure (FieldPortrait): register
// bits from the d/a widths, logic elements from multiplexer input counts,
// comparator widths and the extended cells' data-addressed muxes, clock
// frequency from the worst static fan-in.  Free coefficients are fixed
// once, by fitting to the published n = 16 datapoint (272 cells,
// 23,051 LEs, 2,192 register bits, 71 MHz); the model then *predicts* the
// scaling shape for other n, which is what the benches report.
#pragma once

#include <cstddef>
#include <string>

#include "hw/cell_model.hpp"

namespace gcalib::hw {

/// The synthesis result the paper reports for N = 16 on the EP2C70.
struct PaperDatapoint {
  std::size_t n = 16;
  std::size_t cells = 272;           ///< N x (N+1)
  std::size_t logic_elements = 23051;
  std::size_t register_bits = 2192;
  double fmax_mhz = 71.0;
};

[[nodiscard]] PaperDatapoint paper_ep2c70();

/// Technology coefficients of the model (4-input-LUT fabric).
struct CostParameters {
  // --- logic elements -------------------------------------------------
  double le_per_mux_input_bit = 0.5;   ///< LEs per extra static-mux input per bit
  double le_per_compare_bit = 2.0;     ///< comparator + min-select + inf mask
  double le_per_cell_decode = 2.0;     ///< generation decode / enable logic
  double le_per_ext_mux_input_bit = 0.5;  ///< extended cell's data mux
  double le_controller_base = 30.0;    ///< global state machine
  double le_controller_per_bit = 5.0;  ///< counters scale with log n
  double technology_factor = 1.0;      ///< fitted scale (see calibrate())
  // --- registers ------------------------------------------------------
  double reg_overhead_per_cell = 0.0;  ///< fitted pipeline/control bits
  // --- timing ---------------------------------------------------------
  double t_base_ns = 10.0;             ///< fitted fixed pipeline delay
  double t_per_level_ns = 0.9;         ///< LUT+routing delay per mux level

  /// Coefficients fitted so that estimate(analyze_field(16)) reproduces the
  /// EP2C70 datapoint exactly (LEs and register bits to the unit, fmax to
  /// 0.1 MHz).
  [[nodiscard]] static CostParameters cyclone2_calibrated();
};

/// Model output for one problem size.
struct SynthesisEstimate {
  std::size_t n = 0;
  std::size_t cells = 0;
  std::size_t logic_elements = 0;
  std::size_t register_bits = 0;
  double fmax_mhz = 0.0;
  /// Generations per second at fmax assuming one generation per clock.
  [[nodiscard]] double generations_per_second() const { return fmax_mhz * 1e6; }
};

/// Register bits before the fitted per-cell overhead: square cells carry
/// d and a, bottom-row cells carry d, plus the global controller counters.
[[nodiscard]] std::size_t base_register_bits(const FieldPortrait& field);

/// Raw (unscaled) LE count from the field structure.
[[nodiscard]] double raw_logic_elements(const FieldPortrait& field,
                                        const CostParameters& params);

/// Full estimate for a field under the given coefficients.
[[nodiscard]] SynthesisEstimate estimate(const FieldPortrait& field,
                                         const CostParameters& params);

/// Convenience: estimate for problem size n with calibrated coefficients.
[[nodiscard]] SynthesisEstimate estimate_for(std::size_t n);

/// Itemised logic-element estimate (all values already scaled by the
/// technology factor; categories sum to the SynthesisEstimate total up to
/// rounding).
struct CostBreakdown {
  std::size_t n = 0;
  std::size_t static_mux = 0;    ///< per-cell neighbour selection
  std::size_t compare_min = 0;   ///< comparators, min-select, infinity mask
  std::size_t decode = 0;        ///< per-cell generation decode / enables
  std::size_t extended_mux = 0;  ///< data-addressed muxes (column 0)
  std::size_t controller = 0;    ///< global state machine and counters
  [[nodiscard]] std::size_t total() const {
    return static_mux + compare_min + decode + extended_mux + controller;
  }
};

/// Itemised estimate under the given coefficients.
[[nodiscard]] CostBreakdown breakdown(const FieldPortrait& field,
                                      const CostParameters& params);

/// Human-readable synthesis report (fit-summary style) for problem size n
/// with calibrated coefficients.
[[nodiscard]] std::string synthesis_report(std::size_t n);

}  // namespace gcalib::hw
