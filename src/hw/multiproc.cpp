#include "hw/multiproc.hpp"

#include <algorithm>

#include "common/assert.hpp"
#include "core/hirschberg_gca.hpp"
#include "core/schedule.hpp"

namespace gcalib::hw {

const char* to_string(Partitioning partitioning) {
  switch (partitioning) {
    case Partitioning::kRowBlock: return "row-block";
    case Partitioning::kBlock: return "block";
    case Partitioning::kCyclic: return "cyclic";
  }
  return "?";
}

const char* to_string(Network network) {
  switch (network) {
    case Network::kBus: return "bus";
    case Network::kRing: return "ring";
    case Network::kCrossbar: return "crossbar";
  }
  return "?";
}

PartitionMap::PartitionMap(std::size_t n, std::size_t processors,
                           Partitioning scheme)
    : processors_(processors) {
  GCALIB_EXPECTS(n >= 1 && processors >= 1);
  const std::size_t rows = n + 1;
  const std::size_t cells = rows * n;
  owner_.resize(cells);
  load_.assign(processors, 0);
  switch (scheme) {
    case Partitioning::kRowBlock: {
      // Contiguous row ranges, as equal as possible.
      const std::size_t base = rows / processors;
      const std::size_t extra = rows % processors;
      std::vector<std::size_t> owner_of_row(rows);
      std::size_t row = 0;
      for (std::size_t p = 0; p < processors; ++p) {
        const std::size_t count = base + (p < extra ? 1 : 0);
        for (std::size_t k = 0; k < count && row < rows; ++k) {
          owner_of_row[row++] = p;
        }
      }
      // If P > rows, trailing processors own nothing (owner_of_row covers
      // all rows by construction).
      for (std::size_t cell = 0; cell < cells; ++cell) {
        owner_[cell] = owner_of_row[cell / n];
      }
      break;
    }
    case Partitioning::kBlock: {
      const std::size_t chunk = (cells + processors - 1) / processors;
      for (std::size_t cell = 0; cell < cells; ++cell) {
        owner_[cell] = std::min(cell / chunk, processors - 1);
      }
      break;
    }
    case Partitioning::kCyclic: {
      for (std::size_t cell = 0; cell < cells; ++cell) {
        owner_[cell] = cell % processors;
      }
      break;
    }
  }
  for (std::size_t cell = 0; cell < cells; ++cell) ++load_[owner_[cell]];
}

StepCost evaluate_step(const PartitionMap& map, Network network,
                       const std::vector<std::uint8_t>& active,
                       const std::vector<gca::AccessEdge>& edges) {
  const std::size_t procs = map.processors();
  StepCost cost;

  // Compute: the most loaded processor updates its active cells serially.
  std::vector<std::size_t> active_per_proc(procs, 0);
  for (std::size_t cell = 0; cell < active.size(); ++cell) {
    if (active[cell]) ++active_per_proc[map.owner(cell)];
  }
  cost.compute = *std::max_element(active_per_proc.begin(),
                                   active_per_proc.end());

  // Communication: off-partition reads become messages (response traffic
  // from the target's owner to the reader's owner).
  std::vector<std::size_t> sends(procs, 0), recvs(procs, 0);
  std::vector<std::size_t> ring_load;  // directed links, 2 per neighbour pair
  if (network == Network::kRing) ring_load.assign(2 * procs, 0);
  std::size_t max_hops = 0;

  for (const gca::AccessEdge& edge : edges) {
    const std::size_t from = map.owner(edge.target);  // data source
    const std::size_t to = map.owner(edge.reader);
    if (from == to) continue;
    ++cost.messages;
    ++sends[from];
    ++recvs[to];
    if (network == Network::kRing) {
      // Shortest direction around the ring; load every traversed link.
      const std::size_t forward = (to + procs - from) % procs;
      const std::size_t backward = (from + procs - to) % procs;
      const bool go_forward = forward <= backward;
      const std::size_t hops = go_forward ? forward : backward;
      max_hops = std::max(max_hops, hops);
      std::size_t at = from;
      for (std::size_t h = 0; h < hops; ++h) {
        if (go_forward) {
          ring_load[2 * at] += 1;  // link at -> at+1
          at = (at + 1) % procs;
        } else {
          ring_load[2 * at + 1] += 1;  // link at -> at-1
          at = (at + procs - 1) % procs;
        }
      }
    }
  }

  switch (network) {
    case Network::kBus:
      cost.communication = cost.messages;  // fully serialised medium
      break;
    case Network::kCrossbar: {
      // Non-blocking fabric: per-processor port contention only.
      std::size_t contention = 0;
      for (std::size_t p = 0; p < procs; ++p) {
        contention = std::max({contention, sends[p], recvs[p]});
      }
      cost.communication = contention;
      break;
    }
    case Network::kRing: {
      // Pipelined wormhole model: the busiest link bounds throughput, the
      // longest path adds latency.
      const std::size_t max_link =
          ring_load.empty()
              ? 0
              : *std::max_element(ring_load.begin(), ring_load.end());
      cost.communication = max_link + max_hops;
      break;
    }
  }
  return cost;
}

MultiprocResult simulate_hirschberg(const graph::Graph& g,
                                    const MultiprocConfig& config) {
  MultiprocResult result;
  result.config = config;
  const graph::NodeId n = g.node_count();
  if (n == 0) return result;

  const PartitionMap map(n, config.processors, config.partitioning);

  core::HirschbergGca machine(g);
  machine.engine().set_options(
      gca::EngineOptions{machine.engine().options()}.with_record_access(
          true));

  const auto account = [&]() {
    const StepCost step =
        evaluate_step(map, config.network, machine.engine().last_active(),
                      machine.engine().last_access());
    ++result.generations;
    result.compute_cycles += step.compute;
    result.comm_cycles += step.communication;
    result.messages += step.messages;
  };

  machine.initialize();
  account();
  const unsigned subs = core::subgeneration_count(n);
  static constexpr core::Generation kOrder[] = {
      core::Generation::kCopyCToRows, core::Generation::kMaskNeighbors,
      core::Generation::kRowMin,      core::Generation::kFallback,
      core::Generation::kCopyTToRows, core::Generation::kMaskMembers,
      core::Generation::kRowMin2,     core::Generation::kFallback2,
      core::Generation::kAdopt,       core::Generation::kPointerJump,
      core::Generation::kFinalMin};
  for (unsigned iter = 0; iter < core::outer_iterations(n); ++iter) {
    for (core::Generation gen : kOrder) {
      const unsigned repeats = core::has_subgenerations(gen) ? subs : 1;
      for (unsigned s = 0; s < repeats; ++s) {
        machine.step_generation(gen, s);
        account();
      }
    }
  }
  return result;
}

}  // namespace gcalib::hw
