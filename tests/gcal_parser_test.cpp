#include "gcal/parser.hpp"

#include <gtest/gtest.h>

namespace gcalib::gcal {
namespace {

constexpr const char* kMinimal = R"(
program tiny
generation init:
  active all
  d = row
)";

TEST(GcalParser, MinimalProgram) {
  const Program p = parse(kMinimal);
  EXPECT_EQ(p.name, "tiny");
  ASSERT_EQ(p.prologue.size(), 1u);
  EXPECT_TRUE(p.loop.empty());
  EXPECT_EQ(p.prologue[0].name, "init");
  EXPECT_FALSE(p.prologue[0].repeat);
  EXPECT_NE(p.prologue[0].active, nullptr);
  EXPECT_EQ(p.prologue[0].pointer, nullptr);
  EXPECT_NE(p.prologue[0].data, nullptr);
}

TEST(GcalParser, LoopAndRepeat) {
  const Program p = parse(R"(
program two
generation init:
  active all
  d = 0
loop:
  generation scan repeat:
    active square
    p = index + (1 << sub)
    d = min(d, dstar)
  generation fix:
    active col == 0
    p = nn + row
    d = d == inf ? dstar : d
)");
  ASSERT_EQ(p.loop.size(), 2u);
  EXPECT_TRUE(p.loop[0].repeat);
  EXPECT_FALSE(p.loop[1].repeat);
  EXPECT_NE(p.loop[0].pointer, nullptr);
}

TEST(GcalParser, ExpressionPrecedence) {
  // 1 + 2 * 3 == 7 must parse multiplication tighter.
  const Program p = parse(R"(
program expr
generation g:
  active 1 + 2 * 3 == 7
  d = 0
)");
  const Expr& active = *p.prologue[0].active;
  EXPECT_EQ(active.kind, ExprKind::kBinary);
  EXPECT_EQ(active.op, Op::kEq);
  EXPECT_EQ(active.a->op, Op::kAdd);
  EXPECT_EQ(active.a->b->op, Op::kMul);
}

TEST(GcalParser, TernaryAndCall) {
  const Program p = parse(R"(
program t
generation g:
  active all
  d = a == 1 ? min(d, 3) : max(d, 4)
)");
  const Expr& data = *p.prologue[0].data;
  EXPECT_EQ(data.kind, ExprKind::kTernary);
  EXPECT_EQ(data.b->kind, ExprKind::kCall);
  EXPECT_EQ(data.b->name, "min");
  EXPECT_EQ(data.c->name, "max");
}

TEST(GcalParser, UnaryOperators) {
  const Program p = parse(R"(
program u
generation g:
  active !bottom
  d = -1 + 2
)");
  EXPECT_EQ(p.prologue[0].active->kind, ExprKind::kUnary);
  EXPECT_EQ(p.prologue[0].active->op, Op::kNot);
}

TEST(GcalParser, MissingActiveRejected) {
  EXPECT_THROW((void)parse("program x generation g: d = 1"), ParseError);
}

TEST(GcalParser, MissingDataRejected) {
  EXPECT_THROW((void)parse("program x generation g: active all"), ParseError);
}

TEST(GcalParser, DuplicateClausesRejected) {
  EXPECT_THROW((void)parse(R"(
program x
generation g:
  active all
  active all
  d = 1
)"),
               ParseError);
  EXPECT_THROW((void)parse(R"(
program x
generation g:
  active all
  d = 1
  d = 2
)"),
               ParseError);
}

TEST(GcalParser, TwoLoopsRejected) {
  EXPECT_THROW((void)parse(R"(
program x
loop:
  generation a:
    active all
    d = 1
loop:
  generation b:
    active all
    d = 2
)"),
               ParseError);
}

TEST(GcalParser, GenerationsAfterLoopBelongToIt) {
  // The grammar has no block delimiters, so every generation following
  // "loop:" is part of the loop body (documented language behaviour).
  const Program p = parse(R"(
program x
loop:
  generation a:
    active all
    d = 1
generation late:
  active all
  d = 2
)");
  EXPECT_TRUE(p.prologue.empty());
  ASSERT_EQ(p.loop.size(), 2u);
  EXPECT_EQ(p.loop[1].name, "late");
}

TEST(GcalParser, EmptyProgramRejected) {
  EXPECT_THROW((void)parse("program empty"), ParseError);
}

TEST(GcalParser, UnbalancedParensRejected) {
  EXPECT_THROW((void)parse(R"(
program x
generation g:
  active (1 + 2
  d = 0
)"),
               ParseError);
}

}  // namespace
}  // namespace gcalib::gcal
