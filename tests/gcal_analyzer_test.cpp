#include "gcal/analyzer.hpp"

#include <gtest/gtest.h>

#include <stdexcept>
#include <string>
#include <vector>

#include "core/access_pattern.hpp"
#include "core/schedule.hpp"
#include "gca/field.hpp"
#include "gcal/eval.hpp"
#include "gcal/interpreter.hpp"
#include "gcal/parser.hpp"
#include "graph/generators.hpp"

namespace gcalib::gcal {
namespace {

Program hirschberg() { return parse(hirschberg_gcal_source()); }

TEST(GcalAnalyzer, ClassifiesPointers) {
  const Program p = hirschberg();
  const ProgramAnalysis analysis = analyze(p, 8);
  ASSERT_EQ(analysis.generations.size(), 12u);
  // init has no pointer; jump/final_min are data-dependent; the rest static.
  EXPECT_EQ(analysis.generations[0].pointer_class, PointerClass::kNone);
  std::size_t dynamic = 0, statics = 0;
  for (const GenerationAnalysis& g : analysis.generations) {
    if (g.pointer_class == PointerClass::kDataDependent) ++dynamic;
    if (g.pointer_class == PointerClass::kStatic) ++statics;
  }
  EXPECT_EQ(dynamic, 2u);  // jump, final_min
  EXPECT_EQ(statics, 9u);
}

TEST(GcalAnalyzer, ActiveCellCountsMatchDeclarativeSpec) {
  // The analyzer's first-sub-generation activity counts must equal the
  // hand-written closed forms in core/access_pattern.hpp.
  const std::size_t n = 8;
  const ProgramAnalysis analysis = analyze(hirschberg(), n);
  using core::Generation;
  const Generation order[] = {
      Generation::kInit,        Generation::kCopyCToRows,
      Generation::kMaskNeighbors, Generation::kRowMin,
      Generation::kFallback,    Generation::kCopyTToRows,
      Generation::kMaskMembers, Generation::kRowMin2,
      Generation::kFallback2,   Generation::kAdopt,
      Generation::kPointerJump, Generation::kFinalMin};
  for (std::size_t i = 0; i < 12; ++i) {
    EXPECT_EQ(analysis.generations[i].active_cells_first,
              core::expected_active_cells(order[i], 0, n))
        << analysis.generations[i].name;
  }
}

TEST(GcalAnalyzer, StaticCongestionMatchesTable1) {
  const std::size_t n = 8;
  const ProgramAnalysis analysis = analyze(hirschberg(), n);
  // copy_c: n+1 readers of each column-0 cell; masks: n; row_min: 1.
  EXPECT_EQ(analysis.generations[1].max_congestion, n + 1);  // copy_c
  EXPECT_EQ(analysis.generations[2].max_congestion, n);      // mask_neighbors
  EXPECT_EQ(analysis.generations[3].max_congestion, 1u);     // row_min
  EXPECT_EQ(analysis.generations[4].max_congestion, 1u);     // fallback
  EXPECT_EQ(analysis.generations[9].max_congestion, n + 1);  // adopt
  EXPECT_EQ(analysis.static_max_congestion, n + 1);
}

TEST(GcalAnalyzer, ExtendedCellsMatchDeclarativeSpec) {
  const std::size_t n = 6;
  const ProgramAnalysis analysis = analyze(hirschberg(), n);
  for (const hw::CellPortrait& cell : analysis.portrait.cells) {
    EXPECT_EQ(cell.extended, core::needs_extended_cell(cell.index, n))
        << cell.index;
  }
}

TEST(GcalAnalyzer, StaticSourcesMatchDeclarativeSpec) {
  const std::size_t n = 8;
  const ProgramAnalysis analysis = analyze(hirschberg(), n);
  for (const hw::CellPortrait& cell : analysis.portrait.cells) {
    EXPECT_EQ(cell.static_sources, core::static_source_set(cell.index, n))
        << "cell " << cell.index;
  }
}

TEST(GcalAnalyzer, ProgramEstimateMatchesNativeCostModel) {
  // Since the derived portrait equals the hand-written one, the synthesis
  // estimate from gcal source must equal hw::estimate_for — including the
  // paper datapoint at n = 16.
  const Program p = hirschberg();
  for (std::size_t n : {8u, 16u, 32u}) {
    const hw::SynthesisEstimate from_gcal = estimate_program(p, n);
    const hw::SynthesisEstimate native = hw::estimate_for(n);
    EXPECT_EQ(from_gcal.logic_elements, native.logic_elements) << n;
    EXPECT_EQ(from_gcal.register_bits, native.register_bits) << n;
    EXPECT_DOUBLE_EQ(from_gcal.fmax_mhz, native.fmax_mhz) << n;
  }
  EXPECT_EQ(estimate_program(p, 16).logic_elements, 23051u);
}

TEST(GcalAnalyzer, StateDependentActivityIsWorstCased) {
  const Program p = parse(R"(
program masked
generation g:
  active d == 0
  p = col * n
  d = dstar
)");
  const ProgramAnalysis analysis = analyze(p, 4);
  // Unknown at analysis time -> all 20 cells assumed active.
  EXPECT_EQ(analysis.generations[0].active_cells_first, 20u);
}

TEST(GcalAnalyzer, OutOfRangeStaticPointerIsRejected) {
  const Program p = parse(R"(
program bad
generation g:
  active all
  p = nn * 2
  d = dstar
)");
  EXPECT_THROW((void)analyze(p, 4), EvalError);
}

TEST(GcalPrinter, RoundTripIsStructurallyIdentical) {
  const Program original = hirschberg();
  const std::string printed = to_source(original);
  const Program reparsed = parse(printed);
  ASSERT_EQ(reparsed.prologue.size(), original.prologue.size());
  ASSERT_EQ(reparsed.loop.size(), original.loop.size());
  // Second round trip must be a fixed point (canonical form).
  EXPECT_EQ(to_source(reparsed), printed);
}

TEST(GcalPrinter, RoundTripPreservesSemantics) {
  // The reprinted program must *execute* identically.
  const graph::Graph g = graph::make_named("gnp:0.3", 9, 5);
  const GcalRunResult a = run_gcal(hirschberg_gcal_source(), g);
  const GcalRunResult b = run_gcal(to_source(hirschberg()), g);
  EXPECT_EQ(a.labels, b.labels);
  EXPECT_EQ(a.generations, b.generations);
}

TEST(GcalPrinter, ParenthesisationRespectsPrecedence) {
  const Program p = parse(R"(
program prec
generation g:
  active (1 + 2) * 3 == 9 && !bottom
  d = col % (2 << sub)
)");
  const std::string printed = to_source(p);
  EXPECT_NE(printed.find("(1 + 2) * 3"), std::string::npos);
  EXPECT_NE(printed.find("col % (2 << sub)"), std::string::npos);
  // Re-parse and re-print: stable.
  EXPECT_EQ(to_source(parse(printed)), printed);
}

TEST(GcalAnalyzer, TreeProgramIsProvablyCongestionOne) {
  // The headline property of the tree variant, established purely by
  // static analysis of its gcal source: every static generation has max
  // congestion exactly 1.
  const Program tree = parse(hirschberg_tree_gcal_source());
  for (std::size_t n : {4u, 8u, 11u, 16u}) {
    const ProgramAnalysis analysis = analyze(tree, n);
    EXPECT_EQ(analysis.static_max_congestion, 1u) << "n=" << n;
    // And the baseline program is n+1 at the same sizes.
    EXPECT_EQ(analyze(hirschberg(), n).static_max_congestion, n + 1)
        << "n=" << n;
  }
}

TEST(GcalAnalyzer, TreeProgramHardwareEstimateIsComparable) {
  // The tree variant trades the baseline's two D_N mask reads for ring
  // hops (one mux input per ring) and turns the masks into local logic, so
  // its *modelled* mux area is marginally below the baseline's.  The cost
  // model deliberately charges multiplexers and the shared d/a registers
  // only — the tree variant's extra e register per cell is a known,
  // documented omission (~1 data-width per cell more in reality).
  const Program tree = parse(hirschberg_tree_gcal_source());
  const Program base = hirschberg();
  const hw::SynthesisEstimate t = estimate_program(tree, 16);
  const hw::SynthesisEstimate b = estimate_program(base, 16);
  EXPECT_NEAR(static_cast<double>(t.logic_elements),
              static_cast<double>(b.logic_elements),
              0.10 * static_cast<double>(b.logic_elements));
  EXPECT_EQ(t.register_bits, b.register_bits);  // e not modelled
  EXPECT_EQ(t.cells, b.cells);
}

TEST(GcalPrinter, TreeProgramRoundTrips) {
  const Program original = parse(hirschberg_tree_gcal_source());
  const std::string printed = to_source(original);
  const Program reparsed = parse(printed);
  EXPECT_EQ(to_source(reparsed), printed);
  EXPECT_NE(printed.find("repeat rows"), std::string::npos);
  EXPECT_NE(printed.find("e = "), std::string::npos);
}

TEST(GcalAnalyzer, PointerClassToString) {
  EXPECT_STREQ(to_string(PointerClass::kNone), "none");
  EXPECT_STREQ(to_string(PointerClass::kStatic), "static");
  EXPECT_STREQ(to_string(PointerClass::kDataDependent), "data-dependent");
}

// --- active-clause lowering (ISSUE 4) -----------------------------------

/// Finds a loop generation of the embedded Hirschberg program by name.
const GenerationDef& loop_generation(const Program& p, const char* name) {
  for (const GenerationDef& g : p.loop) {
    if (g.name == name) return g;
  }
  throw std::runtime_error(std::string("no generation ") + name);
}

TEST(GcalLowering, RowMinClauseLowersToTheExactStridedRegion) {
  const Program p = hirschberg();
  const std::size_t n = 8;
  // active square && (col % (2 << sub)) == 0 && col + (1 << sub) < n
  const Expr& active = *loop_generation(p, "row_min").active;
  EXPECT_EQ(lower_active_region(active, n, 0),
            (gca::ActiveRegion{0, 8, 0, 7, 2, 8}));
  EXPECT_EQ(lower_active_region(active, n, 1),
            (gca::ActiveRegion{0, 8, 0, 6, 4, 8}));
  EXPECT_EQ(lower_active_region(active, n, 2).count(), 8u);  // n/8 per row
  // sub = 3: 1 << 3 = 8 >= n, no column survives -> empty region.
  EXPECT_EQ(lower_active_region(active, n, 3).count(), 0u);
}

TEST(GcalLowering, PositionalClausesLowerToTheirClosedFormCounts) {
  const Program p = hirschberg();
  const std::size_t n = 8;
  const auto count = [&](const char* name) {
    return lower_active_region(*loop_generation(p, name).active, n, 0)
        .count();
  };
  EXPECT_EQ(lower_active_region(*p.prologue.front().active, n, 0).count(),
            n * (n + 1));                      // init: all
  EXPECT_EQ(count("copy_c"), n * (n + 1));     // all
  EXPECT_EQ(count("mask_neighbors"), n * n);   // square
  EXPECT_EQ(count("fallback_c"), n);           // square && col == 0
  EXPECT_EQ(count("adopt"), n * (n + 1));      // all
  EXPECT_EQ(count("jump"), n);                 // square && col == 0
}

TEST(GcalLowering, UnanalysableClauseFallsBackToTheWholeField) {
  // The tree variant's ring conditions mix row and col through a modulus —
  // outside the matcher's fragment, so the lowering must stay conservative.
  const Program tree = parse(hirschberg_tree_gcal_source());
  const std::size_t n = 8;
  const Expr& ring = *loop_generation(tree, "b1_double").active;
  EXPECT_EQ(lower_active_region(ring, n, 0).count(), n * (n + 1));
  // And a diagonal (row == col) is equally out of fragment.
  const Expr& seed = *loop_generation(tree, "b1_seed").active;
  EXPECT_EQ(lower_active_region(seed, n, 0).count(), n * n);  // square only
}

TEST(GcalLowering, ContradictoryBoundsLowerToTheEmptyRegion) {
  const Program p = parse(
      "program shrunk\n"
      "generation never:\n"
      "  active square && col == n\n"
      "  d = 0\n");
  EXPECT_EQ(lower_active_region(*p.prologue.front().active, 8, 0).count(),
            0u);
}

TEST(GcalLowering, LoweredRegionsAreSupersetsOfTheEvaluatedClause) {
  // Ground truth by brute force: every cell where the clause evaluates
  // nonzero must be enumerated by the lowered region — for every generation
  // of both embedded programs and every sub-generation at n = 8.
  const std::size_t n = 8;
  const gca::FieldGeometry geometry = gca::FieldGeometry::hirschberg(n);
  for (const Program& p :
       {hirschberg(), parse(hirschberg_tree_gcal_source())}) {
    std::vector<const GenerationDef*> generations;
    for (const GenerationDef& g : p.prologue) generations.push_back(&g);
    for (const GenerationDef& g : p.loop) generations.push_back(&g);
    for (const GenerationDef* g : generations) {
      if (references_state(*g->active)) continue;  // positional clauses only
      for (std::size_t sub = 0; sub < 4; ++sub) {
        const gca::ActiveRegion region =
            lower_active_region(*g->active, n, sub);
        std::vector<bool> in_region(geometry.size(), false);
        region.for_each(0, region.count(),
                        [&](std::size_t i) { in_region[i] = true; });
        for (std::size_t i = 0; i < geometry.size(); ++i) {
          EvalContext ctx;
          ctx.n = n;
          ctx.index = i;
          ctx.row = geometry.row(i);
          ctx.col = geometry.col(i);
          ctx.sub = sub;
          if (evaluate(*g->active, ctx) != 0) {
            EXPECT_TRUE(in_region[i])
                << p.name << "/" << g->name << " sub " << sub << " cell " << i;
          }
        }
      }
    }
  }
}

}  // namespace
}  // namespace gcalib::gcal
