#include "gcal/analyzer.hpp"

#include <gtest/gtest.h>

#include "core/access_pattern.hpp"
#include "core/schedule.hpp"
#include "gcal/interpreter.hpp"
#include "gcal/parser.hpp"
#include "graph/generators.hpp"

namespace gcalib::gcal {
namespace {

Program hirschberg() { return parse(hirschberg_gcal_source()); }

TEST(GcalAnalyzer, ClassifiesPointers) {
  const Program p = hirschberg();
  const ProgramAnalysis analysis = analyze(p, 8);
  ASSERT_EQ(analysis.generations.size(), 12u);
  // init has no pointer; jump/final_min are data-dependent; the rest static.
  EXPECT_EQ(analysis.generations[0].pointer_class, PointerClass::kNone);
  std::size_t dynamic = 0, statics = 0;
  for (const GenerationAnalysis& g : analysis.generations) {
    if (g.pointer_class == PointerClass::kDataDependent) ++dynamic;
    if (g.pointer_class == PointerClass::kStatic) ++statics;
  }
  EXPECT_EQ(dynamic, 2u);  // jump, final_min
  EXPECT_EQ(statics, 9u);
}

TEST(GcalAnalyzer, ActiveCellCountsMatchDeclarativeSpec) {
  // The analyzer's first-sub-generation activity counts must equal the
  // hand-written closed forms in core/access_pattern.hpp.
  const std::size_t n = 8;
  const ProgramAnalysis analysis = analyze(hirschberg(), n);
  using core::Generation;
  const Generation order[] = {
      Generation::kInit,        Generation::kCopyCToRows,
      Generation::kMaskNeighbors, Generation::kRowMin,
      Generation::kFallback,    Generation::kCopyTToRows,
      Generation::kMaskMembers, Generation::kRowMin2,
      Generation::kFallback2,   Generation::kAdopt,
      Generation::kPointerJump, Generation::kFinalMin};
  for (std::size_t i = 0; i < 12; ++i) {
    EXPECT_EQ(analysis.generations[i].active_cells_first,
              core::expected_active_cells(order[i], 0, n))
        << analysis.generations[i].name;
  }
}

TEST(GcalAnalyzer, StaticCongestionMatchesTable1) {
  const std::size_t n = 8;
  const ProgramAnalysis analysis = analyze(hirschberg(), n);
  // copy_c: n+1 readers of each column-0 cell; masks: n; row_min: 1.
  EXPECT_EQ(analysis.generations[1].max_congestion, n + 1);  // copy_c
  EXPECT_EQ(analysis.generations[2].max_congestion, n);      // mask_neighbors
  EXPECT_EQ(analysis.generations[3].max_congestion, 1u);     // row_min
  EXPECT_EQ(analysis.generations[4].max_congestion, 1u);     // fallback
  EXPECT_EQ(analysis.generations[9].max_congestion, n + 1);  // adopt
  EXPECT_EQ(analysis.static_max_congestion, n + 1);
}

TEST(GcalAnalyzer, ExtendedCellsMatchDeclarativeSpec) {
  const std::size_t n = 6;
  const ProgramAnalysis analysis = analyze(hirschberg(), n);
  for (const hw::CellPortrait& cell : analysis.portrait.cells) {
    EXPECT_EQ(cell.extended, core::needs_extended_cell(cell.index, n))
        << cell.index;
  }
}

TEST(GcalAnalyzer, StaticSourcesMatchDeclarativeSpec) {
  const std::size_t n = 8;
  const ProgramAnalysis analysis = analyze(hirschberg(), n);
  for (const hw::CellPortrait& cell : analysis.portrait.cells) {
    EXPECT_EQ(cell.static_sources, core::static_source_set(cell.index, n))
        << "cell " << cell.index;
  }
}

TEST(GcalAnalyzer, ProgramEstimateMatchesNativeCostModel) {
  // Since the derived portrait equals the hand-written one, the synthesis
  // estimate from gcal source must equal hw::estimate_for — including the
  // paper datapoint at n = 16.
  const Program p = hirschberg();
  for (std::size_t n : {8u, 16u, 32u}) {
    const hw::SynthesisEstimate from_gcal = estimate_program(p, n);
    const hw::SynthesisEstimate native = hw::estimate_for(n);
    EXPECT_EQ(from_gcal.logic_elements, native.logic_elements) << n;
    EXPECT_EQ(from_gcal.register_bits, native.register_bits) << n;
    EXPECT_DOUBLE_EQ(from_gcal.fmax_mhz, native.fmax_mhz) << n;
  }
  EXPECT_EQ(estimate_program(p, 16).logic_elements, 23051u);
}

TEST(GcalAnalyzer, StateDependentActivityIsWorstCased) {
  const Program p = parse(R"(
program masked
generation g:
  active d == 0
  p = col * n
  d = dstar
)");
  const ProgramAnalysis analysis = analyze(p, 4);
  // Unknown at analysis time -> all 20 cells assumed active.
  EXPECT_EQ(analysis.generations[0].active_cells_first, 20u);
}

TEST(GcalAnalyzer, OutOfRangeStaticPointerIsRejected) {
  const Program p = parse(R"(
program bad
generation g:
  active all
  p = nn * 2
  d = dstar
)");
  EXPECT_THROW((void)analyze(p, 4), EvalError);
}

TEST(GcalPrinter, RoundTripIsStructurallyIdentical) {
  const Program original = hirschberg();
  const std::string printed = to_source(original);
  const Program reparsed = parse(printed);
  ASSERT_EQ(reparsed.prologue.size(), original.prologue.size());
  ASSERT_EQ(reparsed.loop.size(), original.loop.size());
  // Second round trip must be a fixed point (canonical form).
  EXPECT_EQ(to_source(reparsed), printed);
}

TEST(GcalPrinter, RoundTripPreservesSemantics) {
  // The reprinted program must *execute* identically.
  const graph::Graph g = graph::make_named("gnp:0.3", 9, 5);
  const GcalRunResult a = run_gcal(hirschberg_gcal_source(), g);
  const GcalRunResult b = run_gcal(to_source(hirschberg()), g);
  EXPECT_EQ(a.labels, b.labels);
  EXPECT_EQ(a.generations, b.generations);
}

TEST(GcalPrinter, ParenthesisationRespectsPrecedence) {
  const Program p = parse(R"(
program prec
generation g:
  active (1 + 2) * 3 == 9 && !bottom
  d = col % (2 << sub)
)");
  const std::string printed = to_source(p);
  EXPECT_NE(printed.find("(1 + 2) * 3"), std::string::npos);
  EXPECT_NE(printed.find("col % (2 << sub)"), std::string::npos);
  // Re-parse and re-print: stable.
  EXPECT_EQ(to_source(parse(printed)), printed);
}

TEST(GcalAnalyzer, TreeProgramIsProvablyCongestionOne) {
  // The headline property of the tree variant, established purely by
  // static analysis of its gcal source: every static generation has max
  // congestion exactly 1.
  const Program tree = parse(hirschberg_tree_gcal_source());
  for (std::size_t n : {4u, 8u, 11u, 16u}) {
    const ProgramAnalysis analysis = analyze(tree, n);
    EXPECT_EQ(analysis.static_max_congestion, 1u) << "n=" << n;
    // And the baseline program is n+1 at the same sizes.
    EXPECT_EQ(analyze(hirschberg(), n).static_max_congestion, n + 1)
        << "n=" << n;
  }
}

TEST(GcalAnalyzer, TreeProgramHardwareEstimateIsComparable) {
  // The tree variant trades the baseline's two D_N mask reads for ring
  // hops (one mux input per ring) and turns the masks into local logic, so
  // its *modelled* mux area is marginally below the baseline's.  The cost
  // model deliberately charges multiplexers and the shared d/a registers
  // only — the tree variant's extra e register per cell is a known,
  // documented omission (~1 data-width per cell more in reality).
  const Program tree = parse(hirschberg_tree_gcal_source());
  const Program base = hirschberg();
  const hw::SynthesisEstimate t = estimate_program(tree, 16);
  const hw::SynthesisEstimate b = estimate_program(base, 16);
  EXPECT_NEAR(static_cast<double>(t.logic_elements),
              static_cast<double>(b.logic_elements),
              0.10 * static_cast<double>(b.logic_elements));
  EXPECT_EQ(t.register_bits, b.register_bits);  // e not modelled
  EXPECT_EQ(t.cells, b.cells);
}

TEST(GcalPrinter, TreeProgramRoundTrips) {
  const Program original = parse(hirschberg_tree_gcal_source());
  const std::string printed = to_source(original);
  const Program reparsed = parse(printed);
  EXPECT_EQ(to_source(reparsed), printed);
  EXPECT_NE(printed.find("repeat rows"), std::string::npos);
  EXPECT_NE(printed.find("e = "), std::string::npos);
}

TEST(GcalAnalyzer, PointerClassToString) {
  EXPECT_STREQ(to_string(PointerClass::kNone), "none");
  EXPECT_STREQ(to_string(PointerClass::kStatic), "static");
  EXPECT_STREQ(to_string(PointerClass::kDataDependent), "data-dependent");
}

}  // namespace
}  // namespace gcalib::gcal
