// Status taxonomy: code <-> string round trips, ok() semantics, and the
// service codes the gcad protocol depends on.
#include "common/status.hpp"

#include <set>
#include <string>

#include "gtest/gtest.h"

namespace gcalib {
namespace {

TEST(StatusTest, DefaultIsOk) {
  const Status status;
  EXPECT_TRUE(status.ok());
  EXPECT_EQ(status.code, StatusCode::kOk);
  EXPECT_TRUE(status.message.empty());
  EXPECT_EQ(status.to_string(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  const Status status =
      Status::error(StatusCode::kDataLoss, "CRC mismatch in header");
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code, StatusCode::kDataLoss);
  EXPECT_EQ(status.to_string(), "DATA_LOSS: CRC mismatch in header");
}

TEST(StatusTest, ErrorWithEmptyMessageRendersCodeOnly) {
  const Status status = Status::error(StatusCode::kInternal, "");
  EXPECT_EQ(status.to_string(), "INTERNAL");
}

TEST(StatusTest, EveryCodeRoundTripsThroughItsName) {
  for (const StatusCode code : kAllStatusCodes) {
    const char* name = to_string(code);
    StatusCode decoded = StatusCode::kInternal;
    ASSERT_TRUE(status_code_from_string(name, decoded)) << name;
    EXPECT_EQ(decoded, code) << name;
  }
}

TEST(StatusTest, NamesAreUniqueAndNeverUnknown) {
  std::set<std::string> names;
  for (const StatusCode code : kAllStatusCodes) {
    const std::string name = to_string(code);
    EXPECT_NE(name, "UNKNOWN");
    EXPECT_TRUE(names.insert(name).second) << "duplicate name " << name;
  }
  EXPECT_EQ(names.size(), std::size(kAllStatusCodes));
}

TEST(StatusTest, UnknownSpellingIsRejectedAndLeavesOutUntouched) {
  StatusCode out = StatusCode::kDataLoss;
  EXPECT_FALSE(status_code_from_string("NO_SUCH_CODE", out));
  EXPECT_FALSE(status_code_from_string("", out));
  EXPECT_FALSE(status_code_from_string("ok", out));  // case-sensitive
  EXPECT_EQ(out, StatusCode::kDataLoss);
}

TEST(StatusTest, ServiceCodesExist) {
  // The admission-control codes added for gcad (DESIGN.md §11).
  StatusCode decoded = StatusCode::kOk;
  ASSERT_TRUE(status_code_from_string("RESOURCE_EXHAUSTED", decoded));
  EXPECT_EQ(decoded, StatusCode::kResourceExhausted);
  ASSERT_TRUE(status_code_from_string("UNAVAILABLE", decoded));
  EXPECT_EQ(decoded, StatusCode::kUnavailable);
  EXPECT_FALSE(Status::error(StatusCode::kResourceExhausted, "full").ok());
  EXPECT_FALSE(Status::error(StatusCode::kUnavailable, "draining").ok());
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  const Status a = Status::error(StatusCode::kNotFound, "x");
  const Status b = Status::error(StatusCode::kNotFound, "x");
  const Status c = Status::error(StatusCode::kNotFound, "y");
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  EXPECT_NE(a, Status{});
}

}  // namespace
}  // namespace gcalib
