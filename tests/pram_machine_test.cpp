#include "pram/machine.hpp"

#include <gtest/gtest.h>

namespace gcalib::pram {
namespace {

TEST(PramMachine, HostLoadStore) {
  Machine m(8, AccessMode::kCrew);
  m.store(3, 42);
  EXPECT_EQ(m.load(3), 42);
  EXPECT_EQ(m.load(0), 0);
}

TEST(PramMachine, AllocAssignsDisjointRegions) {
  Machine m(10, AccessMode::kCrew);
  const ArrayRef a = m.alloc("a", 4);
  const ArrayRef b = m.alloc("b", 6);
  EXPECT_EQ(a.base, 0u);
  EXPECT_EQ(b.base, 4u);
  EXPECT_EQ(a.at(3), 3u);
  EXPECT_EQ(b.at(0), 4u);
  EXPECT_THROW((void)a.at(4), ContractViolation);
}

TEST(PramMachine, AllocExhaustionThrows) {
  Machine m(4, AccessMode::kCrew);
  (void)m.alloc("a", 3);
  EXPECT_THROW((void)m.alloc("b", 2), ContractViolation);
}

TEST(PramMachine, StepWritesCommitAtBoundary) {
  Machine m(4, AccessMode::kCrew);
  m.step(4, [](Processor& p) { p.write(p.id(), static_cast<Word>(p.id() * 10)); });
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(m.load(i), static_cast<Word>(i * 10));
  }
}

TEST(PramMachine, ReadsSeeSnapshotNotPendingWrites) {
  Machine m(2, AccessMode::kCrew);
  m.store(0, 1);
  m.store(1, 2);
  // Processors swap the two cells; both reads must see pre-step values.
  m.step(2, [](Processor& p) {
    const Word other = p.read(1 - p.id());
    p.write(p.id(), other);
  });
  EXPECT_EQ(m.load(0), 2);
  EXPECT_EQ(m.load(1), 1);
}

TEST(PramMachine, SynchronousPointerJumpSemantics) {
  // C = [1, 2, 3, 3]; one synchronous C(i) <- C(C(i)) gives [2, 3, 3, 3].
  Machine m(4, AccessMode::kCrew);
  const Word init[] = {1, 2, 3, 3};
  for (std::size_t i = 0; i < 4; ++i) m.store(i, init[i]);
  m.step(4, [](Processor& p) {
    const Word ci = p.read(p.id());
    p.write(p.id(), p.read(static_cast<std::size_t>(ci)));
  });
  EXPECT_EQ(m.load(0), 2);
  EXPECT_EQ(m.load(1), 3);
  EXPECT_EQ(m.load(2), 3);
  EXPECT_EQ(m.load(3), 3);
}

TEST(PramMachine, CrewAllowsConcurrentReads) {
  Machine m(4, AccessMode::kCrew);
  m.store(0, 5);
  EXPECT_NO_THROW(m.step(4, [](Processor& p) {
    const Word v = p.read(0);
    p.write(p.id(), v);
  }));
}

TEST(PramMachine, ErewRejectsConcurrentReads) {
  Machine m(4, AccessMode::kErew);
  EXPECT_THROW(m.step(2,
                      [](Processor& p) {
                        (void)p.read(0);
                        p.write(p.id(), 0);
                      }),
               AccessViolation);
}

TEST(PramMachine, ErewAllowsSameProcessorReRead) {
  Machine m(4, AccessMode::kErew);
  EXPECT_NO_THROW(m.step(1, [](Processor& p) {
    (void)p.read(2);
    (void)p.read(2);
  }));
}

TEST(PramMachine, CrewRejectsWriteConflict) {
  Machine m(4, AccessMode::kCrew);
  EXPECT_THROW(m.step(2, [](Processor& p) { p.write(0, static_cast<Word>(p.id())); }),
               AccessViolation);
}

TEST(PramMachine, CrowEnforcesOwnership) {
  Machine m(4, AccessMode::kCrow);
  m.set_owner(0, 0);
  EXPECT_THROW(m.step(2,
                      [](Processor& p) {
                        if (p.id() == 1) p.write(0, 9);
                      }),
               AccessViolation);
}

TEST(PramMachine, CrowAllowsOwnerWrite) {
  Machine m(4, AccessMode::kCrow);
  for (std::size_t i = 0; i < 4; ++i) m.set_owner(i, i);
  EXPECT_NO_THROW(
      m.step(4, [](Processor& p) { p.write(p.id(), static_cast<Word>(p.id())); }));
  EXPECT_EQ(m.load(3), 3);
}

TEST(PramMachine, CrcwPriorityLowestIdWins) {
  Machine m(1, AccessMode::kCrcwPriority);
  m.step(4, [](Processor& p) { p.write(0, static_cast<Word>(100 + p.id())); });
  EXPECT_EQ(m.load(0), 100);
}

TEST(PramMachine, CrcwMinCombines) {
  Machine m(1, AccessMode::kCrcwMin);
  m.step(4, [](Processor& p) { p.write(0, static_cast<Word>(50 - p.id())); });
  EXPECT_EQ(m.load(0), 47);
}

TEST(PramMachine, StatsAccumulate) {
  Machine m(8, AccessMode::kCrew);
  m.step(4, [](Processor& p) {
    (void)p.read(0);
    p.write(p.id() + 4, 1);
  });
  m.step(2, [](Processor& p) { (void)p.read(p.id()); });
  const MachineStats& stats = m.stats();
  EXPECT_EQ(stats.steps, 2u);
  EXPECT_EQ(stats.work, 6u);
  EXPECT_EQ(stats.reads, 6u);
  EXPECT_EQ(stats.writes, 4u);
  EXPECT_EQ(stats.max_read_congestion, 4u);  // 4 readers of cell 0 in step 1
  ASSERT_EQ(m.history().size(), 2u);
  EXPECT_EQ(m.history()[0].processors, 4u);
  EXPECT_EQ(m.history()[1].processors, 2u);
}

TEST(PramMachine, SameProcessorReReadCountsOnce) {
  Machine m(2, AccessMode::kCrew);
  m.step(1, [](Processor& p) {
    (void)p.read(0);
    (void)p.read(0);
  });
  EXPECT_EQ(m.stats().reads, 1u);
  EXPECT_EQ(m.stats().max_read_congestion, 1u);
}

TEST(PramMachine, ResetStatsKeepsMemory) {
  Machine m(2, AccessMode::kCrew);
  m.store(1, 7);
  m.step(1, [](Processor& p) { (void)p.read(1); });
  m.reset_stats();
  EXPECT_EQ(m.stats().steps, 0u);
  EXPECT_TRUE(m.history().empty());
  EXPECT_EQ(m.load(1), 7);
}

TEST(PramMachine, LabelsRecordedInHistory) {
  Machine m(1, AccessMode::kCrew);
  m.step(1, [](Processor&) {}, "hello");
  EXPECT_EQ(m.history()[0].label, "hello");
}

TEST(PramMachine, ReadOutsideStepThrows) {
  Machine m(2, AccessMode::kCrew);
  // Processor handles cannot be constructed externally; accessing memory
  // outside step() is only possible via load/store, which are host-side.
  // This test documents that nested steps are rejected instead.
  EXPECT_THROW(m.step(1,
                      [&m](Processor&) {
                        m.step(1, [](Processor&) {});
                      }),
               ContractViolation);
}

TEST(PramMachine, ToStringCoversAllModes) {
  EXPECT_STREQ(to_string(AccessMode::kErew), "EREW");
  EXPECT_STREQ(to_string(AccessMode::kCrew), "CREW");
  EXPECT_STREQ(to_string(AccessMode::kCrow), "CROW");
  EXPECT_STREQ(to_string(AccessMode::kCrcwPriority), "CRCW-priority");
  EXPECT_STREQ(to_string(AccessMode::kCrcwArbitrary), "CRCW-arbitrary");
  EXPECT_STREQ(to_string(AccessMode::kCrcwMin), "CRCW-min");
}

}  // namespace
}  // namespace gcalib::pram
