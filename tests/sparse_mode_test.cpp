// Sparse-mode equivalence suite (DESIGN.md §14): the concurrent CAS-min
// labeling path (async, with and without frontier worklists) must produce
// exactly the same canonical min-node-id labeling as the double-buffered
// synchronous reference on every graph family, every execution backend and
// every thread count — and must honour cancellation mid-flight.
//
// The family list targets the partitioner's worst cases: a star (all arcs
// in one row — count-equal vertex splits starve every lane but one), a
// path (maximum hook/jump round count), two cliques joined by one bridge
// (a single inter-lane arc decides the final labels), and random G(n, m)
// as the unstructured control, all checked against the union-find oracle.
#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "core/cc_solver.hpp"
#include "core/hirschberg_gca.hpp"
#include "gca/cancel.hpp"
#include "gcad/latency.hpp"
#include "graph/csr_graph.hpp"
#include "graph/generators.hpp"
#include "graph/graph.hpp"
#include "graph/union_find.hpp"

namespace gcalib::core {
namespace {

struct Backend {
  const char* name;
  gca::ExecutionPolicy policy;
  unsigned threads;
};

// The {1, 2, 4, 7} thread matrix: 7 is deliberately not a divisor of the
// field sizes in play, so arc-chunk boundary bugs cannot hide behind even
// partitions.
const Backend kBackends[] = {
    {"sequential", gca::ExecutionPolicy::kSequential, 1},
    {"spawn x2", gca::ExecutionPolicy::kSpawn, 2},
    {"spawn x4", gca::ExecutionPolicy::kSpawn, 4},
    {"spawn x7", gca::ExecutionPolicy::kSpawn, 7},
    {"pool x2", gca::ExecutionPolicy::kPool, 2},
    {"pool x4", gca::ExecutionPolicy::kPool, 4},
    {"pool x7", gca::ExecutionPolicy::kPool, 7},
};

struct Mode {
  const char* name;
  gca::SparseMode sparse_mode;
  double sparse_frontier;
};

// sparse_frontier = 0 disables worklists entirely (every async round is a
// full arc sweep); 1.0 switches to the frontier sweep as soon as round 0
// completes.  Covering both extremes plus sync covers every code path.
const Mode kModes[] = {
    {"sync", gca::SparseMode::kSync, 0.35},
    {"async dense", gca::SparseMode::kAsync, 0.0},
    {"async frontier", gca::SparseMode::kAsync, 1.0},
};

/// Two k-cliques bridged by a single edge: the whole right clique's final
/// label is decided by one arc, so a partition that mishandles exactly one
/// chunk boundary shows up as a split component.
graph::Graph two_cliques_bridge(graph::NodeId k) {
  graph::Graph g(2 * k);
  for (graph::NodeId a = 0; a < k; ++a) {
    for (graph::NodeId b = a + 1; b < k; ++b) {
      g.add_edge(a, b);
      g.add_edge(k + a, k + b);
    }
  }
  g.add_edge(k - 1, k);
  return g;
}

std::vector<graph::NodeId> solve_with(const graph::CsrGraph& csr,
                                      const Mode& mode,
                                      const Backend& backend) {
  RunOptions options;
  options.instrument = false;
  options.threads = backend.threads;
  options.policy = backend.policy;
  options.sparse_mode = mode.sparse_mode;
  options.sparse_frontier = mode.sparse_frontier;
  return sparse_cc_solver().solve(SolverInput(csr), options).labels;
}

TEST(SparseModeEquivalence, AllModesMatchOracleOnEveryFamilyAndBackend) {
  const struct {
    const char* name;
    graph::Graph g;
  } families[] = {
      {"star", graph::star(2049)},
      {"path", graph::make_named("path", 2048, 0)},
      {"two-cliques-bridge", two_cliques_bridge(40)},
      {"gnm", graph::random_gnm(3072, 6144, 91)},
  };
  for (const auto& family : families) {
    const graph::CsrGraph csr = graph::CsrGraph::from_graph(family.g);
    const std::vector<graph::NodeId> oracle =
        graph::union_find_components(family.g);
    for (const Mode& mode : kModes) {
      for (const Backend& backend : kBackends) {
        EXPECT_EQ(solve_with(csr, mode, backend), oracle)
            << family.name << " / " << mode.name << " / " << backend.name;
      }
    }
  }
}

TEST(SparseModeEquivalence, ComponentCountsAgreeWithTheOracle) {
  const graph::Graph g = graph::random_gnm(2048, 1024, 7);  // many components
  const graph::CsrGraph csr = graph::CsrGraph::from_graph(g);
  graph::UnionFind oracle(g.node_count());
  for (const auto& [u, v] : g.edges()) oracle.unite(u, v);
  for (const Mode& mode : kModes) {
    RunOptions options;
    options.instrument = false;
    options.threads = 4;
    options.policy = gca::ExecutionPolicy::kPool;
    options.sparse_mode = mode.sparse_mode;
    options.sparse_frontier = mode.sparse_frontier;
    const QueryResult result = sparse_cc_solver().solve(SolverInput(csr), options);
    EXPECT_EQ(result.components, oracle.set_count()) << mode.name;
  }
}

TEST(SparseModeEquivalence, SelfCheckPassesInEveryMode) {
  const graph::CsrGraph csr =
      graph::CsrGraph::from_graph(graph::random_gnm(512, 1024, 17));
  for (const Mode& mode : kModes) {
    RunOptions options;
    options.self_check = true;
    options.threads = 4;
    options.policy = gca::ExecutionPolicy::kPool;
    options.sparse_mode = mode.sparse_mode;
    options.sparse_frontier = mode.sparse_frontier;
    EXPECT_NO_THROW((void)sparse_cc_solver().solve(SolverInput(csr), options))
        << mode.name;
  }
}

TEST(SparseModeEquivalence, TinyGraphsInEveryExplicitMode) {
  for (const graph::NodeId n : {0u, 1u, 2u, 3u}) {
    graph::Graph g(n);
    if (n >= 2) g.add_edge(0, 1);
    const std::vector<graph::NodeId> oracle = graph::union_find_components(g);
    const graph::CsrGraph csr = graph::CsrGraph::from_graph(g);
    for (const Mode& mode : kModes) {
      EXPECT_EQ(solve_with(csr, mode, kBackends[0]), oracle)
          << "n=" << n << " " << mode.name;
      EXPECT_EQ(solve_with(csr, mode, kBackends[4]), oracle)
          << "n=" << n << " " << mode.name;
    }
  }
}

/// kAuto is observable through instrumentation: the synchronous reference
/// emits "hook#…" sweeps, the concurrent path emits "cas-hook#…".
TEST(SparseModeEquivalence, AutoPicksSyncSequentiallyAndAsyncInParallel) {
  const graph::CsrGraph csr =
      graph::CsrGraph::from_graph(graph::random_gnm(256, 512, 23));

  RunOptions sequential;
  sequential.instrument = true;
  sequential.sparse_mode = gca::SparseMode::kAuto;
  const QueryResult seq_result =
      sparse_cc_solver().solve(SolverInput(csr), sequential);
  ASSERT_FALSE(seq_result.sweeps.empty());
  EXPECT_EQ(seq_result.sweeps[0].label.rfind("hook#", 0), 0u);

  RunOptions parallel;
  parallel.instrument = true;
  parallel.sparse_mode = gca::SparseMode::kAuto;
  parallel.threads = 4;
  parallel.policy = gca::ExecutionPolicy::kPool;
  const QueryResult par_result =
      sparse_cc_solver().solve(SolverInput(csr), parallel);
  ASSERT_FALSE(par_result.sweeps.empty());
  EXPECT_EQ(par_result.sweeps[0].label.rfind("cas-hook#", 0), 0u);
  EXPECT_EQ(par_result.labels, seq_result.labels);
}

TEST(SparseModeEquivalence, FrontierRoundsActivateOnlyWhenEnabled) {
  // Whether a given round's change count clears the frontier threshold
  // depends on the CAS interleaving, so this runs the async path on the
  // *sequential* backend — one lane is deterministic: a path cascades to
  // its minimum in round 0 (n - 1 changes <= n), making round 1 a frontier
  // round exactly when worklists are enabled.
  const graph::CsrGraph csr =
      graph::CsrGraph::from_graph(graph::make_named("path", 1024, 0));
  const auto count_frontier_sweeps = [&](double fraction) {
    RunOptions options;
    options.instrument = true;
    options.sparse_mode = gca::SparseMode::kAsync;
    options.sparse_frontier = fraction;
    const QueryResult result =
        sparse_cc_solver().solve(SolverInput(csr), options);
    std::size_t frontier_sweeps = 0;
    for (const auto& sweep : result.sweeps) {
      if (sweep.label.rfind("cas-hook-frontier#", 0) == 0) ++frontier_sweeps;
    }
    return frontier_sweeps;
  };
  EXPECT_GT(count_frontier_sweeps(1.0), 0u);
  EXPECT_EQ(count_frontier_sweeps(0.0), 0u);
}

TEST(SparseAsyncCancel, PreTrippedTokenAbortsBeforeAnyWork) {
  const graph::CsrGraph csr =
      graph::CsrGraph::from_graph(graph::random_gnm(1024, 2048, 3));
  gca::CancelToken token;
  token.request_cancel();
  RunOptions options;
  options.instrument = false;
  options.cancel = &token;
  options.threads = 4;
  options.policy = gca::ExecutionPolicy::kPool;
  options.sparse_mode = gca::SparseMode::kAsync;
  EXPECT_THROW((void)sparse_cc_solver().solve(SolverInput(csr), options),
               gca::Cancelled);
}

TEST(SparseAsyncCancel, MidRunCancellationIsHonouredOrHarmless) {
  // Trip the token from a second thread while the async solve is in
  // flight.  The race is inherent — the solve may finish first — so both
  // outcomes are accepted, but a cancelled run must abort via
  // gca::Cancelled (within the ~4096-arc poll budget) and a completed run
  // must still match the oracle exactly.
  for (const std::uint64_t seed : {201u, 202u, 203u}) {
    const graph::Graph g = graph::random_gnm(4096, 8192, seed);
    const std::vector<graph::NodeId> oracle = graph::union_find_components(g);
    const graph::CsrGraph csr = graph::CsrGraph::from_graph(g);
    for (const double fraction : {0.0, 1.0}) {
      gca::CancelToken token;
      RunOptions options;
      options.instrument = false;
      options.cancel = &token;
      options.threads = 4;
      options.policy = gca::ExecutionPolicy::kPool;
      options.sparse_mode = gca::SparseMode::kAsync;
      options.sparse_frontier = fraction;
      std::atomic<bool> go{false};
      std::thread tripper([&] {
        while (!go.load(std::memory_order_acquire)) {}
        token.request_cancel();
      });
      bool cancelled = false;
      std::vector<graph::NodeId> labels;
      try {
        go.store(true, std::memory_order_release);
        labels = sparse_cc_solver().solve(SolverInput(csr), options).labels;
      } catch (const gca::Cancelled&) {
        cancelled = true;
      }
      tripper.join();
      if (!cancelled) {
        EXPECT_EQ(labels, oracle)
            << "seed " << seed << " frontier " << fraction;
      }
    }
  }
}

TEST(SparseModeRouting, AutoSubstrateNarrowsTheDenseWindowWithThreads) {
  // With 1 thread the 3-arg overload is the classic heuristic; with more
  // threads the sparse path gets the concurrent labeling speedup, so a
  // graph dense enough for the field at 1 thread can route sparse at 8.
  const graph::NodeId n = 128;
  const std::size_t quarter = (std::size_t{n} * n + 7) / 8;  // p = 1 boundary
  EXPECT_EQ(auto_substrate(n, quarter, 1), gca::SubstrateMode::kDense);
  EXPECT_EQ(auto_substrate(n, quarter, 8), gca::SubstrateMode::kSparseCsr);
  // p = 1 + (8 - 1) / 2 = 4: four times the arcs wins dense back.
  EXPECT_EQ(auto_substrate(n, 4 * quarter, 8), gca::SubstrateMode::kDense);
  // The 2-arg form and threads = 1 must agree exactly.
  for (const graph::NodeId size : {16u, 100u, 512u, 513u}) {
    for (const std::size_t m : {std::size_t{0}, quarter, 4 * quarter}) {
      EXPECT_EQ(auto_substrate(size, m), auto_substrate(size, m, 1))
          << "n=" << size << " m=" << m;
    }
  }
  // threads = 0 is treated as 1, not wrapped.
  EXPECT_EQ(auto_substrate(n, quarter, 0), auto_substrate(n, quarter, 1));
}

TEST(SparseModeRouting, ColdSparseEstimatesScaleWithSolverThreads) {
  using gcad::LatencyModel;
  EXPECT_DOUBLE_EQ(LatencyModel::effective_parallelism(1), 1.0);
  EXPECT_DOUBLE_EQ(LatencyModel::effective_parallelism(8), 4.5);

  LatencyModel single;
  LatencyModel parallel;
  parallel.set_solver_threads(8);
  const std::uint32_t n = 4096;
  const std::size_t m = 8192;
  const std::int64_t cold_single =
      single.estimate_ns(gca::SubstrateMode::kSparseCsr, n, m);
  const std::int64_t cold_parallel =
      parallel.estimate_ns(gca::SubstrateMode::kSparseCsr, n, m);
  // Cold sparse estimates divide by the effective parallelism…
  EXPECT_NEAR(static_cast<double>(cold_single) /
                  static_cast<double>(cold_parallel),
              LatencyModel::effective_parallelism(8), 0.01);
  // …dense estimates do not (the field sweep is not on the CAS-min path)…
  EXPECT_EQ(single.estimate_ns(gca::SubstrateMode::kDense, n, m),
            parallel.estimate_ns(gca::SubstrateMode::kDense, n, m));
  // …and warm estimates are learned from observed (already-parallel) wall
  // times, so they are not scaled again.
  single.record(gca::SubstrateMode::kSparseCsr, n, m, 5'000'000);
  parallel.record(gca::SubstrateMode::kSparseCsr, n, m, 5'000'000);
  EXPECT_EQ(single.estimate_ns(gca::SubstrateMode::kSparseCsr, n, m),
            parallel.estimate_ns(gca::SubstrateMode::kSparseCsr, n, m));
}

}  // namespace
}  // namespace gcalib::core
