#include "graph/labeling.hpp"

#include <gtest/gtest.h>

#include "graph/cc_baselines.hpp"
#include "graph/generators.hpp"

namespace gcalib::graph {
namespace {

TEST(Labeling, ComponentCount) {
  EXPECT_EQ(component_count({0, 0, 2, 2, 2, 5}), 3u);
  EXPECT_EQ(component_count({1, 1, 1}), 1u);
  EXPECT_EQ(component_count({}), 0u);
}

TEST(Labeling, CanonicalizeMinIdempotent) {
  const std::vector<NodeId> labels = {0, 0, 2, 2};
  EXPECT_EQ(canonicalize_min(labels), labels);
}

TEST(Labeling, CanonicalizeArbitraryLabels) {
  // Partition {0,2} {1,3} under labels 9/7 -> minima 0/1.
  EXPECT_EQ(canonicalize_min({9, 7, 9, 7}), (std::vector<NodeId>{0, 1, 0, 1}));
}

TEST(Labeling, SamePartitionIgnoresLabelNames) {
  EXPECT_TRUE(same_partition({5, 5, 8}, {1, 1, 0}));
  EXPECT_FALSE(same_partition({0, 0, 2}, {0, 1, 2}));
  EXPECT_FALSE(same_partition({0, 0}, {0, 0, 0}));
}

TEST(Labeling, ValidMinLabelingAccepts) {
  const Graph g = disjoint_cliques({2, 3});
  EXPECT_TRUE(is_valid_min_labeling(g, {0, 0, 2, 2, 2}));
}

TEST(Labeling, ValidMinLabelingRejectsWrongConvention) {
  const Graph g = disjoint_cliques({2, 3});
  // Correct partition, wrong representatives.
  EXPECT_FALSE(is_valid_min_labeling(g, {1, 1, 2, 2, 2}));
}

TEST(Labeling, ValidMinLabelingRejectsSplitComponent) {
  const Graph g = path(4);
  EXPECT_FALSE(is_valid_min_labeling(g, {0, 0, 2, 2}));
}

TEST(Labeling, ValidMinLabelingRejectsMergedComponents) {
  const Graph g = disjoint_cliques({2, 2});
  EXPECT_FALSE(is_valid_min_labeling(g, {0, 0, 0, 0}));
}

TEST(Labeling, ValidMinLabelingRejectsWrongSize) {
  EXPECT_FALSE(is_valid_min_labeling(path(4), {0, 0, 0}));
}

TEST(Labeling, ComponentSizes) {
  const auto sizes = component_sizes({0, 0, 2, 2, 2, 5});
  ASSERT_EQ(sizes.size(), 3u);
  EXPECT_EQ(sizes[0], (std::pair<NodeId, NodeId>{0, 2}));
  EXPECT_EQ(sizes[1], (std::pair<NodeId, NodeId>{2, 3}));
  EXPECT_EQ(sizes[2], (std::pair<NodeId, NodeId>{5, 1}));
}

TEST(Labeling, OracleLabelingIsAlwaysValid) {
  for (std::uint64_t seed = 0; seed < 5; ++seed) {
    const Graph g = random_gnp(60, 0.03, seed);
    EXPECT_TRUE(is_valid_min_labeling(g, bfs_components(g)));
  }
}

}  // namespace
}  // namespace gcalib::graph
