#include "core/hirschberg_gca.hpp"

#include <gtest/gtest.h>

#include "core/schedule.hpp"
#include "graph/generators.hpp"
#include "graph/io.hpp"
#include "graph/union_find.hpp"
#include "pram/hirschberg.hpp"

namespace gcalib::core {
namespace {

using graph::Graph;
using graph::NodeId;

// The worked n = 4 example used throughout these tests: a path 0-1-2-3.
Graph path4() { return graph::path(4); }

TEST(HirschbergGca, Generation0InitialisesRows) {
  // Paper section 3, generation 0: "D = 000... 111... 222..."
  HirschbergGca machine(path4());
  machine.initialize();
  for (std::size_t j = 0; j <= 4; ++j) {
    for (std::size_t i = 0; i < 4; ++i) {
      EXPECT_EQ(machine.d_at(j, i), j) << "(" << j << "," << i << ")";
    }
  }
}

TEST(HirschbergGca, Generation1CopiesCIntoEveryRow) {
  HirschbergGca machine(path4());
  machine.initialize();
  machine.step_generation(Generation::kCopyCToRows);
  // Every row (including D_N) now holds the vector C = (0,1,2,3).
  for (std::size_t j = 0; j <= 4; ++j) {
    for (std::size_t i = 0; i < 4; ++i) {
      EXPECT_EQ(machine.d_at(j, i), i);
    }
  }
}

TEST(HirschbergGca, Generation2MasksNonNeighbors) {
  HirschbergGca machine(path4());
  machine.initialize();
  machine.step_generation(Generation::kCopyCToRows);
  machine.step_generation(Generation::kMaskNeighbors);
  // Path 0-1-2-3: row j keeps C(i)=i only where A(j,i)=1 and i != j.
  // Row 0: only neighbour 1 -> (inf, 1, inf, inf).
  EXPECT_EQ(machine.d_at(0, 0), kInfData);
  EXPECT_EQ(machine.d_at(0, 1), 1u);
  EXPECT_EQ(machine.d_at(0, 2), kInfData);
  EXPECT_EQ(machine.d_at(0, 3), kInfData);
  // Row 1: neighbours 0 and 2.
  EXPECT_EQ(machine.d_at(1, 0), 0u);
  EXPECT_EQ(machine.d_at(1, 1), kInfData);
  EXPECT_EQ(machine.d_at(1, 2), 2u);
  // Diagonal always infinity (A(j,j) = 0).
  EXPECT_EQ(machine.d_at(2, 2), kInfData);
  // Bottom row is untouched: still C.
  for (std::size_t i = 0; i < 4; ++i) EXPECT_EQ(machine.d_at(4, i), i);
}

TEST(HirschbergGca, Generation3ComputesRowMinimaIntoColumnZero) {
  HirschbergGca machine(path4());
  machine.initialize();
  machine.step_generation(Generation::kCopyCToRows);
  machine.step_generation(Generation::kMaskNeighbors);
  machine.step_generation(Generation::kRowMin, 0);
  machine.step_generation(Generation::kRowMin, 1);
  // Row minima = T of step 2: T = (1, 0, 1, 2).
  EXPECT_EQ(machine.d_at(0, 0), 1u);
  EXPECT_EQ(machine.d_at(1, 0), 0u);
  EXPECT_EQ(machine.d_at(2, 0), 1u);
  EXPECT_EQ(machine.d_at(3, 0), 2u);
}

TEST(HirschbergGca, Generation4RestoresIsolatedComponents) {
  // Graph with an isolated node 3: its row minimum is infinity and must be
  // replaced by C(3) = 3 from D_N.
  const Graph g = Graph::from_edges(4, {{0, 1}, {1, 2}});
  HirschbergGca machine(g);
  machine.initialize();
  machine.step_generation(Generation::kCopyCToRows);
  machine.step_generation(Generation::kMaskNeighbors);
  machine.step_generation(Generation::kRowMin, 0);
  machine.step_generation(Generation::kRowMin, 1);
  EXPECT_EQ(machine.d_at(3, 0), kInfData);
  machine.step_generation(Generation::kFallback);
  EXPECT_EQ(machine.d_at(3, 0), 3u);
  EXPECT_EQ(machine.d_at(0, 0), 1u);  // untouched non-infinity minimum
}

TEST(HirschbergGca, FirstIterationIntermediateStatesMatchPramReference) {
  // Cross-check the GCA's step-2 and step-3 vectors (column 0) against the
  // PRAM reference trace on a nontrivial graph.
  const Graph g = graph::random_gnp(8, 0.35, 11);
  const auto reference = pram::hirschberg_reference_full(g, true);
  ASSERT_FALSE(reference.trace.empty());

  HirschbergGca machine(g);
  machine.initialize();
  const unsigned subs = subgeneration_count(8);
  machine.step_generation(Generation::kCopyCToRows);
  machine.step_generation(Generation::kMaskNeighbors);
  for (unsigned s = 0; s < subs; ++s) machine.step_generation(Generation::kRowMin, s);
  machine.step_generation(Generation::kFallback);
  // Column 0 == T after step 2.
  for (NodeId j = 0; j < 8; ++j) {
    EXPECT_EQ(machine.d_at(j, 0), reference.trace[0].t_after_step2[j]) << j;
  }

  machine.step_generation(Generation::kCopyTToRows);
  machine.step_generation(Generation::kMaskMembers);
  for (unsigned s = 0; s < subs; ++s) machine.step_generation(Generation::kRowMin2, s);
  machine.step_generation(Generation::kFallback2);
  // Column 0 == T after step 3.
  for (NodeId j = 0; j < 8; ++j) {
    EXPECT_EQ(machine.d_at(j, 0), reference.trace[0].t_after_step3[j]) << j;
  }

  machine.step_generation(Generation::kAdopt);
  for (unsigned s = 0; s < subs; ++s) {
    machine.step_generation(Generation::kPointerJump, s);
  }
  // Column 0 == C after step 5.
  for (NodeId j = 0; j < 8; ++j) {
    EXPECT_EQ(machine.d_at(j, 0), reference.trace[0].c_after_step5[j]) << j;
  }

  machine.step_generation(Generation::kFinalMin);
  for (NodeId j = 0; j < 8; ++j) {
    EXPECT_EQ(machine.d_at(j, 0), reference.trace[0].c_after_step6[j]) << j;
  }
}

TEST(HirschbergGca, Generation9StoresTTransposedInBottomRow) {
  const Graph g = graph::path(4);
  HirschbergGca machine(g);
  machine.initialize();
  const unsigned subs = subgeneration_count(4);
  machine.step_generation(Generation::kCopyCToRows);
  machine.step_generation(Generation::kMaskNeighbors);
  for (unsigned s = 0; s < subs; ++s) machine.step_generation(Generation::kRowMin, s);
  machine.step_generation(Generation::kFallback);
  machine.step_generation(Generation::kCopyTToRows);
  machine.step_generation(Generation::kMaskMembers);
  for (unsigned s = 0; s < subs; ++s) machine.step_generation(Generation::kRowMin2, s);
  machine.step_generation(Generation::kFallback2);
  const std::vector<NodeId> t_vector = machine.current_labels();
  machine.step_generation(Generation::kAdopt);
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(machine.d_at(4, i), t_vector[i]);   // D_N <- T
    for (std::size_t j = 0; j < 4; ++j) {
      EXPECT_EQ(machine.d_at(j, i), t_vector[j]);  // row copies of T
    }
  }
}

TEST(HirschbergGca, FullRunOnPath4) {
  const RunResult result = HirschbergGca(path4()).run();
  EXPECT_EQ(result.labels, (std::vector<NodeId>{0, 0, 0, 0}));
  EXPECT_EQ(result.iterations, 2u);
}

TEST(HirschbergGca, FullRunOnPaperStyleExample) {
  const Graph g = graph::parse_matrix(
      "010100\n"
      "101000\n"
      "010100\n"
      "101000\n"
      "000001\n"
      "000010\n");
  EXPECT_EQ(gca_components(g), (std::vector<NodeId>{0, 0, 0, 0, 4, 4}));
}

TEST(HirschbergGca, GenerationCountMatchesTable2Formula) {
  for (NodeId n : {2u, 4u, 8u, 16u, 32u}) {
    const Graph g = graph::complete(n);
    const RunResult result = HirschbergGca(g).run();
    EXPECT_EQ(result.generations, total_generations(n)) << "n=" << n;
  }
}

TEST(HirschbergGca, NonPowerOfTwoSizes) {
  for (NodeId n : {3u, 5u, 6u, 7u, 9u, 11u, 13u}) {
    const Graph g = graph::random_gnp(n, 0.4, n);
    EXPECT_EQ(gca_components(g), graph::union_find_components(g)) << "n=" << n;
  }
}

TEST(HirschbergGca, TrivialSizes) {
  EXPECT_TRUE(gca_components(Graph(0)).empty());
  EXPECT_EQ(gca_components(Graph(1)), (std::vector<NodeId>{0}));
  EXPECT_EQ(gca_components(Graph(2)), (std::vector<NodeId>{0, 1}));
  EXPECT_EQ(gca_components(Graph::from_edges(2, {{0, 1}})),
            (std::vector<NodeId>{0, 0}));
}

TEST(HirschbergGca, RecordsCoverEveryGeneration) {
  const RunResult result = HirschbergGca(path4()).run();
  ASSERT_EQ(result.records.size(), result.generations);
  EXPECT_EQ(result.records.front().id.generation, Generation::kInit);
  EXPECT_EQ(result.records.back().id.generation, Generation::kFinalMin);
  // Each iteration contains exactly 8 + 3 log n steps.
  std::size_t iteration0_steps = 0;
  for (const StepRecord& r : result.records) {
    if (r.id.generation != Generation::kInit && r.id.iteration == 0) {
      ++iteration0_steps;
    }
  }
  EXPECT_EQ(iteration0_steps, 8u + 3u * 2u);
}

TEST(HirschbergGca, OnStepHookFires) {
  std::size_t calls = 0;
  RunOptions options;
  options.on_step = [&calls](const StepRecord&) { ++calls; };
  const RunResult result = HirschbergGca(path4()).run(options);
  EXPECT_EQ(calls, result.generations);
}

TEST(HirschbergGca, UninstrumentedRunStillCounts) {
  RunOptions options;
  options.instrument = false;
  const RunResult result = HirschbergGca(path4()).run(options);
  EXPECT_TRUE(result.records.empty());
  EXPECT_EQ(result.generations, total_generations(4));
  EXPECT_EQ(result.labels, (std::vector<NodeId>{0, 0, 0, 0}));
}

TEST(HirschbergGca, ThreadedRunMatchesSequential) {
  const Graph g = graph::random_gnp(24, 0.15, 99);
  RunOptions threaded;
  threaded.instrument = false;
  threaded.threads = 4;
  HirschbergGca machine(g);
  const RunResult result = machine.run(threaded);
  EXPECT_EQ(result.labels, gca_components(g));
}

TEST(HirschbergGca, ParallelSweepBitIdenticalAcrossWidths) {
  // Determinism across sweep widths: identical cell states, labels and
  // merged instrumentation counts for every thread count, including one
  // that does not divide the field size.
  const Graph g = graph::random_gnp(24, 0.15, 99);
  HirschbergGca reference(g);
  const RunResult base = reference.run();

  for (const unsigned threads : {2u, 4u, 7u}) {
    SCOPED_TRACE(threads);
    RunOptions options;
    options.threads = threads;
    HirschbergGca machine(g);
    const RunResult result = machine.run(options);

    EXPECT_EQ(result.labels, base.labels);
    EXPECT_EQ(machine.engine().states(), reference.engine().states());
    ASSERT_EQ(result.records.size(), base.records.size());
    for (std::size_t r = 0; r < base.records.size(); ++r) {
      const gca::GenerationStats& want = base.records[r].stats;
      const gca::GenerationStats& got = result.records[r].stats;
      EXPECT_TRUE(result.records[r].id == base.records[r].id);
      EXPECT_EQ(got.active_cells, want.active_cells) << r;
      EXPECT_EQ(got.total_reads, want.total_reads) << r;
      EXPECT_EQ(got.cells_read, want.cells_read) << r;
      EXPECT_EQ(got.max_congestion, want.max_congestion) << r;
      EXPECT_EQ(got.congestion_classes, want.congestion_classes) << r;
    }
  }
}

TEST(HirschbergGca, OneHandedThroughout) {
  // The engine enforces hands == 1; a full run not throwing is the proof,
  // but assert the configuration explicitly too.
  HirschbergGca machine(path4());
  EXPECT_EQ(machine.engine().hands(), 1u);
  EXPECT_NO_THROW(machine.run());
}

TEST(HirschbergGca, DSnapshotShape) {
  HirschbergGca machine(path4());
  machine.initialize();
  const auto snapshot = machine.d_snapshot();
  EXPECT_EQ(snapshot.size(), 20u);
  EXPECT_EQ(snapshot[0], 0u);
  EXPECT_EQ(snapshot[19], 4u);
}

}  // namespace
}  // namespace gcalib::core
