#include <gtest/gtest.h>

#include "gca/ca.hpp"

namespace gcalib::gca {
namespace {

TEST(ElementaryCA, Rule0KillsEverything) {
  ElementaryCA ca(16, 0);
  ca.set_state(std::vector<std::uint8_t>(16, 1));
  ca.step();
  EXPECT_EQ(ca.live_count(), 0u);
}

TEST(ElementaryCA, Rule204IsIdentity) {
  // Rule 204's table maps each pattern to its centre bit.
  ElementaryCA ca(11, 204);
  std::vector<std::uint8_t> pattern = {1, 0, 1, 1, 0, 0, 1, 0, 1, 1, 0};
  ca.set_state(pattern);
  ca.run(5);
  EXPECT_EQ(ca.state(), pattern);
}

TEST(ElementaryCA, Rule90IsSierpinski) {
  // Rule 90 = XOR of the two neighbours; from a single seed, generation k
  // has live cells exactly at offsets with odd binomial(k, (k+offset)/2) —
  // the first rows are 1 / 101 / 10001 / 1010101.
  ElementaryCA ca(33, 90, Boundary::kFixed);
  ca.seed_center();
  const std::size_t c = 16;
  ca.step();
  EXPECT_EQ(ca.at(c - 1), 1);
  EXPECT_EQ(ca.at(c), 0);
  EXPECT_EQ(ca.at(c + 1), 1);
  EXPECT_EQ(ca.live_count(), 2u);
  ca.step();
  EXPECT_EQ(ca.at(c - 2), 1);
  EXPECT_EQ(ca.at(c + 2), 1);
  EXPECT_EQ(ca.live_count(), 2u);
  ca.step();
  // 1010101 centred.
  for (std::size_t off : {0u, 2u}) {
    EXPECT_EQ(ca.at(c - 3 + 2 * off), 1) << off;
  }
  EXPECT_EQ(ca.live_count(), 4u);
}

TEST(ElementaryCA, Rule254FloodsFromSeed) {
  // Rule 254: any live neighbour (or self) -> alive; the live region grows
  // by one cell per side per generation.
  ElementaryCA ca(21, 254, Boundary::kFixed);
  ca.seed_center();
  for (std::size_t g = 1; g <= 5; ++g) {
    ca.step();
    EXPECT_EQ(ca.live_count(), 2 * g + 1) << g;
  }
}

TEST(ElementaryCA, Rule30IsDeterministicAndChaoticLooking) {
  ElementaryCA a(64, 30);
  ElementaryCA b(64, 30);
  a.seed_center();
  b.seed_center();
  a.run(32);
  b.run(32);
  EXPECT_EQ(a.state(), b.state());
  // Known property: rule 30 from one seed never dies.
  EXPECT_GT(a.live_count(), 0u);
}

TEST(ElementaryCA, TorusVsFixedDifferAfterWrap) {
  // A seed at the left edge: the left neighbour differs (wraps vs 0).
  ElementaryCA torus(8, 90, Boundary::kTorus);
  ElementaryCA fixed(8, 90, Boundary::kFixed);
  std::vector<std::uint8_t> seed(8, 0);
  seed[0] = 1;
  torus.set_state(seed);
  fixed.set_state(seed);
  torus.step();
  fixed.step();
  // Torus: cell 7 sees the live cell as right neighbour.
  EXPECT_EQ(torus.at(7), 1);
  EXPECT_EQ(fixed.at(7), 0);
}

TEST(ElementaryCA, RejectsBadArguments) {
  EXPECT_THROW(ElementaryCA(0, 90), ContractViolation);
  EXPECT_THROW(ElementaryCA(8, 256), ContractViolation);
  ElementaryCA ca(8, 90);
  EXPECT_THROW(ca.set_state(std::vector<std::uint8_t>(5, 0)), ContractViolation);
}

TEST(ElementaryCA, TwoHandedReadAccounting) {
  ElementaryCA ca(10, 110);
  ca.seed_center();
  const GenerationStats stats = ca.step();
  EXPECT_EQ(stats.total_reads, 20u);      // 2 reads per cell
  EXPECT_EQ(stats.max_congestion, 2u);    // each cell read by both neighbours
}

}  // namespace
}  // namespace gcalib::gca
