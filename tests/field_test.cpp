#include "gca/field.hpp"

#include <gtest/gtest.h>

#include "common/assert.hpp"

namespace gcalib::gca {
namespace {

TEST(FieldGeometry, BasicShape) {
  constexpr FieldGeometry geo(3, 4);
  EXPECT_EQ(geo.rows(), 3u);
  EXPECT_EQ(geo.cols(), 4u);
  EXPECT_EQ(geo.size(), 12u);
}

TEST(FieldGeometry, RowColIndexRoundTrip) {
  const FieldGeometry geo(5, 4);
  for (std::size_t r = 0; r < 5; ++r) {
    for (std::size_t c = 0; c < 4; ++c) {
      const std::size_t index = geo.index_of(r, c);
      EXPECT_EQ(geo.row(index), r);
      EXPECT_EQ(geo.col(index), c);
    }
  }
}

TEST(FieldGeometry, LinearIndexIsRowMajor) {
  const FieldGeometry geo(2, 3);
  EXPECT_EQ(geo.index_of(0, 0), 0u);
  EXPECT_EQ(geo.index_of(0, 2), 2u);
  EXPECT_EQ(geo.index_of(1, 0), 3u);
  EXPECT_EQ(geo.index_of(1, 2), 5u);
}

TEST(FieldGeometry, HirschbergLayout) {
  const FieldGeometry geo = FieldGeometry::hirschberg(4);
  EXPECT_EQ(geo.rows(), 5u);
  EXPECT_EQ(geo.cols(), 4u);
  EXPECT_EQ(geo.size(), 20u);
  // Paper's Figure 3: linear indices 0..15 form the square, 16..19 form D_N.
  EXPECT_TRUE(geo.in_square(0));
  EXPECT_TRUE(geo.in_square(15));
  EXPECT_FALSE(geo.in_square(16));
  EXPECT_TRUE(geo.in_bottom_row(16));
  EXPECT_TRUE(geo.in_bottom_row(19));
  EXPECT_FALSE(geo.in_bottom_row(15));
}

TEST(FieldGeometry, BoundsChecked) {
  const FieldGeometry geo(2, 2);
  EXPECT_THROW((void)geo.row(4), ContractViolation);
  EXPECT_THROW((void)geo.index_of(2, 0), ContractViolation);
  EXPECT_THROW((void)geo.index_of(0, 2), ContractViolation);
}

TEST(FieldGeometry, DegenerateDimensionsRejected) {
  EXPECT_THROW(FieldGeometry(0, 3), ContractViolation);
  EXPECT_THROW(FieldGeometry(3, 0), ContractViolation);
}

TEST(FieldGeometry, Equality) {
  EXPECT_EQ(FieldGeometry(2, 3), FieldGeometry(2, 3));
  EXPECT_NE(FieldGeometry(2, 3), FieldGeometry(3, 2));
}

}  // namespace
}  // namespace gcalib::gca
