#include "core/state_graph.hpp"

#include <gtest/gtest.h>

#include <set>
#include <string>

namespace gcalib::core {
namespace {

TEST(StateGraph, HasTwelveGenerations) {
  const auto& graph = state_graph();
  EXPECT_EQ(graph.size(), 12u);
  for (std::size_t i = 0; i < graph.size(); ++i) {
    EXPECT_EQ(static_cast<std::size_t>(graph[i].id), i);
  }
}

TEST(StateGraph, StepAssignmentMatchesPaperTable2) {
  EXPECT_EQ(info(Generation::kInit).step, 1);
  EXPECT_EQ(info(Generation::kCopyCToRows).step, 2);
  EXPECT_EQ(info(Generation::kFallback).step, 2);
  EXPECT_EQ(info(Generation::kCopyTToRows).step, 3);
  EXPECT_EQ(info(Generation::kFallback2).step, 3);
  EXPECT_EQ(info(Generation::kAdopt).step, 4);
  EXPECT_EQ(info(Generation::kPointerJump).step, 5);
  EXPECT_EQ(info(Generation::kFinalMin).step, 6);
}

TEST(StateGraph, PaperStepHelperAgreesWithTable) {
  for (const GenerationInfo& g : state_graph()) {
    EXPECT_EQ(paper_step(g.id), g.step);
  }
}

TEST(StateGraph, SubgenerationFlags) {
  std::set<Generation> iterated;
  for (const GenerationInfo& g : state_graph()) {
    EXPECT_EQ(g.subgenerations, has_subgenerations(g.id));
    if (g.subgenerations) iterated.insert(g.id);
  }
  EXPECT_EQ(iterated, (std::set<Generation>{Generation::kRowMin,
                                            Generation::kRowMin2,
                                            Generation::kPointerJump}));
}

TEST(StateGraph, AllEntriesDocumented) {
  for (const GenerationInfo& g : state_graph()) {
    EXPECT_NE(std::string(g.name), "");
    EXPECT_NE(std::string(g.pointer_op), "");
    EXPECT_NE(std::string(g.data_op), "");
    EXPECT_NE(std::string(g.active), "");
    EXPECT_GE(g.step, 1);
    EXPECT_LE(g.step, 6);
  }
}

TEST(StateGraph, LabelsAreStable) {
  EXPECT_EQ(generation_label(Generation::kInit, 0), "gen0:init");
  EXPECT_EQ(generation_label(Generation::kMaskNeighbors, 0),
            "gen2:mask-neighbors");
  EXPECT_EQ(generation_label(Generation::kRowMin, 2), "gen3:row-min.sub2");
  EXPECT_EQ(generation_label(Generation::kPointerJump, 0),
            "gen10:pointer-jump.sub0");
  EXPECT_EQ(generation_label(Generation::kFinalMin, 0), "gen11:final-min");
}

TEST(StateGraph, ErratumIsDocumentedInline) {
  // The generation-6 pointer correction must be visible in the rendered
  // state graph so readers of the Figure-2 bench see it.
  EXPECT_NE(std::string(info(Generation::kMaskMembers).pointer_op).find("erratum"),
            std::string::npos);
}

}  // namespace
}  // namespace gcalib::core
