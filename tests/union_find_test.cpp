#include "graph/union_find.hpp"

#include <gtest/gtest.h>

#include "graph/generators.hpp"

namespace gcalib::graph {
namespace {

TEST(UnionFind, SingletonsInitially) {
  UnionFind uf(5);
  EXPECT_EQ(uf.set_count(), 5u);
  for (NodeId i = 0; i < 5; ++i) EXPECT_EQ(uf.find(i), i);
}

TEST(UnionFind, UniteMerges) {
  UnionFind uf(4);
  EXPECT_TRUE(uf.unite(0, 1));
  EXPECT_EQ(uf.find(0), uf.find(1));
  EXPECT_EQ(uf.set_count(), 3u);
}

TEST(UnionFind, UniteSameSetReturnsFalse) {
  UnionFind uf(4);
  uf.unite(0, 1);
  uf.unite(1, 2);
  EXPECT_FALSE(uf.unite(0, 2));
  EXPECT_EQ(uf.set_count(), 2u);
}

TEST(UnionFind, TransitiveChain) {
  UnionFind uf(6);
  for (NodeId i = 0; i + 1 < 6; ++i) uf.unite(i, i + 1);
  EXPECT_EQ(uf.set_count(), 1u);
  for (NodeId i = 1; i < 6; ++i) EXPECT_EQ(uf.find(0), uf.find(i));
}

TEST(UnionFind, MinLabelsAreMinima) {
  UnionFind uf(6);
  uf.unite(5, 3);
  uf.unite(3, 4);
  uf.unite(0, 1);
  const std::vector<NodeId> labels = uf.min_labels();
  EXPECT_EQ(labels, (std::vector<NodeId>{0, 0, 2, 3, 3, 3}));
}

TEST(UnionFind, ComponentsOfDisjointCliques) {
  const Graph g = disjoint_cliques({2, 3, 1});
  const std::vector<NodeId> labels = union_find_components(g);
  EXPECT_EQ(labels, (std::vector<NodeId>{0, 0, 2, 2, 2, 5}));
}

TEST(UnionFind, ComponentsOfEmptyGraph) {
  const std::vector<NodeId> labels = union_find_components(Graph(4));
  EXPECT_EQ(labels, (std::vector<NodeId>{0, 1, 2, 3}));
}

TEST(UnionFind, FindOutOfRangeThrows) {
  UnionFind uf(3);
  EXPECT_THROW((void)uf.find(3), ContractViolation);
}

TEST(UnionFind, LargeRandomStress) {
  const Graph g = random_gnp(300, 0.01, 77);
  const std::vector<NodeId> labels = union_find_components(g);
  // Every edge's endpoints share a label.
  for (const Edge& e : g.edges()) EXPECT_EQ(labels[e.u], labels[e.v]);
  // Labels are self-consistent minima.
  for (NodeId v = 0; v < g.node_count(); ++v) EXPECT_LE(labels[v], v);
}

}  // namespace
}  // namespace gcalib::graph
