// Consistency between the declarative access-pattern spec (used by the
// hardware model, and the content of Figure 3) and the *executed* rules:
// for every generation of a real run, the engine's recorded active mask and
// access edges must match is_active / pointer_spec exactly.
#include "core/access_pattern.hpp"

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "core/hirschberg_gca.hpp"
#include "core/schedule.hpp"
#include "graph/generators.hpp"

namespace gcalib::core {
namespace {

using graph::NodeId;

class AccessPatternConsistency : public ::testing::TestWithParam<NodeId> {};

TEST_P(AccessPatternConsistency, ExecutedRulesMatchDeclarativeSpec) {
  const NodeId n = GetParam();
  const graph::Graph g = graph::random_gnp(n, 0.4, 2024);
  HirschbergGca machine(g);
  machine.engine().set_options(
      gca::EngineOptions{machine.engine().options()}.with_record_access(
          true));

  machine.initialize();
  {
    // Generation 0 performs no global reads and activates every cell.
    EXPECT_TRUE(machine.engine().last_access().empty());
    const auto& active = machine.engine().last_active();
    for (std::size_t i = 0; i < active.size(); ++i) {
      EXPECT_EQ(active[i] != 0, is_active(Generation::kInit, 0, i, n));
    }
  }

  const unsigned subs = subgeneration_count(n);
  static constexpr Generation kOrder[] = {
      Generation::kCopyCToRows, Generation::kMaskNeighbors,
      Generation::kRowMin,      Generation::kFallback,
      Generation::kCopyTToRows, Generation::kMaskMembers,
      Generation::kRowMin2,     Generation::kFallback2,
      Generation::kAdopt,       Generation::kPointerJump,
      Generation::kFinalMin};

  for (unsigned iter = 0; iter < outer_iterations(n); ++iter) {
    for (Generation gen : kOrder) {
      const unsigned repeats = has_subgenerations(gen) ? subs : 1;
      for (unsigned s = 0; s < repeats; ++s) {
        machine.step_generation(gen, s);

        // Active mask must equal the closed-form predicate.
        const auto& active = machine.engine().last_active();
        for (std::size_t i = 0; i < active.size(); ++i) {
          EXPECT_EQ(active[i] != 0, is_active(gen, s, i, n))
              << "gen=" << static_cast<int>(gen) << " sub=" << s
              << " cell=" << i << " iter=" << iter;
        }

        // Recorded edges must match pointer_spec: static targets exactly,
        // data-dependent cells must have read *something* in column 0's
        // reachable range.
        std::map<std::size_t, std::size_t> reads;  // reader -> target
        for (const gca::AccessEdge& e : machine.engine().last_access()) {
          const bool inserted = reads.emplace(e.reader, e.target).second;
          EXPECT_TRUE(inserted) << "cell " << e.reader << " read twice";
        }
        for (std::size_t i = 0; i < active.size(); ++i) {
          const PointerSpec spec = pointer_spec(gen, s, i, n);
          switch (spec.kind) {
            case PointerKind::kNone:
              EXPECT_EQ(reads.count(i), 0u) << "cell " << i << " must not read";
              break;
            case PointerKind::kStatic:
              ASSERT_EQ(reads.count(i), 1u)
                  << "gen=" << static_cast<int>(gen) << " cell=" << i;
              EXPECT_EQ(reads.at(i), spec.target)
                  << "gen=" << static_cast<int>(gen) << " cell=" << i;
              break;
            case PointerKind::kDataDependent:
              ASSERT_EQ(reads.count(i), 1u);
              // Target must be a cell in column 0 or 1 of the square.
              EXPECT_LT(reads.at(i), std::size_t{n} * n + n);
              EXPECT_LE(reads.at(i) % n, 1u);
              break;
          }
        }
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, AccessPatternConsistency,
                         ::testing::Values<NodeId>(2, 3, 4, 5, 8));

TEST(AccessPattern, ExtendedCellsAreExactlyColumnZero) {
  const std::size_t n = 6;
  std::size_t extended = 0;
  for (std::size_t i = 0; i < n * (n + 1); ++i) {
    if (needs_extended_cell(i, n)) {
      ++extended;
      EXPECT_EQ(i % n, 0u);
      EXPECT_LT(i, n * n);
    }
  }
  EXPECT_EQ(extended, n);  // paper: "n extended cells"
}

TEST(AccessPattern, StaticSourceSetsAreSmall) {
  // Every cell's static multiplexer has O(log n) inputs: the copy source,
  // two D_N cells, the Adopt source and log n reduction partners.
  const std::size_t n = 16;
  for (std::size_t i = 0; i < n * (n + 1); ++i) {
    const auto sources = static_source_set(i, n);
    EXPECT_LE(sources.size(), 4u + subgeneration_count(n)) << "cell " << i;
    for (std::size_t t : sources) EXPECT_LT(t, n * (n + 1));
  }
}

TEST(AccessPattern, ExpectedActiveCellsClosedForms) {
  const std::size_t n = 8;
  EXPECT_EQ(expected_active_cells(Generation::kInit, 0, n), n * (n + 1));
  EXPECT_EQ(expected_active_cells(Generation::kCopyCToRows, 0, n), n * (n + 1));
  EXPECT_EQ(expected_active_cells(Generation::kMaskNeighbors, 0, n), n * n);
  EXPECT_EQ(expected_active_cells(Generation::kRowMin, 0, n), n * n / 2);
  EXPECT_EQ(expected_active_cells(Generation::kRowMin, 1, n), n * n / 4);
  EXPECT_EQ(expected_active_cells(Generation::kFallback, 0, n), n);
  EXPECT_EQ(expected_active_cells(Generation::kPointerJump, 0, n), n);
  EXPECT_EQ(expected_active_cells(Generation::kFinalMin, 0, n), n);
}

TEST(AccessPattern, ExpectedActiveMatchesPredicateCount) {
  for (std::size_t n : {2u, 4u, 7u, 8u, 12u}) {
    for (std::uint8_t gi = 0; gi < kGenerationCount; ++gi) {
      const auto g = static_cast<Generation>(gi);
      const unsigned repeats =
          has_subgenerations(g) ? subgeneration_count(n) : 1;
      for (unsigned s = 0; s < repeats; ++s) {
        std::size_t count = 0;
        for (std::size_t i = 0; i < n * (n + 1); ++i) {
          if (is_active(g, s, i, n)) ++count;
        }
        EXPECT_EQ(count, expected_active_cells(g, s, n))
            << "n=" << n << " gen=" << int(gi) << " sub=" << s;
      }
    }
  }
}

}  // namespace
}  // namespace gcalib::core
