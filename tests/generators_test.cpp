#include "graph/generators.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "graph/cc_baselines.hpp"
#include "graph/labeling.hpp"

namespace gcalib::graph {
namespace {

TEST(Generators, PathStructure) {
  const Graph g = path(5);
  EXPECT_EQ(g.edge_count(), 4u);
  EXPECT_TRUE(g.has_edge(0, 1));
  EXPECT_TRUE(g.has_edge(3, 4));
  EXPECT_FALSE(g.has_edge(0, 2));
  EXPECT_EQ(component_count(bfs_components(g)), 1u);
}

TEST(Generators, PathOfOneAndZero) {
  EXPECT_EQ(path(1).edge_count(), 0u);
  EXPECT_EQ(path(0).node_count(), 0u);
}

TEST(Generators, CycleStructure) {
  const Graph g = cycle(6);
  EXPECT_EQ(g.edge_count(), 6u);
  for (NodeId v = 0; v < 6; ++v) EXPECT_EQ(g.degree(v), 2u);
}

TEST(Generators, StarStructure) {
  const Graph g = star(7);
  EXPECT_EQ(g.edge_count(), 6u);
  EXPECT_EQ(g.degree(0), 6u);
  for (NodeId v = 1; v < 7; ++v) EXPECT_EQ(g.degree(v), 1u);
}

TEST(Generators, CompleteStructure) {
  const Graph g = complete(6);
  EXPECT_EQ(g.edge_count(), 15u);
  EXPECT_DOUBLE_EQ(g.density(), 1.0);
}

TEST(Generators, GridStructure) {
  const Graph g = grid(3, 4);
  EXPECT_EQ(g.node_count(), 12u);
  // 3 rows x 3 horizontal + 2 x 4 vertical = 9 + 8
  EXPECT_EQ(g.edge_count(), 17u);
  EXPECT_EQ(component_count(bfs_components(g)), 1u);
}

TEST(Generators, GnpExtremes) {
  EXPECT_EQ(random_gnp(10, 0.0, 1).edge_count(), 0u);
  EXPECT_EQ(random_gnp(10, 1.0, 1).edge_count(), 45u);
}

TEST(Generators, GnpIsDeterministicPerSeed) {
  const Graph a = random_gnp(20, 0.3, 7);
  const Graph b = random_gnp(20, 0.3, 7);
  const Graph c = random_gnp(20, 0.3, 8);
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
}

TEST(Generators, GnpEdgeCountNearExpectation) {
  const Graph g = random_gnp(100, 0.2, 3);
  const double expected = 0.2 * (100.0 * 99.0 / 2.0);
  EXPECT_NEAR(static_cast<double>(g.edge_count()), expected, 120.0);
}

TEST(Generators, GnmExactEdgeCount) {
  const Graph g = random_gnm(30, 100, 5);
  EXPECT_EQ(g.edge_count(), 100u);
}

TEST(Generators, GnmRejectsTooManyEdges) {
  EXPECT_THROW(random_gnm(4, 7, 1), ContractViolation);
}

TEST(Generators, RandomTreeIsSpanningTree) {
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    const Graph g = random_tree(40, seed);
    EXPECT_EQ(g.edge_count(), 39u);
    EXPECT_EQ(component_count(bfs_components(g)), 1u);
  }
}

TEST(Generators, DisjointCliquesComponentCount) {
  const Graph g = disjoint_cliques({3, 4, 5});
  EXPECT_EQ(g.node_count(), 12u);
  EXPECT_EQ(g.edge_count(), 3u + 6u + 10u);
  EXPECT_EQ(component_count(bfs_components(g)), 3u);
}

TEST(Generators, PlantedComponentsHaveExactlyK) {
  for (std::uint64_t seed = 0; seed < 8; ++seed) {
    const Graph g = planted_components(48, 6, 0.3, seed);
    EXPECT_EQ(component_count(bfs_components(g)), 6u) << "seed=" << seed;
  }
}

TEST(Generators, PlantedComponentsSingle) {
  const Graph g = planted_components(16, 1, 0.0, 2);
  EXPECT_EQ(component_count(bfs_components(g)), 1u);
}

TEST(Generators, CaterpillarStructure) {
  const Graph g = caterpillar(4, 3);
  EXPECT_EQ(g.node_count(), 16u);
  EXPECT_EQ(g.edge_count(), 3u + 12u);
  EXPECT_EQ(component_count(bfs_components(g)), 1u);
}

TEST(Generators, CompleteBipartiteStructure) {
  const Graph g = complete_bipartite(3, 4);
  EXPECT_EQ(g.node_count(), 7u);
  EXPECT_EQ(g.edge_count(), 12u);
  // no intra-side edges
  EXPECT_FALSE(g.has_edge(0, 1));
  EXPECT_FALSE(g.has_edge(3, 4));
}

TEST(Generators, EmptyGraphHasNComponents) {
  const Graph g = empty_graph(9);
  EXPECT_EQ(component_count(bfs_components(g)), 9u);
}

TEST(Generators, MakeNamedDispatch) {
  EXPECT_EQ(make_named("path", 8, 0).edge_count(), 7u);
  EXPECT_EQ(make_named("complete", 5, 0).edge_count(), 10u);
  EXPECT_EQ(make_named("gnm:20", 10, 1).edge_count(), 20u);
  EXPECT_EQ(make_named("cliques:2", 10, 0).node_count(), 10u);
  EXPECT_EQ(component_count(bfs_components(make_named("cliques:2", 10, 0))), 2u);
  EXPECT_EQ(make_named("grid:2", 8, 0).node_count(), 8u);
  EXPECT_EQ(make_named("bipartite:3", 8, 0).edge_count(), 15u);
  EXPECT_EQ(make_named("empty", 4, 0).edge_count(), 0u);
  EXPECT_EQ(make_named("tree", 12, 3).edge_count(), 11u);
}

TEST(Generators, MakeNamedUnknownThrows) {
  EXPECT_THROW(make_named("nonsense", 4, 0), std::runtime_error);
}

TEST(Generators, NamedFamiliesNonEmpty) {
  EXPECT_GE(named_families().size(), 10u);
}

}  // namespace
}  // namespace gcalib::graph
