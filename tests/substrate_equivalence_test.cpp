// Cross-substrate equivalence suite (DESIGN.md §12): the dense paper field
// and the CSR label-propagation engine must produce the *same* canonical
// min-node-id labeling — bit-identical — on every graph, every execution
// backend and every thread count, and both must honour cancellation.
//
// The dense machine is the golden reference at sizes where an O(n^2) field
// is tractable; at the large end (n = 4096) the sparse engine is checked
// against the sequential union-find oracle, which the dense machine is
// itself validated against at the smaller sizes.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "common/assert.hpp"
#include "core/cc_solver.hpp"
#include "core/hirschberg_gca.hpp"
#include "core/runner.hpp"
#include "gca/cancel.hpp"
#include "graph/csr_graph.hpp"
#include "graph/generators.hpp"
#include "graph/graph.hpp"
#include "graph/union_find.hpp"

namespace gcalib::core {
namespace {

struct Backend {
  const char* name;
  gca::ExecutionPolicy policy;
  unsigned threads;
};

// The {1,2,4,7} thread matrix: 7 is deliberately not a divisor of typical
// field sizes, so chunk-boundary bugs cannot hide behind even partitions.
const Backend kBackends[] = {
    {"sequential", gca::ExecutionPolicy::kSequential, 1},
    {"spawn x2", gca::ExecutionPolicy::kSpawn, 2},
    {"spawn x7", gca::ExecutionPolicy::kSpawn, 7},
    {"pool x2", gca::ExecutionPolicy::kPool, 2},
    {"pool x4", gca::ExecutionPolicy::kPool, 4},
    {"pool x7", gca::ExecutionPolicy::kPool, 7},
};

std::vector<graph::NodeId> solve_on(const CcSolver& solver,
                                    const graph::Graph& g,
                                    const Backend& backend) {
  RunOptions options;
  options.instrument = false;
  options.threads = backend.threads;
  options.policy = backend.policy;
  return solver.solve(SolverInput(g), options).labels;
}

TEST(SubstrateEquivalence, RandomGraphsAcrossDensities) {
  // Varied density at sizes where the dense field is cheap: from nearly
  // edgeless through connected.
  const struct {
    graph::NodeId n;
    double p;
    std::uint64_t seed;
  } cases[] = {
      {2, 0.0, 1},   {17, 0.02, 2},  {33, 0.08, 3},  {64, 0.05, 4},
      {64, 0.5, 5},  {96, 0.01, 6},  {128, 0.03, 7}, {128, 0.2, 8},
      {200, 0.015, 9},
  };
  for (const auto& c : cases) {
    const graph::Graph g = graph::random_gnp(c.n, c.p, c.seed);
    const std::string tag = "n=" + std::to_string(c.n) +
                            " p=" + std::to_string(c.p) +
                            " seed=" + std::to_string(c.seed);
    const std::vector<graph::NodeId> oracle = graph::union_find_components(g);
    const std::vector<graph::NodeId> dense =
        solve_on(dense_cc_solver(), g, kBackends[0]);
    const std::vector<graph::NodeId> sparse =
        solve_on(sparse_cc_solver(), g, kBackends[0]);
    EXPECT_EQ(dense, oracle) << tag;
    EXPECT_EQ(sparse, dense) << tag;
  }
}

TEST(SubstrateEquivalence, StructuredFamilies) {
  for (const char* family : {"path", "cycle", "star", "complete", "tree",
                             "cliques:4", "planted:3:0.4", "grid:7"}) {
    const graph::Graph g = graph::make_named(family, 49, 21);
    const std::vector<graph::NodeId> dense =
        solve_on(dense_cc_solver(), g, kBackends[0]);
    const std::vector<graph::NodeId> sparse =
        solve_on(sparse_cc_solver(), g, kBackends[0]);
    EXPECT_EQ(dense, graph::union_find_components(g)) << family;
    EXPECT_EQ(sparse, dense) << family;
  }
}

TEST(SubstrateEquivalence, BitIdenticalAcrossBackendsAndThreadCounts) {
  const graph::Graph g = graph::random_gnp(173, 0.04, 31);
  const std::vector<graph::NodeId> reference =
      solve_on(sparse_cc_solver(), g, kBackends[0]);
  EXPECT_EQ(reference, graph::union_find_components(g));
  for (const Backend& backend : kBackends) {
    EXPECT_EQ(solve_on(sparse_cc_solver(), g, backend), reference)
        << "sparse on " << backend.name;
    EXPECT_EQ(solve_on(dense_cc_solver(), g, backend), reference)
        << "dense on " << backend.name;
  }
}

TEST(SubstrateEquivalence, LargeSparseGraphSequential) {
  // The n = 4096 case: far beyond the dense field's comfort zone, checked
  // against the union-find oracle (and via self_check's internal oracle).
  const graph::Graph g = graph::random_gnp(4096, 0.0008, 77);
  RunOptions options;
  options.instrument = false;
  options.self_check = true;
  const QueryResult result =
      sparse_cc_solver().solve(SolverInput(g), options);
  EXPECT_EQ(result.labels, graph::union_find_components(g));
}

TEST(SubstrateEquivalence, LargeSparseGraphParallelMatchesSequential) {
  const graph::CsrGraph csr = graph::CsrGraph::from_graph(
      graph::random_gnp(4096, 0.0008, 78));
  RunOptions sequential;
  sequential.instrument = false;
  const std::vector<graph::NodeId> reference =
      sparse_cc_solver().solve(SolverInput(csr), sequential).labels;
  for (const unsigned threads : {2u, 4u, 7u}) {
    RunOptions parallel;
    parallel.instrument = false;
    parallel.threads = threads;
    parallel.policy = gca::ExecutionPolicy::kPool;
    EXPECT_EQ(sparse_cc_solver().solve(SolverInput(csr), parallel).labels,
              reference)
        << threads << " threads";
  }
}

TEST(SubstrateEquivalence, RunnerRoutesBothSubstratesToTheSameLabels) {
  const graph::Graph g = graph::random_gnp(90, 0.05, 13);
  RunnerOptions dense;
  dense.substrate = gca::SubstrateMode::kDense;
  RunnerOptions sparse;
  sparse.substrate = gca::SubstrateMode::kSparseCsr;
  RunnerOptions automatic;
  automatic.substrate = gca::SubstrateMode::kAuto;
  const QueryResult via_dense = Runner(dense).solve(g);
  const QueryResult via_sparse = Runner(sparse).solve(g);
  const QueryResult via_auto = Runner(automatic).solve(g);
  EXPECT_EQ(via_dense.labels, via_sparse.labels);
  EXPECT_EQ(via_auto.labels, via_dense.labels);
  EXPECT_EQ(via_dense.components, via_sparse.components);
}

TEST(SubstrateEquivalence, PreTrippedCancellationAbortsBothSubstrates) {
  const graph::Graph g = graph::random_gnp(128, 0.05, 5);
  gca::CancelToken token;
  token.request_cancel();
  RunOptions options;
  options.instrument = false;
  options.cancel = &token;
  EXPECT_THROW((void)dense_cc_solver().solve(SolverInput(g), options),
               gca::Cancelled);
  EXPECT_THROW((void)sparse_cc_solver().solve(SolverInput(g), options),
               gca::Cancelled);
}

TEST(SubstrateEquivalence, MidRunCancellationIsHonouredOrHarmless) {
  // Trip the token from a second thread while the solve is in flight.  The
  // race is inherent — the solve may finish first — so both outcomes are
  // accepted, but a cancelled run must abort via gca::Cancelled and a
  // completed run must still be correct.  Over the seed sweep at this size
  // the cancel lands mid-run virtually always on at least one seed.
  const struct {
    const CcSolver* solver;
    graph::NodeId n;
    double p;
  } cases[] = {
      // Dense at a size the field still solves in tens of milliseconds;
      // sparse at the scale it is built for.
      {&dense_cc_solver(), 192, 0.03},
      {&sparse_cc_solver(), 2048, 0.002},
  };
  for (const std::uint64_t seed : {101u, 102u, 103u}) {
    for (const auto& c : cases) {
      const graph::Graph g = graph::random_gnp(c.n, c.p, seed);
      const std::vector<graph::NodeId> oracle =
          graph::union_find_components(g);
      gca::CancelToken token;
      RunOptions options;
      options.instrument = false;
      options.cancel = &token;
      std::atomic<bool> go{false};
      std::thread tripper([&] {
        while (!go.load(std::memory_order_acquire)) {}
        token.request_cancel();
      });
      bool cancelled = false;
      std::vector<graph::NodeId> labels;
      try {
        go.store(true, std::memory_order_release);
        labels = c.solver->solve(SolverInput(g), options).labels;
      } catch (const gca::Cancelled&) {
        cancelled = true;
      }
      tripper.join();
      if (!cancelled) {
        EXPECT_EQ(labels, oracle) << c.solver->name() << " seed " << seed;
      }
    }
  }
}

TEST(SubstrateEquivalence, SelfCheckPassesOnBothSubstrates) {
  const graph::Graph g = graph::random_gnp(64, 0.1, 17);
  RunOptions options;
  options.self_check = true;
  EXPECT_NO_THROW((void)dense_cc_solver().solve(SolverInput(g), options));
  EXPECT_NO_THROW((void)sparse_cc_solver().solve(SolverInput(g), options));
}

}  // namespace
}  // namespace gcalib::core
